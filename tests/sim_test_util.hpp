// Shared helpers for the simulator differential suites: full-field equality
// over SimResult, used to pin engine variants (batched vs record-at-a-time in
// replay_differential_test.cpp, cursor-fed vs materialized feeds in
// sim_stream_differential_test.cpp) bit-identical to each other.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "spf/sim/result.hpp"

namespace spf::test {

inline void expect_same_thread_metrics(const ThreadMetrics& a,
                                       const ThreadMetrics& b,
                                       std::size_t core) {
  SCOPED_TRACE("core " + std::to_string(core));
  EXPECT_EQ(a.demand_accesses, b.demand_accesses);
  EXPECT_EQ(a.l1_hits, b.l1_hits);
  EXPECT_EQ(a.l2_lookups, b.l2_lookups);
  EXPECT_EQ(a.totally_hits, b.totally_hits);
  EXPECT_EQ(a.partially_hits, b.partially_hits);
  EXPECT_EQ(a.totally_misses, b.totally_misses);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);
  EXPECT_EQ(a.prefetches_elided, b.prefetches_elided);
  EXPECT_EQ(a.prefetches_dropped, b.prefetches_dropped);
  EXPECT_EQ(a.stall_cycles, b.stall_cycles);
  EXPECT_EQ(a.finish_time, b.finish_time);
}

inline void expect_same_result(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.per_core.size(), b.per_core.size());
  for (std::size_t i = 0; i < a.per_core.size(); ++i) {
    expect_same_thread_metrics(a.per_core[i], b.per_core[i], i);
  }

  EXPECT_EQ(a.pollution.case1_reuse_displaced, b.pollution.case1_reuse_displaced);
  EXPECT_EQ(a.pollution.case2_helper_displaced,
            b.pollution.case2_helper_displaced);
  EXPECT_EQ(a.pollution.case3_hw_displaced, b.pollution.case3_hw_displaced);
  EXPECT_EQ(a.pollution.prefetch_caused_evictions,
            b.pollution.prefetch_caused_evictions);
  EXPECT_EQ(a.pollution.total_evictions, b.pollution.total_evictions);

  EXPECT_EQ(a.l2.lookups, b.l2.lookups);
  EXPECT_EQ(a.l2.hits, b.l2.hits);
  EXPECT_EQ(a.l2.misses, b.l2.misses);
  EXPECT_EQ(a.l2.fills, b.l2.fills);
  EXPECT_EQ(a.l2.evictions, b.l2.evictions);
  EXPECT_EQ(a.l2.evicted_unused_helper, b.l2.evicted_unused_helper);
  EXPECT_EQ(a.l2.evicted_unused_hw, b.l2.evicted_unused_hw);

  EXPECT_EQ(a.mshr.allocations, b.mshr.allocations);
  EXPECT_EQ(a.mshr.merges, b.mshr.merges);
  EXPECT_EQ(a.mshr.demand_merges_into_prefetch,
            b.mshr.demand_merges_into_prefetch);
  EXPECT_EQ(a.mshr.full_rejections, b.mshr.full_rejections);
  EXPECT_EQ(a.mshr.peak_occupancy, b.mshr.peak_occupancy);

  EXPECT_EQ(a.memory.requests, b.memory.requests);
  for (int o = 0; o < 3; ++o) {
    EXPECT_EQ(a.memory.requests_by_origin[o], b.memory.requests_by_origin[o]);
  }
  EXPECT_EQ(a.memory.writebacks, b.memory.writebacks);
  EXPECT_EQ(a.memory.total_queue_delay, b.memory.total_queue_delay);
  EXPECT_EQ(a.memory.busy_cycles, b.memory.busy_cycles);

  EXPECT_EQ(a.hw_prefetches_issued, b.hw_prefetches_issued);
  EXPECT_EQ(a.polluted_set_count, b.polluted_set_count);
  EXPECT_EQ(a.top_polluted_sets, b.top_polluted_sets);
  EXPECT_EQ(a.makespan, b.makespan);

  ASSERT_EQ(a.occupancy.samples.size(), b.occupancy.samples.size());
  for (std::size_t i = 0; i < a.occupancy.samples.size(); ++i) {
    const OccupancySample& x = a.occupancy.samples[i];
    const OccupancySample& y = b.occupancy.samples[i];
    SCOPED_TRACE("occupancy sample " + std::to_string(i));
    EXPECT_EQ(x.when, y.when);
    EXPECT_EQ(x.demand_lines, y.demand_lines);
    EXPECT_EQ(x.helper_used, y.helper_used);
    EXPECT_EQ(x.helper_unused, y.helper_unused);
    EXPECT_EQ(x.hw_used, y.hw_used);
    EXPECT_EQ(x.hw_unused, y.hw_unused);
  }
}

}  // namespace spf::test
