// Unit tests for the memory controller timing model.
#include <gtest/gtest.h>

#include "spf/memsys/memory.hpp"

namespace spf {
namespace {

MemoryConfig cfg(Cycle latency, Cycle interval) {
  MemoryConfig c;
  c.service_latency = latency;
  c.issue_interval = interval;
  return c;
}

TEST(MemoryControllerTest, UncontendedRequestPaysServiceLatency) {
  MemoryController mem(cfg(300, 8));
  EXPECT_EQ(mem.issue(1000, FillOrigin::kDemand), 1300u);
  EXPECT_EQ(mem.stats().total_queue_delay, 0u);
}

TEST(MemoryControllerTest, BackToBackRequestsSerialize) {
  MemoryController mem(cfg(300, 8));
  EXPECT_EQ(mem.issue(0, FillOrigin::kDemand), 300u);
  // Second request at the same instant starts 8 cycles later.
  EXPECT_EQ(mem.issue(0, FillOrigin::kDemand), 308u);
  EXPECT_EQ(mem.issue(0, FillOrigin::kDemand), 316u);
  EXPECT_EQ(mem.stats().total_queue_delay, 8u + 16u);
}

TEST(MemoryControllerTest, IdleChannelDoesNotDelayLateRequest) {
  MemoryController mem(cfg(100, 8));
  mem.issue(0, FillOrigin::kDemand);
  // A request long after the channel freed starts immediately.
  EXPECT_EQ(mem.issue(5000, FillOrigin::kDemand), 5100u);
}

TEST(MemoryControllerTest, PerOriginAccounting) {
  MemoryController mem(cfg(100, 4));
  mem.issue(0, FillOrigin::kDemand);
  mem.issue(0, FillOrigin::kHelper);
  mem.issue(0, FillOrigin::kHelper);
  mem.issue(0, FillOrigin::kHardware);
  const auto& s = mem.stats();
  EXPECT_EQ(s.requests, 4u);
  EXPECT_EQ(s.requests_by_origin[static_cast<int>(FillOrigin::kDemand)], 1u);
  EXPECT_EQ(s.requests_by_origin[static_cast<int>(FillOrigin::kHelper)], 2u);
  EXPECT_EQ(s.requests_by_origin[static_cast<int>(FillOrigin::kHardware)], 1u);
}

TEST(MemoryControllerTest, BusyCyclesAndMeanDelay) {
  MemoryController mem(cfg(100, 10));
  mem.issue(0, FillOrigin::kDemand);
  mem.issue(0, FillOrigin::kDemand);  // waits 10
  EXPECT_EQ(mem.stats().busy_cycles, 20u);
  EXPECT_DOUBLE_EQ(mem.stats().mean_queue_delay(), 5.0);
}

TEST(MemoryControllerTest, CompletionMonotoneInIssueOrder) {
  MemoryController mem(cfg(200, 6));
  Cycle prev = 0;
  for (int i = 0; i < 50; ++i) {
    const Cycle done = mem.issue(static_cast<Cycle>(i), FillOrigin::kDemand);
    EXPECT_GE(done, prev);
    prev = done;
  }
}

TEST(MemoryControllerTest, WritebackOccupiesChannelSlot) {
  MemoryController mem(cfg(100, 10));
  mem.writeback(0);
  EXPECT_EQ(mem.stats().writebacks, 1u);
  EXPECT_EQ(mem.stats().requests, 0u);  // writebacks are not fill requests
  // The next fill waits behind the writeback's slot.
  EXPECT_EQ(mem.issue(0, FillOrigin::kDemand), 110u);
}

TEST(MemoryControllerTest, WritebackAfterIdleDoesNotStackDelay) {
  MemoryController mem(cfg(100, 10));
  mem.writeback(1000);
  EXPECT_EQ(mem.issue(2000, FillOrigin::kDemand), 2100u);
}

TEST(MemoryControllerTest, ResetStatsKeepsChannelState) {
  MemoryController mem(cfg(100, 10));
  mem.issue(0, FillOrigin::kDemand);
  mem.reset_stats();
  EXPECT_EQ(mem.stats().requests, 0u);
  // Channel is still busy from the pre-reset request.
  EXPECT_EQ(mem.issue(0, FillOrigin::kDemand), 110u);
}

}  // namespace
}  // namespace spf
