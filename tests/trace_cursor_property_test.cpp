// Property tests for the lazy trace adaptors (spf/trace/trace_cursor.hpp,
// HelperViewCursor in spf/core/helper_gen.hpp): over randomized traces and
// SP parameters, every cursor stream must equal its materializing reference
// record-for-record —
//
//   * MergeByIterCursor == merge_traces_by_iter, including the documented
//     a-before-b tie order (helper_gen.hpp's tie-break contract) and on
//     inputs that are not sorted by outer_iter (the merge is defined by its
//     head-comparison rule, not by sortedness);
//   * three-way MergeByIterCursor == the left fold of two-way merges on
//     iter-sorted inputs;
//   * HelperViewCursor == make_helper_trace across randomized SpParams,
//     covering a_ski = 0, round > trace length, empty traces, prefetch-
//     instruction helpers, and the a_pre = 0 assertion (both paths die);
//   * HelperViewCursor::fill (the bulk window refill) == the advance loop
//     for arbitrary chunk sizes;
//   * re-anchored HelperViewCursor == the materialized helper after the
//     refinement's outer_iter -= A_SKI mutation pass;
//   * reset() replays the identical stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "spf/common/rng.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/trace/trace.hpp"
#include "spf/trace/trace_cursor.hpp"

namespace spf {
namespace {

template <TraceCursor Cursor>
std::vector<TraceRecord> drain(Cursor& cursor) {
  std::vector<TraceRecord> out;
  for (; !cursor.done(); cursor.advance()) out.push_back(cursor.current());
  return out;
}

std::vector<TraceRecord> to_vector(const TraceBuffer& trace) {
  return {trace.begin(), trace.end()};
}

AccessKind random_kind(Xoshiro256& rng) {
  switch (rng.below(4)) {
    case 0: return AccessKind::kWrite;
    default: return AccessKind::kRead;
  }
}

/// Random trace with workload-shaped (non-decreasing, grouped) outer_iters
/// and a mix of spine/delinquent flags.
TraceBuffer random_trace(std::uint64_t seed, std::size_t max_records) {
  Xoshiro256 rng(seed);
  TraceBuffer t;
  const std::size_t n = rng.below(max_records + 1);
  std::uint32_t iter = static_cast<std::uint32_t>(rng.below(4));
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.below(3) == 0) iter += static_cast<std::uint32_t>(rng.below(3));
    TraceFlags flags = 0;
    if (rng.below(4) == 0) flags |= kFlagSpine;
    if (rng.below(3) == 0) flags |= kFlagDelinquent;
    t.emit((rng.next() & 0xffff) * 64, iter, random_kind(rng),
           static_cast<std::uint8_t>(rng.below(8)), flags,
           static_cast<std::uint32_t>(rng.below(16)));
  }
  return t;
}

/// Random trace with *arbitrary* (unsorted) outer_iters.
TraceBuffer random_unsorted_trace(std::uint64_t seed, std::size_t max_records) {
  Xoshiro256 rng(seed);
  TraceBuffer t;
  const std::size_t n = rng.below(max_records + 1);
  for (std::size_t i = 0; i < n; ++i) {
    t.emit((rng.next() & 0xffff) * 64, static_cast<std::uint32_t>(rng.below(32)),
           random_kind(rng), static_cast<std::uint8_t>(rng.below(8)),
           static_cast<TraceFlags>(rng.below(4)),
           static_cast<std::uint32_t>(rng.below(16)));
  }
  return t;
}

SpParams random_params(Xoshiro256& rng) {
  // Biased toward edge shapes: a_ski = 0 and rounds longer than the trace.
  SpParams p;
  switch (rng.below(4)) {
    case 0: p.a_ski = 0; break;
    case 1: p.a_ski = static_cast<std::uint32_t>(1 + rng.below(4)); break;
    case 2: p.a_ski = static_cast<std::uint32_t>(1 + rng.below(64)); break;
    default: p.a_ski = static_cast<std::uint32_t>(1000 + rng.below(100000));
  }
  p.a_pre = static_cast<std::uint32_t>(1 + rng.below(8));
  return p;
}

class MergePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergePropertyTest, TwoWayCursorEqualsMaterializedMerge) {
  const TraceBuffer a = random_trace(GetParam() * 2 + 1, 200);
  const TraceBuffer b = random_trace(GetParam() * 2 + 2, 200);
  const TraceBuffer merged = merge_traces_by_iter(a, b);

  MergeByIterCursor cursor{TraceViewCursor(a), TraceViewCursor(b)};
  EXPECT_EQ(drain(cursor), to_vector(merged));
}

TEST_P(MergePropertyTest, UnsortedInputsStillMatchTheHeadComparisonRule) {
  const TraceBuffer a = random_unsorted_trace(GetParam() * 3 + 1, 150);
  const TraceBuffer b = random_unsorted_trace(GetParam() * 3 + 2, 150);
  const TraceBuffer merged = merge_traces_by_iter(a, b);

  MergeByIterCursor cursor{TraceViewCursor(a), TraceViewCursor(b)};
  EXPECT_EQ(drain(cursor), to_vector(merged));
}

TEST_P(MergePropertyTest, ThreeWayCursorEqualsFoldedTwoWayMerge) {
  const TraceBuffer a = random_trace(GetParam() * 5 + 1, 120);
  const TraceBuffer b = random_trace(GetParam() * 5 + 2, 120);
  const TraceBuffer c = random_trace(GetParam() * 5 + 3, 120);
  const TraceBuffer folded =
      merge_traces_by_iter(merge_traces_by_iter(a, b), c);

  MergeByIterCursor cursor{TraceViewCursor(a), TraceViewCursor(b),
                           TraceViewCursor(c)};
  EXPECT_EQ(drain(cursor), to_vector(folded));
}

TEST_P(MergePropertyTest, ResetReplaysTheSameStream) {
  const TraceBuffer a = random_trace(GetParam() * 7 + 1, 100);
  const TraceBuffer b = random_trace(GetParam() * 7 + 2, 100);
  MergeByIterCursor cursor{TraceViewCursor(a), TraceViewCursor(b)};
  const std::vector<TraceRecord> first = drain(cursor);
  cursor.reset();
  EXPECT_EQ(drain(cursor), first);
}

class HelperViewPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HelperViewPropertyTest, CursorEqualsMaterializedHelper) {
  Xoshiro256 rng(GetParam() ^ 0x9e3779b97f4a7c15ull);
  const TraceBuffer main_trace = random_trace(GetParam(), 300);
  for (int round = 0; round < 8; ++round) {
    const SpParams params = random_params(rng);
    HelperGenOptions options;
    options.use_prefetch_instructions = rng.below(2) == 1;
    options.helper_compute_gap = static_cast<std::uint16_t>(rng.below(8));
    SCOPED_TRACE(params.to_string());

    const TraceBuffer helper = make_helper_trace(main_trace, params, options);
    HelperViewCursor cursor(main_trace, params, options);
    EXPECT_EQ(drain(cursor), to_vector(helper));

    cursor.reset();
    EXPECT_EQ(drain(cursor), to_vector(helper));
  }
}

TEST_P(HelperViewPropertyTest, BulkFillEqualsAdvanceLoop) {
  // fill() (the BulkTraceCursor refinement CursorWindowSource prefers) must
  // hand out exactly the advance-loop stream, for any chunk size — including
  // chunks that end mid-round and a final short chunk.
  Xoshiro256 rng(GetParam() ^ 0xda942042e4dd58b5ull);
  const TraceBuffer main_trace = random_trace(GetParam() + 2000, 300);
  for (int round = 0; round < 8; ++round) {
    const SpParams params = random_params(rng);
    HelperGenOptions options;
    options.use_prefetch_instructions = rng.below(2) == 1;
    options.helper_compute_gap = static_cast<std::uint16_t>(rng.below(8));
    const std::size_t chunk = 1 + rng.below(17);
    SCOPED_TRACE(params.to_string() + " chunk=" + std::to_string(chunk));

    HelperViewCursor reference(main_trace, params, options);
    const std::vector<TraceRecord> expected = drain(reference);

    HelperViewCursor cursor(main_trace, params, options);
    std::vector<TraceRecord> bulk;
    std::vector<TraceRecord> buf(chunk);
    while (!cursor.done()) {
      const std::size_t n = cursor.fill(buf.data(), buf.size());
      ASSERT_GT(n, 0u);
      bulk.insert(bulk.end(), buf.begin(), buf.begin() + n);
    }
    EXPECT_EQ(cursor.fill(buf.data(), buf.size()), 0u);  // exhausted
    EXPECT_EQ(bulk, expected);
  }
}

TEST_P(HelperViewPropertyTest, ReanchoredCursorEqualsMutatedHelper) {
  Xoshiro256 rng(GetParam() ^ 0x5851f42d4c957f2dull);
  const TraceBuffer main_trace = random_trace(GetParam() + 1000, 300);
  for (int round = 0; round < 8; ++round) {
    const SpParams params = random_params(rng);
    SCOPED_TRACE(params.to_string());

    // The refinement's materialized transform: helper, then re-anchor.
    TraceBuffer helper = make_helper_trace(main_trace, params);
    for (TraceRecord& r : helper.mutable_records()) {
      r.outer_iter =
          r.outer_iter >= params.a_ski ? r.outer_iter - params.a_ski : 0;
    }

    HelperViewCursor cursor(main_trace, params, {}, /*re_anchor=*/true);
    EXPECT_EQ(drain(cursor), to_vector(helper));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25));
INSTANTIATE_TEST_SUITE_P(Seeds, HelperViewPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(HelperViewEdgeTest, EmptyTraceYieldsEmptyView) {
  const TraceBuffer empty;
  HelperViewCursor cursor(empty, SpParams{.a_ski = 2, .a_pre = 2});
  EXPECT_TRUE(cursor.done());
  cursor.reset();
  EXPECT_TRUE(cursor.done());
}

TEST(HelperViewEdgeTest, SkipOnlyRoundsKeepOnlySpine) {
  TraceBuffer t;
  t.emit(0, 0, AccessKind::kRead, 0, kFlagSpine);
  t.emit(64, 0, AccessKind::kRead, 1);
  t.emit(128, 1, AccessKind::kRead, 2);
  // Round of 9 over 2 iterations: every record is in the skip phase.
  HelperViewCursor cursor(t, SpParams{.a_ski = 8, .a_pre = 1});
  const std::vector<TraceRecord> kept = drain(cursor);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].addr, 0u);
  EXPECT_TRUE(kept[0].is_spine());
}

TEST(HelperViewDeathTest, ZeroPreExecuteDiesLikeTheReference) {
  const TraceBuffer t = random_trace(1, 10);
  const SpParams params{.a_ski = 3, .a_pre = 0};
  EXPECT_DEATH((void)make_helper_trace(t, params), "pre-execute");
  EXPECT_DEATH(HelperViewCursor(t, params), "pre-execute");
}

}  // namespace
}  // namespace spf
