// Tests for the mini loop IR: builder/verifier, interpreter semantics,
// helper-thread slicing, and the EM3D encoding cross-checked against the
// hand-instrumented trace emitter.
#include <gtest/gtest.h>

#include <set>

#include "spf/ir/interp.hpp"
#include "spf/ir/ir.hpp"
#include "spf/ir/slice.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/ir/vm.hpp"
#include "spf/profile/invocations.hpp"
#include "spf/trace/trace_stats.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/em3d_ir.hpp"
#include "spf/workloads/mcf_ir.hpp"
#include "spf/workloads/mst_ir.hpp"

namespace spf::ir {
namespace {

TEST(VirtualMemoryTest, ReadWriteAndAlignment) {
  VirtualMemory vm;
  EXPECT_EQ(vm.read(0x100), 0u);  // untouched reads as zero
  vm.write(0x100, 42);
  EXPECT_EQ(vm.read(0x100), 42u);
  EXPECT_EQ(vm.read(0x104), 42u);  // same aligned word
  vm.write(0x108, 7);
  EXPECT_EQ(vm.read(0x108), 7u);
  EXPECT_EQ(vm.resident_words(), 2u);
}

TEST(VerifyTest, AcceptsWellFormedProgram) {
  ProgramBuilder b(4);
  const auto c = b.constant(100);
  const auto i = b.iter_index();
  b.load(b.add(c, i), 0);
  EXPECT_TRUE(verify(b.take()).empty());
}

TEST(VerifyTest, RejectsForwardReference) {
  Program p;
  p.outer_trip = 1;
  p.code.push_back(Instr{.op = OpCode::kAdd, .a = 0, .b = 1});  // self/forward
  EXPECT_NE(verify(p).find("earlier instruction"), std::string::npos);
}

TEST(VerifyTest, RejectsNestedLoops) {
  Program p;
  p.outer_trip = 1;
  p.code.push_back(Instr{.op = OpCode::kConst, .imm = 2});
  p.code.push_back(Instr{.op = OpCode::kLoopBegin, .a = 0});
  p.code.push_back(Instr{.op = OpCode::kLoopBegin, .a = 0});
  p.code.push_back(Instr{.op = OpCode::kLoopEnd});
  p.code.push_back(Instr{.op = OpCode::kLoopEnd});
  EXPECT_NE(verify(p).find("nested"), std::string::npos);
}

TEST(VerifyTest, RejectsUnterminatedLoopAndBadReg) {
  Program p;
  p.outer_trip = 1;
  p.num_regs = 2;
  p.code.push_back(Instr{.op = OpCode::kConst, .imm = 2});
  p.code.push_back(Instr{.op = OpCode::kLoopBegin, .a = 0});
  p.code.push_back(Instr{.op = OpCode::kRegRead, .imm = 9});
  const std::string err = verify(p);
  EXPECT_NE(err.find("unterminated"), std::string::npos);
  EXPECT_NE(err.find("register"), std::string::npos);
}

TEST(InterpTest, ArithmeticAndRegisters) {
  // reg0 accumulates iteration indices: after 5 iterations reg0 = 0+1+2+3+4,
  // stored to address 0x1000 each iteration.
  ProgramBuilder b(5);
  const auto acc = b.reg_read(0);
  const auto i = b.iter_index();
  const auto sum = b.add(acc, i);
  b.reg_write(0, sum);
  const auto addr = b.constant(0x1000);
  b.store(addr, sum, 7);
  Program p = b.take();

  VirtualMemory vm;
  const InterpResult r = interpret(p, vm);
  EXPECT_EQ(vm.read(0x1000), 10u);
  EXPECT_EQ(r.stores, 5u);
  EXPECT_EQ(r.trace.size(), 5u);
  EXPECT_EQ(r.trace[0].kind(), AccessKind::kWrite);
  EXPECT_EQ(r.trace[4].outer_iter, 4u);
}

TEST(InterpTest, PointerChaseFollowsMemory) {
  // A three-node circular list at 0x100 -> 0x200 -> 0x300 -> 0x100.
  VirtualMemory vm;
  vm.write(0x100, 0x200);
  vm.write(0x200, 0x300);
  vm.write(0x300, 0x100);

  ProgramBuilder b(6);
  const auto cur = b.reg_read(0);
  const auto next = b.load(cur, 1, kFlagSpine);
  b.reg_write(0, next);
  Program p = b.take();
  p.reg_init = {0x100};

  const InterpResult r = interpret(p, vm);
  ASSERT_EQ(r.trace.size(), 6u);
  EXPECT_EQ(r.trace[0].addr, 0x100u);
  EXPECT_EQ(r.trace[1].addr, 0x200u);
  EXPECT_EQ(r.trace[2].addr, 0x300u);
  EXPECT_EQ(r.trace[3].addr, 0x100u);  // wrapped
}

TEST(InterpTest, InnerLoopWithRuntimeTripCount) {
  // Inner trip count loaded from memory: mem[0x10] = 3.
  VirtualMemory vm;
  vm.write(0x10, 3);
  ProgramBuilder b(2);
  const auto trip = b.load(b.constant(0x10), 0);
  b.loop_begin(trip);
  const auto j = b.inner_index();
  const auto base = b.constant(0x1000);
  b.load(b.add(base, b.shl(j, 3)), 1);
  b.loop_end();
  Program p = b.take();

  const InterpResult r = interpret(p, vm);
  // Per outer iteration: 1 trip load + 3 inner loads.
  EXPECT_EQ(r.loads, 2u * 4u);
  // Inner loads hit 0x1000, 0x1008, 0x1010.
  EXPECT_EQ(r.trace[1].addr, 0x1000u);
  EXPECT_EQ(r.trace[2].addr, 0x1008u);
  EXPECT_EQ(r.trace[3].addr, 0x1010u);
}

TEST(InterpTest, ZeroTripLoopBodySkipped) {
  VirtualMemory vm;
  ProgramBuilder b(3);
  const auto zero = b.constant(0);
  b.loop_begin(zero);
  b.load(b.constant(0x99), 1);
  b.loop_end();
  b.load(b.constant(0x42), 2);
  const InterpResult r = interpret(b.take(), vm);
  EXPECT_EQ(r.loads, 3u);  // only the post-loop load, once per iteration
  for (const TraceRecord& rec : r.trace) EXPECT_EQ(rec.addr, 0x42u);
}

TEST(InterpTest, Deterministic) {
  Em3dConfig cfg;
  cfg.nodes = 200;
  cfg.arity = 8;
  cfg.passes = 1;
  Em3dWorkload model(cfg);
  Em3dIr a = build_em3d_ir(model);
  Em3dIr bb = build_em3d_ir(model);
  const InterpResult ra = interpret(a.program, a.memory);
  const InterpResult rb = interpret(bb.program, bb.memory);
  EXPECT_EQ(ra.store_checksum, rb.store_checksum);
  EXPECT_EQ(ra.trace.size(), rb.trace.size());
}

// ---------------------------------------------------------------------------
// Slicing.

TEST(SliceTest, Em3dSliceKeepsAddressPathDropsValuePath) {
  Em3dConfig cfg;
  cfg.nodes = 100;
  cfg.arity = 4;
  cfg.passes = 1;
  Em3dWorkload model(cfg);
  const Em3dIr em3d = build_em3d_ir(model);
  const SliceMasks masks = build_helper_slice(em3d.program);
  const SliceStats stats = slice_stats(em3d.program, masks);

  EXPECT_GT(stats.helper_instrs, 0u);
  EXPECT_LT(stats.helper_instrs, stats.program_instrs);
  EXPECT_EQ(stats.dropped_stores, 1u);  // node->value writeback
  EXPECT_GT(stats.dropped_compute, 0u);  // coeff load + mul/sub/acc chain

  // Per-instruction checks: every delinquent load kept; the coefficient
  // load and the store dropped; the spine register update kept in both
  // masks.
  for (std::size_t i = 0; i < em3d.program.code.size(); ++i) {
    const Instr& ins = em3d.program.code[i];
    if (ins.op == OpCode::kLoad && (ins.flags & kFlagDelinquent)) {
      EXPECT_TRUE(masks.helper_mask[i]);
    }
    if (ins.op == OpCode::kLoad && ins.site == kEm3dCoeffs) {
      EXPECT_FALSE(masks.helper_mask[i]) << "value-only load kept";
    }
    if (ins.op == OpCode::kStore) {
      EXPECT_FALSE(masks.helper_mask[i]);
    }
    if (ins.op == OpCode::kRegWrite && ins.imm == 0) {
      EXPECT_TRUE(masks.spine_mask[i]) << "spine update missing from skip set";
    }
    if (ins.op == OpCode::kRegWrite && ins.imm == 1) {
      EXPECT_FALSE(masks.helper_mask[i]) << "accumulator kept";
    }
  }
}

TEST(SliceTest, ArrayScanHasEmptySpine) {
  // MCF-shaped loop: arc = base + i*64 (recomputed from the induction
  // variable, no loop-carried pointer), so skipping costs nothing.
  ProgramBuilder b(10);
  const auto base = b.constant(0x10000);
  const auto i = b.iter_index();
  const auto arc = b.add(base, b.shl(i, 6));
  const auto tail = b.load(arc, 0);  // address-gen
  b.load(tail, 1, kFlagDelinquent);  // potential
  const SliceMasks masks = build_helper_slice(b.take());
  EXPECT_EQ(masks.spine_count(), 0u);
  EXPECT_GT(masks.helper_count(), 0u);
}

TEST(SliceDeathTest, NoDelinquentLoadsIsAnError) {
  ProgramBuilder b(2);
  b.load(b.constant(0x10), 0);
  const Program p = b.take();
  EXPECT_DEATH((void)build_helper_slice(p), "delinquent");
}

// ---------------------------------------------------------------------------
// Helper interpretation (round structure).

TEST(HelperInterpTest, SkipPhaseTouchesOnlySpine) {
  Em3dConfig cfg;
  cfg.nodes = 64;
  cfg.arity = 4;
  cfg.passes = 1;
  Em3dWorkload model(cfg);
  Em3dIr em3d = build_em3d_ir(model);
  const SliceMasks masks = build_helper_slice(em3d.program);
  const SpParams params{.a_ski = 4, .a_pre = 4};
  const InterpResult helper =
      interpret_helper(em3d.program, masks, params, em3d.memory);

  EXPECT_EQ(helper.stores, 0u);
  for (const TraceRecord& r : helper.trace) {
    const std::uint32_t pos = r.outer_iter % 8;
    if (pos < 4) {
      // Skip phase: only the next-pointer chase.
      EXPECT_TRUE(r.is_spine()) << "iter " << r.outer_iter;
      EXPECT_EQ(r.site, kEm3dNode);
    }
  }
  // Pre-execute iterations carry the delinquent loads.
  std::set<std::uint32_t> delinquent_iters;
  for (const TraceRecord& r : helper.trace) {
    if (r.is_delinquent()) delinquent_iters.insert(r.outer_iter % 8);
  }
  EXPECT_EQ(delinquent_iters, (std::set<std::uint32_t>{4, 5, 6, 7}));
}

TEST(HelperInterpTest, HelperChasesTheRealChain) {
  // The helper's spine must follow the same node sequence as the main
  // program: compare the spine-load address streams.
  Em3dConfig cfg;
  cfg.nodes = 50;
  cfg.arity = 2;
  cfg.passes = 1;
  Em3dWorkload model(cfg);
  Em3dIr em3d = build_em3d_ir(model);
  const SliceMasks masks = build_helper_slice(em3d.program);
  const InterpResult main_run = interpret(em3d.program, em3d.memory);
  const InterpResult helper = interpret_helper(
      em3d.program, masks, SpParams{.a_ski = 0, .a_pre = 5}, em3d.memory);

  auto spine_next_addrs = [](const TraceBuffer& t) {
    std::vector<Addr> addrs;
    for (const TraceRecord& r : t) {
      // The next-pointer load is the spine load at offset 8 of the node.
      if (r.is_spine() && (r.addr & 63) == 8) addrs.push_back(r.addr);
    }
    return addrs;
  };
  EXPECT_EQ(spine_next_addrs(main_run.trace), spine_next_addrs(helper.trace));
}

TEST(HelperInterpTest, SliceHelperIsLeanerThanFlagHelper) {
  // The slicing-based helper drops the coefficient loads the trace-flag
  // transform keeps: fewer records for the same delinquent coverage.
  Em3dConfig cfg;
  cfg.nodes = 128;
  cfg.arity = 8;
  cfg.passes = 1;
  Em3dWorkload model(cfg);
  Em3dIr em3d = build_em3d_ir(model);
  const SliceMasks masks = build_helper_slice(em3d.program);
  const SpParams params{.a_ski = 8, .a_pre = 8};

  const InterpResult main_run = interpret(em3d.program, em3d.memory);
  const InterpResult slice_helper =
      interpret_helper(em3d.program, masks, params, em3d.memory);
  const TraceBuffer flag_helper = spf::make_helper_trace(main_run.trace, params);

  auto count_delinquent = [](const TraceBuffer& t) {
    std::uint64_t n = 0;
    for (const TraceRecord& r : t) n += r.is_delinquent();
    return n;
  };
  EXPECT_EQ(count_delinquent(slice_helper.trace),
            count_delinquent(flag_helper));
  EXPECT_LT(slice_helper.trace.size(), flag_helper.size());
}



TEST(StripTest, StandaloneHelperMatchesMaskedExecution) {
  Em3dConfig cfg;
  cfg.nodes = 128;
  cfg.arity = 8;
  cfg.passes = 1;
  Em3dWorkload model(cfg);
  Em3dIr em3d = build_em3d_ir(model);
  const SliceMasks masks = build_helper_slice(em3d.program);

  // Stripped helper program, interpreted stand-alone (RP=1: every iteration
  // pre-executes, so masked execution == plain execution of the strip).
  Program helper_program = strip(em3d.program, masks.helper_mask);
  EXPECT_TRUE(verify(helper_program).empty());
  EXPECT_EQ(helper_program.size(), masks.helper_count());

  VirtualMemory vm_copy = em3d.memory;
  const InterpResult standalone = interpret(helper_program, vm_copy);
  const InterpResult masked = interpret_helper(
      em3d.program, masks, spf::SpParams{.a_ski = 0, .a_pre = 1}, em3d.memory);
  ASSERT_EQ(standalone.trace.size(), masked.trace.size());
  for (std::size_t i = 0; i < standalone.trace.size(); i += 17) {
    EXPECT_EQ(standalone.trace[i], masked.trace[i]) << "record " << i;
  }
  EXPECT_EQ(standalone.stores, 0u);
}

TEST(StripTest, IdentityMaskIsIdentity) {
  Em3dConfig cfg;
  cfg.nodes = 16;
  cfg.arity = 2;
  cfg.passes = 1;
  Em3dWorkload model(cfg);
  Em3dIr em3d = build_em3d_ir(model);
  const std::vector<bool> all(em3d.program.code.size(), true);
  const Program copy = strip(em3d.program, all);
  EXPECT_EQ(copy.size(), em3d.program.size());
  ir::VirtualMemory vm_a = em3d.memory;
  ir::VirtualMemory vm_b = em3d.memory;
  EXPECT_EQ(interpret(copy, vm_a).store_checksum,
            interpret(em3d.program, vm_b).store_checksum);
}

TEST(StripDeathTest, UnclosedMaskRejected) {
  ProgramBuilder b(2);
  const auto c = b.constant(0x40);
  b.load(c, 0);
  const Program p = b.take();
  std::vector<bool> mask{false, true};  // load kept, its address dropped
  EXPECT_DEATH((void)strip(p, mask), "not closed");
}

// ---------------------------------------------------------------------------
// MCF in IR: array-scan shape with an empty spine.

TEST(McfIrTest, SliceHasEmptySpineAndSkippingIsFree) {
  McfConfig cfg;
  cfg.nodes = 400;
  cfg.arcs = 2400;
  cfg.passes = 1;
  McfWorkload model(cfg);
  McfIr mcf = build_mcf_ir(model);
  const SliceMasks masks = build_helper_slice(mcf.program);
  EXPECT_EQ(masks.spine_count(), 0u);

  // Skip iterations execute nothing at all: with a_ski=3, a_pre=1 the
  // helper touches exactly 1/4 of the iterations.
  const InterpResult helper = interpret_helper(
      mcf.program, masks, spf::SpParams{.a_ski = 3, .a_pre = 1}, mcf.memory);
  std::set<std::uint32_t> touched_iters;
  for (const TraceRecord& r : helper.trace) touched_iters.insert(r.outer_iter);
  EXPECT_EQ(touched_iters.size(), cfg.arcs / 4);
  for (std::uint32_t it : touched_iters) EXPECT_EQ(it % 4, 3u);
}

TEST(McfIrTest, PotentialLoadsFollowArcEndpoints) {
  McfConfig cfg;
  cfg.nodes = 200;
  cfg.arcs = 1000;
  cfg.passes = 1;
  McfWorkload model(cfg);
  McfIr mcf = build_mcf_ir(model);
  const InterpResult run = interpret(mcf.program, mcf.memory);
  // Per iteration: 3 arc-line loads + 2 potential loads.
  EXPECT_EQ(run.loads, 5ull * cfg.arcs);
  // Check a few iterations dereference the right nodes.
  std::size_t idx = 0;
  for (std::uint32_t a = 0; a < 20; ++a) {
    EXPECT_EQ(run.trace[idx + 3].addr, model.node_addr(model.tail_of(a)));
    EXPECT_EQ(run.trace[idx + 4].addr, model.node_addr(model.head_of(a)));
    idx += 5;
  }
}

TEST(McfIrTest, PassesWrapTheArcIndex) {
  McfConfig cfg;
  cfg.nodes = 100;
  cfg.arcs = 500;
  cfg.passes = 3;
  McfWorkload model(cfg);
  McfIr mcf = build_mcf_ir(model);
  const InterpResult run = interpret(mcf.program, mcf.memory);
  EXPECT_EQ(run.trace[run.trace.size() - 1].outer_iter, 3u * 500u - 1u);
  // First load of pass 2 hits arc 0 again.
  const std::size_t per_iter = 5;
  EXPECT_EQ(run.trace[cfg.arcs * per_iter].addr, model.arc_addr(0));
}


// ---------------------------------------------------------------------------
// MST in IR: list spine + data-dependent hash-chain walk.

TEST(MstIrTest, ScanFollowsRemainingListAndWalksChains) {
  MstConfig cfg;
  cfg.vertices = 300;
  cfg.degree = 32;
  cfg.buckets = 16;
  MstWorkload model(cfg);
  MstIr mst = build_mst_ir(model);
  const InterpResult run = interpret(mst.program, mst.memory);

  // One spine visit per remaining vertex, in first-scan order.
  const auto order = model.first_scan_order();
  std::vector<Addr> spine_addrs;
  for (const TraceRecord& r : run.trace) {
    if (r.is_spine() && (r.addr & 63) == 8) spine_addrs.push_back(r.addr - 8);
  }
  ASSERT_EQ(spine_addrs.size(), order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    EXPECT_EQ(spine_addrs[k], model.vertex_addr(order[k])) << "visit " << k;
  }

  // Chain walks match the model's chain lengths for the scanned bucket.
  const std::uint32_t bucket = model.bucket_of_key(model.first_scan_new_vertex());
  std::uint64_t expected_entries = 0;
  for (std::uint32_t u : order) {
    expected_entries += model.chain_entry_addrs(u, bucket).size();
  }
  std::uint64_t walked = 0;
  for (const TraceRecord& r : run.trace) {
    walked += r.site == kMstHashEntry;
  }
  EXPECT_EQ(walked, expected_entries);
  EXPECT_EQ(run.stores, order.size());  // one mindist update per visit
}

TEST(MstIrTest, SliceKeepsSpineBucketAndChain) {
  MstConfig cfg;
  cfg.vertices = 200;
  cfg.degree = 32;
  cfg.buckets = 16;
  MstWorkload model(cfg);
  MstIr mst = build_mst_ir(model);
  const SliceMasks masks = build_helper_slice(mst.program);
  // The vertex-list spine must survive in the skip mask (reg0 chase).
  EXPECT_GT(masks.spine_count(), 0u);
  // The helper keeps bucket + chain loads, drops the store.
  const InterpResult helper = interpret_helper(
      mst.program, masks, spf::SpParams{.a_ski = 4, .a_pre = 4}, mst.memory);
  EXPECT_EQ(helper.stores, 0u);
  bool saw_bucket = false;
  bool saw_entry = false;
  for (const TraceRecord& r : helper.trace) {
    saw_bucket |= r.site == kMstBucket;
    saw_entry |= r.site == kMstHashEntry;
    if (r.outer_iter % 8 < 4) {
      EXPECT_TRUE(r.is_spine()) << "non-spine record in skip phase";
    }
  }
  EXPECT_TRUE(saw_bucket);
  EXPECT_TRUE(saw_entry);
}

// ---------------------------------------------------------------------------
// Differential: IR encoding vs hand-instrumented emitter.

TEST(Em3dIrDifferentialTest, SameCacheBehaviourAsTraceEmitter) {
  Em3dConfig cfg;
  cfg.nodes = 2000;
  cfg.arity = 16;
  cfg.passes = 1;
  Em3dWorkload model(cfg);
  Em3dIr em3d = build_em3d_ir(model);
  const InterpResult ir_run = interpret(em3d.program, em3d.memory);
  const TraceBuffer emitter_trace = model.emit_trace();

  // Identical structural counts where granularities agree.
  const CacheGeometry l2(128 * 1024, 16, 64);
  const TraceSummary ir_sum = summarize_trace(ir_run.trace, l2);
  const TraceSummary em_sum = summarize_trace(emitter_trace, l2);
  EXPECT_EQ(ir_sum.outer_iterations, em_sum.outer_iterations);
  EXPECT_EQ(ir_sum.delinquent_accesses, em_sum.delinquent_accesses);
  EXPECT_EQ(ir_sum.writes, em_sum.writes);
  // Same data structures -> same cache-line footprint.
  EXPECT_EQ(ir_sum.distinct_lines, em_sum.distinct_lines);
  EXPECT_EQ(ir_sum.distinct_sets, em_sum.distinct_sets);

  // And Set Affinity — the paper's quantity — must agree closely: the two
  // encodings touch the same lines in the same iteration order.
  const WorkloadSaResult ir_sa =
      analyze_workload_sa(ir_run.trace, model.invocation_starts(), l2);
  const WorkloadSaResult em_sa =
      analyze_workload_sa(emitter_trace, model.invocation_starts(), l2);
  ASSERT_TRUE(ir_sa.merged.any_saturated());
  ASSERT_TRUE(em_sa.merged.any_saturated());
  EXPECT_EQ(ir_sa.merged.min_sa(), em_sa.merged.min_sa());
  EXPECT_EQ(ir_sa.merged.max_sa(), em_sa.merged.max_sa());
}

}  // namespace
}  // namespace spf::ir
