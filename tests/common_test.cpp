// Unit tests for spf_common: RNG, statistics, CSV tables, CLI flags, ring
// buffer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <sstream>
#include <vector>

#include "spf/common/arena.hpp"
#include "spf/common/cli.hpp"
#include "spf/common/csv.hpp"
#include "spf/common/ring_buffer.hpp"
#include "spf/common/rng.hpp"
#include "spf/common/simd_match.hpp"
#include "spf/common/stats.hpp"

namespace spf {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256Test, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256Test, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Test, RangeInclusiveBounds) {
  Xoshiro256 rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256Test, BelowIsRoughlyUniform) {
  Xoshiro256 rng(13);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  Xoshiro256 rng(3);
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmptyIsIdentity) {
  RunningStat a;
  a.add(1.0);
  a.add(3.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-100.0);  // clamps to first bucket
  h.add(100.0);   // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.5);
}

TEST(QuantileSketchTest, ExactOrderStatistics) {
  QuantileSketch q;
  for (int i = 100; i >= 1; --i) q.add(i);
  EXPECT_EQ(q.count(), 100u);
  EXPECT_DOUBLE_EQ(q.min(), 1.0);
  EXPECT_DOUBLE_EQ(q.max(), 100.0);
  EXPECT_NEAR(q.quantile(0.5), 50.0, 1.0);
}

TEST(TableTest, AlignedAndCsvOutput) {
  Table t({"name", "value"});
  t.row().add("alpha").add(std::int64_t{42});
  t.row().add("b,eta").add(3.14159, 2);
  const std::string text = t.to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"b,eta\""), std::string::npos);
  EXPECT_NE(csv.find("3.14"), std::string::npos);
}

TEST(TableTest, QuoteEscapingInCsv) {
  Table t({"x"});
  t.row().add("say \"hi\"");
  EXPECT_NE(t.to_csv().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(CliFlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--n=5", "--verbose", "--rate=2.5",
                        "positional", "--name=abc"};
  CliFlags flags(6, argv);
  EXPECT_EQ(flags.get_int("n", 0), 5);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(flags.get("name", ""), "abc");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(CliFlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CliFlags flags(1, argv);
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_FALSE(flags.get_bool("missing", false));
  EXPECT_EQ(flags.get("missing", "d"), "d");
}

TEST(CliFlagsTest, UnconsumedDetectsTypos) {
  const char* argv[] = {"prog", "--good=1", "--typo=2"};
  CliFlags flags(3, argv);
  (void)flags.get_int("good", 0);
  const auto unknown = flags.unconsumed();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(RingBufferTest, PushUntilFullThenEvictsOldest) {
  RingBuffer<int> rb(3);
  int evicted = -1;
  EXPECT_FALSE(rb.push(1, &evicted));
  EXPECT_FALSE(rb.push(2, &evicted));
  EXPECT_FALSE(rb.push(3, &evicted));
  EXPECT_TRUE(rb.full());
  EXPECT_TRUE(rb.push(4, &evicted));
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(rb[0], 2);
  EXPECT_EQ(rb[2], 4);
}

TEST(RingBufferTest, ClearEmpties) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb[0], 9);
}

TEST(FormatFixedTest, Precision) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(ArenaTest, BumpAllocationIsAlignedAndCounted) {
  Arena arena(256);
  EXPECT_EQ(arena.bytes_served(), 0u);
  void* a = arena.allocate(10, 8);
  void* b = arena.allocate(10, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_GE(arena.bytes_served(), 20u);
  // Bigger than the chunk size: the arena grows a dedicated chunk.
  void* big = arena.allocate(4096, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
  EXPECT_GE(arena.chunk_count(), 2u);
  arena.release();
  EXPECT_EQ(arena.chunk_count(), 0u);
}

TEST(ArenaTest, AllocatorBacksVectorsAndFallsBackToHeap) {
  Arena arena;
  std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>> v{
      ArenaAllocator<std::uint64_t>(&arena)};
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v[999], 999u);
  EXPECT_GT(arena.bytes_served(), 0u);

  // Null arena: plain heap semantics (so default-constructed containers work).
  std::vector<int, ArenaAllocator<int>> heap_backed;
  heap_backed.assign(100, 7);
  EXPECT_EQ(heap_backed[99], 7);
  EXPECT_FALSE(ArenaAllocator<int>(&arena) == ArenaAllocator<int>(nullptr));
}

#ifdef SPF_SIMD_MATCH
TEST(SimdMatchTest, MaskMatchesScalarScan) {
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.below(64));
    std::vector<std::uint64_t> vals(n);
    for (auto& v : vals) v = rng.below(8);  // dense duplicates
    const std::uint64_t needle = rng.below(8);
    std::uint64_t expected = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (vals[i] == needle) expected |= std::uint64_t{1} << i;
    }
    EXPECT_EQ(simd::match_mask_u64(vals.data(), n, needle), expected)
        << "n=" << n << " trial=" << trial;
  }
}
#endif  // SPF_SIMD_MATCH

}  // namespace
}  // namespace spf
