// Unit tests for the workload models: EM3D, MCF-lite, MST — structure
// invariants, trace shape, determinism, and the native EM3D kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "spf/trace/trace_stats.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/em3d_native.hpp"
#include "spf/workloads/mcf.hpp"
#include "spf/workloads/mst.hpp"
#include "spf/workloads/vheap.hpp"

namespace spf {
namespace {

Em3dConfig small_em3d() {
  Em3dConfig c;
  c.nodes = 200;
  c.arity = 8;
  c.passes = 2;
  return c;
}

TEST(VirtualHeapTest, BumpAllocationWithAlignment) {
  VirtualHeap heap(0x1000);
  const Addr a = heap.allocate(10, 8);
  const Addr b = heap.allocate(10, 64);
  EXPECT_EQ(a, 0x1000u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GT(b, a);
  EXPECT_GE(heap.used(), 20u);
}

TEST(VirtualHeapTest, RegionsNeverOverlap) {
  VirtualHeap heap;
  Addr prev_end = 0;
  for (int i = 1; i <= 100; ++i) {
    const Addr start = heap.allocate(static_cast<std::uint64_t>(i) * 3, 16);
    EXPECT_GE(start, prev_end);
    prev_end = start + static_cast<std::uint64_t>(i) * 3;
  }
}

TEST(Em3dTest, BipartiteDependencies) {
  Em3dWorkload w(small_em3d());
  const std::uint32_t half = w.config().nodes / 2;
  for (std::uint32_t i = 0; i < w.config().nodes; ++i) {
    const std::uint32_t* deps = w.targets_of(i);
    for (std::uint32_t j = 0; j < w.config().arity; ++j) {
      if (i < half) {
        EXPECT_GE(deps[j], half) << "E node depends on E node";
      } else {
        EXPECT_LT(deps[j], half) << "H node depends on H node";
      }
    }
  }
}

TEST(Em3dTest, NodeAddressesAreDistinctLines) {
  Em3dWorkload w(small_em3d());
  std::set<Addr> addrs;
  for (std::uint32_t i = 0; i < w.config().nodes; ++i) {
    EXPECT_EQ(w.node_addr(i) % 64, 0u);
    addrs.insert(w.node_addr(i));
  }
  EXPECT_EQ(addrs.size(), w.config().nodes);
}

TEST(Em3dTest, TraceShapePerIteration) {
  Em3dConfig cfg = small_em3d();
  cfg.passes = 1;
  Em3dWorkload w(cfg);
  const TraceBuffer t = w.emit_trace();
  // Per iteration: 1 spine + arity delinquent + ptr/coeff line touches + 1
  // write. arity=8 -> 1 ptr line + 1 coeff line.
  EXPECT_EQ(t.size(), static_cast<std::size_t>(cfg.nodes) * (1 + 1 + 1 + 8 + 1));
  EXPECT_EQ(t.outer_iterations(), cfg.nodes);

  const TraceSummary s = summarize_trace(t, CacheGeometry::core2_l2());
  EXPECT_EQ(s.spine_accesses, cfg.nodes);
  EXPECT_EQ(s.delinquent_accesses, static_cast<std::uint64_t>(cfg.nodes) * 8);
  EXPECT_EQ(s.writes, cfg.nodes);
}

TEST(Em3dTest, PreludeArityZeroKeepsTraceByteIdentical) {
  Em3dConfig base = small_em3d();
  Em3dConfig explicit_off = small_em3d();
  explicit_off.prelude_arity = 0;  // the default: fixture disengaged
  const TraceBuffer ta = Em3dWorkload(base).emit_trace();
  const TraceBuffer tb = Em3dWorkload(explicit_off).emit_trace();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
}

TEST(Em3dTest, PreludeAritySlimsEveryPassButTheLast) {
  // The late-tight-phase fixture: non-final passes walk only a dependency
  // prefix, so the full-arity (pressured) pass arrives *last* — the phase
  // ordering the per-phase capping ablation needs (see ROADMAP).
  Em3dConfig cfg = small_em3d();  // passes = 2, arity = 8
  cfg.prelude_arity = 2;
  Em3dWorkload w(cfg);
  const TraceBuffer t = w.emit_trace();

  // Count delinquent records per pass: the prelude pass dereferences 2 deps
  // per node, the final pass all 8.
  std::vector<std::uint64_t> per_pass(cfg.passes, 0);
  for (const TraceRecord& r : t) {
    if (r.site == kEm3dFromValue) ++per_pass[r.outer_iter / cfg.nodes];
  }
  EXPECT_EQ(per_pass[0], static_cast<std::uint64_t>(cfg.nodes) * 2);
  EXPECT_EQ(per_pass[1], static_cast<std::uint64_t>(cfg.nodes) * 8);

  // The prelude walks a *prefix* of the same dependency list, not a
  // different topology: both passes visit identical first-two targets.
  // (Spot-check through the workload's own accessors.)
  for (std::uint32_t i = 0; i < cfg.nodes; i += 37) {
    const std::uint32_t* deps = w.targets_of(i);
    EXPECT_LT(deps[0], cfg.nodes);
    EXPECT_LT(deps[1], cfg.nodes);
  }
  // Iteration count is unchanged — the fixture thins work per node, it does
  // not drop nodes, so invocation starts and phase windows stay comparable.
  EXPECT_EQ(t.outer_iterations(), cfg.nodes * cfg.passes);
}

TEST(Em3dTest, EveryIterationStartsWithSpine) {
  Em3dWorkload w(small_em3d());
  const TraceBuffer t = w.emit_trace();
  std::uint32_t prev_iter = ~0u;
  for (const TraceRecord& r : t) {
    if (r.outer_iter != prev_iter) {
      EXPECT_TRUE(r.is_spine());
      EXPECT_EQ(r.site, kEm3dNode);
      prev_iter = r.outer_iter;
    }
  }
}

TEST(Em3dTest, DeterministicAcrossConstructions) {
  Em3dWorkload a(small_em3d());
  Em3dWorkload b(small_em3d());
  const TraceBuffer ta = a.emit_trace();
  const TraceBuffer tb = b.emit_trace();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); i += 97) {
    EXPECT_EQ(ta[i], tb[i]);
  }
}

TEST(Em3dTest, SeedChangesTopology) {
  Em3dConfig c1 = small_em3d();
  Em3dConfig c2 = small_em3d();
  c2.seed = 777;
  const TraceBuffer t1 = Em3dWorkload(c1).emit_trace();
  const TraceBuffer t2 = Em3dWorkload(c2).emit_trace();
  bool differs = false;
  for (std::size_t i = 0; i < t1.size() && !differs; ++i) {
    differs = !(t1[i] == t2[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(Em3dTest, InvocationStartsPerPass) {
  Em3dWorkload w(small_em3d());
  const auto starts = w.invocation_starts();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 200u);
}

TEST(Em3dTest, ShufflePlacementScattersNeighbors) {
  Em3dConfig shuffled = small_em3d();
  Em3dConfig linear = small_em3d();
  linear.shuffle_placement = false;
  Em3dWorkload ws(shuffled);
  Em3dWorkload wl(linear);
  // Linear placement: consecutive list nodes are memory-adjacent.
  EXPECT_EQ(wl.node_addr(1) - wl.node_addr(0), 64u);
  // Shuffled placement: overwhelmingly not.
  std::uint32_t adjacent = 0;
  for (std::uint32_t i = 1; i < 200; ++i) {
    if (ws.node_addr(i) > ws.node_addr(i - 1) &&
        ws.node_addr(i) - ws.node_addr(i - 1) == 64) {
      ++adjacent;
    }
  }
  EXPECT_LT(adjacent, 20u);
}

TEST(Em3dNativeTest, ComputeMatchesTopology) {
  Em3dWorkload model(small_em3d());
  Em3dGraph graph(model);
  EXPECT_EQ(graph.node_count(), 200u);
  // The list must chain all nodes.
  std::uint32_t chained = 0;
  for (Em3dNode* n = graph.head(); n != nullptr; n = n->next) ++chained;
  EXPECT_EQ(chained, 200u);
  const double before = graph.checksum();
  const double result = graph.compute_pass();
  EXPECT_NE(before, graph.checksum());
  EXPECT_TRUE(std::isfinite(result));
}

TEST(Em3dNativeTest, ComputeIsDeterministic) {
  Em3dWorkload model(small_em3d());
  Em3dGraph a(model);
  Em3dGraph b(model);
  EXPECT_DOUBLE_EQ(a.compute_pass(), b.compute_pass());
  EXPECT_DOUBLE_EQ(a.compute_pass(), b.compute_pass());
}

TEST(Em3dNativeTest, HelperPassCountsPrefetches) {
  Em3dWorkload model(small_em3d());
  Em3dGraph graph(model);
  // RP=0.5, round 20: helper prefetches deps of half the nodes.
  const std::uint64_t prefetches = graph.helper_pass(10, 10);
  EXPECT_EQ(prefetches, 100u * 8u);
  // RP=1: all nodes.
  EXPECT_EQ(graph.helper_pass(0, 10), 200u * 8u);
}

TEST(Em3dNativeTest, HelperPassDoesNotMutateValues) {
  Em3dWorkload model(small_em3d());
  Em3dGraph graph(model);
  const double before = graph.checksum();
  graph.helper_pass(5, 5);
  EXPECT_DOUBLE_EQ(graph.checksum(), before);
}

McfConfig small_mcf() {
  McfConfig c;
  c.nodes = 500;
  c.arcs = 3000;
  c.passes = 2;
  return c;
}

TEST(McfTest, ArcScanIsSequential) {
  McfWorkload w(small_mcf());
  const TraceBuffer t = w.emit_trace();
  Addr prev_arc = 0;
  bool first = true;
  for (const TraceRecord& r : t) {
    if (r.site != kMcfArc) continue;
    if (r.outer_iter >= w.config().arcs) break;  // pass 2 restarts
    if (!first) {
      EXPECT_EQ(r.addr, prev_arc + 64);
    }
    prev_arc = r.addr;
    first = false;
  }
}

TEST(McfTest, PotentialReadsAreDelinquentAndIrregular) {
  McfWorkload w(small_mcf());
  const TraceBuffer t = w.emit_trace();
  std::unordered_set<Addr> potential_addrs;
  for (const TraceRecord& r : t) {
    if (r.site == kMcfTailPotential || r.site == kMcfHeadPotential) {
      EXPECT_TRUE(r.is_delinquent());
      potential_addrs.insert(r.addr);
    }
  }
  // Many distinct node lines are touched.
  EXPECT_GT(potential_addrs.size(), 200u);
}

TEST(McfTest, NoSpineRecords) {
  // Array scans need no pointer-chased spine: the helper skips for free.
  McfWorkload w(small_mcf());
  const TraceBuffer t = w.emit_trace();
  const TraceSummary s = summarize_trace(t, CacheGeometry::core2_l2());
  EXPECT_EQ(s.spine_accesses, 0u);
}

TEST(McfTest, PivotWritesBetweenPasses) {
  McfWorkload w(small_mcf());
  const TraceBuffer t = w.emit_trace();
  std::uint64_t pivot_writes = 0;
  for (const TraceRecord& r : t) {
    if (r.site == kMcfPivot) {
      EXPECT_EQ(r.kind(), AccessKind::kWrite);
      ++pivot_writes;
    }
  }
  EXPECT_EQ(pivot_writes,
            static_cast<std::uint64_t>(w.config().pivots_per_pass) * 2);
}

TEST(McfTest, InvocationStartsPerPass) {
  McfWorkload w(small_mcf());
  const auto starts = w.invocation_starts();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[1], 3000u);
  EXPECT_EQ(w.outer_iterations(), 6000u);
}

TEST(McfTest, Deterministic) {
  const TraceBuffer a = McfWorkload(small_mcf()).emit_trace();
  const TraceBuffer b = McfWorkload(small_mcf()).emit_trace();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 131) EXPECT_EQ(a[i], b[i]);
}

MstConfig small_mst() {
  MstConfig c;
  c.vertices = 120;
  c.degree = 16;
  c.buckets = 32;
  return c;
}

TEST(MstTest, IterationAccountingMatchesShrinkingScans) {
  MstWorkload w(small_mst());
  // Full Prim: steps v-1, scans of v-1, v-2, ... 1 iterations.
  const std::uint64_t expected = 119ull * 120ull / 2ull;
  EXPECT_EQ(w.outer_iterations(), expected);
  EXPECT_EQ(w.invocation_starts().size(), 119u);
  const TraceBuffer t = w.emit_trace();
  EXPECT_EQ(t.outer_iterations(), expected);
}

TEST(MstTest, EveryIterationHasSpineAndBucket) {
  MstWorkload w(small_mst());
  const TraceBuffer t = w.emit_trace();
  std::uint32_t iters_seen = 0;
  std::uint32_t prev = ~0u;
  bool saw_bucket = true;
  for (const TraceRecord& r : t) {
    if (r.outer_iter != prev) {
      EXPECT_TRUE(saw_bucket) << "iteration " << prev << " had no bucket read";
      EXPECT_TRUE(r.is_spine());
      EXPECT_EQ(r.site, kMstVertex);
      prev = r.outer_iter;
      ++iters_seen;
      saw_bucket = false;
    }
    if (r.site == kMstBucket) saw_bucket = true;
  }
  EXPECT_EQ(iters_seen, w.outer_iterations());
}

TEST(MstTest, ChainWalkStopsAtMatch) {
  // Chain reads per iteration are bounded by the bucket's chain length
  // (degree/buckets on average); just check they are small and delinquent.
  MstWorkload w(small_mst());
  const TraceBuffer t = w.emit_trace();
  std::uint64_t chain_reads = 0;
  std::uint64_t iters = w.outer_iterations();
  for (const TraceRecord& r : t) {
    if (r.site == kMstHashEntry) {
      EXPECT_TRUE(r.is_delinquent());
      ++chain_reads;
    }
  }
  // Average chain walk should be well under 4 entries with degree 16 over 32
  // buckets.
  EXPECT_LT(chain_reads, iters * 4);
}

TEST(MstTest, MaxStepsCapsWork) {
  MstConfig c = small_mst();
  c.max_steps = 5;
  MstWorkload w(c);
  EXPECT_EQ(w.invocation_starts().size(), 5u);
  EXPECT_EQ(w.outer_iterations(), 119u + 118u + 117u + 116u + 115u);
}

TEST(MstTest, Deterministic) {
  const TraceBuffer a = MstWorkload(small_mst()).emit_trace();
  const TraceBuffer b = MstWorkload(small_mst()).emit_trace();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 101) EXPECT_EQ(a[i], b[i]);
}

TEST(PaperScaleConfigsTest, MatchTable2Inputs) {
  EXPECT_EQ(Em3dConfig::paper_scale().nodes, 400000u);
  EXPECT_EQ(Em3dConfig::paper_scale().arity, 128u);
  EXPECT_EQ(MstConfig::paper_scale().vertices, 10000u);
  EXPECT_GT(McfConfig::paper_scale().arcs, 100000u);
}

}  // namespace
}  // namespace spf
