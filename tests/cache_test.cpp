// Unit tests for spf_cache: lookup/fill/evict semantics, per-line provenance
// metadata, and every replacement policy.
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "spf/cache/cache.hpp"
#include "spf/common/rng.hpp"

namespace spf {
namespace {

// Tiny geometry: 4 sets x 2 ways of 64B lines.
CacheGeometry tiny() { return CacheGeometry(512, 2, 64); }

// Line address mapping to set `s` with tag index `t` under tiny().
LineAddr line_in_set(std::uint64_t s, std::uint64_t t) { return s + 4 * t; }

TEST(CacheTest, MissThenFillThenHit) {
  Cache c(tiny(), ReplacementKind::kLru);
  const LineAddr line = line_in_set(1, 0);
  EXPECT_FALSE(c.access(line, AccessKind::kRead, 0));
  EXPECT_FALSE(c.fill(line, FillOrigin::kDemand, 0, 1).has_value());
  EXPECT_TRUE(c.access(line, AccessKind::kRead, 2));
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().fills, 1u);
}

TEST(CacheTest, ProbeHasNoSideEffects) {
  Cache c(tiny(), ReplacementKind::kLru);
  EXPECT_EQ(c.probe(5), nullptr);
  c.fill(5, FillOrigin::kHelper, 1, 0);
  const CacheLine* line = c.probe(5);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->origin, FillOrigin::kHelper);
  EXPECT_FALSE(line->used_since_fill);
  EXPECT_EQ(c.stats().lookups, 0u);  // probes are not counted
}

TEST(CacheTest, EvictionReturnsVictimWithMetadata) {
  Cache c(tiny(), ReplacementKind::kLru);
  c.fill(line_in_set(2, 0), FillOrigin::kHelper, 1, 10);
  c.fill(line_in_set(2, 1), FillOrigin::kDemand, 0, 11);
  // Set 2 is full (2 ways); third fill evicts LRU = the helper line.
  auto ev = c.fill(line_in_set(2, 2), FillOrigin::kHardware, 0, 12);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->victim.line, line_in_set(2, 0));
  EXPECT_EQ(ev->victim.origin, FillOrigin::kHelper);
  EXPECT_FALSE(ev->victim.used_since_fill);
  EXPECT_EQ(ev->replaced_by, line_in_set(2, 2));
  EXPECT_EQ(ev->replaced_by_origin, FillOrigin::kHardware);
  EXPECT_EQ(ev->when, 12u);
  EXPECT_EQ(c.stats().evicted_unused_helper, 1u);
}

TEST(CacheTest, DemandTouchMarksUsed) {
  Cache c(tiny(), ReplacementKind::kLru);
  c.fill(7, FillOrigin::kHelper, 1, 0);
  EXPECT_FALSE(c.probe(7)->used_since_fill);
  c.access(7, AccessKind::kRead, 1);
  EXPECT_TRUE(c.probe(7)->used_since_fill);
}

TEST(CacheTest, PrefetchTouchDoesNotMarkUsed) {
  Cache c(tiny(), ReplacementKind::kLru);
  c.fill(7, FillOrigin::kHardware, 0, 0);
  c.access(7, AccessKind::kPrefetch, 1);
  EXPECT_FALSE(c.probe(7)->used_since_fill);
}

TEST(CacheTest, WriteSetsDirty) {
  Cache c(tiny(), ReplacementKind::kLru);
  c.fill(3, FillOrigin::kDemand, 0, 0);
  EXPECT_FALSE(c.probe(3)->dirty);
  c.access(3, AccessKind::kWrite, 1);
  EXPECT_TRUE(c.probe(3)->dirty);
}

TEST(CacheTest, RefillOfPresentLineDoesNotEvict) {
  Cache c(tiny(), ReplacementKind::kLru);
  c.fill(9, FillOrigin::kHelper, 1, 0);
  const auto ev = c.fill(9, FillOrigin::kHardware, 0, 1);
  EXPECT_FALSE(ev.has_value());
  // Origin is preserved; a racing prefetch completion must not retag.
  EXPECT_EQ(c.probe(9)->origin, FillOrigin::kHelper);
  EXPECT_EQ(c.stats().fills, 1u);
}

TEST(CacheTest, DemandRefillUpgradesUsedBit) {
  Cache c(tiny(), ReplacementKind::kLru);
  c.fill(9, FillOrigin::kHelper, 1, 0);
  c.fill(9, FillOrigin::kDemand, 0, 1);
  EXPECT_TRUE(c.probe(9)->used_since_fill);
}

TEST(CacheTest, MarkDirtyWithoutTouchingRecency) {
  Cache c(CacheGeometry(256, 4, 64), ReplacementKind::kLru);  // 1 set
  for (LineAddr l = 0; l < 4; ++l) c.fill(l, FillOrigin::kDemand, 0, l);
  EXPECT_TRUE(c.mark_dirty(0));
  EXPECT_TRUE(c.probe(0)->dirty);
  EXPECT_FALSE(c.mark_dirty(99));
  // Line 0 is still the LRU victim: mark_dirty must not promote it.
  const auto ev = c.fill(50, FillOrigin::kDemand, 0, 10);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->victim.line, 0u);
  EXPECT_TRUE(ev->victim.dirty);
}

TEST(CacheTest, InvalidateRemovesLine) {
  Cache c(tiny(), ReplacementKind::kLru);
  c.fill(4, FillOrigin::kDemand, 0, 0);
  EXPECT_TRUE(c.invalidate(4));
  EXPECT_EQ(c.probe(4), nullptr);
  EXPECT_FALSE(c.invalidate(4));
}

TEST(CacheTest, SetOccupancyCounts) {
  Cache c(tiny(), ReplacementKind::kLru);
  EXPECT_EQ(c.set_occupancy(0), 0u);
  c.fill(line_in_set(0, 0), FillOrigin::kDemand, 0, 0);
  c.fill(line_in_set(0, 1), FillOrigin::kDemand, 0, 1);
  c.fill(line_in_set(1, 0), FillOrigin::kDemand, 0, 2);
  EXPECT_EQ(c.set_occupancy(0), 2u);
  EXPECT_EQ(c.set_occupancy(1), 1u);
}

TEST(CacheTest, ForEachLineVisitsAllValid) {
  Cache c(tiny(), ReplacementKind::kLru);
  c.fill(1, FillOrigin::kDemand, 0, 0);
  c.fill(2, FillOrigin::kDemand, 0, 0);
  std::set<LineAddr> seen;
  c.for_each_line([&](const CacheLine& l) { seen.insert(l.line); });
  EXPECT_EQ(seen, (std::set<LineAddr>{1, 2}));
}

// Moves transfer the whole state machine: the destination continues exactly
// where the source left off, and the moved-from cache can be reassigned a
// fresh Cache and reused (the only supported reuse pattern).
TEST(CacheTest, MoveTransfersStateAndMovedFromIsReassignable) {
  Cache src(tiny(), ReplacementKind::kLru);
  const LineAddr a = line_in_set(0, 0);
  const LineAddr b = line_in_set(0, 1);
  EXPECT_FALSE(src.access(a, AccessKind::kRead, 0));
  src.fill(a, FillOrigin::kHelper, 3, 1);
  src.fill(b, FillOrigin::kDemand, 0, 2);

  Cache dst = std::move(src);
  // Contents, metadata, stats, and replacement state all came across.
  ASSERT_NE(dst.probe(a), nullptr);
  EXPECT_EQ(dst.probe(a)->origin, FillOrigin::kHelper);
  EXPECT_EQ(dst.probe(a)->filler_core, 3u);
  ASSERT_NE(dst.probe(b), nullptr);
  EXPECT_EQ(dst.stats().fills, 2u);
  EXPECT_EQ(dst.stats().misses, 1u);
  EXPECT_EQ(dst.set_occupancy(0), 2u);
  // LRU continuity: `a` is older than `b`, so the next fill into the full
  // set evicts `a` — same as it would have in the source.
  const auto evicted = dst.fill(line_in_set(0, 2), FillOrigin::kDemand, 0, 3);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->victim.line, a);

  // Reassigning the moved-from shell yields a fully functional cache.
  src = Cache(tiny(), ReplacementKind::kFifo);
  EXPECT_EQ(src.policy(), ReplacementKind::kFifo);
  EXPECT_EQ(src.stats().lookups, 0u);
  EXPECT_FALSE(src.access(a, AccessKind::kRead, 0));
  src.fill(a, FillOrigin::kDemand, 0, 1);
  EXPECT_TRUE(src.access(a, AccessKind::kRead, 2));
  EXPECT_EQ(src.set_occupancy(0), 1u);
}

TEST(LruPolicyTest, EvictsLeastRecentlyTouched) {
  Cache c(CacheGeometry(256, 4, 64), ReplacementKind::kLru);  // 1 set, 4 ways
  for (LineAddr l = 0; l < 4; ++l) c.fill(l, FillOrigin::kDemand, 0, l);
  c.access(0, AccessKind::kRead, 10);  // refresh line 0
  const auto ev = c.fill(99, FillOrigin::kDemand, 0, 11);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->victim.line, 1u);  // oldest untouched
}

TEST(FifoPolicyTest, HitsDoNotRefresh) {
  Cache c(CacheGeometry(256, 4, 64), ReplacementKind::kFifo);
  for (LineAddr l = 0; l < 4; ++l) c.fill(l, FillOrigin::kDemand, 0, l);
  c.access(0, AccessKind::kRead, 10);  // FIFO ignores this
  const auto ev = c.fill(99, FillOrigin::kDemand, 0, 11);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->victim.line, 0u);  // oldest fill despite the hit
}

TEST(TreePlruPolicyTest, VictimIsNeverMostRecentlyUsed) {
  Cache c(CacheGeometry(512, 8, 64), ReplacementKind::kTreePlru);  // 1 set
  for (LineAddr l = 0; l < 8; ++l) c.fill(l, FillOrigin::kDemand, 0, l);
  for (int round = 0; round < 20; ++round) {
    const LineAddr touched = round % 8;
    c.access(touched, AccessKind::kRead, 100 + round);
    // Fill a fresh line; PLRU must not evict the line touched immediately
    // before.
    const auto ev = c.fill(1000 + round, FillOrigin::kDemand, 0, 200 + round);
    ASSERT_TRUE(ev.has_value());
    EXPECT_NE(ev->victim.line, touched);
    // Restore the evicted line so the set keeps its working set shape.
    c.invalidate(1000 + round);
    c.fill(ev->victim.line, FillOrigin::kDemand, 0, 300 + round);
  }
}

TEST(RandomPolicyTest, EventuallyEvictsEveryWay) {
  Cache c(CacheGeometry(256, 4, 64), ReplacementKind::kRandom, 1234);
  for (LineAddr l = 0; l < 4; ++l) c.fill(l, FillOrigin::kDemand, 0, l);
  std::set<LineAddr> victims;
  LineAddr next = 100;
  for (int i = 0; i < 200 && victims.size() < 4; ++i) {
    const auto ev = c.fill(next, FillOrigin::kDemand, 0, 10 + i);
    ASSERT_TRUE(ev.has_value());
    victims.insert(ev->victim.line % 4 == ev->victim.line ? ev->victim.line
                                                          : ev->victim.line);
    ++next;
  }
  // With 200 random evictions the original 4 lines are long gone; just check
  // multiple distinct ways were victimized early on.
  EXPECT_GE(victims.size(), 3u);
}

TEST(SrripPolicyTest, HitPromotionProtectsReusedLines) {
  Cache c(CacheGeometry(256, 4, 64), ReplacementKind::kSrrip);
  for (LineAddr l = 0; l < 4; ++l) c.fill(l, FillOrigin::kDemand, 0, l);
  // Promote lines 0 and 1 to RRPV 0; lines 2,3 stay at insertion RRPV.
  c.access(0, AccessKind::kRead, 5);
  c.access(1, AccessKind::kRead, 6);
  const auto ev = c.fill(50, FillOrigin::kDemand, 0, 7);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->victim.line == 2 || ev->victim.line == 3);
}

TEST(ReplacementFactoryTest, RoundTripsNames) {
  for (ReplacementKind k :
       {ReplacementKind::kLru, ReplacementKind::kTreePlru, ReplacementKind::kFifo,
        ReplacementKind::kRandom, ReplacementKind::kSrrip}) {
    EXPECT_EQ(replacement_from_string(to_string(k)), k);
  }
  EXPECT_THROW((void)replacement_from_string("bogus"), std::invalid_argument);
}

// Property: with LRU and a cyclic footprint of ways+1 lines in one set, every
// access misses (classic LRU pathological case) — validates strict LRU order.
TEST(LruPropertyTest, CyclicOverCapacityAlwaysMisses) {
  Cache c(CacheGeometry(256, 4, 64), ReplacementKind::kLru);
  for (int round = 0; round < 10; ++round) {
    for (LineAddr l = 0; l < 5; ++l) {
      EXPECT_FALSE(c.access(l, AccessKind::kRead, 0)) << "round " << round;
      c.fill(l, FillOrigin::kDemand, 0, 0);
    }
  }
  EXPECT_EQ(c.stats().hits, 0u);
}

// Property: any policy keeps at most `ways` valid lines per set and never
// loses the just-filled line.
class PolicyPropertyTest : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(PolicyPropertyTest, OccupancyBoundedAndFillVisible) {
  const CacheGeometry g(1024, 4, 64);  // 4 sets x 4 ways
  Cache c(g, GetParam(), 42);
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const LineAddr line = rng.below(64);
    if (!c.access(line, AccessKind::kRead, i)) {
      c.fill(line, FillOrigin::kDemand, 0, i);
      ASSERT_NE(c.probe(line), nullptr) << "fill not visible";
    }
    for (std::uint64_t s = 0; s < g.num_sets(); ++s) {
      ASSERT_LE(c.set_occupancy(s), g.ways());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyPropertyTest,
                         ::testing::Values(ReplacementKind::kLru,
                                           ReplacementKind::kTreePlru,
                                           ReplacementKind::kFifo,
                                           ReplacementKind::kRandom,
                                           ReplacementKind::kSrrip),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

}  // namespace
}  // namespace spf
