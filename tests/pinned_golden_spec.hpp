// The pinned 36-cell golden grid shared by the golden-sweep and telemetry
// differential suites: 3 workloads × 3 distances × 2 RP regimes × 2 helper
// kinds × 1 geometry. Frozen — changing any knob here invalidates the
// checked-in goldens under tests/golden (regenerate via SPF_REGEN_GOLDEN=1,
// see golden_sweep_test.cpp).
#pragma once

#include "spf/orchestrate/sweep.hpp"
#include "spf/orchestrate/workload_specs.hpp"

namespace spf::orchestrate {

inline SweepSpec pinned_golden_spec() {
  Em3dConfig em3d;
  em3d.nodes = 2000;
  em3d.arity = 8;
  em3d.passes = 1;
  McfConfig mcf;
  mcf.nodes = 1000;
  mcf.arcs = 6000;
  mcf.passes = 2;
  MstConfig mst;
  mst.vertices = 400;
  mst.degree = 8;
  mst.buckets = 32;

  SweepSpec spec;
  spec.workloads.push_back(em3d_spec(em3d));
  spec.workloads.push_back(mcf_spec(mcf));
  spec.workloads.push_back(mst_spec(mst));
  spec.distances = {1, 2, 4};
  spec.rps = {0.5, 1.0};
  spec.helpers = {HelperKind::kBlockingLoad, HelperKind::kPrefetchInstruction};
  spec.geometries = {CacheGeometry(64 << 10, 8, 64)};
  return spec;
}

}  // namespace spf::orchestrate
