// Coverage for small public-API corners not exercised by the behavioural
// suites: string renderings, counters, and summary helpers a downstream user
// would touch first.
#include <gtest/gtest.h>

#include "spf/cache/cache.hpp"
#include "spf/common/csv.hpp"
#include "spf/core/advisor.hpp"
#include "spf/core/experiment_context.hpp"
#include "spf/orchestrate/sweep.hpp"
#include "spf/prefetch/stream.hpp"
#include "spf/prefetch/stride.hpp"
#include "spf/sim/simulator.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/mcf.hpp"

namespace spf {
namespace {

TEST(ApiSurfaceTest, TableRowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().add("x");
  t.row().add("y");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(ApiSurfaceTest, TablePadsShortRows) {
  Table t({"a", "b", "c"});
  t.row().add("only-one-cell");
  const std::string text = t.to_string();
  EXPECT_NE(text.find("only-one-cell"), std::string::npos);
}

TEST(ApiSurfaceTest, CacheStatsHitRate) {
  CacheStats s;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.0);
  s.lookups = 10;
  s.hits = 4;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.4);
}

TEST(ApiSurfaceTest, OccupancyEmptySeries) {
  OccupancySeries series;
  EXPECT_TRUE(series.empty());
  EXPECT_DOUBLE_EQ(series.mean_unused_prefetch_fraction(), 0.0);
  EXPECT_EQ(series.peak_unused_prefetch(), 0u);
  // A sample with zero total lines must not divide by zero.
  series.samples.push_back(OccupancySample{.when = 1});
  EXPECT_DOUBLE_EQ(series.mean_unused_prefetch_fraction(), 0.0);
}

TEST(ApiSurfaceTest, MetricsToStringSmoke) {
  ThreadMetrics m;
  m.demand_accesses = 3;
  m.totally_misses = 2;
  EXPECT_NE(m.to_string().find("Tmiss=2"), std::string::npos);
  SimResult r;
  r.per_core.push_back(m);
  EXPECT_NE(r.to_string().find("core0"), std::string::npos);
  EXPECT_EQ(r.main().demand_accesses, 3u);
}

TEST(ApiSurfaceTest, PrefetcherIssuedCounters) {
  StrideConfig sc;
  sc.threshold = 1;
  sc.degree = 2;
  StridePrefetcher stride(sc);
  std::vector<LineAddr> out;
  for (int i = 0; i < 4; ++i) {
    stride.observe(PrefetchObservation{.addr = static_cast<Addr>(i) * 256,
                                       .site = 1, .was_miss = true}, out);
  }
  EXPECT_EQ(stride.issued(), out.size());

  StreamPrefetcher stream{StreamConfig{}};
  out.clear();
  stream.observe(PrefetchObservation{.addr = 0, .site = 0, .was_miss = true},
                 out);
  stream.observe(PrefetchObservation{.addr = 64, .site = 0, .was_miss = true},
                 out);
  EXPECT_EQ(stream.issued(), out.size());
}

TEST(ApiSurfaceTest, AdvisorOnMcfRecommendsLargeDistance) {
  McfConfig c;
  c.nodes = 3000;
  c.arcs = 18000;
  c.passes = 2;
  McfWorkload w(c);
  AdvisorConfig cfg;
  cfg.l2 = CacheGeometry(128 * 1024, 16, 64);
  cfg.validate = false;
  const AdvisorReport report =
      advise_sp(w.emit_trace(), w.invocation_starts(), cfg);
  // MCF's SA is huge: the bound (and hence the recommendation) should allow
  // distances in the hundreds at this scale.
  EXPECT_GT(report.bound.upper_limit, 100u);
  EXPECT_GE(report.recommended.a_ski, 50u);
  EXPECT_NEAR(report.rp, 0.5, 0.1);
}

TEST(ApiSurfaceTest, SpRunSummaryFromSimResult) {
  SimResult r;
  ThreadMetrics main;
  main.finish_time = 123;
  main.totally_hits = 7;
  main.partially_hits = 2;
  main.totally_misses = 5;
  main.l2_lookups = 14;
  r.per_core.push_back(main);
  ThreadMetrics helper;
  helper.finish_time = 99;
  r.per_core.push_back(helper);
  r.memory.requests = 42;
  const SpRunSummary s = SpRunSummary::from(r);
  EXPECT_EQ(s.runtime, 123u);
  EXPECT_EQ(s.memory_accesses(), 7u);
  EXPECT_EQ(s.helper_finish, 99u);
  EXPECT_EQ(s.memory_requests, 42u);
}

TEST(ApiSurfaceTest, ExperimentContextMatchesFreeFunctionsAndIsReusable) {
  Em3dConfig wl;
  wl.nodes = 1500;
  wl.arity = 8;
  wl.passes = 1;
  const TraceBuffer trace = Em3dWorkload(wl).emit_trace();

  SpExperimentConfig cfg;
  cfg.sim.l2 = CacheGeometry(64 * 1024, 8, 64);
  cfg.params = SpParams::from_distance_rp(4, 0.5);

  const SpComparison reference = run_sp_experiment(trace, cfg);

  ExperimentContext ctx;
  // First use and a reuse of the same context must both reproduce the free
  // function bit-for-bit (the context only recycles storage, never state).
  for (int pass = 0; pass < 2; ++pass) {
    SCOPED_TRACE("pass " + std::to_string(pass));
    const SpComparison got = ctx.run_comparison(trace, cfg);
    EXPECT_EQ(got.original.runtime, reference.original.runtime);
    EXPECT_EQ(got.original.totally_misses, reference.original.totally_misses);
    EXPECT_EQ(got.sp.runtime, reference.sp.runtime);
    EXPECT_EQ(got.sp.totally_hits, reference.sp.totally_hits);
    EXPECT_EQ(got.sp.partially_hits, reference.sp.partially_hits);
    EXPECT_EQ(got.sp.totally_misses, reference.sp.totally_misses);
    EXPECT_EQ(got.sp.helper_finish, reference.sp.helper_finish);
    EXPECT_EQ(got.sp.pollution.total_pollution(),
              reference.sp.pollution.total_pollution());
  }
  // Also usable with a different geometry afterwards (reset seam).
  SpExperimentConfig other = cfg;
  other.sim.l2 = CacheGeometry(128 * 1024, 16, 64);
  const SpComparison resized = ctx.run_comparison(trace, other);
  EXPECT_EQ(resized.original.runtime,
            run_original(trace, other).runtime);
  EXPECT_GT(ctx.arena_bytes(), 0u);
}

TEST(ApiSurfaceTest, ExperimentContextPoolLeases) {
  ExperimentContextPool pool(2);
  EXPECT_EQ(pool.idle(), 2u);
  {
    auto a = pool.acquire();
    auto b = pool.acquire();
    EXPECT_EQ(pool.idle(), 0u);
    // Oversubscription mints a temporary rather than blocking.
    auto c = pool.acquire();
    EXPECT_EQ(pool.idle(), 0u);
  }
  EXPECT_EQ(pool.idle(), 2u);
}

TEST(ApiSurfaceTest, SweepSpecValidateRejectsBadGrids) {
  using orchestrate::SweepSpec;
  SweepSpec empty;
  EXPECT_NE(empty.validate().find("no workloads"), std::string::npos);

  SweepSpec spec;
  spec.workloads.push_back(orchestrate::from_source(
      "w", orchestrate::TraceSource{}));
  EXPECT_TRUE(spec.validate().empty()) << spec.validate();

  SweepSpec bad_rp = spec;
  bad_rp.rps = {1.5};
  EXPECT_NE(bad_rp.validate().find("outside (0, 1]"), std::string::npos);
  bad_rp.rps = {0.0};
  EXPECT_NE(bad_rp.validate().find("outside (0, 1]"), std::string::npos);
  bad_rp.rps = {};
  EXPECT_NE(bad_rp.validate().find("no prefetch ratios"), std::string::npos);

  SweepSpec dup = spec;
  dup.distances = {4, 8, 4};
  EXPECT_NE(dup.validate().find("duplicate"), std::string::npos);
  dup.distances = {0};
  EXPECT_NE(dup.validate().find("distance 0"), std::string::npos);

  SweepSpec no_geom = spec;
  no_geom.geometries.clear();
  EXPECT_NE(no_geom.validate().find("no L2 geometries"), std::string::npos);

  SweepSpec no_helper = spec;
  no_helper.helpers.clear();
  EXPECT_NE(no_helper.validate().find("no helper kinds"), std::string::npos);

  // run_sweep refuses invalid specs loudly instead of crashing mid-grid.
  EXPECT_THROW((void)orchestrate::run_sweep(bad_rp), std::invalid_argument);
}

}  // namespace
}  // namespace spf
