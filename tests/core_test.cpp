// Unit tests for the SP core: parameter selection, helper-thread trace
// synthesis (Fig. 1(b) semantics), distance bound, and the experiment
// orchestrator's bookkeeping.
#include <gtest/gtest.h>

#include "spf/core/distance_bound.hpp"
#include "spf/core/experiment.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/core/sp_params.hpp"

namespace spf {
namespace {

TEST(SpParamsTest, RpAndRound) {
  const SpParams p{.a_ski = 30, .a_pre = 10};
  EXPECT_EQ(p.round(), 40u);
  EXPECT_DOUBLE_EQ(p.rp(), 0.25);
  EXPECT_FALSE(p.to_string().empty());
}

TEST(SpParamsTest, FromDistanceRpHalfMeansEqualSkipAndPre) {
  // Paper: CALR ~ 0 -> RP 0.5 -> A_SKI = A_PRE.
  const SpParams p = SpParams::from_distance_rp(32, 0.5);
  EXPECT_EQ(p.a_ski, 32u);
  EXPECT_EQ(p.a_pre, 32u);
  EXPECT_DOUBLE_EQ(p.rp(), 0.5);
}

TEST(SpParamsTest, FromDistanceRpOneIsConventionalHelper) {
  // Paper: CALR >= 1 -> RP 1 -> A_SKI = 0 (prefetch everything).
  const SpParams p = SpParams::from_distance_rp(32, 1.0);
  EXPECT_EQ(p.a_ski, 0u);
  EXPECT_GE(p.a_pre, 1u);
  EXPECT_DOUBLE_EQ(p.rp(), 1.0);
}

TEST(SpParamsTest, FromDistanceRpQuarter) {
  const SpParams p = SpParams::from_distance_rp(30, 0.25);
  EXPECT_EQ(p.a_ski, 30u);
  EXPECT_EQ(p.a_pre, 10u);
}

TEST(SpParamsTest, ZeroDistanceDegeneratesGracefully) {
  const SpParams p = SpParams::from_distance_rp(0, 0.5);
  EXPECT_GE(p.a_pre, 1u);
  EXPECT_EQ(p.a_ski, 0u);
}

TEST(SpParamsTest, RpFromCalrMatchesPaperAnchors) {
  EXPECT_DOUBLE_EQ(SpParams::rp_from_calr(0.0), 0.5);
  EXPECT_DOUBLE_EQ(SpParams::rp_from_calr(1.0), 1.0);
  EXPECT_DOUBLE_EQ(SpParams::rp_from_calr(5.0), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(SpParams::rp_from_calr(-1.0), 0.5);  // clamped
  EXPECT_DOUBLE_EQ(SpParams::rp_from_calr(0.5), 0.75);
}

// A synthetic hot loop: per outer iteration one spine read, one
// address-generation read, two delinquent reads, one write.
TraceBuffer synthetic_loop(std::uint32_t iters) {
  TraceBuffer t;
  for (std::uint32_t i = 0; i < iters; ++i) {
    const Addr base = static_cast<Addr>(i) * 1024;
    t.emit(base, i, AccessKind::kRead, 0, kFlagSpine, 1);
    t.emit(base + 128, i, AccessKind::kRead, 1, 0, 1);
    t.emit(base + 256, i, AccessKind::kRead, 2, kFlagDelinquent, 1);
    t.emit(base + 512, i, AccessKind::kRead, 3, kFlagDelinquent, 1);
    t.emit(base, i, AccessKind::kWrite, 4, 0, 1);
  }
  return t;
}

TEST(HelperGenTest, SkipPhaseKeepsOnlySpine) {
  const TraceBuffer main_t = synthetic_loop(8);
  // Round = 4+4: iters 0-3 are skip, 4-7 pre-execute.
  const TraceBuffer helper =
      make_helper_trace(main_t, SpParams{.a_ski = 4, .a_pre = 4});
  for (const TraceRecord& r : helper) {
    if (r.outer_iter < 4) {
      EXPECT_TRUE(r.is_spine()) << "non-spine record in skip phase";
    }
  }
  // Skip phase: 4 spine records; pre-execute: 4 iters x 4 reads.
  EXPECT_EQ(helper.size(), 4u + 16u);
}

TEST(HelperGenTest, WritesNeverAppear) {
  const TraceBuffer helper =
      make_helper_trace(synthetic_loop(20), SpParams{.a_ski = 2, .a_pre = 3});
  for (const TraceRecord& r : helper) {
    EXPECT_NE(r.kind(), AccessKind::kWrite);
  }
}

TEST(HelperGenTest, RoundStructureRepeats) {
  const TraceBuffer helper =
      make_helper_trace(synthetic_loop(40), SpParams{.a_ski = 3, .a_pre = 2});
  for (const TraceRecord& r : helper) {
    const std::uint32_t pos = r.outer_iter % 5;
    if (pos < 3) {
      EXPECT_TRUE(r.is_spine());
    }
  }
}

TEST(HelperGenTest, Rp1KeepsEveryIterationsReads) {
  const TraceBuffer main_t = synthetic_loop(10);
  const TraceBuffer helper =
      make_helper_trace(main_t, SpParams{.a_ski = 0, .a_pre = 5});
  // Conventional helper threading: all 4 reads of all 10 iterations.
  EXPECT_EQ(helper.size(), 40u);
}

TEST(HelperGenTest, PrefetchInstructionOptionConvertsDelinquentLoads) {
  HelperGenOptions opt;
  opt.use_prefetch_instructions = true;
  const TraceBuffer helper = make_helper_trace(
      synthetic_loop(8), SpParams{.a_ski = 4, .a_pre = 4}, opt);
  bool saw_prefetch = false;
  for (const TraceRecord& r : helper) {
    if (r.is_delinquent()) {
      EXPECT_EQ(r.kind(), AccessKind::kPrefetch);
      saw_prefetch = true;
    } else {
      EXPECT_EQ(r.kind(), AccessKind::kRead);
    }
  }
  EXPECT_TRUE(saw_prefetch);
}

TEST(HelperGenTest, HelperComputeGapApplied) {
  HelperGenOptions opt;
  opt.helper_compute_gap = 7;
  const TraceBuffer helper = make_helper_trace(
      synthetic_loop(4), SpParams{.a_ski = 0, .a_pre = 2}, opt);
  for (const TraceRecord& r : helper) EXPECT_EQ(r.compute_gap, 7u);
}

TEST(MergeTracesTest, OrderedByOuterIter) {
  TraceBuffer a;
  a.emit(1, 0, AccessKind::kRead, 0);
  a.emit(2, 2, AccessKind::kRead, 0);
  TraceBuffer b;
  b.emit(3, 1, AccessKind::kRead, 0);
  b.emit(4, 2, AccessKind::kRead, 0);
  const TraceBuffer merged = merge_traces_by_iter(a, b);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].addr, 1u);
  EXPECT_EQ(merged[1].addr, 3u);
  EXPECT_EQ(merged[2].addr, 2u);  // ties: a first
  EXPECT_EQ(merged[3].addr, 4u);
}

// A loop whose per-set distinct-block arrival rate is one line every 2
// iterations against a 2-way cache: SA = 4 per set.
TraceBuffer saturating_loop(std::uint32_t iters, const CacheGeometry& g) {
  TraceBuffer t;
  for (std::uint32_t i = 0; i < iters; ++i) {
    // One fresh line per iteration, cycling through sets: set = i % sets,
    // tag grows every wrap.
    const std::uint64_t set = i % g.num_sets();
    const std::uint64_t tag = i / g.num_sets();
    t.emit((set + g.num_sets() * tag) * 64, i, AccessKind::kRead, 0,
           kFlagDelinquent, 1);
  }
  return t;
}

TEST(DistanceBoundTest, HalfOriginalMinSa) {
  const CacheGeometry g(1024, 2, 64);  // 8 sets x 2 ways
  // One new line per iteration round-robin over 8 sets: each set saturates
  // at its 2nd distinct block. Set 0: iters 0 and 8 -> SA 9. Min over sets
  // is set 0's... all sets: set s saturates at iter s+8 -> SA s+9; min = 9.
  const TraceBuffer t = saturating_loop(64, g);
  const DistanceBound bound = estimate_distance_bound(t, {0}, g);
  EXPECT_EQ(bound.original_min_sa, 9u);
  EXPECT_EQ(bound.upper_limit, 4u);
  EXPECT_TRUE(bound.allows(3));
  EXPECT_FALSE(bound.allows(4));
  EXPECT_FALSE(bound.to_string().empty());
}

TEST(DistanceBoundTest, RefineWithHelperTightens) {
  const CacheGeometry g(1024, 2, 64);
  const TraceBuffer t = saturating_loop(64, g);
  const DistanceBound base = estimate_distance_bound(t, {0}, g);
  const DistanceBound refined = refine_with_helper(
      base, t, {0}, SpParams{.a_ski = 2, .a_pre = 2}, g);
  ASSERT_TRUE(refined.with_helper_min_sa.has_value());
  // The combined stream doubles per-set pressure in pre-execute rounds:
  // with-helper SA must not exceed the original.
  EXPECT_LE(*refined.with_helper_min_sa, base.original_min_sa);
  EXPECT_LE(refined.upper_limit, base.upper_limit);
  EXPECT_GE(refined.upper_limit, 1u);
}

TEST(DistanceBoundDeathTest, NoSaturationIsAnError) {
  const CacheGeometry g(1024, 2, 64);
  TraceBuffer t;
  t.emit(0, 0, AccessKind::kRead, 0);
  EXPECT_DEATH((void)estimate_distance_bound(t, {0}, g), "saturates");
}

TEST(ExperimentTest, SummariesAndNormalizationArithmetic) {
  SpRunSummary orig;
  orig.runtime = 1000;
  orig.totally_hits = 50;
  orig.partially_hits = 10;
  orig.totally_misses = 90;
  SpRunSummary sp;
  sp.runtime = 600;
  sp.totally_hits = 110;
  sp.partially_hits = 25;
  sp.totally_misses = 15;
  const SpComparison cmp{.original = orig, .sp = sp};
  EXPECT_DOUBLE_EQ(cmp.norm_runtime(), 0.6);
  EXPECT_DOUBLE_EQ(cmp.norm_hot_misses(), 15.0 / 90.0);
  EXPECT_DOUBLE_EQ(cmp.norm_memory_accesses(), 40.0 / 100.0);
  EXPECT_DOUBLE_EQ(cmp.delta_totally_hit(), 0.6);
  EXPECT_DOUBLE_EQ(cmp.delta_totally_miss(), -0.75);
  EXPECT_DOUBLE_EQ(cmp.delta_partially_hit(), 0.15);
  EXPECT_FALSE(cmp.to_string().empty());
}

TEST(ExperimentTest, SpBeatsOriginalOnPointerChase) {
  // End-to-end sanity on a small synthetic loop with a small L2.
  const CacheGeometry g(32 * 1024, 16, 64);
  TraceBuffer t = saturating_loop(4000, g);
  SpExperimentConfig cfg;
  cfg.sim.l2 = g;
  cfg.sim.hw_prefetch = false;
  cfg.baseline_hw_prefetch = false;
  cfg.params = SpParams::from_distance_rp(4, 0.5);
  const SpComparison cmp = run_sp_experiment(t, cfg);
  EXPECT_LT(cmp.norm_runtime(), 1.0);
  EXPECT_LT(cmp.sp.totally_misses, cmp.original.totally_misses);
}

TEST(ExperimentTest, OriginalRunHasNoHelperArtifacts) {
  const CacheGeometry g(32 * 1024, 16, 64);
  TraceBuffer t = saturating_loop(500, g);
  SpExperimentConfig cfg;
  cfg.sim.l2 = g;
  const SpRunSummary orig = run_original(t, cfg);
  EXPECT_EQ(orig.helper_finish, 0u);
  EXPECT_EQ(orig.pollution.case2_helper_displaced, 0u);
}

}  // namespace
}  // namespace spf
