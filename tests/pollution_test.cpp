// Unit tests for the pollution tracker: the paper's three cases.
#include <gtest/gtest.h>

#include "spf/sim/pollution.hpp"

namespace spf {
namespace {

Eviction make_eviction(LineAddr victim_line, FillOrigin victim_origin,
                       bool victim_used, FillOrigin evictor_origin) {
  Eviction ev;
  ev.victim.line = victim_line;
  ev.victim.valid = true;
  ev.victim.origin = victim_origin;
  ev.victim.used_since_fill = victim_used;
  ev.replaced_by = victim_line + 1000;
  ev.replaced_by_origin = evictor_origin;
  return ev;
}

TEST(PollutionTest, Case2HelperPrefetchDisplacedUnusedHelperFill) {
  PollutionTracker t(64, CacheGeometry(1024, 2, 64));
  t.on_eviction(make_eviction(1, FillOrigin::kHelper, false, FillOrigin::kHelper));
  EXPECT_EQ(t.stats().case2_helper_displaced, 1u);
  EXPECT_EQ(t.stats().total_pollution(), 1u);
}

TEST(PollutionTest, Case3PrefetchDisplacedUnusedHardwareFill) {
  PollutionTracker t(64, CacheGeometry(1024, 2, 64));
  t.on_eviction(
      make_eviction(2, FillOrigin::kHardware, false, FillOrigin::kHelper));
  EXPECT_EQ(t.stats().case3_hw_displaced, 1u);
}

TEST(PollutionTest, Case1NeedsDemandReMiss) {
  PollutionTracker t(64, CacheGeometry(1024, 2, 64));
  // Prefetch displaces used (useful) demand data.
  t.on_eviction(make_eviction(3, FillOrigin::kDemand, true, FillOrigin::kHardware));
  EXPECT_EQ(t.stats().case1_reuse_displaced, 0u);  // not yet: reuse unknown
  EXPECT_TRUE(t.on_demand_miss(3));                // the processor came back
  EXPECT_EQ(t.stats().case1_reuse_displaced, 1u);
  // Counted once; a second miss is a plain capacity miss.
  EXPECT_FALSE(t.on_demand_miss(3));
  EXPECT_EQ(t.stats().case1_reuse_displaced, 1u);
}

TEST(PollutionTest, UsedPrefetchVictimGoesToShadowNotCase23) {
  PollutionTracker t(64, CacheGeometry(1024, 2, 64));
  // A helper-prefetched line the processor already consumed is useful data.
  t.on_eviction(make_eviction(4, FillOrigin::kHelper, true, FillOrigin::kHelper));
  EXPECT_EQ(t.stats().case2_helper_displaced, 0u);
  EXPECT_TRUE(t.on_demand_miss(4));
  EXPECT_EQ(t.stats().case1_reuse_displaced, 1u);
}

TEST(PollutionTest, DemandEvictionIsNotPollution) {
  PollutionTracker t(64, CacheGeometry(1024, 2, 64));
  t.on_eviction(make_eviction(5, FillOrigin::kDemand, true, FillOrigin::kDemand));
  EXPECT_EQ(t.stats().total_pollution(), 0u);
  EXPECT_EQ(t.stats().prefetch_caused_evictions, 0u);
  EXPECT_EQ(t.stats().total_evictions, 1u);
  // And its victim must not be attributed to a prefetch later.
  EXPECT_FALSE(t.on_demand_miss(5));
}

TEST(PollutionTest, DemandEvictionClearsStaleShadow) {
  PollutionTracker t(64, CacheGeometry(1024, 2, 64));
  // Prefetch displaces line 6 -> shadowed.
  t.on_eviction(make_eviction(6, FillOrigin::kDemand, true, FillOrigin::kHelper));
  // Later the same line is re-fetched and displaced again, this time by a
  // demand fill: the shadow must be cleared, else the eventual re-miss is
  // misattributed to the old prefetch.
  t.on_eviction(make_eviction(6, FillOrigin::kDemand, true, FillOrigin::kDemand));
  EXPECT_FALSE(t.on_demand_miss(6));
}

TEST(PollutionTest, ShadowCapacityBoundsMemory) {
  PollutionTracker t(4, CacheGeometry(1024, 2, 64));
  for (LineAddr l = 0; l < 100; ++l) {
    t.on_eviction(make_eviction(l, FillOrigin::kDemand, true, FillOrigin::kHelper));
  }
  EXPECT_LE(t.shadow_size(), 4u);
  // Oldest entries fell out of the window.
  EXPECT_FALSE(t.on_demand_miss(0));
  // Newest are still tracked.
  EXPECT_TRUE(t.on_demand_miss(99));
}

TEST(PollutionTest, MixedSequenceCountsEachCaseOnce) {
  PollutionTracker t(64, CacheGeometry(1024, 2, 64));
  t.on_eviction(make_eviction(10, FillOrigin::kHelper, false, FillOrigin::kHardware));
  t.on_eviction(make_eviction(11, FillOrigin::kHardware, false, FillOrigin::kHelper));
  t.on_eviction(make_eviction(12, FillOrigin::kDemand, true, FillOrigin::kHelper));
  t.on_demand_miss(12);
  const PollutionStats& s = t.stats();
  EXPECT_EQ(s.case1_reuse_displaced, 1u);
  EXPECT_EQ(s.case2_helper_displaced, 1u);
  EXPECT_EQ(s.case3_hw_displaced, 1u);
  EXPECT_EQ(s.total_pollution(), 3u);
  EXPECT_EQ(s.prefetch_caused_evictions, 3u);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(PollutionTest, PerSetAttribution) {
  // Geometry 1024B / 2-way / 64B -> 8 sets; line l maps to set l % 8.
  PollutionTracker t(64, CacheGeometry(1024, 2, 64));
  // Two case-2 events in set 1 (lines 1 and 9), one case-3 in set 2.
  t.on_eviction(make_eviction(1, FillOrigin::kHelper, false, FillOrigin::kHelper));
  t.on_eviction(make_eviction(9, FillOrigin::kHelper, false, FillOrigin::kHelper));
  t.on_eviction(
      make_eviction(2, FillOrigin::kHardware, false, FillOrigin::kHelper));
  // One case-1 event in set 3.
  t.on_eviction(make_eviction(3, FillOrigin::kDemand, true, FillOrigin::kHelper));
  t.on_demand_miss(3);

  EXPECT_EQ(t.set_pollution(1), 2u);
  EXPECT_EQ(t.set_pollution(2), 1u);
  EXPECT_EQ(t.set_pollution(3), 1u);
  EXPECT_EQ(t.set_pollution(0), 0u);
  EXPECT_EQ(t.polluted_set_count(), 3u);
  const auto top = t.top_polluted_sets(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 1u);
  EXPECT_EQ(top[0].second, 2u);
}

TEST(PollutionTest, TopPollutedSetsTieBreaksByAscendingSetIndex) {
  // Geometry 1024B / 2-way / 64B -> 8 sets; line l maps to set l % 8.
  PollutionTracker t(64, CacheGeometry(1024, 2, 64));
  // Equal counts in sets 6, 2, and 4 (insertion order deliberately
  // scrambled), and a clear winner in set 5.
  for (const LineAddr line : {6, 2, 4}) {
    t.on_eviction(
        make_eviction(line, FillOrigin::kHelper, false, FillOrigin::kHelper));
  }
  t.on_eviction(make_eviction(5, FillOrigin::kHelper, false, FillOrigin::kHelper));
  t.on_eviction(
      make_eviction(13, FillOrigin::kHelper, false, FillOrigin::kHelper));

  // Descending count first, then ascending set index for equal counts —
  // pinned so heatmap artifacts are byte-stable across platforms and
  // standard-library sort implementations.
  const auto top = t.top_polluted_sets(4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0], (std::pair<std::uint64_t, std::uint64_t>{5, 2}));
  EXPECT_EQ(top[1], (std::pair<std::uint64_t, std::uint64_t>{2, 1}));
  EXPECT_EQ(top[2], (std::pair<std::uint64_t, std::uint64_t>{4, 1}));
  EXPECT_EQ(top[3], (std::pair<std::uint64_t, std::uint64_t>{6, 1}));
}

TEST(PollutionTest, TopPollutedSetsHandlesFewerThanRequested) {
  PollutionTracker t(64, CacheGeometry(1024, 2, 64));
  EXPECT_TRUE(t.top_polluted_sets(5).empty());
  t.on_eviction(make_eviction(4, FillOrigin::kHelper, false, FillOrigin::kHelper));
  EXPECT_EQ(t.top_polluted_sets(5).size(), 1u);
}

}  // namespace
}  // namespace spf
