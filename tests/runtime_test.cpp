// Tests for the real-thread SP runtime. These validate *correctness* of the
// synchronization protocol (round ordering, run-ahead clamp, no data
// corruption); wall-clock speedups are hardware-dependent and belong to the
// examples, not CI.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "spf/core/sp_params.hpp"
#include "spf/runtime/executor.hpp"
#include "spf/runtime/list_sp.hpp"
#include "spf/runtime/range_sp.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/em3d_native.hpp"

namespace spf::rt {
namespace {

TEST(PinningTest, OnlineCpusPositive) { EXPECT_GE(online_cpus(), 1u); }

TEST(PinningTest, PairImpliesTwoCpus) {
  const auto pair = pick_sp_cpu_pair();
  if (pair) {
    EXPECT_NE(pair->first, pair->second);
  } else {
    EXPECT_LT(online_cpus(), 2u);
  }
}

TEST(SpExecutorTest, RunsEveryMainRoundExactlyOnce) {
  SpExecutor exec;
  std::vector<int> counts(50, 0);
  exec.run(
      50, [&](std::uint32_t r) { counts[r]++; }, [](std::uint32_t) {});
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(SpExecutorTest, HelperNeverLeadsBeyondClamp) {
  ExecutorConfig cfg;
  cfg.max_lead_rounds = 2;
  cfg.pin_threads = false;
  SpExecutor exec(cfg);
  std::atomic<std::uint32_t> main_progress{0};
  std::atomic<bool> violated{false};
  exec.run(
      200,
      [&](std::uint32_t r) { main_progress.store(r + 1); },
      [&](std::uint32_t r) {
        // Helper working on round r requires main to have entered round
        // r - (max_lead - 1) at minimum: main_round + max_lead > r.
        const std::uint32_t mp = main_progress.load();
        if (mp + cfg.max_lead_rounds < r + 1) violated.store(true);
      });
  EXPECT_FALSE(violated.load());
}

TEST(SpExecutorTest, ZeroRoundsIsNoop) {
  SpExecutor exec;
  bool called = false;
  const ExecutorReport report = exec.run(
      0, [&](std::uint32_t) { called = true; },
      [&](std::uint32_t) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_EQ(report.main_ns, 0u);
}

TEST(SpExecutorTest, MainExceptionJoinsHelperAndPropagates) {
  SpExecutor exec(ExecutorConfig{.max_lead_rounds = 1, .pin_threads = false});
  std::atomic<int> helper_calls{0};
  EXPECT_THROW(
      exec.run(
          100,
          [&](std::uint32_t r) {
            if (r == 3) throw std::runtime_error("boom");
          },
          [&](std::uint32_t) { helper_calls++; }),
      std::runtime_error);
  // If we got here without hanging, the helper thread was joined. The helper
  // saw at most the rounds preceding the throw plus the clamp.
  EXPECT_LE(helper_calls.load(), 5);
}

TEST(SpExecutorTest, ReportTimesPopulated) {
  SpExecutor exec(ExecutorConfig{.max_lead_rounds = 1, .pin_threads = false});
  volatile double sink = 0;
  const ExecutorReport report = exec.run(
      20,
      [&](std::uint32_t) {
        for (int i = 0; i < 1000; ++i) sink = sink + i;
      },
      [](std::uint32_t) {});
  EXPECT_GT(report.main_ns, 0u);
}

TEST(SpExecutorEm3dTest, HelperDoesNotChangeResult) {
  // The whole point of a prefetch-only helper: bit-identical results.
  spf::Em3dConfig cfg;
  cfg.nodes = 2000;
  cfg.arity = 16;
  cfg.passes = 1;
  spf::Em3dWorkload model(cfg);

  spf::Em3dGraph solo(model);
  const double expected = solo.compute_pass();

  spf::Em3dGraph assisted(model);
  const spf::SpParams params{.a_ski = 16, .a_pre = 16};
  const std::uint32_t rounds =
      (cfg.nodes + params.round() - 1) / params.round();

  // Walk per-round windows of the list. Precompute round start pointers.
  std::vector<spf::Em3dNode*> round_start;
  {
    spf::Em3dNode* n = assisted.head();
    for (std::uint32_t r = 0; r < rounds; ++r) {
      round_start.push_back(n);
      for (std::uint32_t i = 0; i < params.round() && n; ++i) n = n->next;
    }
  }

  double got = 0.0;
  SpExecutor exec(ExecutorConfig{.max_lead_rounds = 1, .pin_threads = false});
  exec.run(
      rounds,
      [&](std::uint32_t r) {
        spf::Em3dNode* n = round_start[r];
        for (std::uint32_t i = 0; i < params.round() && n; ++i, n = n->next) {
          double acc = n->value;
          for (std::uint32_t j = 0; j < n->from_count; ++j) {
            acc -= n->coeffs[j] * *n->from_values[j];
          }
          n->value = acc * 1e-3;
          got += n->value;
        }
      },
      [&](std::uint32_t r) {
        // Skip A_SKI, prefetch deps of the next A_PRE nodes.
        spf::Em3dNode* n = round_start[r];
        for (std::uint32_t i = 0; i < params.a_ski && n; ++i) n = n->next;
        for (std::uint32_t p = 0; p < params.a_pre && n; ++p, n = n->next) {
          for (std::uint32_t j = 0; j < n->from_count; ++j) {
            prefetch_line(n->from_values[j]);
          }
        }
      });
  EXPECT_DOUBLE_EQ(got, expected);
}

}  // namespace

namespace {

struct ListNode {
  ListNode* next = nullptr;
  int value = 0;
  double payload = 0.0;
};

std::vector<ListNode> make_list(int n) {
  std::vector<ListNode> nodes(n);
  for (int i = 0; i < n; ++i) {
    nodes[i].value = i;
    nodes[i].next = i + 1 < n ? &nodes[i + 1] : nullptr;
  }
  return nodes;
}

TEST(RoundStartsTest, PartitionsTheList) {
  auto nodes = make_list(10);
  const auto starts = round_starts(&nodes[0], 4);
  ASSERT_EQ(starts.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(starts[0]->value, 0);
  EXPECT_EQ(starts[1]->value, 4);
  EXPECT_EQ(starts[2]->value, 8);
}

TEST(RoundStartsTest, SingleRoundWhenShort) {
  auto nodes = make_list(3);
  EXPECT_EQ(round_starts(&nodes[0], 10).size(), 1u);
  EXPECT_TRUE(round_starts<ListNode>(nullptr, 4).empty());
}

TEST(ListSpTest, VisitsEveryNodeOnceAndCountsPrefetches) {
  auto nodes = make_list(1000);
  std::vector<int> visits(1000, 0);
  const spf::SpParams params{.a_ski = 6, .a_pre = 6};
  const ListSpReport report = run_sp_over_list(
      &nodes[0], params,
      [&](ListNode& n) { visits[static_cast<std::size_t>(n.value)]++; },
      [](const ListNode& n) { prefetch_line(&n.payload); },
      ExecutorConfig{.max_lead_rounds = 1, .pin_threads = false});
  for (int v : visits) EXPECT_EQ(v, 1);
  EXPECT_EQ(report.nodes_visited, 1000u);
  // 83 full rounds of 12 nodes (6 prefetched each) plus a 4-node partial
  // round that ends inside the skip phase: at most 83 * 6 = 498 touches.
  // Fewer is legal — the helper stops once the main loop has finished
  // (guaranteed on single-CPU CI where main runs to completion first).
  EXPECT_LE(report.nodes_prefetched, 498u);
  EXPECT_EQ(report.nodes_prefetched % 6, 0u);
}

TEST(ListSpTest, HelperWalkRoundIsDeterministic) {
  auto nodes = make_list(1000);
  const spf::SpParams params{.a_ski = 6, .a_pre = 6};
  const auto starts = round_starts(&nodes[0], params.round());
  ASSERT_EQ(starts.size(), 84u);
  std::uint64_t touched = 0;
  std::vector<int> first_touched;
  for (ListNode* start : starts) {
    bool first = true;
    touched += helper_walk_round(start, params, [&](const ListNode& n) {
      if (first) {
        first_touched.push_back(n.value);
        first = false;
      }
    });
  }
  EXPECT_EQ(touched, 498u);
  // Each full round's first touched node sits a_ski past the round start.
  ASSERT_EQ(first_touched.size(), 83u);
  for (std::size_t r = 0; r < first_touched.size(); ++r) {
    EXPECT_EQ(first_touched[r], static_cast<int>(r * 12 + 6));
  }
}

TEST(ListSpTest, HelperNeverMutates) {
  auto nodes = make_list(500);
  const spf::SpParams params{.a_ski = 4, .a_pre = 4};
  run_sp_over_list(
      &nodes[0], params, [](ListNode&) {},
      [](const ListNode& n) { prefetch_line(&n); },
      ExecutorConfig{.max_lead_rounds = 2, .pin_threads = false});
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(nodes[static_cast<std::size_t>(i)].value, i);
  }
}

TEST(ListSpTest, EmptyListIsNoop) {
  const ListSpReport report = run_sp_over_list<ListNode>(
      nullptr, spf::SpParams{.a_ski = 1, .a_pre = 1}, [](ListNode&) {},
      [](const ListNode&) {});
  EXPECT_EQ(report.nodes_visited, 0u);
  EXPECT_EQ(report.nodes_prefetched, 0u);
}


TEST(RangeSpTest, VisitsEveryIndexOnce) {
  std::vector<int> visits(5000, 0);
  const spf::SpParams params{.a_ski = 16, .a_pre = 16};
  const RangeSpReport report = run_sp_over_range(
      5000, params, [&](std::size_t i) { visits[i]++; },
      [](std::size_t) {},
      ExecutorConfig{.max_lead_rounds = 1, .pin_threads = false});
  for (int v : visits) EXPECT_EQ(v, 1);
  EXPECT_EQ(report.indices_visited, 5000u);
}

TEST(RangeSpTest, HelperTouchRoundIsDeterministic) {
  const spf::SpParams params{.a_ski = 6, .a_pre = 4};  // round 10
  std::vector<std::size_t> touched;
  std::uint64_t total = 0;
  // n = 27: rounds cover [0,10), [10,20), [20,27).
  for (std::uint32_t r = 0; r < 3; ++r) {
    total += helper_touch_round(27, r, params,
                                [&](std::size_t i) { touched.push_back(i); });
  }
  // Round 0 touches 6..9, round 1 touches 16..19, round 2 touches 26 only.
  const std::vector<std::size_t> expected{6, 7, 8, 9, 16, 17, 18, 19, 26};
  EXPECT_EQ(touched, expected);
  EXPECT_EQ(total, expected.size());
}

TEST(RangeSpTest, Rp1TouchesEverything) {
  const spf::SpParams params{.a_ski = 0, .a_pre = 8};
  std::uint64_t total = 0;
  for (std::uint32_t r = 0; r < 4; ++r) {
    total += helper_touch_round(32, r, params, [](std::size_t) {});
  }
  EXPECT_EQ(total, 32u);
}

TEST(RangeSpTest, ZeroLengthIsNoop) {
  const RangeSpReport report = run_sp_over_range(
      0, spf::SpParams{.a_ski = 1, .a_pre = 1}, [](std::size_t) {},
      [](std::size_t) {});
  EXPECT_EQ(report.indices_visited, 0u);
}

}  // namespace

}  // namespace spf::rt
