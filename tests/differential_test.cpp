// Differential tests: the optimized cache model against a brutally simple
// reference implementation, under long randomized operation sequences.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <optional>

#include "spf/cache/cache.hpp"
#include "spf/common/rng.hpp"

namespace spf {
namespace {

/// Reference set-associative LRU cache: per-set std::list, front = MRU.
class ReferenceLruCache {
 public:
  ReferenceLruCache(const CacheGeometry& g) : geometry_(g) {}

  bool access(LineAddr line) {
    auto& set = sets_[geometry_.set_of_line(line)];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (*it == line) {
        set.splice(set.begin(), set, it);
        return true;
      }
    }
    return false;
  }

  std::optional<LineAddr> fill(LineAddr line) {
    auto& set = sets_[geometry_.set_of_line(line)];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (*it == line) {
        set.splice(set.begin(), set, it);
        return std::nullopt;
      }
    }
    std::optional<LineAddr> victim;
    if (set.size() == geometry_.ways()) {
      victim = set.back();
      set.pop_back();
    }
    set.push_front(line);
    return victim;
  }

  bool invalidate(LineAddr line) {
    auto& set = sets_[geometry_.set_of_line(line)];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (*it == line) {
        set.erase(it);
        return true;
      }
    }
    return false;
  }

 private:
  CacheGeometry geometry_;
  std::map<std::uint64_t, std::list<LineAddr>> sets_;
};

class LruDifferentialTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

TEST_P(LruDifferentialTest, RandomOpsAgreeWithReference) {
  const auto [size, ways] = GetParam();
  const CacheGeometry g(size, ways, 64);
  Cache cache(g, ReplacementKind::kLru);
  ReferenceLruCache ref(g);
  Xoshiro256 rng(size * 31 + ways);

  const std::uint64_t universe = g.num_sets() * g.ways() * 3;
  for (int op = 0; op < 20000; ++op) {
    const LineAddr line = rng.below(universe);
    const std::uint64_t kind = rng.below(10);
    if (kind < 6) {
      // access (hit updates recency), fill on miss — the demand path.
      const bool hit = cache.access(line, AccessKind::kRead, op);
      const bool ref_hit = ref.access(line);
      ASSERT_EQ(hit, ref_hit) << "op " << op << " line " << line;
      if (!hit) {
        const auto evicted = cache.fill(line, FillOrigin::kDemand, 0, op);
        const auto ref_evicted = ref.fill(line);
        ASSERT_EQ(evicted.has_value(), ref_evicted.has_value()) << "op " << op;
        if (evicted) {
          ASSERT_EQ(evicted->victim.line, *ref_evicted) << "op " << op;
        }
      }
    } else if (kind < 9) {
      // prefetch-style fill without prior access.
      const auto evicted = cache.fill(line, FillOrigin::kHardware, 0, op);
      const auto ref_evicted = ref.fill(line);
      ASSERT_EQ(evicted.has_value(), ref_evicted.has_value()) << "op " << op;
      if (evicted) {
        ASSERT_EQ(evicted->victim.line, *ref_evicted) << "op " << op;
      }
    } else {
      ASSERT_EQ(cache.invalidate(line), ref.invalidate(line)) << "op " << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LruDifferentialTest,
    ::testing::Values(std::make_tuple(std::uint64_t{1} << 10, 2u),
                      std::make_tuple(std::uint64_t{1} << 12, 4u),
                      std::make_tuple(std::uint64_t{1} << 14, 16u),
                      std::make_tuple(std::uint64_t{1} << 12, 1u),
                      std::make_tuple(std::uint64_t{512}, 8u)),
    [](const auto& param_info) {
      return "bytes" + std::to_string(std::get<0>(param_info.param)) + "_ways" +
             std::to_string(std::get<1>(param_info.param));
    });

// The reference model also cross-checks the CALR estimator's cache pass: its
// l1+l2 hit counts must equal what the reference hierarchy produces.
TEST(CalrDifferentialTest, HitCountsMatchReferenceHierarchy) {
  const CacheGeometry l1g(1024, 2, 64);
  const CacheGeometry l2g(8192, 4, 64);
  ReferenceLruCache ref_l1(l1g);
  ReferenceLruCache ref_l2(l2g);
  Cache l1(l1g, ReplacementKind::kLru);
  Cache l2(l2g, ReplacementKind::kLru);

  Xoshiro256 rng(77);
  std::uint64_t hits_l1 = 0;
  std::uint64_t hits_l2 = 0;
  std::uint64_t ref_hits_l1 = 0;
  std::uint64_t ref_hits_l2 = 0;
  for (int op = 0; op < 30000; ++op) {
    const LineAddr line = rng.below(512);
    if (l1.access(line, AccessKind::kRead, op)) {
      ++hits_l1;
    } else {
      if (l2.access(line, AccessKind::kRead, op)) {
        ++hits_l2;
      } else {
        l2.fill(line, FillOrigin::kDemand, 0, op);
      }
      l1.fill(line, FillOrigin::kDemand, 0, op);
    }
    if (ref_l1.access(line)) {
      ++ref_hits_l1;
    } else {
      if (ref_l2.access(line)) {
        ++ref_hits_l2;
      } else {
        ref_l2.fill(line);
      }
      ref_l1.fill(line);
    }
  }
  EXPECT_EQ(hits_l1, ref_hits_l1);
  EXPECT_EQ(hits_l2, ref_hits_l2);
}

}  // namespace
}  // namespace spf
