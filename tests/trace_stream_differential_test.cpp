// Differential harness for the streaming trace pipeline: the distance-bound
// refinement must produce bit-identical results whether the combined
// main+helper stream is materialized (make_helper_trace + re-anchor pass +
// merge_traces_by_iter, the reference implementation selected by
// DistanceBoundOptions{.streaming_refine = false}) or streamed lazily through
// TraceCursor adaptors (HelperViewCursor + MergeByIterCursor, the default).
//
// Seeded random IR traces come from the shared program generator; a
// structured multi-invocation EM3D workload covers the per-invocation SA
// split and realistic spine/delinquent mixes. Both the final DistanceBound
// and the full WorkloadSaResult are compared field-for-field, and the
// streaming path is held to *zero* trace-record allocations via the
// spf::trace_hooks counter. A dedicated ctest entry replays this binary with
// SPF_FORCE_SCALAR_TAGS=1, and a TSan build pins it race-free
// (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ir_fuzz_util.hpp"
#include "spf/core/distance_bound.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/ir/interp.hpp"
#include "spf/profile/invocations.hpp"
#include "spf/trace/trace_cursor.hpp"
#include "spf/workloads/em3d.hpp"

namespace spf {
namespace {

void expect_same_sa(const WorkloadSaResult& materialized,
                    const WorkloadSaResult& streaming) {
  EXPECT_EQ(materialized.merged.per_set, streaming.merged.per_set);
  EXPECT_EQ(materialized.merged.samples, streaming.merged.samples);
  EXPECT_EQ(materialized.merged.touched_sets, streaming.merged.touched_sets);
  EXPECT_EQ(materialized.merged.accesses, streaming.merged.accesses);
  EXPECT_EQ(materialized.merged.outer_iterations,
            streaming.merged.outer_iterations);
  EXPECT_EQ(materialized.cumulative_fallback, streaming.cumulative_fallback);
  EXPECT_EQ(materialized.invocations_analyzed, streaming.invocations_analyzed);
}

void expect_same_bound(const DistanceBound& materialized,
                       const DistanceBound& streaming) {
  EXPECT_EQ(materialized.original_min_sa, streaming.original_min_sa);
  EXPECT_EQ(materialized.with_helper_min_sa, streaming.with_helper_min_sa);
  EXPECT_EQ(materialized.upper_limit, streaming.upper_limit);
}

/// Builds the combined main+helper stream both ways and compares the full
/// Set-Affinity analysis and the refined bound.
void compare_paths(const TraceBuffer& trace,
                   const std::vector<std::uint32_t>& invocation_starts,
                   const SpParams& params, const CacheGeometry& l2) {
  SCOPED_TRACE(params.to_string());

  // Reference: materialize exactly as the pre-cursor refinement did.
  TraceBuffer helper = make_helper_trace(trace, params);
  for (TraceRecord& r : helper.mutable_records()) {
    r.outer_iter = r.outer_iter >= params.a_ski ? r.outer_iter - params.a_ski : 0;
  }
  const TraceBuffer combined = merge_traces_by_iter(trace, helper);
  const WorkloadSaResult sa_materialized =
      analyze_workload_sa(combined, invocation_starts, l2);

  // Streaming: the same stream as lazy cursor composition.
  MergeByIterCursor cursor(
      TraceViewCursor(trace),
      HelperViewCursor(trace, params, {}, /*re_anchor=*/true));
  const WorkloadSaResult sa_streaming =
      analyze_workload_sa(cursor, invocation_starts, l2);
  expect_same_sa(sa_materialized, sa_streaming);

  // End to end through refine_with_helper under both flag settings. The base
  // bound is arbitrary: refinement must treat it identically either way.
  DistanceBound base;
  base.original_min_sa = 64;
  base.upper_limit = 32;
  const DistanceBound refined_materialized =
      refine_with_helper(base, trace, invocation_starts, params, l2,
                         DistanceBoundOptions{.streaming_refine = false});
  const DistanceBound refined_streaming =
      refine_with_helper(base, trace, invocation_starts, params, l2,
                         DistanceBoundOptions{.streaming_refine = true});
  expect_same_bound(refined_materialized, refined_streaming);
}

std::vector<SpParams> params_grid() {
  return {
      SpParams{.a_ski = 0, .a_pre = 1},   // conventional helper, RP = 1
      SpParams{.a_ski = 2, .a_pre = 3},
      SpParams{.a_ski = 7, .a_pre = 1},
      SpParams{.a_ski = 1000000, .a_pre = 1000000},  // round >> trace length
      SpParams::from_distance_rp(8, 0.5),
  };
}

class TraceStreamDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceStreamDifferentialTest, RandomIrTraceAgrees) {
  ir::VirtualMemory vm;
  const ir::Program program = ir::random_program(GetParam(), vm);
  const ir::InterpResult interp = ir::interpret(program, vm);
  if (interp.trace.size() == 0) GTEST_SKIP() << "degenerate program";

  const CacheGeometry l2(16 * 1024, 4, 64);
  for (const SpParams& params : params_grid()) {
    compare_paths(interp.trace, {0}, params, l2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceStreamDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(TraceStreamEm3dTest, MultiInvocationWorkloadAgrees) {
  Em3dConfig cfg;
  cfg.nodes = 2000;
  cfg.arity = 8;
  cfg.passes = 2;  // multiple hot-function invocations: SA split + re-base
  const Em3dWorkload workload(cfg);
  const TraceBuffer trace = workload.emit_trace();
  const std::vector<std::uint32_t> starts = workload.invocation_starts();

  const CacheGeometry l2(64 << 10, 8, 64);
  const DistanceBound base = estimate_distance_bound(trace, starts, l2);
  for (const SpParams& params : params_grid()) {
    compare_paths(trace, starts, params, l2);

    const DistanceBound a =
        refine_with_helper(base, trace, starts, params, l2,
                           DistanceBoundOptions{.streaming_refine = false});
    const DistanceBound b =
        refine_with_helper(base, trace, starts, params, l2,
                           DistanceBoundOptions{.streaming_refine = true});
    expect_same_bound(a, b);
  }
}

TEST(TraceStreamAllocationTest, StreamingRefineAllocatesNoTraceRecords) {
  Em3dConfig cfg;
  cfg.nodes = 1500;
  cfg.arity = 8;
  cfg.passes = 1;
  const Em3dWorkload workload(cfg);
  const TraceBuffer trace = workload.emit_trace();
  const std::vector<std::uint32_t> starts = workload.invocation_starts();

  const CacheGeometry l2(64 << 10, 8, 64);
  const DistanceBound base = estimate_distance_bound(trace, starts, l2);
  const SpParams params = SpParams::from_distance_rp(4, 0.5);

  // Positive control: the materializing reference grows trace storage.
  const std::uint64_t before_ref = trace_hooks::record_allocations();
  const DistanceBound refined_ref =
      refine_with_helper(base, trace, starts, params, l2,
                         DistanceBoundOptions{.streaming_refine = false});
  EXPECT_GT(trace_hooks::record_allocations(), before_ref);

  // The streaming path must not touch TraceRecord storage at all.
  const std::uint64_t before = trace_hooks::record_allocations();
  const DistanceBound refined =
      refine_with_helper(base, trace, starts, params, l2,
                         DistanceBoundOptions{.streaming_refine = true});
  EXPECT_EQ(trace_hooks::record_allocations(), before)
      << "cursor-based refinement allocated trace-record storage";
  expect_same_bound(refined_ref, refined);
}

}  // namespace
}  // namespace spf
