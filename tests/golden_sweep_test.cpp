// Golden-artifact net for the hot-path data-layout refactors.
//
// A pinned 3-workload grid (em3d × mcf × mst, explicit distances, both RP
// regimes, both helper kinds) is swept at --threads=1 and --threads=8; the
// aggregated CSV and JSONL artifacts must be byte-identical to the
// checked-in goldens captured from the pre-refactor simulator. Any change to
// IR memory, cache/replacement layout, the pollution shadow table, or trace
// materialization that alters a single simulated event shows up here as a
// diff — the refactors must be *layout* changes, never *semantics* changes.
//
// Regenerate (only when an intentional semantic change lands):
//   SPF_REGEN_GOLDEN=1 ./test_golden_sweep
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "pinned_golden_spec.hpp"
#include "spf/core/experiment_context.hpp"
#include "spf/orchestrate/sweep.hpp"
#include "spf/orchestrate/workload_specs.hpp"

#ifndef SPF_GOLDEN_DIR
#error "SPF_GOLDEN_DIR must point at tests/golden"
#endif

namespace spf::orchestrate {
namespace {

SweepSpec pinned_spec() { return pinned_golden_spec(); }

std::string golden_path(const char* name) {
  return std::string(SPF_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open()) << "cannot write golden file " << path;
  out << content;
}

TEST(GoldenSweep, PinnedGridMatchesGoldenAtEveryThreadCount) {
  const SweepSpec spec = pinned_spec();

  SweepOptions serial;
  serial.threads = 1;
  const SweepResult a = run_sweep(spec, serial);
  ASSERT_EQ(a.cells.size(), 36u);
  ASSERT_EQ(a.failed_count(), 0u);

  SweepOptions parallel;
  parallel.threads = 8;
  const SweepResult b = run_sweep(spec, parallel);
  ASSERT_EQ(b.failed_count(), 0u);

  const std::string csv = a.to_csv();
  const std::string jsonl = a.to_jsonl();
  // Thread count must never leak into the artifacts.
  EXPECT_EQ(csv, b.to_csv());
  EXPECT_EQ(jsonl, b.to_jsonl());

  if (std::getenv("SPF_REGEN_GOLDEN") != nullptr) {
    write_file(golden_path("pinned_sweep.csv"), csv);
    write_file(golden_path("pinned_sweep.jsonl"), jsonl);
    GTEST_SKIP() << "goldens regenerated — review and commit the diff";
  }

  EXPECT_EQ(csv, read_file(golden_path("pinned_sweep.csv")))
      << "CSV artifact drifted from the pre-refactor golden";
  EXPECT_EQ(jsonl, read_file(golden_path("pinned_sweep.jsonl")))
      << "JSONL artifact drifted from the pre-refactor golden";
}

TEST(GoldenSweep, MaterializedReferencePathMatchesGolden) {
  // streaming_cores off selects the materialized helper reference path for
  // every plane and cell; the artifacts must still match the same goldens at
  // both thread counts — the feed is an engine choice, never a result change.
  const SweepSpec spec = pinned_spec();

  SweepOptions serial;
  serial.threads = 1;
  serial.streaming_cores = false;
  const SweepResult a = run_sweep(spec, serial);
  ASSERT_EQ(a.cells.size(), 36u);
  ASSERT_EQ(a.failed_count(), 0u);

  SweepOptions parallel;
  parallel.threads = 8;
  parallel.streaming_cores = false;
  const SweepResult b = run_sweep(spec, parallel);
  ASSERT_EQ(b.failed_count(), 0u);

  const std::string csv = a.to_csv();
  const std::string jsonl = a.to_jsonl();
  EXPECT_EQ(csv, b.to_csv());
  EXPECT_EQ(jsonl, b.to_jsonl());

  if (std::getenv("SPF_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "golden regeneration handled by the pinned-grid test";
  }
  EXPECT_EQ(csv, read_file(golden_path("pinned_sweep.csv")))
      << "materialized reference path drifted from the golden artifact";
  EXPECT_EQ(jsonl, read_file(golden_path("pinned_sweep.jsonl")))
      << "materialized reference path drifted from the golden artifact";
}

TEST(GoldenSweep, SharedPoolMemoizesTracesWithoutChangingArtifacts) {
  const SweepSpec spec = pinned_spec();
  const auto pool = std::make_shared<ExperimentContextPool>(8);

  SweepOptions warm;
  warm.threads = 8;
  warm.pool = pool;
  const SweepResult first = run_sweep(spec, warm);
  ASSERT_EQ(first.failed_count(), 0u);
  // Three workloads, each emitted exactly once; every plane and cell after
  // phase 1 re-fetches through the memo and counts as a hit.
  EXPECT_EQ(pool->trace_memo_stats().misses, 3u);
  EXPECT_GT(pool->trace_memo_stats().hits, 0u);

  // A second sweep over the same pool re-emits nothing at all.
  const SweepResult second = run_sweep(spec, warm);
  ASSERT_EQ(second.failed_count(), 0u);
  EXPECT_EQ(pool->trace_memo_stats().misses, 3u);

  // And a serial sweep leasing from the same warm pool agrees byte for byte.
  SweepOptions serial;
  serial.threads = 1;
  serial.pool = pool;
  const SweepResult third = run_sweep(spec, serial);
  ASSERT_EQ(third.failed_count(), 0u);
  EXPECT_EQ(pool->trace_memo_stats().misses, 3u);

  const std::string csv = first.to_csv();
  const std::string jsonl = first.to_jsonl();
  EXPECT_EQ(csv, second.to_csv());
  EXPECT_EQ(jsonl, second.to_jsonl());
  EXPECT_EQ(csv, third.to_csv());
  EXPECT_EQ(jsonl, third.to_jsonl());

  if (std::getenv("SPF_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "golden regeneration handled by the pinned-grid test";
  }
  EXPECT_EQ(csv, read_file(golden_path("pinned_sweep.csv")))
      << "memoized sweep drifted from the golden artifact";
  EXPECT_EQ(jsonl, read_file(golden_path("pinned_sweep.jsonl")))
      << "memoized sweep drifted from the golden artifact";
}

}  // namespace
}  // namespace spf::orchestrate
