// Unit tests for trace records, buffers, file round-trips, and summaries.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "spf/trace/trace.hpp"
#include "spf/trace/trace_io.hpp"
#include "spf/trace/trace_stats.hpp"

namespace spf {
namespace {

TEST(TraceRecordTest, PackedFieldsRoundTrip) {
  const TraceRecord r = TraceRecord::make(0xdeadbeef, 42, AccessKind::kWrite, 3,
                                          kFlagSpine | kFlagDelinquent, 17);
  EXPECT_EQ(r.addr, 0xdeadbeefu);
  EXPECT_EQ(r.outer_iter, 42u);
  EXPECT_EQ(r.kind(), AccessKind::kWrite);
  EXPECT_EQ(r.site, 3u);
  EXPECT_TRUE(r.is_spine());
  EXPECT_TRUE(r.is_delinquent());
  EXPECT_EQ(r.compute_gap, 17u);
}

TEST(TraceRecordTest, ComputeGapSaturatesAt16Bits) {
  const TraceRecord r =
      TraceRecord::make(0, 0, AccessKind::kRead, 0, 0, 1 << 20);
  EXPECT_EQ(r.compute_gap, 0xffffu);
}

TEST(TraceRecordTest, SixteenBytes) {
  EXPECT_EQ(sizeof(TraceRecord), 16u);
}

TEST(TraceBufferTest, EmitAndIterate) {
  TraceBuffer t;
  t.emit(100, 0, AccessKind::kRead, 1);
  t.emit(200, 0, AccessKind::kRead, 2, kFlagDelinquent);
  t.emit(300, 1, AccessKind::kWrite, 3);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.outer_iterations(), 2u);
  EXPECT_EQ(t[1].addr, 200u);
  EXPECT_TRUE(t[1].is_delinquent());
  std::size_t n = 0;
  for (const TraceRecord& r : t) {
    (void)r;
    ++n;
  }
  EXPECT_EQ(n, 3u);
}

TEST(TraceBufferTest, EmptyTraceHasZeroIterations) {
  TraceBuffer t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.outer_iterations(), 0u);
}

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("spf_trace_test_" + std::to_string(::getpid()) + ".spft");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(TraceIoTest, RoundTripPreservesEveryRecord) {
  TraceBuffer out;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    out.emit(i * 64, i / 10,
             i % 3 == 0 ? AccessKind::kWrite : AccessKind::kRead,
             static_cast<std::uint8_t>(i % 5),
             i % 2 ? kFlagSpine : kFlagDelinquent, i % 100);
  }
  write_trace(path_, out);
  const TraceBuffer in = read_trace(path_);
  ASSERT_EQ(in.size(), out.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(in[i], out[i]) << "record " << i;
  }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  write_trace(path_, TraceBuffer{});
  EXPECT_EQ(read_trace(path_).size(), 0u);
}

TEST_F(TraceIoTest, BadMagicRejected) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "NOPE trailing garbage that is long enough for a header";
  }
  EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedBodyRejected) {
  TraceBuffer out;
  for (int i = 0; i < 100; ++i) out.emit(i, 0, AccessKind::kRead, 0);
  write_trace(path_, out);
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) / 2);
  EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, MissingFileRejected) {
  EXPECT_THROW(read_trace("/nonexistent/dir/file.spft"), std::runtime_error);
}

TEST(TraceSummaryTest, CountsKindsFlagsAndFootprint) {
  const CacheGeometry g(1 << 16, 4, 64);
  TraceBuffer t;
  t.emit(0, 0, AccessKind::kRead, 1, kFlagSpine, 5);
  t.emit(64, 0, AccessKind::kRead, 2, kFlagDelinquent, 0);
  t.emit(64, 1, AccessKind::kWrite, 2, 0, 3);     // same line as above
  t.emit(4096, 1, AccessKind::kPrefetch, 3, 0, 0);
  const TraceSummary s = summarize_trace(t, g);
  EXPECT_EQ(s.accesses, 4u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.prefetches, 1u);
  EXPECT_EQ(s.spine_accesses, 1u);
  EXPECT_EQ(s.delinquent_accesses, 1u);
  EXPECT_EQ(s.outer_iterations, 2u);
  EXPECT_EQ(s.distinct_lines, 3u);
  EXPECT_EQ(s.compute_cycles, 8u);
  EXPECT_EQ(s.per_site.size(), 3u);
  EXPECT_EQ(s.per_site.at(2), 2u);
  EXPECT_FALSE(s.to_string().empty());
}

}  // namespace
}  // namespace spf
