// Unit tests for the shared-cache occupancy sampler (spf/sim/occupancy.hpp):
// the provenance split must account for every valid line, and the series
// statistics must match hand-computed values on known cache states.
#include <gtest/gtest.h>

#include "spf/cache/cache.hpp"
#include "spf/sim/occupancy.hpp"

namespace spf {
namespace {

// 8 sets x 2 ways of 64B lines.
CacheGeometry geo() { return CacheGeometry(1024, 2, 64); }

TEST(OccupancyTest, EmptyCacheSnapshotsToZero) {
  Cache c(geo(), ReplacementKind::kLru);
  const OccupancySample s = snapshot_occupancy(c, 7);
  EXPECT_EQ(s.when, 7u);
  EXPECT_EQ(s.total(), 0u);
  EXPECT_EQ(s.unused_prefetch(), 0u);
}

TEST(OccupancyTest, ProvenanceSplitSumsToValidLines) {
  Cache c(geo(), ReplacementKind::kLru);
  // Distinct sets so no evictions: occupancy == fills.
  c.fill(0, FillOrigin::kDemand, 0, 0);
  c.fill(1, FillOrigin::kHelper, 1, 1);   // stays unused
  c.fill(2, FillOrigin::kHelper, 1, 2);   // consumed below
  c.fill(3, FillOrigin::kHardware, 0, 3); // stays unused
  c.fill(4, FillOrigin::kHardware, 0, 4); // consumed below
  c.access(2, AccessKind::kRead, 5);
  c.access(4, AccessKind::kRead, 6);

  const OccupancySample s = snapshot_occupancy(c, 10);
  EXPECT_EQ(s.demand_lines, 1u);
  EXPECT_EQ(s.helper_used, 1u);
  EXPECT_EQ(s.helper_unused, 1u);
  EXPECT_EQ(s.hw_used, 1u);
  EXPECT_EQ(s.hw_unused, 1u);

  std::uint64_t valid = 0;
  for (std::uint64_t set = 0; set < geo().num_sets(); ++set) {
    valid += c.set_occupancy(set);
  }
  EXPECT_EQ(s.total(), valid);
  EXPECT_EQ(s.unused_prefetch(), 2u);
}

TEST(OccupancyTest, PrefetchTouchLeavesLinesUnused) {
  Cache c(geo(), ReplacementKind::kLru);
  c.fill(1, FillOrigin::kHelper, 1, 0);
  c.access(1, AccessKind::kPrefetch, 1);  // not a demand touch
  const OccupancySample s = snapshot_occupancy(c, 2);
  EXPECT_EQ(s.helper_unused, 1u);
  EXPECT_EQ(s.helper_used, 0u);
}

TEST(OccupancySeriesTest, EmptySeriesStats) {
  const OccupancySeries series;
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.mean_unused_prefetch_fraction(), 0.0);
  EXPECT_EQ(series.peak_unused_prefetch(), 0u);
}

TEST(OccupancySeriesTest, MeanFractionOnKnownSamples) {
  OccupancySeries series;
  // 2 unused of 8 total = 0.25; 6 unused of 8 = 0.75 -> mean 0.5.
  series.samples.push_back(OccupancySample{
      .when = 0, .demand_lines = 6, .helper_unused = 1, .hw_unused = 1});
  series.samples.push_back(OccupancySample{
      .when = 1, .demand_lines = 2, .helper_unused = 4, .hw_unused = 2});
  // An all-empty sample must be skipped, not counted as 0.
  series.samples.push_back(OccupancySample{.when = 2});
  EXPECT_DOUBLE_EQ(series.mean_unused_prefetch_fraction(), 0.5);
  EXPECT_EQ(series.peak_unused_prefetch(), 6u);
}

TEST(OccupancySeriesTest, MeanFractionFromLiveCacheSnapshots) {
  Cache c(geo(), ReplacementKind::kLru);
  c.fill(0, FillOrigin::kDemand, 0, 0);
  c.fill(1, FillOrigin::kHelper, 1, 1);
  OccupancySeries series;
  series.samples.push_back(snapshot_occupancy(c, 0));  // 1 of 2 unused
  c.access(1, AccessKind::kRead, 2);                   // consume the prefetch
  series.samples.push_back(snapshot_occupancy(c, 3));  // 0 of 2 unused
  EXPECT_DOUBLE_EQ(series.mean_unused_prefetch_fraction(), 0.25);
  EXPECT_EQ(series.peak_unused_prefetch(), 1u);
}

}  // namespace
}  // namespace spf
