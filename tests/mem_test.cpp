// Unit tests for spf_mem: cache geometry and address arithmetic.
#include <gtest/gtest.h>

#include "spf/mem/geometry.hpp"

namespace spf {
namespace {

TEST(CacheGeometryTest, Core2L2MatchesPaperTable1) {
  const CacheGeometry l2 = CacheGeometry::core2_l2();
  EXPECT_EQ(l2.size_bytes(), 4u * 1024 * 1024);
  EXPECT_EQ(l2.ways(), 16u);
  EXPECT_EQ(l2.line_bytes(), 64u);
  EXPECT_EQ(l2.num_sets(), 4096u);
}

TEST(CacheGeometryTest, Core2L1MatchesPaperTable1) {
  const CacheGeometry l1 = CacheGeometry::core2_l1d();
  EXPECT_EQ(l1.size_bytes(), 32u * 1024);
  EXPECT_EQ(l1.ways(), 8u);
  EXPECT_EQ(l1.num_sets(), 64u);
}

TEST(CacheGeometryTest, LineOfStripsOffset) {
  const CacheGeometry g(1 << 16, 4, 64);
  EXPECT_EQ(g.line_of(0), 0u);
  EXPECT_EQ(g.line_of(63), 0u);
  EXPECT_EQ(g.line_of(64), 1u);
  EXPECT_EQ(g.line_of(0x12345), 0x12345u >> 6);
}

TEST(CacheGeometryTest, BaseOfInvertsLineOf) {
  const CacheGeometry g(1 << 16, 4, 64);
  for (Addr a : {Addr{0}, Addr{64}, Addr{0xdeadbe00}}) {
    EXPECT_EQ(g.base_of(g.line_of(a)), a & ~Addr{63});
  }
}

TEST(CacheGeometryTest, SetMappingWrapsAtNumSets) {
  const CacheGeometry g(64 * 1024, 4, 64);  // 256 sets
  EXPECT_EQ(g.num_sets(), 256u);
  EXPECT_EQ(g.set_of(0), 0u);
  EXPECT_EQ(g.set_of(64), 1u);
  EXPECT_EQ(g.set_of(256 * 64), 0u);  // wraps
  EXPECT_EQ(g.set_of(257 * 64), 1u);
}

TEST(CacheGeometryTest, TagDisambiguatesAliasedLines) {
  const CacheGeometry g(64 * 1024, 4, 64);
  const LineAddr a = g.line_of(0);
  const LineAddr b = g.line_of(256 * 64);  // same set, different tag
  EXPECT_EQ(g.set_of_line(a), g.set_of_line(b));
  EXPECT_NE(g.tag_of_line(a), g.tag_of_line(b));
}

TEST(CacheGeometryTest, SingleSetCache) {
  const CacheGeometry g(512, 8, 64);  // fully associative: 1 set
  EXPECT_EQ(g.num_sets(), 1u);
  EXPECT_EQ(g.set_of(0x1000), 0u);
  EXPECT_EQ(g.set_of(0xffffffc0), 0u);
}

TEST(CacheGeometryTest, EqualityAndToString) {
  const CacheGeometry a(1 << 20, 16, 64);
  const CacheGeometry b(1 << 20, 16, 64);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.to_string().find("1MB"), std::string::npos);
  EXPECT_NE(a.to_string().find("16-way"), std::string::npos);
}

TEST(CacheGeometryDeathTest, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(CacheGeometry(1000, 4, 64), "power of two");
  EXPECT_DEATH(CacheGeometry(1 << 16, 3, 64), "power of two");
  EXPECT_DEATH(CacheGeometry(1 << 16, 4, 48), "power of two");
}

TEST(CacheGeometryDeathTest, RejectsCacheSmallerThanOneSet) {
  EXPECT_DEATH(CacheGeometry(64, 4, 64), "at least one set");
}

TEST(TypesTest, EnumNames) {
  EXPECT_STREQ(to_string(AccessKind::kRead), "read");
  EXPECT_STREQ(to_string(AccessKind::kWrite), "write");
  EXPECT_STREQ(to_string(AccessKind::kPrefetch), "prefetch");
  EXPECT_STREQ(to_string(FillOrigin::kDemand), "demand");
  EXPECT_STREQ(to_string(FillOrigin::kHelper), "helper");
  EXPECT_STREQ(to_string(FillOrigin::kHardware), "hardware");
}

}  // namespace
}  // namespace spf
