// Second property suite: sampling, trace-op composition, and analyzer
// idempotence properties over randomized inputs.
#include <gtest/gtest.h>

#include "spf/common/rng.hpp"
#include "spf/core/distance_bound.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/profile/sampling.hpp"
#include "spf/profile/set_affinity.hpp"
#include "spf/trace/trace_ops.hpp"

namespace spf {
namespace {

TraceBuffer random_trace(std::uint64_t seed, std::uint32_t iters,
                         std::uint32_t per_iter) {
  TraceBuffer t;
  Xoshiro256 rng(seed);
  for (std::uint32_t i = 0; i < iters; ++i) {
    for (std::uint32_t j = 0; j < per_iter; ++j) {
      t.emit(rng.below(1u << 22), i, AccessKind::kRead,
             static_cast<std::uint8_t>(rng.below(6)),
             j == 0 ? kFlagSpine : kFlagDelinquent, 1);
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Burst sampling: the retained fraction approximates burst/(burst+interval)
// and every burst contains only its own iterations, re-based.

class BurstPropertyTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(BurstPropertyTest, FractionAndRebasingHold) {
  const auto [burst, interval] = GetParam();
  const TraceBuffer t = random_trace(burst * 131 + interval, 5000, 4);
  BurstConfig cfg;
  cfg.burst_iters = burst;
  cfg.interval_iters = interval;
  const auto bursts = burst_sample(t, cfg);
  ASSERT_FALSE(bursts.empty());

  const double expected =
      static_cast<double>(burst) / static_cast<double>(burst + interval);
  EXPECT_NEAR(sampled_fraction(t, bursts), expected, 0.05);

  for (const Burst& b : bursts) {
    EXPECT_EQ(b.first_outer_iter % (burst + interval), 0u);
    for (const TraceRecord& r : b.records) {
      EXPECT_LT(r.outer_iter, burst);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BurstPropertyTest,
    ::testing::Values(std::make_pair(64u, 448u), std::make_pair(128u, 896u),
                      std::make_pair(256u, 256u), std::make_pair(500u, 1500u)),
    [](const auto& param_info) {
      return "b" + std::to_string(param_info.param.first) + "_i" +
             std::to_string(param_info.param.second);
    });

// ---------------------------------------------------------------------------
// Trace-op composition.

TEST(TraceOpsPropertyTest, FiltersPartitionTheTrace) {
  const TraceBuffer t = random_trace(3, 1000, 5);
  std::size_t total = 0;
  for (std::uint8_t site = 0; site < 6; ++site) {
    total += filter_by_site(t, site).size();
  }
  EXPECT_EQ(total, t.size());
}

TEST(TraceOpsPropertyTest, SlicesTileTheTrace) {
  const TraceBuffer t = random_trace(4, 1000, 5);
  std::size_t total = 0;
  for (std::uint32_t begin = 0; begin < 1000; begin += 100) {
    total += slice_iters(t, begin, begin + 100).size();
  }
  EXPECT_EQ(total, t.size());
}

TEST(TraceOpsPropertyTest, ShiftThenShiftBackIsIdentityAboveZero) {
  const TraceBuffer t = random_trace(5, 500, 3);
  const TraceBuffer round_trip = shift_iters(shift_iters(t, 250), -250);
  ASSERT_EQ(round_trip.size(), t.size());
  for (std::size_t i = 0; i < t.size(); i += 41) {
    EXPECT_EQ(round_trip[i], t[i]);
  }
}

TEST(TraceOpsPropertyTest, SliceOfMergeEqualsMergeOfSlices) {
  const TraceBuffer a = random_trace(6, 400, 3);
  const TraceBuffer b = random_trace(7, 400, 2);
  const TraceBuffer merged = merge_traces_by_iter(a, b);
  const TraceBuffer slice_then = slice_iters(merged, 100, 300);
  const TraceBuffer then_slice = merge_traces_by_iter(
      slice_iters(a, 100, 300), slice_iters(b, 100, 300));
  ASSERT_EQ(slice_then.size(), then_slice.size());
  for (std::size_t i = 0; i < slice_then.size(); i += 23) {
    EXPECT_EQ(slice_then[i], then_slice[i]);
  }
}

TEST(TraceOpsPropertyTest, MergeIsOrderedAndSizePreserving) {
  const TraceBuffer a = random_trace(8, 600, 2);
  const TraceBuffer b = random_trace(9, 300, 4);
  const TraceBuffer merged = merge_traces_by_iter(a, b);
  EXPECT_EQ(merged.size(), a.size() + b.size());
  std::uint32_t prev = 0;
  for (const TraceRecord& r : merged) {
    EXPECT_GE(r.outer_iter, prev);
    prev = r.outer_iter;
  }
}

// ---------------------------------------------------------------------------
// Analyzer idempotence / reuse.

TEST(SaIdempotenceTest, AnalyzerReusableAfterFinish) {
  const CacheGeometry g(16 * 1024, 4, 64);
  const TraceBuffer t = random_trace(10, 2000, 6);
  SetAffinityAnalyzer analyzer(g);
  for (const TraceRecord& r : t) analyzer.observe(r.addr, r.outer_iter);
  const SetAffinityResult first = analyzer.finish();
  // Reuse the same analyzer object: must match a fresh analysis exactly.
  for (const TraceRecord& r : t) analyzer.observe(r.addr, r.outer_iter);
  const SetAffinityResult second = analyzer.finish();
  EXPECT_EQ(first.samples, second.samples);
  EXPECT_EQ(first.per_set, second.per_set);
  EXPECT_EQ(first.touched_sets, second.touched_sets);
}

TEST(BoundMonotonicityTest, BiggerCachesAllowLongerDistances) {
  const TraceBuffer t = random_trace(11, 4000, 8);
  std::uint32_t prev_bound = 0;
  for (std::uint64_t size : {32u << 10, 64u << 10, 128u << 10}) {
    const DistanceBound bound =
        estimate_distance_bound(t, {0}, CacheGeometry(size, 8, 64));
    EXPECT_GE(bound.upper_limit, prev_bound)
        << "bound shrank when the cache grew (size " << size << ")";
    prev_bound = bound.upper_limit;
  }
}

}  // namespace
}  // namespace spf
