// Differential test of the two replay engines (docs/simulator.md): every
// SimResult field must be identical whether the simulator batches runs of
// same-core records or replays one record per scheduler round. Random traces
// come from the shared IR program generator; a structured EM3D workload and
// single-stream / occupancy-sampling variants cover the paths randomness
// rarely exercises. Also runs with SPF_FORCE_SCALAR_TAGS=1 via a dedicated
// ctest entry so the scalar tag-compare fallback is held to the same bar.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ir_fuzz_util.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/ir/interp.hpp"
#include "spf/sim/simulator.hpp"
#include "spf/workloads/em3d.hpp"

namespace spf {
namespace {

void expect_same_thread_metrics(const ThreadMetrics& a, const ThreadMetrics& b,
                                std::size_t core) {
  SCOPED_TRACE("core " + std::to_string(core));
  EXPECT_EQ(a.demand_accesses, b.demand_accesses);
  EXPECT_EQ(a.l1_hits, b.l1_hits);
  EXPECT_EQ(a.l2_lookups, b.l2_lookups);
  EXPECT_EQ(a.totally_hits, b.totally_hits);
  EXPECT_EQ(a.partially_hits, b.partially_hits);
  EXPECT_EQ(a.totally_misses, b.totally_misses);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);
  EXPECT_EQ(a.prefetches_elided, b.prefetches_elided);
  EXPECT_EQ(a.prefetches_dropped, b.prefetches_dropped);
  EXPECT_EQ(a.stall_cycles, b.stall_cycles);
  EXPECT_EQ(a.finish_time, b.finish_time);
}

void expect_same_result(const SimResult& batched, const SimResult& scalar) {
  ASSERT_EQ(batched.per_core.size(), scalar.per_core.size());
  for (std::size_t i = 0; i < batched.per_core.size(); ++i) {
    expect_same_thread_metrics(batched.per_core[i], scalar.per_core[i], i);
  }

  EXPECT_EQ(batched.pollution.case1_reuse_displaced,
            scalar.pollution.case1_reuse_displaced);
  EXPECT_EQ(batched.pollution.case2_helper_displaced,
            scalar.pollution.case2_helper_displaced);
  EXPECT_EQ(batched.pollution.case3_hw_displaced,
            scalar.pollution.case3_hw_displaced);
  EXPECT_EQ(batched.pollution.prefetch_caused_evictions,
            scalar.pollution.prefetch_caused_evictions);
  EXPECT_EQ(batched.pollution.total_evictions, scalar.pollution.total_evictions);

  EXPECT_EQ(batched.l2.lookups, scalar.l2.lookups);
  EXPECT_EQ(batched.l2.hits, scalar.l2.hits);
  EXPECT_EQ(batched.l2.misses, scalar.l2.misses);
  EXPECT_EQ(batched.l2.fills, scalar.l2.fills);
  EXPECT_EQ(batched.l2.evictions, scalar.l2.evictions);
  EXPECT_EQ(batched.l2.evicted_unused_helper, scalar.l2.evicted_unused_helper);
  EXPECT_EQ(batched.l2.evicted_unused_hw, scalar.l2.evicted_unused_hw);

  EXPECT_EQ(batched.mshr.allocations, scalar.mshr.allocations);
  EXPECT_EQ(batched.mshr.merges, scalar.mshr.merges);
  EXPECT_EQ(batched.mshr.demand_merges_into_prefetch,
            scalar.mshr.demand_merges_into_prefetch);
  EXPECT_EQ(batched.mshr.full_rejections, scalar.mshr.full_rejections);
  EXPECT_EQ(batched.mshr.peak_occupancy, scalar.mshr.peak_occupancy);

  EXPECT_EQ(batched.memory.requests, scalar.memory.requests);
  for (int o = 0; o < 3; ++o) {
    EXPECT_EQ(batched.memory.requests_by_origin[o],
              scalar.memory.requests_by_origin[o]);
  }
  EXPECT_EQ(batched.memory.writebacks, scalar.memory.writebacks);
  EXPECT_EQ(batched.memory.total_queue_delay, scalar.memory.total_queue_delay);
  EXPECT_EQ(batched.memory.busy_cycles, scalar.memory.busy_cycles);

  EXPECT_EQ(batched.hw_prefetches_issued, scalar.hw_prefetches_issued);
  EXPECT_EQ(batched.polluted_set_count, scalar.polluted_set_count);
  EXPECT_EQ(batched.top_polluted_sets, scalar.top_polluted_sets);
  EXPECT_EQ(batched.makespan, scalar.makespan);

  ASSERT_EQ(batched.occupancy.samples.size(), scalar.occupancy.samples.size());
  for (std::size_t i = 0; i < batched.occupancy.samples.size(); ++i) {
    const OccupancySample& x = batched.occupancy.samples[i];
    const OccupancySample& y = scalar.occupancy.samples[i];
    SCOPED_TRACE("occupancy sample " + std::to_string(i));
    EXPECT_EQ(x.when, y.when);
    EXPECT_EQ(x.demand_lines, y.demand_lines);
    EXPECT_EQ(x.helper_used, y.helper_used);
    EXPECT_EQ(x.helper_unused, y.helper_unused);
    EXPECT_EQ(x.hw_used, y.hw_used);
    EXPECT_EQ(x.hw_unused, y.hw_unused);
  }
}

/// Runs identical streams through both engines and compares everything.
void run_both_and_compare(SimConfig config,
                          const std::vector<CoreStream>& streams) {
  config.batched_replay = true;
  CmpSimulator batched(config);
  const SimResult r_batched = batched.run(streams);

  config.batched_replay = false;
  CmpSimulator scalar(config);
  const SimResult r_scalar = scalar.run(streams);

  expect_same_result(r_batched, r_scalar);
}

/// Small shared L2 so random traces actually generate misses, evictions and
/// MSHR pressure instead of fitting in cache.
SimConfig small_machine() {
  SimConfig config;
  config.l1 = CacheGeometry(4 * 1024, 4, 64);
  config.l2 = CacheGeometry(64 * 1024, 8, 64);
  config.l2_mshrs = 8;
  return config;
}

class ReplayDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReplayDifferentialTest, RandomTraceMainPlusHelper) {
  ir::VirtualMemory vm;
  const ir::Program program = ir::random_program(GetParam(), vm);
  const ir::InterpResult interp = ir::interpret(program, vm);
  if (interp.trace.size() == 0) GTEST_SKIP() << "degenerate program";

  const SpParams params{.a_ski = 2, .a_pre = 3};
  const TraceBuffer helper = make_helper_trace(interp.trace, params);

  run_both_and_compare(
      small_machine(),
      {CoreStream{.trace = &interp.trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt},
       CoreStream{.trace = &helper,
                  .origin = FillOrigin::kHelper,
                  .sync = RoundSync{.leader = 0,
                                    .round_iters = params.round()}}});
}

TEST_P(ReplayDifferentialTest, RandomTraceSingleStream) {
  ir::VirtualMemory vm;
  const ir::Program program = ir::random_program(GetParam(), vm);
  const ir::InterpResult interp = ir::interpret(program, vm);
  if (interp.trace.size() == 0) GTEST_SKIP() << "degenerate program";

  run_both_and_compare(
      small_machine(),
      {CoreStream{.trace = &interp.trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt}});
}

TEST_P(ReplayDifferentialTest, RandomTraceWithOccupancySampling) {
  ir::VirtualMemory vm;
  const ir::Program program = ir::random_program(GetParam(), vm);
  const ir::InterpResult interp = ir::interpret(program, vm);
  if (interp.trace.size() == 0) GTEST_SKIP() << "degenerate program";

  const SpParams params{.a_ski = 1, .a_pre = 4};
  const TraceBuffer helper = make_helper_trace(interp.trace, params);

  SimConfig config = small_machine();
  // Deliberately small interval: samples land mid-batch, so the batched
  // engine must honor sample points record-by-record.
  config.occupancy_sample_interval = 512;
  run_both_and_compare(
      config,
      {CoreStream{.trace = &interp.trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt},
       CoreStream{.trace = &helper,
                  .origin = FillOrigin::kHelper,
                  .sync = RoundSync{.leader = 0,
                                    .round_iters = params.round()}}});
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(ReplayDifferentialEm3dTest, StructuredWorkloadAgrees) {
  Em3dConfig wl;
  wl.nodes = 3000;
  wl.arity = 16;
  wl.passes = 1;
  Em3dWorkload workload(wl);
  const TraceBuffer trace = workload.emit_trace();

  const SpParams params = SpParams::from_distance_rp(8, 0.5);
  const TraceBuffer helper = make_helper_trace(trace, params);

  SimConfig config = small_machine();
  config.occupancy_sample_interval = 4096;
  run_both_and_compare(
      config,
      {CoreStream{.trace = &trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt},
       CoreStream{.trace = &helper,
                  .origin = FillOrigin::kHelper,
                  .sync = RoundSync{.leader = 0,
                                    .round_iters = params.round()}}});
}

TEST(ReplayDifferentialEm3dTest, NoHwPrefetchAgrees) {
  Em3dConfig wl;
  wl.nodes = 2000;
  wl.arity = 8;
  wl.passes = 1;
  Em3dWorkload workload(wl);
  const TraceBuffer trace = workload.emit_trace();

  const SpParams params = SpParams::from_distance_rp(4, 1.0);
  const TraceBuffer helper = make_helper_trace(trace, params);

  SimConfig config = small_machine();
  config.hw_prefetch = false;
  run_both_and_compare(
      config,
      {CoreStream{.trace = &trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt},
       CoreStream{.trace = &helper,
                  .origin = FillOrigin::kHelper,
                  .sync = RoundSync{.leader = 0,
                                    .round_iters = params.round()}}});
}

}  // namespace
}  // namespace spf
