// Differential test of the two replay engines (docs/simulator.md): every
// SimResult field must be identical whether the simulator batches runs of
// same-core records or replays one record per scheduler round. Random traces
// come from the shared IR program generator; a structured EM3D workload and
// single-stream / occupancy-sampling variants cover the paths randomness
// rarely exercises. Also runs with SPF_FORCE_SCALAR_TAGS=1 via a dedicated
// ctest entry so the scalar tag-compare fallback is held to the same bar.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ir_fuzz_util.hpp"
#include "sim_test_util.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/ir/interp.hpp"
#include "spf/sim/simulator.hpp"
#include "spf/workloads/em3d.hpp"

namespace spf {
namespace {

using test::expect_same_result;

/// Runs identical streams through both engines and compares everything.
void run_both_and_compare(SimConfig config,
                          const std::vector<CoreStream>& streams) {
  config.batched_replay = true;
  CmpSimulator batched(config);
  const SimResult r_batched = batched.run(streams);

  config.batched_replay = false;
  CmpSimulator scalar(config);
  const SimResult r_scalar = scalar.run(streams);

  expect_same_result(r_batched, r_scalar);
}

/// Small shared L2 so random traces actually generate misses, evictions and
/// MSHR pressure instead of fitting in cache.
SimConfig small_machine() {
  SimConfig config;
  config.l1 = CacheGeometry(4 * 1024, 4, 64);
  config.l2 = CacheGeometry(64 * 1024, 8, 64);
  config.l2_mshrs = 8;
  return config;
}

class ReplayDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReplayDifferentialTest, RandomTraceMainPlusHelper) {
  ir::VirtualMemory vm;
  const ir::Program program = ir::random_program(GetParam(), vm);
  const ir::InterpResult interp = ir::interpret(program, vm);
  if (interp.trace.size() == 0) GTEST_SKIP() << "degenerate program";

  const SpParams params{.a_ski = 2, .a_pre = 3};
  const TraceBuffer helper = make_helper_trace(interp.trace, params);

  run_both_and_compare(
      small_machine(),
      {CoreStream{.trace = &interp.trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt},
       CoreStream{.trace = &helper,
                  .origin = FillOrigin::kHelper,
                  .sync = RoundSync{.leader = 0,
                                    .round_iters = params.round()}}});
}

TEST_P(ReplayDifferentialTest, RandomTraceSingleStream) {
  ir::VirtualMemory vm;
  const ir::Program program = ir::random_program(GetParam(), vm);
  const ir::InterpResult interp = ir::interpret(program, vm);
  if (interp.trace.size() == 0) GTEST_SKIP() << "degenerate program";

  run_both_and_compare(
      small_machine(),
      {CoreStream{.trace = &interp.trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt}});
}

TEST_P(ReplayDifferentialTest, RandomTraceWithOccupancySampling) {
  ir::VirtualMemory vm;
  const ir::Program program = ir::random_program(GetParam(), vm);
  const ir::InterpResult interp = ir::interpret(program, vm);
  if (interp.trace.size() == 0) GTEST_SKIP() << "degenerate program";

  const SpParams params{.a_ski = 1, .a_pre = 4};
  const TraceBuffer helper = make_helper_trace(interp.trace, params);

  SimConfig config = small_machine();
  // Deliberately small interval: samples land mid-batch, so the batched
  // engine must honor sample points record-by-record.
  config.occupancy_sample_interval = 512;
  run_both_and_compare(
      config,
      {CoreStream{.trace = &interp.trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt},
       CoreStream{.trace = &helper,
                  .origin = FillOrigin::kHelper,
                  .sync = RoundSync{.leader = 0,
                                    .round_iters = params.round()}}});
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(ReplayDifferentialEm3dTest, StructuredWorkloadAgrees) {
  Em3dConfig wl;
  wl.nodes = 3000;
  wl.arity = 16;
  wl.passes = 1;
  Em3dWorkload workload(wl);
  const TraceBuffer trace = workload.emit_trace();

  const SpParams params = SpParams::from_distance_rp(8, 0.5);
  const TraceBuffer helper = make_helper_trace(trace, params);

  SimConfig config = small_machine();
  config.occupancy_sample_interval = 4096;
  run_both_and_compare(
      config,
      {CoreStream{.trace = &trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt},
       CoreStream{.trace = &helper,
                  .origin = FillOrigin::kHelper,
                  .sync = RoundSync{.leader = 0,
                                    .round_iters = params.round()}}});
}

TEST(ReplayDifferentialEm3dTest, NoHwPrefetchAgrees) {
  Em3dConfig wl;
  wl.nodes = 2000;
  wl.arity = 8;
  wl.passes = 1;
  Em3dWorkload workload(wl);
  const TraceBuffer trace = workload.emit_trace();

  const SpParams params = SpParams::from_distance_rp(4, 1.0);
  const TraceBuffer helper = make_helper_trace(trace, params);

  SimConfig config = small_machine();
  config.hw_prefetch = false;
  run_both_and_compare(
      config,
      {CoreStream{.trace = &trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt},
       CoreStream{.trace = &helper,
                  .origin = FillOrigin::kHelper,
                  .sync = RoundSync{.leader = 0,
                                    .round_iters = params.round()}}});
}

}  // namespace
}  // namespace spf
