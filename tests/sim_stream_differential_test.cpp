// Differential test of the simulator's two record feeds (docs/simulator.md
// "Cursor-fed cores & the peek window"): every SimResult field must be
// identical whether the helper core replays a materialized helper trace
// through the buffer-indexed reference engine or pulls lazily synthesized
// records through the RecordSource window (SimConfig::streaming_cores, the
// fused default). Structured em3d/mcf/mst workloads drive all four
// feed × engine combinations, window sizes down to a single record stress
// refill at every peek, and the ExperimentContext seam is pinned at the
// SpRunSummary level — including the fused path's zero trace-record
// allocation contract (trace_hooks::record_allocations). A scalar-tags ctest
// variant replays the suite under SPF_FORCE_SCALAR_TAGS=1, and a TSan
// variant runs it race-instrumented when SPF_SANITIZE=thread.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim_test_util.hpp"
#include "spf/core/experiment_context.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/sim/simulator.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/mcf.hpp"
#include "spf/workloads/mst.hpp"

namespace spf {
namespace {

using test::expect_same_result;

/// Small shared L2 so the workloads generate misses, evictions and MSHR
/// pressure instead of fitting in cache (mirrors replay_differential_test).
SimConfig small_machine() {
  SimConfig config;
  config.l1 = CacheGeometry(4 * 1024, 4, 64);
  config.l2 = CacheGeometry(64 * 1024, 8, 64);
  config.l2_mshrs = 8;
  return config;
}

/// The materialized reference cell: helper trace generated up front, both
/// cores buffer-indexed.
SimResult run_materialized(const SimConfig& base, const TraceBuffer& trace,
                           const SpParams& params, bool batched) {
  SimConfig config = base;
  config.streaming_cores = false;
  config.batched_replay = batched;
  const TraceBuffer helper = make_helper_trace(trace, params);
  CmpSimulator sim(config);
  return sim.run(
      {CoreStream{.trace = &trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt},
       CoreStream{.trace = &helper, .origin = FillOrigin::kHelper,
                  .sync = RoundSync{.leader = 0,
                                    .round_iters = params.round()}}});
}

/// The fused cell: helper records synthesized through a HelperViewCursor
/// window during replay, main core fed through the same streaming engine.
template <std::size_t WindowN>
SimResult run_fused(const SimConfig& base, const TraceBuffer& trace,
                    const SpParams& params, bool batched) {
  SimConfig config = base;
  config.streaming_cores = true;
  config.batched_replay = batched;
  CursorWindowSource<HelperViewCursor, WindowN> feed(
      HelperViewCursor(trace, params));
  CmpSimulator sim(config);
  const SimResult result = sim.run(
      {CoreStream{.trace = &trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt},
       CoreStream{.source = &feed, .origin = FillOrigin::kHelper,
                  .sync = RoundSync{.leader = 0,
                                    .round_iters = params.round()}}});
  // The window source must have served exactly the materialized stream's
  // record count — feed_consume's refill invariant ends the stream only when
  // the cursor is exhausted.
  EXPECT_EQ(feed.records_served(), make_helper_trace(trace, params).size());
  return result;
}

void pin_all_feed_variants(const TraceBuffer& trace, const SpParams& params,
                           const SimConfig& base) {
  const SimResult reference = run_materialized(base, trace, params, true);

  {
    SCOPED_TRACE("fused batched");
    expect_same_result(reference, run_fused<4096>(base, trace, params, true));
  }
  {
    SCOPED_TRACE("fused record-at-a-time");
    expect_same_result(reference, run_fused<4096>(base, trace, params, false));
  }
  {
    SCOPED_TRACE("materialized record-at-a-time");
    expect_same_result(reference, run_materialized(base, trace, params, false));
  }
  {
    // One-record windows put a refill behind every consume, so the pending
    // peek crosses a window boundary at every step.
    SCOPED_TRACE("fused single-record window");
    expect_same_result(reference, run_fused<1>(base, trace, params, true));
  }
  {
    // A window size coprime to the round structure lands refills mid-round.
    SCOPED_TRACE("fused tiny window");
    expect_same_result(reference, run_fused<7>(base, trace, params, true));
  }

  // Materialized traces under the streaming engine (BufferCursor windows):
  // the remaining feed × storage combination.
  {
    SCOPED_TRACE("buffer streams through streaming engine");
    SimConfig config = base;
    config.streaming_cores = true;
    const TraceBuffer helper = make_helper_trace(trace, params);
    CmpSimulator sim(config);
    const SimResult streamed = sim.run(
        {CoreStream{.trace = &trace, .origin = FillOrigin::kDemand,
                    .sync = std::nullopt},
         CoreStream{.trace = &helper, .origin = FillOrigin::kHelper,
                    .sync = RoundSync{.leader = 0,
                                      .round_iters = params.round()}}});
    expect_same_result(reference, streamed);
  }
}

TEST(SimStreamDifferentialTest, Em3dAllFeedVariantsAgree) {
  Em3dConfig wl;
  wl.nodes = 3000;
  wl.arity = 16;
  wl.passes = 1;
  const TraceBuffer trace = Em3dWorkload(wl).emit_trace();
  pin_all_feed_variants(trace, SpParams::from_distance_rp(8, 0.5),
                        small_machine());
}

TEST(SimStreamDifferentialTest, McfAllFeedVariantsAgree) {
  McfConfig wl;
  wl.nodes = 1200;
  wl.arcs = 7000;
  wl.passes = 1;
  const TraceBuffer trace = McfWorkload(wl).emit_trace();
  pin_all_feed_variants(trace, SpParams::from_distance_rp(4, 1.0),
                        small_machine());
}

TEST(SimStreamDifferentialTest, MstAllFeedVariantsAgree) {
  MstConfig wl;
  wl.vertices = 500;
  wl.degree = 8;
  wl.buckets = 32;
  const TraceBuffer trace = MstWorkload(wl).emit_trace();
  pin_all_feed_variants(trace, SpParams::from_distance_rp(6, 0.5),
                        small_machine());
}

TEST(SimStreamDifferentialTest, OccupancySamplingAgreesAcrossFeeds) {
  Em3dConfig wl;
  wl.nodes = 2000;
  wl.arity = 8;
  wl.passes = 1;
  const TraceBuffer trace = Em3dWorkload(wl).emit_trace();
  const SpParams params = SpParams::from_distance_rp(8, 0.5);
  SimConfig config = small_machine();
  // Small interval: sample points land mid-window, so the streaming feed must
  // honor them at the same records the buffer feed does.
  config.occupancy_sample_interval = 512;
  expect_same_result(run_materialized(config, trace, params, true),
                     run_fused<64>(config, trace, params, true));
}

// The ExperimentContext seam: run_sp_once's fused path (helper_feed_) against
// its materialized reference path, pinned at the SpRunSummary level — the
// same numbers sweep cells and perf_smoke's replay_checksum are built from —
// plus the fused path's zero-allocation contract.
TEST(SimStreamDifferentialTest, ExperimentContextPathsAgree) {
  Em3dConfig wl;
  wl.nodes = 3000;
  wl.arity = 16;
  wl.passes = 1;
  const TraceBuffer trace = Em3dWorkload(wl).emit_trace();

  SpExperimentConfig fused_cfg;  // streaming_cores defaults on
  fused_cfg.sim = small_machine();
  fused_cfg.params = SpParams::from_distance_rp(8, 0.5);
  SpExperimentConfig mat_cfg = fused_cfg;
  mat_cfg.sim.streaming_cores = false;

  ExperimentContext ctx;
  // Warm-up pass: the materialized path's helper scratch reaches capacity, so
  // the timed-path contract below (zero record allocations while fused) is
  // not confounded by reference-path growth.
  const SpRunSummary warm = ctx.run_sp_once(trace, mat_cfg);

  const std::uint64_t allocs_before = trace_hooks::record_allocations();
  const SpRunSummary fused = ctx.run_sp_once(trace, fused_cfg);
  EXPECT_EQ(trace_hooks::record_allocations() - allocs_before, 0u)
      << "fused replay must not grow trace-record storage";
  const SpRunSummary mat = ctx.run_sp_once(trace, mat_cfg);

  EXPECT_EQ(warm.runtime, fused.runtime);
  EXPECT_EQ(fused.runtime, mat.runtime);
  EXPECT_EQ(fused.l2_lookups, mat.l2_lookups);
  EXPECT_EQ(fused.totally_hits, mat.totally_hits);
  EXPECT_EQ(fused.partially_hits, mat.partially_hits);
  EXPECT_EQ(fused.totally_misses, mat.totally_misses);
  EXPECT_EQ(fused.memory_requests, mat.memory_requests);
  EXPECT_EQ(fused.helper_finish, mat.helper_finish);
  EXPECT_EQ(fused.pollution.case2_helper_displaced,
            mat.pollution.case2_helper_displaced);
  EXPECT_EQ(fused.pollution.total_evictions, mat.pollution.total_evictions);
}

// Prefetch-instruction helper kind flows through the cursor transform too.
TEST(SimStreamDifferentialTest, PrefetchInstructionHelperAgrees) {
  Em3dConfig wl;
  wl.nodes = 2000;
  wl.arity = 8;
  wl.passes = 1;
  const TraceBuffer trace = Em3dWorkload(wl).emit_trace();
  const SpParams params = SpParams::from_distance_rp(4, 0.5);
  const HelperGenOptions options{.use_prefetch_instructions = true};

  SimConfig config = small_machine();
  config.streaming_cores = false;
  const TraceBuffer helper = make_helper_trace(trace, params, options);
  CmpSimulator mat_sim(config);
  const SimResult reference = mat_sim.run(
      {CoreStream{.trace = &trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt},
       CoreStream{.trace = &helper, .origin = FillOrigin::kHelper,
                  .sync = RoundSync{.leader = 0,
                                    .round_iters = params.round()}}});

  config.streaming_cores = true;
  CursorWindowSource<HelperViewCursor, 128> feed(
      HelperViewCursor(trace, params, options));
  CmpSimulator fused_sim(config);
  const SimResult fused = fused_sim.run(
      {CoreStream{.trace = &trace, .origin = FillOrigin::kDemand,
                  .sync = std::nullopt},
       CoreStream{.source = &feed, .origin = FillOrigin::kHelper,
                  .sync = RoundSync{.leader = 0,
                                    .round_iters = params.round()}}});
  expect_same_result(reference, fused);
}

}  // namespace
}  // namespace spf
