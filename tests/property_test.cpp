// Cross-module property tests: invariants that must hold for any input,
// exercised over randomized traces and parameter grids (TEST_P sweeps).
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <utility>

#include "spf/common/rng.hpp"
#include "spf/core/distance_bound.hpp"
#include "spf/core/experiment.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/profile/set_affinity.hpp"
#include "spf/sim/simulator.hpp"
#include "spf/workloads/synthetic.hpp"

namespace spf {
namespace {

TraceBuffer random_trace(std::uint64_t seed, std::uint32_t iters,
                         std::uint32_t per_iter, std::uint64_t footprint_lines) {
  TraceBuffer t;
  Xoshiro256 rng(seed);
  for (std::uint32_t i = 0; i < iters; ++i) {
    t.emit(static_cast<Addr>(i) * 64, i, AccessKind::kRead, 0, kFlagSpine, 1);
    for (std::uint32_t j = 0; j + 1 < per_iter; ++j) {
      const bool write = rng.below(10) == 0;
      t.emit(rng.below(footprint_lines) * 64, i,
             write ? AccessKind::kWrite : AccessKind::kRead,
             static_cast<std::uint8_t>(1 + rng.below(4)),
             write ? TraceFlags{0} : kFlagDelinquent, 1);
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Simulator invariants over a parameter grid.

struct SimGrid {
  std::uint32_t mshrs;
  bool hw_prefetch;
  ReplacementKind policy;
};

class SimInvariantTest : public ::testing::TestWithParam<SimGrid> {};

TEST_P(SimInvariantTest, ConservationAndBoundsHold) {
  const SimGrid grid = GetParam();
  SimConfig cfg;
  cfg.l1 = CacheGeometry(2048, 4, 64);
  cfg.l2 = CacheGeometry(64 * 1024, 8, 64);
  cfg.l2_mshrs = grid.mshrs;
  cfg.hw_prefetch = grid.hw_prefetch;
  cfg.replacement = grid.policy;

  const TraceBuffer main_t = random_trace(1, 800, 8, 4096);
  const TraceBuffer helper_t =
      make_helper_trace(main_t, SpParams{.a_ski = 4, .a_pre = 4});

  CmpSimulator sim(cfg);
  const SimResult r = sim.run({
      CoreStream{.trace = &main_t},
      CoreStream{.trace = &helper_t,
                 .origin = FillOrigin::kHelper,
                 .sync = RoundSync{.leader = 0, .round_iters = 8}},
  });

  for (const ThreadMetrics& m : r.per_core) {
    // Classification partitions demand L2 lookups.
    EXPECT_EQ(m.totally_hits + m.partially_hits + m.totally_misses,
              m.l2_lookups);
    // Every demand access either hit L1 or went to L2.
    EXPECT_EQ(m.l1_hits + m.l2_lookups, m.demand_accesses);
    // The core finishes no earlier than its stall budget implies.
    EXPECT_LE(m.finish_time, r.makespan);
  }
  // Every memory request was a demand miss, a software prefetch, or a
  // hardware prefetch.
  EXPECT_EQ(r.memory.requests,
            r.per_core[0].totally_misses + r.per_core[1].totally_misses +
                r.per_core[0].prefetches_issued +
                r.per_core[1].prefetches_issued + r.hw_prefetches_issued);
  // Pollution can never exceed prefetch-caused evictions by construction
  // (cases 2/3 are prefetch-caused; case 1 re-misses are bounded by the
  // shadow, which only prefetch-caused evictions feed).
  EXPECT_LE(r.pollution.case2_helper_displaced +
                r.pollution.case3_hw_displaced,
            r.pollution.prefetch_caused_evictions);
  EXPECT_LE(r.pollution.prefetch_caused_evictions,
            r.pollution.total_evictions);
  // MSHR occupancy never exceeded capacity.
  EXPECT_LE(r.mshr.peak_occupancy, grid.mshrs);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimInvariantTest,
    ::testing::Values(SimGrid{1, false, ReplacementKind::kLru},
                      SimGrid{2, true, ReplacementKind::kLru},
                      SimGrid{8, true, ReplacementKind::kTreePlru},
                      SimGrid{16, true, ReplacementKind::kSrrip},
                      SimGrid{16, false, ReplacementKind::kFifo},
                      SimGrid{32, true, ReplacementKind::kRandom}),
    [](const auto& param_info) {
      return std::string("mshr") + std::to_string(param_info.param.mshrs) +
             (param_info.param.hw_prefetch ? "_hw" : "_nohw") + "_" +
             to_string(param_info.param.policy);
    });

// ---------------------------------------------------------------------------
// Helper-generation properties.

class HelperGenPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(HelperGenPropertyTest, HelperIsAReadOnlySubsetWithRoundStructure) {
  const auto [a_ski, a_pre] = GetParam();
  const SpParams params{.a_ski = a_ski, .a_pre = a_pre};
  const TraceBuffer main_t = random_trace(a_ski * 7 + a_pre, 300, 6, 2048);
  const TraceBuffer helper = make_helper_trace(main_t, params);

  // Subset property: every helper record's (addr, iter) pair exists in the
  // main trace.
  std::set<std::pair<Addr, std::uint32_t>> main_pairs;
  for (const TraceRecord& r : main_t) main_pairs.insert({r.addr, r.outer_iter});
  for (const TraceRecord& r : helper) {
    EXPECT_NE(r.kind(), AccessKind::kWrite);
    EXPECT_TRUE(main_pairs.count({r.addr, r.outer_iter}))
        << "helper invented an access";
    const std::uint32_t pos = r.outer_iter % params.round();
    if (pos < params.a_ski) {
      EXPECT_TRUE(r.is_spine());
    }
  }

  // Completeness property: every delinquent read in a pre-execute iteration
  // appears in the helper stream.
  std::uint64_t expected = 0;
  std::uint64_t got = 0;
  for (const TraceRecord& r : main_t) {
    if (r.kind() == AccessKind::kWrite) continue;
    if (r.outer_iter % params.round() >= params.a_ski && r.is_delinquent()) {
      ++expected;
    }
  }
  for (const TraceRecord& r : helper) {
    if (r.is_delinquent()) ++got;
  }
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Rounds, HelperGenPropertyTest,
    ::testing::Values(std::make_tuple(1u, 1u), std::make_tuple(4u, 4u),
                      std::make_tuple(16u, 4u), std::make_tuple(0u, 8u),
                      std::make_tuple(3u, 9u)),
    [](const auto& param_info) {
      return "ski" + std::to_string(std::get<0>(param_info.param)) + "_pre" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------------
// Set Affinity monotonicity properties.

TEST(SaPropertyTest, MoreWaysNeverDecreaseSa) {
  const TraceBuffer t = random_trace(9, 2000, 10, 1 << 14);
  const SetAffinityResult sa4 =
      SetAffinityAnalyzer::analyze(t, CacheGeometry(16 * 1024, 4, 64));
  const SetAffinityResult sa8 =
      SetAffinityAnalyzer::analyze(t, CacheGeometry(32 * 1024, 8, 64));
  // Same set count (64), doubled ways: each set needs more distinct blocks
  // to saturate, so per-set SA can only grow (or the set stops saturating).
  ASSERT_TRUE(sa4.any_saturated());
  for (const auto& [set, sa] : sa8.per_set) {
    auto it = sa4.per_set.find(set);
    if (it != sa4.per_set.end()) {
      EXPECT_GE(sa, it->second) << "set " << set;
    }
  }
}

TEST(SaPropertyTest, SupersetStreamNeverIncreasesSa) {
  // Adding a helper's accesses to the stream can only move each set's
  // saturation earlier — the monotonicity behind Definition 3 and the *2
  // inequality.
  const TraceBuffer main_t = random_trace(10, 1500, 8, 1 << 13);
  const TraceBuffer helper =
      make_helper_trace(main_t, SpParams{.a_ski = 8, .a_pre = 8});
  const TraceBuffer combined = merge_traces_by_iter(main_t, helper);
  const CacheGeometry g(32 * 1024, 8, 64);
  const SetAffinityResult solo = SetAffinityAnalyzer::analyze(main_t, g);
  const SetAffinityResult both = SetAffinityAnalyzer::analyze(combined, g);
  for (const auto& [set, sa] : solo.per_set) {
    auto it = both.per_set.find(set);
    ASSERT_NE(it, both.per_set.end()) << "saturated set vanished";
    EXPECT_LE(it->second, sa) << "set " << set;
  }
}

TEST(SaPropertyTest, RecurrentWindowsTileTheIterationSpace) {
  const TraceBuffer t = random_trace(11, 3000, 6, 1 << 12);
  const CacheGeometry g(16 * 1024, 4, 64);
  SetAffinityAnalyzer analyzer(g, SetAffinityMode::kRecurrent);
  for (const TraceRecord& r : t) analyzer.observe(r.addr, r.outer_iter);
  const SetAffinityResult result = analyzer.finish();
  // Every recurrent sample is a window length: positive and no longer than
  // the whole loop.
  for (std::uint32_t sa : result.samples) {
    EXPECT_GE(sa, 1u);
    EXPECT_LE(sa, result.outer_iterations);
  }
  // Recurrent mode yields at least as many samples as first-saturation mode.
  const SetAffinityResult first = SetAffinityAnalyzer::analyze(t, g);
  EXPECT_GE(result.samples.size(), first.samples.size());
}

// ---------------------------------------------------------------------------
// End-to-end determinism across the entire pipeline.

TEST(DeterminismPropertyTest, FullPipelineIsBitStable) {
  SyntheticConfig wcfg;
  wcfg.iterations = 5000;
  auto run_pipeline = [&] {
    const SyntheticWorkload w(wcfg);
    const TraceBuffer trace = w.emit_trace();
    const DistanceBound bound =
        estimate_distance_bound(trace, w.invocation_starts(),
                                CacheGeometry(128 * 1024, 16, 64));
    SpExperimentConfig cfg;
    cfg.sim.l2 = CacheGeometry(128 * 1024, 16, 64);
    cfg.params = SpParams::from_distance_rp(bound.upper_limit / 2, 0.5);
    const SpComparison cmp = run_sp_experiment(trace, cfg);
    return std::make_tuple(bound.upper_limit, cmp.sp.runtime,
                           cmp.sp.totally_hits, cmp.sp.partially_hits,
                           cmp.sp.pollution.total_pollution());
  };
  EXPECT_EQ(run_pipeline(), run_pipeline());
}

}  // namespace
}  // namespace spf
