// Tests for the HEALTH workload (tree of villages with patient lists) and
// the trace transformation utilities it exercises.
#include <gtest/gtest.h>

#include <set>

#include "spf/core/experiment.hpp"
#include "spf/profile/pattern.hpp"
#include "spf/trace/trace_ops.hpp"
#include "spf/workloads/health.hpp"

namespace spf {
namespace {

HealthConfig small() {
  HealthConfig c;
  c.depth = 4;  // 85 villages
  c.mean_patients = 8;
  c.steps = 3;
  return c;
}

TEST(HealthTest, VillageCountMatchesGeometricSum) {
  EXPECT_EQ(HealthConfig{.depth = 1}.villages(), 1u);
  EXPECT_EQ(HealthConfig{.depth = 2}.villages(), 5u);
  EXPECT_EQ(HealthConfig{.depth = 3}.villages(), 21u);
  EXPECT_EQ(HealthConfig{.depth = 4}.villages(), 85u);
  EXPECT_EQ(HealthConfig{.depth = 5}.villages(), 341u);
}

TEST(HealthTest, IterationsCoverAllVillageVisits) {
  HealthWorkload w(small());
  EXPECT_EQ(w.outer_iterations(), 85u * 3u);
  const TraceBuffer t = w.emit_trace();
  EXPECT_EQ(t.outer_iterations(), 85u * 3u);
  const auto starts = w.invocation_starts();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[1], 85u);
}

TEST(HealthTest, EveryIterationVisitsExactlyOneVillageSpine) {
  HealthWorkload w(small());
  const TraceBuffer t = w.emit_trace();
  std::map<std::uint32_t, int> spines_per_iter;
  for (const TraceRecord& r : t) {
    if (r.site == kHealthVillage && r.is_spine()) {
      spines_per_iter[r.outer_iter]++;
    }
  }
  ASSERT_EQ(spines_per_iter.size(), w.outer_iterations());
  for (const auto& [iter, count] : spines_per_iter) {
    EXPECT_EQ(count, 1) << "iteration " << iter;
  }
}

TEST(HealthTest, EachStepVisitsEveryVillageOnce) {
  HealthWorkload w(small());
  const TraceBuffer t = w.emit_trace();
  // Within step 0 (iters [0,85)), the 85 spine reads must touch 85 distinct
  // village addresses.
  const TraceBuffer step0 = slice_iters(t, 0, 85);
  std::set<Addr> villages;
  for (const TraceRecord& r : step0) {
    if (r.site == kHealthVillage && r.is_spine()) villages.insert(r.addr);
  }
  EXPECT_EQ(villages.size(), 85u);
}

TEST(HealthTest, PatientLoadsAreIrregularDelinquent) {
  HealthWorkload w(small());
  const TraceBuffer t = w.emit_trace();
  const PatternReport patterns = classify_patterns(t);
  EXPECT_EQ(patterns.per_site.at(kHealthPatient).pattern,
            AccessPattern::kIrregular);
  for (const TraceRecord& r : t) {
    if (r.site == kHealthPatient) {
      EXPECT_TRUE(r.is_delinquent());
      EXPECT_EQ(r.kind(), AccessKind::kRead);
    }
  }
}

TEST(HealthTest, ReferralsWriteTheParentVillage) {
  HealthWorkload w(small());
  const TraceBuffer t = w.emit_trace();
  std::uint64_t referrals = 0;
  for (const TraceRecord& r : t) {
    if (r.site == kHealthReferral) {
      EXPECT_EQ(r.kind(), AccessKind::kWrite);
      ++referrals;
    }
  }
  // ~10% of ~8 patients per visit across 255 visits: hundreds, not zero.
  EXPECT_GT(referrals, 50u);
}

TEST(HealthTest, Deterministic) {
  const TraceBuffer a = HealthWorkload(small()).emit_trace();
  const TraceBuffer b = HealthWorkload(small()).emit_trace();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 83) EXPECT_EQ(a[i], b[i]);
}

TEST(HealthTest, SpHelpsThePatientWalk) {
  HealthConfig c;
  c.depth = 5;
  c.mean_patients = 12;
  c.steps = 4;
  HealthWorkload w(c);
  const TraceBuffer trace = w.emit_trace();
  SpExperimentConfig cfg;
  cfg.sim.l2 = CacheGeometry(128 * 1024, 16, 64);
  cfg.params = SpParams::from_distance_rp(8, 0.5);
  const SpComparison cmp = run_sp_experiment(trace, cfg);
  EXPECT_LT(cmp.norm_runtime(), 0.95);
  EXPECT_LT(cmp.sp.totally_misses, cmp.original.totally_misses);
}

TEST(TraceOpsTest, FilterBySiteKeepsOrder) {
  TraceBuffer t;
  t.emit(1, 0, AccessKind::kRead, 1);
  t.emit(2, 0, AccessKind::kRead, 2);
  t.emit(3, 1, AccessKind::kRead, 1);
  const TraceBuffer only1 = filter_by_site(t, 1);
  ASSERT_EQ(only1.size(), 2u);
  EXPECT_EQ(only1[0].addr, 1u);
  EXPECT_EQ(only1[1].addr, 3u);
}

TEST(TraceOpsTest, SliceItersRebases) {
  TraceBuffer t;
  for (std::uint32_t i = 0; i < 10; ++i) t.emit(i, i, AccessKind::kRead, 0);
  const TraceBuffer sliced = slice_iters(t, 3, 7);
  ASSERT_EQ(sliced.size(), 4u);
  EXPECT_EQ(sliced[0].outer_iter, 0u);
  EXPECT_EQ(sliced[0].addr, 3u);
  EXPECT_EQ(sliced[3].outer_iter, 3u);
  const TraceBuffer raw = slice_iters(t, 3, 7, /*rebase=*/false);
  EXPECT_EQ(raw[0].outer_iter, 3u);
}

TEST(TraceOpsTest, DemandOnlyDropsPrefetches) {
  TraceBuffer t;
  t.emit(1, 0, AccessKind::kRead, 0);
  t.emit(2, 0, AccessKind::kPrefetch, 0);
  t.emit(3, 0, AccessKind::kWrite, 0);
  const TraceBuffer demand = demand_only(t);
  ASSERT_EQ(demand.size(), 2u);
  EXPECT_EQ(demand[1].addr, 3u);
}

TEST(TraceOpsTest, ShiftItersSaturatesAtZero) {
  TraceBuffer t;
  t.emit(1, 2, AccessKind::kRead, 0);
  t.emit(2, 10, AccessKind::kRead, 0);
  const TraceBuffer shifted = shift_iters(t, -5);
  EXPECT_EQ(shifted[0].outer_iter, 0u);
  EXPECT_EQ(shifted[1].outer_iter, 5u);
  const TraceBuffer forward = shift_iters(t, 3);
  EXPECT_EQ(forward[0].outer_iter, 5u);
}

}  // namespace
}  // namespace spf
