// Randomized robustness tests for the IR: generate structurally valid random
// programs and check interpreter invariants — verify() accepts them, loads/
// stores match trace records, execution is deterministic, and helper
// interpretation of a sliceable program never stores and stays a subset of
// iteration space.
#include <gtest/gtest.h>

#include "ir_fuzz_util.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/ir/interp.hpp"
#include "spf/ir/ir.hpp"
#include "spf/ir/slice.hpp"
#include "spf/ir/vm.hpp"

namespace spf::ir {
namespace {

class IrFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IrFuzzTest, InterpreterInvariantsHold) {
  VirtualMemory vm;
  const Program p = random_program(GetParam(), vm);
  EXPECT_TRUE(verify(p).empty());

  VirtualMemory vm_a = vm;
  VirtualMemory vm_b = vm;
  const InterpResult a = interpret(p, vm_a);
  const InterpResult b = interpret(p, vm_b);

  // Determinism.
  EXPECT_EQ(a.store_checksum, b.store_checksum);
  ASSERT_EQ(a.trace.size(), b.trace.size());

  // Trace bookkeeping matches counters.
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  for (const TraceRecord& r : a.trace) {
    EXPECT_LT(r.outer_iter, p.outer_trip);
    (r.kind() == AccessKind::kWrite ? writes : reads) += 1;
  }
  EXPECT_EQ(reads, a.loads);
  EXPECT_EQ(writes, a.stores);

  // Slicing + helper interpretation invariants.
  const SliceMasks masks = build_helper_slice(p);
  EXPECT_LE(masks.spine_count(), masks.helper_count());
  const SpParams params{.a_ski = 2, .a_pre = 2};
  const InterpResult helper = interpret_helper(p, masks, params, vm);
  EXPECT_EQ(helper.stores, 0u);
  for (const TraceRecord& r : helper.trace) {
    EXPECT_NE(r.kind(), AccessKind::kWrite);
    EXPECT_LT(r.outer_iter, p.outer_trip);
  }
  // The helper issues every delinquent load of pre-executed iterations.
  std::uint64_t main_delinquent_pre = 0;
  for (const TraceRecord& r : a.trace) {
    if (r.is_delinquent() && r.outer_iter % params.round() >= params.a_ski) {
      ++main_delinquent_pre;
    }
  }
  std::uint64_t helper_delinquent = 0;
  for (const TraceRecord& r : helper.trace) {
    helper_delinquent += r.is_delinquent();
  }
  EXPECT_EQ(helper_delinquent, main_delinquent_pre);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace spf::ir
