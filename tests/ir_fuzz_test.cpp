// Randomized robustness tests for the IR: generate structurally valid random
// programs and check interpreter invariants — verify() accepts them, loads/
// stores match trace records, execution is deterministic, and helper
// interpretation of a sliceable program never stores and stays a subset of
// iteration space.
#include <gtest/gtest.h>

#include "spf/common/rng.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/ir/interp.hpp"
#include "spf/ir/ir.hpp"
#include "spf/ir/slice.hpp"
#include "spf/ir/vm.hpp"

namespace spf::ir {
namespace {

/// Generates a random well-formed program: arithmetic over previous values,
/// loads at (masked) computed addresses, occasional stores, at most one
/// inner loop with a bounded trip constant, and a register-carried pointer
/// chased through a pre-seeded ring.
Program random_program(std::uint64_t seed, VirtualMemory& vm) {
  Xoshiro256 rng(seed);
  ProgramBuilder b(static_cast<std::uint32_t>(8 + rng.below(64)));

  // Seed a pointer ring so register chases stay inside a known region.
  constexpr Addr kRing = 0x100000;
  constexpr std::uint64_t kRingNodes = 32;
  for (std::uint64_t i = 0; i < kRingNodes; ++i) {
    vm.write(kRing + i * 64, kRing + ((i + 1) % kRingNodes) * 64);
  }

  std::vector<std::int32_t> values;  // ids usable as operands (current scope)
  values.push_back(b.constant(kRing));
  values.push_back(b.constant(0xffff8));  // address mask (keeps addrs sane)
  values.push_back(b.iter_index());
  const std::int32_t mask = values[1];

  auto any_value = [&]() {
    return values[rng.below(values.size())];
  };
  auto masked_addr = [&]() {
    // (v & mask) + ring base: valid, bounded addresses.
    return b.add(b.band(any_value(), mask), values[0]);
  };

  // Spine chase through the ring.
  const auto cur = b.reg_read(0);
  values.push_back(cur);
  const auto next = b.load(cur, 1, kFlagSpine);
  values.push_back(next);
  b.reg_write(0, next);

  const std::uint64_t instrs = 4 + rng.below(20);
  bool in_loop = false;
  std::size_t loop_values_mark = 0;
  for (std::uint64_t k = 0; k < instrs; ++k) {
    switch (rng.below(in_loop ? 6 : 7)) {
      case 0:
        values.push_back(b.add(any_value(), any_value()));
        break;
      case 1:
        values.push_back(b.mul(any_value(), any_value()));
        break;
      case 2:
        values.push_back(b.shl(any_value(), rng.below(4)));
        break;
      case 3:
        values.push_back(b.load(masked_addr(), 2,
                                rng.below(2) ? kFlagDelinquent : TraceFlags{0},
                                static_cast<std::uint16_t>(rng.below(4))));
        break;
      case 4:
        b.store(masked_addr(), any_value(), 3);
        break;
      case 5:
        if (in_loop) {
          b.loop_end();
          in_loop = false;
          values.resize(loop_values_mark);  // in-loop values out of scope
        } else {
          values.push_back(b.inner_index());
        }
        break;
      case 6: {
        const auto trip = b.constant(1 + rng.below(5));
        values.push_back(trip);
        b.loop_begin(trip);
        in_loop = true;
        loop_values_mark = values.size();
        values.push_back(b.inner_index());
        break;
      }
    }
  }
  if (in_loop) b.loop_end();
  // Guarantee at least one delinquent load so slicing has a seed.
  b.load(masked_addr(), 4, kFlagDelinquent);

  Program p = b.take();
  p.reg_init = {kRing};
  return p;
}

class IrFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IrFuzzTest, InterpreterInvariantsHold) {
  VirtualMemory vm;
  const Program p = random_program(GetParam(), vm);
  EXPECT_TRUE(verify(p).empty());

  VirtualMemory vm_a = vm;
  VirtualMemory vm_b = vm;
  const InterpResult a = interpret(p, vm_a);
  const InterpResult b = interpret(p, vm_b);

  // Determinism.
  EXPECT_EQ(a.store_checksum, b.store_checksum);
  ASSERT_EQ(a.trace.size(), b.trace.size());

  // Trace bookkeeping matches counters.
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  for (const TraceRecord& r : a.trace) {
    EXPECT_LT(r.outer_iter, p.outer_trip);
    (r.kind() == AccessKind::kWrite ? writes : reads) += 1;
  }
  EXPECT_EQ(reads, a.loads);
  EXPECT_EQ(writes, a.stores);

  // Slicing + helper interpretation invariants.
  const SliceMasks masks = build_helper_slice(p);
  EXPECT_LE(masks.spine_count(), masks.helper_count());
  const SpParams params{.a_ski = 2, .a_pre = 2};
  const InterpResult helper = interpret_helper(p, masks, params, vm);
  EXPECT_EQ(helper.stores, 0u);
  for (const TraceRecord& r : helper.trace) {
    EXPECT_NE(r.kind(), AccessKind::kWrite);
    EXPECT_LT(r.outer_iter, p.outer_trip);
  }
  // The helper issues every delinquent load of pre-executed iterations.
  std::uint64_t main_delinquent_pre = 0;
  for (const TraceRecord& r : a.trace) {
    if (r.is_delinquent() && r.outer_iter % params.round() >= params.a_ski) {
      ++main_delinquent_pre;
    }
  }
  std::uint64_t helper_delinquent = 0;
  for (const TraceRecord& r : helper.trace) {
    helper_delinquent += r.is_delinquent();
  }
  EXPECT_EQ(helper_delinquent, main_delinquent_pre);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace spf::ir
