// Randomized robustness tests for the IR: generate structurally valid random
// programs and check interpreter invariants — verify() accepts them, loads/
// stores match trace records, execution is deterministic, and helper
// interpretation of a sliceable program never stores and stays a subset of
// iteration space. A second suite splices interpreted traces into
// phase-boundary mutations (abrupt working-set shifts) and holds the
// phase-incremental Set-Affinity analysis to its invariants on them.
#include <gtest/gtest.h>

#include <algorithm>

#include "ir_fuzz_util.hpp"
#include "spf/core/distance_bound.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/ir/interp.hpp"
#include "spf/ir/ir.hpp"
#include "spf/ir/slice.hpp"
#include "spf/ir/vm.hpp"
#include "spf/profile/incremental_affinity.hpp"
#include "spf/profile/invocations.hpp"

namespace spf::ir {
namespace {

class IrFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IrFuzzTest, InterpreterInvariantsHold) {
  VirtualMemory vm;
  const Program p = random_program(GetParam(), vm);
  EXPECT_TRUE(verify(p).empty());

  VirtualMemory vm_a = vm;
  VirtualMemory vm_b = vm;
  const InterpResult a = interpret(p, vm_a);
  const InterpResult b = interpret(p, vm_b);

  // Determinism.
  EXPECT_EQ(a.store_checksum, b.store_checksum);
  ASSERT_EQ(a.trace.size(), b.trace.size());

  // Trace bookkeeping matches counters.
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  for (const TraceRecord& r : a.trace) {
    EXPECT_LT(r.outer_iter, p.outer_trip);
    (r.kind() == AccessKind::kWrite ? writes : reads) += 1;
  }
  EXPECT_EQ(reads, a.loads);
  EXPECT_EQ(writes, a.stores);

  // Slicing + helper interpretation invariants.
  const SliceMasks masks = build_helper_slice(p);
  EXPECT_LE(masks.spine_count(), masks.helper_count());
  const SpParams params{.a_ski = 2, .a_pre = 2};
  const InterpResult helper = interpret_helper(p, masks, params, vm);
  EXPECT_EQ(helper.stores, 0u);
  for (const TraceRecord& r : helper.trace) {
    EXPECT_NE(r.kind(), AccessKind::kWrite);
    EXPECT_LT(r.outer_iter, p.outer_trip);
  }
  // The helper issues every delinquent load of pre-executed iterations.
  std::uint64_t main_delinquent_pre = 0;
  for (const TraceRecord& r : a.trace) {
    if (r.is_delinquent() && r.outer_iter % params.round() >= params.a_ski) {
      ++main_delinquent_pre;
    }
  }
  std::uint64_t helper_delinquent = 0;
  for (const TraceRecord& r : helper.trace) {
    helper_delinquent += r.is_delinquent();
  }
  EXPECT_EQ(helper_delinquent, main_delinquent_pre);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 33));

// Splice an interpreted trace into an abrupt working-set shift: the original
// run, followed by a replay shifted past its iteration span whose per-
// iteration footprint is multiplied by re-emitting each record in `widen`
// disjoint address regions. Exactly the input shape phase detection exists
// for — and a stress for its windowing/EMA state machine.
TraceBuffer splice_phase_shift(const TraceBuffer& trace, std::uint32_t widen) {
  std::uint32_t iter_end = 0;
  for (const TraceRecord& r : trace) {
    iter_end = std::max(iter_end, r.outer_iter + 1);
  }
  TraceBuffer spliced;
  for (const TraceRecord& r : trace) spliced.mutable_records().push_back(r);
  for (const TraceRecord& r : trace) {
    for (std::uint32_t w = 0; w < widen; ++w) {
      TraceRecord s = r;
      s.outer_iter += iter_end;
      s.addr += Addr{w + 1} << 40;
      spliced.mutable_records().push_back(s);
    }
  }
  return spliced;
}

TEST_P(IrFuzzTest, PhaseBoundaryMutationsKeepBoundsSane) {
  VirtualMemory vm;
  const Program p = random_program(GetParam(), vm);
  const InterpResult interp = interpret(p, vm);
  if (interp.trace.size() == 0) GTEST_SKIP() << "degenerate program";

  const CacheGeometry l2(16 * 1024, 4, 64);
  // The seed varies how hard the working set widens at the splice point.
  const TraceBuffer spliced =
      splice_phase_shift(interp.trace, 2 + GetParam() % 3);

  PhaseAffinityConfig cfg;
  cfg.window_iters = 1 + static_cast<std::uint32_t>(GetParam() % 64);
  const PhasedSaResult sa =
      analyze_workload_sa_phased(spliced, {0}, l2, cfg);

  // The phases always form a contiguous partition starting at iteration 0.
  ASSERT_FALSE(sa.phases.empty());
  EXPECT_EQ(sa.phases.front().begin_iter, 0u);
  for (std::size_t i = 0; i + 1 < sa.phases.size(); ++i) {
    EXPECT_EQ(sa.phases[i].end_iter, sa.phases[i + 1].begin_iter);
  }

  // The whole-run slice is the legacy analysis, bit for bit.
  const WorkloadSaResult legacy = analyze_workload_sa(spliced, {0}, l2);
  EXPECT_EQ(sa.whole.merged.samples, legacy.merged.samples);
  EXPECT_EQ(sa.whole.merged.per_set, legacy.merged.per_set);
  EXPECT_EQ(sa.whole.cumulative_fallback, legacy.cumulative_fallback);

  if (!sa.whole.merged.any_saturated()) return;  // no bound to derive

  const PhasedDistanceBound bound = estimate_phase_bounds(spliced, {0}, l2, cfg);
  EXPECT_EQ(bound.whole.upper_limit,
            estimate_distance_bound(spliced, {0}, l2).upper_limit);
  EXPECT_EQ(bound.min_phase_bound(), bound.whole.upper_limit);

  // Refined per-phase caps live in [1, original_SA / 2]: the paper's /2
  // inequality may never be loosened inside any phase, whatever the splice
  // did to the sample stream.
  const std::uint32_t original_half =
      std::max(1u, bound.whole.original_min_sa / 2);
  const SpParams params = SpParams::from_distance_rp(
      1 + static_cast<std::uint32_t>(GetParam() % 8), 0.5);
  const PhasedDistanceBound refined =
      refine_phase_bounds(bound, spliced, {0}, params, l2,
                          DistanceBoundOptions{.phase = cfg});
  for (const PhaseDistanceBound& ph : refined.phases) {
    EXPECT_GE(ph.upper_limit, 1u);
    EXPECT_LE(ph.upper_limit, original_half);
  }
  EXPECT_EQ(refined.min_phase_bound(), refined.whole.upper_limit);
}

}  // namespace
}  // namespace spf::ir
