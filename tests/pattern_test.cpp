// Unit tests for access-pattern classification and the synthetic workload.
#include <gtest/gtest.h>

#include "spf/common/rng.hpp"
#include "spf/profile/pattern.hpp"
#include "spf/workloads/synthetic.hpp"

namespace spf {
namespace {

TEST(PatternTest, SequentialSiteClassified) {
  TraceBuffer t;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    t.emit(static_cast<Addr>(i) * 64, i, AccessKind::kRead, 1);
  }
  const PatternReport r = classify_patterns(t);
  ASSERT_EQ(r.per_site.size(), 1u);
  EXPECT_EQ(r.per_site.at(1).pattern, AccessPattern::kSequential);
  EXPECT_EQ(r.per_site.at(1).dominant_delta, 64);
  EXPECT_GT(r.per_site.at(1).regularity, 0.99);
  EXPECT_DOUBLE_EQ(r.sequential_fraction, 1.0);
}

TEST(PatternTest, StridedSiteClassified) {
  TraceBuffer t;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    t.emit(static_cast<Addr>(i) * 4096, i, AccessKind::kRead, 2);
  }
  const PatternReport r = classify_patterns(t);
  EXPECT_EQ(r.per_site.at(2).pattern, AccessPattern::kStrided);
  EXPECT_EQ(r.per_site.at(2).dominant_delta, 4096);
  EXPECT_DOUBLE_EQ(r.strided_fraction, 1.0);
}

TEST(PatternTest, NegativeStrideIsStrided) {
  TraceBuffer down;
  for (std::uint32_t i = 0; i < 500; ++i) {
    down.emit((1 << 24) - static_cast<Addr>(i) * 512, i, AccessKind::kRead, 3);
  }
  const PatternReport r = classify_patterns(down);
  EXPECT_EQ(r.per_site.at(3).pattern, AccessPattern::kStrided);
  EXPECT_EQ(r.per_site.at(3).dominant_delta, -512);
}

TEST(PatternTest, RandomSiteIsIrregular) {
  TraceBuffer t;
  Xoshiro256 rng(1);
  for (std::uint32_t i = 0; i < 5000; ++i) {
    t.emit(rng.below(1u << 28), i, AccessKind::kRead, 4);
  }
  const PatternReport r = classify_patterns(t);
  EXPECT_EQ(r.per_site.at(4).pattern, AccessPattern::kIrregular);
  EXPECT_LT(r.per_site.at(4).regularity, 0.1);
  EXPECT_DOUBLE_EQ(r.irregular_fraction, 1.0);
}

TEST(PatternTest, MixedStreamFractionsSum) {
  TraceBuffer t;
  Xoshiro256 rng(2);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    t.emit(static_cast<Addr>(i) * 64, i, AccessKind::kRead, 1);  // seq
    t.emit(rng.below(1u << 28), i, AccessKind::kRead, 4);        // irregular
  }
  const PatternReport r = classify_patterns(t);
  EXPECT_NEAR(r.sequential_fraction + r.strided_fraction + r.irregular_fraction,
              1.0, 1e-9);
  EXPECT_NEAR(r.sequential_fraction, 0.5, 0.01);
  EXPECT_NEAR(r.irregular_fraction, 0.5, 0.01);
  EXPECT_FALSE(r.to_string().empty());
}

TEST(PatternTest, EmptyTrace) {
  const PatternReport r = classify_patterns(TraceBuffer{});
  EXPECT_TRUE(r.per_site.empty());
  EXPECT_DOUBLE_EQ(r.sequential_fraction, 0.0);
}

TEST(PatternTest, SingleAccessSiteHasNoDeltas) {
  TraceBuffer t;
  t.emit(100, 0, AccessKind::kRead, 7);
  const PatternReport r = classify_patterns(t);
  EXPECT_EQ(r.per_site.at(7).pattern, AccessPattern::kIrregular);
  EXPECT_EQ(r.per_site.at(7).accesses, 1u);
}

TEST(SyntheticWorkloadTest, SiteClassesMatchConstruction) {
  SyntheticConfig cfg;
  cfg.iterations = 4000;
  const SyntheticWorkload w(cfg);
  const TraceBuffer t = w.emit_trace();
  const PatternReport r = classify_patterns(t);
  EXPECT_EQ(r.per_site.at(kSynSequential).pattern, AccessPattern::kSequential);
  EXPECT_EQ(r.per_site.at(kSynStrided).pattern, AccessPattern::kStrided);
  EXPECT_EQ(r.per_site.at(kSynRandom).pattern, AccessPattern::kIrregular);
  // The shuffled spine is irregular too.
  EXPECT_EQ(r.per_site.at(kSynSpine).pattern, AccessPattern::kIrregular);
}

TEST(SyntheticWorkloadTest, RecordCountMatchesConfig) {
  SyntheticConfig cfg;
  cfg.iterations = 100;
  cfg.sequential_lines = 3;
  cfg.strided_reads = 2;
  cfg.random_reads = 5;
  const SyntheticWorkload w(cfg);
  const TraceBuffer t = w.emit_trace();
  EXPECT_EQ(t.size(), 100u * (1 + 3 + 2 + 5));
  EXPECT_EQ(t.outer_iterations(), 100u);
}

TEST(SyntheticWorkloadTest, OnlyRandomSiteIsDelinquent) {
  const SyntheticWorkload w(SyntheticConfig{.iterations = 200});
  for (const TraceRecord& r : w.emit_trace()) {
    EXPECT_EQ(r.is_delinquent(), r.site == kSynRandom);
    EXPECT_EQ(r.is_spine(), r.site == kSynSpine);
  }
}

TEST(SyntheticWorkloadTest, Deterministic) {
  const TraceBuffer a = SyntheticWorkload(SyntheticConfig{}).emit_trace();
  const TraceBuffer b = SyntheticWorkload(SyntheticConfig{}).emit_trace();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 257) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace spf
