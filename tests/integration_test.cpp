// Integration tests: the paper's end-to-end claims exercised across
// workloads -> profiler -> SP core -> simulator.
#include <gtest/gtest.h>

#include "spf/core/distance_bound.hpp"
#include "spf/core/experiment.hpp"
#include "spf/profile/calr.hpp"
#include "spf/profile/invocations.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/mcf.hpp"
#include "spf/workloads/mst.hpp"

namespace spf {
namespace {

// Compact experiment geometry: 128 KB 16-way L2 (128 sets) keeps runtimes in
// CI range while preserving the paper's geometry ratios.
CacheGeometry test_l2() { return CacheGeometry(128 * 1024, 16, 64); }

Em3dConfig em3d_cfg() {
  Em3dConfig c;
  c.nodes = 4000;
  c.arity = 32;
  c.passes = 1;
  return c;
}

SpExperimentConfig exp_cfg(std::uint32_t distance) {
  SpExperimentConfig cfg;
  cfg.sim.l2 = test_l2();
  cfg.params = SpParams::from_distance_rp(distance, 0.5);
  return cfg;
}

class Em3dIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Em3dWorkload(em3d_cfg());
    trace_ = new TraceBuffer(workload_->emit_trace());
    bound_ = new DistanceBound(estimate_distance_bound(
        *trace_, workload_->invocation_starts(), test_l2()));
  }
  static void TearDownTestSuite() {
    delete bound_;
    delete trace_;
    delete workload_;
    workload_ = nullptr;
    trace_ = nullptr;
    bound_ = nullptr;
  }

  static Em3dWorkload* workload_;
  static TraceBuffer* trace_;
  static DistanceBound* bound_;
};

Em3dWorkload* Em3dIntegration::workload_ = nullptr;
TraceBuffer* Em3dIntegration::trace_ = nullptr;
DistanceBound* Em3dIntegration::bound_ = nullptr;

TEST_F(Em3dIntegration, LowCalrSelectsRpHalf) {
  CalrConfig cc;
  cc.l2 = test_l2();
  const CalrEstimate calr = estimate_calr(*trace_, cc);
  EXPECT_LT(calr.calr, 0.2);  // paper: "CALR close to 0" for EM3D
  EXPECT_NEAR(SpParams::rp_from_calr(calr.calr), 0.5, 0.11);
}

TEST_F(Em3dIntegration, BoundIsMeaningfullySized) {
  // With 32 fresh delinquent lines/iteration over 128 sets, sets saturate in
  // tens of iterations: the bound must be small but nonzero.
  EXPECT_GE(bound_->upper_limit, 2u);
  EXPECT_LE(bound_->upper_limit, 200u);
}

TEST_F(Em3dIntegration, SpWithinBoundBeatsOriginal) {
  const SpComparison cmp = run_sp_experiment(
      *trace_, exp_cfg(std::max(1u, bound_->upper_limit / 2)));
  EXPECT_LT(cmp.norm_runtime(), 0.95);
  EXPECT_LT(cmp.norm_hot_misses(), 0.8);
  EXPECT_GT(cmp.delta_totally_hit(), 0.0);
}

TEST_F(Em3dIntegration, ExcessiveDistancePollutesAndSlows) {
  const std::uint32_t good = std::max(1u, bound_->upper_limit / 2);
  const std::uint32_t bad = bound_->upper_limit * 8;
  const SpComparison cmp_good = run_sp_experiment(*trace_, exp_cfg(good));
  const SpComparison cmp_bad = run_sp_experiment(*trace_, exp_cfg(bad));
  // Paper Figure 2/4: larger distance -> more pollution, worse runtime,
  // fewer totally hits.
  EXPECT_GT(cmp_bad.sp.pollution.total_pollution(),
            cmp_good.sp.pollution.total_pollution());
  EXPECT_GT(cmp_bad.norm_runtime(), cmp_good.norm_runtime());
  EXPECT_LT(cmp_bad.delta_totally_hit(), cmp_good.delta_totally_hit());
}

TEST_F(Em3dIntegration, HelperNeverAltersMainDemandCount) {
  const SpComparison cmp = run_sp_experiment(*trace_, exp_cfg(8));
  const std::uint64_t classified = cmp.sp.totally_hits + cmp.sp.partially_hits +
                                   cmp.sp.totally_misses;
  EXPECT_EQ(classified, cmp.sp.l2_lookups);
  // Original and SP runs see the same demand stream.
  EXPECT_EQ(cmp.original.totally_hits + cmp.original.partially_hits +
                cmp.original.totally_misses,
            cmp.original.l2_lookups);
}

TEST_F(Em3dIntegration, Case3RequiresHardwarePrefetchers) {
  SpExperimentConfig with_hw = exp_cfg(bound_->upper_limit * 4);
  SpExperimentConfig no_hw = with_hw;
  no_hw.sim.hw_prefetch = false;
  no_hw.baseline_hw_prefetch = false;
  const SpRunSummary sp_hw = run_sp_once(*trace_, with_hw);
  const SpRunSummary sp_no = run_sp_once(*trace_, no_hw);
  EXPECT_GT(sp_hw.pollution.case3_hw_displaced, 0u);
  EXPECT_EQ(sp_no.pollution.case3_hw_displaced, 0u);
}

TEST_F(Em3dIntegration, RefinedBoundConsistentWithFormula) {
  // Paper: SA_with_helper * 2 <= SA_original, so the refined limit can only
  // tighten the original/2 rule.
  const SpParams params = SpParams::from_distance_rp(bound_->upper_limit, 0.5);
  const DistanceBound refined = refine_with_helper(
      *bound_, *trace_, workload_->invocation_starts(), params, test_l2());
  EXPECT_LE(refined.upper_limit, std::max(1u, bound_->original_min_sa / 2));
  ASSERT_TRUE(refined.with_helper_min_sa.has_value());
  EXPECT_LE(*refined.with_helper_min_sa, bound_->original_min_sa);
}

TEST(SaOrderingIntegration, Em3dSaturatesFarFasterThanMcfAndMst) {
  // Table II's qualitative ordering: EM3D's SA range is orders of magnitude
  // below MCF's and MST's.
  const CacheGeometry l2 = test_l2();

  Em3dWorkload em3d(em3d_cfg());
  const TraceBuffer em3d_trace = em3d.emit_trace();
  const WorkloadSaResult em3d_sa =
      analyze_workload_sa(em3d_trace, em3d.invocation_starts(), l2);

  McfConfig mcf_cfg;
  mcf_cfg.nodes = 3000;
  mcf_cfg.arcs = 18000;
  mcf_cfg.passes = 2;
  McfWorkload mcf(mcf_cfg);
  const TraceBuffer mcf_trace = mcf.emit_trace();
  const WorkloadSaResult mcf_sa =
      analyze_workload_sa(mcf_trace, mcf.invocation_starts(), l2);

  MstConfig mst_cfg;
  mst_cfg.vertices = 400;
  mst_cfg.degree = 32;
  mst_cfg.buckets = 16;
  MstWorkload mst(mst_cfg);
  const TraceBuffer mst_trace = mst.emit_trace();
  const WorkloadSaResult mst_sa =
      analyze_workload_sa(mst_trace, mst.invocation_starts(), l2);

  ASSERT_TRUE(em3d_sa.merged.any_saturated());
  ASSERT_TRUE(mcf_sa.merged.any_saturated());
  ASSERT_TRUE(mst_sa.merged.any_saturated());

  // min SA is an order statistic over sets and noisy at test scale, so the
  // ordering is asserted on both endpoints with conservative factors.
  EXPECT_LT(em3d_sa.merged.min_sa() * 8, mcf_sa.merged.min_sa());
  EXPECT_LT(em3d_sa.merged.min_sa() * 2, mst_sa.merged.min_sa());
  EXPECT_LT(em3d_sa.merged.quantile(0.5) * 8, mcf_sa.merged.quantile(0.5));
  EXPECT_LT(em3d_sa.merged.quantile(0.5) * 3, mst_sa.merged.quantile(0.5));
}

TEST(McfIntegration, SpImprovesPricingLoop) {
  McfConfig cfg;
  cfg.nodes = 3000;
  cfg.arcs = 18000;
  cfg.passes = 2;
  McfWorkload w(cfg);
  const TraceBuffer trace = w.emit_trace();
  const DistanceBound bound =
      estimate_distance_bound(trace, w.invocation_starts(), test_l2());
  const SpComparison cmp = run_sp_experiment(
      trace, exp_cfg(std::max(1u, bound.upper_limit / 4)));
  EXPECT_LT(cmp.norm_runtime(), 1.0);
  EXPECT_LT(cmp.sp.totally_misses, cmp.original.totally_misses);
}

TEST(MstIntegration, SpImprovesBlueRuleScan) {
  MstConfig cfg;
  cfg.vertices = 400;
  cfg.degree = 32;
  cfg.buckets = 64;
  MstWorkload w(cfg);
  const TraceBuffer trace = w.emit_trace();
  const SpComparison cmp = run_sp_experiment(trace, exp_cfg(16));
  EXPECT_LT(cmp.norm_runtime(), 1.05);
  EXPECT_LE(cmp.sp.totally_misses, cmp.original.totally_misses);
}

}  // namespace
}  // namespace spf
