// spf::orchestrate — the parallel sweep engine's contract:
//  * every job runs exactly once, results land in id-indexed slots;
//  * a throwing job is isolated (captured outcome, sweep completes);
//  * aggregated CSV/JSONL artifacts are byte-identical across thread counts;
//  * progress reports are serialized and monotone.
#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "spf/common/jsonl.hpp"
#include "spf/orchestrate/pool.hpp"
#include "spf/orchestrate/sweep.hpp"
#include "spf/orchestrate/workload_specs.hpp"

namespace spf::orchestrate {
namespace {

Em3dConfig tiny_em3d() {
  Em3dConfig c;
  c.nodes = 2000;
  c.arity = 8;
  c.passes = 1;
  return c;
}

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.workloads.push_back(em3d_spec(tiny_em3d()));
  spec.distances = {1, 2, 4};
  spec.rps = {0.5, 1.0};
  spec.geometries = {CacheGeometry(256 << 10, 8, 64)};
  return spec;
}

TEST(Pool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
  EXPECT_GE(resolve_threads(0), 1u);
}

TEST(Pool, RunsEveryJobExactlyOnce) {
  for (const unsigned threads : {1u, 8u}) {
    std::vector<std::atomic<int>> hits(100);
    const auto outcomes = run_indexed(
        hits.size(), threads, [&](std::size_t i) { hits[i].fetch_add(1); });
    ASSERT_EQ(outcomes.size(), 100u);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "job " << i << ", threads " << threads;
      EXPECT_TRUE(outcomes[i].ok);
    }
    EXPECT_EQ(first_error(outcomes), "");
  }
}

TEST(Pool, ThrowingJobIsIsolated) {
  for (const unsigned threads : {1u, 8u}) {
    std::vector<std::atomic<int>> hits(10);
    const auto outcomes = run_indexed(hits.size(), threads, [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 3) throw std::runtime_error("boom");
      if (i == 7) throw 42;  // non-std exception
    });
    EXPECT_FALSE(outcomes[3].ok);
    EXPECT_EQ(outcomes[3].error, "boom");
    EXPECT_FALSE(outcomes[7].ok);
    EXPECT_EQ(outcomes[7].error, "non-standard exception");
    EXPECT_EQ(first_error(outcomes), "boom");
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1);
      if (i != 3 && i != 7) {
        EXPECT_TRUE(outcomes[i].ok);
      }
    }
  }
}

TEST(Pool, ProgressIsMonotoneAndComplete) {
  for (const unsigned threads : {1u, 6u}) {
    std::vector<std::size_t> seen;
    run_indexed(
        25, threads, [](std::size_t) {},
        [&](std::size_t done, std::size_t total) {
          EXPECT_EQ(total, 25u);
          seen.push_back(done);  // serialized by the engine
        });
    ASSERT_EQ(seen.size(), 25u);
    for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
  }
}

TEST(Jsonl, DeterministicFormatting) {
  JsonObject obj;
  obj.add("s", "a\"b\\c\nd")
      .add("i", static_cast<std::int64_t>(-3))
      .add("u", static_cast<std::uint64_t>(7))
      .add("d", 0.5)
      .add("b", true)
      .add_null("n");
  EXPECT_EQ(obj.line(),
            R"({"s":"a\"b\\c\nd","i":-3,"u":7,"d":0.5,"b":true,"n":null})");
  EXPECT_EQ(json_double(1.0 / 3.0), "0.33333333333333331");
}

TEST(Sweep, ArtifactsAreByteIdenticalAcrossThreadCounts) {
  const SweepSpec spec = tiny_spec();
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 8;

  const SweepResult a = run_sweep(spec, serial);
  const SweepResult b = run_sweep(spec, parallel);

  ASSERT_EQ(a.cells.size(), 6u);
  EXPECT_EQ(a.failed_count(), 0u);
  EXPECT_EQ(b.failed_count(), 0u);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_jsonl(), b.to_jsonl());
  EXPECT_NE(a.to_csv().find("em3d"), std::string::npos);
}

TEST(Sweep, CellsExpandInGridOrder) {
  const SweepResult r = run_sweep(tiny_spec(), SweepOptions{.threads = 1});
  ASSERT_EQ(r.cells.size(), 6u);
  const std::uint32_t want_distance[] = {1, 2, 4, 1, 2, 4};
  const double want_rp[] = {0.5, 0.5, 0.5, 1.0, 1.0, 1.0};
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    EXPECT_EQ(r.cells[i].cell.id, i);
    EXPECT_EQ(r.cells[i].cell.distance, want_distance[i]);
    EXPECT_EQ(r.cells[i].cell.rp, want_rp[i]);
    EXPECT_EQ(r.cells[i].cell.workload, "em3d");
  }
}

TEST(Sweep, ControllerAxisExpandsInnermostAndCarriesTrajectories) {
  SweepSpec spec = tiny_spec();
  spec.distances = {4};
  spec.rps = {0.5};
  spec.controllers = {ControllerKind::kStatic, ControllerKind::kAdaptiveAimd,
                      ControllerKind::kAdaptiveCapped};
  spec.adaptive.interval_iters = 500;
  spec.adaptive.max_distance = 1024;
  const SweepResult r = run_sweep(spec, SweepOptions{.threads = 1});
  ASSERT_EQ(r.cells.size(), 3u);
  EXPECT_EQ(r.failed_count(), 0u);
  EXPECT_EQ(r.cells[0].cell.controller, ControllerKind::kStatic);
  EXPECT_EQ(r.cells[1].cell.controller, ControllerKind::kAdaptiveAimd);
  EXPECT_EQ(r.cells[2].cell.controller, ControllerKind::kAdaptiveCapped);

  // Static cells carry no trajectory; adaptive cells carry a full one.
  EXPECT_FALSE(r.cells[0].adaptive.has_value());
  for (const std::size_t i : {1u, 2u}) {
    ASSERT_TRUE(r.cells[i].adaptive.has_value()) << "cell " << i;
    const AdaptiveCellStats& stats = *r.cells[i].adaptive;
    EXPECT_GT(stats.intervals, 0u);
    EXPECT_EQ(stats.trajectory.size(), stats.intervals);
    EXPECT_LE(stats.final_distance, stats.distance_cap);
    for (const std::uint32_t d : stats.trajectory) {
      EXPECT_GE(d, spec.adaptive.min_distance);
      EXPECT_LE(d, stats.distance_cap);
    }
  }
  // The free AIMD walk keeps the spec's ceiling; the capped walk is clamped
  // to the plane's Set-Affinity bound (the paper's static analysis still
  // governs the dynamic controller).
  EXPECT_EQ(r.cells[1].adaptive->distance_cap, 1024u);
  ASSERT_GT(r.cells[2].cell.bound_upper, 0u);
  EXPECT_EQ(r.cells[2].adaptive->distance_cap,
            std::min(1024u, r.cells[2].cell.bound_upper));

  // The static cell is the classic fixed-distance run: identical to the
  // same grid swept without a controller axis.
  SweepSpec static_only = spec;
  static_only.controllers = {ControllerKind::kStatic};
  const SweepResult s = run_sweep(static_only, SweepOptions{.threads = 1});
  ASSERT_EQ(s.cells.size(), 1u);
  EXPECT_EQ(s.cells[0].cmp->sp.runtime, r.cells[0].cmp->sp.runtime);
  EXPECT_EQ(s.cells[0].cmp->sp.l2_lookups, r.cells[0].cmp->sp.l2_lookups);
}

TEST(Sweep, AdaptiveArtifactsAreByteIdenticalAcrossThreadCounts) {
  SweepSpec spec = tiny_spec();
  spec.rps = {0.5};
  spec.controllers = {ControllerKind::kStatic, ControllerKind::kAdaptiveAimd,
                      ControllerKind::kAdaptiveCapped};
  spec.adaptive.interval_iters = 500;
  const SweepResult a = run_sweep(spec, SweepOptions{.threads = 1});
  const SweepResult b = run_sweep(spec, SweepOptions{.threads = 8});
  ASSERT_EQ(a.cells.size(), 9u);  // 3 distances x 3 controllers
  EXPECT_EQ(a.failed_count(), 0u);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_jsonl(), b.to_jsonl());
  EXPECT_NE(a.to_jsonl().find("\"controller\":\"adaptive-capped\""),
            std::string::npos);
  EXPECT_NE(a.to_jsonl().find("\"trajectory\":["), std::string::npos);
  EXPECT_NE(a.to_jsonl().find("\"pollution_rate\":"), std::string::npos);
}

TEST(Sweep, ValidateChecksControllerAxis) {
  SweepSpec spec = tiny_spec();
  spec.controllers = {};
  EXPECT_NE(spec.validate(), "");
  spec.controllers = {ControllerKind::kStatic, ControllerKind::kStatic};
  EXPECT_NE(spec.validate(), "");
  spec.controllers = {ControllerKind::kAdaptiveAimd};
  spec.adaptive.interval_iters = 0;
  EXPECT_NE(spec.validate(), "");
  // An unrunnable adaptive policy is fine while the axis is all-static.
  spec.controllers = {ControllerKind::kStatic};
  EXPECT_EQ(spec.validate(), "");
}

TEST(Sweep, ThrowingCellIsIsolatedAndReported) {
  const SweepSpec spec = tiny_spec();
  SweepOptions opts;
  opts.threads = 8;
  opts.cell_hook = [](const SweepCell& cell) {
    if (cell.id == 2) throw std::runtime_error("injected fault");
  };
  const SweepResult r = run_sweep(spec, opts);
  ASSERT_EQ(r.cells.size(), 6u);
  EXPECT_EQ(r.failed_count(), 1u);
  EXPECT_FALSE(r.cells[2].ok);
  EXPECT_EQ(r.cells[2].error, "injected fault");
  for (const std::size_t i : {0u, 1u, 3u, 4u, 5u}) {
    EXPECT_TRUE(r.cells[i].ok) << "cell " << i;
  }
  // The failed cell still occupies its row in both artifacts.
  EXPECT_NE(r.to_csv().find("failed: injected fault"), std::string::npos);
  EXPECT_NE(r.to_jsonl().find("\"error\":\"injected fault\""),
            std::string::npos);
}

TEST(Sweep, FailedWorkloadFailsOnlyItsCells) {
  SweepSpec spec = tiny_spec();
  WorkloadSpec bad;
  bad.name = "bad";
  bad.make = []() -> std::shared_ptr<const TraceSource> {
    throw std::runtime_error("no trace for you");
  };
  spec.workloads.push_back(bad);

  const SweepResult r = run_sweep(spec, SweepOptions{.threads = 8});
  ASSERT_EQ(r.cells.size(), 12u);
  EXPECT_EQ(r.failed_count(), 6u);
  for (const auto& c : r.cells) {
    if (c.cell.workload == "em3d") {
      EXPECT_TRUE(c.ok);
    } else {
      EXPECT_FALSE(c.ok);
      EXPECT_NE(c.error.find("no trace for you"), std::string::npos);
    }
  }
}

TEST(Sweep, AutoDistancesLadderAroundTheBound) {
  SweepSpec spec = tiny_spec();
  spec.distances.clear();  // auto mode
  spec.rps = {0.5};
  const SweepResult r = run_sweep(spec, SweepOptions{.threads = 2});
  ASSERT_FALSE(r.cells.empty());
  EXPECT_EQ(r.failed_count(), 0u);
  const std::uint32_t bound = r.cells[0].cell.bound_upper;
  EXPECT_GT(bound, 0u);
  // Ladder spans both sides of the bound.
  EXPECT_LT(r.cells.front().cell.distance, bound);
  EXPECT_GE(r.cells.back().cell.distance, bound);
}

TEST(Sweep, FromSourceReusesTheGivenTrace) {
  const Em3dWorkload workload(tiny_em3d());
  TraceSource source{workload.emit_trace(), workload.invocation_starts()};
  const std::size_t records = source.trace.size();
  const WorkloadSpec spec = from_source("em3d-pre", std::move(source));
  const std::shared_ptr<const TraceSource> got = spec.make();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->trace.size(), records);
  EXPECT_EQ(spec.name, "em3d-pre");
  // Every make() call hands out the same materialized source, no copies.
  EXPECT_EQ(spec.make().get(), got.get());
}

TEST(Sweep, NullTraceSourceFailsTheWorkloadCells) {
  SweepSpec spec = tiny_spec();
  WorkloadSpec bad;
  bad.name = "null";
  bad.make = []() -> std::shared_ptr<const TraceSource> { return nullptr; };
  spec.workloads.push_back(bad);

  const SweepResult r = run_sweep(spec, SweepOptions{.threads = 2});
  EXPECT_EQ(r.failed_count(), r.cells.size() / 2);
  for (const auto& c : r.cells) {
    if (c.cell.workload == "null") {
      EXPECT_FALSE(c.ok);
      EXPECT_NE(c.error.find("no trace source"), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace spf::orchestrate
