// Unit tests for the hardware prefetcher models (DPL stride + streamer) and
// the composite chain.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "spf/prefetch/chain.hpp"
#include "spf/prefetch/stream.hpp"
#include "spf/prefetch/stride.hpp"

namespace spf {
namespace {

std::vector<LineAddr> observe_seq(HwPrefetcher& pf,
                                  const std::vector<Addr>& addrs,
                                  SiteId site = 1, bool miss = true) {
  std::vector<LineAddr> out;
  for (Addr a : addrs) {
    pf.observe(PrefetchObservation{.addr = a, .site = site, .was_miss = miss},
               out);
  }
  return out;
}

TEST(StridePrefetcherTest, DetectsConstantStrideAfterTraining) {
  StrideConfig cfg;
  cfg.threshold = 2;
  cfg.degree = 1;
  StridePrefetcher pf(cfg);
  // Stride 128: addresses 0,128,256,384. Confidence reaches 2 at the 4th
  // access (two consecutive equal strides), which then prefetches 384+128.
  const auto out = observe_seq(pf, {0, 128, 256, 384});
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), (384u + 128u) / 64);
}

TEST(StridePrefetcherTest, NoIssueBeforeConfidence) {
  StrideConfig cfg;
  cfg.threshold = 2;
  StridePrefetcher pf(cfg);
  EXPECT_TRUE(observe_seq(pf, {0, 128}).empty());  // one stride sample only
}

TEST(StridePrefetcherTest, DegreeIssuesMultipleStrides) {
  StrideConfig cfg;
  cfg.threshold = 1;
  cfg.degree = 3;
  StridePrefetcher pf(cfg);
  // First access allocates the entry, second establishes the stride, third
  // reaches confidence and prefetches 768/1024/1280.
  const auto out = observe_seq(pf, {0, 256, 512});
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(std::find(out.begin(), out.end(), 768 / 64) != out.end());
  EXPECT_TRUE(std::find(out.begin(), out.end(), 1280 / 64) != out.end());
}

TEST(StridePrefetcherTest, StrideChangeDropsConfidence) {
  StrideConfig cfg;
  cfg.threshold = 2;
  cfg.degree = 1;
  StridePrefetcher pf(cfg);
  auto out = observe_seq(pf, {0, 128, 256, 384});  // confident
  out.clear();
  // Break the pattern; confidence decays, no issue on the new first stride.
  pf.observe(PrefetchObservation{.addr = 4096, .site = 1, .was_miss = true}, out);
  pf.observe(PrefetchObservation{.addr = 4096 + 64, .site = 1, .was_miss = true},
             out);
  EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcherTest, SmallStrideWithinLineIssuesNothing) {
  StrideConfig cfg;
  cfg.threshold = 1;
  cfg.degree = 1;
  StridePrefetcher pf(cfg);
  // Stride 8 stays within the current line: candidates equal the current
  // line and are suppressed.
  const auto out = observe_seq(pf, {0, 8, 16, 24});
  EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcherTest, DifferentSitesTrainIndependently) {
  StrideConfig cfg;
  cfg.threshold = 1;
  cfg.degree = 1;
  StridePrefetcher pf(cfg);
  std::vector<LineAddr> out;
  // Interleave two sites with different strides; both should train.
  for (int i = 0; i < 4; ++i) {
    pf.observe(PrefetchObservation{.addr = static_cast<Addr>(i) * 128,
                                   .site = 1, .was_miss = true}, out);
    pf.observe(PrefetchObservation{.addr = 100000 + static_cast<Addr>(i) * 256,
                                   .site = 2, .was_miss = true}, out);
  }
  EXPECT_FALSE(out.empty());
}

TEST(StridePrefetcherTest, NegativeStrideWorks) {
  StrideConfig cfg;
  cfg.threshold = 1;
  cfg.degree = 1;
  StridePrefetcher pf(cfg);
  const auto out = observe_seq(pf, {10000, 10000 - 128, 10000 - 256});
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), (10000u - 384u) / 64);
}

TEST(StridePrefetcherTest, ResetClearsTraining) {
  StrideConfig cfg;
  cfg.threshold = 1;
  cfg.degree = 1;
  StridePrefetcher pf(cfg);
  observe_seq(pf, {0, 128, 256});
  EXPECT_GT(pf.issued(), 0u);
  pf.reset();
  EXPECT_EQ(pf.issued(), 0u);
  EXPECT_TRUE(observe_seq(pf, {0}).empty());
}

TEST(StreamPrefetcherTest, TwoAdjacentMissesArmAscendingStream) {
  StreamConfig cfg;
  cfg.distance = 4;
  cfg.degree = 2;
  StreamPrefetcher pf(cfg);
  std::vector<LineAddr> out;
  pf.observe(PrefetchObservation{.addr = 4096, .site = 0, .was_miss = true}, out);
  EXPECT_TRUE(out.empty());  // training
  pf.observe(PrefetchObservation{.addr = 4096 + 64, .site = 0, .was_miss = true},
             out);
  // Armed: window pulls ahead of line 65 by up to `degree` lines.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 4096u / 64 + 2);
  EXPECT_EQ(out[1], 4096u / 64 + 3);
}

TEST(StreamPrefetcherTest, DescendingStreams) {
  StreamConfig cfg;
  cfg.degree = 2;
  StreamPrefetcher pf(cfg);
  std::vector<LineAddr> out;
  const Addr top = 8192 - 64;
  pf.observe(PrefetchObservation{.addr = top, .site = 0, .was_miss = true}, out);
  pf.observe(PrefetchObservation{.addr = top - 64, .site = 0, .was_miss = true},
             out);
  ASSERT_FALSE(out.empty());
  EXPECT_LT(out[0], (top - 64) / 64);
}

TEST(StreamPrefetcherTest, NeverCrossesPageBoundary) {
  StreamConfig cfg;
  cfg.distance = 16;
  cfg.degree = 16;
  StreamPrefetcher pf(cfg);
  std::vector<LineAddr> out;
  // Arm a stream near the top of a 4KB page.
  const Addr near_top = 4096 - 3 * 64;
  pf.observe(PrefetchObservation{.addr = near_top, .site = 0, .was_miss = true},
             out);
  pf.observe(
      PrefetchObservation{.addr = near_top + 64, .site = 0, .was_miss = true},
      out);
  for (LineAddr line : out) {
    EXPECT_LT(line, 4096u / 64) << "prefetch crossed the page";
  }
}

TEST(StreamPrefetcherTest, HitsDoNotTrainNewStreams) {
  StreamPrefetcher pf(StreamConfig{});
  std::vector<LineAddr> out;
  pf.observe(PrefetchObservation{.addr = 0, .site = 0, .was_miss = false}, out);
  pf.observe(PrefetchObservation{.addr = 64, .site = 0, .was_miss = false}, out);
  EXPECT_TRUE(out.empty());
}

TEST(StreamPrefetcherTest, WindowRespectsDistance) {
  StreamConfig cfg;
  cfg.distance = 3;
  cfg.degree = 8;  // degree larger than distance: distance must clip
  StreamPrefetcher pf(cfg);
  std::vector<LineAddr> out;
  pf.observe(PrefetchObservation{.addr = 4096, .site = 0, .was_miss = true}, out);
  pf.observe(PrefetchObservation{.addr = 4096 + 64, .site = 0, .was_miss = true},
             out);
  EXPECT_LE(out.size(), 3u);
  for (LineAddr line : out) {
    EXPECT_LE(line - (4096 + 64) / 64, 3u);
  }
}

TEST(StreamPrefetcherTest, ManyStreamsTrackedConcurrently) {
  StreamConfig cfg;
  cfg.streams = 4;
  cfg.degree = 1;
  StreamPrefetcher pf(cfg);
  std::vector<LineAddr> out;
  // Arm four streams in four different pages.
  for (Addr page = 0; page < 4; ++page) {
    const Addr base = (page + 10) * 4096;
    pf.observe(PrefetchObservation{.addr = base, .site = 0, .was_miss = true},
               out);
    pf.observe(
        PrefetchObservation{.addr = base + 64, .site = 0, .was_miss = true},
        out);
  }
  EXPECT_EQ(out.size(), 4u);
}

TEST(PrefetcherChainTest, MergesAndDeduplicates) {
  PrefetcherChain chain = PrefetcherChain::core2_default();
  EXPECT_EQ(chain.engine_count(), 2u);
  std::vector<LineAddr> out;
  // Sequential misses train both the streamer and (same site) the stride
  // engine; candidates overlap and must be deduplicated.
  for (int i = 0; i < 6; ++i) {
    chain.observe(PrefetchObservation{.addr = 4096 + static_cast<Addr>(i) * 64,
                                      .site = 3, .was_miss = true},
                  out);
  }
  std::vector<LineAddr> sorted = out;
  std::sort(sorted.begin(), sorted.end());
  // Within one observe() call there must be no duplicates; across calls the
  // same line may legitimately reappear. Check the merged list is sane.
  EXPECT_FALSE(out.empty());
  EXPECT_NE(chain.name().find("dpl-stride"), std::string::npos);
  EXPECT_NE(chain.name().find("streamer"), std::string::npos);
}

TEST(PrefetcherChainTest, ResetPropagates) {
  PrefetcherChain chain = PrefetcherChain::core2_default();
  std::vector<LineAddr> out;
  for (int i = 0; i < 6; ++i) {
    chain.observe(PrefetchObservation{.addr = static_cast<Addr>(i) * 64,
                                      .site = 1, .was_miss = true},
                  out);
  }
  chain.reset();
  out.clear();
  chain.observe(PrefetchObservation{.addr = 1 << 20, .site = 1, .was_miss = true},
                out);
  EXPECT_TRUE(out.empty());  // back to training from scratch
}

}  // namespace
}  // namespace spf
