// spf::telemetry unit + differential suite.
//
// Three layers:
//   1. Recording primitives — counter/gauge merge determinism, span nesting,
//      lane binding, install/uninstall semantics, runtime-off no-ops.
//   2. Exporters — metrics JSONL record order and the Chrome trace-event
//      shape (the deep structural checks live in scripts/check_trace_json.py,
//      which ctest runs against a real perf_smoke artifact).
//   3. The determinism contract — the pinned 36-cell golden grid must produce
//      byte-identical CSV/JSONL artifacts with a telemetry session installed
//      or absent, at --threads=1 and --threads=8, and still match the
//      checked-in goldens. Telemetry observes; it never steers.
//
// This binary is also re-run as `telemetry_under_tsan` when the tree is
// built with -DSPF_SANITIZE=thread: the 8-thread instrumented sweep is the
// subsystem's race-freedom proof (lane-exclusive writes, merge after join).
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pinned_golden_spec.hpp"
#include "spf/orchestrate/sweep.hpp"
#include "spf/telemetry/telemetry.hpp"

#ifndef SPF_GOLDEN_DIR
#error "SPF_GOLDEN_DIR must point at tests/golden"
#endif

namespace spf::telemetry {
namespace {

Session::Options virtual_clock() {
  Session::Options opts;
  opts.clock_mode = Clock::Mode::kVirtual;
  return opts;
}

/// Installs a session for one test scope and restores the previous one even
/// when an assertion fails mid-test.
class InstallGuard {
 public:
  explicit InstallGuard(Session* session) : previous_(install(session)) {}
  ~InstallGuard() { install(previous_); }
  InstallGuard(const InstallGuard&) = delete;
  InstallGuard& operator=(const InstallGuard&) = delete;

 private:
  Session* previous_;
};

std::string metrics_bytes(const Session& session) {
  std::ostringstream out;
  session.write_metrics_jsonl(out);
  return out.str();
}

TEST(TelemetryCounters, MergeSumsLanesAndIsChunkingIndependent) {
#if !SPF_TELEMETRY
  GTEST_SKIP() << "telemetry compiled out (SPF_TELEMETRY=0)";
#else
  // Same per-lane totals accumulated through different add() chunkings and
  // lane visit orders must merge — and export — to identical bytes.
  Session a(3, virtual_clock());
  a.lane(0)->add(Counter::kReplayRuns, 5);
  a.lane(1)->add(Counter::kReplayRuns, 7);
  a.lane(2)->add(Counter::kReplayRuns, 9);
  a.lane(1)->gauge_max(Gauge::kTraceRecordsMax, 100);
  a.lane(2)->gauge_max(Gauge::kTraceRecordsMax, 40);

  Session b(3, virtual_clock());
  for (int i = 0; i < 9; ++i) b.lane(2)->add(Counter::kReplayRuns, 1);
  b.lane(1)->add(Counter::kReplayRuns, 3);
  b.lane(0)->add(Counter::kReplayRuns, 2);
  b.lane(0)->add(Counter::kReplayRuns, 3);
  b.lane(1)->add(Counter::kReplayRuns, 4);
  b.lane(2)->gauge_max(Gauge::kTraceRecordsMax, 40);
  b.lane(1)->gauge_max(Gauge::kTraceRecordsMax, 100);
  b.lane(1)->gauge_max(Gauge::kTraceRecordsMax, 60);  // below the max: ignored

  EXPECT_EQ(a.snapshot().counter(Counter::kReplayRuns), 21u);
  EXPECT_EQ(a.snapshot().gauge(Gauge::kTraceRecordsMax), 100u);
  EXPECT_EQ(metrics_bytes(a), metrics_bytes(b));
#endif
}

TEST(TelemetryCounters, ThreadedAccumulationIsScheduleIndependent) {
#if !SPF_TELEMETRY
  GTEST_SKIP() << "telemetry compiled out (SPF_TELEMETRY=0)";
#else
  // Each worker thread binds its own lane and hammers the counters; whatever
  // the scheduler does, the merged totals — and therefore the metrics dump —
  // are a pure function of the work.
  auto run_once = [] {
    Session session(5, virtual_clock());
    const InstallGuard guard(&session);
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < 4; ++w) {
      workers.emplace_back([w] {
        const LaneScope lane(w + 1);
        for (int i = 0; i < 1000; ++i) {
          count(Counter::kL2Lookups);
          count(Counter::kReplayRecords, w + 1);
        }
        gauge_max(Gauge::kArenaBytesMax, 100 * (w + 1));
      });
    }
    for (auto& t : workers) t.join();
    return metrics_bytes(session);
  };

  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"name\":\"sim.l2_lookups\",\"total\":4000"),
            std::string::npos);
  // 1000 * (1 + 2 + 3 + 4) records.
  EXPECT_NE(first.find("\"name\":\"replay.records\",\"total\":10000"),
            std::string::npos);
  EXPECT_NE(first.find("\"name\":\"replay.arena_bytes_max\",\"max\":400"),
            std::string::npos);
#endif
}

TEST(TelemetrySpans, NestRecordDepthAndStayMonotone) {
#if !SPF_TELEMETRY
  GTEST_SKIP() << "telemetry compiled out (SPF_TELEMETRY=0)";
#else
  Session session(1, virtual_clock());
  const InstallGuard guard(&session);
  {
    SPF_SPAN("cell", "id", 7);
    {
      SPF_SPAN("replay");
      { SPF_SPAN("helper-gen"); }
    }
    { SPF_SPAN("refine"); }
  }

  const auto& spans = session.lane(0)->spans();
  ASSERT_EQ(spans.size(), 4u);
  // Pushed at begin time: outermost first, siblings in program order.
  EXPECT_STREQ(spans[0].name, "cell");
  EXPECT_STREQ(spans[1].name, "replay");
  EXPECT_STREQ(spans[2].name, "helper-gen");
  EXPECT_STREQ(spans[3].name, "refine");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].depth, 2u);
  EXPECT_EQ(spans[3].depth, 1u);

  // The argument form captures its literal name and value.
  ASSERT_NE(spans[0].arg_name, nullptr);
  EXPECT_STREQ(spans[0].arg_name, "id");
  EXPECT_EQ(spans[0].arg, 7u);
  EXPECT_EQ(spans[1].arg_name, nullptr);

  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_LT(spans[i].begin, spans[i].end) << "span " << i;
    if (i > 0) {
      EXPECT_LT(spans[i - 1].begin, spans[i].begin);
    }
  }
  // Children are strictly enclosed by their parents.
  EXPECT_LT(spans[0].begin, spans[1].begin);
  EXPECT_LT(spans[1].end, spans[0].end);
  EXPECT_LT(spans[1].begin, spans[2].begin);
  EXPECT_LT(spans[2].end, spans[1].end);
  EXPECT_LT(spans[1].end, spans[3].begin);
  EXPECT_LT(spans[3].end, spans[0].end);
#endif
}

TEST(TelemetrySpans, LaneScopeBindsRestoresAndIgnoresOutOfRange) {
#if !SPF_TELEMETRY
  GTEST_SKIP() << "telemetry compiled out (SPF_TELEMETRY=0)";
#else
  Session session(2, virtual_clock());
  const InstallGuard guard(&session);
  ASSERT_TRUE(enabled());  // install bound us to lane 0

  {
    const LaneScope worker(1);
    count(Counter::kSweepCells);
    {
      // Oversubscribed worker id: binds nothing, records nothing, and does
      // not disturb the outer binding once it unwinds.
      const LaneScope overflow(99);
      EXPECT_FALSE(enabled());
      count(Counter::kSweepCells, 50);
      SPF_SPAN("ignored");
    }
    count(Counter::kSweepCells);
  }
  count(Counter::kSweepCellsFailed);  // back on lane 0

  EXPECT_EQ(session.lane(1)->counter(Counter::kSweepCells), 2u);
  EXPECT_EQ(session.lane(0)->counter(Counter::kSweepCells), 0u);
  EXPECT_EQ(session.lane(0)->counter(Counter::kSweepCellsFailed), 1u);
  EXPECT_EQ(session.snapshot().counter(Counter::kSweepCells), 2u);
#endif
}

TEST(TelemetrySession, InstallReturnsPreviousAndRuntimeOffIsInert) {
  // With no session installed, every recording entry point must be a no-op —
  // this is the path production code takes when no artifact was requested.
  EXPECT_FALSE(enabled());
  count(Counter::kReplayRuns);
  gauge_max(Gauge::kArenaBytesMax, 1 << 20);
  { SPF_SPAN("no-session"); }
  { const LaneScope lane(1); count(Counter::kReplayRuns); }
  EXPECT_FALSE(enabled());

#if SPF_TELEMETRY
  Session a(1, virtual_clock());
  Session b(1, virtual_clock());
  Session* outermost = install(&a);
  EXPECT_EQ(install(&b), &a);
  EXPECT_TRUE(enabled());
  EXPECT_EQ(current(), &b);
  EXPECT_EQ(install(outermost), &b);
  EXPECT_EQ(a.snapshot().span_events, 0u);
#endif
}

TEST(TelemetryExport, MetricsJsonlKeepsEnumAndNameOrder) {
#if !SPF_TELEMETRY
  GTEST_SKIP() << "telemetry compiled out (SPF_TELEMETRY=0)";
#else
  Session session(2, virtual_clock());
  const InstallGuard guard(&session);
  { SPF_SPAN("replay"); }
  { SPF_SPAN("aggregate"); }
  count(Counter::kBaselineRuns);

  const std::string dump = metrics_bytes(session);
  const std::size_t meta = dump.find("\"record\":\"meta\"");
  const std::size_t schema = dump.find("\"schema\":\"spf-telemetry-v1\"");
  const std::size_t clock = dump.find("\"clock\":\"virtual\"");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(schema, std::string::npos);
  ASSERT_NE(clock, std::string::npos);
  EXPECT_EQ(meta, dump.find("\"record\":"));  // meta line comes first

  // Counters dump in enum declaration order, spans sorted by name.
  const std::size_t cells = dump.find("\"name\":\"sweep.cells\"");
  const std::size_t lookups = dump.find("\"name\":\"sim.l2_lookups\"");
  const std::size_t agg = dump.find("\"record\":\"span\",\"name\":\"aggregate\"");
  const std::size_t rep = dump.find("\"record\":\"span\",\"name\":\"replay\"");
  ASSERT_NE(cells, std::string::npos);
  ASSERT_NE(lookups, std::string::npos);
  ASSERT_NE(agg, std::string::npos);
  ASSERT_NE(rep, std::string::npos);
  EXPECT_LT(cells, lookups);
  EXPECT_LT(agg, rep);
  EXPECT_NE(dump.find("\"record\":\"lane\",\"id\":0,\"label\":\"main\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"label\":\"worker-1\""), std::string::npos);
#endif
}

TEST(TelemetryExport, ChromeTraceEmitsLaneMetadataAndSlices) {
#if !SPF_TELEMETRY
  GTEST_SKIP() << "telemetry compiled out (SPF_TELEMETRY=0)";
#else
  Session session(2, virtual_clock());
  const InstallGuard guard(&session);
  { SPF_SPAN("cell", "id", 3); }
  {
    const LaneScope worker(1);
    SPF_SPAN("replay");
  }

  std::ostringstream out;
  session.write_chrome_trace(out, "unit_test");
  const std::string trace = out.str();
  EXPECT_EQ(trace.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(trace.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("{\"name\":\"unit_test\"}"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("{\"name\":\"worker-1\"}"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"cell\""), std::string::npos);
  EXPECT_NE(trace.find("{\"id\":3}"), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Slices land on the lane that recorded them.
  const std::size_t replay = trace.find("\"name\":\"replay\"");
  ASSERT_NE(replay, std::string::npos);
  const std::size_t line_start = trace.rfind('\n', replay);
  EXPECT_NE(trace.find("\"tid\":1", line_start), std::string::npos);
#endif
}

// ---- determinism contract against the golden grid ----------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TelemetryDifferential, GoldenSweepIsByteIdenticalWithTelemetryOnOrOff) {
  const orchestrate::SweepSpec spec = orchestrate::pinned_golden_spec();

  // Reference run: no session installed anywhere.
  ASSERT_FALSE(enabled());
  orchestrate::SweepOptions parallel;
  parallel.threads = 8;
  const orchestrate::SweepResult off = orchestrate::run_sweep(spec, parallel);
  ASSERT_EQ(off.cells.size(), 36u);
  ASSERT_EQ(off.failed_count(), 0u);

  // Instrumented runs: one lane per worker plus the main lane, at both ends
  // of the thread-count range.
  Session session(9, virtual_clock());
  std::string on_csv;
  std::string on_jsonl;
  std::string serial_csv;
  {
    const InstallGuard guard(&session);
    const orchestrate::SweepResult on = orchestrate::run_sweep(spec, parallel);
    ASSERT_EQ(on.failed_count(), 0u);
    on_csv = on.to_csv();
    on_jsonl = on.to_jsonl();
    orchestrate::SweepOptions serial;
    serial.threads = 1;
    serial_csv = orchestrate::run_sweep(spec, serial).to_csv();
  }

  // Telemetry observes — it must never steer the artifact by a byte.
  EXPECT_EQ(off.to_csv(), on_csv);
  EXPECT_EQ(off.to_jsonl(), on_jsonl);
  EXPECT_EQ(off.to_csv(), serial_csv);
  EXPECT_EQ(on_csv, read_file(std::string(SPF_GOLDEN_DIR) + "/pinned_sweep.csv"))
      << "instrumented sweep drifted from the golden artifact";
  EXPECT_EQ(on_jsonl,
            read_file(std::string(SPF_GOLDEN_DIR) + "/pinned_sweep.jsonl"))
      << "instrumented sweep drifted from the golden artifact";

#if SPF_TELEMETRY
  // And the session actually saw the work: both sweeps' cells, one memoized
  // emission per workload per sweep, replay + simulator traffic, timelines.
  const MetricsSnapshot snap = session.snapshot();
  EXPECT_EQ(snap.counter(Counter::kSweepCells), 72u);  // 36 cells x 2 sweeps
  EXPECT_EQ(snap.counter(Counter::kSweepCellsFailed), 0u);
  EXPECT_EQ(snap.counter(Counter::kTraceEmissions), 6u);  // 3 workloads x 2
  EXPECT_EQ(snap.counter(Counter::kTraceMemoMisses), 6u);
  EXPECT_GT(snap.counter(Counter::kTraceMemoHits), 0u);
  EXPECT_GT(snap.counter(Counter::kBaselineRuns), 0u);
  EXPECT_GE(snap.counter(Counter::kReplayRuns), 72u);
  EXPECT_GT(snap.counter(Counter::kL2Lookups), 0u);
  EXPECT_EQ(snap.counter(Counter::kL2TotallyHits) +
                snap.counter(Counter::kL2PartiallyHits) +
                snap.counter(Counter::kL2TotallyMisses),
            snap.counter(Counter::kL2Lookups));
  EXPECT_GT(snap.span_events, 0u);
  EXPECT_GT(snap.gauge(Gauge::kTraceRecordsMax), 0u);

  // The parallel sweep really did record from worker lanes, and every span
  // closed before export.
  std::uint64_t worker_spans = 0;
  for (std::size_t id = 1; id < session.lane_count(); ++id) {
    worker_spans += session.lane(id)->spans().size();
  }
  EXPECT_GT(worker_spans, 0u);
  for (std::size_t id = 0; id < session.lane_count(); ++id) {
    for (const SpanEvent& ev : session.lane(id)->spans()) {
      EXPECT_GT(ev.end, ev.begin) << "unclosed span " << ev.name;
    }
  }
#endif
}

}  // namespace
}  // namespace spf::telemetry
