// Unit tests for the CMP simulator: access classification (totally hit /
// partially hit / totally miss), timing, MSHR pressure, round-gated helper
// synchronization, and determinism.
#include <gtest/gtest.h>

#include "spf/common/rng.hpp"
#include "spf/sim/simulator.hpp"
#include "spf/core/helper_gen.hpp"

namespace spf {
namespace {

// Small, fully deterministic config: no hardware prefetch, LRU, fixed
// latencies. L1 hit = 3, L2 hit = +14, memory = 300 with 8-cycle channel
// slots.
SimConfig base_config() {
  SimConfig c;
  c.l1 = CacheGeometry(1024, 2, 64);  // 8 sets x 2 ways: tiny L1
  c.l2 = CacheGeometry(64 * 1024, 16, 64);
  c.l1_latency = 3;
  c.l2_latency = 14;
  c.memory.service_latency = 300;
  c.memory.issue_interval = 8;
  c.l2_mshrs = 8;
  c.hw_prefetch = false;
  return c;
}

Addr line_addr(std::uint64_t n) { return n * 64; }

TEST(SimulatorTest, ColdMissPaysFullLatency) {
  TraceBuffer t;
  t.emit(line_addr(1), 0, AccessKind::kRead, 0);
  CmpSimulator sim(base_config());
  const SimResult r = sim.run({CoreStream{.trace = &t}});
  const ThreadMetrics& m = r.main();
  EXPECT_EQ(m.demand_accesses, 1u);
  EXPECT_EQ(m.totally_misses, 1u);
  EXPECT_EQ(m.totally_hits, 0u);
  // L1 lookup (3) + memory (300) + L2 return (14).
  EXPECT_EQ(m.finish_time, 3u + 300u + 14u);
}

TEST(SimulatorTest, RepeatAccessHitsL1) {
  TraceBuffer t;
  t.emit(line_addr(1), 0, AccessKind::kRead, 0);
  t.emit(line_addr(1), 0, AccessKind::kRead, 0);
  CmpSimulator sim(base_config());
  const SimResult r = sim.run({CoreStream{.trace = &t}});
  EXPECT_EQ(r.main().l1_hits, 1u);
  EXPECT_EQ(r.main().l2_lookups, 1u);
  EXPECT_EQ(r.main().finish_time, 317u + 3u);
}

TEST(SimulatorTest, L1ConflictMissCanStillTotallyHitL2) {
  // Two lines mapping to the same tiny-L1 set evict each other in L1 but
  // both stay resident in the larger L2.
  SimConfig cfg = base_config();
  cfg.l1 = CacheGeometry(128, 1, 64);  // 2 sets x 1 way
  TraceBuffer t;
  for (int rep = 0; rep < 3; ++rep) {
    t.emit(line_addr(0), 0, AccessKind::kRead, 0);  // L1 set 0
    t.emit(line_addr(2), 0, AccessKind::kRead, 0);  // also L1 set 0
  }
  CmpSimulator sim(cfg);
  const SimResult r = sim.run({CoreStream{.trace = &t}});
  EXPECT_EQ(r.main().totally_misses, 2u);  // first touch each
  EXPECT_EQ(r.main().totally_hits, 4u);    // L2 keeps both
  EXPECT_EQ(r.main().l1_hits, 0u);
}

TEST(SimulatorTest, ComputeGapAdvancesClock) {
  TraceBuffer t;
  t.emit(line_addr(1), 0, AccessKind::kRead, 0, 0, 100);
  CmpSimulator sim(base_config());
  const SimResult r = sim.run({CoreStream{.trace = &t}});
  EXPECT_EQ(r.main().finish_time, 100u + 317u);
}

TEST(SimulatorTest, HelperFillMakesMainTotallyHit) {
  // Helper (core 1) reads line B early; main reaches B long after the fill
  // completed -> totally hit, and the fill was helper-origin.
  TraceBuffer main_t;
  main_t.emit(line_addr(1), 0, AccessKind::kRead, 0);            // miss: 317
  main_t.emit(line_addr(2), 0, AccessKind::kRead, 0, 0, 600);    // B, late
  TraceBuffer helper_t;
  helper_t.emit(line_addr(2), 0, AccessKind::kRead, 0);  // B at t~0

  CmpSimulator sim(base_config());
  const SimResult r = sim.run({
      CoreStream{.trace = &main_t},
      CoreStream{.trace = &helper_t, .origin = FillOrigin::kHelper},
  });
  EXPECT_EQ(r.main().totally_misses, 1u);
  EXPECT_EQ(r.main().totally_hits, 1u);
  EXPECT_EQ(r.main().partially_hits, 0u);
}

TEST(SimulatorTest, InFlightHelperFillIsPartialHit) {
  // Helper issues B late enough that main arrives while B is still in
  // flight: the paper's partially hit.
  TraceBuffer main_t;
  main_t.emit(line_addr(1), 0, AccessKind::kRead, 0);          // miss: done 317
  main_t.emit(line_addr(2), 0, AccessKind::kRead, 0, 0, 10);   // B at ~330
  TraceBuffer helper_t;
  helper_t.emit(line_addr(2), 0, AccessKind::kRead, 0, 0, 200);  // B issued ~203

  CmpSimulator sim(base_config());
  const SimResult r = sim.run({
      CoreStream{.trace = &main_t},
      CoreStream{.trace = &helper_t, .origin = FillOrigin::kHelper},
  });
  EXPECT_EQ(r.main().partially_hits, 1u);
  EXPECT_EQ(r.main().totally_misses, 1u);
  // Main waited only the residual: finish well before two full round trips.
  EXPECT_LT(r.main().finish_time, 317u + 10u + 317u);
  EXPECT_EQ(r.mshr.demand_merges_into_prefetch, 1u);
}

TEST(SimulatorTest, SoftwarePrefetchDoesNotBlockIssuer) {
  TraceBuffer t;
  for (int i = 0; i < 5; ++i) {
    t.emit(line_addr(10 + i), 0, AccessKind::kPrefetch, 0);
  }
  CmpSimulator sim(base_config());
  const SimResult r = sim.run({CoreStream{.trace = &t}});
  EXPECT_EQ(r.main().prefetches_issued, 5u);
  EXPECT_EQ(r.main().demand_accesses, 0u);
  // One cycle per prefetch: the core never stalls on fills.
  EXPECT_LE(r.main().finish_time, 5u + 2u);
}

TEST(SimulatorTest, SoftwarePrefetchElidedWhenCachedOrInFlight) {
  TraceBuffer t;
  t.emit(line_addr(3), 0, AccessKind::kRead, 0);      // brings the line in
  t.emit(line_addr(3), 0, AccessKind::kPrefetch, 0);  // already cached
  t.emit(line_addr(4), 0, AccessKind::kPrefetch, 0);  // issues
  t.emit(line_addr(4), 0, AccessKind::kPrefetch, 0);  // in flight: elided
  CmpSimulator sim(base_config());
  const SimResult r = sim.run({CoreStream{.trace = &t}});
  EXPECT_EQ(r.main().prefetches_issued, 1u);
  EXPECT_EQ(r.main().prefetches_elided, 2u);
}

TEST(SimulatorTest, PrefetchDroppedWhenMshrsFull) {
  SimConfig cfg = base_config();
  cfg.l2_mshrs = 2;
  TraceBuffer t;
  for (int i = 0; i < 5; ++i) {
    t.emit(line_addr(20 + i), 0, AccessKind::kPrefetch, 0);
  }
  CmpSimulator sim(cfg);
  const SimResult r = sim.run({CoreStream{.trace = &t}});
  EXPECT_EQ(r.main().prefetches_issued, 2u);
  EXPECT_EQ(r.main().prefetches_dropped, 3u);
}

TEST(SimulatorTest, DemandStallsWhenMshrsFullThenProceeds) {
  SimConfig cfg = base_config();
  cfg.l2_mshrs = 1;
  TraceBuffer main_t;
  main_t.emit(line_addr(1), 0, AccessKind::kRead, 0, 0, 2);
  TraceBuffer helper_t;
  helper_t.emit(line_addr(2), 0, AccessKind::kPrefetch, 0);  // occupies the MSHR

  CmpSimulator sim(cfg);
  const SimResult r = sim.run({
      CoreStream{.trace = &main_t},
      CoreStream{.trace = &helper_t, .origin = FillOrigin::kHelper},
  });
  // Helper prefetch fills at 1+300=301; main could not issue before that.
  EXPECT_EQ(r.main().totally_misses, 1u);
  EXPECT_GE(r.main().finish_time, 301u + 300u);
}

TEST(SimulatorTest, RoundSyncGatesHelper) {
  // Main spends 1000 cycles in round 0; helper's round-1 record must not
  // issue before main enters round 1.
  TraceBuffer main_t;
  main_t.emit(line_addr(1), 0, AccessKind::kRead, 0, 0, 1000);  // round 0
  main_t.emit(line_addr(2), 1, AccessKind::kRead, 0, 0, 10);    // round 1
  TraceBuffer helper_t;
  helper_t.emit(line_addr(50), 1, AccessKind::kRead, 0);  // round 1 only

  CmpSimulator sim(base_config());
  const SimResult r = sim.run({
      CoreStream{.trace = &main_t},
      CoreStream{.trace = &helper_t,
                 .origin = FillOrigin::kHelper,
                 .sync = RoundSync{.leader = 0, .round_iters = 1}},
  });
  // Main entered round 1 at 1000+317 = 1317; the helper resumed there and
  // its single miss finishes >= 1317 + 317.
  EXPECT_GE(r.per_core[1].finish_time, 1317u + 317u);
}

TEST(SimulatorTest, UngatedHelperRunsImmediately) {
  TraceBuffer main_t;
  main_t.emit(line_addr(1), 0, AccessKind::kRead, 0, 0, 1000);
  main_t.emit(line_addr(2), 1, AccessKind::kRead, 0, 0, 10);
  TraceBuffer helper_t;
  helper_t.emit(line_addr(50), 1, AccessKind::kRead, 0);

  CmpSimulator sim(base_config());
  const SimResult r = sim.run({
      CoreStream{.trace = &main_t},
      CoreStream{.trace = &helper_t, .origin = FillOrigin::kHelper},
  });
  EXPECT_LT(r.per_core[1].finish_time, 400u);
}

TEST(SimulatorTest, HelperFillsCarryHelperOrigin) {
  // Helper-origin fills that get displaced unused must surface in the L2
  // provenance counters.
  SimConfig cfg = base_config();
  cfg.l2 = CacheGeometry(1024, 2, 64);  // 8 sets x 2 ways: tiny, evicts fast
  TraceBuffer helper_t;
  // 3 lines in the same L2 set (stride = num_sets * line): set 0.
  for (int i = 0; i < 3; ++i) {
    helper_t.emit(line_addr(static_cast<std::uint64_t>(i) * 8), 0,
                  AccessKind::kRead, 0);
  }
  TraceBuffer main_t;  // main sits idle past helper activity
  main_t.emit(line_addr(1), 0, AccessKind::kRead, 0, 0, 5000);

  CmpSimulator sim(cfg);
  const SimResult r = sim.run({
      CoreStream{.trace = &main_t},
      CoreStream{.trace = &helper_t, .origin = FillOrigin::kHelper},
  });
  EXPECT_EQ(r.l2.evicted_unused_helper, 1u);
  EXPECT_EQ(r.pollution.case2_helper_displaced, 1u);
}

TEST(SimulatorTest, HardwarePrefetchHelpsSequentialStream) {
  SimConfig off = base_config();
  SimConfig on = base_config();
  on.hw_prefetch = true;
  TraceBuffer t;
  for (std::uint64_t i = 0; i < 200; ++i) {
    t.emit(line_addr(i), static_cast<std::uint32_t>(i), AccessKind::kRead, 1);
  }
  CmpSimulator sim_off(off);
  CmpSimulator sim_on(on);
  const SimResult r_off = sim_off.run({CoreStream{.trace = &t}});
  const SimResult r_on = sim_on.run({CoreStream{.trace = &t}});
  EXPECT_LT(r_on.main().totally_misses, r_off.main().totally_misses);
  EXPECT_GT(r_on.hw_prefetches_issued, 0u);
  EXPECT_LT(r_on.main().finish_time, r_off.main().finish_time);
}

TEST(SimulatorTest, DirtyEvictionsCountAsWritebacks) {
  SimConfig cfg = base_config();
  cfg.l2 = CacheGeometry(1024, 2, 64);  // 8 sets x 2 ways: evicts quickly
  TraceBuffer t;
  // Write three lines in the same L2 set, then stream more lines through it
  // so the dirty ones get evicted.
  for (std::uint64_t i = 0; i < 6; ++i) {
    t.emit(line_addr(i * 8), 0, AccessKind::kWrite, 0);
  }
  CmpSimulator sim(cfg);
  const SimResult r = sim.run({CoreStream{.trace = &t}});
  EXPECT_GE(r.memory.writebacks, 4u);  // 6 dirty fills into a 2-way set
  EXPECT_EQ(r.memory.requests, 6u);
}

TEST(SimulatorTest, CleanEvictionsAreNotWrittenBack) {
  SimConfig cfg = base_config();
  cfg.l2 = CacheGeometry(1024, 2, 64);
  TraceBuffer t;
  for (std::uint64_t i = 0; i < 6; ++i) {
    t.emit(line_addr(i * 8), 0, AccessKind::kRead, 0);
  }
  CmpSimulator sim(cfg);
  const SimResult r = sim.run({CoreStream{.trace = &t}});
  EXPECT_EQ(r.memory.writebacks, 0u);
}


TEST(SimulatorTest, FourCoresShareTheL2Deterministically) {
  // Four independent streams over overlapping footprints: per-core
  // accounting stays isolated, sharing effects are visible, and the run is
  // reproducible.
  std::vector<TraceBuffer> traces(4);
  Xoshiro256 rng(21);
  for (std::uint32_t c = 0; c < 4; ++c) {
    for (std::uint32_t i = 0; i < 1500; ++i) {
      traces[c].emit(line_addr(rng.below(1024)), i / 4, AccessKind::kRead,
                     static_cast<std::uint8_t>(c), 0, 2);
    }
  }
  SimConfig cfg = base_config();
  cfg.hw_prefetch = true;
  auto run_once = [&] {
    CmpSimulator sim(cfg);
    return sim.run({CoreStream{.trace = &traces[0]},
                    CoreStream{.trace = &traces[1]},
                    CoreStream{.trace = &traces[2]},
                    CoreStream{.trace = &traces[3]}});
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  ASSERT_EQ(a.per_core.size(), 4u);
  std::uint64_t total_mem_acc = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(a.per_core[c].demand_accesses, 1500u);
    EXPECT_EQ(a.per_core[c].totally_hits, b.per_core[c].totally_hits);
    EXPECT_EQ(a.per_core[c].finish_time, b.per_core[c].finish_time);
    total_mem_acc += a.per_core[c].memory_accesses();
  }
  // Shared structures saw the union of the traffic.
  EXPECT_EQ(a.memory.requests,
            total_mem_acc - a.mshr.merges + a.hw_prefetches_issued);
}

TEST(SimulatorTest, TwoHelpersWithDifferentLeadersCoexist) {
  // Two main threads, each with its own round-gated helper (4 cores total):
  // the gating must be per-pair.
  TraceBuffer main_a;
  TraceBuffer main_b;
  for (std::uint32_t i = 0; i < 400; ++i) {
    main_a.emit(line_addr(2000 + i), i, AccessKind::kRead, 0, kFlagSpine, 3);
    main_b.emit(line_addr(4000 + i), i, AccessKind::kRead, 0, kFlagSpine, 3);
  }
  const TraceBuffer helper_a =
      make_helper_trace(main_a, SpParams{.a_ski = 4, .a_pre = 4});
  const TraceBuffer helper_b =
      make_helper_trace(main_b, SpParams{.a_ski = 4, .a_pre = 4});
  CmpSimulator sim(base_config());
  const SimResult r = sim.run({
      CoreStream{.trace = &main_a},
      CoreStream{.trace = &main_b},
      CoreStream{.trace = &helper_a,
                 .origin = FillOrigin::kHelper,
                 .sync = RoundSync{.leader = 0, .round_iters = 8}},
      CoreStream{.trace = &helper_b,
                 .origin = FillOrigin::kHelper,
                 .sync = RoundSync{.leader = 1, .round_iters = 8}},
  });
  EXPECT_EQ(r.per_core[0].demand_accesses, 400u);
  EXPECT_EQ(r.per_core[1].demand_accesses, 400u);
  // Both helpers ran to completion under their own leaders.
  EXPECT_GT(r.per_core[2].demand_accesses, 0u);
  EXPECT_GT(r.per_core[3].demand_accesses, 0u);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  TraceBuffer main_t;
  TraceBuffer helper_t;
  Xoshiro256 rng(5);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    main_t.emit(line_addr(rng.below(512)), i / 4, AccessKind::kRead, 1, 0, 2);
    if (i % 2 == 0) {
      helper_t.emit(line_addr(rng.below(512)), i / 4, AccessKind::kRead, 1);
    }
  }
  SimConfig cfg = base_config();
  cfg.hw_prefetch = true;
  auto run_once = [&] {
    CmpSimulator sim(cfg);
    return sim.run({
        CoreStream{.trace = &main_t},
        CoreStream{.trace = &helper_t,
                   .origin = FillOrigin::kHelper,
                   .sync = RoundSync{.leader = 0, .round_iters = 4}},
    });
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_EQ(a.main().totally_hits, b.main().totally_hits);
  EXPECT_EQ(a.main().partially_hits, b.main().partially_hits);
  EXPECT_EQ(a.main().totally_misses, b.main().totally_misses);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.pollution.total_pollution(), b.pollution.total_pollution());
  EXPECT_EQ(a.memory.requests, b.memory.requests);
}

TEST(SimulatorTest, ClassificationPartitionsL2Lookups) {
  TraceBuffer main_t;
  Xoshiro256 rng(9);
  for (std::uint32_t i = 0; i < 5000; ++i) {
    main_t.emit(line_addr(rng.below(2048)), i / 8, AccessKind::kRead, 1, 0, 1);
  }
  SimConfig cfg = base_config();
  cfg.hw_prefetch = true;
  CmpSimulator sim(cfg);
  const SimResult r = sim.run({CoreStream{.trace = &main_t}});
  const ThreadMetrics& m = r.main();
  EXPECT_EQ(m.totally_hits + m.partially_hits + m.totally_misses, m.l2_lookups);
  EXPECT_EQ(m.l1_hits + m.l2_lookups, m.demand_accesses);
}

TEST(SimulatorDeathTest, SyncLeaderMustBeAnotherCore) {
  TraceBuffer t;
  t.emit(0, 0, AccessKind::kRead, 0);
  CmpSimulator sim(base_config());
  std::vector<CoreStream> streams{
      CoreStream{.trace = &t,
                 .origin = FillOrigin::kDemand,
                 .sync = RoundSync{.leader = 0, .round_iters = 1}}};
  EXPECT_DEATH(sim.run(streams), "leader");
}

}  // namespace
}  // namespace spf
