// Differential harness for the phase-incremental Set-Affinity analyzer: the
// streaming implementation (IncrementalAffinityAnalyzer fed one record at a
// time through a TraceCursor, two passes at most, zero trace-record
// allocations) must produce bit-identical results to a naive materializing
// reference built inline here — split the record vector into per-invocation
// segments, brute-force the paper's Figure-3 per-set scan on each, merge,
// then run the windowing/EMA/hysteresis phase rule over the collected
// (iteration, SA) sample list as plain post-hoc code.
//
// The refinement entry point (refine_phase_bounds) is also pinned both ways:
// the lazy cursor composition over the merged main+helper view against the
// materializing reference path, plus the zero-allocation contract via
// spf::trace_hooks. A dedicated ctest entry replays this binary with
// SPF_FORCE_SCALAR_TAGS=1, and a TSan build pins it race-free
// (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "spf/core/distance_bound.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/profile/incremental_affinity.hpp"
#include "spf/trace/trace_cursor.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/synthetic.hpp"

namespace spf {
namespace {

CacheGeometry test_l2() { return CacheGeometry(16 * 1024, 4, 64); }

// ---- naive materializing reference ----------------------------------------

struct NaiveSample {
  std::uint32_t cumulative_iter = 0;
  std::uint32_t sa = 0;
};

/// Brute-force Figure 3 over one record range with re-based iterations:
/// ordered std::map/std::set state (nothing shared with the analyzer's
/// unordered containers), SA recorded the first time a set's distinct-line
/// count reaches associativity.
SetAffinityResult naive_segment(const std::vector<TraceRecord>& recs,
                                std::size_t lo, std::size_t hi,
                                std::uint32_t base, const CacheGeometry& l2,
                                std::vector<NaiveSample>* samples_out) {
  SetAffinityResult out;
  std::map<std::uint64_t, std::set<std::uint64_t>> blocks;
  std::set<std::uint64_t> saturated;
  for (std::size_t i = lo; i < hi; ++i) {
    const TraceRecord& r = recs[i];
    const std::uint32_t iter = r.outer_iter - base;
    ++out.accesses;
    out.outer_iterations = std::max(out.outer_iterations, iter + 1);
    const std::uint64_t line = l2.line_of(r.addr);
    const std::uint64_t set = l2.set_of_line(line);
    if (saturated.count(set) != 0) {
      blocks[set];  // still a touched set
      continue;
    }
    if (!blocks[set].insert(line).second) continue;
    if (blocks[set].size() >= l2.ways()) {
      const std::uint32_t sa = iter + 1;
      out.samples.push_back(sa);
      out.per_set.emplace(set, sa);
      saturated.insert(set);
      if (samples_out != nullptr) {
        samples_out->push_back({r.outer_iter, sa});
      }
    }
  }
  out.touched_sets = blocks.size();
  return out;
}

/// The phase rule as plain post-hoc code over the sample list: group samples
/// into windows of `window_iters` cumulative iterations, estimate = window
/// minimum, EMA with re-seed on a boundary, |estimate - ema| > hysteresis*ema
/// opens a phase at the window's start.
std::vector<AffinityPhase> naive_phases(const std::vector<NaiveSample>& samples,
                                        std::uint32_t iter_end,
                                        const PhaseAffinityConfig& cfg) {
  struct Window {
    std::uint64_t idx = 0;
    std::uint32_t min_sa = 0;
    std::uint64_t count = 0;
  };
  std::vector<Window> windows;
  for (const NaiveSample& s : samples) {
    const std::uint64_t w = s.cumulative_iter / cfg.window_iters;
    if (!windows.empty() && w <= windows.back().idx) {
      windows.back().min_sa = std::min(windows.back().min_sa, s.sa);
      ++windows.back().count;
    } else {
      windows.push_back({w, s.sa, 1});
    }
  }

  std::vector<AffinityPhase> phases;
  AffinityPhase current;
  double ema = 0.0;
  bool ema_set = false;
  for (const Window& w : windows) {
    const double estimate = w.min_sa;
    const bool boundary =
        ema_set && cfg.detect_phases &&
        std::abs(estimate - ema) > cfg.hysteresis * ema;
    if (boundary) {
      current.end_iter =
          static_cast<std::uint32_t>(w.idx * cfg.window_iters);
      if (current.samples == 0) current.min_sa = 0;
      phases.push_back(current);
      current = AffinityPhase{};
      current.index = phases.back().index + 1;
      current.begin_iter = phases.back().end_iter;
      current.min_sa = w.min_sa;
      current.samples = w.count;
      ema = estimate;
      continue;
    }
    current.min_sa = current.samples == 0 ? w.min_sa
                                          : std::min(current.min_sa, w.min_sa);
    current.samples += w.count;
    if (!ema_set) {
      ema = estimate;
      ema_set = true;
    } else {
      ema += cfg.ema_alpha * (estimate - ema);
    }
  }
  current.end_iter = std::max(iter_end, current.begin_iter);
  if (current.samples == 0) current.min_sa = 0;
  phases.push_back(current);
  return phases;
}

/// The full naive pipeline: materialize, split on invocation starts,
/// brute-force each segment, merge (with the cumulative fallback when no
/// invocation saturated), then window the sample list.
PhasedSaResult naive_reference(const TraceBuffer& trace,
                               const std::vector<std::uint32_t>& starts,
                               const CacheGeometry& l2,
                               const PhaseAffinityConfig& cfg) {
  const std::vector<TraceRecord> recs(trace.begin(), trace.end());
  std::uint32_t iter_end = 0;
  for (const TraceRecord& r : recs) {
    iter_end = std::max(iter_end, r.outer_iter + 1);
  }

  // Segment boundaries by record index, exactly the analyzer's while-loop:
  // a new invocation opens when a record reaches the next start (empty
  // invocations between consecutive starts produce empty segments).
  std::vector<NaiveSample> samples;
  PhasedSaResult out;
  std::vector<SetAffinityResult> per_invocation;
  std::size_t lo = 0;
  std::size_t inv = 0;
  for (std::size_t i = 0; i <= recs.size(); ++i) {
    const bool at_end = i == recs.size();
    while (inv + 1 < starts.size() &&
           (at_end ? false : recs[i].outer_iter >= starts[inv + 1])) {
      per_invocation.push_back(
          naive_segment(recs, lo, i, starts[inv], l2, &samples));
      lo = i;
      ++inv;
    }
    if (at_end) {
      per_invocation.push_back(
          naive_segment(recs, lo, i, starts[inv], l2, &samples));
    }
  }
  for (const SetAffinityResult& r : per_invocation) {
    out.whole.merged.samples.insert(out.whole.merged.samples.end(),
                                    r.samples.begin(), r.samples.end());
    out.whole.merged.accesses += r.accesses;
    out.whole.merged.touched_sets =
        std::max(out.whole.merged.touched_sets, r.touched_sets);
    out.whole.merged.outer_iterations += r.outer_iterations;
    for (const auto& [set, sa] : r.per_set) {
      auto [it, inserted] = out.whole.merged.per_set.emplace(set, sa);
      if (!inserted) it->second = std::min(it->second, sa);
    }
  }
  out.whole.invocations_analyzed =
      static_cast<std::uint32_t>(per_invocation.size());

  if (out.whole.merged.samples.empty()) {
    samples.clear();
    out.whole.merged =
        naive_segment(recs, 0, recs.size(), 0, l2, &samples);
    out.whole.cumulative_fallback = true;
  }
  out.phases = naive_phases(samples, iter_end, cfg);
  return out;
}

void expect_identical(const PhasedSaResult& got, const PhasedSaResult& want) {
  EXPECT_EQ(got.whole.merged.per_set, want.whole.merged.per_set);
  EXPECT_EQ(got.whole.merged.samples, want.whole.merged.samples);
  EXPECT_EQ(got.whole.merged.touched_sets, want.whole.merged.touched_sets);
  EXPECT_EQ(got.whole.merged.accesses, want.whole.merged.accesses);
  EXPECT_EQ(got.whole.merged.outer_iterations,
            want.whole.merged.outer_iterations);
  EXPECT_EQ(got.whole.cumulative_fallback, want.whole.cumulative_fallback);
  EXPECT_EQ(got.whole.invocations_analyzed, want.whole.invocations_analyzed);
  ASSERT_EQ(got.phases.size(), want.phases.size());
  for (std::size_t i = 0; i < got.phases.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(got.phases[i].index, want.phases[i].index);
    EXPECT_EQ(got.phases[i].begin_iter, want.phases[i].begin_iter);
    EXPECT_EQ(got.phases[i].end_iter, want.phases[i].end_iter);
    EXPECT_EQ(got.phases[i].min_sa, want.phases[i].min_sa);
    EXPECT_EQ(got.phases[i].samples, want.phases[i].samples);
  }
}

// ---- fixtures -------------------------------------------------------------

TraceBuffer shifting_trace() {
  SyntheticConfig a;
  a.iterations = 1500;
  a.random_reads = 2;
  a.random_footprint_lines = 1 << 8;
  SyntheticConfig b;
  b.iterations = 1500;
  b.random_reads = 12;
  b.random_footprint_lines = 1 << 13;
  // Splice two synthetic regimes into one stream: the second half's records
  // are shifted past the first half's iteration span and into a disjoint
  // address region — an abrupt working-set shift mid-run.
  TraceBuffer trace = SyntheticWorkload(a).emit_trace();
  const TraceBuffer tail = SyntheticWorkload(b).emit_trace();
  for (const TraceRecord& r : tail) {
    TraceRecord shifted = r;
    shifted.outer_iter += a.iterations;
    shifted.addr += Addr{1} << 40;
    trace.mutable_records().push_back(shifted);
  }
  return trace;
}

// ---- differentials --------------------------------------------------------

TEST(PhaseAffinityDifferential, StreamingMatchesNaiveReference) {
  const TraceBuffer trace = shifting_trace();
  for (const std::uint32_t window : {16u, 64u, 500u}) {
    SCOPED_TRACE(window);
    PhaseAffinityConfig cfg;
    cfg.window_iters = window;
    expect_identical(analyze_workload_sa_phased(trace, {0}, test_l2(), cfg),
                     naive_reference(trace, {0}, test_l2(), cfg));
  }
}

TEST(PhaseAffinityDifferential, MultiInvocationMatchesNaiveReference) {
  Em3dConfig cfg;
  cfg.nodes = 2000;
  cfg.arity = 8;
  cfg.passes = 3;
  const Em3dWorkload workload(cfg);
  const TraceBuffer trace = workload.emit_trace();
  const std::vector<std::uint32_t> starts = workload.invocation_starts();
  for (const bool detect : {true, false}) {
    SCOPED_TRACE(detect);
    PhaseAffinityConfig pcfg;
    pcfg.window_iters = 32;
    pcfg.detect_phases = detect;
    expect_identical(
        analyze_workload_sa_phased(trace, starts, test_l2(), pcfg),
        naive_reference(trace, starts, test_l2(), pcfg));
  }
}

TEST(PhaseAffinityDifferential, CumulativeFallbackMatchesNaiveReference) {
  // Many short invocations, none long enough to saturate a 4-way set on its
  // own: the analyzer must re-stream cumulatively, and the phases must
  // describe the cumulative analysis.
  const CacheGeometry l2 = test_l2();
  TraceBuffer trace;
  std::vector<std::uint32_t> starts;
  for (std::uint32_t iter = 0; iter < 600; ++iter) {
    starts.push_back(iter);  // every iteration its own invocation
    TraceRecord r;
    r.addr = static_cast<Addr>(iter) * l2.line_bytes() * l2.num_sets();
    r.outer_iter = iter;
    trace.mutable_records().push_back(r);
  }
  PhaseAffinityConfig cfg;
  cfg.window_iters = 64;
  const PhasedSaResult streaming =
      analyze_workload_sa_phased(trace, starts, l2, cfg);
  EXPECT_TRUE(streaming.whole.cumulative_fallback);
  expect_identical(streaming, naive_reference(trace, starts, l2, cfg));
}

TEST(PhaseAffinityDifferential, RefineStreamingMatchesMaterializing) {
  const TraceBuffer trace = shifting_trace();
  const std::vector<std::uint32_t> starts = {0};
  const PhasedDistanceBound base =
      estimate_phase_bounds(trace, starts, test_l2());
  for (const double rp : {0.5, 1.0}) {
    SCOPED_TRACE(rp);
    const SpParams params = SpParams::from_distance_rp(6, rp);
    const PhasedDistanceBound a = refine_phase_bounds(
        base, trace, starts, params, test_l2(),
        DistanceBoundOptions{.streaming_refine = false});
    const PhasedDistanceBound b = refine_phase_bounds(
        base, trace, starts, params, test_l2(),
        DistanceBoundOptions{.streaming_refine = true});
    EXPECT_EQ(a.whole.original_min_sa, b.whole.original_min_sa);
    EXPECT_EQ(a.whole.with_helper_min_sa, b.whole.with_helper_min_sa);
    EXPECT_EQ(a.whole.upper_limit, b.whole.upper_limit);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (std::size_t i = 0; i < a.phases.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(a.phases[i].begin_iter, b.phases[i].begin_iter);
      EXPECT_EQ(a.phases[i].end_iter, b.phases[i].end_iter);
      EXPECT_EQ(a.phases[i].min_sa, b.phases[i].min_sa);
      EXPECT_EQ(a.phases[i].upper_limit, b.phases[i].upper_limit);
    }
  }
}

// ---- allocation contract --------------------------------------------------

TEST(PhaseAffinityAllocation, StreamingAnalysisAllocatesNoTraceRecords) {
  const TraceBuffer trace = shifting_trace();

  const std::uint64_t before = trace_hooks::record_allocations();
  TraceViewCursor cursor(trace);
  const PhasedSaResult sa =
      analyze_workload_sa_phased(cursor, {0}, test_l2(), {});
  EXPECT_EQ(trace_hooks::record_allocations() - before, 0u);
  EXPECT_GE(sa.phases.size(), 1u);
}

TEST(PhaseAffinityAllocation, StreamingRefineAllocatesNoTraceRecords) {
  const TraceBuffer trace = shifting_trace();
  const std::vector<std::uint32_t> starts = {0};
  const PhasedDistanceBound base =
      estimate_phase_bounds(trace, starts, test_l2());
  const SpParams params = SpParams::from_distance_rp(4, 0.5);

  // Positive control: the materializing reference grows trace storage.
  const std::uint64_t before_ref = trace_hooks::record_allocations();
  (void)refine_phase_bounds(base, trace, starts, params, test_l2(),
                            DistanceBoundOptions{.streaming_refine = false});
  EXPECT_GT(trace_hooks::record_allocations(), before_ref);

  // The streaming path composes cursors over the existing buffer: zero.
  const std::uint64_t before = trace_hooks::record_allocations();
  (void)refine_phase_bounds(base, trace, starts, params, test_l2(),
                            DistanceBoundOptions{.streaming_refine = true});
  EXPECT_EQ(trace_hooks::record_allocations() - before, 0u);
}

}  // namespace
}  // namespace spf
