// Property coverage for the phase-incremental Set-Affinity analyzer and the
// per-phase distance bounds built on it (spf/profile/incremental_affinity.hpp,
// spf/core/distance_bound.hpp).
//
// Three pillars:
//   * the phase partition is sound: phases are contiguous, cover the run, and
//     — because they partition the SA samples — the minimum over per-phase
//     bounds always equals the whole-run bound (capping per phase can only
//     relax quiet phases, never loosen the paper's inequality);
//   * the degenerate single-phase configuration is bit-identical to the
//     legacy whole-run analyzer (analyze_workload_sa /
//     estimate_distance_bound / refine_with_helper) — and the whole-run slice
//     of the phased result is bit-identical even when detection is on;
//   * per-phase refined bounds respect the paper's /2 inequality in every
//     phase, and the whole-run refined bound is monotone non-increasing in
//     helper pressure (more helper traffic saturates sets no later).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "spf/core/distance_bound.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/profile/incremental_affinity.hpp"
#include "spf/profile/invocations.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/synthetic.hpp"

namespace spf {
namespace {

CacheGeometry test_l2() { return CacheGeometry(16 * 1024, 4, 64); }

/// A trace whose per-set pressure shifts abruptly: each span streams
/// `lines_per_iter` distinct lines per outer iteration from its own base
/// address, so a wide span saturates sets in far fewer iterations than a
/// narrow one — the shape phase detection exists for.
struct FootprintSpan {
  std::uint32_t iters = 0;
  std::uint32_t lines_per_iter = 1;
};

TraceBuffer phased_trace(const std::vector<FootprintSpan>& spans,
                         const CacheGeometry& l2) {
  TraceBuffer trace;
  std::uint32_t iter = 0;
  Addr region = 0;
  for (const FootprintSpan& span : spans) {
    for (std::uint32_t i = 0; i < span.iters; ++i, ++iter) {
      for (std::uint32_t k = 0; k < span.lines_per_iter; ++k) {
        TraceRecord r;
        // Distinct line per (iteration, k) within the span: a fresh block
        // every access, so saturation time is ways / lines_per_iter.
        r.addr = region +
                 static_cast<Addr>(i * span.lines_per_iter + k) * l2.line_bytes();
        r.outer_iter = iter;
        trace.mutable_records().push_back(r);
      }
    }
    region += Addr{1} << 40;  // disjoint address region per span
  }
  return trace;
}

void expect_same_sa(const WorkloadSaResult& a, const WorkloadSaResult& b) {
  EXPECT_EQ(a.merged.per_set, b.merged.per_set);
  EXPECT_EQ(a.merged.samples, b.merged.samples);
  EXPECT_EQ(a.merged.touched_sets, b.merged.touched_sets);
  EXPECT_EQ(a.merged.accesses, b.merged.accesses);
  EXPECT_EQ(a.merged.outer_iterations, b.merged.outer_iterations);
  EXPECT_EQ(a.cumulative_fallback, b.cumulative_fallback);
  EXPECT_EQ(a.invocations_analyzed, b.invocations_analyzed);
}

void expect_contiguous_partition(const std::vector<AffinityPhase>& phases) {
  ASSERT_FALSE(phases.empty());
  EXPECT_EQ(phases.front().begin_iter, 0u);
  for (std::size_t i = 0; i < phases.size(); ++i) {
    EXPECT_EQ(phases[i].index, i);
    EXPECT_LE(phases[i].begin_iter, phases[i].end_iter);
    if (i + 1 < phases.size()) {
      EXPECT_EQ(phases[i].end_iter, phases[i + 1].begin_iter);
    }
  }
}

struct Fixture {
  std::string name;
  TraceBuffer trace;
  std::vector<std::uint32_t> starts;
};

std::vector<Fixture> fixtures() {
  std::vector<Fixture> out;

  // Two abrupt working-set shifts: narrow -> wide -> narrow. Each span is
  // its own hot-function invocation, so Set Affinity re-samples per span
  // (first-saturation mode records each set once per invocation).
  out.push_back({"phased",
                 phased_trace({{256, 1}, {256, 8}, {256, 2}}, test_l2()),
                 {0, 256, 512}});

  // Randomized pressure, one invocation.
  SyntheticConfig wcfg;
  wcfg.iterations = 4000;
  wcfg.random_reads = 8;
  wcfg.random_footprint_lines = 1 << 12;
  out.push_back({"synthetic", SyntheticWorkload(wcfg).emit_trace(), {0}});

  // Multi-invocation structured workload: per-invocation re-basing + merge.
  Em3dConfig ecfg;
  ecfg.nodes = 2000;
  ecfg.arity = 8;
  ecfg.passes = 2;
  const Em3dWorkload em3d(ecfg);
  out.push_back({"em3d", em3d.emit_trace(), em3d.invocation_starts()});
  return out;
}

// ---- partition soundness & min-over-phases --------------------------------

TEST(PhaseAffinityProperty, MinOverPhaseBoundsEqualsWholeBound) {
  for (const Fixture& f : fixtures()) {
    SCOPED_TRACE(f.name);
    for (const std::uint32_t window : {16u, 64u, 257u}) {
      SCOPED_TRACE(window);
      PhaseAffinityConfig cfg;
      cfg.window_iters = window;

      const PhasedSaResult sa =
          analyze_workload_sa_phased(f.trace, f.starts, test_l2(), cfg);
      expect_contiguous_partition(sa.phases);
      ASSERT_TRUE(sa.whole.merged.any_saturated());
      // Phases partition the samples, so the per-phase minima reconstruct
      // the whole-run minimum exactly.
      EXPECT_EQ(sa.min_sa_over_phases(), sa.whole.merged.min_sa());
      std::uint64_t total_samples = 0;
      for (const AffinityPhase& p : sa.phases) total_samples += p.samples;
      EXPECT_EQ(total_samples, sa.whole.merged.samples.size());

      const PhasedDistanceBound bound =
          estimate_phase_bounds(f.trace, f.starts, test_l2(), cfg);
      ASSERT_GE(bound.phase_count(), 1u);
      EXPECT_EQ(bound.min_phase_bound(), bound.whole.upper_limit);
      for (const PhaseDistanceBound& p : bound.phases) {
        EXPECT_GE(p.upper_limit, 1u);
        // bound_at resolves every covered iteration to its phase's cap.
        if (p.begin_iter < p.end_iter) {
          EXPECT_EQ(bound.bound_at(p.begin_iter), p.upper_limit);
        }
      }
    }
  }
}

TEST(PhaseAffinityProperty, DetectsTheInjectedShift) {
  // The wide middle span saturates sets ~8x faster than the narrow first
  // span; with one invocation per span (fresh SA sampling each) and a
  // window well under the span length the analyzer must see the shift.
  const TraceBuffer trace =
      phased_trace({{256, 1}, {256, 8}, {256, 2}}, test_l2());
  PhaseAffinityConfig cfg;
  cfg.window_iters = 32;
  const PhasedSaResult sa =
      analyze_workload_sa_phased(trace, {0, 256, 512}, test_l2(), cfg);
  EXPECT_GE(sa.phases.size(), 2u);
}

// ---- single-phase == legacy -----------------------------------------------

TEST(PhaseAffinityProperty, SinglePhaseConfigIsBitIdenticalToLegacy) {
  for (const Fixture& f : fixtures()) {
    SCOPED_TRACE(f.name);
    PhaseAffinityConfig off;
    off.detect_phases = false;

    const WorkloadSaResult legacy =
        analyze_workload_sa(f.trace, f.starts, test_l2());
    const PhasedSaResult single =
        analyze_workload_sa_phased(f.trace, f.starts, test_l2(), off);
    EXPECT_EQ(single.phases.size(), 1u);
    expect_same_sa(single.whole, legacy);

    // The whole-run slice is the same merge regardless of detection — phase
    // tracking is a pure observer of the sample stream.
    const PhasedSaResult multi =
        analyze_workload_sa_phased(f.trace, f.starts, test_l2(), {});
    expect_same_sa(multi.whole, legacy);

    const DistanceBound base =
        estimate_distance_bound(f.trace, f.starts, test_l2());
    const PhasedDistanceBound phased =
        estimate_phase_bounds(f.trace, f.starts, test_l2(), off);
    EXPECT_EQ(phased.whole.original_min_sa, base.original_min_sa);
    EXPECT_EQ(phased.whole.upper_limit, base.upper_limit);
    EXPECT_EQ(phased.phase_count(), 1u);
    // One phase spanning the run inherits exactly the whole-run cap.
    EXPECT_EQ(phased.phases.front().upper_limit, base.upper_limit);

    const SpParams params = SpParams::from_distance_rp(4, 0.5);
    DistanceBoundOptions opts;
    opts.phase = off;
    const DistanceBound refined_legacy =
        refine_with_helper(base, f.trace, f.starts, params, test_l2());
    const PhasedDistanceBound refined_phased = refine_phase_bounds(
        phased, f.trace, f.starts, params, test_l2(), opts);
    EXPECT_EQ(refined_phased.whole.original_min_sa,
              refined_legacy.original_min_sa);
    EXPECT_EQ(refined_phased.whole.with_helper_min_sa,
              refined_legacy.with_helper_min_sa);
    EXPECT_EQ(refined_phased.whole.upper_limit, refined_legacy.upper_limit);
    EXPECT_EQ(refined_phased.phase_count(), 1u);
  }
}

// ---- helper pressure ------------------------------------------------------

TEST(PhaseAffinityProperty, RefinedBoundsMonotoneInHelperPressure) {
  const TraceBuffer trace =
      phased_trace({{512, 2}, {512, 6}}, test_l2());
  const std::vector<std::uint32_t> starts = {0, 512};
  const PhasedDistanceBound base =
      estimate_phase_bounds(trace, starts, test_l2());
  const std::uint32_t original_half =
      std::max(1u, base.whole.original_min_sa / 2);

  std::uint32_t prev_whole = UINT32_MAX;
  for (const double rp : {0.25, 0.5, 1.0}) {
    SCOPED_TRACE(rp);
    const SpParams params = SpParams::from_distance_rp(4, rp);
    const PhasedDistanceBound refined =
        refine_phase_bounds(base, trace, starts, params, test_l2());

    // More helper traffic saturates every set no later, so the measured
    // with-helper bound can only tighten as RP grows.
    EXPECT_LE(refined.whole.upper_limit, prev_whole);
    prev_whole = refined.whole.upper_limit;

    // The paper's /2 inequality holds inside every phase: no phase cap ever
    // exceeds half the original whole-run Set Affinity (or 1, the floor).
    for (const PhaseDistanceBound& p : refined.phases) {
      EXPECT_GE(p.upper_limit, 1u);
      EXPECT_LE(p.upper_limit, original_half);
    }
    EXPECT_EQ(refined.min_phase_bound(), refined.whole.upper_limit);
  }
}

// ---- config validation ----------------------------------------------------

TEST(PhaseAffinityConfigTest, ValidateRejectsBadConfigs) {
  PhaseAffinityConfig cfg;
  EXPECT_EQ(cfg.validate(), "");
  cfg.window_iters = 0;
  EXPECT_NE(cfg.validate(), "");
  cfg = PhaseAffinityConfig{};
  cfg.hysteresis = -0.5;
  EXPECT_NE(cfg.validate(), "");
  cfg = PhaseAffinityConfig{};
  cfg.ema_alpha = 0.0;
  EXPECT_NE(cfg.validate(), "");
  cfg.ema_alpha = 1.5;
  EXPECT_NE(cfg.validate(), "");
}

}  // namespace
}  // namespace spf
