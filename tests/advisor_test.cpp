// Tests for the advisory API and the occupancy sampler.
#include <gtest/gtest.h>

#include "spf/core/advisor.hpp"
#include "spf/sim/simulator.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/synthetic.hpp"

namespace spf {
namespace {

CacheGeometry small_l2() { return CacheGeometry(128 * 1024, 16, 64); }

TEST(AdvisorTest, RecommendsSpForPointerChase) {
  Em3dConfig c;
  c.nodes = 4000;
  c.arity = 32;
  c.passes = 1;
  Em3dWorkload w(c);
  AdvisorConfig cfg;
  cfg.l2 = small_l2();
  const AdvisorReport report =
      advise_sp(w.emit_trace(), w.invocation_starts(), cfg);

  EXPECT_TRUE(report.sp_recommended);
  EXPECT_GT(report.patterns.irregular_fraction, 0.5);
  EXPECT_LT(report.calr.calr, 0.5);
  EXPECT_NEAR(report.rp, 0.5, 0.2);
  EXPECT_TRUE(report.sa.merged.any_saturated());
  EXPECT_TRUE(report.bound.allows(report.recommended.a_ski));
  ASSERT_TRUE(report.validation.has_value());
  EXPECT_LT(report.validation->norm_runtime(), 0.95);
  EXPECT_NE(report.to_string().find("SP recommended"), std::string::npos);
}

TEST(AdvisorTest, PushesBackOnRegularStreams) {
  SyntheticConfig c;
  c.iterations = 12000;
  c.sequential_lines = 12;
  c.strided_reads = 3;
  c.random_reads = 1;
  const SyntheticWorkload w(c);
  AdvisorConfig cfg;
  cfg.l2 = small_l2();
  cfg.validate = false;  // isolate the static heuristic path
  const AdvisorReport report =
      advise_sp(w.emit_trace(), w.invocation_starts(), cfg);
  EXPECT_FALSE(report.sp_recommended);
  ASSERT_FALSE(report.caveats.empty());
}

TEST(AdvisorTest, ValidationOverridesPessimisticHeuristic) {
  // Same regular-heavy stream, but with validation on: if the simulated run
  // shows a large gain, the advisor must recommend SP despite the pattern
  // caveat.
  SyntheticConfig c;
  c.iterations = 12000;
  c.sequential_lines = 12;
  c.strided_reads = 3;
  c.random_reads = 1;
  const SyntheticWorkload w(c);
  AdvisorConfig cfg;
  cfg.l2 = small_l2();
  const AdvisorReport report =
      advise_sp(w.emit_trace(), w.invocation_starts(), cfg);
  ASSERT_TRUE(report.validation.has_value());
  if (report.validation->norm_runtime() < 0.9) {
    EXPECT_TRUE(report.sp_recommended);
  } else if (report.validation->norm_runtime() > 0.98) {
    EXPECT_FALSE(report.sp_recommended);
  }
}

TEST(AdvisorTest, SmallWorkingSetIsUnconstrained) {
  SyntheticConfig c;
  c.iterations = 4000;
  c.random_footprint_lines = 64;  // trivially cache-resident
  c.sequential_lines = 0;
  c.strided_reads = 0;
  c.random_reads = 8;
  const SyntheticWorkload w(c);
  AdvisorConfig cfg;
  cfg.l2 = CacheGeometry(4 << 20, 16, 64);
  cfg.validate = false;
  const AdvisorReport report =
      advise_sp(w.emit_trace(), w.invocation_starts(), cfg);
  EXPECT_FALSE(report.sa.merged.any_saturated());
  EXPECT_TRUE(report.bound.allows(1 << 20));
  bool found = false;
  for (const auto& cvt : report.caveats) {
    found |= cvt.find("fits in the shared cache") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(AdvisorTest, ValidateFalseSkipsSimulation) {
  Em3dConfig c;
  c.nodes = 1000;
  c.arity = 8;
  c.passes = 1;
  Em3dWorkload w(c);
  AdvisorConfig cfg;
  cfg.l2 = small_l2();
  cfg.validate = false;
  const AdvisorReport report =
      advise_sp(w.emit_trace(), w.invocation_starts(), cfg);
  EXPECT_FALSE(report.validation.has_value());
}

TEST(AdvisorDeathTest, EmptyTraceRejected) {
  EXPECT_DEATH((void)advise_sp(TraceBuffer{}, {0}, AdvisorConfig{}), "empty");
}

TEST(OccupancyTest, SnapshotSplitsByProvenanceAndUse) {
  Cache cache(CacheGeometry(1024, 2, 64), ReplacementKind::kLru);
  cache.fill(1, FillOrigin::kDemand, 0, 0);
  cache.fill(2, FillOrigin::kHelper, 1, 0);
  cache.fill(3, FillOrigin::kHelper, 1, 0);
  cache.access(3, AccessKind::kRead, 1);  // consume one helper line
  cache.fill(4, FillOrigin::kHardware, 0, 0);
  const OccupancySample s = snapshot_occupancy(cache, 42);
  EXPECT_EQ(s.when, 42u);
  EXPECT_EQ(s.demand_lines, 1u);
  EXPECT_EQ(s.helper_used, 1u);
  EXPECT_EQ(s.helper_unused, 1u);
  EXPECT_EQ(s.hw_used, 0u);
  EXPECT_EQ(s.hw_unused, 1u);
  EXPECT_EQ(s.total(), 4u);
  EXPECT_EQ(s.unused_prefetch(), 2u);
}

TEST(OccupancyTest, SeriesStatistics) {
  OccupancySeries series;
  series.samples.push_back(OccupancySample{.when = 0,
                                           .demand_lines = 8,
                                           .helper_unused = 2});   // 20% unused
  series.samples.push_back(OccupancySample{.when = 100,
                                           .demand_lines = 4,
                                           .hw_unused = 6});       // 60% unused
  EXPECT_NEAR(series.mean_unused_prefetch_fraction(), 0.4, 1e-9);
  EXPECT_EQ(series.peak_unused_prefetch(), 6u);
  EXPECT_FALSE(series.to_string().empty());
}

TEST(OccupancyTest, SimulatorSamplesWhenEnabled) {
  SyntheticConfig c;
  c.iterations = 6000;
  const SyntheticWorkload w(c);
  const TraceBuffer trace = w.emit_trace();
  SimConfig cfg;
  cfg.l2 = small_l2();
  cfg.occupancy_sample_interval = 50000;
  CmpSimulator sim(cfg);
  const SimResult r = sim.run({CoreStream{.trace = &trace}});
  ASSERT_FALSE(r.occupancy.empty());
  Cycle prev = 0;
  for (const OccupancySample& s : r.occupancy.samples) {
    EXPECT_GE(s.when, prev);
    prev = s.when;
    EXPECT_LE(s.total(), cfg.l2.num_sets() * cfg.l2.ways());
  }
}

TEST(OccupancyTest, DisabledByDefault) {
  SyntheticConfig c;
  c.iterations = 500;
  const SyntheticWorkload w(c);
  const TraceBuffer trace = w.emit_trace();
  CmpSimulator sim(SimConfig{});
  const SimResult r = sim.run({CoreStream{.trace = &trace}});
  EXPECT_TRUE(r.occupancy.empty());
}

TEST(OccupancyTest, HelperInflatesUnusedPrefetchOccupancy) {
  Em3dConfig c;
  c.nodes = 4000;
  c.arity = 32;
  c.passes = 1;
  Em3dWorkload w(c);
  const TraceBuffer trace = w.emit_trace();
  const TraceBuffer helper =
      make_helper_trace(trace, SpParams{.a_ski = 200, .a_pre = 200});

  SimConfig cfg;
  cfg.l2 = small_l2();
  cfg.occupancy_sample_interval = 100000;

  CmpSimulator solo_sim(cfg);
  const SimResult solo = solo_sim.run({CoreStream{.trace = &trace}});
  CmpSimulator sp_sim(cfg);
  const SimResult sp = sp_sim.run({
      CoreStream{.trace = &trace},
      CoreStream{.trace = &helper,
                 .origin = FillOrigin::kHelper,
                 .sync = RoundSync{.leader = 0, .round_iters = 400}},
  });
  ASSERT_FALSE(solo.occupancy.empty());
  ASSERT_FALSE(sp.occupancy.empty());
  EXPECT_GT(sp.occupancy.mean_unused_prefetch_fraction(),
            solo.occupancy.mean_unused_prefetch_fraction());
}

}  // namespace
}  // namespace spf
