// Unit tests for the feedback-directed distance controller and the emulated
// adaptive experiment.
#include <gtest/gtest.h>

#include "spf/core/adaptive.hpp"
#include "spf/workloads/synthetic.hpp"

namespace spf {
namespace {

AdaptiveConfig cfg() {
  AdaptiveConfig c;
  c.min_distance = 1;
  c.max_distance = 64;
  c.initial_distance = 8;
  c.increase_step = 4;
  return c;
}

IntervalFeedback interval(std::uint64_t lookups, std::uint64_t partial,
                          std::uint64_t miss, std::uint64_t pollution) {
  return IntervalFeedback{.l2_lookups = lookups,
                          .partially_hits = partial,
                          .totally_misses = miss,
                          .pollution_events = pollution};
}

TEST(FeedbackControllerTest, HighPollutionHalvesDistance) {
  FeedbackDistanceController c(cfg());
  // 100 pollution events per 1000 lookups: way above the 40/1000 threshold.
  EXPECT_EQ(c.observe(interval(10000, 0, 2000, 1000)),
            AdaptiveAction::kDecrease);
  EXPECT_EQ(c.distance(), 4u);
  EXPECT_EQ(c.observe(interval(10000, 0, 2000, 1000)),
            AdaptiveAction::kDecrease);
  EXPECT_EQ(c.distance(), 2u);
}

TEST(FeedbackControllerTest, NeverBelowMinimum) {
  FeedbackDistanceController c(cfg());
  for (int i = 0; i < 20; ++i) c.observe(interval(1000, 0, 100, 900));
  EXPECT_EQ(c.distance(), 1u);
  EXPECT_EQ(c.observe(interval(1000, 0, 100, 900)), AdaptiveAction::kHold);
}

TEST(FeedbackControllerTest, LateFillsIncreaseDistance) {
  FeedbackDistanceController c(cfg());
  // Low pollution, 50% of memory accesses are partial hits (fills late).
  EXPECT_EQ(c.observe(interval(10000, 500, 500, 10)),
            AdaptiveAction::kIncrease);
  EXPECT_EQ(c.distance(), 12u);
}

TEST(FeedbackControllerTest, NeverAboveMaximum) {
  FeedbackDistanceController c(cfg());
  for (int i = 0; i < 50; ++i) c.observe(interval(10000, 500, 500, 0));
  EXPECT_EQ(c.distance(), 64u);
  EXPECT_EQ(c.observe(interval(10000, 500, 500, 0)), AdaptiveAction::kHold);
}

TEST(FeedbackControllerTest, QuietIntervalHolds) {
  FeedbackDistanceController c(cfg());
  // Low pollution AND timely fills: stay put.
  EXPECT_EQ(c.observe(interval(10000, 10, 990, 5)), AdaptiveAction::kHold);
  EXPECT_EQ(c.distance(), 8u);
  // Empty interval also holds.
  EXPECT_EQ(c.observe(interval(0, 0, 0, 0)), AdaptiveAction::kHold);
}

TEST(FeedbackControllerTest, CountersAndToString) {
  FeedbackDistanceController c(cfg());
  c.observe(interval(10000, 500, 500, 10));  // increase
  c.observe(interval(10000, 0, 2000, 1000)); // decrease
  EXPECT_EQ(c.increases(), 1u);
  EXPECT_EQ(c.decreases(), 1u);
  EXPECT_NE(c.to_string().find("distance="), std::string::npos);
}

TEST(FeedbackControllerDeathTest, RejectsEmptyRange) {
  AdaptiveConfig bad = cfg();
  bad.min_distance = 10;
  bad.max_distance = 5;
  EXPECT_DEATH(FeedbackDistanceController{bad}, "range");
}

TEST(AdaptiveRunTest, ConvergesAwayFromPollutingStart) {
  // Start the controller far beyond the pollution bound of a synthetic
  // pointer-chase; it must walk the distance down.
  SyntheticConfig wcfg;
  wcfg.iterations = 24000;
  wcfg.random_reads = 16;
  wcfg.random_footprint_lines = 1 << 15;
  const SyntheticWorkload w(wcfg);
  const TraceBuffer trace = w.emit_trace();

  SpExperimentConfig base;
  base.sim.l2 = CacheGeometry(256 * 1024, 16, 64);

  AdaptiveConfig acfg;
  acfg.min_distance = 2;
  acfg.max_distance = 2048;
  acfg.initial_distance = 2048;  // absurdly early prefetches
  acfg.increase_step = 8;
  acfg.interval_iters = 2000;

  const AdaptiveRunResult r = run_adaptive_experiment(trace, base, acfg);
  ASSERT_GE(r.intervals, 10u);
  EXPECT_LT(r.final_distance(), 2048u / 4);
  // Trajectory must be non-increasing until it leaves the polluting regime.
  EXPECT_LT(r.distance_trajectory.back(), r.distance_trajectory.front());
}

TEST(AdaptiveRunTest, AggregateCountsAllIntervals) {
  SyntheticConfig wcfg;
  wcfg.iterations = 8000;
  const SyntheticWorkload w(wcfg);
  const TraceBuffer trace = w.emit_trace();
  SpExperimentConfig base;
  base.sim.l2 = CacheGeometry(256 * 1024, 16, 64);
  AdaptiveConfig acfg = cfg();
  acfg.interval_iters = 1000;
  const AdaptiveRunResult r = run_adaptive_experiment(trace, base, acfg);
  EXPECT_EQ(r.intervals, 8u);
  EXPECT_EQ(r.distance_trajectory.size(), 8u);
  EXPECT_GT(r.aggregate.l2_lookups, 0u);
  EXPECT_GT(r.aggregate.runtime, 0u);
}

}  // namespace
}  // namespace spf
