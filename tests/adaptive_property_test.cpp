// Property and differential coverage for the adaptive-distance subsystem.
//
// Three pillars:
//   * FeedbackDistanceController properties under randomized configs and
//     feedback streams — the distance never leaves [min, max], every step is
//     exactly the AIMD arithmetic (halve-with-floor / add-with-cap), and the
//     action tallies reconcile with the observed actions;
//   * the streaming cold path of ExperimentContext::run_adaptive is
//     bit-identical to the pre-redesign materializing reference (re-built
//     inline here: split the trace into re-based per-interval TraceBuffers,
//     run each through the free run_sp_once, accumulate) — and allocates
//     zero trace-record storage while the reference allocates plenty;
//   * warm intervals share the cold path's structure (same interval count
//     and starting distance, distances always in bounds) while reporting one
//     continuous run's cumulative aggregate.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "spf/core/adaptive.hpp"
#include "spf/core/experiment_context.hpp"
#include "spf/workloads/synthetic.hpp"

namespace spf {
namespace {

// ---- controller properties ------------------------------------------------

/// Deterministic 64-bit LCG (MMIX constants) — keeps the property runs
/// reproducible without <random>'s platform-dependent distributions.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 17;
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

 private:
  std::uint64_t state_;
};

TEST(AdaptiveControllerProperty, BoundsArithmeticAndCounters) {
  Lcg rng(0xadaf71e5u);
  for (int config_round = 0; config_round < 50; ++config_round) {
    AdaptiveConfig cfg;
    cfg.min_distance = 1 + static_cast<std::uint32_t>(rng.below(16));
    cfg.max_distance =
        cfg.min_distance + static_cast<std::uint32_t>(rng.below(256));
    cfg.initial_distance = static_cast<std::uint32_t>(rng.below(512));
    cfg.increase_step = 1 + static_cast<std::uint32_t>(rng.below(16));
    ASSERT_EQ(cfg.validate(), "");

    FeedbackDistanceController c(cfg);
    // Clamped start.
    EXPECT_GE(c.distance(), cfg.min_distance);
    EXPECT_LE(c.distance(), cfg.max_distance);

    std::uint64_t increases = 0;
    std::uint64_t decreases = 0;
    for (int step = 0; step < 200; ++step) {
      IntervalFeedback fb;
      fb.l2_lookups = rng.below(4);  // 0 sometimes: the hold-on-quiet case
      fb.l2_lookups *= rng.below(5000);
      fb.partially_hits = rng.below(fb.l2_lookups + 1);
      fb.totally_misses = rng.below(fb.l2_lookups + 1);
      fb.pollution_events = rng.below(fb.l2_lookups / 4 + 1);

      const std::uint32_t before = c.distance();
      const AdaptiveAction action = c.observe(fb);
      const std::uint32_t after = c.distance();

      EXPECT_GE(after, cfg.min_distance);
      EXPECT_LE(after, cfg.max_distance);
      switch (action) {
        case AdaptiveAction::kDecrease:
          EXPECT_EQ(after, std::max(cfg.min_distance, before / 2));
          EXPECT_LT(after, before);  // kDecrease only fires above the floor
          ++decreases;
          break;
        case AdaptiveAction::kIncrease:
          EXPECT_EQ(after,
                    std::min(cfg.max_distance, before + cfg.increase_step));
          EXPECT_GT(after, before);  // kIncrease only fires below the cap
          ++increases;
          break;
        case AdaptiveAction::kHold:
          EXPECT_EQ(after, before);
          break;
      }
      if (fb.l2_lookups == 0) EXPECT_EQ(action, AdaptiveAction::kHold);
    }
    EXPECT_EQ(c.increases(), increases);
    EXPECT_EQ(c.decreases(), decreases);
  }
}

TEST(AdaptiveConfigTest, ValidateRejectsBadConfigs) {
  AdaptiveConfig cfg;
  EXPECT_EQ(cfg.validate(), "");
  cfg.min_distance = 0;
  EXPECT_NE(cfg.validate(), "");
  cfg = AdaptiveConfig{};
  cfg.min_distance = 8;
  cfg.max_distance = 4;
  EXPECT_NE(cfg.validate(), "");
  cfg = AdaptiveConfig{};
  cfg.increase_step = 0;
  EXPECT_NE(cfg.validate(), "");
  cfg = AdaptiveConfig{};
  cfg.interval_iters = 0;
  EXPECT_NE(cfg.validate(), "");
  cfg = AdaptiveConfig{};
  cfg.rp = 0.0;
  EXPECT_NE(cfg.validate(), "");
  cfg.rp = 1.5;
  EXPECT_NE(cfg.validate(), "");
}

TEST(AdaptiveRunResultTest, EmptyTrajectoryReportsInitialDistance) {
  AdaptiveRunResult r;
  r.initial_distance = 16;
  EXPECT_EQ(r.final_distance(), 16u);
  EXPECT_EQ(r.mean_distance(), 16.0);
  r.distance_trajectory = {16, 8, 4};
  EXPECT_EQ(r.final_distance(), 4u);
  EXPECT_NEAR(r.mean_distance(), (16.0 + 8.0 + 4.0) / 3.0, 1e-12);
}

// ---- cold-path differential against the pre-redesign reference ------------

/// The removed materializing implementation, verbatim in behaviour: one
/// re-based TraceBuffer per interval, a throwaway simulator per segment via
/// the free run_sp_once, field-by-field aggregation (helper_finish not
/// summed — per-interval finish times are not additive).
AdaptiveRunResult legacy_reference(const TraceBuffer& trace,
                                   const SpExperimentConfig& base,
                                   const AdaptiveConfig& adaptive) {
  std::vector<TraceBuffer> chunks;
  std::int64_t current_index = -1;
  std::uint32_t chunk_base = 0;
  for (const TraceRecord& r : trace) {
    const std::uint32_t chunk_index = r.outer_iter / adaptive.interval_iters;
    if (static_cast<std::int64_t>(chunk_index) != current_index) {
      chunks.emplace_back();
      current_index = chunk_index;
      chunk_base = chunk_index * adaptive.interval_iters;
    }
    TraceRecord rebased = r;
    rebased.outer_iter = r.outer_iter - chunk_base;
    chunks.back().mutable_records().push_back(rebased);
  }

  AdaptiveRunResult result;
  FeedbackDistanceController controller(adaptive);
  result.initial_distance = controller.distance();
  for (const TraceBuffer& chunk : chunks) {
    SpExperimentConfig cfg = base;
    cfg.params =
        SpParams::from_distance_rp(controller.distance(), adaptive.rp);
    const SpRunSummary run = run_sp_once(chunk, cfg);
    result.distance_trajectory.push_back(controller.distance());
    ++result.intervals;

    result.aggregate.runtime += run.runtime;
    result.aggregate.l2_lookups += run.l2_lookups;
    result.aggregate.totally_hits += run.totally_hits;
    result.aggregate.partially_hits += run.partially_hits;
    result.aggregate.totally_misses += run.totally_misses;
    result.aggregate.memory_requests += run.memory_requests;
    result.aggregate.pollution.case1_reuse_displaced +=
        run.pollution.case1_reuse_displaced;
    result.aggregate.pollution.case2_helper_displaced +=
        run.pollution.case2_helper_displaced;
    result.aggregate.pollution.case3_hw_displaced +=
        run.pollution.case3_hw_displaced;
    result.aggregate.pollution.prefetch_caused_evictions +=
        run.pollution.prefetch_caused_evictions;
    result.aggregate.pollution.total_evictions += run.pollution.total_evictions;

    controller.observe(IntervalFeedback{
        .l2_lookups = run.l2_lookups,
        .partially_hits = run.partially_hits,
        .totally_misses = run.totally_misses,
        .pollution_events = run.pollution.total_pollution(),
    });
  }
  result.increases = controller.increases();
  result.decreases = controller.decreases();
  return result;
}

void expect_identical(const AdaptiveRunResult& got,
                      const AdaptiveRunResult& want) {
  EXPECT_EQ(got.intervals, want.intervals);
  EXPECT_EQ(got.distance_trajectory, want.distance_trajectory);
  EXPECT_EQ(got.initial_distance, want.initial_distance);
  EXPECT_EQ(got.increases, want.increases);
  EXPECT_EQ(got.decreases, want.decreases);
  EXPECT_EQ(got.aggregate.runtime, want.aggregate.runtime);
  EXPECT_EQ(got.aggregate.l2_lookups, want.aggregate.l2_lookups);
  EXPECT_EQ(got.aggregate.totally_hits, want.aggregate.totally_hits);
  EXPECT_EQ(got.aggregate.partially_hits, want.aggregate.partially_hits);
  EXPECT_EQ(got.aggregate.totally_misses, want.aggregate.totally_misses);
  EXPECT_EQ(got.aggregate.memory_requests, want.aggregate.memory_requests);
  EXPECT_EQ(got.aggregate.helper_finish, want.aggregate.helper_finish);
  EXPECT_EQ(got.aggregate.pollution.case1_reuse_displaced,
            want.aggregate.pollution.case1_reuse_displaced);
  EXPECT_EQ(got.aggregate.pollution.case2_helper_displaced,
            want.aggregate.pollution.case2_helper_displaced);
  EXPECT_EQ(got.aggregate.pollution.case3_hw_displaced,
            want.aggregate.pollution.case3_hw_displaced);
  EXPECT_EQ(got.aggregate.pollution.prefetch_caused_evictions,
            want.aggregate.pollution.prefetch_caused_evictions);
  EXPECT_EQ(got.aggregate.pollution.total_evictions,
            want.aggregate.pollution.total_evictions);
}

TraceBuffer polluting_trace() {
  SyntheticConfig wcfg;
  wcfg.iterations = 12000;
  wcfg.random_reads = 8;
  wcfg.random_footprint_lines = 1 << 13;
  return SyntheticWorkload(wcfg).emit_trace();
}

TEST(AdaptiveColdDifferential, StreamingMatchesMaterializingReference) {
  const TraceBuffer trace = polluting_trace();
  SpExperimentConfig base;
  base.sim.l2 = CacheGeometry(256 * 1024, 16, 64);

  // Several controller regimes: walking down from a polluting start, pinned
  // static (min == max), and a mid-range start with room both ways.
  std::vector<AdaptiveConfig> configs(3);
  configs[0].min_distance = 2;
  configs[0].max_distance = 1024;
  configs[0].initial_distance = 1024;
  configs[0].increase_step = 8;
  configs[1].min_distance = 16;
  configs[1].max_distance = 16;
  configs[1].initial_distance = 16;
  configs[2] = AdaptiveConfig{};  // defaults: 8 inside [1, 64]
  for (AdaptiveConfig& acfg : configs) {
    acfg.interval_iters = 1500;

    ExperimentContext ctx;
    const std::uint64_t allocs_before = trace_hooks::record_allocations();
    const AdaptiveRunResult streaming = ctx.run_adaptive(trace, base, acfg);
    // The streaming path's contract: segments replay through cursor windows
    // over the shared trace, so no trace-record storage ever grows.
    EXPECT_EQ(trace_hooks::record_allocations() - allocs_before, 0u);

    const AdaptiveRunResult reference = legacy_reference(trace, base, acfg);
    expect_identical(streaming, reference);
    ASSERT_GE(streaming.intervals, 2u);
  }
}

TEST(AdaptiveColdDifferential, WrapperMatchesContextMember) {
  const TraceBuffer trace = polluting_trace();
  SpExperimentConfig base;
  base.sim.l2 = CacheGeometry(256 * 1024, 16, 64);
  AdaptiveConfig acfg;
  acfg.interval_iters = 2000;

  ExperimentContext ctx;
  expect_identical(run_adaptive_experiment(trace, base, acfg),
                   ctx.run_adaptive(trace, base, acfg));
}

// ---- warm intervals -------------------------------------------------------

TEST(AdaptiveWarmIntervals, SharesStructureWithColdRun) {
  const TraceBuffer trace = polluting_trace();
  SpExperimentConfig base;
  base.sim.l2 = CacheGeometry(256 * 1024, 16, 64);
  AdaptiveConfig acfg;
  acfg.min_distance = 2;
  acfg.max_distance = 512;
  acfg.initial_distance = 512;
  acfg.interval_iters = 1500;

  ExperimentContext ctx;
  const AdaptiveRunResult cold = ctx.run_adaptive(trace, base, acfg);

  AdaptiveConfig warm_cfg = acfg;
  warm_cfg.warm_intervals = true;
  const std::uint64_t allocs_before = trace_hooks::record_allocations();
  const AdaptiveRunResult warm = ctx.run_adaptive(trace, base, warm_cfg);
  EXPECT_EQ(trace_hooks::record_allocations() - allocs_before, 0u);

  // Same segmentation, same clamped start; the feedback differs (no cold
  // restart transient), so the walks may diverge after the first interval.
  EXPECT_EQ(warm.intervals, cold.intervals);
  EXPECT_EQ(warm.distance_trajectory.size(), cold.distance_trajectory.size());
  EXPECT_EQ(warm.initial_distance, cold.initial_distance);
  ASSERT_FALSE(warm.distance_trajectory.empty());
  EXPECT_EQ(warm.distance_trajectory.front(), cold.distance_trajectory.front());
  for (const std::uint32_t d : warm.distance_trajectory) {
    EXPECT_GE(d, warm_cfg.min_distance);
    EXPECT_LE(d, warm_cfg.max_distance);
  }
  // Cumulative totals of a real run.
  EXPECT_GT(warm.aggregate.runtime, 0u);
  EXPECT_GT(warm.aggregate.l2_lookups, 0u);
  // The warm aggregate is one continuous run's summary: its runtime is the
  // final clock, not a sum of per-interval restart clocks, so it cannot
  // exceed the cold sum (each cold interval restarts from cycle 0).
  EXPECT_LE(warm.aggregate.runtime, cold.aggregate.runtime);
  // A context stays reusable after a warm run: the next cold run matches a
  // fresh context bit-for-bit.
  expect_identical(ctx.run_adaptive(trace, base, acfg), cold);
}

// ---- API contract ---------------------------------------------------------

TEST(AdaptiveApiContract, RejectsNonDefaultBaseParams) {
  const TraceBuffer trace = polluting_trace();
  SpExperimentConfig base;
  base.sim.l2 = CacheGeometry(256 * 1024, 16, 64);
  base.params = SpParams::from_distance_rp(16, 0.5);
  EXPECT_THROW(run_adaptive_experiment(trace, base, AdaptiveConfig{}),
               std::invalid_argument);
}

TEST(AdaptiveApiContract, RejectsInvalidConfig) {
  const TraceBuffer trace = polluting_trace();
  SpExperimentConfig base;
  base.sim.l2 = CacheGeometry(256 * 1024, 16, 64);
  AdaptiveConfig bad;
  bad.interval_iters = 0;
  EXPECT_THROW(run_adaptive_experiment(trace, base, bad),
               std::invalid_argument);
  bad = AdaptiveConfig{};
  bad.rp = 2.0;
  EXPECT_THROW(run_adaptive_experiment(trace, base, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace spf
