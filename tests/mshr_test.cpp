// Unit tests for the MSHR file: allocation, merging (partial-hit substrate),
// capacity behaviour, and completion draining.
#include <gtest/gtest.h>

#include <limits>

#include "spf/mshr/mshr.hpp"

namespace spf {
namespace {

TEST(MshrTest, AllocateAndFind) {
  MshrFile mshr(4);
  EXPECT_EQ(mshr.find(10), nullptr);
  const MshrEntry* e = mshr.allocate(10, 100, 400, FillOrigin::kDemand, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->line, 10u);
  EXPECT_EQ(e->issue_time, 100u);
  EXPECT_EQ(e->fill_time, 400u);
  EXPECT_EQ(mshr.find(10), e);
  EXPECT_EQ(mshr.size(), 1u);
}

TEST(MshrTest, FullRejectsAndCounts) {
  MshrFile mshr(2);
  EXPECT_NE(mshr.allocate(1, 0, 10, FillOrigin::kDemand, 0), nullptr);
  EXPECT_NE(mshr.allocate(2, 0, 10, FillOrigin::kDemand, 0), nullptr);
  EXPECT_TRUE(mshr.full());
  EXPECT_EQ(mshr.allocate(3, 0, 10, FillOrigin::kDemand, 0), nullptr);
  EXPECT_EQ(mshr.stats().full_rejections, 1u);
  EXPECT_EQ(mshr.stats().allocations, 2u);
}

TEST(MshrTest, MergeCountsSecondaryRequests) {
  MshrFile mshr(4);
  mshr.allocate(5, 0, 100, FillOrigin::kHardware, 1);
  const MshrEntry& e = mshr.merge(5, /*demand_requester=*/false);
  EXPECT_EQ(e.merged, 1u);
  EXPECT_FALSE(e.demand_merged);
  EXPECT_EQ(mshr.stats().merges, 1u);
}

TEST(MshrTest, DemandMergeUpgradesPrefetchEntry) {
  MshrFile mshr(4);
  mshr.allocate(5, 0, 100, FillOrigin::kHelper, 1);
  const MshrEntry& e = mshr.merge(5, /*demand_requester=*/true);
  EXPECT_TRUE(e.demand_merged);
  EXPECT_EQ(mshr.stats().demand_merges_into_prefetch, 1u);
  // Origin itself is preserved (provenance of the original requester).
  EXPECT_EQ(e.origin, FillOrigin::kHelper);
}

TEST(MshrTest, DemandMergeIntoDemandEntryIsNotAnUpgrade) {
  MshrFile mshr(4);
  mshr.allocate(5, 0, 100, FillOrigin::kDemand, 0);
  mshr.merge(5, true);
  EXPECT_EQ(mshr.stats().demand_merges_into_prefetch, 0u);
}

TEST(MshrTest, HelperMergeNeverUpgrades) {
  MshrFile mshr(4);
  mshr.allocate(5, 0, 100, FillOrigin::kHardware, 1);
  mshr.merge(5, /*demand_requester=*/false);  // helper's own blocking load
  EXPECT_FALSE(mshr.find(5)->demand_merged);
}

TEST(MshrTest, MarkWriteTracksStores) {
  MshrFile mshr(4);
  mshr.allocate(5, 0, 100, FillOrigin::kDemand, 0);
  EXPECT_FALSE(mshr.find(5)->write);
  mshr.mark_write(5);
  EXPECT_TRUE(mshr.find(5)->write);
  mshr.mark_write(99);  // absent line: harmless no-op
}

TEST(MshrTest, NextCompletionIsEarliestFill) {
  MshrFile mshr(4);
  EXPECT_EQ(mshr.next_completion(), std::numeric_limits<Cycle>::max());
  mshr.allocate(1, 0, 300, FillOrigin::kDemand, 0);
  mshr.allocate(2, 0, 150, FillOrigin::kDemand, 0);
  mshr.allocate(3, 0, 220, FillOrigin::kDemand, 0);
  EXPECT_EQ(mshr.next_completion(), 150u);
}

TEST(MshrTest, DrainCompletedReturnsInFillOrder) {
  MshrFile mshr(8);
  mshr.allocate(1, 0, 300, FillOrigin::kDemand, 0);
  mshr.allocate(2, 0, 150, FillOrigin::kDemand, 0);
  mshr.allocate(3, 0, 500, FillOrigin::kDemand, 0);
  const auto done = mshr.drain_completed(320);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].line, 2u);
  EXPECT_EQ(done[1].line, 1u);
  EXPECT_EQ(mshr.size(), 1u);
  EXPECT_EQ(mshr.find(3)->line, 3u);
}

TEST(MshrTest, DrainAtExactFillTimeCompletes) {
  MshrFile mshr(2);
  mshr.allocate(7, 0, 100, FillOrigin::kDemand, 0);
  EXPECT_TRUE(mshr.drain_completed(99).empty());
  EXPECT_EQ(mshr.drain_completed(100).size(), 1u);
}

TEST(MshrTest, PeakOccupancyTracked) {
  MshrFile mshr(4);
  mshr.allocate(1, 0, 10, FillOrigin::kDemand, 0);
  mshr.allocate(2, 0, 10, FillOrigin::kDemand, 0);
  mshr.allocate(3, 0, 10, FillOrigin::kDemand, 0);
  mshr.drain_completed(10);
  mshr.allocate(4, 11, 20, FillOrigin::kDemand, 0);
  EXPECT_EQ(mshr.stats().peak_occupancy, 3u);
}

TEST(MshrTest, CapacityFreesAfterDrain) {
  MshrFile mshr(1);
  mshr.allocate(1, 0, 10, FillOrigin::kDemand, 0);
  EXPECT_TRUE(mshr.full());
  mshr.drain_completed(10);
  EXPECT_FALSE(mshr.full());
  EXPECT_NE(mshr.allocate(2, 11, 20, FillOrigin::kDemand, 0), nullptr);
}

TEST(MshrDeathTest, MergeIntoMissingEntryAborts) {
  MshrFile mshr(2);
  EXPECT_DEATH(mshr.merge(99, true), "missing MSHR entry");
}

}  // namespace
}  // namespace spf
