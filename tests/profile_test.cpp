// Unit tests for the profiling layer: Set Affinity (paper Fig. 3), burst
// sampling, phase detection, CALR estimation, invocation-aware analysis.
#include <gtest/gtest.h>

#include "spf/common/rng.hpp"
#include "spf/profile/calr.hpp"
#include "spf/profile/invocations.hpp"
#include "spf/profile/phase.hpp"
#include "spf/profile/sampling.hpp"
#include "spf/profile/set_affinity.hpp"

namespace spf {
namespace {

// 8 sets x 2 ways of 64B lines.
CacheGeometry tiny() { return CacheGeometry(1024, 2, 64); }

Addr addr_in_set(std::uint64_t set, std::uint64_t tag) {
  return (set + 8 * tag) * 64;
}

TEST(SetAffinityTest, RecordsIterationCountAtSaturation) {
  SetAffinityAnalyzer analyzer(tiny());
  // Set 3 receives its 1st distinct block at iter 0, 2nd (== ways) at iter 4.
  analyzer.observe(addr_in_set(3, 0), 0);
  analyzer.observe(addr_in_set(3, 0), 2);  // repeat: no new block
  analyzer.observe(addr_in_set(3, 1), 4);  // saturates here
  const SetAffinityResult r = analyzer.finish();
  ASSERT_EQ(r.per_set.size(), 1u);
  EXPECT_EQ(r.per_set.at(3), 5u);  // iteration count is 1-based
  EXPECT_EQ(r.min_sa(), 5u);
  EXPECT_EQ(r.max_sa(), 5u);
  EXPECT_EQ(r.touched_sets, 1u);
}

TEST(SetAffinityTest, UnsaturatedSetsProduceNoSamples) {
  SetAffinityAnalyzer analyzer(tiny());
  analyzer.observe(addr_in_set(1, 0), 0);
  analyzer.observe(addr_in_set(2, 0), 1);
  const SetAffinityResult r = analyzer.finish();
  EXPECT_FALSE(r.any_saturated());
  EXPECT_EQ(r.touched_sets, 2u);
}

TEST(SetAffinityTest, FirstSaturationModeRecordsOncePerSet) {
  SetAffinityAnalyzer analyzer(tiny(), SetAffinityMode::kFirstSaturation);
  for (std::uint32_t tag = 0; tag < 10; ++tag) {
    analyzer.observe(addr_in_set(0, tag), tag);
  }
  const SetAffinityResult r = analyzer.finish();
  EXPECT_EQ(r.samples.size(), 1u);
  EXPECT_EQ(r.per_set.at(0), 2u);  // saturated at the 2nd distinct block
}

TEST(SetAffinityTest, RecurrentModeMeasuresOngoingRate) {
  SetAffinityAnalyzer analyzer(tiny(), SetAffinityMode::kRecurrent);
  // One new block to set 0 every iteration: window restarts after each
  // saturation, so samples are the per-window distances.
  for (std::uint32_t tag = 0; tag < 8; ++tag) {
    analyzer.observe(addr_in_set(0, tag), tag);
  }
  const SetAffinityResult r = analyzer.finish();
  ASSERT_EQ(r.samples.size(), 4u);  // 8 blocks / 2 ways
  EXPECT_EQ(r.samples[0], 2u);
  EXPECT_EQ(r.samples[1], 2u);  // re-based to the window start
}

TEST(SetAffinityTest, DistributionQuantiles) {
  SetAffinityAnalyzer analyzer(tiny());
  // Set s saturates at iteration s+2 (two distinct blocks at iters 0, s+1).
  for (std::uint64_t s = 0; s < 8; ++s) {
    analyzer.observe(addr_in_set(s, 0), 0);
    analyzer.observe(addr_in_set(s, 1), static_cast<std::uint32_t>(s) + 1);
  }
  SetAffinityResult r = analyzer.finish();
  EXPECT_EQ(r.min_sa(), 2u);
  EXPECT_EQ(r.max_sa(), 9u);
  EXPECT_NEAR(r.quantile(0.5), 5.0, 1.01);
  EXPECT_FALSE(r.to_string().empty());
}

TEST(SetAffinityTest, AnalyzeTraceConvenience) {
  TraceBuffer t;
  t.emit(addr_in_set(0, 0), 0, AccessKind::kRead, 0);
  t.emit(addr_in_set(0, 1), 3, AccessKind::kRead, 0);
  const SetAffinityResult r = SetAffinityAnalyzer::analyze(t, tiny());
  EXPECT_EQ(r.per_set.at(0), 4u);
  EXPECT_EQ(r.accesses, 2u);
}

TEST(BurstSamplingTest, KeepsBurstsSkipsIntervals) {
  TraceBuffer t;
  for (std::uint32_t it = 0; it < 100; ++it) {
    t.emit(it * 64, it, AccessKind::kRead, 0);
  }
  BurstConfig cfg;
  cfg.burst_iters = 10;
  cfg.interval_iters = 40;  // period 50: bursts at [0,10) and [50,60)
  const auto bursts = burst_sample(t, cfg);
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_EQ(bursts[0].first_outer_iter, 0u);
  EXPECT_EQ(bursts[0].records.size(), 10u);
  EXPECT_EQ(bursts[1].first_outer_iter, 50u);
  EXPECT_EQ(bursts[1].records.size(), 10u);
  // Records are re-based within the burst.
  EXPECT_EQ(bursts[1].records[0].outer_iter, 0u);
  EXPECT_NEAR(sampled_fraction(t, bursts), 0.2, 1e-9);
}

TEST(BurstSamplingTest, EmptyTraceYieldsNoBursts) {
  EXPECT_TRUE(burst_sample(TraceBuffer{}, BurstConfig{}).empty());
}

TEST(BurstSamplingTest, WholeTraceWhenIntervalZero) {
  TraceBuffer t;
  for (std::uint32_t it = 0; it < 30; ++it) {
    t.emit(it * 64, it, AccessKind::kRead, 0);
  }
  BurstConfig cfg;
  cfg.burst_iters = 10;
  cfg.interval_iters = 0;
  const auto bursts = burst_sample(t, cfg);
  EXPECT_EQ(bursts.size(), 3u);
  EXPECT_NEAR(sampled_fraction(t, bursts), 1.0, 1e-9);
}

TEST(PhaseDetectionTest, UniformStreamIsOnePhase) {
  TraceBuffer t;
  Xoshiro256 rng(3);
  for (std::uint32_t i = 0; i < 40000; ++i) {
    t.emit(rng.below(1 << 16), i / 100, AccessKind::kRead, 0);
  }
  const PhaseReport report = detect_phases(t, tiny());
  EXPECT_TRUE(report.is_stable());
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_EQ(report.phases[0].begin_record, 0u);
  EXPECT_EQ(report.phases[0].end_record, t.size());
}

TEST(PhaseDetectionTest, DisjointFootprintsSplitPhases) {
  TraceBuffer t;
  Xoshiro256 rng(4);
  // Phase A: low addresses; phase B: high addresses; back to A.
  auto emit_region = [&](Addr base, std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      t.emit(base + rng.below(1 << 14), 0, AccessKind::kRead, 0);
    }
  };
  emit_region(0, 20000);
  emit_region(1 << 24, 20000);
  emit_region(0, 20000);
  // Window length divides the region length so no window straddles a
  // boundary (a straddling window legitimately reads as a third, mixed
  // phase).
  PhaseConfig cfg;
  cfg.window_records = 10000;
  const PhaseReport report = detect_phases(t, tiny(), cfg);
  EXPECT_EQ(report.distinct_phases, 2u);
  ASSERT_EQ(report.phases.size(), 3u);
  EXPECT_EQ(report.phases[0].phase_id, report.phases[2].phase_id);
  EXPECT_NE(report.phases[0].phase_id, report.phases[1].phase_id);
}

TEST(PhaseDetectionTest, EmptyTrace) {
  const PhaseReport report = detect_phases(TraceBuffer{}, tiny());
  EXPECT_TRUE(report.phases.empty());
  EXPECT_EQ(report.distinct_phases, 0u);
}

TEST(CalrTest, ComputeHeavyLoopHasHighCalr) {
  TraceBuffer t;
  // Every access hits the same line after the first -> cheap accesses, big
  // gaps.
  for (std::uint32_t i = 0; i < 1000; ++i) {
    t.emit(0, i, AccessKind::kRead, 0, 0, 500);
  }
  const CalrEstimate est = estimate_calr(t, CalrConfig{});
  EXPECT_GT(est.calr, 10.0);
  EXPECT_EQ(est.l1_hits, 999u);
}

TEST(CalrTest, PointerChaseHasLowCalr) {
  TraceBuffer t;
  Xoshiro256 rng(5);
  for (std::uint32_t i = 0; i < 20000; ++i) {
    // 64 MB footprint: misses dominate.
    t.emit(rng.below(1 << 26), i, AccessKind::kRead, 0, 0, 1);
  }
  const CalrEstimate est = estimate_calr(t, CalrConfig{});
  EXPECT_LT(est.calr, 0.1);
  EXPECT_GT(est.l2_misses, 10000u);
  EXPECT_FALSE(est.to_string().empty());
}

TEST(CalrTest, PrefetchRecordsExcludedFromAccessCost) {
  TraceBuffer demand;
  TraceBuffer with_pf;
  for (std::uint32_t i = 0; i < 100; ++i) {
    demand.emit(i * 4096, i, AccessKind::kRead, 0, 0, 10);
    with_pf.emit(i * 4096, i, AccessKind::kRead, 0, 0, 10);
    with_pf.emit((i + 1000) * 4096, i, AccessKind::kPrefetch, 0);
  }
  const CalrEstimate a = estimate_calr(demand, CalrConfig{});
  const CalrEstimate b = estimate_calr(with_pf, CalrConfig{});
  EXPECT_EQ(a.access_cycles, b.access_cycles);
}

TEST(InvocationsTest, PerInvocationRebasing) {
  // Two invocations of 10 iterations each; in each, set 0 saturates at local
  // iteration 5 — cumulative analysis would report 5 then nothing.
  TraceBuffer t;
  for (std::uint32_t inv = 0; inv < 2; ++inv) {
    const std::uint32_t base = inv * 10;
    t.emit(addr_in_set(0, 2 * inv), base + 0, AccessKind::kRead, 0);
    t.emit(addr_in_set(0, 2 * inv + 1), base + 4, AccessKind::kRead, 0);
  }
  const WorkloadSaResult r = analyze_workload_sa(t, {0, 10}, tiny());
  EXPECT_FALSE(r.cumulative_fallback);
  EXPECT_EQ(r.invocations_analyzed, 2u);
  ASSERT_EQ(r.merged.samples.size(), 2u);
  EXPECT_EQ(r.merged.samples[0], 5u);
  EXPECT_EQ(r.merged.samples[1], 5u);  // re-based, not 15
}

TEST(InvocationsTest, CumulativeFallbackWhenCallsTooShort) {
  // Each invocation touches one distinct block per set: never saturates
  // within a call, but does across calls.
  TraceBuffer t;
  for (std::uint32_t inv = 0; inv < 4; ++inv) {
    t.emit(addr_in_set(0, inv), inv, AccessKind::kRead, 0);
  }
  const WorkloadSaResult r = analyze_workload_sa(t, {0, 1, 2, 3}, tiny());
  EXPECT_TRUE(r.cumulative_fallback);
  EXPECT_TRUE(r.merged.any_saturated());
  EXPECT_EQ(r.merged.min_sa(), 2u);
}

TEST(InvocationsDeathTest, StartsMustBeginAtZero) {
  TraceBuffer t;
  t.emit(0, 0, AccessKind::kRead, 0);
  EXPECT_DEATH((void)analyze_workload_sa(t, {5}, tiny()), "iteration 0");
}

}  // namespace
}  // namespace spf
