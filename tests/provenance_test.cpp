// Prefetch-lifecycle provenance: tracker unit tests, the observer-effect
// differential (provenance on must not change a byte of the pinned golden
// artifacts), and the lifecycle accounting properties on real runs.
//
// The differential reuses the checked-in pinned-grid goldens
// (tests/golden/pinned_sweep.{csv,jsonl}): with provenance ON the CSV must
// still match byte-for-byte (the table never carries provenance), and each
// JSONL row must extend the golden row purely by appending prov_* fields —
// the off-row minus its closing brace is a byte prefix of the on-row.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pinned_golden_spec.hpp"
#include "spf/mem/geometry.hpp"
#include "spf/orchestrate/sweep.hpp"
#include "spf/sim/pollution.hpp"
#include "spf/sim/provenance.hpp"

#ifndef SPF_GOLDEN_DIR
#error "SPF_GOLDEN_DIR must point at tests/golden"
#endif

namespace spf {
namespace {

Eviction make_eviction(LineAddr victim_line, FillOrigin victim_origin,
                       bool victim_used, std::uint32_t slot,
                       FillOrigin evictor_origin) {
  Eviction ev;
  ev.victim.line = victim_line;
  ev.victim.valid = true;
  ev.victim.origin = victim_origin;
  ev.victim.used_since_fill = victim_used;
  ev.replaced_by = victim_line + 10000;  // evictor line identity is untracked
  ev.replaced_by_origin = evictor_origin;
  ev.slot = slot;
  return ev;
}

/// Wires a PollutionTracker and ProvenanceTracker together the way the
/// simulator's drain loop does: displacement metadata rides the pollution
/// shadow as a ShadowAux sidecar, handed back on the confirming demand miss.
struct LifecycleHarness {
  PollutionTracker pollution;
  ProvenanceTracker prov;

  LifecycleHarness()
      : pollution(64, CacheGeometry(64 * 1024, 8, 64)), prov(1024) {
    pollution.enable_shadow_aux();
  }

  void evict(const Eviction& ev) {
    pollution.on_eviction(ev, prov.eviction_aux(ev.slot));
    prov.on_evicted_record(ev.slot);
  }

  bool demand_miss(LineAddr line) {
    ShadowAux aux;
    if (!pollution.on_demand_miss(line, &aux)) return false;
    prov.on_confirmed_reuse(aux);
    return true;
  }
};

ProvenanceSummary snap(const ProvenanceTracker& t) {
  return t.snapshot({});
}

void expect_partition(const ProvenanceSummary& s) {
  EXPECT_EQ(s.fate_total(), s.tracked_fills)
      << "the five fates must partition the tracked fills";
  EXPECT_EQ(s.helper_fills + s.hardware_fills, s.tracked_fills);
}

TEST(ProvenanceSummaryTest, BucketOfIsLog2WithSaturation) {
  EXPECT_EQ(ProvenanceSummary::bucket_of(0), 0u);
  EXPECT_EQ(ProvenanceSummary::bucket_of(1), 1u);
  EXPECT_EQ(ProvenanceSummary::bucket_of(2), 2u);
  EXPECT_EQ(ProvenanceSummary::bucket_of(3), 2u);
  EXPECT_EQ(ProvenanceSummary::bucket_of(4), 3u);
  EXPECT_EQ(ProvenanceSummary::bucket_of(1023), 10u);
  EXPECT_EQ(ProvenanceSummary::bucket_of(1024), 11u);
  // Distances past 2^30 saturate into the last bucket instead of overflowing.
  EXPECT_EQ(ProvenanceSummary::bucket_of(std::uint64_t{1} << 40),
            ProvenanceSummary::kHistogramBuckets - 1);
  EXPECT_EQ(ProvenanceSummary::bucket_of(~std::uint64_t{0}),
            ProvenanceSummary::kHistogramBuckets - 1);
}

TEST(ProvenanceTrackerTest, TimelyUseRecordsFirstUseDistance) {
  ProvenanceTracker t(64);
  // Three demand lookups pass, the prefetch fills, three more lookups, hit.
  for (int i = 0; i < 3; ++i) t.on_demand_lookup();
  t.on_fill(7, FillOrigin::kHelper, /*demand_merged=*/false);
  for (int i = 0; i < 3; ++i) t.on_demand_lookup();
  t.on_demand_hit(7);

  const ProvenanceSummary s = snap(t);
  expect_partition(s);
  EXPECT_EQ(s.tracked_fills, 1u);
  EXPECT_EQ(s.helper_fills, 1u);
  EXPECT_EQ(s.used_timely, 1u);
  EXPECT_EQ(s.fill_to_use_total, 3u);
  EXPECT_EQ(s.fill_to_use[ProvenanceSummary::bucket_of(3)], 1u);
  // Only the first use defines the distance; later hits must not re-bucket.
  t.on_demand_lookup();
  t.on_demand_hit(7);
  const ProvenanceSummary again = snap(t);
  EXPECT_EQ(again.fill_to_use_total, 3u);
  EXPECT_EQ(again.used_timely, 1u);
}

TEST(ProvenanceTrackerTest, DemandMergedFillIsUsedLateImmediately) {
  ProvenanceTracker t(64);
  t.on_fill(9, FillOrigin::kHardware, /*demand_merged=*/true);
  const ProvenanceSummary s = snap(t);
  expect_partition(s);
  EXPECT_EQ(s.tracked_fills, 1u);
  EXPECT_EQ(s.hardware_fills, 1u);
  EXPECT_EQ(s.used_late, 1u);
  // No live record remains: a later "hit" on the line is not a timely use.
  t.on_demand_lookup();
  t.on_demand_hit(9);
  EXPECT_EQ(snap(t).used_timely, 0u);
}

TEST(ProvenanceTrackerTest, DisplacedBeforeUseIsEvictedUnused) {
  ProvenanceTracker t(64);
  t.on_fill(11, FillOrigin::kHelper, false);
  t.on_evicted_record(11);
  const ProvenanceSummary s = snap(t);
  expect_partition(s);
  EXPECT_EQ(s.evicted_unused, 1u);
  EXPECT_EQ(s.used_timely, 0u);
}

TEST(ProvenanceTrackerTest, StillResidentUnusedAtSnapshotTime) {
  ProvenanceTracker t(64);
  t.on_fill(13, FillOrigin::kHardware, false);
  const ProvenanceSummary s = snap(t);
  expect_partition(s);
  EXPECT_EQ(s.resident_unused, 1u);
  // snapshot() is const and provisional: the fill can still earn a better
  // fate afterwards (warm adaptive intervals re-snapshot mid-run).
  t.on_demand_lookup();
  t.on_demand_hit(13);
  const ProvenanceSummary later = snap(t);
  expect_partition(later);
  EXPECT_EQ(later.resident_unused, 0u);
  EXPECT_EQ(later.used_timely, 1u);
}

TEST(ProvenanceTrackerTest, ConfirmedVictimReuseMarksTheFillPolluting) {
  LifecycleHarness h;
  ProvenanceTracker& t = h.prov;
  t.on_demand_lookup();  // clock = 1
  // The fill displaces used demand data (the case-1 raw material). Eviction
  // precedes the fill that causes it — the drain order — and the shadowed
  // aux links forward to the generation the fill is about to receive.
  h.evict(make_eviction(500, FillOrigin::kDemand, /*victim_used=*/true,
                        /*slot=*/17, FillOrigin::kHelper));
  t.on_fill(17, FillOrigin::kHelper, false);
  for (int i = 0; i < 5; ++i) t.on_demand_lookup();
  // ...and the processor comes back for the victim: reuse confirmed.
  EXPECT_TRUE(h.demand_miss(500));

  const ProvenanceSummary s = snap(t);
  expect_partition(s);
  EXPECT_EQ(s.polluting, 1u);
  EXPECT_EQ(s.reuse_confirms, 1u);
  EXPECT_EQ(s.late_pollution_confirms, 0u);
  EXPECT_EQ(s.victim_reuse[ProvenanceSummary::bucket_of(5)], 1u);
  // The aux ride keeps the two trackers in lockstep on case-1 counts.
  EXPECT_EQ(h.pollution.stats().case1_reuse_displaced, s.reuse_confirms);
  // Polluting outranks used_timely: a demand hit after the confirmation
  // must not reclassify the fill.
  t.on_demand_lookup();
  t.on_demand_hit(17);
  const ProvenanceSummary after = snap(t);
  expect_partition(after);
  EXPECT_EQ(after.polluting, 1u);
  EXPECT_EQ(after.used_timely, 0u);
}

TEST(ProvenanceTrackerTest, ConfirmAfterFillResolvedCountsAsLateConfirm) {
  LifecycleHarness h;
  ProvenanceTracker& t = h.prov;
  h.evict(make_eviction(600, FillOrigin::kDemand, true, /*slot=*/19,
                        FillOrigin::kHelper));
  t.on_fill(19, FillOrigin::kHelper, false);
  // The displacing fill itself gets evicted before the victim's reuse shows.
  h.evict(make_eviction(19, FillOrigin::kHelper, false, /*slot=*/19,
                        FillOrigin::kDemand));
  t.on_demand_lookup();
  EXPECT_TRUE(h.demand_miss(600));

  const ProvenanceSummary s = snap(t);
  expect_partition(s);
  EXPECT_EQ(s.evicted_unused, 1u);  // the fill's fate was already sealed
  EXPECT_EQ(s.polluting, 0u);
  EXPECT_EQ(s.reuse_confirms, 1u);  // the victim reuse still counts...
  EXPECT_EQ(s.late_pollution_confirms, 1u);  // ...flagged as late
}

TEST(ProvenanceTrackerTest, RecycledSlotDoesNotAbsorbStaleBlame) {
  LifecycleHarness h;
  ProvenanceTracker& t = h.prov;
  h.evict(make_eviction(800, FillOrigin::kDemand, true, /*slot=*/31,
                        FillOrigin::kHelper));
  t.on_fill(31, FillOrigin::kHelper, false);
  // The displacing fill is itself displaced, and an unrelated prefetch
  // recycles the same cache slot before the victim's reuse shows up.
  h.evict(make_eviction(801, FillOrigin::kHelper, false, /*slot=*/31,
                        FillOrigin::kHardware));
  t.on_fill(31, FillOrigin::kHardware, false);
  t.on_demand_lookup();
  EXPECT_TRUE(h.demand_miss(800));

  const ProvenanceSummary s = snap(t);
  expect_partition(s);
  // The generation check exonerates the new record living at slot 31.
  EXPECT_EQ(s.polluting, 0u);
  EXPECT_EQ(s.late_pollution_confirms, 1u);
  EXPECT_EQ(s.reuse_confirms, 1u);
}

TEST(ProvenanceTrackerTest, DemandEvictionClearsTheVictimShadow) {
  LifecycleHarness h;
  ProvenanceTracker& t = h.prov;
  h.evict(make_eviction(700, FillOrigin::kDemand, true, /*slot=*/23,
                        FillOrigin::kHelper));
  t.on_fill(23, FillOrigin::kHelper, false);
  // The victim line comes back and is displaced again by a *demand* fill:
  // the stale shadow entry (and its aux) dies with it.
  h.evict(make_eviction(700, FillOrigin::kDemand, true, /*slot=*/42,
                        FillOrigin::kDemand));
  EXPECT_FALSE(h.demand_miss(700));
  const ProvenanceSummary s = snap(t);
  EXPECT_EQ(s.reuse_confirms, 0u);
  EXPECT_EQ(s.polluting, 0u);
}

TEST(ProvenanceTrackerTest, ResetReturnsToFreshState) {
  ProvenanceTracker t(64);
  t.on_demand_lookup();
  t.on_fill(29, FillOrigin::kHelper, false);
  t.reset(64);
  EXPECT_EQ(t.demand_lookups(), 0u);
  const ProvenanceSummary s = snap(t);
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.tracked_fills, 0u);
  EXPECT_EQ(s.fate_total(), 0u);
}

TEST(ProvenanceSummaryTest, AddMergesCountersAndHistograms) {
  ProvenanceTracker a(64);
  a.on_fill(1, FillOrigin::kHelper, false);
  a.on_demand_lookup();
  a.on_demand_hit(1);
  ProvenanceTracker b(64);
  b.on_fill(2, FillOrigin::kHardware, true);

  ProvenanceSummary merged = snap(a);
  merged.add(snap(b));
  expect_partition(merged);
  EXPECT_EQ(merged.tracked_fills, 2u);
  EXPECT_EQ(merged.used_timely, 1u);
  EXPECT_EQ(merged.used_late, 1u);

  // Disabled summaries merge as no-ops.
  ProvenanceSummary disabled;
  ProvenanceSummary target = merged;
  target.add(disabled);
  EXPECT_EQ(target.tracked_fills, merged.tracked_fills);
  EXPECT_EQ(target.fate_total(), merged.fate_total());
}

// ---- observer-effect differential against the pinned goldens -------------

std::string golden_path(const char* name) {
  return std::string(SPF_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ProvenanceDifferentialTest, ProvenanceOnLeavesTableBytesUntouched) {
  orchestrate::SweepSpec spec = orchestrate::pinned_golden_spec();
  spec.provenance = true;

  orchestrate::SweepOptions serial;
  serial.threads = 1;
  const orchestrate::SweepResult a = run_sweep(spec, serial);
  ASSERT_EQ(a.cells.size(), 36u);
  ASSERT_EQ(a.failed_count(), 0u);

  orchestrate::SweepOptions parallel;
  parallel.threads = 8;
  const orchestrate::SweepResult b = run_sweep(spec, parallel);
  ASSERT_EQ(b.failed_count(), 0u);

  // Thread count must never leak into the artifacts, provenance or not.
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_jsonl(), b.to_jsonl());

  if (std::getenv("SPF_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "golden regeneration handled by the pinned-grid test";
  }
  // The table carries no provenance columns: byte-identical to the golden.
  EXPECT_EQ(a.to_csv(), read_file(golden_path("pinned_sweep.csv")))
      << "provenance tracking changed the simulated metrics — the observer "
         "must never perturb the run";

  // Each JSONL row extends its golden row purely by appended prov_* fields:
  // the golden row minus its closing brace is a byte prefix of the new row.
  const std::vector<std::string> on_lines = split_lines(a.to_jsonl());
  const std::vector<std::string> golden_lines =
      split_lines(read_file(golden_path("pinned_sweep.jsonl")));
  ASSERT_EQ(on_lines.size(), golden_lines.size());
  for (std::size_t i = 0; i < on_lines.size(); ++i) {
    const std::string& off = golden_lines[i];
    ASSERT_FALSE(off.empty());
    ASSERT_EQ(off.back(), '}');
    const std::string prefix = off.substr(0, off.size() - 1);
    ASSERT_GT(on_lines[i].size(), off.size()) << "row " << i
        << " gained no provenance fields";
    EXPECT_EQ(on_lines[i].compare(0, prefix.size(), prefix), 0)
        << "row " << i << " diverged before the provenance suffix";
    EXPECT_EQ(on_lines[i][prefix.size()], ',');
    EXPECT_NE(on_lines[i].find("\"prov_tracked_fills\":"), std::string::npos);
    EXPECT_EQ(on_lines[i].back(), '}');
  }
}

// ---- lifecycle accounting properties on real runs ------------------------

TEST(ProvenancePropertyTest, AccountingInvariantsHoldAcrossThePinnedGrid) {
  orchestrate::SweepSpec spec = orchestrate::pinned_golden_spec();
  spec.provenance = true;
  orchestrate::SweepOptions opts;
  opts.threads = 8;
  const orchestrate::SweepResult result = run_sweep(spec, opts);
  ASSERT_EQ(result.failed_count(), 0u);

  std::uint64_t total_tracked = 0;
  for (const auto& c : result.cells) {
    ASSERT_TRUE(c.cmp.has_value());
    const ProvenanceSummary& p = c.cmp->sp.provenance;
    ASSERT_TRUE(p.enabled) << "SweepSpec::provenance must reach every cell";
    total_tracked += p.tracked_fills;

    // The five fates partition the tracked fills; origins partition them too.
    EXPECT_EQ(p.fate_total(), p.tracked_fills);
    EXPECT_EQ(p.helper_fills + p.hardware_fills, p.tracked_fills);

    // Histogram masses equal their counters.
    std::uint64_t fill_mass = 0, reuse_mass = 0, heat_mass = 0;
    for (std::size_t b = 0; b < ProvenanceSummary::kHistogramBuckets; ++b) {
      fill_mass += p.fill_to_use[b];
      reuse_mass += p.victim_reuse[b];
      heat_mass += p.set_heatmap[b];
    }
    EXPECT_EQ(fill_mass, p.used_timely);
    EXPECT_EQ(reuse_mass, p.reuse_confirms);
    EXPECT_EQ(heat_mass, p.polluted_sets);

    // The victim shadow mirrors PollutionTracker operation-for-operation,
    // so confirmed reuses equal the paper's case-1 count exactly.
    EXPECT_EQ(p.reuse_confirms,
              c.cmp->sp.pollution.case1_reuse_displaced)
        << "victim-shadow drift: provenance and pollution disagree on "
           "confirmed displaced-reuse events";

    // Derived quantities stay consistent.
    EXPECT_GE(p.timely_rate(), 0.0);
    EXPECT_LE(p.timely_rate(), 1.0);
    if (p.used_timely == 0) {
      EXPECT_EQ(p.fill_to_use_total, 0u);
    }
  }
  // The grid prefetches: a provenance layer that tracked nothing anywhere
  // would pass every per-cell invariant vacuously.
  EXPECT_GT(total_tracked, 0u);
}

TEST(ProvenancePropertyTest, DisabledRunsCarryNoProvenance) {
  orchestrate::SweepSpec spec = orchestrate::pinned_golden_spec();
  ASSERT_FALSE(spec.provenance);  // default off
  orchestrate::SweepOptions opts;
  opts.threads = 8;
  const orchestrate::SweepResult result = run_sweep(spec, opts);
  ASSERT_EQ(result.failed_count(), 0u);
  for (const auto& c : result.cells) {
    ASSERT_TRUE(c.cmp.has_value());
    EXPECT_FALSE(c.cmp->sp.provenance.enabled);
    EXPECT_EQ(c.cmp->sp.provenance.tracked_fills, 0u);
  }
}

}  // namespace
}  // namespace spf
