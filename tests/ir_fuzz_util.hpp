// Shared random-program generator for fuzz-style tests: ir_fuzz_test.cpp
// checks interpreter invariants over it, replay_differential_test.cpp feeds
// its traces through both simulator replay engines.
#pragma once

#include <cstdint>
#include <vector>

#include "spf/common/rng.hpp"
#include "spf/ir/ir.hpp"
#include "spf/ir/vm.hpp"

namespace spf::ir {

/// Generates a random well-formed program: arithmetic over previous values,
/// loads at (masked) computed addresses, occasional stores, at most one
/// inner loop with a bounded trip constant, and a register-carried pointer
/// chased through a pre-seeded ring.
inline Program random_program(std::uint64_t seed, VirtualMemory& vm) {
  Xoshiro256 rng(seed);
  ProgramBuilder b(static_cast<std::uint32_t>(8 + rng.below(64)));

  // Seed a pointer ring so register chases stay inside a known region.
  constexpr Addr kRing = 0x100000;
  constexpr std::uint64_t kRingNodes = 32;
  for (std::uint64_t i = 0; i < kRingNodes; ++i) {
    vm.write(kRing + i * 64, kRing + ((i + 1) % kRingNodes) * 64);
  }

  std::vector<std::int32_t> values;  // ids usable as operands (current scope)
  values.push_back(b.constant(kRing));
  values.push_back(b.constant(0xffff8));  // address mask (keeps addrs sane)
  values.push_back(b.iter_index());
  const std::int32_t mask = values[1];

  auto any_value = [&]() {
    return values[rng.below(values.size())];
  };
  auto masked_addr = [&]() {
    // (v & mask) + ring base: valid, bounded addresses.
    return b.add(b.band(any_value(), mask), values[0]);
  };

  // Spine chase through the ring.
  const auto cur = b.reg_read(0);
  values.push_back(cur);
  const auto next = b.load(cur, 1, kFlagSpine);
  values.push_back(next);
  b.reg_write(0, next);

  const std::uint64_t instrs = 4 + rng.below(20);
  bool in_loop = false;
  std::size_t loop_values_mark = 0;
  for (std::uint64_t k = 0; k < instrs; ++k) {
    switch (rng.below(in_loop ? 6 : 7)) {
      case 0:
        values.push_back(b.add(any_value(), any_value()));
        break;
      case 1:
        values.push_back(b.mul(any_value(), any_value()));
        break;
      case 2:
        values.push_back(b.shl(any_value(), rng.below(4)));
        break;
      case 3:
        values.push_back(b.load(masked_addr(), 2,
                                rng.below(2) ? kFlagDelinquent : TraceFlags{0},
                                static_cast<std::uint16_t>(rng.below(4))));
        break;
      case 4:
        b.store(masked_addr(), any_value(), 3);
        break;
      case 5:
        if (in_loop) {
          b.loop_end();
          in_loop = false;
          values.resize(loop_values_mark);  // in-loop values out of scope
        } else {
          values.push_back(b.inner_index());
        }
        break;
      case 6: {
        const auto trip = b.constant(1 + rng.below(5));
        values.push_back(trip);
        b.loop_begin(trip);
        in_loop = true;
        loop_values_mark = values.size();
        values.push_back(b.inner_index());
        break;
      }
    }
  }
  if (in_loop) b.loop_end();
  // Guarantee at least one delinquent load so slicing has a seed.
  b.load(masked_addr(), 4, kFlagDelinquent);

  Program p = b.take();
  p.reg_init = {kRing};
  return p;
}

}  // namespace spf::ir
