// Shared scaffolding for the reproduction harnesses.
//
// Every bench binary runs argument-free at a CI-friendly scale and accepts:
//   --scale=paper      full-size inputs (paper Table II)
//   --l2=<bytes>       shared L2 size (default 1 MiB at CI scale, 4 MiB at
//                      paper scale)
//   --assoc=<ways>     L2 associativity (default 16)
//   --line=<bytes>     L2 line size (default 64)
//   --threads=<n>      parallel sweep fan-out via spf::orchestrate
//                      (default 0 = hardware concurrency; 1 = legacy serial)
//   --csv              emit CSV instead of the aligned table
#pragma once

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "spf/common/cli.hpp"
#include "spf/common/csv.hpp"
#include "spf/core/distance_bound.hpp"
#include "spf/core/experiment.hpp"
#include "spf/orchestrate/pool.hpp"
#include "spf/profile/calr.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/mcf.hpp"
#include "spf/workloads/mst.hpp"

namespace spf::bench {

struct Scale {
  bool paper = false;
  CacheGeometry l2 = CacheGeometry(1 << 20, 16, 64);
  bool csv = false;
  /// Fan-out for orchestrated sweeps: 0 = hardware concurrency, 1 = the
  /// legacy serial path (bit-identical output either way).
  unsigned threads = 0;
};

inline Scale parse_scale(const CliFlags& flags) {
  Scale s;
  s.paper = flags.get("scale", "ci") == "paper";
  const auto l2_bytes = static_cast<std::uint64_t>(
      flags.get_int("l2", s.paper ? (4 << 20) : (1 << 20)));
  const auto assoc = static_cast<std::uint32_t>(flags.get_int("assoc", 16));
  const auto line = static_cast<std::uint32_t>(flags.get_int("line", 64));
  s.l2 = CacheGeometry(l2_bytes, assoc, line);
  s.csv = flags.get_bool("csv", false);
  s.threads = static_cast<unsigned>(flags.get_int("threads", 0));
  return s;
}

inline void fail_on_unknown_flags(const CliFlags& flags) {
  const auto unknown = flags.unconsumed();
  if (!unknown.empty()) {
    std::cerr << "unknown flags:";
    for (const auto& f : unknown) std::cerr << " --" << f;
    std::cerr << "\n";
    std::exit(2);
  }
}

inline void emit(const Table& table, const Scale& scale) {
  if (scale.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

// Workload configurations at the two scales. CI configs preserve the paper's
// qualitative Set Affinity ordering (EM3D << MST <= MCF) against the chosen
// L2 (see DESIGN.md §5).
inline Em3dConfig em3d_config(const Scale& s) {
  if (s.paper) return Em3dConfig::paper_scale();
  Em3dConfig c;
  c.nodes = 20000;
  c.arity = 64;
  c.passes = 1;
  return c;
}

inline McfConfig mcf_config(const Scale& s) {
  if (s.paper) return McfConfig::paper_scale();
  McfConfig c;
  c.nodes = 8000;
  c.arcs = 48000;
  c.passes = 3;
  return c;
}

inline MstConfig mst_config(const Scale& s) {
  if (s.paper) return MstConfig::paper_scale();
  MstConfig c;
  c.vertices = 1200;
  c.degree = 64;
  c.buckets = 128;
  return c;
}

struct SweepPoint {
  std::uint32_t distance = 0;
  SpComparison cmp;
};

/// Runs one baseline and one SP run per distance (shared baseline). The SP
/// runs fan out over scale.threads workers via spf::orchestrate; points come
/// back in `distances` order regardless of completion order, so the emitted
/// tables are byte-identical at any thread count. Throws std::runtime_error
/// if any run fails.
inline std::vector<SweepPoint> distance_sweep(
    const TraceBuffer& trace, const std::vector<std::uint32_t>& distances,
    const Scale& scale, double rp = 0.5) {
  SpExperimentConfig cfg;
  cfg.sim.l2 = scale.l2;
  const SpRunSummary baseline = run_original(trace, cfg);
  std::vector<SweepPoint> points(distances.size());
  const auto outcomes = orchestrate::run_indexed(
      distances.size(), scale.threads,
      [&](std::size_t i) {
        SpExperimentConfig job_cfg = cfg;
        job_cfg.params = SpParams::from_distance_rp(distances[i], rp);
        points[i].distance = distances[i];
        points[i].cmp.original = baseline;
        points[i].cmp.sp = run_sp_once(trace, job_cfg);
      },
      orchestrate::stderr_progress("  sweep"));
  const std::string error = orchestrate::first_error(outcomes);
  if (!error.empty()) throw std::runtime_error("distance sweep: " + error);
  return points;
}

/// Distances spanning both sides of the pollution bound, paper-figure style.
inline std::vector<std::uint32_t> distances_around(std::uint32_t bound) {
  std::vector<std::uint32_t> d;
  for (double f : {0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 8.0}) {
    const auto v = static_cast<std::uint32_t>(f * bound);
    if (v >= 1 && (d.empty() || v != d.back())) d.push_back(v);
  }
  return d;
}

}  // namespace spf::bench
