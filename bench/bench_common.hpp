// Shared scaffolding for the reproduction harnesses.
//
// Every bench binary runs argument-free at a CI-friendly scale and accepts:
//   --scale=paper      full-size inputs (paper Table II)
//   --l2=<bytes>       shared L2 size (default 1 MiB at CI scale, 4 MiB at
//                      paper scale)
//   --assoc=<ways>     L2 associativity (default 16)
//   --line=<bytes>     L2 line size (default 64)
//   --threads=<n>      parallel sweep fan-out via spf::orchestrate
//                      (default 0 = hardware concurrency; 1 = legacy serial)
//   --csv              emit CSV instead of the aligned table
//
// Drivers that construct a bench::TelemetrySink additionally accept:
//   --metrics-out=PATH deterministic JSONL metrics dump (spf::telemetry)
//   --trace-out=PATH   Chrome trace-event / Perfetto timeline with one lane
//                      per sweep worker (open in chrome://tracing or
//                      https://ui.perfetto.dev; see docs/telemetry.md)
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "spf/common/cli.hpp"
#include "spf/common/csv.hpp"
#include "spf/core/distance_bound.hpp"
#include "spf/core/experiment.hpp"
#include "spf/core/experiment_context.hpp"
#include "spf/orchestrate/pool.hpp"
#include "spf/profile/calr.hpp"
#include "spf/telemetry/telemetry.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/mcf.hpp"
#include "spf/workloads/mst.hpp"

namespace spf::bench {

struct Scale {
  bool paper = false;
  CacheGeometry l2 = CacheGeometry(1 << 20, 16, 64);
  bool csv = false;
  /// Fan-out for orchestrated sweeps: 0 = hardware concurrency, 1 = the
  /// legacy serial path (bit-identical output either way).
  unsigned threads = 0;
};

// ---- strict flag parsing ---------------------------------------------
//
// Every driver shares these: a malformed numeric value ("abc", "4x",
// overflow, negative where unsigned is expected) is a usage error — exit 2
// with a message — instead of silently parsing as 0 (CliFlags::get_int) or
// throwing an unhandled std::invalid_argument.

/// Exits 2 with `msg` plus the common-flag usage line.
[[noreturn]] inline void usage_error(const std::string& msg) {
  std::cerr << msg
            << "\nusage: common flags are --scale=ci|paper --l2=<bytes> "
               "--assoc=<ways> --line=<bytes> --threads=<n> --csv "
               "--metrics-out=<path> --trace-out=<path> "
               "(see the header comment of each driver for its own flags)\n";
  std::exit(2);
}

/// Whole-token unsigned parse; rejects sign, trailing junk, and overflow.
inline bool parse_u64(const std::string& s, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0' || s[0] == '-') {
    return false;
  }
  out = v;
  return true;
}

inline bool parse_u32(const std::string& s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > std::numeric_limits<std::uint32_t>::max()) {
    return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

/// Whole-token double parse; rejects trailing junk and out-of-range values.
inline bool parse_double(const std::string& s, double& out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

/// Strict accessor: `--name=<unsigned>` or the default; usage error otherwise.
inline std::uint64_t require_uint(const CliFlags& flags, const std::string& name,
                                  std::uint64_t def) {
  const std::string raw = flags.get(name, "");
  if (raw.empty() && !flags.has(name)) return def;
  std::uint64_t v = 0;
  if (!parse_u64(raw, v)) {
    usage_error("bad --" + name + " value '" + raw + "' (want unsigned int)");
  }
  return v;
}

/// Strict accessor: `--name=<number>` or the default; usage error otherwise.
inline double require_double(const CliFlags& flags, const std::string& name,
                             double def) {
  const std::string raw = flags.get(name, "");
  if (raw.empty() && !flags.has(name)) return def;
  double v = 0.0;
  if (!parse_double(raw, v)) {
    usage_error("bad --" + name + " value '" + raw + "' (want number)");
  }
  return v;
}

/// Strict accessor: bare `--name`, `--name=<bool>`, or the default.
/// CliFlags::get_bool maps any unrecognized value to false; here a typo
/// ("--phase-bounds=ture") is a usage error instead of a silent default.
inline bool require_bool(const CliFlags& flags, const std::string& name,
                         bool def) {
  if (!flags.has(name)) return def;
  const std::string raw = flags.get(name, "");
  if (raw.empty() || raw == "true" || raw == "1" || raw == "yes" ||
      raw == "on") {
    return true;
  }
  if (raw == "false" || raw == "0" || raw == "no" || raw == "off") {
    return false;
  }
  usage_error("bad --" + name + " value '" + raw + "' (want true|false)");
}

inline Scale parse_scale(const CliFlags& flags) {
  Scale s;
  const std::string scale_name = flags.get("scale", "ci");
  if (scale_name != "ci" && scale_name != "paper") {
    usage_error("bad --scale value '" + scale_name + "' (want ci|paper)");
  }
  s.paper = scale_name == "paper";
  const std::uint64_t l2_bytes =
      require_uint(flags, "l2", s.paper ? (4u << 20) : (1u << 20));
  const auto assoc = static_cast<std::uint32_t>(require_uint(flags, "assoc", 16));
  const auto line = static_cast<std::uint32_t>(require_uint(flags, "line", 64));
  try {
    s.l2 = CacheGeometry(l2_bytes, assoc, line);
  } catch (const std::exception& e) {
    usage_error(std::string("bad L2 geometry: ") + e.what());
  }
  s.csv = flags.get_bool("csv", false);
  s.threads = static_cast<unsigned>(require_uint(flags, "threads", 0));
  return s;
}

inline void fail_on_unknown_flags(const CliFlags& flags) {
  const auto unknown = flags.unconsumed();
  if (!unknown.empty()) {
    std::cerr << "unknown flags:";
    for (const auto& f : unknown) std::cerr << " --" << f;
    std::cerr << "\n";
    std::exit(2);
  }
  // No driver takes positional arguments; a stray one is almost always a
  // flag typed with a space instead of '=' (e.g. `--out FILE`), and silently
  // ignoring it means the flag silently kept its default.
  if (!flags.positional().empty()) {
    std::cerr << "unexpected positional arguments:";
    for (const auto& p : flags.positional()) std::cerr << " " << p;
    std::cerr << " (flags take the form --name=value)\n";
    std::exit(2);
  }
}

inline void emit(const Table& table, const Scale& scale) {
  if (scale.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

// Workload configurations at the two scales. CI configs preserve the paper's
// qualitative Set Affinity ordering (EM3D << MST <= MCF) against the chosen
// L2 (see DESIGN.md §5).
inline Em3dConfig em3d_config(const Scale& s) {
  if (s.paper) return Em3dConfig::paper_scale();
  Em3dConfig c;
  c.nodes = 20000;
  c.arity = 64;
  c.passes = 1;
  return c;
}

/// Late-tight-phase em3d (Em3dConfig::prelude_arity): quiet reduced-arity
/// prelude passes, then the full-arity pressured pass LAST — the phase
/// ordering where per-phase Set-Affinity capping can beat the whole-run cap
/// (the whole-run bound throttles the quiet prelude too; see
/// docs/method.md "Per-phase Set Affinity").
inline Em3dConfig em3d_late_config(const Scale& s) {
  Em3dConfig c = em3d_config(s);
  c.passes = 2;
  c.prelude_arity = s.paper ? 16 : 8;
  return c;
}

inline McfConfig mcf_config(const Scale& s) {
  if (s.paper) return McfConfig::paper_scale();
  McfConfig c;
  c.nodes = 8000;
  c.arcs = 48000;
  c.passes = 3;
  return c;
}

inline MstConfig mst_config(const Scale& s) {
  if (s.paper) return MstConfig::paper_scale();
  MstConfig c;
  c.vertices = 1200;
  c.degree = 64;
  c.buckets = 128;
  return c;
}

struct SweepPoint {
  std::uint32_t distance = 0;
  SpComparison cmp;
};

/// Runs one baseline and one SP run per distance (shared baseline). The SP
/// runs fan out over scale.threads workers via spf::orchestrate; points come
/// back in `distances` order regardless of completion order, so the emitted
/// tables are byte-identical at any thread count. Throws std::runtime_error
/// if any run fails.
inline std::vector<SweepPoint> distance_sweep(
    const TraceBuffer& trace, const std::vector<std::uint32_t>& distances,
    const Scale& scale, double rp = 0.5) {
  SpExperimentConfig cfg;
  cfg.sim.l2 = scale.l2;
  ExperimentContextPool contexts(orchestrate::resolve_threads(scale.threads));
  const SpRunSummary baseline = contexts.acquire()->run_original(trace, cfg);
  std::vector<SweepPoint> points(distances.size());
  const auto outcomes = orchestrate::run_indexed(
      distances.size(), scale.threads,
      [&](std::size_t i) {
        SpExperimentConfig job_cfg = cfg;
        job_cfg.params = SpParams::from_distance_rp(distances[i], rp);
        points[i].distance = distances[i];
        points[i].cmp.original = baseline;
        points[i].cmp.sp = contexts.acquire()->run_sp_once(trace, job_cfg);
      },
      orchestrate::stderr_progress("  sweep"));
  const std::string error = orchestrate::first_error(outcomes);
  if (!error.empty()) throw std::runtime_error("distance sweep: " + error);
  return points;
}

/// Routes the --metrics-out= / --trace-out= flags: when either is set, owns
/// a telemetry::Session sized one lane per sweep worker (plus the main lane),
/// installs it for the driver's lifetime, and writes the artifacts on flush()
/// / destruction. Construct *before* fail_on_unknown_flags — constructing the
/// sink is what consumes the flags, so drivers that don't build one reject
/// them as unknown (exit 2) instead of silently ignoring a requested
/// artifact. Output files open eagerly: a bad path fails in milliseconds,
/// not after the last sweep cell.
class TelemetrySink {
 public:
  TelemetrySink(const CliFlags& flags, const Scale& scale, std::string process)
      : process_(std::move(process)) {
    metrics_path_ = flags.get("metrics-out", "");
    trace_path_ = flags.get("trace-out", "");
    if (metrics_path_.empty() && trace_path_.empty()) return;
    if (!metrics_path_.empty()) {
      metrics_.open(metrics_path_);
      if (!metrics_) {
        std::cerr << "cannot open " << metrics_path_ << "\n";
        std::exit(1);
      }
    }
    if (!trace_path_.empty()) {
      trace_.open(trace_path_);
      if (!trace_) {
        std::cerr << "cannot open " << trace_path_ << "\n";
        std::exit(1);
      }
    }
    session_ = std::make_unique<telemetry::Session>(
        orchestrate::resolve_threads(scale.threads) + 1);
    previous_ = telemetry::install(session_.get());
  }
  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;
  ~TelemetrySink() { flush(); }

  /// nullptr when neither flag was given (telemetry stays off).
  [[nodiscard]] telemetry::Session* session() noexcept { return session_.get(); }

  /// Uninstalls the session and writes the requested artifacts (idempotent).
  void flush() {
    if (!session_) return;
    telemetry::install(previous_);
    if (metrics_.is_open()) session_->write_metrics_jsonl(metrics_);
    if (trace_.is_open()) session_->write_chrome_trace(trace_, process_);
    session_.reset();
  }

 private:
  std::string process_;
  std::string metrics_path_;
  std::string trace_path_;
  std::ofstream metrics_;
  std::ofstream trace_;
  std::unique_ptr<telemetry::Session> session_;
  telemetry::Session* previous_ = nullptr;
};

/// Distances spanning both sides of the pollution bound, paper-figure style.
inline std::vector<std::uint32_t> distances_around(std::uint32_t bound) {
  std::vector<std::uint32_t> d;
  for (double f : {0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 8.0}) {
    const auto v = static_cast<std::uint32_t>(f * bound);
    if (v >= 1 && (d.empty() || v != d.back())) d.push_back(v);
  }
  return d;
}

}  // namespace spf::bench
