// fig_phase_bound — whole-run vs per-phase Set-Affinity capping ablation.
//
// Runs the (workload × A_SKI × controller) grid through
// spf::orchestrate::run_sweep with the phase-detection axis engaged: every
// plane's Set-Affinity profile is segmented into phases by the incremental
// analyzer (docs/method.md), and the controller axis compares adaptive-capped
// (one whole-run bound clamps the AIMD walk for the entire run) against
// adaptive-phase-capped (the walk is re-clamped to the active phase's bound
// at each interval boundary). The JSONL artifact carries, per adaptive cell,
// the phase-bound schedule, every re-clamp event, and the full distance
// trajectory, so one file answers "when the working set shifts mid-run, does
// per-phase capping cut pollution that the whole-run bound cannot see".
// Artifacts are byte-identical at any --threads value (slot-indexed
// aggregation; see docs/orchestrator.md).
//
// Flags (all optional; argument-free = CI-scale ablation over
// em3d,em3d-late,mcf,mst):
//   --workloads=em3d,em3d-late,mcf,mst  comma list (default all four;
//                                em3d-late is the late-tight-phase fixture —
//                                reduced-arity prelude passes, full-arity
//                                pressured pass last — where per-phase
//                                capping can relax the quiet prelude)
//   --controllers=capped,phase-capped  controller axis (default both; also
//                                accepts static and aimd for context rows)
//   --distances=1,2,4,8          explicit starting A_SKI list (default:
//                                auto ladder around each plane's bound)
//   --rps=0.5                    prefetch ratios (default 0.5)
//   --interval=N                 controller observation interval in outer
//                                iterations (default 1000)
//   --max-distance=N             AIMD ceiling before any bound clamp
//                                (default 1024)
//   --warm                       carry simulator cache/MSHR state across
//                                interval boundaries (default off)
//   --phase-window=N             phase-detection window in outer iterations
//                                (default 64)
//   --phase-hysteresis=X         relative EMA shift that opens a new phase
//                                (default 0.5)
//   --phase-bounds=BOOL          keep phase-capped in the default controller
//                                axis (default true; =false degenerates to a
//                                whole-run-capped-only run for A/B diffing)
//   --jsonl=PATH                 JSONL artifact (- = stdout)
//   --threads=N                  0 = hardware concurrency, 1 = serial
//   --metrics-out= / --trace-out=  telemetry artifacts (affinity.phase spans
//                                + affinity.bound counter track)
//   --scale=paper, --l2=, --assoc=, --line=, --csv  as in every bench binary
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "spf/orchestrate/sweep.hpp"
#include "spf/orchestrate/workload_specs.hpp"

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);

  orchestrate::SweepSpec spec;
  for (const auto& name :
       split(flags.get("workloads", "em3d,em3d-late,mcf,mst"), ',')) {
    if (name == "em3d") {
      spec.workloads.push_back(orchestrate::em3d_spec(bench::em3d_config(scale)));
    } else if (name == "em3d-late") {
      spec.workloads.push_back(orchestrate::em3d_spec(
          bench::em3d_late_config(scale), "em3d-late"));
    } else if (name == "mcf") {
      spec.workloads.push_back(orchestrate::mcf_spec(bench::mcf_config(scale)));
    } else if (name == "mst") {
      spec.workloads.push_back(orchestrate::mst_spec(bench::mst_config(scale)));
    } else {
      std::cerr << "unknown workload '" << name
                << "' (em3d|em3d-late|mcf|mst)\n";
      return 2;
    }
  }
  // --phase-bounds=false drops phase-capped from the *default* axis so the
  // same command line can be A/B-diffed; an explicit --controllers list is
  // taken verbatim either way.
  const bool phase_bounds = bench::require_bool(flags, "phase-bounds", true);
  const std::string default_controllers =
      phase_bounds ? "capped,phase-capped" : "capped";
  spec.controllers.clear();
  for (const auto& c :
       split(flags.get("controllers", default_controllers), ',')) {
    if (c == "static") {
      spec.controllers.push_back(orchestrate::ControllerKind::kStatic);
    } else if (c == "aimd") {
      spec.controllers.push_back(orchestrate::ControllerKind::kAdaptiveAimd);
    } else if (c == "capped") {
      spec.controllers.push_back(orchestrate::ControllerKind::kAdaptiveCapped);
    } else if (c == "phase-capped") {
      spec.controllers.push_back(
          orchestrate::ControllerKind::kAdaptivePhaseCapped);
    } else {
      std::cerr << "unknown controller '" << c
                << "' (static|aimd|capped|phase-capped)\n";
      return 2;
    }
  }
  for (const auto& d : split(flags.get("distances", ""), ',')) {
    std::uint32_t dist = 0;
    if (!bench::parse_u32(d, dist)) {
      std::cerr << "bad --distances value '" << d << "' (want unsigned int)\n";
      return 2;
    }
    spec.distances.push_back(dist);
  }
  spec.rps.clear();
  for (const auto& r : split(flags.get("rps", "0.5"), ',')) {
    double rp = 0.0;
    if (!bench::parse_double(r, rp)) {
      std::cerr << "bad --rps value '" << r << "' (want number)\n";
      return 2;
    }
    spec.rps.push_back(rp);
  }
  spec.geometries = {scale.l2};
  spec.adaptive.interval_iters = static_cast<std::uint32_t>(
      bench::require_uint(flags, "interval", 1000));
  spec.adaptive.max_distance = static_cast<std::uint32_t>(
      bench::require_uint(flags, "max-distance", 1024));
  spec.adaptive.warm_intervals = flags.get_bool("warm", false);
  spec.phase.window_iters = static_cast<std::uint32_t>(
      bench::require_uint(flags, "phase-window", spec.phase.window_iters));
  spec.phase.hysteresis =
      bench::require_double(flags, "phase-hysteresis", spec.phase.hysteresis);
  const std::string jsonl_path = flags.get("jsonl", "");
  // Constructed before the unknown-flag check: the sink consumes
  // --metrics-out=/--trace-out= and installs the telemetry session the sweep
  // (and the per-phase affinity spans) record into.
  bench::TelemetrySink telemetry_sink(flags, scale, "fig_phase_bound");
  bench::fail_on_unknown_flags(flags);

  if (const std::string problem = spec.validate(); !problem.empty()) {
    std::cerr << "invalid sweep: " << problem << "\n";
    return 2;
  }

  // Open the artifact before the (potentially long) sweep so a bad path
  // fails in milliseconds, not after the last cell.
  std::ofstream jsonl_file;
  if (!jsonl_path.empty() && jsonl_path != "-") {
    jsonl_file.open(jsonl_path);
    if (!jsonl_file) {
      std::cerr << "cannot open " << jsonl_path << "\n";
      return 1;
    }
  }

  orchestrate::SweepOptions opts;
  opts.threads = scale.threads;
  opts.progress = orchestrate::stderr_progress("  cells");
  const orchestrate::SweepResult result = orchestrate::run_sweep(spec, opts);

  if (jsonl_path == "-") {
    result.write_jsonl(std::cout);
  } else {
    if (jsonl_file.is_open()) result.write_jsonl(jsonl_file);
    std::cout << "== fig_phase_bound: " << result.cells.size() << " cells ("
              << result.failed_count() << " failed) ==\n\n";
    bench::emit(result.to_table(), scale);
  }
  return result.failed_count() == 0 ? 0 : 1;
}
