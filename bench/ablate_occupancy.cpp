// Ablation: shared-cache occupancy composition vs prefetch distance —
// measuring §III.A's argument directly: "the bigger the prefetch distance,
// the larger the active data set since the prefetched data must be kept
// longer time in shared cache".
#include <iostream>

#include "bench_common.hpp"
#include "spf/sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dWorkload workload(bench::em3d_config(scale));
  const TraceBuffer trace = workload.emit_trace();
  const DistanceBound bound = estimate_distance_bound(
      trace, workload.invocation_starts(), scale.l2);

  std::cout << "== Ablation: L2 occupancy composition vs distance (EM3D) ==\n"
            << "L2 " << scale.l2.to_string() << ", " << bound.to_string()
            << "\n\n";

  Table t({"distance", "vs bound", "mean unused-prefetch share (%)",
           "peak unused-prefetch lines", "norm runtime"});
  const std::uint64_t l2_lines = scale.l2.num_sets() * scale.l2.ways();

  SimConfig sim;
  sim.l2 = scale.l2;
  sim.occupancy_sample_interval = 200000;

  // Baseline runtime for normalization.
  CmpSimulator base_sim(sim);
  const SimResult baseline = base_sim.run({CoreStream{.trace = &trace}});

  for (std::uint32_t d : bench::distances_around(bound.upper_limit)) {
    const SpParams params = SpParams::from_distance_rp(d, 0.5);
    const TraceBuffer helper = make_helper_trace(trace, params);
    CmpSimulator simulator(sim);
    const SimResult r = simulator.run({
        CoreStream{.trace = &trace},
        CoreStream{.trace = &helper,
                   .origin = FillOrigin::kHelper,
                   .sync = RoundSync{.leader = 0, .round_iters = params.round()}},
    });
    t.row()
        .add(static_cast<std::uint64_t>(d))
        .add(bound.allows(d) ? "within" : "beyond")
        .add(100.0 * r.occupancy.mean_unused_prefetch_fraction(), 2)
        .add(r.occupancy.peak_unused_prefetch())
        .add(static_cast<double>(r.per_core[0].finish_time) /
                 static_cast<double>(baseline.per_core[0].finish_time),
             3);
    std::cerr << ".";
  }
  std::cerr << "\n";
  bench::emit(t, scale);

  std::cout << "\n(L2 holds " << l2_lines << " lines total.)\n"
            << "Shape check: the unused-prefetch share of the shared cache "
               "grows with distance —\nprefetched data parked longer is "
               "exactly the active-data-set inflation the paper's\nSet "
               "Affinity bound exists to cap.\n";
  return 0;
}
