// Table I reproduction: the experimental platform. The paper measured on an
// Intel Core 2 Quad Q6600; we reproduce one die of it (two cores sharing one
// L2) as the simulator's default machine and print paper-vs-simulated
// side by side.
#include <iostream>

#include "bench_common.hpp"
#include "spf/sim/config.hpp"

int main(int argc, char** argv) {
  spf::CliFlags flags(argc, argv);
  const spf::bench::Scale scale = spf::bench::parse_scale(flags);
  spf::bench::fail_on_unknown_flags(flags);

  const spf::SimConfig sim;  // defaults mirror Table I
  std::cout << "== Table I: machine configuration (paper vs simulator) ==\n\n";
  spf::Table t({"component", "paper (Core 2 Quad Q6600)", "simulator default"});
  t.row().add("cores sharing L2").add("2 (per die)").add("2 (main + helper)");
  t.row().add("L1 DCache").add("32KB, 8-way, 64B line").add(sim.l1.to_string());
  t.row()
      .add("L2 unified (shared, last level)")
      .add("4MB, 16-way, 64B line")
      .add(sim.l2.to_string());
  t.row().add("L1 latency").add("3 cycles").add(std::to_string(sim.l1_latency));
  t.row().add("L2 latency").add("~14 cycles").add(std::to_string(sim.l2_latency));
  t.row()
      .add("memory latency")
      .add("~300 cycles")
      .add(std::to_string(sim.memory.service_latency));
  t.row()
      .add("memory channel")
      .add("FSB, shared")
      .add("1 line / " + std::to_string(sim.memory.issue_interval) + " cycles");
  t.row().add("L2 MSHRs").add("~16").add(std::to_string(sim.l2_mshrs));
  t.row()
      .add("hw prefetchers / core")
      .add("DPL (stride) + streamer")
      .add("DPL (stride) + streamer");
  t.row().add("OS / method").add("Fedora 9, VTune counters").add(
      "trace-driven simulation (exact counters)");
  spf::bench::emit(t, scale);

  std::cout << "\nBench L2 in use for this run: " << scale.l2.to_string()
            << (scale.paper ? " (paper scale)" : " (CI scale)") << "\n";
  return 0;
}
