// spf_sweep — declarative parallel sweep driver over the SP experiment grid.
//
// Runs a (workload × A_SKI × RP × L2 geometry × helper kind) sweep through
// spf::orchestrate::run_sweep: every cell is one original-vs-SP comparison,
// fanned out over a fixed-size thread pool with slot-indexed aggregation, so
// the emitted table / CSV / JSONL artifacts are byte-identical at any
// --threads value. See docs/orchestrator.md.
//
// Flags (all optional; argument-free = CI-scale EM3D auto-distance sweep):
//   --workloads=em3d,mcf,mst   comma list (default em3d)
//   --distances=1,2,4,8        explicit A_SKI list (default: auto ladder
//                              around each plane's Set-Affinity bound)
//   --rps=0.5,1.0              prefetch ratios (default 0.5)
//   --geoms=1048576:16:64;...  semicolon list of bytes:ways:line geometries
//                              (default: one geometry from --l2/--assoc/--line)
//   --helpers=blocking,prefetch  helper kinds (default blocking)
//   --phase-bounds             add the adaptive-phase-capped controller to
//                              the axis: the AIMD walk re-clamped to the
//                              active Set-Affinity phase's bound at each
//                              interval boundary (docs/method.md)
//   --phase-window=N           phase-detection window in outer iterations
//                              (default 64; every plane reports phase_count
//                              in the JSONL regardless of --phase-bounds)
//   --phase-hysteresis=X       relative EMA shift that opens a new phase
//                              (default 0.5)
//   --jsonl=PATH               also write a JSONL artifact (- = stdout)
//   --threads=N                0 = hardware concurrency, 1 = serial
//   --metrics-out=PATH         telemetry metrics dump (JSONL)
//   --trace-out=PATH           Perfetto/chrome://tracing timeline: one lane
//                              per worker, one slice per cell with
//                              replay/refine/memo child slices
//   --scale=paper, --l2=, --assoc=, --line=, --csv   as in every bench binary
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "spf/orchestrate/sweep.hpp"
#include "spf/orchestrate/workload_specs.hpp"

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);

  orchestrate::SweepSpec spec;
  for (const auto& name : split(flags.get("workloads", "em3d"), ',')) {
    if (name == "em3d") {
      spec.workloads.push_back(orchestrate::em3d_spec(bench::em3d_config(scale)));
    } else if (name == "mcf") {
      spec.workloads.push_back(orchestrate::mcf_spec(bench::mcf_config(scale)));
    } else if (name == "mst") {
      spec.workloads.push_back(orchestrate::mst_spec(bench::mst_config(scale)));
    } else {
      std::cerr << "unknown workload '" << name << "' (em3d|mcf|mst)\n";
      return 2;
    }
  }
  for (const auto& d : split(flags.get("distances", ""), ',')) {
    std::uint32_t dist = 0;
    if (!bench::parse_u32(d, dist)) {
      std::cerr << "bad --distances value '" << d << "' (want unsigned int)\n";
      return 2;
    }
    spec.distances.push_back(dist);
  }
  spec.rps.clear();
  for (const auto& r : split(flags.get("rps", "0.5"), ',')) {
    double rp = 0.0;
    if (!bench::parse_double(r, rp)) {
      std::cerr << "bad --rps value '" << r << "' (want number)\n";
      return 2;
    }
    spec.rps.push_back(rp);
  }
  spec.helpers.clear();
  for (const auto& h : split(flags.get("helpers", "blocking"), ',')) {
    if (h == "blocking") {
      spec.helpers.push_back(orchestrate::HelperKind::kBlockingLoad);
    } else if (h == "prefetch") {
      spec.helpers.push_back(orchestrate::HelperKind::kPrefetchInstruction);
    } else {
      std::cerr << "unknown helper kind '" << h << "' (blocking|prefetch)\n";
      return 2;
    }
  }
  spec.geometries.clear();
  const std::string geoms = flags.get("geoms", "");
  if (geoms.empty()) {
    spec.geometries.push_back(scale.l2);
  } else {
    for (const auto& g : split(geoms, ';')) {
      const auto parts = split(g, ':');
      std::uint64_t bytes = 0;
      std::uint32_t ways = 0;
      std::uint32_t line = 0;
      if (parts.size() != 3 || !bench::parse_u64(parts[0], bytes) ||
          !bench::parse_u32(parts[1], ways) || !bench::parse_u32(parts[2], line)) {
        std::cerr << "bad geometry '" << g << "' (want bytes:ways:line)\n";
        return 2;
      }
      spec.geometries.emplace_back(bytes, ways, line);
    }
  }
  spec.phase.window_iters = static_cast<std::uint32_t>(
      bench::require_uint(flags, "phase-window", spec.phase.window_iters));
  spec.phase.hysteresis =
      bench::require_double(flags, "phase-hysteresis", spec.phase.hysteresis);
  if (bench::require_bool(flags, "phase-bounds", false)) {
    spec.controllers.push_back(
        orchestrate::ControllerKind::kAdaptivePhaseCapped);
  }
  const std::string jsonl_path = flags.get("jsonl", "");
  // Constructed before the unknown-flag check: the sink consumes
  // --metrics-out=/--trace-out= and installs the telemetry session the sweep
  // records into. Artifacts are written when it goes out of scope.
  bench::TelemetrySink telemetry_sink(flags, scale, "spf_sweep");
  bench::fail_on_unknown_flags(flags);

  // Every structural flag mistake funnels through the spec's own validator,
  // so the CLI and library agree on what a runnable grid is (usage = exit 2).
  if (const std::string problem = spec.validate(); !problem.empty()) {
    std::cerr << "invalid sweep: " << problem << "\n";
    return 2;
  }

  // Open the artifact before the (potentially long) sweep so a bad path
  // fails in milliseconds, not after the last cell.
  std::ofstream jsonl_file;
  if (!jsonl_path.empty() && jsonl_path != "-") {
    jsonl_file.open(jsonl_path);
    if (!jsonl_file) {
      std::cerr << "cannot open " << jsonl_path << "\n";
      return 1;
    }
  }

  orchestrate::SweepOptions opts;
  opts.threads = scale.threads;
  opts.progress = orchestrate::stderr_progress("  cells");
  const orchestrate::SweepResult result = orchestrate::run_sweep(spec, opts);

  if (jsonl_path == "-") {
    result.write_jsonl(std::cout);
  } else {
    if (jsonl_file.is_open()) result.write_jsonl(jsonl_file);
    std::cout << "== spf_sweep: " << result.cells.size() << " cells ("
              << result.failed_count() << " failed) ==\n\n";
    bench::emit(result.to_table(), scale);
  }
  return result.failed_count() == 0 ? 0 : 1;
}
