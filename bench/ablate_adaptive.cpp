// Ablation: feedback-directed distance vs static distances.
//
// Compares, on EM3D: (a) the static within-bound distance the paper's method
// picks, (b) a static far-too-large distance, (c) the feedback controller
// started from that same bad distance. The controller should walk back into
// the healthy regime and land near the static-good configuration without any
// profiling pass.
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "spf/core/adaptive.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dWorkload workload(bench::em3d_config(scale));
  const TraceBuffer trace = workload.emit_trace();
  const DistanceBound bound = estimate_distance_bound(
      trace, workload.invocation_starts(), scale.l2);
  const std::uint32_t good = std::max(1u, bound.upper_limit / 2);
  const std::uint32_t bad = bound.upper_limit * 8;
  const std::uint32_t interval = 1000;

  std::cout << "== Ablation: adaptive distance vs static (EM3D) ==\n"
            << "L2 " << scale.l2.to_string() << ", " << bound.to_string()
            << ", intervals of " << interval << " iterations\n\n";

  // All three configurations run the same interval-chunked emulation so cold
  // -start effects cancel.
  SpExperimentConfig base;
  base.sim.l2 = scale.l2;

  auto run_static = [&](std::uint32_t distance) {
    AdaptiveConfig frozen;
    frozen.min_distance = distance;
    frozen.max_distance = distance;
    frozen.initial_distance = distance;
    frozen.interval_iters = interval;
    return run_adaptive_experiment(trace, base, frozen);
  };

  AdaptiveConfig acfg;
  acfg.min_distance = 1;
  acfg.max_distance = bad;
  acfg.initial_distance = bad;
  acfg.increase_step = std::max(1u, good / 8);
  acfg.interval_iters = interval;

  struct Entry {
    std::string name;
    AdaptiveRunResult result;
  };
  std::vector<Entry> entries;
  entries.push_back({"static good (bound/2 = " + std::to_string(good) + ")",
                     run_static(good)});
  std::cerr << ".";
  entries.push_back({"static bad (8x bound = " + std::to_string(bad) + ")",
                     run_static(bad)});
  std::cerr << ".";
  entries.push_back({"adaptive (start at 8x bound)",
                     run_adaptive_experiment(trace, base, acfg)});
  std::cerr << ".\n";

  Table t({"configuration", "total runtime (cycles)", "totally misses",
           "pollution", "final distance"});
  for (const Entry& e : entries) {
    t.row()
        .add(e.name)
        .add(static_cast<std::uint64_t>(e.result.aggregate.runtime))
        .add(e.result.aggregate.totally_misses)
        .add(e.result.aggregate.pollution.total_pollution())
        .add(static_cast<std::uint64_t>(e.result.final_distance()));
  }
  bench::emit(t, scale);

  std::ostringstream traj;
  for (std::size_t i = 0; i < entries.back().result.distance_trajectory.size();
       ++i) {
    if (i) traj << " ";
    traj << entries.back().result.distance_trajectory[i];
  }
  std::cout << "\nadaptive distance trajectory: " << traj.str() << "\n"
            << "\nShape check: the controller walks down out of the polluting "
               "regime within a few\nintervals and ends between the static "
               "configurations, far closer to the good one.\n";
  return 0;
}
