// perf_smoke — the repo's benchmark trajectory point.
//
// Times the three hot paths the data-layout refactor targets and writes a
// machine-readable BENCH_perf.json:
//
//   materialize  — em3d_ir trace emission (IR interpretation against
//                  VirtualMemory), in IR memory ops per second;
//   replay       — one SP sweep cell over the em3d_ir trace through a
//                  reusable ExperimentContext (the batched engine), in trace
//                  accesses per second; this is the acceptance metric for the
//                  hot-path work. The cell is timed on both helper paths,
//                  interleaved per rep: fused (helper synthesized inside
//                  replay through the cursor window, streaming_cores on — the
//                  default) and materialized (helper scratch built per cell —
//                  the reference). The fused reps are held to zero
//                  trace-record allocations via trace_hooks, and every run's
//                  sp runtime is cross-checked equal. A single
//                  record-at-a-time pass is also timed
//                  ("replay_scalar_accesses_per_sec") and its runtime
//                  cross-checked against the batched engine's;
//   distance_bound_refine — refine_with_helper over the em3d_ir trace, the
//                  materializing reference vs the streaming TraceCursor
//                  pipeline (both bounds cross-checked equal); the speedup is
//                  the acceptance metric for the zero-copy trace work;
//   sweep        — a small orchestrated 3-workload grid, in cells/second,
//                  through a shared ExperimentContextPool whose trace-memo
//                  hit rate is reported alongside;
//   sweep fused/materialized — the same grid replayed memo-warm with
//                  SweepOptions::streaming_cores on vs off (interleaved per
//                  rep), artifacts cross-checked byte-identical; the ratio is
//                  the sweep-level win of fusing helper synthesis into replay;
//   telemetry    — the same grid replayed memo-warm with the spf::telemetry
//                  session uninstalled vs installed, interleaved per rep; the
//                  overhead is the *median of per-rep on/off ratios* (clamped
//                  at 0 — a negative overhead is measurement noise, not a
//                  speedup), so one scheduling hiccup on either side can't
//                  push the reported number negative or blow it up, and all
//                  sweeps' artifacts are cross-checked identical;
//   provenance   — the same grid replayed memo-warm with
//                  SimConfig::provenance off vs on (interleaved per rep,
//                  median-of-ratios, clamped at 0); lifecycle tracking is an
//                  observer, so both sides' tables are cross-checked
//                  byte-identical to the baseline sweep's.
//
// Flags: --quick (CI smoke: small inputs, one reps), --out=PATH (default
// BENCH_perf.json; "-" or "" = skip the artifact), --reps=N,
// --metrics-out=/--trace-out= (telemetry artifacts), plus the standard
// bench_common knobs (--l2/--assoc/--line/--threads/--scale/--csv).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "spf/common/jsonl.hpp"
#include "spf/core/distance_bound.hpp"
#include "spf/core/experiment_context.hpp"
#include "spf/orchestrate/sweep.hpp"
#include "spf/orchestrate/workload_specs.hpp"
#include "spf/workloads/em3d_ir.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  const bool quick = flags.get_bool("quick", false);
  const auto reps =
      static_cast<unsigned>(bench::require_uint(flags, "reps", quick ? 1 : 3));
  const std::string out_path = flags.get("out", "BENCH_perf.json");
  bench::TelemetrySink telemetry_sink(flags, scale, "perf_smoke");
  bench::fail_on_unknown_flags(flags);

  Em3dConfig em3d_cfg = bench::em3d_config(scale);
  if (quick) {
    em3d_cfg.nodes = 2000;
    em3d_cfg.arity = 8;
    em3d_cfg.passes = 1;
  }

  // ---- materialize: IR interpretation emits the em3d trace --------------
  const Em3dWorkload model(em3d_cfg);
  Em3dIr ir = build_em3d_ir(model);
  double materialize_sec = 0.0;
  std::uint64_t ir_ops = 0;
  ir::InterpResult interp;
  for (unsigned r = 0; r < reps; ++r) {
    ir::VirtualMemory vm = ir.memory;  // interpret mutates (stores)
    const auto t0 = Clock::now();
    interp = ir::interpret(ir.program, vm);
    materialize_sec += seconds_since(t0);
    ir_ops += interp.loads + interp.stores;
  }
  const TraceBuffer& trace = interp.trace;

  // ---- replay: one SP sweep cell over the em3d_ir trace ------------------
  // Fused vs materialized helper synthesis, interleaved per rep so clock
  // drift and frequency steps hit both sides equally.
  SpExperimentConfig cell_cfg;  // streaming_cores defaults on = fused
  cell_cfg.sim.l2 = scale.l2;
  cell_cfg.params = SpParams::from_distance_rp(16, 0.5);
  SpExperimentConfig mat_cfg = cell_cfg;
  mat_cfg.sim.streaming_cores = false;
  // The context lives outside the timed region: what a sweep worker amortizes
  // (simulator construction, helper-trace scratch) is setup, not replay.
  // One untimed warm-up of each path brings it to that steady state — in
  // particular the materialized path's helper scratch reaches full capacity
  // here, so the timed region is allocation-free on both sides.
  ExperimentContext replay_ctx;
  const SpRunSummary warm_fused = replay_ctx.run_sp_once(trace, cell_cfg);
  const SpRunSummary warm_mat = replay_ctx.run_sp_once(trace, mat_cfg);
  if (warm_fused.runtime != warm_mat.runtime) {
    std::cerr << "perf_smoke: helper-path mismatch (fused " << warm_fused.runtime
              << " vs materialized " << warm_mat.runtime << ")\n";
    return 1;
  }
  double replay_sec = 0.0;      // fused (the acceptance path)
  double replay_mat_sec = 0.0;  // materialized reference
  std::uint64_t replayed = 0;
  std::uint64_t replay_checksum = 0;
  std::uint64_t sp_runtime = 0;
  std::uint64_t fused_record_allocs = 0;
  for (unsigned r = 0; r < reps; ++r) {
    const std::uint64_t allocs_before = trace_hooks::record_allocations();
    const auto t_fused = Clock::now();
    const SpRunSummary sp = replay_ctx.run_sp_once(trace, cell_cfg);
    replay_sec += seconds_since(t_fused);
    fused_record_allocs += trace_hooks::record_allocations() - allocs_before;
    replayed += trace.size();
    sp_runtime = sp.runtime;
    replay_checksum ^= sp.runtime;  // defeat dead-code elimination

    const auto t_mat = Clock::now();
    const SpRunSummary mat_sp = replay_ctx.run_sp_once(trace, mat_cfg);
    replay_mat_sec += seconds_since(t_mat);
    if (mat_sp.runtime != sp.runtime) {
      std::cerr << "perf_smoke: helper-path mismatch (fused " << sp.runtime
                << " vs materialized " << mat_sp.runtime << ")\n";
      return 1;
    }
  }
  // The fused path's contract: helper records are synthesized through the
  // fixed ring window, never stored — zero trace-record allocations.
  if (fused_record_allocs != 0) {
    std::cerr << "perf_smoke: fused replay grew trace-record storage "
              << fused_record_allocs << " times (contract: 0)\n";
    return 1;
  }

  // One pass through the record-at-a-time reference engine: reports the
  // engine-vs-engine rate and hard-checks that both produce the same cell.
  SpExperimentConfig scalar_cfg = cell_cfg;
  scalar_cfg.sim.batched_replay = false;
  const auto t_scalar = Clock::now();
  const SpRunSummary scalar_sp = replay_ctx.run_sp_once(trace, scalar_cfg);
  const double scalar_sec = seconds_since(t_scalar);
  if (scalar_sp.runtime != sp_runtime) {
    std::cerr << "perf_smoke: engine mismatch (batched " << sp_runtime
              << " vs scalar " << scalar_sp.runtime << ")\n";
    return 1;
  }

  // ---- distance_bound_refine: materialized vs streaming refinement -------
  // The quick trace is small, so pair it with a small L2 the way the quick
  // sweep grid does (the Set-Affinity derivation needs saturated sets).
  const CacheGeometry refine_geo =
      quick ? CacheGeometry(64 << 10, 8, 64) : scale.l2;
  const std::vector<std::uint32_t> refine_starts = {0};
  const DistanceBound base_bound =
      estimate_distance_bound(trace, refine_starts, refine_geo);
  const SpParams refine_params = SpParams::from_distance_rp(16, 0.5);
  double refine_mat_sec = 0.0;
  double refine_stream_sec = 0.0;
  std::uint64_t refine_checksum = 0;
  for (unsigned r = 0; r < reps; ++r) {
    const auto t_mat = Clock::now();
    const DistanceBound mat = refine_with_helper(
        base_bound, trace, refine_starts, refine_params, refine_geo,
        DistanceBoundOptions{.streaming_refine = false});
    refine_mat_sec += seconds_since(t_mat);

    const auto t_stream = Clock::now();
    const DistanceBound stream = refine_with_helper(
        base_bound, trace, refine_starts, refine_params, refine_geo,
        DistanceBoundOptions{.streaming_refine = true});
    refine_stream_sec += seconds_since(t_stream);

    if (mat.upper_limit != stream.upper_limit ||
        mat.with_helper_min_sa != stream.with_helper_min_sa) {
      std::cerr << "perf_smoke: refinement mismatch (materialized limit "
                << mat.upper_limit << " vs streaming " << stream.upper_limit
                << ")\n";
      return 1;
    }
    refine_checksum ^=
        stream.upper_limit + stream.with_helper_min_sa.value_or(0);
  }

  // ---- adaptive: interval-chunked replay, cold vs warm intervals ---------
  // The streaming adaptive path shares the fused-replay contract: segments
  // replay through cursor windows over the shared trace, so no per-interval
  // trace is ever materialized (zero trace-record allocations, hard-checked).
  SpExperimentConfig adaptive_base;  // params stay default: run_adaptive
  adaptive_base.sim.l2 = scale.l2;   // derives them per interval
  AdaptiveConfig acfg;
  acfg.initial_distance = 16;
  acfg.max_distance = std::max(1u, base_bound.upper_limit);
  acfg.interval_iters = 1000;
  double adaptive_sec = 0.0;
  double adaptive_warm_sec = 0.0;
  std::uint64_t adaptive_record_allocs = 0;
  AdaptiveRunResult adaptive_cold;
  for (unsigned r = 0; r < reps; ++r) {
    const std::uint64_t allocs_before = trace_hooks::record_allocations();
    const auto t_cold = Clock::now();
    adaptive_cold = replay_ctx.run_adaptive(trace, adaptive_base, acfg);
    adaptive_sec += seconds_since(t_cold);

    AdaptiveConfig warm_cfg = acfg;
    warm_cfg.warm_intervals = true;
    const auto t_warm = Clock::now();
    const AdaptiveRunResult warm =
        replay_ctx.run_adaptive(trace, adaptive_base, warm_cfg);
    adaptive_warm_sec += seconds_since(t_warm);
    adaptive_record_allocs += trace_hooks::record_allocations() - allocs_before;
    if (warm.intervals != adaptive_cold.intervals) {
      std::cerr << "perf_smoke: warm/cold adaptive interval count mismatch ("
                << warm.intervals << " vs " << adaptive_cold.intervals << ")\n";
      return 1;
    }
  }
  if (adaptive_record_allocs != 0) {
    std::cerr << "perf_smoke: adaptive replay grew trace-record storage "
              << adaptive_record_allocs << " times (contract: 0)\n";
    return 1;
  }

  // ---- sweep: small orchestrated 3-workload grid -------------------------
  orchestrate::SweepSpec spec;
  Em3dConfig se = em3d_cfg;
  McfConfig sm = bench::mcf_config(scale);
  MstConfig st = bench::mst_config(scale);
  // The quick grid must still saturate cache sets (the distance-bound
  // derivation requires it), so it pairs the small workloads with a small
  // 64 KiB L2 rather than the CI-scale geometry.
  CacheGeometry sweep_geo = scale.l2;
  if (quick) {
    sm.nodes = 1000;
    sm.arcs = 6000;
    sm.passes = 1;
    st.vertices = 400;
    st.degree = 8;
    st.buckets = 32;
    sweep_geo = CacheGeometry(64 << 10, 8, 64);
  }
  spec.workloads.push_back(orchestrate::em3d_spec(se));
  spec.workloads.push_back(orchestrate::mcf_spec(sm));
  spec.workloads.push_back(orchestrate::mst_spec(st));
  spec.distances = {1, 2, 4};
  spec.geometries = {sweep_geo};
  orchestrate::SweepOptions opts;
  opts.threads = scale.threads;
  // A shared pool so the sweep resolves workload traces through the trace
  // memo — the reported hit rate is the 9-cell grid's re-emission savings.
  const auto pool = std::make_shared<ExperimentContextPool>(
      orchestrate::resolve_threads(scale.threads));
  opts.pool = pool;
  const auto t0 = Clock::now();
  const orchestrate::SweepResult sweep = orchestrate::run_sweep(spec, opts);
  const double sweep_sec = seconds_since(t0);
  if (sweep.failed_count() != 0) {
    std::cerr << "perf_smoke: " << sweep.failed_count() << " sweep cells failed\n";
    return 1;
  }

  const std::string sweep_csv = sweep.to_csv();

  // ---- fused vs materialized helper synthesis on the memo-warm grid ------
  // The sweep above already emitted every workload trace into the shared
  // pool, so both variants replay memo-warm and differ only in whether
  // helper streams are synthesized inside replay (streaming_cores on) or
  // materialized per cell (off). Interleaved per rep; artifacts must stay
  // byte-identical.
  orchestrate::SweepOptions mat_opts = opts;
  mat_opts.streaming_cores = false;
  double sweep_fused_sec = 0.0;
  double sweep_mat_sec = 0.0;
  for (unsigned r = 0; r < reps; ++r) {
    auto t_fused = Clock::now();
    const orchestrate::SweepResult fused = orchestrate::run_sweep(spec, opts);
    sweep_fused_sec += seconds_since(t_fused);
    auto t_mat = Clock::now();
    const orchestrate::SweepResult mat = orchestrate::run_sweep(spec, mat_opts);
    sweep_mat_sec += seconds_since(t_mat);
    if (fused.failed_count() != 0 || mat.failed_count() != 0) {
      std::cerr << "perf_smoke: fused/materialized A/B sweep cells failed\n";
      return 1;
    }
    if (fused.to_csv() != sweep_csv || mat.to_csv() != sweep_csv) {
      std::cerr << "perf_smoke: sweep artifact changed across helper paths\n";
      return 1;
    }
  }
  const double sweep_fused_speedup =
      sweep_fused_sec > 0 ? sweep_mat_sec / sweep_fused_sec : 0.0;

  // ---- telemetry overhead: the same grid, memo-warm, off vs on -----------
  // Off/on runs are interleaved per rep and the overhead is the median of
  // per-rep on/off ratios: a one-sided scheduling hiccup shifts one ratio,
  // not the reported number, and the clamp below keeps "on was faster than
  // off" (pure noise) from reporting a nonsense negative overhead. min-of-
  // reps per side is still exported for context.
  telemetry::Session ab_session(orchestrate::resolve_threads(scale.threads) + 1);
  telemetry::Session* on_session =
      telemetry_sink.session() != nullptr ? telemetry_sink.session() : &ab_session;
  double sweep_off_sec = 0.0;
  double sweep_on_sec = 0.0;
  std::vector<double> onoff_ratios;
  onoff_ratios.reserve(reps);
  for (unsigned r = 0; r < reps; ++r) {
    telemetry::Session* prev = telemetry::install(nullptr);
    auto t_off = Clock::now();
    const orchestrate::SweepResult off = orchestrate::run_sweep(spec, opts);
    const double off_sec = seconds_since(t_off);
    telemetry::install(on_session);
    auto t_on = Clock::now();
    const orchestrate::SweepResult on = orchestrate::run_sweep(spec, opts);
    const double on_sec = seconds_since(t_on);
    telemetry::install(prev);
    if (off.failed_count() != 0 || on.failed_count() != 0) {
      std::cerr << "perf_smoke: telemetry A/B sweep cells failed\n";
      return 1;
    }
    // Recording must never leak into the artifact bytes.
    if (off.to_csv() != sweep_csv || on.to_csv() != sweep_csv) {
      std::cerr << "perf_smoke: sweep artifact changed under telemetry\n";
      return 1;
    }
    if (off_sec > 0) onoff_ratios.push_back(on_sec / off_sec);
    if (r == 0 || off_sec < sweep_off_sec) sweep_off_sec = off_sec;
    if (r == 0 || on_sec < sweep_on_sec) sweep_on_sec = on_sec;
  }
  double telemetry_overhead_pct = 0.0;
  if (!onoff_ratios.empty()) {
    std::sort(onoff_ratios.begin(), onoff_ratios.end());
    const std::size_t n = onoff_ratios.size();
    const double median = n % 2 == 1
                              ? onoff_ratios[n / 2]
                              : 0.5 * (onoff_ratios[n / 2 - 1] + onoff_ratios[n / 2]);
    telemetry_overhead_pct = std::max(0.0, 100.0 * (median - 1.0));
  }

  // ---- provenance overhead: the same grid, memo-warm, off vs on ----------
  // Same protocol as the telemetry A/B: interleaved per rep, median of
  // per-rep on/off ratios, clamped at 0. The provenance-on table/CSV must
  // stay byte-identical to the baseline sweep's — lifecycle tracking is an
  // observer, it rides only in the JSONL suffix (docs/provenance.md) — and
  // the off side re-checks the baseline so a nondeterminism bug can't hide
  // behind the A/B.
  orchestrate::SweepSpec prov_spec = spec;
  prov_spec.provenance = true;
  double sweep_prov_off_sec = 0.0;
  double sweep_prov_on_sec = 0.0;
  bool prov_tables_identical = true;
  std::vector<double> prov_ratios;
  prov_ratios.reserve(reps);
  for (unsigned r = 0; r < reps; ++r) {
    auto t_off = Clock::now();
    const orchestrate::SweepResult off = orchestrate::run_sweep(spec, opts);
    const double off_sec = seconds_since(t_off);
    auto t_on = Clock::now();
    const orchestrate::SweepResult on = orchestrate::run_sweep(prov_spec, opts);
    const double on_sec = seconds_since(t_on);
    if (off.failed_count() != 0 || on.failed_count() != 0) {
      std::cerr << "perf_smoke: provenance A/B sweep cells failed\n";
      return 1;
    }
    if (off.to_csv() != sweep_csv || on.to_csv() != sweep_csv) {
      prov_tables_identical = false;
    }
    if (off_sec > 0) prov_ratios.push_back(on_sec / off_sec);
    if (r == 0 || off_sec < sweep_prov_off_sec) sweep_prov_off_sec = off_sec;
    if (r == 0 || on_sec < sweep_prov_on_sec) sweep_prov_on_sec = on_sec;
  }
  if (!prov_tables_identical) {
    std::cerr << "perf_smoke: sweep artifact changed under provenance\n";
    return 1;
  }
  double provenance_overhead_pct = 0.0;
  if (!prov_ratios.empty()) {
    std::sort(prov_ratios.begin(), prov_ratios.end());
    const std::size_t n = prov_ratios.size();
    const double median =
        n % 2 == 1 ? prov_ratios[n / 2]
                   : 0.5 * (prov_ratios[n / 2 - 1] + prov_ratios[n / 2]);
    provenance_overhead_pct = std::max(0.0, 100.0 * (median - 1.0));
  }

  const double materialize_ops_s =
      materialize_sec > 0 ? static_cast<double>(ir_ops) / materialize_sec : 0;
  const double replay_acc_s =
      replay_sec > 0 ? static_cast<double>(replayed) / replay_sec : 0;
  const double replay_scalar_acc_s =
      scalar_sec > 0 ? static_cast<double>(trace.size()) / scalar_sec : 0;
  const double cells_s =
      sweep_sec > 0 ? static_cast<double>(sweep.cells.size()) / sweep_sec : 0;
  const double refine_speedup =
      refine_stream_sec > 0 ? refine_mat_sec / refine_stream_sec : 0;
  const double replay_fused_speedup =
      replay_sec > 0 ? replay_mat_sec / replay_sec : 0;
  const double n_sweep_cells_d =
      static_cast<double>(sweep.cells.size()) * reps;
  const ExperimentContextPool::TraceMemoStats memo = pool->trace_memo_stats();

  JsonObject obj;
  obj.add("bench", "perf_smoke")
      .add("quick", quick)
      .add("reps", static_cast<std::uint64_t>(reps))
      .add("l2", scale.l2.to_string())
      .add("em3d_nodes", em3d_cfg.nodes)
      .add("em3d_arity", em3d_cfg.arity)
      .add("trace_records", static_cast<std::uint64_t>(trace.size()))
      .add("materialize_ir_ops_per_sec", materialize_ops_s)
      .add("materialize_sec", materialize_sec / reps)
      .add("replay_accesses_per_sec", replay_acc_s)
      .add("replay_batched", replay_acc_s)
      .add("replay_scalar_accesses_per_sec", replay_scalar_acc_s)
      .add("replay_sec_per_cell", replay_sec / reps)
      .add("replay_fused_sec_per_cell", replay_sec / reps)
      .add("replay_materialized_sec_per_cell", replay_mat_sec / reps)
      .add("replay_fused_speedup", replay_fused_speedup)
      .add("replay_fused_record_allocations", fused_record_allocs)
      .add("refine_materialized_sec", refine_mat_sec / reps)
      .add("refine_streaming_sec", refine_stream_sec / reps)
      .add("distance_bound_refine_speedup", refine_speedup)
      .add("refine_upper_limit", base_bound.upper_limit)
      .add("adaptive_sec", adaptive_sec / reps)
      .add("adaptive_warm_sec", adaptive_warm_sec / reps)
      .add("adaptive_intervals", adaptive_cold.intervals)
      .add("adaptive_trajectory_len",
           static_cast<std::uint64_t>(adaptive_cold.distance_trajectory.size()))
      .add("adaptive_initial_distance", adaptive_cold.initial_distance)
      .add("adaptive_final_distance", adaptive_cold.final_distance())
      .add("adaptive_distance_cap", acfg.max_distance)
      .add("adaptive_record_allocations", adaptive_record_allocs)
      .add("sweep_cells", static_cast<std::uint64_t>(sweep.cells.size()))
      .add("sweep_cells_per_sec", cells_s)
      .add("sweep_sec", sweep_sec)
      .add("sweep_trace_memo_hits", memo.hits)
      .add("sweep_trace_memo_misses", memo.misses)
      .add("sweep_trace_memo_hit_rate", memo.hit_rate())
      .add("sweep_fused_sec_per_cell",
           n_sweep_cells_d > 0 ? sweep_fused_sec / n_sweep_cells_d : 0.0)
      .add("sweep_materialized_sec_per_cell",
           n_sweep_cells_d > 0 ? sweep_mat_sec / n_sweep_cells_d : 0.0)
      .add("sweep_fused_speedup", sweep_fused_speedup)
      .add("sweep_telemetry_off_sec", sweep_off_sec)
      .add("sweep_telemetry_on_sec", sweep_on_sec)
      .add("telemetry_overhead_pct", telemetry_overhead_pct)
      .add("telemetry_compiled", SPF_TELEMETRY != 0)
      .add("sweep_provenance_off_sec", sweep_prov_off_sec)
      .add("sweep_provenance_on_sec", sweep_prov_on_sec)
      .add("provenance_overhead_pct", provenance_overhead_pct)
      .add("provenance_tables_identical", prov_tables_identical)
      .add("replay_checksum", replay_checksum)
      .add("refine_checksum", refine_checksum);

  std::cout << obj << std::flush;
  if (!out_path.empty() && out_path != "-") {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    out << obj;
  }
  return 0;
}
