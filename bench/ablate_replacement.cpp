// Ablation: robustness of the Set-Affinity distance bound across L2
// replacement policies.
//
// The paper's derivation implicitly assumes LRU-like behaviour (a set holds
// its last `ways` distinct blocks). This harness re-runs the EM3D distance
// comparison under LRU, tree-PLRU, FIFO, Random and SRRIP: the bound should
// keep separating "healthy" from "polluting" distances for stack-ish
// policies, and degrade gracefully for Random.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dWorkload workload(bench::em3d_config(scale));
  const TraceBuffer trace = workload.emit_trace();
  const DistanceBound bound = estimate_distance_bound(
      trace, workload.invocation_starts(), scale.l2);
  const std::uint32_t good = std::max(1u, bound.upper_limit / 2);
  const std::uint32_t bad = bound.upper_limit * 8;

  std::cout << "== Ablation: distance bound vs replacement policy (EM3D) ==\n"
            << "L2 " << scale.l2.to_string() << ", " << bound.to_string()
            << ", good=" << good << " bad=" << bad << "\n\n";

  Table t({"policy", "distance", "Normalized_Runtime", "dTotally_hit(%)",
           "pollution events"});
  for (ReplacementKind policy :
       {ReplacementKind::kLru, ReplacementKind::kTreePlru, ReplacementKind::kFifo,
        ReplacementKind::kRandom, ReplacementKind::kSrrip}) {
    SpExperimentConfig exp;
    exp.sim.l2 = scale.l2;
    exp.sim.replacement = policy;
    const SpRunSummary baseline = run_original(trace, exp);
    for (std::uint32_t distance : {good, bad}) {
      exp.params = SpParams::from_distance_rp(distance, 0.5);
      SpComparison cmp;
      cmp.original = baseline;
      cmp.sp = run_sp_once(trace, exp);
      t.row()
          .add(to_string(policy))
          .add(static_cast<std::uint64_t>(distance))
          .add(cmp.norm_runtime(), 3)
          .add(100.0 * cmp.delta_totally_hit(), 2)
          .add(cmp.sp.pollution.total_pollution());
      std::cerr << ".";
    }
  }
  std::cerr << "\n";
  bench::emit(t, scale);

  std::cout << "\nShape check: under every policy the within-bound distance "
               "outperforms the\nbeyond-bound one; the margin is widest for "
               "LRU-like policies the derivation assumes.\n";
  return 0;
}
