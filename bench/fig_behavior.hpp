// Shared implementation of the Figure 4/5/6 reproductions: per benchmark,
// panel (a) — change of totally hits / totally misses / partially hits as a
// percentage of the original run's memory accesses, and panel (b) —
// normalized runtime, both against growing prefetch distance at RP = 0.5.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace spf::bench {

struct BehaviorRefs {
  /// Paper-reported peak magnitudes (fraction of original memory accesses).
  double tmiss_eliminated = 0.0;
  double phit_gained = 0.0;
  std::string thit_note;
};

inline int run_behavior_figure(const std::string& figure,
                               const std::string& name,
                               const TraceBuffer& trace,
                               const std::vector<std::uint32_t>& inv_starts,
                               const BehaviorRefs& refs, const Scale& scale,
                               const std::vector<std::uint32_t>* distances_opt =
                                   nullptr) {
  const DistanceBound bound = estimate_distance_bound(trace, inv_starts, scale.l2);

  std::cout << "== " << figure << ": " << name
            << " behavior change vs prefetch distance ==\n"
            << "L2 " << scale.l2.to_string() << ", RP=0.5, "
            << bound.to_string() << "\n\n";

  const std::vector<std::uint32_t> distances =
      distances_opt ? *distances_opt : distances_around(bound.upper_limit);
  const auto points = distance_sweep(trace, distances, scale);

  Table t({"prefetch distance", "vs bound", "dTotally_hit(%)",
           "dTotally_miss(%)", "dPartially_hit(%)", "Normalized_Runtime",
           "pollution events"});
  for (const auto& p : points) {
    t.row()
        .add(static_cast<std::uint64_t>(p.distance))
        .add(bound.allows(p.distance) ? "within" : "beyond")
        .add(100.0 * p.cmp.delta_totally_hit(), 2)
        .add(100.0 * p.cmp.delta_totally_miss(), 2)
        .add(100.0 * p.cmp.delta_partially_hit(), 2)
        .add(p.cmp.norm_runtime(), 3)
        .add(p.cmp.sp.pollution.total_pollution());
  }
  emit(t, scale);

  std::cout << "\nPaper reference for " << name << ": SP eliminates up to "
            << 100.0 * refs.tmiss_eliminated
            << "% of original memory accesses worth of totally misses and "
               "raises partially hits by up to "
            << 100.0 * refs.phit_gained << "%; " << refs.thit_note << "\n"
            << "Shape check: totally-hit gains shrink (pollution) and "
               "runtime climbs as distance grows beyond the bound.\n";
  return 0;
}

}  // namespace spf::bench
