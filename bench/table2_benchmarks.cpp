// Table II reproduction: benchmark characteristics — input, iterations of the
// outer hot loop, and the Set Affinity range SA(L, Sx) of the hot loop to L2
// cache sets — plus the derived quantities the paper's method computes from
// them (CALR -> RP, min SA -> prefetch distance bound).
//
// Paper reference (4MB 16-way L2):
//   EM3D  input 4e5 nodes/arity 128, iterations 4e5,          SA [40, 360]
//   MCF   input ref,                 iterations [1.4e4, 5e4], SA [3000, 46000]
//   MST   input 1e4 nodes,           iterations [1, 1e4],     SA [6300, 10000]
#include <iostream>
#include <memory>
#include <sstream>

#include "bench_common.hpp"
#include "spf/profile/invocations.hpp"
#include "spf/workloads/workload.hpp"

namespace {

struct Row {
  std::string name;
  std::string input;
  std::string paper_sa;
  std::unique_ptr<spf::Workload> workload;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  std::vector<Row> rows;
  {
    const Em3dConfig c = bench::em3d_config(scale);
    std::ostringstream in;
    in << c.nodes << " nodes, arity " << c.arity;
    rows.push_back(Row{"EM3D", in.str(), "[40, 360]",
                       std::make_unique<Em3dWorkload>(c)});
  }
  {
    const McfConfig c = bench::mcf_config(scale);
    std::ostringstream in;
    in << c.nodes << " nodes, " << c.arcs << " arcs";
    rows.push_back(Row{"MCF", in.str(), "[3000, 46000]",
                       std::make_unique<McfWorkload>(c)});
  }
  {
    const MstConfig c = bench::mst_config(scale);
    std::ostringstream in;
    in << c.vertices << " nodes";
    rows.push_back(Row{"MST", in.str(), "[6300, 10000]",
                       std::make_unique<MstWorkload>(c)});
  }

  std::cout << "== Table II: benchmark characteristics (L2 "
            << scale.l2.to_string() << ") ==\n\n";
  Table t({"benchmark", "input", "outer-loop iterations", "SA(L,Sx) paper",
           "SA(L,Sx) measured", "CALR", "RP", "distance bound"});
  for (Row& row : rows) {
    const TraceBuffer trace = row.workload->emit_trace();
    const auto inv = row.workload->invocation_starts();
    const WorkloadSaResult sa = analyze_workload_sa(trace, inv, scale.l2);
    CalrConfig cc;
    cc.l2 = scale.l2;
    const CalrEstimate calr = estimate_calr(trace, cc);
    const DistanceBound bound = estimate_distance_bound(trace, inv, scale.l2);

    std::ostringstream sa_str;
    sa_str << "[" << sa.merged.min_sa() << ", " << sa.merged.max_sa()
           << "] p50=" << static_cast<std::uint64_t>(sa.merged.quantile(0.5));
    if (sa.cumulative_fallback) sa_str << " (cumulative)";

    t.row()
        .add(row.name)
        .add(row.input)
        .add(std::to_string(row.workload->outer_iterations()))
        .add(row.paper_sa)
        .add(sa_str.str())
        .add(calr.calr, 4)
        .add(SpParams::rp_from_calr(calr.calr), 2)
        .add(std::to_string(bound.upper_limit));
  }
  bench::emit(t, scale);

  std::cout << "\nShape check vs paper: EM3D's SA range sits far below MCF's "
               "and MST's,\nso EM3D tolerates only a small prefetch distance "
               "while MCF/MST allow\ndistances in the hundreds-to-thousands "
               "of iterations.\n";
  return 0;
}
