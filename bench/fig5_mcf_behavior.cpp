// Figure 5 reproduction: MCF access-behavior change and normalized runtime
// with increasing prefetch distance (paper sweeps distances up to 2000).
#include "fig_behavior.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  McfWorkload workload(bench::mcf_config(scale));
  const TraceBuffer trace = workload.emit_trace();
  return bench::run_behavior_figure(
      "Figure 5", "MCF", trace, workload.invocation_starts(),
      bench::BehaviorRefs{
          .tmiss_eliminated = 0.1729,
          .phit_gained = 0.1345,
          .thit_note = "totally hits rise (up to 6.74%) but shrink again as "
                       "distance grows; runtime barely moves past distance "
                       "~800 because MCF's SA is huge",
      },
      scale);
}
