// Ablation: hardware prefetchers and the pollution cases (paper §II.C,
// §III.B "whether or not involving hardware prefetchers").
//
// Runs EM3D's SP configuration with hardware prefetchers on and off and
// reports the three pollution cases: case 3 can only exist with hw
// prefetchers; the distance bound holds either way.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dWorkload workload(bench::em3d_config(scale));
  const TraceBuffer trace = workload.emit_trace();
  const DistanceBound bound = estimate_distance_bound(
      trace, workload.invocation_starts(), scale.l2);

  std::cout << "== Ablation: pollution cases with/without hw prefetchers "
               "(EM3D) ==\n"
            << "L2 " << scale.l2.to_string() << ", " << bound.to_string()
            << "\n\n";

  Table t({"hw prefetch", "distance", "vs bound", "case1 (reuse)",
           "case2 (helper)", "case3 (hw)", "Normalized_Runtime",
           "mem requests by hw"});
  for (bool hw : {true, false}) {
    for (const std::uint32_t distance :
         {std::max(1u, bound.upper_limit / 2), bound.upper_limit * 4}) {
      SpExperimentConfig exp;
      exp.sim.l2 = scale.l2;
      exp.sim.hw_prefetch = hw;
      exp.baseline_hw_prefetch = hw;
      exp.params = SpParams::from_distance_rp(distance, 0.5);
      const SpComparison cmp = run_sp_experiment(trace, exp);
      t.row()
          .add(hw ? "on" : "off")
          .add(static_cast<std::uint64_t>(exp.params.a_ski))
          .add(bound.allows(exp.params.a_ski) ? "within" : "beyond")
          .add(cmp.sp.pollution.case1_reuse_displaced)
          .add(cmp.sp.pollution.case2_helper_displaced)
          .add(cmp.sp.pollution.case3_hw_displaced)
          .add(cmp.norm_runtime(), 3)
          .add(cmp.sp.memory_requests);
      std::cerr << ".";
    }
  }
  std::cerr << "\n";
  bench::emit(t, scale);

  std::cout << "\nShape check: case 3 exists only with hw prefetchers on; "
               "every case grows\nwhen the distance exceeds the bound; the "
               "bound is valid in both machines.\n";
  return 0;
}
