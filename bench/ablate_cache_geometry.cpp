// Ablation: how the Set Affinity bound scales with L2 geometry.
//
// SA counts distinct blocks per set against the associativity, so the bound
// should grow roughly linearly with ways (more slack per set) and with the
// set count (footprint spread thinner). This validates that the profiler
// measures a structural property, not an artifact of one geometry.
//
// The per-geometry analyses are independent, so they fan out over
// spf::orchestrate (--threads); rows aggregate in geometry order.
#include <array>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dConfig cfg = bench::em3d_config(scale);
  Em3dWorkload workload(cfg);
  const TraceBuffer trace = workload.emit_trace();
  const auto inv = workload.invocation_starts();

  std::cout << "== Ablation: Set Affinity bound vs L2 geometry (EM3D) ==\n\n";

  struct Geo {
    std::uint64_t bytes;
    std::uint32_t ways;
  };
  constexpr std::array<Geo, 7> kGeos{
      Geo{512 << 10, 8},  Geo{512 << 10, 16}, Geo{1 << 20, 8},
      Geo{1 << 20, 16},   Geo{1 << 20, 32},   Geo{2 << 20, 16},
      Geo{4 << 20, 16}};

  struct GeoResult {
    WorkloadSaResult sa;
    DistanceBound bound;
    bool saturated = false;
  };
  std::vector<GeoResult> results(kGeos.size());
  const auto outcomes = orchestrate::run_indexed(
      kGeos.size(), scale.threads,
      [&](std::size_t i) {
        const CacheGeometry l2(kGeos[i].bytes, kGeos[i].ways, 64);
        GeoResult& r = results[i];
        r.sa = analyze_workload_sa(trace, inv, l2);
        r.saturated = r.sa.merged.any_saturated();
        if (r.saturated) r.bound = estimate_distance_bound(trace, inv, l2);
      },
      orchestrate::stderr_progress("  geometries"));
  const std::string error = orchestrate::first_error(outcomes);
  if (!error.empty()) {
    std::cerr << "geometry analysis failed: " << error << "\n";
    return 1;
  }

  Table t({"L2", "sets", "ways", "min SA", "max SA", "median SA",
           "distance bound"});
  for (std::size_t i = 0; i < kGeos.size(); ++i) {
    const CacheGeometry l2(kGeos[i].bytes, kGeos[i].ways, 64);
    const GeoResult& r = results[i];
    t.row().add(l2.to_string()).add(l2.num_sets()).add(
        static_cast<std::uint64_t>(kGeos[i].ways));
    if (!r.saturated) {
      t.add("-").add("-").add("-").add("unbounded (fits)");
      continue;
    }
    t.add(static_cast<std::uint64_t>(r.sa.merged.min_sa()))
        .add(static_cast<std::uint64_t>(r.sa.merged.max_sa()))
        .add(r.sa.merged.quantile(0.5), 0)
        .add(static_cast<std::uint64_t>(r.bound.upper_limit));
  }
  bench::emit(t, scale);

  std::cout << "\nShape check: the bound grows with associativity at fixed "
               "set count and with\ncache size at fixed ways — more room per "
               "set tolerates earlier prefetches.\n";
  return 0;
}
