// Ablation: how the Set Affinity bound scales with L2 geometry.
//
// SA counts distinct blocks per set against the associativity, so the bound
// should grow roughly linearly with ways (more slack per set) and with the
// set count (footprint spread thinner). This validates that the profiler
// measures a structural property, not an artifact of one geometry.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dConfig cfg = bench::em3d_config(scale);
  Em3dWorkload workload(cfg);
  const TraceBuffer trace = workload.emit_trace();
  const auto inv = workload.invocation_starts();

  std::cout << "== Ablation: Set Affinity bound vs L2 geometry (EM3D) ==\n\n";

  Table t({"L2", "sets", "ways", "min SA", "max SA", "median SA",
           "distance bound"});
  struct Geo {
    std::uint64_t bytes;
    std::uint32_t ways;
  };
  for (const Geo g : {Geo{512 << 10, 8}, Geo{512 << 10, 16}, Geo{1 << 20, 8},
                      Geo{1 << 20, 16}, Geo{1 << 20, 32}, Geo{2 << 20, 16},
                      Geo{4 << 20, 16}}) {
    const CacheGeometry l2(g.bytes, g.ways, 64);
    const WorkloadSaResult sa = analyze_workload_sa(trace, inv, l2);
    if (!sa.merged.any_saturated()) {
      t.row().add(l2.to_string()).add(l2.num_sets()).add(
          static_cast<std::uint64_t>(g.ways));
      t.add("-").add("-").add("-").add("unbounded (fits)");
      continue;
    }
    const DistanceBound bound = estimate_distance_bound(trace, inv, l2);
    t.row()
        .add(l2.to_string())
        .add(l2.num_sets())
        .add(static_cast<std::uint64_t>(g.ways))
        .add(static_cast<std::uint64_t>(sa.merged.min_sa()))
        .add(static_cast<std::uint64_t>(sa.merged.max_sa()))
        .add(sa.merged.quantile(0.5), 0)
        .add(static_cast<std::uint64_t>(bound.upper_limit));
    std::cerr << ".";
  }
  std::cerr << "\n";
  bench::emit(t, scale);

  std::cout << "\nShape check: the bound grows with associativity at fixed "
               "set count and with\ncache size at fixed ways — more room per "
               "set tolerates earlier prefetches.\n";
  return 0;
}
