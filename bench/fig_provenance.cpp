// fig_provenance — prefetch-lifecycle fate mix and timeliness vs. distance.
//
// The causal companion to fig2: where the distance sweep shows *that* a
// too-large A_SKI hurts, this figure shows *why*, by running the same
// (workload × A_SKI × RP) grid with SimConfig::provenance engaged and
// reporting, per cell, what happened to every helper/hardware prefetch fill:
// used timely, used late (MSHR-merged), evicted unused, polluting (displaced
// a reuse-confirmed victim), or still resident unused at run end. The JSONL
// artifact additionally carries the log2 fill→first-use histogram (the
// timeliness CDF per distance), the victim reuse-distance histogram, and the
// per-set pollution heatmap — everything
// `scripts/check_bench_json.py --provenance` holds to its contracts (fate
// counts partition the tracked fills; histogram masses match their counters;
// the used-timely rate does not recover beyond the Set-Affinity bound).
// Artifacts are byte-identical at any --threads value.
//
// Flags (all optional; argument-free = CI-scale em3d/mcf/mst fate sweep):
//   --workloads=em3d,mcf,mst   comma list (default all three; also accepts
//                              em3d-late, the late-tight-phase fixture)
//   --distances=1,2,4,8        explicit A_SKI list (default: auto ladder
//                              around each plane's Set-Affinity bound)
//   --rps=0.5                  prefetch ratios (default 0.5)
//   --jsonl=PATH               JSONL artifact (- = stdout)
//   --threads=N                0 = hardware concurrency, 1 = serial
//   --metrics-out= / --trace-out=  telemetry artifacts (prefetch.fate.*
//                              counters; see docs/telemetry.md)
//   --scale=paper, --l2=, --assoc=, --line=, --csv  as in every bench binary
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "spf/orchestrate/sweep.hpp"
#include "spf/orchestrate/workload_specs.hpp"

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Fate-mix table: one row per cell, fates as percentages of tracked fills.
spf::Table fate_table(const spf::orchestrate::SweepResult& result) {
  using spf::ProvenanceSummary;
  spf::Table t({"workload", "L2", "RP", "A_SKI", "vs bound", "status",
                "tracked", "timely(%)", "late(%)", "evicted(%)",
                "polluting(%)", "resident(%)", "fill_to_use_mean",
                "pollution_rate"});
  for (const auto& c : result.cells) {
    t.row()
        .add(c.cell.workload)
        .add(c.cell.l2.to_string())
        .add(c.cell.rp, 2)
        .add(static_cast<std::uint64_t>(c.cell.distance));
    if (!c.ok) {
      t.add("-").add("failed: " + c.error);
      for (int i = 0; i < 8; ++i) t.add("-");
      continue;
    }
    const ProvenanceSummary& p = c.cmp->sp.provenance;
    const double denom =
        p.tracked_fills == 0 ? 1.0 : static_cast<double>(p.tracked_fills);
    const auto pct = [&](std::uint64_t n) {
      return 100.0 * static_cast<double>(n) / denom;
    };
    t.add(c.cell.distance < c.cell.bound_upper ? "within" : "beyond")
        .add("ok")
        .add(p.tracked_fills)
        .add(pct(p.used_timely), 2)
        .add(pct(p.used_late), 2)
        .add(pct(p.evicted_unused), 2)
        .add(pct(p.polluting), 2)
        .add(pct(p.resident_unused), 2)
        .add(p.fill_to_use_mean(), 1)
        .add(c.cmp->sp.l2_lookups == 0
                 ? 0.0
                 : static_cast<double>(
                       c.cmp->sp.pollution.total_pollution()) /
                       static_cast<double>(c.cmp->sp.l2_lookups),
             4);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);

  orchestrate::SweepSpec spec;
  spec.provenance = true;
  for (const auto& name : split(flags.get("workloads", "em3d,mcf,mst"), ',')) {
    if (name == "em3d") {
      spec.workloads.push_back(orchestrate::em3d_spec(bench::em3d_config(scale)));
    } else if (name == "em3d-late") {
      spec.workloads.push_back(orchestrate::em3d_spec(
          bench::em3d_late_config(scale), "em3d-late"));
    } else if (name == "mcf") {
      spec.workloads.push_back(orchestrate::mcf_spec(bench::mcf_config(scale)));
    } else if (name == "mst") {
      spec.workloads.push_back(orchestrate::mst_spec(bench::mst_config(scale)));
    } else {
      std::cerr << "unknown workload '" << name
                << "' (em3d|em3d-late|mcf|mst)\n";
      return 2;
    }
  }
  for (const auto& d : split(flags.get("distances", ""), ',')) {
    std::uint32_t dist = 0;
    if (!bench::parse_u32(d, dist)) {
      std::cerr << "bad --distances value '" << d << "' (want unsigned int)\n";
      return 2;
    }
    spec.distances.push_back(dist);
  }
  spec.rps.clear();
  for (const auto& r : split(flags.get("rps", "0.5"), ',')) {
    double rp = 0.0;
    if (!bench::parse_double(r, rp)) {
      std::cerr << "bad --rps value '" << r << "' (want number)\n";
      return 2;
    }
    spec.rps.push_back(rp);
  }
  spec.geometries = {scale.l2};
  const std::string jsonl_path = flags.get("jsonl", "");
  // Constructed before the unknown-flag check: the sink consumes
  // --metrics-out=/--trace-out= and installs the telemetry session the
  // prefetch.fate.* counters land in.
  bench::TelemetrySink telemetry_sink(flags, scale, "fig_provenance");
  bench::fail_on_unknown_flags(flags);

  if (const std::string problem = spec.validate(); !problem.empty()) {
    std::cerr << "invalid sweep: " << problem << "\n";
    return 2;
  }

  // Open the artifact before the (potentially long) sweep so a bad path
  // fails in milliseconds, not after the last cell.
  std::ofstream jsonl_file;
  if (!jsonl_path.empty() && jsonl_path != "-") {
    jsonl_file.open(jsonl_path);
    if (!jsonl_file) {
      std::cerr << "cannot open " << jsonl_path << "\n";
      return 1;
    }
  }

  orchestrate::SweepOptions opts;
  opts.threads = scale.threads;
  opts.progress = orchestrate::stderr_progress("  cells");
  const orchestrate::SweepResult result = orchestrate::run_sweep(spec, opts);

  if (jsonl_path == "-") {
    result.write_jsonl(std::cout);
  } else {
    if (jsonl_file.is_open()) result.write_jsonl(jsonl_file);
    std::cout << "== fig_provenance: " << result.cells.size() << " cells ("
              << result.failed_count() << " failed) ==\n\n";
    bench::emit(fate_table(result), scale);
  }
  return result.failed_count() == 0 ? 0 : 1;
}
