// google-benchmark microbenchmarks of the simulator substrate's hot paths:
// cache access/fill, MSHR operations, prefetcher observation, Set Affinity
// streaming, helper-trace synthesis, and end-to-end simulation throughput.
#include <benchmark/benchmark.h>

#include "spf/cache/cache.hpp"
#include "spf/common/rng.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/mshr/mshr.hpp"
#include "spf/prefetch/chain.hpp"
#include "spf/profile/set_affinity.hpp"
#include "spf/sim/simulator.hpp"

namespace {

using namespace spf;

void BM_CacheAccessHit(benchmark::State& state) {
  Cache cache(CacheGeometry(1 << 20, 16, 64), ReplacementKind::kLru);
  for (LineAddr l = 0; l < 1024; ++l) cache.fill(l, FillOrigin::kDemand, 0, 0);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.below(1024), AccessKind::kRead, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheFillEvict(benchmark::State& state) {
  const auto policy = static_cast<ReplacementKind>(state.range(0));
  Cache cache(CacheGeometry(1 << 20, 16, 64), policy);
  LineAddr next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.fill(next++, FillOrigin::kDemand, 0, 0));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(to_string(policy));
}
BENCHMARK(BM_CacheFillEvict)
    ->Arg(static_cast<int>(ReplacementKind::kLru))
    ->Arg(static_cast<int>(ReplacementKind::kTreePlru))
    ->Arg(static_cast<int>(ReplacementKind::kFifo))
    ->Arg(static_cast<int>(ReplacementKind::kSrrip));

void BM_MshrAllocateDrain(benchmark::State& state) {
  MshrFile mshr(16);
  Cycle now = 0;
  for (auto _ : state) {
    for (LineAddr l = 0; l < 16; ++l) {
      mshr.allocate(now * 100 + l, now, now + 300, FillOrigin::kDemand, 0);
    }
    benchmark::DoNotOptimize(mshr.drain_completed(now + 300));
    ++now;
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_MshrAllocateDrain);

void BM_PrefetcherChainObserve(benchmark::State& state) {
  PrefetcherChain chain = PrefetcherChain::core2_default();
  std::vector<LineAddr> out;
  Addr addr = 0;
  for (auto _ : state) {
    out.clear();
    chain.observe(
        PrefetchObservation{.addr = addr, .site = 1, .was_miss = true}, out);
    benchmark::DoNotOptimize(out.data());
    addr += 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefetcherChainObserve);

void BM_SetAffinityObserve(benchmark::State& state) {
  SetAffinityAnalyzer analyzer(CacheGeometry(1 << 20, 16, 64),
                               SetAffinityMode::kRecurrent);
  Xoshiro256 rng(2);
  std::uint32_t iter = 0;
  for (auto _ : state) {
    analyzer.observe(rng.below(1u << 26), iter++ / 64);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAffinityObserve);

TraceBuffer make_micro_trace(std::uint32_t iters) {
  TraceBuffer t;
  Xoshiro256 rng(3);
  for (std::uint32_t i = 0; i < iters; ++i) {
    t.emit(static_cast<Addr>(i) * 64, i, AccessKind::kRead, 0, kFlagSpine, 1);
    for (int j = 0; j < 8; ++j) {
      t.emit(rng.below(1u << 24), i, AccessKind::kRead, 1, kFlagDelinquent, 1);
    }
  }
  return t;
}

void BM_HelperTraceSynthesis(benchmark::State& state) {
  const TraceBuffer trace = make_micro_trace(20000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_helper_trace(trace, SpParams{.a_ski = 16, .a_pre = 16}));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_HelperTraceSynthesis);

void BM_SimulatorThroughputSingleCore(benchmark::State& state) {
  const TraceBuffer trace = make_micro_trace(20000);
  SimConfig cfg;
  cfg.l2 = CacheGeometry(1 << 20, 16, 64);
  for (auto _ : state) {
    CmpSimulator sim(cfg);
    benchmark::DoNotOptimize(sim.run({CoreStream{.trace = &trace}}));
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_SimulatorThroughputSingleCore);

void BM_SimulatorThroughputWithHelper(benchmark::State& state) {
  const TraceBuffer trace = make_micro_trace(20000);
  const TraceBuffer helper =
      make_helper_trace(trace, SpParams{.a_ski = 16, .a_pre = 16});
  SimConfig cfg;
  cfg.l2 = CacheGeometry(1 << 20, 16, 64);
  for (auto _ : state) {
    CmpSimulator sim(cfg);
    benchmark::DoNotOptimize(sim.run({
        CoreStream{.trace = &trace},
        CoreStream{.trace = &helper,
                   .origin = FillOrigin::kHelper,
                   .sync = RoundSync{.leader = 0, .round_iters = 32}},
    }));
  }
  state.SetItemsProcessed(state.iterations() * (trace.size() + helper.size()));
}
BENCHMARK(BM_SimulatorThroughputWithHelper);

}  // namespace

BENCHMARK_MAIN();
