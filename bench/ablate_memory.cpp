// Ablation: sensitivity of SP and of the distance bound to the memory
// system. The Set Affinity bound is purely *spatial* (blocks per set), so it
// should not move with memory latency or bandwidth — but SP's payoff and the
// cost of violating the bound should both scale with memory pressure.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dWorkload workload(bench::em3d_config(scale));
  const TraceBuffer trace = workload.emit_trace();
  const DistanceBound bound = estimate_distance_bound(
      trace, workload.invocation_starts(), scale.l2);
  const std::uint32_t good = std::max(1u, bound.upper_limit / 2);
  const std::uint32_t bad = bound.upper_limit * 8;

  std::cout << "== Ablation: memory latency/bandwidth sensitivity (EM3D) ==\n"
            << "L2 " << scale.l2.to_string() << ", " << bound.to_string()
            << "\n\n";

  struct MemPoint {
    const char* name;
    Cycle latency;
    Cycle interval;
  };
  const MemPoint points[] = {
      {"fast DRAM, wide bus", 150, 4},
      {"baseline", 300, 8},
      {"slow DRAM", 600, 8},
      {"narrow bus", 300, 24},
      {"slow and narrow", 600, 24},
  };

  Table t({"memory", "latency", "issue interval", "SP speedup (within)",
           "SP speedup (beyond)", "penalty of violating bound (%)"});
  for (const MemPoint& mp : points) {
    SpExperimentConfig exp;
    exp.sim.l2 = scale.l2;
    exp.sim.memory.service_latency = mp.latency;
    exp.sim.memory.issue_interval = mp.interval;

    const SpRunSummary baseline = run_original(trace, exp);
    auto speedup_at = [&](std::uint32_t distance) {
      exp.params = SpParams::from_distance_rp(distance, 0.5);
      const SpRunSummary sp = run_sp_once(trace, exp);
      return static_cast<double>(baseline.runtime) /
             static_cast<double>(sp.runtime);
    };
    const double s_good = speedup_at(good);
    const double s_bad = speedup_at(bad);
    t.row()
        .add(mp.name)
        .add(static_cast<std::uint64_t>(mp.latency))
        .add(static_cast<std::uint64_t>(mp.interval))
        .add(s_good, 3)
        .add(s_bad, 3)
        .add(100.0 * (s_good - s_bad) / s_good, 1);
    std::cerr << ".";
  }
  std::cerr << "\n";
  bench::emit(t, scale);

  std::cout << "\nShape check: the bound itself is memory-independent (same "
               "good/bad distances\nthroughout); SP's speedup and the cost of "
               "violating the bound both grow with\nmemory latency, while a "
               "narrow bus caps how much prefetching can overlap at all.\n";
  return 0;
}
