// Figure 6 reproduction: MST access-behavior change and normalized runtime
// with increasing prefetch distance (paper sweeps distances up to ~100).
#include "fig_behavior.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  MstWorkload workload(bench::mst_config(scale));
  const TraceBuffer trace = workload.emit_trace();
  // The paper stops MST's sweep at distance 100 ("runtime doesn't change a
  // lot when the prefetch distance is bigger than 30 in MST"), well below
  // MST's SA bound — mirror that.
  const std::vector<std::uint32_t> distances{5, 10, 20, 30, 50, 70, 100, 200};
  return bench::run_behavior_figure(
      "Figure 6", "MST", trace, workload.invocation_starts(),
      bench::BehaviorRefs{
          .tmiss_eliminated = 0.2783,
          .phit_gained = 0.2971,
          .thit_note = "totally hits rise at small distance but fall at "
                       "larger distance; runtime flattens past ~30",
      },
      scale, &distances);
}
