// Ablation (paper's future work): the effect of memory access pattern on SP
// effectiveness.
//
// Sweeps the synthetic workload's pattern mix from hardware-prefetcher-
// friendly (sequential/strided heavy) to irregular-heavy (pointer-chase
// style) and reports: the pattern classifier's verdicts, SP's speedup at a
// within-bound distance, and the speedup with hardware prefetchers alone —
// showing SP's headroom tracks the irregular fraction.
#include <iostream>

#include "bench_common.hpp"
#include "spf/profile/pattern.hpp"
#include "spf/workloads/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  std::cout << "== Ablation: access pattern vs SP effectiveness ==\n"
            << "L2 " << scale.l2.to_string() << "\n\n";

  struct Mix {
    const char* name;
    std::uint32_t seq;
    std::uint32_t strided;
    std::uint32_t random;
  };
  const Mix mixes[] = {
      {"sequential-heavy", 12, 2, 2},
      {"strided-heavy", 2, 12, 2},
      {"balanced", 5, 5, 6},
      {"irregular-heavy", 2, 2, 12},
      {"pure pointer-chase", 0, 0, 16},
  };

  Table t({"mix", "irregular frac", "hw-pf alone speedup", "SP speedup",
           "SP dTmiss(%)", "pollution"});
  for (const Mix& mix : mixes) {
    SyntheticConfig wcfg;
    wcfg.iterations = scale.paper ? 120000 : 24000;
    wcfg.sequential_lines = mix.seq;
    wcfg.strided_reads = mix.strided;
    wcfg.random_reads = mix.random;
    wcfg.random_footprint_lines = scale.l2.size_bytes() / 64 * 4;
    const SyntheticWorkload w(wcfg);
    const TraceBuffer trace = w.emit_trace();

    const PatternReport patterns = classify_patterns(trace);

    const DistanceBound bound =
        estimate_distance_bound(trace, w.invocation_starts(), scale.l2);
    SpExperimentConfig exp;
    exp.sim.l2 = scale.l2;
    exp.params =
        SpParams::from_distance_rp(std::max(1u, bound.upper_limit / 2), 0.5);

    // Hardware prefetchers alone: hw-on vs hw-off, no helper.
    SpExperimentConfig hw_off = exp;
    hw_off.baseline_hw_prefetch = false;
    const SpRunSummary no_pf = run_original(trace, hw_off);
    const SpRunSummary hw_only = run_original(trace, exp);
    const double hw_speedup = static_cast<double>(no_pf.runtime) /
                              static_cast<double>(hw_only.runtime);

    // SP on top of hardware prefetchers.
    const SpComparison cmp = run_sp_experiment(trace, exp);

    t.row()
        .add(mix.name)
        .add(patterns.irregular_fraction, 2)
        .add(hw_speedup, 3)
        .add(1.0 / cmp.norm_runtime(), 3)
        .add(100.0 * cmp.delta_totally_miss(), 1)
        .add(cmp.sp.pollution.total_pollution());
    std::cerr << ".";
  }
  std::cerr << "\n";
  bench::emit(t, scale);

  std::cout << "\nShape check: hardware prefetchers capture the sequential/"
               "strided mixes, leaving\nSP little to add; as the irregular "
               "fraction grows, hw speedup fades and SP's\nspeedup takes "
               "over — the regime the paper targets (LDS traversal).\n";
  return 0;
}
