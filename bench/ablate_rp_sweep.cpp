// Ablation: the RP-from-CALR rule (paper §II.B).
//
// Sweeps prefetch ratio RP for workload variants with different CALR (by
// scaling the compute gap in the EM3D inner loop). The paper's rule predicts:
// low CALR -> RP 0.5 wins (helper must skip half the loads to keep up);
// CALR >= 1 -> RP 1 wins (helper has slack to prefetch everything).
//
// Orchestrated in two fan-out phases (spf::orchestrate): per-gap trace
// emission + profiling + baseline, then one SP run per (gap, RP) cell.
// Aggregation is slot-indexed, so the table is identical at any --threads.
#include <array>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dConfig base = bench::em3d_config(scale);
  base.nodes = std::min<std::uint32_t>(base.nodes, 12000);

  std::cout << "== Ablation: prefetch ratio vs CALR (EM3D variants) ==\n"
            << "L2 " << scale.l2.to_string() << "\n\n";

  constexpr std::array<std::uint32_t, 4> kGaps{1u, 60u, 200u, 500u};
  constexpr std::array<double, 4> kRps{0.25, 0.5, 0.75, 1.0};

  struct GapPrep {
    TraceBuffer trace;
    CalrEstimate calr;
    double rule_rp = 0.0;
    std::uint32_t distance = 0;
    SpRunSummary baseline;
  };
  std::vector<GapPrep> preps(kGaps.size());
  auto outcomes = orchestrate::run_indexed(
      kGaps.size(), scale.threads,
      [&](std::size_t i) {
        Em3dConfig cfg = base;
        cfg.compute_cycles_per_dep = kGaps[i];
        Em3dWorkload workload(cfg);
        GapPrep& p = preps[i];
        p.trace = workload.emit_trace();
        CalrConfig cc;
        cc.l2 = scale.l2;
        p.calr = estimate_calr(p.trace, cc);
        p.rule_rp = SpParams::rp_from_calr(p.calr.calr);
        const DistanceBound bound = estimate_distance_bound(
            p.trace, workload.invocation_starts(), scale.l2);
        p.distance = std::max(1u, bound.upper_limit / 2);
        SpExperimentConfig exp;
        exp.sim.l2 = scale.l2;
        p.baseline = run_original(p.trace, exp);
      },
      orchestrate::stderr_progress("  profile+baseline"));
  std::string error = orchestrate::first_error(outcomes);
  if (!error.empty()) {
    std::cerr << "prep failed: " << error << "\n";
    return 1;
  }

  std::vector<SpComparison> cells(kGaps.size() * kRps.size());
  std::vector<SpParams> cell_params(cells.size());
  outcomes = orchestrate::run_indexed(
      cells.size(), scale.threads,
      [&](std::size_t i) {
        const GapPrep& p = preps[i / kRps.size()];
        SpExperimentConfig exp;
        exp.sim.l2 = scale.l2;
        exp.params = SpParams::from_distance_rp(p.distance, kRps[i % kRps.size()]);
        cell_params[i] = exp.params;
        cells[i].original = p.baseline;
        cells[i].sp = run_sp_once(p.trace, exp);
      },
      orchestrate::stderr_progress("  rp sweep"));
  error = orchestrate::first_error(outcomes);
  if (!error.empty()) {
    std::cerr << "sweep failed: " << error << "\n";
    return 1;
  }

  Table t({"compute/dep (cycles)", "measured CALR", "rule RP", "RP", "A_SKI",
           "A_PRE", "Normalized_Runtime", "dTotally_miss(%)"});
  for (std::size_t g = 0; g < kGaps.size(); ++g) {
    const GapPrep& p = preps[g];
    for (std::size_t r = 0; r < kRps.size(); ++r) {
      const std::size_t i = g * kRps.size() + r;
      t.row()
          .add(static_cast<std::uint64_t>(kGaps[g]))
          .add(p.calr.calr, 3)
          .add(p.rule_rp, 2)
          .add(kRps[r], 2)
          .add(static_cast<std::uint64_t>(cell_params[i].a_ski))
          .add(static_cast<std::uint64_t>(cell_params[i].a_pre))
          .add(cells[i].norm_runtime(), 3)
          .add(100.0 * cells[i].delta_totally_miss(), 2);
    }
  }
  bench::emit(t, scale);

  std::cout << "\nShape check: at low CALR the best runtime sits near the "
               "rule's RP; at high CALR\nlarger RP keeps winning because the "
               "helper's loads hide entirely under compute.\n";
  return 0;
}
