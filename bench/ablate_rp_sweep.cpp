// Ablation: the RP-from-CALR rule (paper §II.B).
//
// Sweeps prefetch ratio RP for workload variants with different CALR (by
// scaling the compute gap in the EM3D inner loop). The paper's rule predicts:
// low CALR -> RP 0.5 wins (helper must skip half the loads to keep up);
// CALR >= 1 -> RP 1 wins (helper has slack to prefetch everything).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dConfig base = bench::em3d_config(scale);
  base.nodes = std::min<std::uint32_t>(base.nodes, 12000);

  std::cout << "== Ablation: prefetch ratio vs CALR (EM3D variants) ==\n"
            << "L2 " << scale.l2.to_string() << "\n\n";

  Table t({"compute/dep (cycles)", "measured CALR", "rule RP", "RP", "A_SKI",
           "A_PRE", "Normalized_Runtime", "dTotally_miss(%)"});

  for (std::uint32_t gap : {1u, 60u, 200u, 500u}) {
    Em3dConfig cfg = base;
    cfg.compute_cycles_per_dep = gap;
    Em3dWorkload workload(cfg);
    const TraceBuffer trace = workload.emit_trace();

    CalrConfig cc;
    cc.l2 = scale.l2;
    const CalrEstimate calr = estimate_calr(trace, cc);
    const double rule_rp = SpParams::rp_from_calr(calr.calr);
    const DistanceBound bound = estimate_distance_bound(
        trace, workload.invocation_starts(), scale.l2);
    const std::uint32_t distance = std::max(1u, bound.upper_limit / 2);

    SpExperimentConfig exp;
    exp.sim.l2 = scale.l2;
    const SpRunSummary baseline = run_original(trace, exp);
    for (double rp : {0.25, 0.5, 0.75, 1.0}) {
      exp.params = SpParams::from_distance_rp(distance, rp);
      SpComparison cmp;
      cmp.original = baseline;
      cmp.sp = run_sp_once(trace, exp);
      t.row()
          .add(static_cast<std::uint64_t>(gap))
          .add(calr.calr, 3)
          .add(rule_rp, 2)
          .add(rp, 2)
          .add(static_cast<std::uint64_t>(exp.params.a_ski))
          .add(static_cast<std::uint64_t>(exp.params.a_pre))
          .add(cmp.norm_runtime(), 3)
          .add(100.0 * cmp.delta_totally_miss(), 2);
    }
    std::cerr << ".";
  }
  std::cerr << "\n";
  bench::emit(t, scale);

  std::cout << "\nShape check: at low CALR the best runtime sits near the "
               "rule's RP; at high CALR\nlarger RP keeps winning because the "
               "helper's loads hide entirely under compute.\n";
  return 0;
}
