// fig_adaptive — adaptive-vs-static distance-controller ablation at paper
// scale.
//
// Runs the (workload × A_SKI × controller) grid through
// spf::orchestrate::run_sweep with the controller axis engaged: every
// distance is simulated three ways — static (the paper's fixed A_SKI),
// adaptive-AIMD (feedback walk, free range), and adaptive-capped (the same
// walk with max_distance clamped to the plane's Set-Affinity bound, i.e. the
// paper's thesis expressed as a controller policy). The JSONL artifact
// carries, per cell, the normalized runtime / pollution rate next to the
// controller's final and mean distance and full trajectory, so one file
// answers "does the feedback walk rediscover the static bound, and what does
// it cost while getting there". Artifacts are byte-identical at any
// --threads value (slot-indexed aggregation; see docs/orchestrator.md).
//
// Flags (all optional; argument-free = CI-scale em3d/mcf/mst ablation):
//   --workloads=em3d,mcf,mst     comma list (default all three)
//   --controllers=static,aimd,capped  controller axis (default all three)
//   --distances=1,2,4,8          explicit starting A_SKI list (default:
//                                auto ladder around each plane's bound)
//   --rps=0.5                    prefetch ratios (default 0.5)
//   --interval=N                 controller observation interval in outer
//                                iterations (default 1000)
//   --max-distance=N             AIMD ceiling before any bound clamp
//                                (default 1024)
//   --warm                       carry simulator cache/MSHR state across
//                                interval boundaries (default off: cold
//                                intervals, the bit-identical reference)
//   --jsonl=PATH                 JSONL artifact (- = stdout)
//   --threads=N                  0 = hardware concurrency, 1 = serial
//   --metrics-out= / --trace-out=  telemetry artifacts (adaptive.interval
//                                spans + adaptive.distance counter track)
//   --scale=paper, --l2=, --assoc=, --line=, --csv  as in every bench binary
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "spf/orchestrate/sweep.hpp"
#include "spf/orchestrate/workload_specs.hpp"

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);

  orchestrate::SweepSpec spec;
  for (const auto& name : split(flags.get("workloads", "em3d,mcf,mst"), ',')) {
    if (name == "em3d") {
      spec.workloads.push_back(orchestrate::em3d_spec(bench::em3d_config(scale)));
    } else if (name == "mcf") {
      spec.workloads.push_back(orchestrate::mcf_spec(bench::mcf_config(scale)));
    } else if (name == "mst") {
      spec.workloads.push_back(orchestrate::mst_spec(bench::mst_config(scale)));
    } else {
      std::cerr << "unknown workload '" << name << "' (em3d|mcf|mst)\n";
      return 2;
    }
  }
  spec.controllers.clear();
  for (const auto& c : split(flags.get("controllers", "static,aimd,capped"), ',')) {
    if (c == "static") {
      spec.controllers.push_back(orchestrate::ControllerKind::kStatic);
    } else if (c == "aimd") {
      spec.controllers.push_back(orchestrate::ControllerKind::kAdaptiveAimd);
    } else if (c == "capped") {
      spec.controllers.push_back(orchestrate::ControllerKind::kAdaptiveCapped);
    } else {
      std::cerr << "unknown controller '" << c << "' (static|aimd|capped)\n";
      return 2;
    }
  }
  for (const auto& d : split(flags.get("distances", ""), ',')) {
    std::uint32_t dist = 0;
    if (!bench::parse_u32(d, dist)) {
      std::cerr << "bad --distances value '" << d << "' (want unsigned int)\n";
      return 2;
    }
    spec.distances.push_back(dist);
  }
  spec.rps.clear();
  for (const auto& r : split(flags.get("rps", "0.5"), ',')) {
    double rp = 0.0;
    if (!bench::parse_double(r, rp)) {
      std::cerr << "bad --rps value '" << r << "' (want number)\n";
      return 2;
    }
    spec.rps.push_back(rp);
  }
  spec.geometries = {scale.l2};
  spec.adaptive.interval_iters = static_cast<std::uint32_t>(
      bench::require_uint(flags, "interval", 1000));
  spec.adaptive.max_distance = static_cast<std::uint32_t>(
      bench::require_uint(flags, "max-distance", 1024));
  spec.adaptive.warm_intervals = flags.get_bool("warm", false);
  const std::string jsonl_path = flags.get("jsonl", "");
  // Constructed before the unknown-flag check: the sink consumes
  // --metrics-out=/--trace-out= and installs the telemetry session the sweep
  // (and the per-interval adaptive spans) record into.
  bench::TelemetrySink telemetry_sink(flags, scale, "fig_adaptive");
  bench::fail_on_unknown_flags(flags);

  if (const std::string problem = spec.validate(); !problem.empty()) {
    std::cerr << "invalid sweep: " << problem << "\n";
    return 2;
  }

  // Open the artifact before the (potentially long) sweep so a bad path
  // fails in milliseconds, not after the last cell.
  std::ofstream jsonl_file;
  if (!jsonl_path.empty() && jsonl_path != "-") {
    jsonl_file.open(jsonl_path);
    if (!jsonl_file) {
      std::cerr << "cannot open " << jsonl_path << "\n";
      return 1;
    }
  }

  orchestrate::SweepOptions opts;
  opts.threads = scale.threads;
  opts.progress = orchestrate::stderr_progress("  cells");
  const orchestrate::SweepResult result = orchestrate::run_sweep(spec, opts);

  if (jsonl_path == "-") {
    result.write_jsonl(std::cout);
  } else {
    if (jsonl_file.is_open()) result.write_jsonl(jsonl_file);
    std::cout << "== fig_adaptive: " << result.cells.size() << " cells ("
              << result.failed_count() << " failed) ==\n\n";
    bench::emit(result.to_table(), scale);
  }
  return result.failed_count() == 0 ? 0 : 1;
}
