// Ablation: shared-cache interference under co-running (paper §I motivation:
// threaded prefetching "may lead to increased stress on limited shared cache
// space and bus bandwidth").
//
// Four machines, all sharing one L2 and one memory channel:
//   (a) EM3D alone;
//   (b) EM3D + MCF co-running (no helpers) — plain multiprogramming;
//   (c) EM3D + MCF, EM3D gets a within-bound SP helper;
//   (d) same but the helper runs far beyond the bound.
// Reported per workload: normalized runtime vs running alone. The polluting
// helper must hurt not only EM3D but also the innocent co-runner.
#include <iostream>

#include "bench_common.hpp"
#include "spf/sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dConfig ecfg = bench::em3d_config(scale);
  ecfg.nodes = std::min<std::uint32_t>(ecfg.nodes, 16000);
  Em3dWorkload em3d(ecfg);
  const TraceBuffer em3d_trace = em3d.emit_trace();

  McfConfig mcfg = bench::mcf_config(scale);
  mcfg.passes = 2;
  McfWorkload mcf(mcfg);
  const TraceBuffer mcf_trace = mcf.emit_trace();

  const DistanceBound bound = estimate_distance_bound(
      em3d_trace, em3d.invocation_starts(), scale.l2);

  SimConfig sim;
  sim.l2 = scale.l2;

  auto run = [&](const std::vector<CoreStream>& streams) {
    CmpSimulator simulator(sim);
    return simulator.run(streams);
  };

  std::cout << "== Ablation: co-run interference (EM3D + MCF sharing L2) ==\n"
            << "L2 " << scale.l2.to_string() << ", EM3D " << bound.to_string()
            << "\n\n";

  // Solo baselines.
  const SimResult em3d_solo = run({CoreStream{.trace = &em3d_trace}});
  std::cerr << ".";
  const SimResult mcf_solo = run({CoreStream{.trace = &mcf_trace}});
  std::cerr << ".";

  Table t({"machine", "EM3D norm runtime", "MCF norm runtime",
           "L2 evictions", "pollution events"});
  auto add_row = [&](const std::string& name, const SimResult& r,
                     std::size_t mcf_core) {
    t.row()
        .add(name)
        .add(static_cast<double>(r.per_core[0].finish_time) /
                 static_cast<double>(em3d_solo.per_core[0].finish_time),
             3)
        .add(static_cast<double>(r.per_core[mcf_core].finish_time) /
                 static_cast<double>(mcf_solo.per_core[0].finish_time),
             3)
        .add(r.l2.evictions)
        .add(r.pollution.total_pollution());
  };

  const SimResult corun = run({
      CoreStream{.trace = &em3d_trace},
      CoreStream{.trace = &mcf_trace},
  });
  std::cerr << ".";
  add_row("co-run, no helper", corun, 1);

  for (std::uint32_t distance :
       {std::max(1u, bound.upper_limit / 2), bound.upper_limit * 8}) {
    const SpParams params = SpParams::from_distance_rp(distance, 0.5);
    const TraceBuffer helper = make_helper_trace(em3d_trace, params);
    const SimResult r = run({
        CoreStream{.trace = &em3d_trace},
        CoreStream{.trace = &mcf_trace},
        CoreStream{.trace = &helper,
                   .origin = FillOrigin::kHelper,
                   .sync = RoundSync{.leader = 0, .round_iters = params.round()}},
    });
    std::cerr << ".";
    add_row("co-run + SP helper, distance " + std::to_string(distance) +
                (bound.allows(distance) ? " (within)" : " (beyond)"),
            r, 1);
  }
  std::cerr << "\n";
  bench::emit(t, scale);

  std::cout << "\nShape check: the within-bound helper buys EM3D a large "
               "speedup for a modest\nbandwidth tax on MCF; the beyond-bound "
               "helper floods the shared L2 (evictions\nand pollution jump) "
               "and gives most of EM3D's gain back while still taxing MCF.\n";
  return 0;
}
