// Ablation: shared-cache interference under co-running (paper §I motivation:
// threaded prefetching "may lead to increased stress on limited shared cache
// space and bus bandwidth").
//
// Five machines, all sharing one L2 and one memory channel:
//   (a) EM3D alone;           (b) MCF alone;
//   (c) EM3D + MCF co-running (no helpers) — plain multiprogramming;
//   (d) EM3D + MCF, EM3D gets a within-bound SP helper;
//   (e) same but the helper runs far beyond the bound.
// Reported per workload: normalized runtime vs running alone. The polluting
// helper must hurt not only EM3D but also the innocent co-runner.
//
// All five simulations are independent, so they fan out over
// spf::orchestrate (--threads); rows aggregate in machine order.
#include <array>
#include <iostream>

#include "bench_common.hpp"
#include "spf/sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dConfig ecfg = bench::em3d_config(scale);
  ecfg.nodes = std::min<std::uint32_t>(ecfg.nodes, 16000);
  Em3dWorkload em3d(ecfg);
  const TraceBuffer em3d_trace = em3d.emit_trace();

  McfConfig mcfg = bench::mcf_config(scale);
  mcfg.passes = 2;
  McfWorkload mcf(mcfg);
  const TraceBuffer mcf_trace = mcf.emit_trace();

  const DistanceBound bound = estimate_distance_bound(
      em3d_trace, em3d.invocation_starts(), scale.l2);
  const std::uint32_t within = std::max(1u, bound.upper_limit / 2);
  const std::uint32_t beyond = bound.upper_limit * 8;

  SimConfig sim;
  sim.l2 = scale.l2;

  std::cout << "== Ablation: co-run interference (EM3D + MCF sharing L2) ==\n"
            << "L2 " << scale.l2.to_string() << ", EM3D " << bound.to_string()
            << "\n\n";

  // Machines by slot: 0 = EM3D solo, 1 = MCF solo, 2 = plain co-run,
  // 3 = co-run + within-bound helper, 4 = co-run + beyond-bound helper.
  std::vector<SimResult> machines(5);
  const auto outcomes = orchestrate::run_indexed(
      machines.size(), scale.threads,
      [&](std::size_t i) {
        CmpSimulator simulator(sim);
        switch (i) {
          case 0:
            machines[i] = simulator.run({CoreStream{.trace = &em3d_trace}});
            return;
          case 1:
            machines[i] = simulator.run({CoreStream{.trace = &mcf_trace}});
            return;
          case 2:
            machines[i] = simulator.run({CoreStream{.trace = &em3d_trace},
                                         CoreStream{.trace = &mcf_trace}});
            return;
          default: {
            const SpParams params = SpParams::from_distance_rp(
                i == 3 ? within : beyond, 0.5);
            const TraceBuffer helper = make_helper_trace(em3d_trace, params);
            machines[i] = simulator.run({
                CoreStream{.trace = &em3d_trace},
                CoreStream{.trace = &mcf_trace},
                CoreStream{.trace = &helper,
                           .origin = FillOrigin::kHelper,
                           .sync = RoundSync{.leader = 0,
                                             .round_iters = params.round()}},
            });
          }
        }
      },
      orchestrate::stderr_progress("  machines"));
  const std::string error = orchestrate::first_error(outcomes);
  if (!error.empty()) {
    std::cerr << "co-run simulation failed: " << error << "\n";
    return 1;
  }

  const SimResult& em3d_solo = machines[0];
  const SimResult& mcf_solo = machines[1];

  Table t({"machine", "EM3D norm runtime", "MCF norm runtime",
           "L2 evictions", "pollution events"});
  auto add_row = [&](const std::string& name, const SimResult& r,
                     std::size_t mcf_core) {
    t.row()
        .add(name)
        .add(static_cast<double>(r.per_core[0].finish_time) /
                 static_cast<double>(em3d_solo.per_core[0].finish_time),
             3)
        .add(static_cast<double>(r.per_core[mcf_core].finish_time) /
                 static_cast<double>(mcf_solo.per_core[0].finish_time),
             3)
        .add(r.l2.evictions)
        .add(r.pollution.total_pollution());
  };

  add_row("co-run, no helper", machines[2], 1);
  add_row("co-run + SP helper, distance " + std::to_string(within) +
              (bound.allows(within) ? " (within)" : " (beyond)"),
          machines[3], 1);
  add_row("co-run + SP helper, distance " + std::to_string(beyond) +
              (bound.allows(beyond) ? " (within)" : " (beyond)"),
          machines[4], 1);
  bench::emit(t, scale);

  std::cout << "\nShape check: the within-bound helper buys EM3D a large "
               "speedup for a modest\nbandwidth tax on MCF; the beyond-bound "
               "helper floods the shared L2 (evictions\nand pollution jump) "
               "and gives most of EM3D's gain back while still taxing MCF.\n";
  return 0;
}
