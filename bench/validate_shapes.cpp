// Validation scoreboard: every qualitative claim this reproduction makes
// about the paper, checked programmatically in one run. This is the
// executable summary of EXPERIMENTS.md — if a code change breaks a shape,
// this binary says which one.
//
// Runs at a compact scale (128 KB L2, small inputs) so the whole scoreboard
// finishes in tens of seconds.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "spf/profile/invocations.hpp"
#include "spf/sim/simulator.hpp"

namespace {

struct Check {
  std::string claim;
  bool pass = false;
  std::string detail;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  const CacheGeometry l2(128 * 1024, 16, 64);
  std::vector<Check> checks;
  auto fmt2 = [](double v) { return format_fixed(v, 3); };

  // ---- workloads and shared artifacts ---------------------------------
  Em3dConfig ecfg;
  ecfg.nodes = 4000;
  ecfg.arity = 32;
  ecfg.passes = 1;
  Em3dWorkload em3d(ecfg);
  const TraceBuffer em3d_trace = em3d.emit_trace();
  const DistanceBound em3d_bound =
      estimate_distance_bound(em3d_trace, em3d.invocation_starts(), l2);
  std::cerr << ".";

  McfConfig mcfg;
  mcfg.nodes = 3000;
  mcfg.arcs = 18000;
  mcfg.passes = 2;
  McfWorkload mcf(mcfg);
  const TraceBuffer mcf_trace = mcf.emit_trace();
  const DistanceBound mcf_bound =
      estimate_distance_bound(mcf_trace, mcf.invocation_starts(), l2);
  std::cerr << ".";

  MstConfig mstc;
  mstc.vertices = 500;
  mstc.degree = 32;
  mstc.buckets = 16;
  MstWorkload mst(mstc);
  const TraceBuffer mst_trace = mst.emit_trace();
  const WorkloadSaResult mst_sa =
      analyze_workload_sa(mst_trace, mst.invocation_starts(), l2);
  std::cerr << ".";

  auto sweep = [&](const TraceBuffer& trace, std::uint32_t distance,
                   bool hw = true) {
    SpExperimentConfig cfg;
    cfg.sim.l2 = l2;
    cfg.sim.hw_prefetch = hw;
    cfg.baseline_hw_prefetch = hw;
    cfg.params = SpParams::from_distance_rp(distance, 0.5);
    const SpComparison cmp = run_sp_experiment(trace, cfg);
    std::cerr << ".";
    return cmp;
  };

  const std::uint32_t good = std::max(1u, em3d_bound.upper_limit / 2);
  const std::uint32_t bad = em3d_bound.upper_limit * 8;
  const SpComparison em3d_good = sweep(em3d_trace, good);
  const SpComparison em3d_bad = sweep(em3d_trace, bad);

  // ---- Table II: SA ordering ------------------------------------------
  {
    const auto e = em3d_bound.original_min_sa;
    checks.push_back(Check{
        "Table II: EM3D min SA is far below MCF's (ordering)",
        e * 8 < mcf_bound.original_min_sa,
        "em3d=" + std::to_string(e) +
            " mcf=" + std::to_string(mcf_bound.original_min_sa)});
    checks.push_back(Check{
        "Table II: EM3D min SA is below MST's",
        mst_sa.merged.any_saturated() && e * 2 < mst_sa.merged.min_sa(),
        "em3d=" + std::to_string(e) + " mst=" +
            std::to_string(mst_sa.merged.any_saturated()
                               ? mst_sa.merged.min_sa()
                               : 0)});
  }

  // ---- Figures 2/4: EM3D distance sensitivity -------------------------
  checks.push_back(Check{
      "Fig 2/4: SP within the bound beats the original run",
      em3d_good.norm_runtime() < 0.95,
      "norm_runtime=" + fmt2(em3d_good.norm_runtime())});
  checks.push_back(Check{
      "Fig 2/4: runtime degrades beyond the bound",
      em3d_bad.norm_runtime() > em3d_good.norm_runtime() + 0.02,
      fmt2(em3d_good.norm_runtime()) + " -> " + fmt2(em3d_bad.norm_runtime())});
  checks.push_back(Check{
      "Fig 4: totally-hit gains shrink beyond the bound",
      em3d_bad.delta_totally_hit() < em3d_good.delta_totally_hit(),
      fmt2(em3d_good.delta_totally_hit()) + " -> " +
          fmt2(em3d_bad.delta_totally_hit())});
  checks.push_back(Check{
      "Fig 4: pollution grows with distance",
      em3d_bad.sp.pollution.total_pollution() >
          2 * em3d_good.sp.pollution.total_pollution(),
      std::to_string(em3d_good.sp.pollution.total_pollution()) + " -> " +
          std::to_string(em3d_bad.sp.pollution.total_pollution())});

  // ---- Figure 5: MCF plateau ------------------------------------------
  {
    const SpComparison a = sweep(mcf_trace, mcf_bound.upper_limit / 4);
    const SpComparison b = sweep(mcf_trace, mcf_bound.upper_limit / 2);
    const SpComparison c = sweep(mcf_trace, mcf_bound.upper_limit * 4);
    checks.push_back(Check{
        "Fig 5: MCF runtime flat across the huge within-bound range",
        std::abs(a.norm_runtime() - b.norm_runtime()) < 0.02,
        fmt2(a.norm_runtime()) + " vs " + fmt2(b.norm_runtime())});
    checks.push_back(Check{
        "Fig 5: MCF collapses only past the SA scale",
        c.norm_runtime() > b.norm_runtime() + 0.05,
        fmt2(b.norm_runtime()) + " -> " + fmt2(c.norm_runtime())});
  }

  // ---- Figure 6: MST knee ----------------------------------------------
  {
    const SpComparison d5 = sweep(mst_trace, 5);
    const SpComparison d30 = sweep(mst_trace, 30);
    const SpComparison d100 = sweep(mst_trace, 100);
    checks.push_back(Check{
        "Fig 6: MST improves from tiny distances up to ~30",
        d30.norm_runtime() < d5.norm_runtime(),
        fmt2(d5.norm_runtime()) + " -> " + fmt2(d30.norm_runtime())});
    checks.push_back(Check{
        "Fig 6: MST flattens past ~30",
        std::abs(d100.norm_runtime() - d30.norm_runtime()) < 0.03,
        fmt2(d30.norm_runtime()) + " vs " + fmt2(d100.norm_runtime())});
    checks.push_back(Check{
        "Fig 6: MST partial hits shrink as distance grows",
        d100.delta_partially_hit() < d5.delta_partially_hit(),
        fmt2(d5.delta_partially_hit()) + " -> " +
            fmt2(d100.delta_partially_hit())});
  }

  // ---- RP rule ----------------------------------------------------------
  {
    SpExperimentConfig cfg;
    cfg.sim.l2 = l2;
    const SpRunSummary baseline = run_original(em3d_trace, cfg);
    cfg.params = SpParams::from_distance_rp(good, 0.5);
    const SpRunSummary rp_half = run_sp_once(em3d_trace, cfg);
    cfg.params = SpParams::from_distance_rp(good, 1.0);
    const SpRunSummary rp_one = run_sp_once(em3d_trace, cfg);
    std::cerr << ".";
    checks.push_back(Check{
        "RP rule: at CALR~0, RP=0.5 (skipping) beats RP=1 (conventional)",
        rp_half.runtime < rp_one.runtime,
        std::to_string(rp_half.runtime) + " vs " + std::to_string(rp_one.runtime) +
            " (baseline " + std::to_string(baseline.runtime) + ")"});
  }

  // ---- Pollution case 3 needs hardware prefetchers ---------------------
  {
    const SpComparison hw_on = sweep(em3d_trace, bad, /*hw=*/true);
    const SpComparison hw_off = sweep(em3d_trace, bad, /*hw=*/false);
    checks.push_back(Check{
        "Case 3 exists only with hardware prefetchers",
        hw_on.sp.pollution.case3_hw_displaced > 0 &&
            hw_off.sp.pollution.case3_hw_displaced == 0,
        std::to_string(hw_on.sp.pollution.case3_hw_displaced) + " vs " +
            std::to_string(hw_off.sp.pollution.case3_hw_displaced)});
  }

  // ---- Occupancy inflation (§III.A) ------------------------------------
  {
    SimConfig sim;
    sim.l2 = l2;
    sim.occupancy_sample_interval = 100000;
    auto occupancy_at = [&](std::uint32_t distance) {
      const SpParams params = SpParams::from_distance_rp(distance, 0.5);
      const TraceBuffer helper = make_helper_trace(em3d_trace, params);
      CmpSimulator simulator(sim);
      const SimResult r = simulator.run({
          CoreStream{.trace = &em3d_trace},
          CoreStream{.trace = &helper,
                     .origin = FillOrigin::kHelper,
                     .sync = RoundSync{.leader = 0,
                                       .round_iters = params.round()}},
      });
      std::cerr << ".";
      return r.occupancy.mean_unused_prefetch_fraction();
    };
    const double occ_good = occupancy_at(good);
    const double occ_bad = occupancy_at(bad);
    checks.push_back(Check{
        "III.A: unused-prefetch occupancy grows with distance",
        occ_bad > occ_good * 1.5,
        fmt2(occ_good) + " -> " + fmt2(occ_bad)});
  }
  std::cerr << "\n";

  // ---- report -----------------------------------------------------------
  std::cout << "== Shape validation scoreboard (L2 " << l2.to_string()
            << ") ==\n\n";
  Table t({"claim", "result", "measured"});
  int failures = 0;
  for (const Check& c : checks) {
    t.row().add(c.claim).add(c.pass ? "PASS" : "FAIL").add(c.detail);
    failures += c.pass ? 0 : 1;
  }
  bench::emit(t, scale);
  std::cout << "\n" << (checks.size() - static_cast<std::size_t>(failures))
            << "/" << checks.size() << " shape checks passed\n";
  return failures == 0 ? 0 : 1;
}
