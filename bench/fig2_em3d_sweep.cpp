// Figure 2 reproduction: "Performance change with growing prefetch distance"
// for EM3D — normalized runtime, normalized memory accesses, and normalized
// hot-loop L2 misses as prefetch distance grows.
//
// Paper shape: all three series rise together with growing distance; larger
// distance introduces cache pollution and degrades EM3D's performance.
//
// The per-distance SP runs fan out over --threads workers through
// spf::orchestrate (bench::distance_sweep); the emitted table is
// byte-identical at any thread count.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  const Em3dConfig cfg = bench::em3d_config(scale);
  Em3dWorkload workload(cfg);
  const TraceBuffer trace = workload.emit_trace();
  const DistanceBound bound = estimate_distance_bound(
      trace, workload.invocation_starts(), scale.l2);

  std::cout << "== Figure 2: EM3D performance vs prefetch distance ==\n"
            << "L2 " << scale.l2.to_string() << ", RP=0.5, "
            << bound.to_string() << "\n\n";

  const auto points = bench::distance_sweep(
      trace, bench::distances_around(bound.upper_limit), scale);

  Table t({"prefetch distance", "vs bound", "Normalized_Runtime",
           "Normalized_MemoryAccesses", "Normalized_HotMisses"});
  for (const auto& p : points) {
    t.row()
        .add(static_cast<std::uint64_t>(p.distance))
        .add(bound.allows(p.distance) ? "within" : "beyond")
        .add(p.cmp.norm_runtime(), 3)
        .add(p.cmp.norm_memory_accesses(), 3)
        .add(p.cmp.norm_hot_misses(), 3);
  }
  bench::emit(t, scale);

  std::cout << "\nShape check vs paper Fig. 2: runtime, memory accesses and "
               "hot misses\nshare an increasing trend as distance grows past "
               "the estimated bound.\n";
  return 0;
}
