// Ablation: helper construction by program slicing vs by trace flags.
//
// The trace-flag transform (make_helper_trace) keeps *every* read of a
// pre-executed iteration — including value-only loads like EM3D's
// coefficient stream. True compiler-style slicing (spf/ir/slice.hpp) keeps
// only the backward closure of the delinquent loads' addresses, so the
// helper issues fewer loads for identical prefetch coverage, spending less
// bandwidth and polluting less.
#include <iostream>

#include "bench_common.hpp"
#include "spf/ir/interp.hpp"
#include "spf/ir/slice.hpp"
#include "spf/sim/simulator.hpp"
#include "spf/workloads/em3d_ir.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dConfig cfg = bench::em3d_config(scale);
  cfg.nodes = std::min<std::uint32_t>(cfg.nodes, 16000);
  Em3dWorkload model(cfg);
  Em3dIr em3d = build_em3d_ir(model);

  // Main thread stream: the word-accurate IR execution.
  const ir::InterpResult main_run = ir::interpret(em3d.program, em3d.memory);
  const DistanceBound bound = estimate_distance_bound(
      main_run.trace, model.invocation_starts(), scale.l2);

  const ir::SliceMasks masks = ir::build_helper_slice(em3d.program);
  const ir::SliceStats stats = ir::slice_stats(em3d.program, masks);

  std::cout << "== Ablation: slice-built vs flag-built helper (EM3D in IR) ==\n"
            << "L2 " << scale.l2.to_string() << ", " << bound.to_string()
            << "\nslice: " << stats.helper_instrs << "/"
            << stats.program_instrs << " instructions kept ("
            << stats.spine_instrs << " spine), dropped " << stats.dropped_stores
            << " stores + " << stats.dropped_compute << " value-only\n\n";

  Table t({"helper", "distance", "helper loads", "norm runtime",
           "dTotally_miss(%)", "pollution", "helper bus requests"});
  SimConfig sim;
  sim.l2 = scale.l2;

  CmpSimulator base_sim(sim);
  const SimResult baseline =
      base_sim.run({CoreStream{.trace = &main_run.trace}});

  for (std::uint32_t d :
       {std::max(1u, bound.upper_limit / 2), bound.upper_limit * 4}) {
    const SpParams params = SpParams::from_distance_rp(d, 0.5);
    const TraceBuffer flag_helper = make_helper_trace(main_run.trace, params);
    const ir::InterpResult slice_helper =
        ir::interpret_helper(em3d.program, masks, params, em3d.memory);

    struct Variant {
      const char* name;
      const TraceBuffer* trace;
    };
    for (const Variant v : {Variant{"trace-flag", &flag_helper},
                            Variant{"slice", &slice_helper.trace}}) {
      CmpSimulator simulator(sim);
      const SimResult r = simulator.run({
          CoreStream{.trace = &main_run.trace},
          CoreStream{.trace = v.trace,
                     .origin = FillOrigin::kHelper,
                     .sync = RoundSync{.leader = 0,
                                       .round_iters = params.round()}},
      });
      const double norm_rt =
          static_cast<double>(r.per_core[0].finish_time) /
          static_cast<double>(baseline.per_core[0].finish_time);
      const double d_tmiss =
          100.0 *
          (static_cast<double>(r.per_core[0].totally_misses) -
           static_cast<double>(baseline.per_core[0].totally_misses)) /
          static_cast<double>(baseline.per_core[0].totally_misses +
                              baseline.per_core[0].partially_hits);
      t.row()
          .add(v.name)
          .add(static_cast<std::uint64_t>(d))
          .add(static_cast<std::uint64_t>(v.trace->size()))
          .add(norm_rt, 3)
          .add(d_tmiss, 2)
          .add(r.pollution.total_pollution())
          .add(r.memory.requests_by_origin[1]);
      std::cerr << ".";
    }
  }
  std::cerr << "\n";
  bench::emit(t, scale);

  std::cout << "\nShape check: the sliced helper issues fewer loads and bus "
               "requests for the same\nmiss elimination — 'the helper thread "
               "executes only the load's computation'.\n";
  return 0;
}
