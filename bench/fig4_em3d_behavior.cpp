// Figure 4 reproduction: EM3D access-behavior change and normalized runtime
// with increasing prefetch distance.
#include "fig_behavior.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dWorkload workload(bench::em3d_config(scale));
  const TraceBuffer trace = workload.emit_trace();
  return bench::run_behavior_figure(
      "Figure 4", "EM3D", trace, workload.invocation_starts(),
      bench::BehaviorRefs{
          .tmiss_eliminated = 0.4127,
          .phit_gained = 0.7856,
          .thit_note = "totally hits *decrease* (up to 48.38%) — SP pollutes "
                       "EM3D's tight sets, increasingly so at larger distance",
      },
      scale);
}
