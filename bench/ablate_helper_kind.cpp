// Ablation: blocking-load helper (the paper's) vs prefetch-instruction
// helper.
//
// The paper's helper issues ordinary loads — it *stalls* on its own misses,
// which is exactly why low-CALR loops need the skip mechanism. An
// alternative is issuing non-binding prefetch instructions for the
// delinquent loads: the helper never stalls on them, so it needs less skip
// to keep up — but a prefetch for a pointer it has not loaded yet is
// impossible, so only the *leaf* dereferences can be converted (the
// address-generation loads stay blocking).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dWorkload workload(bench::em3d_config(scale));
  const TraceBuffer trace = workload.emit_trace();
  const DistanceBound bound = estimate_distance_bound(
      trace, workload.invocation_starts(), scale.l2);

  std::cout << "== Ablation: blocking-load vs prefetch-instruction helper "
               "(EM3D) ==\n"
            << "L2 " << scale.l2.to_string() << ", " << bound.to_string()
            << "\n\n";

  Table t({"helper kind", "distance", "vs bound", "Normalized_Runtime",
           "dTotally_miss(%)", "helper finish (Mcycles)", "pollution"});
  for (const bool use_prefetch : {false, true}) {
    for (std::uint32_t d :
         {std::max(1u, bound.upper_limit / 2), bound.upper_limit * 4}) {
      SpExperimentConfig exp;
      exp.sim.l2 = scale.l2;
      exp.params = SpParams::from_distance_rp(d, 0.5);
      exp.helper.use_prefetch_instructions = use_prefetch;
      const SpComparison cmp = run_sp_experiment(trace, exp);
      t.row()
          .add(use_prefetch ? "prefetch-instruction" : "blocking-load (paper)")
          .add(static_cast<std::uint64_t>(d))
          .add(bound.allows(d) ? "within" : "beyond")
          .add(cmp.norm_runtime(), 3)
          .add(100.0 * cmp.delta_totally_miss(), 2)
          .add(static_cast<double>(cmp.sp.helper_finish) / 1e6, 1)
          .add(cmp.sp.pollution.total_pollution());
      std::cerr << ".";
    }
  }
  std::cerr << "\n";
  bench::emit(t, scale);

  std::cout << "\nShape check: the blocking-load helper wins at every "
               "distance. Its stalls act as\na natural rate limiter — one "
               "outstanding miss at a time — while non-binding\nprefetches "
               "burst-issue, overflow the MSHRs (dropped = lost coverage) and "
               "still\npollute; beyond the bound the unthrottled variant is "
               "worse than no helper at\nall. The paper's choice of ordinary "
               "loads in the helper is not an accident.\n";
  return 0;
}
