// Ablation: blocking-load helper (the paper's) vs prefetch-instruction
// helper.
//
// The paper's helper issues ordinary loads — it *stalls* on its own misses,
// which is exactly why low-CALR loops need the skip mechanism. An
// alternative is issuing non-binding prefetch instructions for the
// delinquent loads: the helper never stalls on them, so it needs less skip
// to keep up — but a prefetch for a pointer it has not loaded yet is
// impossible, so only the *leaf* dereferences can be converted (the
// address-generation loads stay blocking).
//
// Runs as a declarative spf::orchestrate sweep: helpers × distances, one
// shared baseline, cells fanned out over --threads workers.
#include <iostream>

#include "bench_common.hpp"
#include "spf/orchestrate/sweep.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const bench::Scale scale = bench::parse_scale(flags);
  bench::fail_on_unknown_flags(flags);

  Em3dWorkload workload(bench::em3d_config(scale));
  orchestrate::TraceSource source{workload.emit_trace(),
                                  workload.invocation_starts()};
  const DistanceBound bound =
      estimate_distance_bound(source.trace, source.invocation_starts, scale.l2);

  std::cout << "== Ablation: blocking-load vs prefetch-instruction helper "
               "(EM3D) ==\n"
            << "L2 " << scale.l2.to_string() << ", " << bound.to_string()
            << "\n\n";

  orchestrate::SweepSpec spec;
  spec.workloads.push_back(
      orchestrate::from_source("em3d", std::move(source)));
  spec.helpers = {orchestrate::HelperKind::kBlockingLoad,
                  orchestrate::HelperKind::kPrefetchInstruction};
  spec.distances = {std::max(1u, bound.upper_limit / 2), bound.upper_limit * 4};
  spec.geometries = {scale.l2};

  orchestrate::SweepOptions opts;
  opts.threads = scale.threads;
  opts.progress = orchestrate::stderr_progress("  cells");
  const orchestrate::SweepResult result = orchestrate::run_sweep(spec, opts);

  Table t({"helper kind", "distance", "vs bound", "Normalized_Runtime",
           "dTotally_miss(%)", "helper finish (Mcycles)", "pollution"});
  for (const auto& c : result.cells) {
    if (!c.ok) {
      std::cerr << "cell " << c.cell.id << " failed: " << c.error << "\n";
      continue;
    }
    t.row()
        .add(c.cell.helper == orchestrate::HelperKind::kPrefetchInstruction
                 ? "prefetch-instruction"
                 : "blocking-load (paper)")
        .add(static_cast<std::uint64_t>(c.cell.distance))
        .add(bound.allows(c.cell.distance) ? "within" : "beyond")
        .add(c.cmp->norm_runtime(), 3)
        .add(100.0 * c.cmp->delta_totally_miss(), 2)
        .add(static_cast<double>(c.cmp->sp.helper_finish) / 1e6, 1)
        .add(c.cmp->sp.pollution.total_pollution());
  }
  bench::emit(t, scale);

  std::cout << "\nShape check: the blocking-load helper wins at every "
               "distance. Its stalls act as\na natural rate limiter — one "
               "outstanding miss at a time — while non-binding\nprefetches "
               "burst-issue, overflow the MSHRs (dropped = lost coverage) and "
               "still\npollute; beyond the bound the unthrottled variant is "
               "worse than no helper at\nall. The paper's choice of ordinary "
               "loads in the helper is not an accident.\n";
  return result.failed_count() == 0 ? 0 : 1;
}
