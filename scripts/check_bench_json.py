#!/usr/bin/env python3
"""Validate a BENCH_perf.json artifact emitted by bench/perf_smoke.

Usage: check_bench_json.py BENCH_perf.json [BENCH_perf.json ...]

Checks, per file:
  * the file parses as a single JSON object (the JsonObject line format);
  * every key perf_smoke promises is present with the right JSON type —
    a rename or dropped field in the emitter fails here, not in a
    downstream plotting script;
  * rate fields (ops/s, accesses/s, cells/s) and per-phase timings are
    finite and strictly positive — a zero rate means a timer never ran;
  * speedup ratios are finite and positive (they are A/B ratios of
    measured times, so any sign or zero is an emitter bug; they are NOT
    required to exceed 1.0 — see docs/simulator.md "Cursor-fed cores &
    the peek window" for why fused replay is a parity result);
  * the fused replay path performed zero trace-record allocations
    (`replay_fused_record_allocations == 0`) — the ISSUE 7 contract,
    via the trace_hooks::record_allocations hook;
  * the adaptive interval replay honored its contracts: a non-empty
    distance trajectory (`adaptive_trajectory_len > 0`), a final
    distance within the controller's cap
    (`adaptive_final_distance <= adaptive_distance_cap`), and zero
    trace-record allocations on the streaming adaptive path
    (`adaptive_record_allocations == 0`);
  * `telemetry_overhead_pct` is within bounds: >= 0 always (the emitter
    clamps the median-of-reps ratio), and < 25 when telemetry is
    compiled in (the documented contract is < 2 %; 25 leaves headroom
    for loaded CI hosts while still catching a pathological regression);
    ~0 when compiled out;
  * the trace memo hit rate is a valid probability;
  * `replay_checksum` and `refine_checksum` are present and non-zero,
    so the runs that produced the timings actually simulated work.

Exit status: 0 = all files valid, 1 = any violation (details on stderr).
No third-party imports — runs on a bare python3.
"""

import json
import math
import sys

# key -> allowed JSON types (json module mapping: bool before int matters,
# since bool is a subclass of int in Python).
NUMBER = (int, float)
REQUIRED = {
    "bench": str,
    "quick": bool,
    "reps": int,
    "l2": str,
    "em3d_nodes": int,
    "em3d_arity": int,
    "trace_records": int,
    "materialize_ir_ops_per_sec": NUMBER,
    "materialize_sec": NUMBER,
    "replay_accesses_per_sec": NUMBER,
    "replay_batched": NUMBER,
    "replay_scalar_accesses_per_sec": NUMBER,
    "replay_sec_per_cell": NUMBER,
    "replay_fused_sec_per_cell": NUMBER,
    "replay_materialized_sec_per_cell": NUMBER,
    "replay_fused_speedup": NUMBER,
    "replay_fused_record_allocations": int,
    "refine_materialized_sec": NUMBER,
    "refine_streaming_sec": NUMBER,
    "distance_bound_refine_speedup": NUMBER,
    "refine_upper_limit": int,
    "adaptive_sec": NUMBER,
    "adaptive_warm_sec": NUMBER,
    "adaptive_intervals": int,
    "adaptive_trajectory_len": int,
    "adaptive_initial_distance": int,
    "adaptive_final_distance": int,
    "adaptive_distance_cap": int,
    "adaptive_record_allocations": int,
    "sweep_cells": int,
    "sweep_cells_per_sec": NUMBER,
    "sweep_sec": NUMBER,
    "sweep_trace_memo_hits": int,
    "sweep_trace_memo_misses": int,
    "sweep_trace_memo_hit_rate": NUMBER,
    "sweep_fused_sec_per_cell": NUMBER,
    "sweep_materialized_sec_per_cell": NUMBER,
    "sweep_fused_speedup": NUMBER,
    "sweep_telemetry_off_sec": NUMBER,
    "sweep_telemetry_on_sec": NUMBER,
    "telemetry_overhead_pct": NUMBER,
    "telemetry_compiled": bool,
    "replay_checksum": int,
    "refine_checksum": int,
}

STRICTLY_POSITIVE = [
    "materialize_ir_ops_per_sec",
    "materialize_sec",
    "replay_accesses_per_sec",
    "replay_scalar_accesses_per_sec",
    "replay_sec_per_cell",
    "replay_fused_sec_per_cell",
    "replay_materialized_sec_per_cell",
    "replay_fused_speedup",
    "refine_materialized_sec",
    "refine_streaming_sec",
    "distance_bound_refine_speedup",
    "adaptive_sec",
    "adaptive_warm_sec",
    "adaptive_intervals",
    "adaptive_trajectory_len",
    "adaptive_final_distance",
    "adaptive_distance_cap",
    "sweep_cells_per_sec",
    "sweep_sec",
    "sweep_trace_memo_hits",
    "sweep_fused_sec_per_cell",
    "sweep_materialized_sec_per_cell",
    "sweep_fused_speedup",
    "sweep_telemetry_off_sec",
    "sweep_telemetry_on_sec",
]


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def check_type(path, doc, key, types):
    value = doc[key]
    # bool is an int subclass; only accept it where bool is the spec.
    if types is bool:
        if not isinstance(value, bool):
            return fail(path, f'"{key}": expected boolean, got {value!r}')
        return True
    if isinstance(value, bool):
        return fail(path, f'"{key}": expected number, got boolean {value!r}')
    if not isinstance(value, types):
        return fail(path, f'"{key}": expected {types}, got {value!r}')
    if isinstance(value, float) and not math.isfinite(value):
        return fail(path, f'"{key}": non-finite value {value!r}')
    return True


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"not loadable JSON: {e}")
    if not isinstance(doc, dict):
        return fail(path, "top level is not a JSON object")

    ok = True
    missing = [k for k in REQUIRED if k not in doc]
    if missing:
        ok = fail(path, f"missing required keys: {sorted(missing)}")
    for key, types in REQUIRED.items():
        if key in doc:
            ok = check_type(path, doc, key, types) and ok

    if not ok:
        return False  # value checks below assume presence + type

    if doc["bench"] != "perf_smoke":
        ok = fail(path, f'"bench": expected "perf_smoke", got {doc["bench"]!r}')

    for key in STRICTLY_POSITIVE:
        if doc[key] <= 0:
            ok = fail(path, f'"{key}": expected > 0, got {doc[key]}')

    if doc["replay_fused_record_allocations"] != 0:
        ok = fail(
            path,
            "fused replay grew trace-record storage: "
            f"replay_fused_record_allocations = "
            f"{doc['replay_fused_record_allocations']} (contract: 0)",
        )

    if doc["adaptive_record_allocations"] != 0:
        ok = fail(
            path,
            "adaptive replay grew trace-record storage: "
            f"adaptive_record_allocations = "
            f"{doc['adaptive_record_allocations']} (contract: 0)",
        )
    if doc["adaptive_final_distance"] > doc["adaptive_distance_cap"]:
        ok = fail(
            path,
            f"adaptive_final_distance = {doc['adaptive_final_distance']} "
            f"exceeds adaptive_distance_cap = {doc['adaptive_distance_cap']}",
        )
    if doc["adaptive_trajectory_len"] != doc["adaptive_intervals"]:
        ok = fail(
            path,
            f"adaptive_trajectory_len = {doc['adaptive_trajectory_len']} "
            f"!= adaptive_intervals = {doc['adaptive_intervals']} — the "
            "trajectory must record one distance per interval",
        )

    pct = doc["telemetry_overhead_pct"]
    if pct < 0:
        ok = fail(path, f"telemetry_overhead_pct is negative: {pct}")
    if doc["telemetry_compiled"]:
        if pct >= 25:
            ok = fail(
                path,
                f"telemetry_overhead_pct = {pct} — the <2% contract has "
                "regressed far beyond measurement noise",
            )
    elif pct != 0:
        ok = fail(path, f"telemetry compiled out but overhead_pct = {pct}")

    rate = doc["sweep_trace_memo_hit_rate"]
    if not 0.0 <= rate <= 1.0:
        ok = fail(path, f"sweep_trace_memo_hit_rate out of [0,1]: {rate}")

    for key in ("replay_checksum", "refine_checksum"):
        if doc[key] == 0:
            ok = fail(path, f'"{key}" is zero — the timed run simulated nothing')

    if doc["sweep_cells"] <= 0:
        ok = fail(path, f'"sweep_cells": expected > 0, got {doc["sweep_cells"]}')
    if doc["reps"] <= 0:
        ok = fail(path, f'"reps": expected > 0, got {doc["reps"]}')

    if ok:
        print(
            f"{path}: OK ({len(REQUIRED)} keys, "
            f"fused speedup {doc['replay_fused_speedup']:.3f}, "
            f"telemetry overhead {pct:.2f}%)"
        )
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_ok = True
    for path in argv[1:]:
        all_ok = check_file(path) and all_ok
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
