#!/usr/bin/env python3
"""Validate bench artifacts: BENCH_perf.json and sweep JSONL files.

Usage: check_bench_json.py BENCH_perf.json [BENCH_perf.json ...]
       check_bench_json.py --sweep sweep.jsonl [sweep.jsonl ...]
       check_bench_json.py --provenance prov.jsonl [prov.jsonl ...]

With --sweep, each file is a JSONL artifact from spf_sweep / fig_adaptive /
fig_phase_bound (one cell per line) and the per-line contracts are:
  * `phase_count` is an integer >= 1 on every successful cell — the phase
    partition always contains at least the whole run (docs/method.md);
  * adaptive cells record one trajectory entry per interval
    (`intervals == len(trajectory)`) and end at or under their cap
    (`final_distance <= distance_cap`);
  * phase-capped cells carry a `phase_bounds` schedule (strictly increasing
    `begin`, every `upper >= 1`) and a `reclamps` event list: strictly
    increasing intervals starting at 0, `reclamp_count == len(reclamps)`,
    each event's `distance <= cap`, each event's `cap` matching its phase's
    scheduled bound clamped to the cell's `distance_cap` — the controller
    never raises its ceiling past `max_distance`, so a scheduled bound above
    it re-clamps to the cap itself (phase -1 = before the first scheduled
    cap) — and — the re-clamp
    invariant — every trajectory entry between one event and the next at or
    under the earlier event's cap;
  * failed cells carry an `error` and are otherwise exempt.

With --provenance, each file is a JSONL artifact from fig_provenance (or any
sweep run with SweepSpec::provenance set) and, on top of the --sweep
contracts, every successful cell must satisfy the lifecycle accounting
(docs/provenance.md):
  * the five fate counters partition the tracked fills exactly:
    used_timely + used_late + evicted_unused + polluting + resident_unused
    == prov_tracked_fills, and helper + hardware fills == tracked fills;
  * histogram masses equal their counters: sum(prov_fill_to_use_hist) ==
    prov_used_timely, sum(prov_victim_reuse_hist) == prov_reuse_confirms,
    sum(prov_set_heatmap) == prov_polluted_sets — every classified event
    landed in exactly one bucket;
  * all three histograms have exactly 32 non-negative integer buckets;
  * prov_timely_rate is the quotient it claims to be (used_timely /
    tracked_fills, to float tolerance) and lies in [0, 1];
  * the paper's causal story holds on the grid: within each
    (workload, l2, helper, rp, static-controller) group, walking
    beyond-bound cells in ascending A_SKI order, the used-timely rate
    never recovers more than 3 points above its running minimum —
    pushing the distance past the Set-Affinity bound must not win
    timeliness back.

Without --sweep/--provenance, each file is a BENCH_perf.json and the
checks, per file:
  * the file parses as a single JSON object (the JsonObject line format);
  * every key perf_smoke promises is present with the right JSON type —
    a rename or dropped field in the emitter fails here, not in a
    downstream plotting script;
  * rate fields (ops/s, accesses/s, cells/s) and per-phase timings are
    finite and strictly positive — a zero rate means a timer never ran;
  * speedup ratios are finite and positive (they are A/B ratios of
    measured times, so any sign or zero is an emitter bug; they are NOT
    required to exceed 1.0 — see docs/simulator.md "Cursor-fed cores &
    the peek window" for why fused replay is a parity result);
  * the fused replay path performed zero trace-record allocations
    (`replay_fused_record_allocations == 0`) — the ISSUE 7 contract,
    via the trace_hooks::record_allocations hook;
  * the adaptive interval replay honored its contracts: a non-empty
    distance trajectory (`adaptive_trajectory_len > 0`), a final
    distance within the controller's cap
    (`adaptive_final_distance <= adaptive_distance_cap`), and zero
    trace-record allocations on the streaming adaptive path
    (`adaptive_record_allocations == 0`);
  * `telemetry_overhead_pct` is within bounds: >= 0 always (the emitter
    clamps the median-of-reps ratio), and < 25 when telemetry is
    compiled in (the documented contract is < 2 %; 25 leaves headroom
    for loaded CI hosts while still catching a pathological regression);
    ~0 when compiled out;
  * `provenance_overhead_pct` (the same interleaved off/on A/B, with
    SimConfig::provenance toggled) is >= 0 and < 25 — the documented
    contract is < 5 %, and the off/on sweeps must additionally have
    produced byte-identical tables (`provenance_tables_identical`);
  * the trace memo hit rate is a valid probability;
  * `replay_checksum` and `refine_checksum` are present and non-zero,
    so the runs that produced the timings actually simulated work.

Exit status: 0 = all files valid, 1 = any violation (details on stderr).
No third-party imports — runs on a bare python3.
"""

import json
import math
import sys

# key -> allowed JSON types (json module mapping: bool before int matters,
# since bool is a subclass of int in Python).
NUMBER = (int, float)
REQUIRED = {
    "bench": str,
    "quick": bool,
    "reps": int,
    "l2": str,
    "em3d_nodes": int,
    "em3d_arity": int,
    "trace_records": int,
    "materialize_ir_ops_per_sec": NUMBER,
    "materialize_sec": NUMBER,
    "replay_accesses_per_sec": NUMBER,
    "replay_batched": NUMBER,
    "replay_scalar_accesses_per_sec": NUMBER,
    "replay_sec_per_cell": NUMBER,
    "replay_fused_sec_per_cell": NUMBER,
    "replay_materialized_sec_per_cell": NUMBER,
    "replay_fused_speedup": NUMBER,
    "replay_fused_record_allocations": int,
    "refine_materialized_sec": NUMBER,
    "refine_streaming_sec": NUMBER,
    "distance_bound_refine_speedup": NUMBER,
    "refine_upper_limit": int,
    "adaptive_sec": NUMBER,
    "adaptive_warm_sec": NUMBER,
    "adaptive_intervals": int,
    "adaptive_trajectory_len": int,
    "adaptive_initial_distance": int,
    "adaptive_final_distance": int,
    "adaptive_distance_cap": int,
    "adaptive_record_allocations": int,
    "sweep_cells": int,
    "sweep_cells_per_sec": NUMBER,
    "sweep_sec": NUMBER,
    "sweep_trace_memo_hits": int,
    "sweep_trace_memo_misses": int,
    "sweep_trace_memo_hit_rate": NUMBER,
    "sweep_fused_sec_per_cell": NUMBER,
    "sweep_materialized_sec_per_cell": NUMBER,
    "sweep_fused_speedup": NUMBER,
    "sweep_telemetry_off_sec": NUMBER,
    "sweep_telemetry_on_sec": NUMBER,
    "telemetry_overhead_pct": NUMBER,
    "telemetry_compiled": bool,
    "sweep_provenance_off_sec": NUMBER,
    "sweep_provenance_on_sec": NUMBER,
    "provenance_overhead_pct": NUMBER,
    "provenance_tables_identical": bool,
    "replay_checksum": int,
    "refine_checksum": int,
}

STRICTLY_POSITIVE = [
    "materialize_ir_ops_per_sec",
    "materialize_sec",
    "replay_accesses_per_sec",
    "replay_scalar_accesses_per_sec",
    "replay_sec_per_cell",
    "replay_fused_sec_per_cell",
    "replay_materialized_sec_per_cell",
    "replay_fused_speedup",
    "refine_materialized_sec",
    "refine_streaming_sec",
    "distance_bound_refine_speedup",
    "adaptive_sec",
    "adaptive_warm_sec",
    "adaptive_intervals",
    "adaptive_trajectory_len",
    "adaptive_final_distance",
    "adaptive_distance_cap",
    "sweep_cells_per_sec",
    "sweep_sec",
    "sweep_trace_memo_hits",
    "sweep_fused_sec_per_cell",
    "sweep_materialized_sec_per_cell",
    "sweep_fused_speedup",
    "sweep_telemetry_off_sec",
    "sweep_telemetry_on_sec",
    "sweep_provenance_off_sec",
    "sweep_provenance_on_sec",
]


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def check_type(path, doc, key, types):
    value = doc[key]
    # bool is an int subclass; only accept it where bool is the spec.
    if types is bool:
        if not isinstance(value, bool):
            return fail(path, f'"{key}": expected boolean, got {value!r}')
        return True
    if isinstance(value, bool):
        return fail(path, f'"{key}": expected number, got boolean {value!r}')
    if not isinstance(value, types):
        return fail(path, f'"{key}": expected {types}, got {value!r}')
    if isinstance(value, float) and not math.isfinite(value):
        return fail(path, f'"{key}": non-finite value {value!r}')
    return True


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"not loadable JSON: {e}")
    if not isinstance(doc, dict):
        return fail(path, "top level is not a JSON object")

    ok = True
    missing = [k for k in REQUIRED if k not in doc]
    if missing:
        ok = fail(path, f"missing required keys: {sorted(missing)}")
    for key, types in REQUIRED.items():
        if key in doc:
            ok = check_type(path, doc, key, types) and ok

    if not ok:
        return False  # value checks below assume presence + type

    if doc["bench"] != "perf_smoke":
        ok = fail(path, f'"bench": expected "perf_smoke", got {doc["bench"]!r}')

    for key in STRICTLY_POSITIVE:
        if doc[key] <= 0:
            ok = fail(path, f'"{key}": expected > 0, got {doc[key]}')

    if doc["replay_fused_record_allocations"] != 0:
        ok = fail(
            path,
            "fused replay grew trace-record storage: "
            f"replay_fused_record_allocations = "
            f"{doc['replay_fused_record_allocations']} (contract: 0)",
        )

    if doc["adaptive_record_allocations"] != 0:
        ok = fail(
            path,
            "adaptive replay grew trace-record storage: "
            f"adaptive_record_allocations = "
            f"{doc['adaptive_record_allocations']} (contract: 0)",
        )
    if doc["adaptive_final_distance"] > doc["adaptive_distance_cap"]:
        ok = fail(
            path,
            f"adaptive_final_distance = {doc['adaptive_final_distance']} "
            f"exceeds adaptive_distance_cap = {doc['adaptive_distance_cap']}",
        )
    if doc["adaptive_trajectory_len"] != doc["adaptive_intervals"]:
        ok = fail(
            path,
            f"adaptive_trajectory_len = {doc['adaptive_trajectory_len']} "
            f"!= adaptive_intervals = {doc['adaptive_intervals']} — the "
            "trajectory must record one distance per interval",
        )

    pct = doc["telemetry_overhead_pct"]
    if pct < 0:
        ok = fail(path, f"telemetry_overhead_pct is negative: {pct}")
    if doc["telemetry_compiled"]:
        if pct >= 25:
            ok = fail(
                path,
                f"telemetry_overhead_pct = {pct} — the <2% contract has "
                "regressed far beyond measurement noise",
            )
    elif pct != 0:
        ok = fail(path, f"telemetry compiled out but overhead_pct = {pct}")

    ppct = doc["provenance_overhead_pct"]
    if ppct < 0:
        ok = fail(path, f"provenance_overhead_pct is negative: {ppct}")
    if ppct >= 25:
        ok = fail(
            path,
            f"provenance_overhead_pct = {ppct} — the <5% contract has "
            "regressed far beyond measurement noise",
        )
    if not doc["provenance_tables_identical"]:
        ok = fail(
            path,
            "provenance-on sweep produced a different table than the "
            "provenance-off sweep — the observer must not perturb metrics",
        )

    rate = doc["sweep_trace_memo_hit_rate"]
    if not 0.0 <= rate <= 1.0:
        ok = fail(path, f"sweep_trace_memo_hit_rate out of [0,1]: {rate}")

    for key in ("replay_checksum", "refine_checksum"):
        if doc[key] == 0:
            ok = fail(path, f'"{key}" is zero — the timed run simulated nothing')

    if doc["sweep_cells"] <= 0:
        ok = fail(path, f'"sweep_cells": expected > 0, got {doc["sweep_cells"]}')
    if doc["reps"] <= 0:
        ok = fail(path, f'"reps": expected > 0, got {doc["reps"]}')

    if ok:
        print(
            f"{path}: OK ({len(REQUIRED)} keys, "
            f"fused speedup {doc['replay_fused_speedup']:.3f}, "
            f"telemetry overhead {pct:.2f}%)"
        )
    return ok


def _sweep_fail(path, lineno, message):
    print(f"{path}:{lineno}: {message}", file=sys.stderr)
    return False


def _check_sweep_reclamps(path, lineno, doc):
    """Phase-capped contracts: schedule shape, event list, re-clamp invariant."""
    ok = True
    bounds = doc["phase_bounds"]
    if not isinstance(bounds, list) or not bounds:
        return _sweep_fail(path, lineno, "phase_bounds must be a non-empty list")
    prev_begin = -1
    for b in bounds:
        if not isinstance(b, dict) or not isinstance(b.get("begin"), int) \
                or not isinstance(b.get("upper"), int):
            return _sweep_fail(path, lineno, f"malformed phase bound {b!r}")
        if b["upper"] < 1:
            ok = _sweep_fail(path, lineno, f"phase bound upper < 1: {b}")
        if b["begin"] <= prev_begin:
            ok = _sweep_fail(
                path, lineno,
                f"phase_bounds begin not strictly increasing at {b}")
        prev_begin = b["begin"]

    events = doc["reclamps"]
    if not isinstance(events, list) or not events:
        return _sweep_fail(path, lineno, "reclamps must be a non-empty list")
    if doc.get("reclamp_count") != len(events):
        ok = _sweep_fail(
            path, lineno,
            f"reclamp_count = {doc.get('reclamp_count')} != "
            f"len(reclamps) = {len(events)}")
    trajectory = doc["trajectory"]
    prev_interval = -1
    for i, e in enumerate(events):
        if not isinstance(e, dict) or not all(
                isinstance(e.get(k), int)
                for k in ("interval", "phase", "cap", "distance")):
            return _sweep_fail(path, lineno, f"malformed reclamp event {e!r}")
        if i == 0 and e["interval"] != 0:
            ok = _sweep_fail(
                path, lineno,
                f"first reclamp event at interval {e['interval']}, not 0 — "
                "the controller must resolve a cap on its first interval")
        if e["interval"] <= prev_interval:
            ok = _sweep_fail(
                path, lineno,
                f"reclamp intervals not strictly increasing at {e}")
        prev_interval = e["interval"]
        if e["distance"] > e["cap"]:
            ok = _sweep_fail(
                path, lineno,
                f"re-clamped distance {e['distance']} exceeds its phase "
                f"cap {e['cap']} at interval {e['interval']}")
        if e["phase"] >= 0:
            if e["phase"] >= len(bounds):
                ok = _sweep_fail(
                    path, lineno,
                    f"reclamp phase {e['phase']} out of range "
                    f"(schedule has {len(bounds)} phases)")
            else:
                # The controller clamps every scheduled bound into its own
                # [min_distance, max_distance] range, so the recorded cap is
                # the *effective* ceiling: min(scheduled, distance_cap)
                # (floored at 1, the drivers' min_distance).
                expected = max(
                    1, min(bounds[e["phase"]]["upper"], doc["distance_cap"]))
                if e["cap"] != expected:
                    ok = _sweep_fail(
                        path, lineno,
                        f"reclamp cap {e['cap']} != effective bound "
                        f"{expected} for phase {e['phase']} (scheduled "
                        f"{bounds[e['phase']]['upper']}, distance_cap "
                        f"{doc['distance_cap']})")
        # The re-clamp invariant: until the next event, every trajectory
        # entry stays at or under this event's cap.
        end = events[i + 1]["interval"] if i + 1 < len(events) \
            else len(trajectory)
        for j in range(e["interval"], min(end, len(trajectory))):
            if trajectory[j] > e["cap"]:
                ok = _sweep_fail(
                    path, lineno,
                    f"trajectory[{j}] = {trajectory[j]} exceeds active "
                    f"phase cap {e['cap']} (event at interval "
                    f"{e['interval']})")
                break
    return ok


def check_sweep_line(path, lineno, doc):
    ok = True
    for key in ("workload", "controller", "ok"):
        if key not in doc:
            return _sweep_fail(path, lineno, f"missing required key {key!r}")
    if not doc["ok"]:
        if "error" not in doc:
            ok = _sweep_fail(path, lineno, "failed cell without an error field")
        return ok

    pc = doc.get("phase_count")
    if not isinstance(pc, int) or isinstance(pc, bool) or pc < 1:
        ok = _sweep_fail(
            path, lineno,
            f"phase_count must be an integer >= 1 on ok cells, got {pc!r}")

    if "trajectory" in doc:
        trajectory = doc["trajectory"]
        if not isinstance(trajectory, list):
            return _sweep_fail(path, lineno, "trajectory is not a list")
        if doc.get("intervals") != len(trajectory):
            ok = _sweep_fail(
                path, lineno,
                f"intervals = {doc.get('intervals')} != len(trajectory) = "
                f"{len(trajectory)} — one distance per interval")
        if doc.get("final_distance", 0) > doc.get("distance_cap", 0):
            ok = _sweep_fail(
                path, lineno,
                f"final_distance = {doc.get('final_distance')} exceeds "
                f"distance_cap = {doc.get('distance_cap')}")
        if "phase_bounds" in doc or "reclamps" in doc:
            if "phase_bounds" not in doc or "reclamps" not in doc:
                ok = _sweep_fail(
                    path, lineno,
                    "phase_bounds and reclamps must appear together")
            else:
                ok = _check_sweep_reclamps(path, lineno, doc) and ok
    return ok


PROV_BUCKETS = 32
PROV_KEYS = (
    "prov_tracked_fills", "prov_helper_fills", "prov_hardware_fills",
    "prov_used_timely", "prov_used_late", "prov_evicted_unused",
    "prov_polluting", "prov_resident_unused", "prov_reuse_confirms",
    "prov_late_confirms", "prov_polluted_sets", "prov_timely_rate",
    "prov_fill_to_use_mean", "prov_fill_to_use_hist",
    "prov_victim_reuse_hist", "prov_set_heatmap",
)
# Beyond the Set-Affinity bound the used-timely rate may wobble with grid
# noise but must never meaningfully recover; 2 points of absolute rate is
# comfortably above observed jitter (mst wobbles ~2 points at the bound
# edge before collapsing) and far below any real recovery.
PROV_TIMELY_TOLERANCE = 0.03


def _check_prov_hist(path, lineno, doc, key):
    hist = doc[key]
    if not isinstance(hist, list) or len(hist) != PROV_BUCKETS:
        return None, _sweep_fail(
            path, lineno,
            f"{key} must be a {PROV_BUCKETS}-bucket list, got "
            f"{type(hist).__name__} of len "
            f"{len(hist) if isinstance(hist, list) else '?'}")
    for i, v in enumerate(hist):
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            return None, _sweep_fail(
                path, lineno, f"{key}[{i}] must be a non-negative int, "
                f"got {v!r}")
    return sum(hist), True


def check_provenance_line(path, lineno, doc):
    """Per-cell lifecycle accounting; assumes check_sweep_line passed."""
    missing = [k for k in PROV_KEYS if k not in doc]
    if missing:
        return _sweep_fail(
            path, lineno,
            f"ok cell missing provenance keys: {sorted(missing)} — was the "
            "sweep run with SweepSpec::provenance set?")
    ok = True
    tracked = doc["prov_tracked_fills"]
    fates = (doc["prov_used_timely"] + doc["prov_used_late"]
             + doc["prov_evicted_unused"] + doc["prov_polluting"]
             + doc["prov_resident_unused"])
    if fates != tracked:
        ok = _sweep_fail(
            path, lineno,
            f"fate counts sum to {fates}, not prov_tracked_fills = "
            f"{tracked} — the five fates must partition the tracked fills")
    origins = doc["prov_helper_fills"] + doc["prov_hardware_fills"]
    if origins != tracked:
        ok = _sweep_fail(
            path, lineno,
            f"helper + hardware fills = {origins} != prov_tracked_fills = "
            f"{tracked}")

    for key, counter in (
            ("prov_fill_to_use_hist", "prov_used_timely"),
            ("prov_victim_reuse_hist", "prov_reuse_confirms"),
            ("prov_set_heatmap", "prov_polluted_sets")):
        mass, hist_ok = _check_prov_hist(path, lineno, doc, key)
        if not hist_ok:
            ok = False
            continue
        if mass != doc[counter]:
            ok = _sweep_fail(
                path, lineno,
                f"sum({key}) = {mass} != {counter} = {doc[counter]} — "
                "every classified event lands in exactly one bucket")

    rate = doc["prov_timely_rate"]
    if not 0.0 <= rate <= 1.0:
        ok = _sweep_fail(path, lineno, f"prov_timely_rate out of [0,1]: {rate}")
    expected = doc["prov_used_timely"] / tracked if tracked else 0.0
    if abs(rate - expected) > 1e-9:
        ok = _sweep_fail(
            path, lineno,
            f"prov_timely_rate = {rate} but used_timely/tracked = {expected}")
    return ok


def _check_prov_timeliness_decay(path, groups):
    """Beyond-bound cells must not win the timely rate back (per group)."""
    ok = True
    for key, cells in sorted(groups.items()):
        cells.sort(key=lambda c: c[1])  # ascending A_SKI
        running_min = None
        for lineno, distance, rate in cells:
            if running_min is not None and \
                    rate > running_min + PROV_TIMELY_TOLERANCE:
                ok = _sweep_fail(
                    path, lineno,
                    f"group {key}: beyond-bound A_SKI {distance} has "
                    f"timely rate {rate:.4f}, recovering past the running "
                    f"minimum {running_min:.4f} + {PROV_TIMELY_TOLERANCE} — "
                    "distance beyond the Set-Affinity bound must not "
                    "restore timeliness")
            running_min = rate if running_min is None \
                else min(running_min, rate)
    return ok


def check_provenance_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return fail(path, f"not readable: {e}")
    cells = 0
    beyond = 0
    ok = True
    # (workload, l2, helper, rp) -> [(lineno, distance, timely_rate)] for
    # static-controller cells beyond their plane's bound.
    groups = {}
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            ok = _sweep_fail(path, lineno, f"not valid JSON: {e}")
            continue
        if not isinstance(doc, dict):
            ok = _sweep_fail(path, lineno, "line is not a JSON object")
            continue
        cells += 1
        line_ok = check_sweep_line(path, lineno, doc)
        ok = line_ok and ok
        if not line_ok or not doc.get("ok"):
            continue
        ok = check_provenance_line(path, lineno, doc) and ok
        if doc.get("controller") == "static" and not doc.get(
                "within_bound", True):
            beyond += 1
            key = (doc.get("workload"), doc.get("l2"), doc.get("helper"),
                   doc.get("rp"))
            groups.setdefault(key, []).append(
                (lineno, doc.get("distance", 0), doc["prov_timely_rate"]))
    ok = _check_prov_timeliness_decay(path, groups) and ok
    if cells == 0:
        ok = fail(path, "no cells — the artifact is empty")
    if ok:
        print(f"{path}: OK ({cells} cells, {beyond} beyond-bound)")
    return ok


def check_sweep_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return fail(path, f"not readable: {e}")
    cells = 0
    phase_capped = 0
    ok = True
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            ok = _sweep_fail(path, lineno, f"not valid JSON: {e}")
            continue
        if not isinstance(doc, dict):
            ok = _sweep_fail(path, lineno, "line is not a JSON object")
            continue
        cells += 1
        if "reclamps" in doc:
            phase_capped += 1
        ok = check_sweep_line(path, lineno, doc) and ok
    if cells == 0:
        ok = fail(path, "no cells — the artifact is empty")
    if ok:
        print(f"{path}: OK ({cells} cells, {phase_capped} phase-capped)")
    return ok


def main(argv):
    args = argv[1:]
    check = check_file
    if args and args[0] == "--sweep":
        check = check_sweep_file
        args = args[1:]
    elif args and args[0] == "--provenance":
        check = check_provenance_file
        args = args[1:]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_ok = True
    for path in args:
        all_ok = check(path) and all_ok
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
