#!/usr/bin/env bash
# Full reproduction run: build, test, and regenerate every table/figure and
# ablation. Outputs land in test_output.txt / bench_output.txt at the repo
# root. Pass --paper to ALSO rerun the headline experiments at Table II input
# sizes (adds ~10-30 minutes).
#
# Sweep-shaped harnesses fan their cells out over the spf::orchestrate
# engine; SPF_THREADS caps the worker count (default: all cores, which still
# emits bit-identical artifacts — see docs/orchestrator.md).
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="${SPF_THREADS:-$(nproc)}"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    case "$b" in *.cmake) continue ;; esac
    # micro_substrate is a google-benchmark binary: it rejects unknown flags,
    # so it runs argument-free; everything else takes the bench_common knobs.
    # perf_smoke additionally writes the hot-path throughput record
    # (BENCH_perf.json at the repo root) consumed by docs/simulator.md.
    args="--threads=$THREADS"
    case "$b" in
      *micro_substrate) args="" ;;
      *perf_smoke) args="--threads=$THREADS --out=BENCH_perf.json" ;;
    esac
    echo "=============================================================="
    echo "== $b${args:+ $args}"
    echo "=============================================================="
    # shellcheck disable=SC2086  # args is one word or empty, splitting intended
    "$b" $args
    echo
  done
} 2>&1 | tee bench_output.txt

# Validate the perf record against its schema + contracts (required keys,
# telemetry_overhead_pct bounds, zero fused-path record allocations) — the
# same validator ctest runs against the --quick artifact.
if [ -f BENCH_perf.json ] && command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_bench_json.py BENCH_perf.json
fi

# Accumulate this run's perf record — including the telemetry off/on delta
# perf_smoke measures (telemetry_overhead_pct) — into the git-ignored local
# history, one compact JSONL line per reproduction run, so hot-path drift is
# visible across runs on the same machine.
if [ -f BENCH_perf.json ] && command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import datetime
import json

with open("BENCH_perf.json") as f:
    rec = json.load(f)
rec["recorded_at"] = datetime.datetime.now(datetime.timezone.utc).isoformat(
    timespec="seconds")
with open("BENCH_history.jsonl", "a") as f:
    f.write(json.dumps(rec, sort_keys=True) + "\n")
print("appended BENCH_perf.json -> BENCH_history.jsonl")
EOF
  # Guard the trendline: flag key throughput metrics that dropped >15% below
  # the trailing median of prior full-scale runs. A regression (exit 2) is a
  # loud warning, not a failure — a loaded host can legitimately dent a run;
  # a structural error (exit 1) in the history still aborts.
  python3 scripts/check_perf_history.py BENCH_history.jsonl || {
    status=$?
    if [ "$status" -eq 2 ]; then
      echo "WARNING: perf history regression flagged (see above)" >&2
    else
      exit "$status"
    fi
  }
fi

# The full cross-product in one orchestrated run: every workload × a ladder
# of distances around each plane's bound × both RP regimes, JSONL artifact
# alongside the table — plus the telemetry artifacts: a deterministic metrics
# dump and a Perfetto-loadable per-worker timeline of the whole sweep (open
# sweep_trace.json in https://ui.perfetto.dev; see docs/telemetry.md).
{
  echo "=============================================================="
  echo "== build/bench/spf_sweep --workloads=em3d,mcf,mst --rps=0.5,1.0" \
       "--threads=$THREADS"
  echo "=============================================================="
  build/bench/spf_sweep --workloads=em3d,mcf,mst --rps=0.5,1.0 \
    --threads="$THREADS" --jsonl=sweep_results.jsonl \
    --metrics-out=sweep_metrics.jsonl --trace-out=sweep_trace.json
} 2>&1 | tee -a bench_output.txt

# Sanity-check the emitted timeline when python3 is around (same validator
# ctest runs against the perf_smoke artifact), and hold the sweep JSONL to
# its per-cell contracts (phase_count >= 1, one trajectory entry per
# interval, re-clamped distances at or under their phase bounds).
if [ -f sweep_trace.json ] && command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_trace_json.py sweep_trace.json
fi
if [ -f sweep_results.jsonl ] && command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_bench_json.py --sweep sweep_results.jsonl
fi

# Adaptive-vs-static controller ablation: every workload × the distance
# ladder × {static, adaptive-AIMD, adaptive-capped}, JSONL artifact with the
# per-cell distance trajectories, plus a timeline carrying the per-interval
# adaptive.distance counter track.
{
  echo "=============================================================="
  echo "== build/bench/fig_adaptive --threads=$THREADS"
  echo "=============================================================="
  build/bench/fig_adaptive --threads="$THREADS" --jsonl=fig_adaptive.jsonl \
    --metrics-out=fig_adaptive_metrics.jsonl --trace-out=fig_adaptive_trace.json
} 2>&1 | tee -a bench_output.txt

if [ -f fig_adaptive_trace.json ] && command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_trace_json.py fig_adaptive_trace.json
fi

# Whole-run vs per-phase capping ablation: adaptive-capped against
# adaptive-phase-capped on every workload, JSONL carrying the per-cell phase
# bound schedules and re-clamp events, validated against the same per-cell
# contracts as the sweep artifact.
{
  echo "=============================================================="
  echo "== build/bench/fig_phase_bound --threads=$THREADS"
  echo "=============================================================="
  build/bench/fig_phase_bound --threads="$THREADS" \
    --jsonl=fig_phase_bound.jsonl --metrics-out=fig_phase_bound_metrics.jsonl \
    --trace-out=fig_phase_bound_trace.json
} 2>&1 | tee -a bench_output.txt

if [ -f fig_phase_bound_trace.json ] && command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_trace_json.py fig_phase_bound_trace.json
fi
if [ -f fig_phase_bound.jsonl ] && command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_bench_json.py --sweep fig_phase_bound.jsonl
fi

# Prefetch-lifecycle provenance: the fate-mix and timeliness figure (what
# happened to every helper/hardware prefetch fill across the distance
# ladder), JSONL carrying the per-cell fate counts, fill→first-use and
# victim reuse-distance histograms, and per-set pollution heatmaps, held to
# the lifecycle accounting contracts (docs/provenance.md).
{
  echo "=============================================================="
  echo "== build/bench/fig_provenance --threads=$THREADS"
  echo "=============================================================="
  build/bench/fig_provenance --threads="$THREADS" \
    --jsonl=fig_provenance.jsonl --metrics-out=fig_provenance_metrics.jsonl \
    --trace-out=fig_provenance_trace.json
} 2>&1 | tee -a bench_output.txt

if [ -f fig_provenance_trace.json ] && command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_trace_json.py fig_provenance_trace.json
fi
if [ -f fig_provenance.jsonl ] && command -v python3 >/dev/null 2>&1; then
  python3 scripts/check_bench_json.py --provenance fig_provenance.jsonl
fi

if [[ "${1:-}" == "--paper" ]]; then
  {
    for b in table2_benchmarks fig2_em3d_sweep fig4_em3d_behavior fig_adaptive \
             fig_phase_bound fig_provenance; do
      echo "=============================================================="
      echo "== build/bench/$b --scale=paper --threads=$THREADS"
      echo "=============================================================="
      "build/bench/$b" --scale=paper --threads="$THREADS"
      echo
    done
  } 2>&1 | tee bench_output_paper.txt
fi
