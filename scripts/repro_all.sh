#!/usr/bin/env bash
# Full reproduction run: build, test, and regenerate every table/figure and
# ablation. Outputs land in test_output.txt / bench_output.txt at the repo
# root. Pass --paper to ALSO rerun the headline experiments at Table II input
# sizes (adds ~10-30 minutes).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    case "$b" in *.cmake) continue ;; esac
    echo "=============================================================="
    echo "== $b"
    echo "=============================================================="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

if [[ "${1:-}" == "--paper" ]]; then
  {
    for b in table2_benchmarks fig2_em3d_sweep fig4_em3d_behavior; do
      echo "=============================================================="
      echo "== build/bench/$b --scale=paper"
      echo "=============================================================="
      "build/bench/$b" --scale=paper
      echo
    done
  } 2>&1 | tee bench_output_paper.txt
fi
