#!/usr/bin/env python3
"""Guard the local perf trendline: BENCH_history.jsonl drift detection.

Usage: check_perf_history.py BENCH_history.jsonl [--window=N] [--threshold=PCT]
       check_perf_history.py --self-test

repro_all.sh appends one perf_smoke record per reproduction run to the
git-ignored BENCH_history.jsonl. This script validates that file and flags
hot-path regressions:

  * every non-empty line must parse as a JSON object carrying `bench`,
    `quick`, and `recorded_at` — a malformed history is a structural error;
  * --quick records are recorded but never compared (CI-smoke inputs are
    three orders of magnitude smaller than the full-scale run);
  * for each key throughput metric (higher is better), the newest full-scale
    record is compared against the median of the trailing window (default 8)
    of *prior* full-scale records; a drop of more than --threshold (default
    15 %) is flagged as a regression;
  * fewer than 3 prior full-scale records: comparison is skipped — a median
    of one or two runs on a shared machine is noise, not a baseline.

Exit status: 0 = valid (comparison OK or skipped), 1 = structural error,
2 = regression flagged. repro_all.sh treats 2 as a loud warning, not a
failure — the history lives on a developer machine, where a loaded host can
legitimately dent a run. No third-party imports — runs on a bare python3.

--self-test runs the built-in fixture suite (no file needed) and is what
ctest executes: the build tree has no history file.
"""

import json
import statistics
import sys

# Throughput metrics (higher is better) worth guarding across runs. Timing
# metrics are deliberately absent: they scale with input size, which --scale
# can change between runs, while these rates are per-unit-of-work.
KEY_METRICS = (
    "materialize_ir_ops_per_sec",
    "replay_accesses_per_sec",
    "replay_scalar_accesses_per_sec",
    "sweep_cells_per_sec",
)
DEFAULT_WINDOW = 8
DEFAULT_THRESHOLD_PCT = 15.0
MIN_PRIOR_RECORDS = 3


def load_history(path):
    """Returns (records, errors): parsed JSON objects and structural faults."""
    records = []
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [], [f"{path}: not readable: {e}"]
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{path}:{lineno}: not valid JSON: {e}")
            continue
        if not isinstance(doc, dict):
            errors.append(f"{path}:{lineno}: line is not a JSON object")
            continue
        for key in ("bench", "quick", "recorded_at"):
            if key not in doc:
                errors.append(f"{path}:{lineno}: missing required key {key!r}")
                break
        else:
            records.append(doc)
    return records, errors


def analyze(records, window=DEFAULT_WINDOW, threshold_pct=DEFAULT_THRESHOLD_PCT):
    """Compares the newest full-scale record against the trailing median.

    Returns (regressions, skipped_reason): a list of human-readable
    regression descriptions (empty = healthy), and a non-None reason string
    when no comparison was possible.
    """
    full = [r for r in records if not r.get("quick")]
    if not full:
        return [], "no full-scale records (all --quick)"
    newest, prior = full[-1], full[:-1]
    if len(prior) < MIN_PRIOR_RECORDS:
        return [], (
            f"only {len(prior)} prior full-scale record(s), "
            f"need {MIN_PRIOR_RECORDS} for a baseline")
    tail = prior[-window:]
    regressions = []
    for metric in KEY_METRICS:
        baseline_vals = [
            r[metric] for r in tail
            if isinstance(r.get(metric), (int, float))
            and not isinstance(r.get(metric), bool) and r[metric] > 0
        ]
        current = newest.get(metric)
        if not baseline_vals or not isinstance(current, (int, float)) \
                or isinstance(current, bool):
            continue
        baseline = statistics.median(baseline_vals)
        floor = baseline * (1.0 - threshold_pct / 100.0)
        if current < floor:
            drop = 100.0 * (1.0 - current / baseline)
            regressions.append(
                f"{metric}: {current:.3g} is {drop:.1f}% below the trailing "
                f"median {baseline:.3g} (window of {len(baseline_vals)}, "
                f"threshold {threshold_pct:g}%)")
    return regressions, None


def check_file(path, window, threshold_pct):
    records, errors = load_history(path)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        return 1
    if not records:
        print(f"{path}: empty history — nothing to compare")
        return 0
    regressions, skipped = analyze(records, window, threshold_pct)
    if skipped:
        print(f"{path}: comparison skipped — {skipped}")
        return 0
    if regressions:
        for r in regressions:
            print(f"{path}: REGRESSION: {r}", file=sys.stderr)
        return 2
    full = sum(1 for r in records if not r.get("quick"))
    print(f"{path}: OK ({len(records)} records, {full} full-scale, "
          f"newest within {threshold_pct:g}% of trailing median)")
    return 0


def self_test():
    """Fixture suite over analyze()/load_history(); exercised by ctest."""
    def rec(rate, quick=False):
        return {
            "bench": "perf_smoke", "quick": quick, "recorded_at": "t",
            **{m: rate for m in KEY_METRICS},
        }

    failures = []

    def expect(name, cond):
        if not cond:
            failures.append(name)

    # Healthy trend: newest equals the median — no regressions.
    regs, skipped = analyze([rec(100)] * 4)
    expect("healthy trend flags nothing", not regs and skipped is None)

    # A 20% drop on every metric trips the 15% threshold on every metric.
    regs, skipped = analyze([rec(100)] * 4 + [rec(80)])
    expect("20% drop flagged on all metrics",
           skipped is None and len(regs) == len(KEY_METRICS))

    # A 10% drop stays under the default threshold.
    regs, _ = analyze([rec(100)] * 4 + [rec(90)])
    expect("10% drop tolerated", not regs)

    # ... but trips a tightened one.
    regs, _ = analyze([rec(100)] * 4 + [rec(90)], threshold_pct=5.0)
    expect("10% drop flagged at 5% threshold", len(regs) == len(KEY_METRICS))

    # Quick records never participate: three baselines + a quick outlier.
    regs, skipped = analyze([rec(100), rec(100), rec(100), rec(1, quick=True),
                             rec(100)])
    expect("quick outlier ignored", skipped is None and not regs)

    # All-quick history: comparison skipped, not crashed.
    _, skipped = analyze([rec(1, quick=True)] * 5)
    expect("all-quick history skipped", skipped is not None)

    # Too few priors: skipped.
    _, skipped = analyze([rec(100), rec(100), rec(80)])
    expect("2 priors is below the baseline minimum", skipped is not None)

    # The window bounds the baseline: 8 recent baselines at 100 outvote an
    # ancient era at 1000, so a newest of 100 is healthy.
    regs, skipped = analyze([rec(1000)] * 5 + [rec(100)] * 8 + [rec(100)])
    expect("trailing window forgets ancient eras",
           skipped is None and not regs)

    # Median robustness: one crazy-high prior doesn't inflate the floor.
    regs, _ = analyze([rec(100), rec(100), rec(100), rec(10000), rec(98)])
    expect("single outlier prior absorbed by median", not regs)

    # Structural validation via a real temp file round-trip.
    import os
    import tempfile
    with tempfile.NamedTemporaryFile(
            "w", suffix=".jsonl", delete=False) as f:
        f.write(json.dumps(rec(100)) + "\n")
        f.write("this is not json\n")
        path = f.name
    try:
        records, errors = load_history(path)
        expect("malformed line reported", len(errors) == 1)
        expect("valid line still loaded", len(records) == 1)
    finally:
        os.unlink(path)

    with tempfile.NamedTemporaryFile(
            "w", suffix=".jsonl", delete=False) as f:
        f.write(json.dumps({"bench": "perf_smoke"}) + "\n")
        path = f.name
    try:
        _, errors = load_history(path)
        expect("missing required keys reported", len(errors) == 1)
    finally:
        os.unlink(path)

    if failures:
        for name in failures:
            print(f"self-test FAILED: {name}", file=sys.stderr)
        return 1
    print(f"self-test OK ({len(KEY_METRICS)} guarded metrics)")
    return 0


def main(argv):
    args = argv[1:]
    if args == ["--self-test"]:
        return self_test()
    window = DEFAULT_WINDOW
    threshold = DEFAULT_THRESHOLD_PCT
    paths = []
    for a in args:
        if a.startswith("--window="):
            window = int(a.split("=", 1)[1])
        elif a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1])
        else:
            paths.append(a)
    if not paths or window < 1 or threshold <= 0:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    status = 0
    for path in paths:
        status = max(status, check_file(path, window, threshold))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
