#!/usr/bin/env python3
"""Validate a Chrome trace-event timeline emitted by spf::telemetry.

Usage: check_trace_json.py TRACE.json [TRACE.json ...]

Checks, per file:
  * the file parses as the trace-event "JSON Object Format"
    ({"traceEvents": [...]}) that chrome://tracing and Perfetto load;
  * every event carries the required keys for its phase ("M" metadata,
    "X" complete slices, or paired "B"/"E" duration events);
  * per (pid, tid) lane, slice begin timestamps are monotone non-decreasing
    (spf lanes push spans at begin time, so export order == begin order);
  * slices on one lane nest properly: a slice starting inside an enclosing
    slice must also end inside it (no partial overlap — Perfetto would
    render such a timeline misleadingly);
  * "B"/"E" events, if present, match up per lane like balanced parentheses;
  * every lane that has slices also has a thread_name metadata record.

Exit status: 0 = all files valid, 1 = any violation (details on stderr).
No third-party imports — runs on a bare python3.
"""

import json
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"not loadable JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail(path, 'missing top-level "traceEvents" object key')
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail(path, '"traceEvents" is not an array')

    ok = True
    named_lanes = set()  # lanes with thread_name metadata
    slice_lanes = {}  # (pid, tid) -> list of (ts, dur, name) in file order
    open_stacks = {}  # (pid, tid) -> stack of "B" event names

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            ok = fail(path, f"{where}: event is not an object")
            continue
        ph = ev.get("ph")
        if ph is None:
            ok = fail(path, f'{where}: missing "ph"')
            continue
        lane = (ev.get("pid"), ev.get("tid"))

        if ph == "M":
            if "name" not in ev:
                ok = fail(path, f'{where}: metadata event missing "name"')
            elif ev["name"] == "thread_name":
                args = ev.get("args", {})
                if not isinstance(args, dict) or "name" not in args:
                    ok = fail(path, f"{where}: thread_name without args.name")
                else:
                    named_lanes.add(lane)
        elif ph == "X":
            missing = [k for k in ("pid", "tid", "name", "ts", "dur") if k not in ev]
            if missing:
                ok = fail(path, f"{where}: X slice missing {missing}")
                continue
            if not isinstance(ev["ts"], (int, float)) or not isinstance(
                ev["dur"], (int, float)
            ):
                ok = fail(path, f"{where}: ts/dur must be numbers")
                continue
            if ev["dur"] < 0:
                ok = fail(path, f"{where}: negative dur {ev['dur']}")
                continue
            slice_lanes.setdefault(lane, []).append(
                (float(ev["ts"]), float(ev["dur"]), str(ev["name"]), i)
            )
        elif ph == "B":
            open_stacks.setdefault(lane, []).append(str(ev.get("name")))
        elif ph == "E":
            stack = open_stacks.setdefault(lane, [])
            if not stack:
                ok = fail(path, f'{where}: "E" with no matching "B" on lane {lane}')
            else:
                stack.pop()
        # Other phases (instant, counter, flow...) are legal trace-event
        # content; spf does not emit them, but their presence is not an error.

    for lane, stack in open_stacks.items():
        if stack:
            ok = fail(path, f'lane {lane}: unmatched "B" events left open: {stack}')

    for lane, slices in slice_lanes.items():
        if lane not in named_lanes:
            ok = fail(path, f"lane {lane}: slices but no thread_name metadata")
        # Monotone begin order per lane.
        prev_ts = None
        for ts, _dur, name, idx in slices:
            if prev_ts is not None and ts < prev_ts:
                ok = fail(
                    path,
                    f"lane {lane}: traceEvents[{idx}] '{name}' begins at {ts} "
                    f"before the previous slice's {prev_ts} — not monotone",
                )
            prev_ts = ts
        # Proper nesting: sweep a stack of open intervals in begin order.
        stack = []  # (end, name)
        for ts, dur, name, idx in slices:
            while stack and ts >= stack[-1][0]:
                stack.pop()
            if stack and ts + dur > stack[-1][0]:
                ok = fail(
                    path,
                    f"lane {lane}: traceEvents[{idx}] '{name}' "
                    f"[{ts}, {ts + dur}] straddles the end of enclosing "
                    f"'{stack[-1][1]}' at {stack[-1][0]}",
                )
            stack.append((ts + dur, name))

    if ok:
        n_slices = sum(len(s) for s in slice_lanes.values())
        print(f"{path}: OK ({len(slice_lanes)} lanes, {n_slices} slices)")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_ok = True
    for path in argv[1:]:
        all_ok = check_file(path) and all_ok
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
