// Example: trace tooling. Generates a workload trace, persists it in the
// binary .spft format, loads it back, and prints summaries, phase structure
// and burst-sampling statistics — the offline half of the paper's profiling
// pipeline.
//
// Usage:
//   trace_inspect                         # self-contained demo (tmp file)
//   trace_inspect --in=foo.spft           # inspect an existing trace
//   trace_inspect --workload=mcf --out=mcf.spft   # generate + keep a trace
#include <filesystem>
#include <iostream>

#include "spf/common/cli.hpp"
#include "spf/profile/phase.hpp"
#include "spf/profile/sampling.hpp"
#include "spf/trace/trace_io.hpp"
#include "spf/trace/trace_stats.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/mcf.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const CacheGeometry l2(1 << 20, 16, 64);

  TraceBuffer trace;
  std::filesystem::path path;
  bool cleanup = false;

  if (flags.has("in")) {
    path = flags.get("in", "");
    std::cout << "loading " << path << "\n";
    trace = read_trace(path);
  } else {
    const std::string workload = flags.get("workload", "em3d");
    if (workload == "mcf") {
      McfConfig c;
      c.nodes = 4000;
      c.arcs = 24000;
      c.passes = 2;
      trace = McfWorkload(c).emit_trace();
    } else {
      Em3dConfig c;
      c.nodes = 8000;
      c.arity = 32;
      c.passes = 2;
      trace = Em3dWorkload(c).emit_trace();
    }
    if (flags.has("out")) {
      path = flags.get("out", "");
    } else {
      path = std::filesystem::temp_directory_path() / "spf_demo.spft";
      cleanup = true;
    }
    write_trace(path, trace);
    std::cout << "generated " << workload << " trace -> " << path << " ("
              << std::filesystem::file_size(path) << " bytes)\n";
    // Round-trip to prove the on-disk format.
    trace = read_trace(path);
  }

  std::cout << "\n-- summary --\n"
            << summarize_trace(trace, l2).to_string() << "\n";

  std::cout << "\n-- per-site breakdown --\n";
  const TraceSummary s = summarize_trace(trace, l2);
  for (const auto& [site, count] : s.per_site) {
    std::cout << "  site " << static_cast<int>(site) << ": " << count
              << " accesses\n";
  }

  std::cout << "\n-- phases --\n";
  const PhaseReport phases = detect_phases(trace, l2);
  for (const Phase& p : phases.phases) {
    std::cout << "  phase " << p.phase_id << ": records [" << p.begin_record
              << ", " << p.end_record << ")\n";
  }

  std::cout << "\n-- burst sampling (256-iter bursts every 2048) --\n";
  BurstConfig bc;
  bc.burst_iters = 256;
  bc.interval_iters = 2048;
  const auto bursts = burst_sample(trace, bc);
  std::cout << "  " << bursts.size() << " bursts, kept "
            << 100.0 * sampled_fraction(trace, bursts) << "% of records\n";

  if (cleanup) std::filesystem::remove(path);
  return 0;
}
