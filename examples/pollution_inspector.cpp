// Example: dissecting shared-cache pollution. Runs a workload under SP at
// several distances and breaks the damage down exactly the way the paper
// defines it (§II.C): who evicted whom, and which of the three cases each
// eviction falls into — plus where the wasted bandwidth went.
#include <iostream>

#include "spf/common/cli.hpp"
#include "spf/common/csv.hpp"
#include "spf/core/distance_bound.hpp"
#include "spf/core/experiment.hpp"
#include "spf/sim/simulator.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/mcf.hpp"
#include "spf/workloads/mst.hpp"

namespace {

std::unique_ptr<spf::Workload> make_workload(const std::string& name) {
  if (name == "em3d") {
    spf::Em3dConfig c;
    c.nodes = 20000;
    c.arity = 64;
    c.passes = 1;
    return std::make_unique<spf::Em3dWorkload>(c);
  }
  if (name == "mcf") {
    spf::McfConfig c;
    c.nodes = 8000;
    c.arcs = 48000;
    c.passes = 3;
    return std::make_unique<spf::McfWorkload>(c);
  }
  if (name == "mst") {
    spf::MstConfig c;
    c.vertices = 1200;
    c.degree = 64;
    c.buckets = 128;
    return std::make_unique<spf::MstWorkload>(c);
  }
  std::cerr << "unknown workload '" << name << "' (use em3d|mcf|mst)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const std::string name = flags.get("workload", "em3d");
  const CacheGeometry l2(
      static_cast<std::uint64_t>(flags.get_int("l2", 1 << 20)), 16, 64);

  auto workload = make_workload(name);
  const TraceBuffer trace = workload->emit_trace();
  const DistanceBound bound =
      estimate_distance_bound(trace, workload->invocation_starts(), l2);

  std::cout << "== Pollution inspector: " << name << " on "
            << l2.to_string() << " ==\n"
            << bound.to_string() << "\n\n"
            << "Pollution cases (paper II.C): a premature prefetch displaces\n"
            << "  case 1: data the processor will reuse (detected at re-miss)\n"
            << "  case 2: an unused helper-thread fill\n"
            << "  case 3: an unused hardware-prefetcher fill\n\n";

  Table t({"distance", "vs bound", "case1", "case2", "case3",
           "% prefetch-caused evictions", "bus: demand", "bus: helper",
           "bus: hw", "mean queue delay"});
  for (double mult : {0.25, 1.0, 4.0, 8.0}) {
    const auto d = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(mult * bound.upper_limit));
    SpExperimentConfig exp;
    exp.sim.l2 = l2;
    exp.params = SpParams::from_distance_rp(d, 0.5);

    const TraceBuffer helper = make_helper_trace(trace, exp.params);
    CmpSimulator sim(exp.sim);
    const SimResult r = sim.run({
        CoreStream{.trace = &trace},
        CoreStream{.trace = &helper,
                   .origin = FillOrigin::kHelper,
                   .sync = RoundSync{.leader = 0,
                                     .round_iters = exp.params.round()}},
    });

    const auto& p = r.pollution;
    const double pf_evict_pct =
        r.pollution.total_evictions
            ? 100.0 * static_cast<double>(p.prefetch_caused_evictions) /
                  static_cast<double>(p.total_evictions)
            : 0.0;
    t.row()
        .add(static_cast<std::uint64_t>(d))
        .add(bound.allows(d) ? "within" : "beyond")
        .add(p.case1_reuse_displaced)
        .add(p.case2_helper_displaced)
        .add(p.case3_hw_displaced)
        .add(pf_evict_pct, 1)
        .add(r.memory.requests_by_origin[0])
        .add(r.memory.requests_by_origin[1])
        .add(r.memory.requests_by_origin[2])
        .add(r.memory.mean_queue_delay(), 1);
    std::cerr << ".";
  }
  std::cerr << "\n";
  t.print(std::cout);

  // Spatial view at the worst distance: which sets take the damage.
  {
    const auto d = static_cast<std::uint32_t>(8.0 * bound.upper_limit);
    SpExperimentConfig exp;
    exp.sim.l2 = l2;
    exp.params = SpParams::from_distance_rp(std::max(1u, d), 0.5);
    const TraceBuffer helper = make_helper_trace(trace, exp.params);
    CmpSimulator sim(exp.sim);
    const SimResult r = sim.run({
        CoreStream{.trace = &trace},
        CoreStream{.trace = &helper,
                   .origin = FillOrigin::kHelper,
                   .sync = RoundSync{.leader = 0,
                                     .round_iters = exp.params.round()}},
    });
    std::cout << "\nAt distance " << d << ": " << r.polluted_set_count << "/"
              << l2.num_sets() << " sets polluted; worst sets:";
    for (const auto& [set, count] : r.top_polluted_sets) {
      std::cout << " " << set << "(" << count << ")";
    }
    std::cout << "\n";
  }

  std::cout << "\nReading the table: beyond the bound, cases 2/3 explode "
               "(prefetches evicting\nprefetches) and the memory channel "
               "carries more helper traffic for less benefit.\n";
  return 0;
}
