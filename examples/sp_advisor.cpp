// Example: the one-call advisory API. Point it at any of the built-in
// workloads (or tweak their sizes) and get the full SP deployment
// recommendation: pattern mix, phases, CALR->RP, Set Affinity bound,
// recommended A_SKI/A_PRE and a simulated validation.
//
//   sp_advisor --workload=em3d|mcf|mst|health|synthetic [--l2=<bytes>]
#include <iostream>
#include <memory>

#include "spf/common/cli.hpp"
#include "spf/core/advisor.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/health.hpp"
#include "spf/workloads/mcf.hpp"
#include "spf/workloads/mst.hpp"
#include "spf/workloads/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const std::string name = flags.get("workload", "em3d");

  std::unique_ptr<Workload> workload;
  if (name == "em3d") {
    Em3dConfig c;
    c.nodes = 20000;
    c.arity = 64;
    c.passes = 1;
    workload = std::make_unique<Em3dWorkload>(c);
  } else if (name == "mcf") {
    McfConfig c;
    c.nodes = 8000;
    c.arcs = 48000;
    c.passes = 2;
    workload = std::make_unique<McfWorkload>(c);
  } else if (name == "mst") {
    MstConfig c;
    c.vertices = 1000;
    workload = std::make_unique<MstWorkload>(c);
  } else if (name == "health") {
    HealthConfig c;
    c.depth = 5;
    c.mean_patients = 12;
    c.steps = 6;
    workload = std::make_unique<HealthWorkload>(c);
  } else if (name == "synthetic") {
    SyntheticConfig c;
    c.iterations = 24000;
    // Mostly sequential: the advisor should push back on SP here.
    c.sequential_lines = 10;
    c.random_reads = 1;
    workload = std::make_unique<SyntheticWorkload>(c);
  } else {
    std::cerr << "unknown workload '" << name
              << "' (use em3d|mcf|mst|health|synthetic)\n";
    return 2;
  }

  AdvisorConfig config;
  config.l2 = CacheGeometry(
      static_cast<std::uint64_t>(flags.get_int("l2", 1 << 20)), 16, 64);

  std::cout << "== SP advisor: " << workload->name() << " on "
            << config.l2.to_string() << " ==\n\n";
  const TraceBuffer trace = workload->emit_trace();
  const AdvisorReport report =
      advise_sp(trace, workload->invocation_starts(), config);
  std::cout << report.to_string();
  return 0;
}
