// Example: SP with *real* threads on this machine (spf::rt). Runs EM3D's
// compute loop with and without a pinned helper thread issuing
// __builtin_prefetch for upcoming dependency lines, using the round-
// staggered executor.
//
// On a single-core container this demonstrates correctness only (the
// timings will show no speedup — the simulator benches exist precisely
// because the paper's counters aren't measurable here). On a real multicore
// with a shared LLC, expect the helper to pay off at low CALR.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "spf/common/cli.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/runtime/executor.hpp"
#include "spf/runtime/list_sp.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/em3d_native.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  Em3dConfig config;
  config.nodes = static_cast<std::uint32_t>(flags.get_int("nodes", 100000));
  config.arity = static_cast<std::uint32_t>(flags.get_int("arity", 16));
  config.passes = 1;
  const auto distance =
      static_cast<std::uint32_t>(flags.get_int("distance", 32));
  const int reps = static_cast<int>(flags.get_int("reps", 3));

  std::cout << "== Native-thread SP demo (EM3D, " << config.nodes
            << " nodes x arity " << config.arity << ") ==\n"
            << "CPUs available: " << rt::online_cpus();
  const auto pair = rt::pick_sp_cpu_pair();
  if (pair) {
    std::cout << ", pinning main->" << pair->first << " helper->"
              << pair->second << "\n";
  } else {
    std::cout << " (single CPU: correctness demo only, no speedup expected)\n";
  }

  Em3dWorkload model(config);
  const SpParams params = SpParams::from_distance_rp(distance, 0.5);
  std::cout << "params: " << params.to_string() << "\n\n";

  auto time_ms = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  // Baseline: plain passes.
  Em3dGraph solo(model);
  double solo_ms = 0.0;
  double solo_sum = 0.0;
  for (int r = 0; r < reps; ++r) {
    solo_ms += time_ms([&] { solo_sum = solo.compute_pass(); });
  }

  // SP: round-staggered helper prefetching the dependency lines, via the
  // library's linked-list driver.
  Em3dGraph assisted(model);
  double sp_ms = 0.0;
  double sp_sum = 0.0;
  std::uint64_t prefetch_touches = 0;
  for (int r = 0; r < reps; ++r) {
    sp_ms += time_ms([&] {
      double sum = 0.0;
      const rt::ListSpReport report = rt::run_sp_over_list(
          assisted.head(), params,
          [&sum](Em3dNode& n) {
            double acc = n.value;
            for (std::uint32_t j = 0; j < n.from_count; ++j) {
              acc -= n.coeffs[j] * *n.from_values[j];
            }
            n.value = acc * 1e-3;
            sum += n.value;
          },
          [](const Em3dNode& n) {
            for (std::uint32_t j = 0; j < n.from_count; ++j) {
              rt::prefetch_line(n.from_values[j]);
            }
          },
          rt::ExecutorConfig{.max_lead_rounds = 1});
      sp_sum = sum;
      prefetch_touches = report.nodes_prefetched;
    });
  }
  std::printf("helper touched %llu nodes on the final pass\n",
              static_cast<unsigned long long>(prefetch_touches));

  std::printf("baseline: %8.2f ms/pass   checksum %.6g\n", solo_ms / reps,
              solo_sum);
  std::printf("SP:       %8.2f ms/pass   checksum %.6g   (%+.1f%%)\n",
              sp_ms / reps, sp_sum,
              100.0 * (sp_ms - solo_ms) / (solo_ms > 0 ? solo_ms : 1.0));
  // Both graphs executed `reps` identical passes; results must agree exactly.
  if (solo_sum != sp_sum) {
    std::cerr << "ERROR: helper changed the computation!\n";
    return 1;
  }
  std::cout << "results identical: the helper is purely a prefetching "
               "thread.\n";
  return 0;
}
