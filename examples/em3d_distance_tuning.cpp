// Example: the full distance-tuning workflow the paper proposes, as a
// downstream user would run it on their own kernel.
//
//   profile (burst-sampled!) -> phases -> Set Affinity -> bound ->
//   pick distance -> verify with a focused sweep.
//
// Burst sampling matters: the paper's profiler keeps ~10% of the stream, and
// this example shows the bound computed from samples agrees with the bound
// from the full trace.
#include <algorithm>
#include <iostream>

#include "spf/common/cli.hpp"
#include "spf/common/csv.hpp"
#include "spf/core/distance_bound.hpp"
#include "spf/core/experiment_context.hpp"
#include "spf/profile/phase.hpp"
#include "spf/profile/sampling.hpp"
#include "spf/workloads/em3d.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  Em3dConfig config;
  config.nodes = static_cast<std::uint32_t>(flags.get_int("nodes", 20000));
  config.arity = static_cast<std::uint32_t>(flags.get_int("arity", 64));
  config.passes = 1;
  const CacheGeometry l2(
      static_cast<std::uint64_t>(flags.get_int("l2", 1 << 20)), 16, 64);

  std::cout << "== EM3D prefetch-distance tuning walkthrough ==\n\n";
  Em3dWorkload workload(config);
  const TraceBuffer trace = workload.emit_trace();
  std::cout << "[1] traced hot loop: " << trace.size() << " accesses, "
            << workload.outer_iterations() << " outer iterations\n";

  // Phase behaviour: EM3D's compute_nodes is famously stable.
  const PhaseReport phases = detect_phases(trace, l2);
  std::cout << "[2] phase detection: " << phases.distinct_phases
            << " distinct phase(s) across " << phases.phases.size()
            << " segment(s)"
            << (phases.is_stable() ? " -- stable, one profile suffices" : "")
            << "\n";

  // Interval burst sampling, as the paper's low-overhead profiler does.
  BurstConfig burst_cfg;
  burst_cfg.burst_iters = 256;
  burst_cfg.interval_iters = 2048;
  const auto bursts = burst_sample(trace, burst_cfg);
  std::cout << "[3] burst sampling kept "
            << 100.0 * sampled_fraction(trace, bursts) << "% of the stream in "
            << bursts.size() << " bursts\n";

  // Set Affinity from samples vs from the full stream.
  SetAffinityAnalyzer sampled_an(l2);
  std::uint32_t sampled_min = ~0u;
  for (const Burst& b : bursts) {
    for (const TraceRecord& r : b.records) {
      sampled_an.observe(r.addr, r.outer_iter);
    }
    const SetAffinityResult r = sampled_an.finish();
    if (r.any_saturated()) {
      sampled_min = std::min(sampled_min, r.min_sa());
    }
  }
  const DistanceBound bound =
      estimate_distance_bound(trace, workload.invocation_starts(), l2);
  std::cout << "[4] min Set Affinity: full trace = " << bound.original_min_sa
            << ", burst samples = " << sampled_min
            << " -> bound (SA/2) = " << bound.upper_limit << "\n";

  // Refine with the combined main+helper stream (Definition 3).
  const SpParams chosen =
      SpParams::from_distance_rp(std::max(1u, bound.upper_limit / 2), 0.5);
  const DistanceBound refined = refine_with_helper(
      bound, trace, workload.invocation_starts(), chosen, l2);
  std::cout << "[5] refined with helper stream: " << refined.to_string()
            << "\n\n";

  // Verify with a focused sweep around the chosen point. The sweep reuses
  // one ExperimentContext across all four comparisons.
  SpExperimentConfig exp;
  exp.sim.l2 = l2;
  ExperimentContext ctx;
  Table t({"distance", "norm runtime", "pollution", "verdict"});
  double best_runtime = 1e300;
  std::uint32_t best_distance = 0;
  for (std::uint32_t d :
       {std::max(1u, refined.upper_limit / 4), std::max(1u, refined.upper_limit / 2),
        refined.upper_limit, refined.upper_limit * 4}) {
    exp.params = SpParams::from_distance_rp(d, 0.5);
    const SpComparison cmp = ctx.run_comparison(trace, exp);
    if (cmp.norm_runtime() < best_runtime) {
      best_runtime = cmp.norm_runtime();
      best_distance = d;
    }
    t.row()
        .add(static_cast<std::uint64_t>(d))
        .add(cmp.norm_runtime(), 3)
        .add(cmp.sp.pollution.total_pollution())
        .add(refined.allows(d) ? "within bound" : "beyond bound");
  }
  t.print(std::cout);
  std::cout << "\n[6] chosen distance " << best_distance << " ("
            << format_fixed((1.0 - best_runtime) * 100.0, 1)
            << "% faster than the original loop on the simulated die)\n";
  const auto unknown = flags.unconsumed();
  return unknown.empty() ? 0 : 2;
}
