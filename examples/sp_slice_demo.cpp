// Example: compiler-style helper construction, end to end.
//
// Encodes each workload's hot loop in the mini IR, slices out the helper
// thread ("the helper executes only the load's computation"), shows what the
// slicer kept and dropped, and simulates main + sliced helper on the CMP.
//
//   sp_slice_demo [--workload=em3d|mcf|mst]
#include <iostream>

#include "spf/common/cli.hpp"
#include "spf/common/csv.hpp"
#include "spf/core/distance_bound.hpp"
#include "spf/ir/interp.hpp"
#include "spf/ir/slice.hpp"
#include "spf/profile/invocations.hpp"
#include "spf/sim/simulator.hpp"
#include "spf/workloads/em3d_ir.hpp"
#include "spf/workloads/mcf_ir.hpp"
#include "spf/workloads/mst_ir.hpp"

namespace {

void describe_slice(const spf::ir::Program& program,
                    const spf::ir::SliceMasks& masks) {
  const spf::ir::SliceStats stats = spf::ir::slice_stats(program, masks);
  std::cout << "slice: kept " << stats.helper_instrs << "/"
            << stats.program_instrs << " instructions (" << stats.spine_instrs
            << " run even in skip iterations); dropped "
            << stats.dropped_stores << " store(s) and " << stats.dropped_compute
            << " value-only instruction(s)\n\nper-instruction view:\n";
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const spf::ir::Instr& ins = program.code[i];
    const char* role = masks.spine_mask[i]   ? "SPINE "
                       : masks.helper_mask[i] ? "helper"
                                              : "  -   ";
    std::cout << "  [" << role << "] " << i << ": "
              << spf::ir::to_string(ins.op);
    if (ins.op == spf::ir::OpCode::kLoad ||
        ins.op == spf::ir::OpCode::kStore) {
      std::cout << " site=" << static_cast<int>(ins.site)
                << ((ins.flags & spf::kFlagDelinquent) ? " DELINQUENT" : "")
                << ((ins.flags & spf::kFlagSpine) ? " spine-flag" : "");
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spf;
  CliFlags flags(argc, argv);
  const std::string which = flags.get("workload", "em3d");
  const CacheGeometry l2(1 << 20, 16, 64);

  ir::Program program;
  ir::VirtualMemory memory;
  std::vector<std::uint32_t> invocations{0};
  if (which == "em3d") {
    Em3dConfig c;
    c.nodes = 16000;
    c.arity = 32;
    c.passes = 1;
    Em3dWorkload model(c);
    Em3dIr built = build_em3d_ir(model);
    program = std::move(built.program);
    memory = std::move(built.memory);
  } else if (which == "mcf") {
    McfConfig c;
    c.nodes = 8000;
    c.arcs = 48000;
    c.passes = 2;
    McfWorkload model(c);
    McfIr built = build_mcf_ir(model);
    program = std::move(built.program);
    memory = std::move(built.memory);
    invocations = {0, c.arcs};
  } else if (which == "mst") {
    MstConfig c;
    c.vertices = 4000;
    c.degree = 64;
    c.buckets = 32;
    MstWorkload model(c);
    MstIr built = build_mst_ir(model);
    program = std::move(built.program);
    memory = std::move(built.memory);
  } else {
    std::cerr << "unknown workload '" << which << "' (em3d|mcf|mst)\n";
    return 2;
  }

  std::cout << "== Slicing-based SP on " << which << " ==\n\n";
  const ir::SliceMasks masks = ir::build_helper_slice(program);
  describe_slice(program, masks);

  // Main stream + distance bound.
  const ir::InterpResult main_run = ir::interpret(program, memory);
  const DistanceBound bound =
      estimate_distance_bound(main_run.trace, invocations, l2);
  const std::uint32_t distance = std::max(1u, bound.upper_limit / 2);
  const SpParams params = SpParams::from_distance_rp(distance, 0.5);
  std::cout << "\n" << bound.to_string() << " -> " << params.to_string()
            << "\n";

  // Helper stream from the slice, simulated against the main stream.
  const ir::InterpResult helper =
      ir::interpret_helper(program, masks, params, memory);
  SimConfig sim;
  sim.l2 = l2;
  CmpSimulator baseline_sim(sim);
  const SimResult baseline =
      baseline_sim.run({CoreStream{.trace = &main_run.trace}});
  CmpSimulator sp_sim(sim);
  const SimResult sp = sp_sim.run({
      CoreStream{.trace = &main_run.trace},
      CoreStream{.trace = &helper.trace,
                 .origin = FillOrigin::kHelper,
                 .sync = RoundSync{.leader = 0, .round_iters = params.round()}},
  });

  std::cout << "main loads/stores: " << main_run.loads << "/" << main_run.stores
            << "; helper loads: " << helper.loads << " ("
            << format_fixed(100.0 * static_cast<double>(helper.loads) /
                                static_cast<double>(main_run.loads),
                            1)
            << "% of main)\n"
            << "norm runtime with sliced helper: "
            << format_fixed(static_cast<double>(sp.per_core[0].finish_time) /
                                static_cast<double>(
                                    baseline.per_core[0].finish_time),
                            3)
            << "   totally misses: " << baseline.per_core[0].totally_misses
            << " -> " << sp.per_core[0].totally_misses << "\n";
  return 0;
}
