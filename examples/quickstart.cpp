// Quickstart: the complete SP workflow on EM3D.
//
//   1. build a workload and emit its hot-loop trace;
//   2. profile it: CALR (picks the prefetch ratio) and Set Affinity (bounds
//      the prefetch distance);
//   3. run the original and SP configurations on the CMP simulator;
//   4. compare a distance inside the bound against one far outside it.
//
// Run with no arguments; --nodes/--arity/--distance are optional overrides.
#include <cstdio>
#include <iostream>

#include "spf/common/cli.hpp"
#include "spf/core/distance_bound.hpp"
#include "spf/core/experiment_context.hpp"
#include "spf/profile/calr.hpp"
#include "spf/workloads/em3d.hpp"

int main(int argc, char** argv) {
  spf::CliFlags flags(argc, argv);
  spf::Em3dConfig config;
  config.nodes = static_cast<std::uint32_t>(flags.get_int("nodes", 20000));
  config.arity = static_cast<std::uint32_t>(flags.get_int("arity", 64));
  config.passes = 2;

  // A smaller L2 keeps the demo fast while preserving the paper's geometry
  // ratios (16-way, 64 B lines).
  spf::SpExperimentConfig exp;
  exp.sim.l2 = spf::CacheGeometry(1 << 20, 16, 64);

  std::cout << "== Skip helper-threaded Prefetching quickstart (EM3D) ==\n";
  std::cout << "L2: " << exp.sim.l2.to_string() << "\n\n";

  // 1. Build + trace.
  spf::Em3dWorkload workload(config);
  const spf::TraceBuffer trace = workload.emit_trace();
  std::cout << "trace: " << trace.size() << " accesses over "
            << workload.outer_iterations() << " outer iterations\n";

  // 2. Profile: CALR -> RP; Set Affinity -> distance bound.
  spf::CalrConfig calr_config;
  calr_config.l2 = exp.sim.l2;
  const spf::CalrEstimate calr = spf::estimate_calr(trace, calr_config);
  const double rp = spf::SpParams::rp_from_calr(calr.calr);
  std::cout << calr.to_string() << " -> RP=" << rp << "\n";

  const spf::DistanceBound bound = spf::estimate_distance_bound(
      trace, workload.invocation_starts(), exp.sim.l2);
  std::cout << bound.to_string() << "\n\n";

  // 3+4. Compare a distance inside the bound vs far beyond it. One
  // ExperimentContext serves both comparisons: the simulator and helper-trace
  // scratch are reused between runs (identical results to the free
  // spf::run_sp_experiment, without re-building the machine each time).
  spf::ExperimentContext ctx;
  const auto good = static_cast<std::uint32_t>(
      flags.get_int("distance", std::max(1u, bound.upper_limit / 2)));
  const std::uint32_t bad = bound.upper_limit * 6;
  for (std::uint32_t distance : {good, bad}) {
    exp.params = spf::SpParams::from_distance_rp(distance, rp);
    const spf::SpComparison cmp = ctx.run_comparison(trace, exp);
    std::printf(
        "distance %5u (%s bound %u): norm_runtime=%.3f  dThit=%+.3f  "
        "dTmiss=%+.3f  dPhit=%+.3f  pollution=%llu\n",
        distance, bound.allows(distance) ? "within" : "BEYOND",
        bound.upper_limit, cmp.norm_runtime(), cmp.delta_totally_hit(),
        cmp.delta_totally_miss(), cmp.delta_partially_hit(),
        static_cast<unsigned long long>(cmp.sp.pollution.total_pollution()));
  }
  std::cout << "\nWithin the bound SP should cut totally-misses with little "
               "pollution;\nbeyond it the helper strips the shared cache and "
               "runtime climbs back up.\n";
  return 0;
}
