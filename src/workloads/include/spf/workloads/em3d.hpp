// EM3D (Olden suite) — electromagnetic wave propagation on a bipartite
// graph. The paper's Figure 1(a) hotspot:
//
//   for (curr_node = nodelist; curr_node; curr_node = curr_node->next)  // outer
//     for (j = 0; j < curr_node->from_count; ++j)                       // inner
//       ... other_node->from_length ...   /* delinquent load */
//       ... other_node->from_values ...   /* delinquent load */
//
// Structure: E nodes and H nodes; each node depends on `arity` random nodes
// of the other kind. Per outer iteration the loop walks the node-list spine
// (pointer chase), streams through the node's dependency-pointer and
// coefficient arrays (sequential), and dereferences each dependency (the
// delinquent loads — `arity` irregular accesses across the whole node array).
//
// CALR is near zero: one multiply-accumulate per dependency load.
#pragma once

#include <cstdint>
#include <vector>

#include "spf/workloads/workload.hpp"

namespace spf {

struct Em3dConfig {
  /// Total nodes (split into E and H halves).
  std::uint32_t nodes = 20000;
  /// Dependencies per node (paper Table II: arity 128).
  std::uint32_t arity = 64;
  /// compute_nodes() invocations (each is one outer hot loop call).
  std::uint32_t passes = 2;
  /// ALU cycles per dependency (low => low CALR, the SP target regime).
  std::uint32_t compute_cycles_per_dep = 1;
  std::uint64_t seed = 42;
  /// Place nodes in memory in shuffled order relative to list order, the way
  /// repeated malloc/free churn scatters a real linked structure.
  bool shuffle_placement = true;
  /// When nonzero, every pass except the LAST walks only
  /// min(prelude_arity, arity) dependencies per node — a low-pressure prelude
  /// (think: initialization sweeps that touch a subset of the graph) followed
  /// by the full-arity pressured phase. This is the late-tight-phase fixture:
  /// the whole-run Set-Affinity bound is dragged down by the hot final pass,
  /// while per-phase capping can relax the quiet prelude. 0 (default) keeps
  /// every pass at full arity, emitting exactly the classic trace.
  std::uint32_t prelude_arity = 0;

  /// Paper Table II input: "4*10^5 nodes, arity 128".
  static Em3dConfig paper_scale() {
    Em3dConfig c;
    c.nodes = 400000;
    c.arity = 128;
    c.passes = 1;
    return c;
  }
};

/// Load sites in the hot loop (feed the IP-stride prefetcher).
enum Em3dSite : std::uint8_t {
  kEm3dNode = 0,       // spine: node struct via ->next
  kEm3dFromPtrs = 1,   // dependency pointer array (sequential)
  kEm3dFromValue = 2,  // *from_values[j] (delinquent, irregular)
  kEm3dCoeffs = 3,     // coefficient array (sequential)
  kEm3dValueWrite = 4, // node->value store
};

class Em3dWorkload final : public Workload {
 public:
  explicit Em3dWorkload(const Em3dConfig& config);

  [[nodiscard]] std::string name() const override { return "em3d"; }
  [[nodiscard]] TraceBuffer emit_trace() const override;
  [[nodiscard]] std::uint32_t outer_iterations() const override {
    return config_.nodes * config_.passes;
  }
  [[nodiscard]] std::vector<std::uint32_t> invocation_starts() const override;

  [[nodiscard]] const Em3dConfig& config() const noexcept { return config_; }
  /// Virtual address of node i's struct (placement order, not list order).
  [[nodiscard]] Addr node_addr(std::uint32_t list_index) const;
  /// Dependency targets of node i (list indices into the other half).
  [[nodiscard]] const std::uint32_t* targets_of(std::uint32_t list_index) const;
  /// Base of node i's from_values pointer row / coefficient row.
  [[nodiscard]] Addr ptr_row_addr(std::uint32_t list_index) const;
  [[nodiscard]] Addr coeff_row_addr(std::uint32_t list_index) const;

 private:
  Em3dConfig config_;
  Addr nodes_base_ = 0;
  Addr from_ptrs_base_ = 0;
  Addr coeffs_base_ = 0;
  /// placement_[i] = memory slot of the node at list position i.
  std::vector<std::uint32_t> placement_;
  /// Flattened targets: nodes * arity list indices.
  std::vector<std::uint32_t> targets_;
};

}  // namespace spf
