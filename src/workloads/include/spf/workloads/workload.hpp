// Common workload interface.
//
// A workload models one of the paper's benchmarks: it builds the program's
// data structures (deterministically, in a virtual address space), and emits
// the hot function's memory access trace annotated with outer-loop iteration
// ids, load sites, spine/delinquent flags, and compute gaps.
//
// Set Affinity is measured per hot-function *invocation* (paper §IV.C), so
// workloads also report where invocations begin in the cumulative iteration
// numbering; spf::analyze_workload_sa (spf/profile/invocations.hpp) consumes
// that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spf/profile/invocations.hpp"
#include "spf/trace/trace.hpp"

namespace spf {

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Emit the main thread's hot-loop trace.
  [[nodiscard]] virtual TraceBuffer emit_trace() const = 0;
  /// Total outer-loop iterations the trace covers.
  [[nodiscard]] virtual std::uint32_t outer_iterations() const = 0;
  /// Cumulative outer-iteration index at which each hot-function invocation
  /// begins (first element is always 0).
  [[nodiscard]] virtual std::vector<std::uint32_t> invocation_starts() const = 0;
};

}  // namespace spf
