// HEALTH (Olden suite) — Colombian health-care simulation: a 4-ary tree of
// villages, each with linked lists of patients that are assessed every time
// step and sometimes referred up the hierarchy.
//
// The hot function (sim()/check_patients_*) walks each village's patient
// list — a malloc-scattered linked list whose nodes are the delinquent
// loads — making HEALTH the canonical "helper threading for LDS" benchmark
// beyond the three the paper evaluates. We include it as a fourth workload
// to exercise the library on a list-of-lists shape none of the others have.
//
// Outer hot-loop iteration = one village visit (villages are visited in a
// fixed DFS order each simulated time step).
#pragma once

#include <cstdint>
#include <vector>

#include "spf/workloads/workload.hpp"

namespace spf {

struct HealthConfig {
  /// Tree depth (4-ary): villages = (4^depth - 1) / 3.
  std::uint32_t depth = 5;
  /// Mean patients per village list at steady state.
  std::uint32_t mean_patients = 12;
  /// Simulated time steps (hot function invocations).
  std::uint32_t steps = 8;
  /// Probability (percent) a patient is referred to the parent village.
  std::uint32_t referral_percent = 10;
  std::uint32_t compute_cycles_per_patient = 1;
  std::uint64_t seed = 46;

  [[nodiscard]] std::uint32_t villages() const noexcept {
    std::uint32_t n = 0;
    std::uint32_t level = 1;
    for (std::uint32_t d = 0; d < depth; ++d) {
      n += level;
      level *= 4;
    }
    return n;
  }
};

enum HealthSite : std::uint8_t {
  kHealthVillage = 0,  // village struct (spine: DFS traversal)
  kHealthPatient = 1,  // patient node (delinquent: scattered list)
  kHealthUpdate = 2,   // patient status write
  kHealthReferral = 3, // parent village's list head update (write)
};

class HealthWorkload final : public Workload {
 public:
  explicit HealthWorkload(const HealthConfig& config);

  [[nodiscard]] std::string name() const override { return "health"; }
  [[nodiscard]] TraceBuffer emit_trace() const override;
  [[nodiscard]] std::uint32_t outer_iterations() const override {
    return config_.villages() * config_.steps;
  }
  [[nodiscard]] std::vector<std::uint32_t> invocation_starts() const override;

  [[nodiscard]] const HealthConfig& config() const noexcept { return config_; }
  [[nodiscard]] Addr village_addr(std::uint32_t v) const;

 private:
  HealthConfig config_;
  Addr villages_base_ = 0;
  Addr patients_base_ = 0;
  std::uint64_t patient_slots_ = 0;
  /// DFS visit order of village ids.
  std::vector<std::uint32_t> dfs_order_;
  /// Parent village per village (root's parent is itself).
  std::vector<std::uint32_t> parent_;
};

}  // namespace spf
