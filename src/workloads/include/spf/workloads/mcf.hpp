// MCF-lite — a from-scratch network-simplex pricing kernel with the access
// shape of SPEC CPU2006 429.mcf's hot function `primal_bea_mpp`:
//
//   for (arc = arcs; arc < stop_arcs; arc += nr_group)   // outer (arc scan)
//     if (arc->ident > BASIC) {
//       red_cost = arc->cost - arc->tail->potential + arc->head->potential;
//       ... insert into candidate list if violating ...
//     }
//
// The scan streams through the arc array (sequential, streamer-friendly)
// while the tail/head potential reads bounce irregularly across the node
// array — those are the delinquent loads. Between pricing passes a basis-
// exchange step perturbs node potentials (writes), as the simplex pivot
// would.
//
// We do not solve min-cost flow exactly; we reproduce the pricing sweep's
// memory behaviour, which is what the paper's SP targets.
#pragma once

#include <cstdint>
#include <vector>

#include "spf/workloads/workload.hpp"

namespace spf {

struct McfConfig {
  std::uint32_t nodes = 8000;
  std::uint32_t arcs = 48000;
  /// Pricing passes (hot function invocations).
  std::uint32_t passes = 4;
  /// Every `update_interval` scanned arcs, one candidate write occurs
  /// (models candidate-list pushes).
  std::uint32_t update_interval = 64;
  /// Node potentials rewritten between passes (basis exchange).
  std::uint32_t pivots_per_pass = 128;
  std::uint32_t compute_cycles_per_arc = 2;
  std::uint64_t seed = 43;

  /// Scaled stand-in for the SPEC ref input (the real one has ~2.7M arcs;
  /// same shape, tractable trace size).
  static McfConfig paper_scale() {
    McfConfig c;
    c.nodes = 40000;
    c.arcs = 280000;
    c.passes = 4;
    return c;
  }
};

enum McfSite : std::uint8_t {
  kMcfArc = 0,           // arc struct (sequential scan)
  kMcfTailPotential = 1, // arc->tail->potential (delinquent)
  kMcfHeadPotential = 2, // arc->head->potential (delinquent)
  kMcfCandidate = 3,     // candidate-list push (write)
  kMcfPivot = 4,         // basis-exchange potential writes
};

class McfWorkload final : public Workload {
 public:
  explicit McfWorkload(const McfConfig& config);

  [[nodiscard]] std::string name() const override { return "mcf"; }
  [[nodiscard]] TraceBuffer emit_trace() const override;
  [[nodiscard]] std::uint32_t outer_iterations() const override {
    return config_.arcs * config_.passes;
  }
  [[nodiscard]] std::vector<std::uint32_t> invocation_starts() const override;

  [[nodiscard]] const McfConfig& config() const noexcept { return config_; }
  [[nodiscard]] Addr arc_addr(std::uint32_t arc) const;
  [[nodiscard]] Addr node_addr(std::uint32_t node) const;
  [[nodiscard]] std::uint32_t tail_of(std::uint32_t arc) const {
    return tail_.at(arc);
  }
  [[nodiscard]] std::uint32_t head_of(std::uint32_t arc) const {
    return head_.at(arc);
  }

 private:
  McfConfig config_;
  Addr arcs_base_ = 0;
  Addr nodes_base_ = 0;
  Addr candidates_base_ = 0;
  /// tail/head node index per arc.
  std::vector<std::uint32_t> tail_;
  std::vector<std::uint32_t> head_;
};

}  // namespace spf
