// Synthetic workload with a controllable access-pattern mix.
//
// The paper's stated future work is "to analyze the effect of memory access
// pattern on prefetching performance"; this generator makes that a
// parameter. Each outer iteration performs, in order:
//   * a spine read (pointer chase over a shuffled node list),
//   * `sequential_lines` reads streaming through a large array,
//   * `strided_reads` reads at a fixed stride (DPL-friendly),
//   * `random_reads` reads uniform over `random_footprint_lines`
//     (the delinquent, helper-worthy loads),
// with `compute_cycles` of ALU work attached to each random read.
#pragma once

#include <cstdint>

#include "spf/workloads/workload.hpp"

namespace spf {

struct SyntheticConfig {
  std::uint32_t iterations = 20000;
  std::uint32_t sequential_lines = 2;
  std::uint32_t strided_reads = 2;
  /// Stride in bytes for the strided site.
  std::uint32_t stride_bytes = 1024;
  std::uint32_t random_reads = 8;
  std::uint64_t random_footprint_lines = 1 << 15;
  std::uint32_t compute_cycles = 1;
  std::uint64_t seed = 45;
};

enum SyntheticSite : std::uint8_t {
  kSynSpine = 0,
  kSynSequential = 1,
  kSynStrided = 2,
  kSynRandom = 3,
};

class SyntheticWorkload final : public Workload {
 public:
  explicit SyntheticWorkload(const SyntheticConfig& config);

  [[nodiscard]] std::string name() const override { return "synthetic"; }
  [[nodiscard]] TraceBuffer emit_trace() const override;
  [[nodiscard]] std::uint32_t outer_iterations() const override {
    return config_.iterations;
  }
  [[nodiscard]] std::vector<std::uint32_t> invocation_starts() const override {
    return {0};
  }

  [[nodiscard]] const SyntheticConfig& config() const noexcept { return config_; }

 private:
  SyntheticConfig config_;
  Addr spine_base_ = 0;
  Addr seq_base_ = 0;
  Addr stride_base_ = 0;
  Addr random_base_ = 0;
  std::vector<std::uint32_t> spine_placement_;
};

}  // namespace spf
