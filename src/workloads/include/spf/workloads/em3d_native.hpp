// Natively executable EM3D: real linked data structures and kernels, used by
// the real-thread SP runtime (spf_runtime) and the examples. Topology is
// taken from an Em3dWorkload so the native graph and the trace-level model
// describe the same computation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "spf/workloads/em3d.hpp"

namespace spf {

struct Em3dNode {
  double value = 1.0;
  Em3dNode* next = nullptr;
  std::uint32_t from_count = 0;
  double** from_values = nullptr;
  double* coeffs = nullptr;
};

class Em3dGraph {
 public:
  /// Builds real nodes mirroring `model`'s topology and placement.
  explicit Em3dGraph(const Em3dWorkload& model);

  [[nodiscard]] Em3dNode* head() noexcept { return head_; }
  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// One compute_nodes() pass of the main loop; returns the value checksum.
  double compute_pass();

  /// The SP helper slice for one pass: per round, chase the spine through
  /// `a_ski` nodes, then touch the dependency data of the next `a_pre` nodes
  /// (prefetching their cache lines). Returns the number of prefetches
  /// issued (for tests).
  std::uint64_t helper_pass(std::uint32_t a_ski, std::uint32_t a_pre) const;

  /// Sum of node values (verification).
  [[nodiscard]] double checksum() const;

 private:
  std::vector<Em3dNode> nodes_;       // placement order
  std::vector<double*> from_ptrs_;    // nodes * arity
  std::vector<double> coeffs_;        // nodes * arity
  Em3dNode* head_ = nullptr;
};

}  // namespace spf
