// EM3D encoded in the mini loop IR (spf/ir) with its data structures laid
// out in IR virtual memory — real next pointers, real dependency-pointer
// rows. This is the input to slicing-based helper construction, and a
// differential cross-check for the hand-instrumented Em3dWorkload emitter:
// two independent encodings of the same hot loop must show the same cache
// behaviour.
//
// Word-accurate encoding of the Fig. 1(a) hotspot (one record per executed
// load/store, where the trace emitter collapses same-line array touches):
//
//   for (node = head; ; node = node->next) {           // circular: passes
//     acc   = node->value;
//     ptrs  = node->from_values; coeffs = node->coeffs; n = node->from_count;
//     for (j = 0; j < n; ++j)
//       acc -= coeffs[j] * *ptrs[j];                   // delinquent load
//     node->value = acc;
//   }
#pragma once

#include "spf/ir/interp.hpp"
#include "spf/ir/ir.hpp"
#include "spf/ir/vm.hpp"
#include "spf/workloads/em3d.hpp"

namespace spf {

struct Em3dIr {
  ir::Program program;
  ir::VirtualMemory memory;
};

/// Encodes `model`'s exact topology and placement. The node list is made
/// circular so `model.config().passes` passes are one outer loop of
/// nodes*passes iterations (matching the workload's iteration numbering).
[[nodiscard]] Em3dIr build_em3d_ir(const Em3dWorkload& model);

}  // namespace spf
