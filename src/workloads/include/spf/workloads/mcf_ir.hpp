// MCF's pricing loop encoded in the mini IR. Unlike EM3D there is no
// pointer-chased spine: the arc address is recomputed from the induction
// variable, so the helper slice has an *empty* spine mask — skipped
// iterations cost the helper nothing, which is why array scans tolerate
// huge prefetch distances cheaply.
//
//   for (a = 0; a < arcs; ++a) {            // outer (per pass, circularized)
//     arc   = arcs_base + a*64;
//     tail  = arc->tail;  head = arc->head; // loads of the arc line
//     rc    = arc->cost - tail->potential + head->potential;
//     if (...) candidate write              // modeled as periodic store
//   }
#pragma once

#include "spf/ir/interp.hpp"
#include "spf/ir/ir.hpp"
#include "spf/ir/vm.hpp"
#include "spf/workloads/mcf.hpp"

namespace spf {

struct McfIr {
  ir::Program program;
  ir::VirtualMemory memory;
};

/// Encodes `model`'s exact arc->node topology. Passes are expressed by an
/// outer trip of arcs*passes with the arc index taken modulo arcs.
[[nodiscard]] McfIr build_mcf_ir(const McfWorkload& model);

}  // namespace spf
