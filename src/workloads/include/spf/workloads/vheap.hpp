// Virtual heap: assigns synthetic addresses to workload data structures so
// traces are bit-identical across runs and machines (real heap addresses
// would vary with ASLR and allocator state, perturbing set mapping).
//
// The bump allocator mimics the allocation order of the original programs:
// structures allocated in sequence are adjacent, which is what gives the
// Olden kernels their characteristic mix of sequential (arrays) and
// irregular (pointer-target) locality.
#pragma once

#include <cstdint>

#include "spf/mem/types.hpp"

namespace spf {

class VirtualHeap {
 public:
  /// Base defaults far from zero so address arithmetic bugs surface as
  /// obviously-wrong values rather than plausible small addresses.
  explicit VirtualHeap(Addr base = 0x10000000) : base_(base), cursor_(base) {}

  /// Returns the start of a fresh `bytes`-sized region aligned to `align`
  /// (power of two).
  Addr allocate(std::uint64_t bytes, std::uint64_t align = 8);

  /// Total bytes handed out (including alignment padding).
  [[nodiscard]] std::uint64_t used() const noexcept { return cursor_ - base_; }
  [[nodiscard]] Addr top() const noexcept { return cursor_; }

 private:
  Addr base_;
  Addr cursor_;
};

}  // namespace spf
