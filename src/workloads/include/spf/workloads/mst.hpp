// MST (Olden suite) — Bentley's minimum-spanning-tree with per-vertex hash
// tables of edge weights. The hot function is the BlueRule scan: after a
// vertex joins the tree, every remaining vertex walks its own hash table to
// look up the distance to the newcomer:
//
//   for (tmp = vlist; tmp; tmp = tmp->next) {        // outer hot loop
//     dist = HashLookup(new_vertex, tmp->edgehash);  // bucket + chain walk
//     if (dist < tmp->mindist) tmp->mindist = dist;
//   }
//
// Access shape per iteration: vertex struct (spine pointer chase), one
// bucket-array read (irregular: the bucket index depends on the newcomer),
// and a short chain walk (irregular) — a few delinquent lines per iteration
// over a large hash-table footprint, which is why MST's Set Affinity is two
// orders of magnitude larger than EM3D's (paper Table II: [6300, 10000]).
#pragma once

#include <cstdint>
#include <vector>

#include "spf/workloads/workload.hpp"

namespace spf {

struct MstConfig {
  std::uint32_t vertices = 1200;
  /// Edges stored per vertex hash table.
  std::uint32_t degree = 64;
  /// Hash buckets per vertex (power of two).
  std::uint32_t buckets = 128;
  /// Cap on tree-growth steps (0 = run Prim to completion). The full
  /// algorithm performs vertices-1 steps and Theta(V^2) scan iterations.
  std::uint32_t max_steps = 0;
  std::uint32_t compute_cycles_per_lookup = 1;
  std::uint64_t seed = 44;

  /// Paper Table II input is 10^4 vertices; a full run is Theta(V^2) = 5e7
  /// scan iterations, so the paper-scale preset caps the step count while
  /// keeping each scan at the paper's length scale.
  static MstConfig paper_scale() {
    MstConfig c;
    c.vertices = 10000;
    c.degree = 64;
    c.buckets = 128;
    c.max_steps = 400;
    return c;
  }
};

enum MstSite : std::uint8_t {
  kMstVertex = 0,       // vertex struct via ->next (spine)
  kMstBucket = 1,       // hash bucket slot (delinquent)
  kMstHashEntry = 2,    // chain entry (delinquent)
  kMstMindistWrite = 3, // tmp->mindist update
};

class MstWorkload final : public Workload {
 public:
  explicit MstWorkload(const MstConfig& config);

  [[nodiscard]] std::string name() const override { return "mst"; }
  [[nodiscard]] TraceBuffer emit_trace() const override;
  [[nodiscard]] std::uint32_t outer_iterations() const override {
    return total_iterations_;
  }
  /// Each BlueRule scan is one hot-function invocation.
  [[nodiscard]] std::vector<std::uint32_t> invocation_starts() const override {
    return scan_starts_;
  }

  [[nodiscard]] const MstConfig& config() const noexcept { return config_; }
  [[nodiscard]] Addr vertex_addr(std::uint32_t v) const;
  /// Base address of v's hash-table bucket array (jittered per vertex).
  [[nodiscard]] Addr hash_table_addr(std::uint32_t v) const;
  /// Bucket a key hashes to.
  [[nodiscard]] std::uint32_t bucket_of_key(std::uint32_t key) const {
    return bucket_of(key);
  }
  /// Addresses of the entries chained in bucket b of vertex u, in walk order.
  [[nodiscard]] std::vector<Addr> chain_entry_addrs(std::uint32_t u,
                                                    std::uint32_t b) const;
  /// The vertex whose insertion triggers the first BlueRule scan.
  [[nodiscard]] std::uint32_t first_scan_new_vertex() const {
    return insert_order_.front();
  }
  /// Vertices the first scan visits, in list order.
  [[nodiscard]] std::vector<std::uint32_t> first_scan_order() const {
    return {insert_order_.begin() + 1, insert_order_.end()};
  }

 private:
  /// Entry ids chained in bucket b of vertex u.
  [[nodiscard]] const std::vector<std::uint32_t>& chain(std::uint32_t u,
                                                        std::uint32_t b) const;
  [[nodiscard]] std::uint32_t bucket_of(std::uint32_t key) const;

  MstConfig config_;
  Addr verts_base_ = 0;
  Addr buckets_base_ = 0;
  Addr entries_base_ = 0;
  /// Memory placement slot per vertex.
  std::vector<std::uint32_t> placement_;
  /// Base address of each vertex's bucket array. The original program
  /// mallocs each table separately, so bases carry allocator jitter instead
  /// of sitting at a perfect power-of-two stride (which would alias a few
  /// cache sets pathologically and crush the measured Set Affinity).
  std::vector<Addr> hash_base_;
  /// chains_[u * buckets + b] -> entry ids (global) in walk order.
  std::vector<std::vector<std::uint32_t>> chains_;
  /// Neighbor key per entry id (chain walk compares against it).
  std::vector<std::uint32_t> entry_key_;
  /// Vertex insertion order (Prim growth order).
  std::vector<std::uint32_t> insert_order_;
  std::uint32_t total_iterations_ = 0;
  std::vector<std::uint32_t> scan_starts_;
};

}  // namespace spf
