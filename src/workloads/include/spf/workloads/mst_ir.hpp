// MST's BlueRule scan encoded in the mini IR — the hardest of the three
// shapes: a pointer-chased vertex list (spine) plus a per-vertex hash lookup
// whose chain walk has a *data-dependent* trip count (read from the bucket
// header). The IR has no conditionals, so the walk visits the whole chain
// (no early exit at the matching key); the paper's helper does the same —
// it cannot know the matching entry without executing the comparison.
//
// Memory layout (built to mirror MstWorkload's addresses):
//   vertex struct: next-vertex addr at +8 (the remaining-list spine);
//   bucket slot (8B) holds the address of a chain-descriptor pair
//     [count, first-entry addr, entries' addrs...] materialized per
//     (vertex, bucket) in a side region;
// For tractability the encoding covers the workload's *first* BlueRule scan
// (the hot function's shape, not all V-1 invocations).
#pragma once

#include "spf/ir/interp.hpp"
#include "spf/ir/ir.hpp"
#include "spf/ir/vm.hpp"
#include "spf/workloads/mst.hpp"

namespace spf {

struct MstIr {
  ir::Program program;
  ir::VirtualMemory memory;
};

/// Encodes the first scan (inserting vertex = insert order[0]) over the
/// remaining vertices in list order.
[[nodiscard]] MstIr build_mst_ir(const MstWorkload& model);

}  // namespace spf
