#include "spf/workloads/em3d_ir.hpp"

namespace spf {
namespace {

// Node field offsets (64-byte node struct).
constexpr std::uint64_t kValueOff = 0;
constexpr std::uint64_t kNextOff = 8;
constexpr std::uint64_t kCountOff = 16;
constexpr std::uint64_t kPtrsOff = 24;
constexpr std::uint64_t kCoeffsOff = 32;

}  // namespace

Em3dIr build_em3d_ir(const Em3dWorkload& model) {
  const Em3dConfig& config = model.config();
  Em3dIr out;

  // ---- data: nodes, pointer rows, coefficient rows -------------------
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    const Addr node = model.node_addr(i);
    const std::uint32_t next_index = (i + 1) % config.nodes;  // circular
    out.memory.write(node + kValueOff, 1000 + i);
    out.memory.write(node + kNextOff, model.node_addr(next_index));
    out.memory.write(node + kCountOff, config.arity);
    out.memory.write(node + kPtrsOff, model.ptr_row_addr(i));
    out.memory.write(node + kCoeffsOff, model.coeff_row_addr(i));
    const std::uint32_t* deps = model.targets_of(i);
    for (std::uint32_t j = 0; j < config.arity; ++j) {
      out.memory.write(model.ptr_row_addr(i) + static_cast<Addr>(j) * 8,
                       model.node_addr(deps[j]) + kValueOff);
      out.memory.write(model.coeff_row_addr(i) + static_cast<Addr>(j) * 8, 3);
    }
  }

  // ---- code -----------------------------------------------------------
  ir::ProgramBuilder b(config.nodes * config.passes);
  const auto cur = b.reg_read(0);  // node pointer (reg0)
  const auto c_next = b.constant(kNextOff);
  const auto c_count = b.constant(kCountOff);
  const auto c_ptrs = b.constant(kPtrsOff);
  const auto c_coeffs = b.constant(kCoeffsOff);

  // Node struct reads (one line; the spine-flagged next chase plus field
  // loads the helper's address slice needs).
  const auto next =
      b.load(b.add(cur, c_next), kEm3dNode, kFlagSpine);
  const auto count = b.load(b.add(cur, c_count), kEm3dNode, kFlagSpine);
  const auto ptrs = b.load(b.add(cur, c_ptrs), kEm3dNode, kFlagSpine);
  const auto coeffs = b.load(b.add(cur, c_coeffs), kEm3dNode, kFlagSpine);
  const auto value = b.load(cur, kEm3dNode, kFlagSpine);
  b.reg_write(0, next);
  b.reg_write(1, value);  // accumulator

  b.loop_begin(count);
  {
    const auto j = b.inner_index();
    const auto joff = b.shl(j, 3);
    // ptr = ptrs[j]; the address-generation load.
    const auto ptr = b.load(b.add(ptrs, joff), kEm3dFromPtrs);
    // coeff = coeffs[j]; value-only (the slicer drops it).
    const auto coeff = b.load(b.add(coeffs, joff), kEm3dCoeffs);
    // *ptr: the delinquent load.
    const auto dep = b.load(ptr, kEm3dFromValue, kFlagDelinquent,
                            static_cast<std::uint16_t>(
                                config.compute_cycles_per_dep));
    // acc -= coeff * dep (wrapping integer arithmetic stands in for the
    // original doubles; the dataflow shape is what matters).
    const auto acc = b.reg_read(1);
    b.reg_write(1, b.sub(acc, b.mul(coeff, dep)));
  }
  b.loop_end();

  b.store(cur, b.reg_read(1), kEm3dValueWrite);

  out.program = b.take();
  out.program.reg_init = {model.node_addr(0)};
  return out;
}

}  // namespace spf
