#include "spf/workloads/health.hpp"

#include "spf/common/assert.hpp"
#include "spf/common/rng.hpp"
#include "spf/workloads/vheap.hpp"

namespace spf {
namespace {

constexpr std::uint64_t kVillageBytes = 128;  // struct Village with 4 kids
constexpr std::uint64_t kPatientBytes = 64;
constexpr std::uint64_t kLineBytes = 64;

}  // namespace

HealthWorkload::HealthWorkload(const HealthConfig& config) : config_(config) {
  SPF_ASSERT(config.depth >= 1 && config.depth <= 8, "depth out of range");
  SPF_ASSERT(config.steps >= 1, "need at least one step");
  SPF_ASSERT(config.referral_percent <= 100, "referral is a percentage");

  const std::uint32_t n = config.villages();

  // Build the 4-ary tree implicitly: village 0 is the root; children of v
  // are 4v+1 .. 4v+4 (when < n). DFS preorder visit order.
  parent_.resize(n);
  parent_[0] = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t c = 4 * v + 1; c <= 4 * v + 4 && c < n; ++c) {
      parent_[c] = v;
    }
  }
  dfs_order_.reserve(n);
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    dfs_order_.push_back(v);
    for (std::uint32_t c = 4 * v + 4;; --c) {
      if (c >= 4 * v + 1 && c < n) stack.push_back(c);
      if (c == 4 * v + 1) break;
    }
  }
  SPF_ASSERT(dfs_order_.size() == n, "DFS must visit every village");

  VirtualHeap heap;
  villages_base_ =
      heap.allocate(static_cast<std::uint64_t>(n) * kVillageBytes, kLineBytes);
  // Patients are malloc'ed/freed continuously in the original program; model
  // the churned heap as a large scattered pool patients are drawn from.
  patient_slots_ = static_cast<std::uint64_t>(n) * config.mean_patients * 8;
  patients_base_ = heap.allocate(patient_slots_ * kPatientBytes, kLineBytes);
}

Addr HealthWorkload::village_addr(std::uint32_t v) const {
  SPF_DEBUG_ASSERT(v < config_.villages(), "village out of range");
  return villages_base_ + static_cast<Addr>(v) * kVillageBytes;
}

TraceBuffer HealthWorkload::emit_trace() const {
  const std::uint32_t n = config_.villages();
  TraceBuffer trace;
  trace.reserve(static_cast<std::size_t>(outer_iterations()) *
                (config_.mean_patients + 2));
  Xoshiro256 rng(config_.seed ^ 0x4ea17edULL);

  for (std::uint32_t step = 0; step < config_.steps; ++step) {
    for (std::uint32_t visit = 0; visit < n; ++visit) {
      const std::uint32_t v = dfs_order_[visit];
      const std::uint32_t iter = step * n + visit;

      // Spine: the DFS reads the village struct (child pointers + list head).
      trace.emit(village_addr(v), iter, AccessKind::kRead, kHealthVillage,
                 kFlagSpine);

      // Walk the village's patient list. List length hovers around the mean;
      // node placement is scattered across the churned patient heap.
      const std::uint32_t patients = config_.mean_patients / 2 +
                                     static_cast<std::uint32_t>(
                                         rng.below(config_.mean_patients + 1));
      for (std::uint32_t p = 0; p < patients; ++p) {
        const Addr patient =
            patients_base_ + rng.below(patient_slots_) * kPatientBytes;
        trace.emit(patient, iter, AccessKind::kRead, kHealthPatient,
                   kFlagDelinquent, config_.compute_cycles_per_patient);
        // Assessment updates the patient roughly half the time.
        if (rng.below(2) == 0) {
          trace.emit(patient, iter, AccessKind::kWrite, kHealthUpdate);
        }
        // Referral: splice the patient into the parent village's list.
        if (rng.below(100) < config_.referral_percent) {
          trace.emit(village_addr(parent_[v]), iter, AccessKind::kWrite,
                     kHealthReferral);
        }
      }
    }
  }
  return trace;
}

std::vector<std::uint32_t> HealthWorkload::invocation_starts() const {
  std::vector<std::uint32_t> starts;
  starts.reserve(config_.steps);
  for (std::uint32_t s = 0; s < config_.steps; ++s) {
    starts.push_back(s * config_.villages());
  }
  return starts;
}

}  // namespace spf
