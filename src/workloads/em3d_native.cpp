#include "spf/workloads/em3d_native.hpp"

#include <algorithm>

#include "spf/common/assert.hpp"

namespace spf {

Em3dGraph::Em3dGraph(const Em3dWorkload& model) {
  const Em3dConfig& config = model.config();
  const std::uint32_t n = config.nodes;
  const std::uint32_t arity = config.arity;

  nodes_.resize(n);
  from_ptrs_.resize(static_cast<std::size_t>(n) * arity);
  coeffs_.assign(static_cast<std::size_t>(n) * arity, 0.5);

  // placement: node at list position i lives at slot placement_[i]; we get
  // the slot implicitly through node_addr arithmetic by resolving addresses
  // back to slots via the model's node_addr of position i relative to
  // position 0's address with identity placement disabled. Simpler: rebuild
  // via list order and the model's accessors.
  std::vector<Em3dNode*> by_list(n);
  const Addr base = model.node_addr(0);
  Addr min_base = base;
  for (std::uint32_t i = 1; i < n; ++i) {
    min_base = std::min(min_base, model.node_addr(i));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto slot = static_cast<std::uint32_t>((model.node_addr(i) - min_base) / 64);
    SPF_ASSERT(slot < n, "placement slot out of range");
    by_list[i] = &nodes_[slot];
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    Em3dNode* node = by_list[i];
    node->from_count = arity;
    node->from_values = &from_ptrs_[static_cast<std::size_t>(i) * arity];
    node->coeffs = &coeffs_[static_cast<std::size_t>(i) * arity];
    node->next = i + 1 < n ? by_list[i + 1] : nullptr;
    const std::uint32_t* deps = model.targets_of(i);
    for (std::uint32_t j = 0; j < arity; ++j) {
      node->from_values[j] = &by_list[deps[j]]->value;
    }
  }
  head_ = by_list[0];
}

double Em3dGraph::compute_pass() {
  double sum = 0.0;
  for (Em3dNode* node = head_; node != nullptr; node = node->next) {
    double acc = node->value;
    for (std::uint32_t j = 0; j < node->from_count; ++j) {
      acc -= node->coeffs[j] * *node->from_values[j];  // delinquent load
    }
    // Keep values bounded so many passes stay finite.
    node->value = acc * 1e-3;
    sum += node->value;
  }
  return sum;
}

std::uint64_t Em3dGraph::helper_pass(std::uint32_t a_ski,
                                     std::uint32_t a_pre) const {
  SPF_ASSERT(a_pre > 0, "helper must pre-execute at least one iteration");
  std::uint64_t prefetches = 0;
  const Em3dNode* node = head_;
  while (node != nullptr) {
    // Skip phase: follow the spine only (paper Fig. 1(b), the A_SKI loop).
    for (std::uint32_t s = 0; s < a_ski && node != nullptr; ++s) {
      node = node->next;
    }
    // Pre-execute phase: touch the dependency lines of A_PRE iterations.
    for (std::uint32_t p = 0; p < a_pre && node != nullptr; ++p) {
      for (std::uint32_t j = 0; j < node->from_count; ++j) {
        __builtin_prefetch(node->from_values[j], 0 /*read*/, 1 /*low locality*/);
        ++prefetches;
      }
      node = node->next;
    }
  }
  return prefetches;
}

double Em3dGraph::checksum() const {
  double sum = 0.0;
  for (const Em3dNode& node : nodes_) sum += node.value;
  return sum;
}

}  // namespace spf
