#include "spf/workloads/synthetic.hpp"

#include <numeric>

#include "spf/common/assert.hpp"
#include "spf/common/rng.hpp"
#include "spf/workloads/vheap.hpp"

namespace spf {
namespace {

constexpr std::uint64_t kLineBytes = 64;
constexpr std::uint64_t kNodeBytes = 64;

}  // namespace

SyntheticWorkload::SyntheticWorkload(const SyntheticConfig& config)
    : config_(config) {
  SPF_ASSERT(config.iterations > 0, "need at least one iteration");
  SPF_ASSERT(config.random_footprint_lines > 0, "empty random footprint");

  Xoshiro256 rng(config.seed);
  spine_placement_.resize(config.iterations);
  std::iota(spine_placement_.begin(), spine_placement_.end(), 0u);
  for (std::uint32_t i = config.iterations - 1; i > 0; --i) {
    std::swap(spine_placement_[i],
              spine_placement_[static_cast<std::uint32_t>(rng.below(i + 1))]);
  }

  VirtualHeap heap;
  spine_base_ = heap.allocate(
      static_cast<std::uint64_t>(config.iterations) * kNodeBytes, kLineBytes);
  seq_base_ = heap.allocate(static_cast<std::uint64_t>(config.iterations) *
                                config.sequential_lines * kLineBytes + kLineBytes,
                            kLineBytes);
  stride_base_ = heap.allocate(
      static_cast<std::uint64_t>(config.iterations) * config.strided_reads *
              config.stride_bytes + kLineBytes,
      kLineBytes);
  random_base_ =
      heap.allocate(config.random_footprint_lines * kLineBytes, kLineBytes);
}

TraceBuffer SyntheticWorkload::emit_trace() const {
  TraceBuffer trace;
  trace.reserve(static_cast<std::size_t>(config_.iterations) *
                (1 + config_.sequential_lines + config_.strided_reads +
                 config_.random_reads));
  Xoshiro256 rng(config_.seed ^ 0xfeedf00dULL);

  for (std::uint32_t i = 0; i < config_.iterations; ++i) {
    trace.emit(spine_base_ + static_cast<Addr>(spine_placement_[i]) * kNodeBytes,
               i, AccessKind::kRead, kSynSpine, kFlagSpine);
    for (std::uint32_t s = 0; s < config_.sequential_lines; ++s) {
      trace.emit(seq_base_ + (static_cast<Addr>(i) * config_.sequential_lines + s) *
                                 kLineBytes,
                 i, AccessKind::kRead, kSynSequential);
    }
    for (std::uint32_t s = 0; s < config_.strided_reads; ++s) {
      trace.emit(stride_base_ + (static_cast<Addr>(i) * config_.strided_reads + s) *
                                    config_.stride_bytes,
                 i, AccessKind::kRead, kSynStrided);
    }
    for (std::uint32_t s = 0; s < config_.random_reads; ++s) {
      trace.emit(random_base_ + rng.below(config_.random_footprint_lines) *
                                    kLineBytes,
                 i, AccessKind::kRead, kSynRandom, kFlagDelinquent,
                 config_.compute_cycles);
    }
  }
  return trace;
}

}  // namespace spf
