#include "spf/workloads/mcf_ir.hpp"

namespace spf {
namespace {

// Arc struct field offsets (64-byte arc).
constexpr std::uint64_t kCostOff = 0;
constexpr std::uint64_t kTailOff = 8;
constexpr std::uint64_t kHeadOff = 16;
// Node struct: potential at offset 0.

}  // namespace

McfIr build_mcf_ir(const McfWorkload& model) {
  const McfConfig& config = model.config();
  McfIr out;

  // Arcs store the *addresses* of their endpoint nodes, as the original
  // stores pointers.
  for (std::uint32_t a = 0; a < config.arcs; ++a) {
    const Addr arc = model.arc_addr(a);
    out.memory.write(arc + kCostOff, 100 + a % 97);
    out.memory.write(arc + kTailOff, model.node_addr(model.tail_of(a)));
    out.memory.write(arc + kHeadOff, model.node_addr(model.head_of(a)));
  }
  for (std::uint32_t n = 0; n < config.nodes; ++n) {
    out.memory.write(model.node_addr(n), 5000 + n);
  }

  const std::uint32_t total = config.arcs * config.passes;
  ir::ProgramBuilder b(total);
  const auto iter = b.iter_index();
  const auto arcs_count = b.constant(config.arcs);
  const auto a = b.mod(iter, arcs_count);  // arc index within the pass
  const auto arc_base = b.constant(model.arc_addr(0));
  const auto arc = b.add(arc_base, b.shl(a, 6));

  const auto cost = b.load(arc, kMcfArc, 0,
                           static_cast<std::uint16_t>(
                               config.compute_cycles_per_arc));
  const auto tail_ptr =
      b.load(b.add(arc, b.constant(kTailOff)), kMcfArc);
  const auto head_ptr =
      b.load(b.add(arc, b.constant(kHeadOff)), kMcfArc);
  const auto tail_pot = b.load(tail_ptr, kMcfTailPotential, kFlagDelinquent);
  const auto head_pot = b.load(head_ptr, kMcfHeadPotential, kFlagDelinquent);
  // red_cost = cost - tail->potential + head->potential: value-only.
  const auto red_cost = b.add(b.sub(cost, tail_pot), head_pot);
  b.reg_write(1, red_cost);  // best-candidate accumulator (value-only)

  out.program = b.take();
  return out;
}

}  // namespace spf
