#include "spf/workloads/em3d.hpp"

#include <algorithm>
#include <numeric>

#include "spf/common/assert.hpp"
#include "spf/common/rng.hpp"
#include "spf/workloads/vheap.hpp"

namespace spf {
namespace {

/// Olden's em3d node: value, next, from_count, from_values, coeffs, padding.
constexpr std::uint64_t kNodeBytes = 64;
constexpr std::uint64_t kPtrBytes = 8;
constexpr std::uint64_t kCoeffBytes = 8;
constexpr std::uint64_t kLineBytes = 64;

}  // namespace

Em3dWorkload::Em3dWorkload(const Em3dConfig& config) : config_(config) {
  SPF_ASSERT(config.nodes >= 4, "em3d needs at least four nodes");
  SPF_ASSERT(config.nodes % 2 == 0, "em3d nodes split into two equal halves");
  SPF_ASSERT(config.arity > 0, "arity must be positive");
  SPF_ASSERT(config.passes > 0, "need at least one pass");

  Xoshiro256 rng(config.seed);
  const std::uint32_t n = config.nodes;
  const std::uint32_t half = n / 2;

  // Memory placement: identity or a deterministic shuffle of node slots.
  placement_.resize(n);
  std::iota(placement_.begin(), placement_.end(), 0u);
  if (config.shuffle_placement) {
    for (std::uint32_t i = n - 1; i > 0; --i) {
      std::swap(placement_[i],
                placement_[static_cast<std::uint32_t>(rng.below(i + 1))]);
    }
  }

  // Bipartite dependencies: list positions [0, half) are E nodes depending on
  // H nodes [half, n), and vice versa.
  targets_.resize(static_cast<std::size_t>(n) * config.arity);
  for (std::uint32_t i = 0; i < n; ++i) {
    const bool is_e = i < half;
    for (std::uint32_t j = 0; j < config.arity; ++j) {
      const auto pick = static_cast<std::uint32_t>(rng.below(half));
      targets_[static_cast<std::size_t>(i) * config.arity + j] =
          is_e ? half + pick : pick;
    }
  }

  VirtualHeap heap;
  nodes_base_ = heap.allocate(static_cast<std::uint64_t>(n) * kNodeBytes, kLineBytes);
  from_ptrs_base_ = heap.allocate(
      static_cast<std::uint64_t>(n) * config.arity * kPtrBytes, kLineBytes);
  coeffs_base_ = heap.allocate(
      static_cast<std::uint64_t>(n) * config.arity * kCoeffBytes, kLineBytes);
}

Addr Em3dWorkload::node_addr(std::uint32_t list_index) const {
  SPF_DEBUG_ASSERT(list_index < config_.nodes, "node index out of range");
  return nodes_base_ + static_cast<Addr>(placement_[list_index]) * kNodeBytes;
}

const std::uint32_t* Em3dWorkload::targets_of(std::uint32_t list_index) const {
  SPF_DEBUG_ASSERT(list_index < config_.nodes, "node index out of range");
  return &targets_[static_cast<std::size_t>(list_index) * config_.arity];
}

Addr Em3dWorkload::ptr_row_addr(std::uint32_t list_index) const {
  SPF_DEBUG_ASSERT(list_index < config_.nodes, "node index out of range");
  return from_ptrs_base_ +
         static_cast<Addr>(list_index) * config_.arity * kPtrBytes;
}

Addr Em3dWorkload::coeff_row_addr(std::uint32_t list_index) const {
  SPF_DEBUG_ASSERT(list_index < config_.nodes, "node index out of range");
  return coeffs_base_ +
         static_cast<Addr>(list_index) * config_.arity * kCoeffBytes;
}

TraceBuffer Em3dWorkload::emit_trace() const {
  TraceBuffer trace;
  const std::uint32_t n = config_.nodes;
  const std::uint32_t arity = config_.arity;
  const std::uint64_t ptr_row = static_cast<std::uint64_t>(arity) * kPtrBytes;
  const std::uint64_t coeff_row = static_cast<std::uint64_t>(arity) * kCoeffBytes;
  // Records per iteration: spine + per-line array touches + arity dereferences
  // + the value store. An upper bound also for prelude passes, which walk
  // fewer dependencies per node.
  const std::uint64_t per_iter = 2 + (ptr_row + kLineBytes - 1) / kLineBytes +
                                 (coeff_row + kLineBytes - 1) / kLineBytes + arity;
  trace.reserve(static_cast<std::size_t>(per_iter) * n * config_.passes);

  for (std::uint32_t pass = 0; pass < config_.passes; ++pass) {
    // Late-tight-phase fixture: non-final passes walk a dependency prefix.
    const bool prelude =
        config_.prelude_arity != 0 && pass + 1 < config_.passes;
    const std::uint32_t pass_arity =
        prelude ? std::min(config_.prelude_arity, arity) : arity;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t t = pass * n + i;
      // Spine: follow nodelist to this node and read from_count/from_values.
      trace.emit(node_addr(i), t, AccessKind::kRead, kEm3dNode, kFlagSpine);

      const Addr ptr_base = from_ptrs_base_ + static_cast<Addr>(i) * ptr_row;
      const Addr coeff_base = coeffs_base_ + static_cast<Addr>(i) * coeff_row;
      const std::uint32_t* deps = targets_of(i);
      for (std::uint32_t j = 0; j < pass_arity; ++j) {
        // The pointer and coefficient arrays are read sequentially; one trace
        // record per touched line models their perfect spatial locality.
        const Addr ptr_addr = ptr_base + static_cast<Addr>(j) * kPtrBytes;
        if (j == 0 || (ptr_addr % kLineBytes) < kPtrBytes) {
          trace.emit(ptr_addr, t, AccessKind::kRead, kEm3dFromPtrs);
        }
        const Addr coeff_addr = coeff_base + static_cast<Addr>(j) * kCoeffBytes;
        if (j == 0 || (coeff_addr % kLineBytes) < kCoeffBytes) {
          trace.emit(coeff_addr, t, AccessKind::kRead, kEm3dCoeffs);
        }
        // The delinquent load: *from_values[j], an irregular reference into
        // the other half's node array.
        trace.emit(node_addr(deps[j]), t, AccessKind::kRead, kEm3dFromValue,
                   kFlagDelinquent, config_.compute_cycles_per_dep);
      }
      trace.emit(node_addr(i), t, AccessKind::kWrite, kEm3dValueWrite);
    }
  }
  return trace;
}

std::vector<std::uint32_t> Em3dWorkload::invocation_starts() const {
  std::vector<std::uint32_t> starts;
  starts.reserve(config_.passes);
  for (std::uint32_t p = 0; p < config_.passes; ++p) {
    starts.push_back(p * config_.nodes);
  }
  return starts;
}

}  // namespace spf
