#include "spf/workloads/mcf.hpp"

#include "spf/common/assert.hpp"
#include "spf/common/rng.hpp"
#include "spf/workloads/vheap.hpp"

namespace spf {
namespace {

/// 429.mcf's arc struct is 72 B; rounded to one line like the compiler pads
/// it in practice.
constexpr std::uint64_t kArcBytes = 64;
/// node struct (potential, orientation, tree pointers, ...).
constexpr std::uint64_t kNodeBytes = 64;
constexpr std::uint64_t kCandidateBytes = 16;
constexpr std::uint64_t kLineBytes = 64;

}  // namespace

McfWorkload::McfWorkload(const McfConfig& config) : config_(config) {
  SPF_ASSERT(config.nodes >= 2, "mcf needs at least two nodes");
  SPF_ASSERT(config.arcs > 0, "mcf needs arcs");
  SPF_ASSERT(config.passes > 0, "need at least one pass");
  SPF_ASSERT(config.update_interval > 0, "update interval must be positive");

  Xoshiro256 rng(config.seed);
  tail_.resize(config.arcs);
  head_.resize(config.arcs);
  for (std::uint32_t a = 0; a < config.arcs; ++a) {
    // A network-flow instance: arcs connect random distinct nodes. A slight
    // skew toward low-numbered nodes models mcf's hub structure (depot/
    // timetable nodes appear in many arcs).
    const auto t = static_cast<std::uint32_t>(rng.below(config.nodes));
    auto h = static_cast<std::uint32_t>(
        rng.below(config.nodes / 4 + 1) < config.nodes / 8
            ? rng.below(config.nodes / 16 + 1)
            : rng.below(config.nodes));
    if (h == t) h = (h + 1) % config.nodes;
    tail_[a] = t;
    head_[a] = h;
  }

  VirtualHeap heap;
  nodes_base_ = heap.allocate(
      static_cast<std::uint64_t>(config.nodes) * kNodeBytes, kLineBytes);
  arcs_base_ = heap.allocate(
      static_cast<std::uint64_t>(config.arcs) * kArcBytes, kLineBytes);
  candidates_base_ = heap.allocate(
      static_cast<std::uint64_t>(config.arcs / config.update_interval + 1) *
          kCandidateBytes,
      kLineBytes);
}

Addr McfWorkload::arc_addr(std::uint32_t arc) const {
  SPF_DEBUG_ASSERT(arc < config_.arcs, "arc index out of range");
  return arcs_base_ + static_cast<Addr>(arc) * kArcBytes;
}

Addr McfWorkload::node_addr(std::uint32_t node) const {
  SPF_DEBUG_ASSERT(node < config_.nodes, "node index out of range");
  return nodes_base_ + static_cast<Addr>(node) * kNodeBytes;
}

TraceBuffer McfWorkload::emit_trace() const {
  TraceBuffer trace;
  trace.reserve(static_cast<std::size_t>(config_.arcs) * config_.passes * 4);
  Xoshiro256 pivot_rng(config_.seed ^ 0x9157);

  for (std::uint32_t pass = 0; pass < config_.passes; ++pass) {
    std::uint32_t candidates = 0;
    for (std::uint32_t a = 0; a < config_.arcs; ++a) {
      const std::uint32_t t = pass * config_.arcs + a;
      // Sequential arc scan. Not a spine: the helper can advance the arc
      // index without touching memory, so skipped iterations cost nothing.
      trace.emit(arc_addr(a), t, AccessKind::kRead, kMcfArc, 0,
                 config_.compute_cycles_per_arc);
      // The delinquent potential reads.
      trace.emit(node_addr(tail_[a]), t, AccessKind::kRead, kMcfTailPotential,
                 kFlagDelinquent);
      trace.emit(node_addr(head_[a]), t, AccessKind::kRead, kMcfHeadPotential,
                 kFlagDelinquent);
      if (a % config_.update_interval == config_.update_interval - 1) {
        trace.emit(candidates_base_ + static_cast<Addr>(candidates) * kCandidateBytes,
                   t, AccessKind::kWrite, kMcfCandidate);
        ++candidates;
      }
    }
    // Basis exchange between pricing passes: rewrite a batch of potentials.
    const std::uint32_t last_iter = pass * config_.arcs + config_.arcs - 1;
    for (std::uint32_t p = 0; p < config_.pivots_per_pass; ++p) {
      const auto node = static_cast<std::uint32_t>(pivot_rng.below(config_.nodes));
      trace.emit(node_addr(node), last_iter, AccessKind::kWrite, kMcfPivot);
    }
  }
  return trace;
}

std::vector<std::uint32_t> McfWorkload::invocation_starts() const {
  std::vector<std::uint32_t> starts;
  starts.reserve(config_.passes);
  for (std::uint32_t p = 0; p < config_.passes; ++p) {
    starts.push_back(p * config_.arcs);
  }
  return starts;
}

}  // namespace spf
