#include "spf/workloads/vheap.hpp"

#include <bit>

#include "spf/common/assert.hpp"

namespace spf {

Addr VirtualHeap::allocate(std::uint64_t bytes, std::uint64_t align) {
  SPF_ASSERT(std::has_single_bit(align), "alignment must be a power of two");
  SPF_ASSERT(bytes > 0, "zero-byte allocation");
  cursor_ = (cursor_ + align - 1) & ~(align - 1);
  const Addr start = cursor_;
  cursor_ += bytes;
  return start;
}

}  // namespace spf
