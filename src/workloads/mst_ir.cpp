#include "spf/workloads/mst_ir.hpp"

#include "spf/common/assert.hpp"

namespace spf {
namespace {

// Vertex struct fields.
constexpr std::uint64_t kMindistOff = 0;
constexpr std::uint64_t kNextOff = 8;
constexpr std::uint64_t kHashOff = 16;
// Entry struct: key at +0, next at +8.
constexpr std::uint64_t kEntryNextOff = 8;
// Chain length packed into the bucket slot's low bits (entries are 32-byte
// aligned, leaving 5 bits; chains beyond 31 entries are unrealistic for the
// configured load factors and asserted against).
constexpr std::uint64_t kLenMask = 31;

}  // namespace

MstIr build_mst_ir(const MstWorkload& model) {
  const MstConfig& config = model.config();
  MstIr out;

  const std::uint32_t v_new = model.first_scan_new_vertex();
  const std::uint32_t bucket = model.bucket_of_key(v_new);
  const std::vector<std::uint32_t> order = model.first_scan_order();
  SPF_ASSERT(!order.empty(), "scan needs at least one remaining vertex");

  // ---- data -----------------------------------------------------------
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::uint32_t u = order[k];
    const Addr v = model.vertex_addr(u);
    out.memory.write(v + kMindistOff, 1 << 20);
    out.memory.write(
        v + kNextOff,
        k + 1 < order.size() ? model.vertex_addr(order[k + 1]) : 0);
    out.memory.write(v + kHashOff, model.hash_table_addr(u));

    // Bucket slot for the scanned key: first-entry address with the chain
    // length packed into the low bits; entries chained through +8.
    const std::vector<Addr> chain = model.chain_entry_addrs(u, bucket);
    SPF_ASSERT(chain.size() <= kLenMask, "chain too long for packed length");
    const Addr slot_addr =
        model.hash_table_addr(u) + static_cast<Addr>(bucket) * 8;
    if (chain.empty()) {
      out.memory.write(slot_addr, 0);
    } else {
      SPF_ASSERT((chain.front() & kLenMask) == 0, "entry alignment too small");
      out.memory.write(slot_addr, chain.front() | chain.size());
      for (std::size_t e = 0; e < chain.size(); ++e) {
        out.memory.write(chain[e] + kEntryNextOff,
                         e + 1 < chain.size() ? chain[e + 1] : 0);
        out.memory.write(chain[e], 7 + e);  // key payload
      }
    }
  }

  // ---- code: one scan over the remaining list --------------------------
  ir::ProgramBuilder b(static_cast<std::uint32_t>(order.size()));
  const auto v = b.reg_read(0);
  const auto next =
      b.load(b.add(v, b.constant(kNextOff)), kMstVertex, kFlagSpine);
  const auto hash =
      b.load(b.add(v, b.constant(kHashOff)), kMstVertex, kFlagSpine);
  const auto slot_addr = b.add(hash, b.constant(static_cast<Addr>(bucket) * 8));
  const auto slot = b.load(slot_addr, kMstBucket, kFlagDelinquent,
                           static_cast<std::uint16_t>(
                               config.compute_cycles_per_lookup));
  const auto len = b.band(slot, b.constant(kLenMask));
  const auto first = b.sub(slot, len);
  b.reg_write(2, first);

  b.loop_begin(len);
  {
    const auto e = b.reg_read(2);
    const auto nxt = b.load(b.add(e, b.constant(kEntryNextOff)), kMstHashEntry,
                            kFlagDelinquent);
    b.reg_write(2, nxt);
  }
  b.loop_end();

  // mindist update (the original writes on improving matches; the IR has no
  // branches, so it updates unconditionally — a superset of the writes).
  b.store(v, len, kMstMindistWrite);
  b.reg_write(0, next);

  out.program = b.take();
  out.program.reg_init = {model.vertex_addr(order.front())};
  return out;
}

}  // namespace spf
