#include "spf/workloads/mst.hpp"

#include <algorithm>
#include <numeric>

#include "spf/common/assert.hpp"
#include "spf/common/rng.hpp"
#include "spf/workloads/vheap.hpp"

namespace spf {
namespace {

constexpr std::uint64_t kVertexBytes = 64;
constexpr std::uint64_t kBucketBytes = 8;   // one pointer slot
constexpr std::uint64_t kEntryBytes = 32;   // key, weight, next
constexpr std::uint64_t kLineBytes = 64;

}  // namespace

MstWorkload::MstWorkload(const MstConfig& config) : config_(config) {
  SPF_ASSERT(config.vertices >= 2, "mst needs at least two vertices");
  SPF_ASSERT(config.degree > 0, "degree must be positive");
  SPF_ASSERT((config.buckets & (config.buckets - 1)) == 0,
             "buckets must be a power of two");

  Xoshiro256 rng(config.seed);
  const std::uint32_t n = config.vertices;

  placement_.resize(n);
  std::iota(placement_.begin(), placement_.end(), 0u);
  for (std::uint32_t i = n - 1; i > 0; --i) {
    std::swap(placement_[i], placement_[static_cast<std::uint32_t>(rng.below(i + 1))]);
  }


  // Build each vertex's hash table: `degree` neighbor keys chained into the
  // bucket their key hashes to. Entry ids are global and allocated in build
  // order (vertex-major), matching Olden's allocation pattern.
  chains_.assign(static_cast<std::size_t>(n) * config.buckets, {});
  entry_key_.reserve(static_cast<std::size_t>(n) * config.degree);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t e = 0; e < config.degree; ++e) {
      auto w = static_cast<std::uint32_t>(rng.below(n));
      if (w == u) w = (w + 1) % n;
      const auto id = static_cast<std::uint32_t>(entry_key_.size());
      entry_key_.push_back(w);
      chains_[static_cast<std::size_t>(u) * config.buckets + bucket_of(w)]
          .push_back(id);
    }
  }

  // Prim growth order: a deterministic pseudo-random permutation stands in
  // for the weight-determined order (weights do not change the access shape
  // of the scan, only which vertex wins it).
  insert_order_.resize(n);
  std::iota(insert_order_.begin(), insert_order_.end(), 0u);
  for (std::uint32_t i = n - 1; i > 0; --i) {
    std::swap(insert_order_[i],
              insert_order_[static_cast<std::uint32_t>(rng.below(i + 1))]);
  }

  VirtualHeap heap;
  verts_base_ = heap.allocate(static_cast<std::uint64_t>(n) * kVertexBytes,
                              kLineBytes);
  // One allocation per hash table, with allocator-style jitter between them,
  // the way per-vertex mallocs land in a real heap.
  hash_base_.reserve(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    hash_base_.push_back(heap.allocate(
        static_cast<std::uint64_t>(config.buckets) * kBucketBytes +
            rng.below(7) * kLineBytes,
        kLineBytes));
  }
  buckets_base_ = hash_base_.front();
  entries_base_ = heap.allocate(
      static_cast<std::uint64_t>(entry_key_.size()) * kEntryBytes, kLineBytes);

  // Pre-compute the iteration budget so outer_iterations() is cheap.
  const std::uint32_t steps =
      config.max_steps == 0 ? n - 1 : std::min(config.max_steps, n - 1);
  std::uint64_t total = 0;
  scan_starts_.reserve(steps);
  for (std::uint32_t k = 1; k <= steps; ++k) {
    scan_starts_.push_back(static_cast<std::uint32_t>(total));
    total += n - k;  // remaining vertices scanned this step
  }
  SPF_ASSERT(total < (1ull << 32), "iteration count overflows outer_iter");
  total_iterations_ = static_cast<std::uint32_t>(total);
}

std::uint32_t MstWorkload::bucket_of(std::uint32_t key) const {
  return static_cast<std::uint32_t>(SplitMix64(key).next() &
                                    (config_.buckets - 1));
}

Addr MstWorkload::vertex_addr(std::uint32_t v) const {
  SPF_DEBUG_ASSERT(v < config_.vertices, "vertex index out of range");
  return verts_base_ + static_cast<Addr>(placement_[v]) * kVertexBytes;
}

const std::vector<std::uint32_t>& MstWorkload::chain(std::uint32_t u,
                                                     std::uint32_t b) const {
  return chains_[static_cast<std::size_t>(u) * config_.buckets + b];
}

Addr MstWorkload::hash_table_addr(std::uint32_t v) const {
  SPF_DEBUG_ASSERT(v < config_.vertices, "vertex index out of range");
  return hash_base_[v];
}

std::vector<Addr> MstWorkload::chain_entry_addrs(std::uint32_t u,
                                                 std::uint32_t b) const {
  std::vector<Addr> addrs;
  for (std::uint32_t id : chain(u, b)) {
    addrs.push_back(entries_base_ + static_cast<Addr>(id) * kEntryBytes);
  }
  return addrs;
}

TraceBuffer MstWorkload::emit_trace() const {
  TraceBuffer trace;
  const std::uint32_t n = config_.vertices;
  trace.reserve(static_cast<std::size_t>(total_iterations_) * 3);

  std::vector<std::uint32_t> remaining(insert_order_.begin() + 1,
                                       insert_order_.end());
  std::uint32_t iter = 0;
  const std::uint32_t steps = static_cast<std::uint32_t>(scan_starts_.size());

  for (std::uint32_t k = 0; k < steps; ++k) {
    const std::uint32_t v_new = insert_order_[k];
    const std::uint32_t b = bucket_of(v_new);

    for (std::uint32_t u : remaining) {
      // Spine: the remaining-vertex list walk reads the vertex struct
      // (->next and ->mindist live there).
      trace.emit(vertex_addr(u), iter, AccessKind::kRead, kMstVertex,
                 kFlagSpine);
      // Bucket slot of v_new in u's hash table.
      const Addr bucket_addr =
          hash_base_[u] + static_cast<Addr>(b) * kBucketBytes;
      trace.emit(bucket_addr, iter, AccessKind::kRead, kMstBucket,
                 kFlagDelinquent, config_.compute_cycles_per_lookup);
      // Chain walk until the key matches or the chain ends.
      bool found = false;
      for (std::uint32_t id : chain(u, b)) {
        trace.emit(entries_base_ + static_cast<Addr>(id) * kEntryBytes, iter,
                   AccessKind::kRead, kMstHashEntry, kFlagDelinquent);
        if (entry_key_[id] == v_new) {
          found = true;
          break;
        }
      }
      if (found) {
        // dist < mindist roughly half the time; deterministic surrogate.
        if ((SplitMix64((static_cast<std::uint64_t>(u) << 32) | v_new).next() &
             1) != 0) {
          trace.emit(vertex_addr(u), iter, AccessKind::kWrite,
                     kMstMindistWrite);
        }
      }
      ++iter;
    }
    // Remove the vertex that joins the tree next (insert_order_[k + 1]).
    if (k + 1 < n) {
      const std::uint32_t joining = insert_order_[k + 1];
      auto it = std::find(remaining.begin(), remaining.end(), joining);
      SPF_ASSERT(it != remaining.end(), "joining vertex missing from remaining");
      remaining.erase(it);
    }
  }
  SPF_ASSERT(iter == total_iterations_, "iteration accounting mismatch");
  return trace;
}

}  // namespace spf
