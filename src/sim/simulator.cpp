#include "spf/sim/simulator.hpp"

#include <algorithm>
#include <limits>

#include "spf/common/assert.hpp"
#include "spf/telemetry/telemetry.hpp"

namespace spf {
namespace {

/// Surfaces a finished run's L2 classification and pollution cases as
/// telemetry counters. Bulk adds after the run — the per-access hot path
/// never sees telemetry (the per-core metrics it sums already exist).
void surface_run_telemetry(const SimResult& result) {
  if (!telemetry::enabled()) return;
  using telemetry::Counter;
  std::uint64_t lookups = 0, totally_hits = 0, partially_hits = 0,
                totally_misses = 0;
  for (const ThreadMetrics& m : result.per_core) {
    lookups += m.l2_lookups;
    totally_hits += m.totally_hits;
    partially_hits += m.partially_hits;
    totally_misses += m.totally_misses;
  }
  telemetry::count(Counter::kL2Lookups, lookups);
  telemetry::count(Counter::kL2TotallyHits, totally_hits);
  telemetry::count(Counter::kL2PartiallyHits, partially_hits);
  telemetry::count(Counter::kL2TotallyMisses, totally_misses);
  telemetry::count(Counter::kPollutionCase1,
                   result.pollution.case1_reuse_displaced);
  telemetry::count(Counter::kPollutionCase2,
                   result.pollution.case2_helper_displaced);
  telemetry::count(Counter::kPollutionCase3,
                   result.pollution.case3_hw_displaced);
  if (result.provenance.enabled) {
    const ProvenanceSummary& p = result.provenance;
    telemetry::count(Counter::kPrefetchFillsTracked, p.tracked_fills);
    telemetry::count(Counter::kPrefetchFateUsedTimely, p.used_timely);
    telemetry::count(Counter::kPrefetchFateUsedLate, p.used_late);
    telemetry::count(Counter::kPrefetchFateEvictedUnused, p.evicted_unused);
    telemetry::count(Counter::kPrefetchFatePolluting, p.polluting);
    telemetry::count(Counter::kPrefetchFateResidentUnused, p.resident_unused);
  }
}

}  // namespace

CmpSimulator::CmpSimulator(const SimConfig& config, Arena* arena)
    : config_(config), arena_(arena) {}

void CmpSimulator::reset(const std::vector<CoreStream>& streams) {
  SPF_ASSERT(!streams.empty(), "simulator needs at least one stream");
  if (l2_) {
    l2_->reset_to(config_.l2, config_.replacement, config_.seed);
  } else {
    l2_.emplace(config_.l2, config_.replacement, config_.seed, arena_);
  }
  if (mshr_) {
    mshr_->reset(config_.l2_mshrs);
  } else {
    mshr_.emplace(config_.l2_mshrs);
  }
  if (memory_) {
    memory_->reset(config_.memory);
  } else {
    memory_.emplace(config_.memory);
  }
  if (pollution_) {
    pollution_->reset(config_.shadow_capacity, config_.l2);
  } else {
    pollution_.emplace(config_.shadow_capacity, config_.l2);
  }
  if (config_.provenance) {
    // Live records are slot-indexed: one per resident L2 line, exact. The
    // victim shadow rides the pollution tracker's table as an aux sidecar,
    // so provenance itself keeps no hash table at all.
    const std::size_t l2_lines = config_.l2.num_sets() * config_.l2.ways();
    if (provenance_) {
      provenance_->reset(l2_lines);
    } else {
      provenance_.emplace(l2_lines);
    }
    pollution_->enable_shadow_aux();
  } else {
    provenance_.reset();
  }
  hw_prefetches_issued_ = 0;
  occupancy_ = OccupancySeries{};
  next_occupancy_sample_ = config_.occupancy_sample_interval;

  // Grow-only: entries beyond the current stream set keep their (idle) L1
  // storage so a later wider run can reuse it.
  active_ = streams.size();
  if (cores_.size() < active_) cores_.resize(active_);

  bind_streams(streams, /*warm=*/false);
}

void CmpSimulator::bind_streams(const std::vector<CoreStream>& streams,
                                bool warm) {
  // Pick the feed for this run: the streaming engine is forced whenever any
  // stream has no materialized trace to index.
  bool any_source_only = false;
  for (const CoreStream& s : streams) {
    if (s.trace == nullptr) any_source_only = true;
  }
  streaming_run_ = config_.streaming_cores || any_source_only;

  for (std::size_t i = 0; i < active_; ++i) {
    CoreState& core = cores_[i];
    SPF_ASSERT(streams[i].trace != nullptr || streams[i].source != nullptr,
               "core stream needs a trace or a record source");
    core.trace = streams[i].trace;
    core.source = streams[i].source;
    core.cursor = 0;
    if (streaming_run_) {
      if (core.source != nullptr) {
        core.source->reset();
      } else {
        // Trace-backed stream under the streaming engine: the whole buffer
        // is one window, so the feed is the buffer read it replaces.
        core.buffer_source.rebind(core.trace->records());
        core.source = &core.buffer_source;
      }
      core.window = core.source->next_window();
      core.win_pos = 0;
    } else {
      SPF_ASSERT(core.trace != nullptr,
                 "buffer engine cannot feed a source-only stream");
      core.window = {};
      core.win_pos = 0;
    }
    if (!warm) {
      core.clock = 0;
      core.metrics = ThreadMetrics{};
      if (core.l1) {
        core.l1->reset_to(config_.l1, ReplacementKind::kLru, config_.seed + i);
      } else {
        core.l1.emplace(config_.l1, ReplacementKind::kLru, config_.seed + i,
                        arena_);
      }
      core.prefetcher.emplace(config_.l2.line_bytes());
    }
    core.outer_iter = 0;
    core.started = false;
    core.origin = streams[i].origin;
    core.sync = streams[i].sync;
    core.was_gated = false;
    if (core.sync) {
      SPF_ASSERT(core.sync->leader < streams.size() && core.sync->leader != i,
                 "round sync leader must be another configured core");
      SPF_ASSERT(core.sync->round_iters > 0, "round length must be positive");
    }
    core.next_time = core.clock;
    core.gate_next_round = 0;
    core.gate_next_outer_seen = ~std::uint32_t{0};
    core.gate_leader_round = 0;
    core.gate_leader_outer_seen = 0;
    core.gate_leader_started_seen = false;
    if (streaming_run_) {
      refresh_gate_round<true>(core);
      if (!feed_done<true>(core)) {
        core.next_time = core.clock + feed_pending<true>(core).compute_gap;
      }
    } else {
      refresh_gate_round<false>(core);
      if (!feed_done<false>(core)) {
        core.next_time = core.clock + feed_pending<false>(core).compute_gap;
      }
    }
  }
}

template <bool Streaming>
void CmpSimulator::refresh_gate_round(CoreState& core) const {
  if (core.sync && !feed_done<Streaming>(core)) {
    // Consecutive records usually share an outer iteration; divide only when
    // it actually changed.
    const std::uint32_t outer = feed_pending<Streaming>(core).outer_iter;
    if (outer != core.gate_next_outer_seen) {
      core.gate_next_outer_seen = outer;
      core.gate_next_round = outer / core.sync->round_iters;
    }
  }
}

template <bool Streaming>
bool CmpSimulator::gated(CoreState& core) const {
  if (!core.sync || feed_done<Streaming>(core)) return false;
  const CoreState& leader = cores_[core.sync->leader];
  if (feed_done<Streaming>(leader)) return false;  // leader done: open
  // gate_next_round is maintained on every cursor move; the leader-round
  // division reruns only when the leader's progress changed since last asked.
  const std::uint32_t next_round = core.gate_next_round;
  if (leader.outer_iter != core.gate_leader_outer_seen ||
      leader.started != core.gate_leader_started_seen) {
    core.gate_leader_outer_seen = leader.outer_iter;
    core.gate_leader_started_seen = leader.started;
    core.gate_leader_round =
        leader.started ? leader.outer_iter / core.sync->round_iters : 0;
  }
  if (!leader.started && next_round == 0) return false;
  return core.gate_leader_round < next_round;
}

SimResult CmpSimulator::run(const std::vector<CoreStream>& streams) {
  reset(streams);
  SimResult result = run_bound();
  surface_run_telemetry(result);
  return result;
}

SimResult CmpSimulator::run_warm(const std::vector<CoreStream>& streams) {
  SPF_ASSERT(l2_.has_value(), "run_warm continues a prior run(); none ran");
  SPF_ASSERT(streams.size() == active_,
             "run_warm must bind the same number of streams as the cold run");
  bind_streams(streams, /*warm=*/true);
  // Cumulative metrics: the cold run() already surfaced telemetry for the
  // base totals, so warm continuations stay silent (see header contract).
  return run_bound();
}

SimResult CmpSimulator::run_bound() {
  // The batched engine tracks gated-core leaders in a 64-bit mask; wider
  // topologies (none exist today) take the reference engine.
  if (config_.batched_replay && active_ <= 64) {
    streaming_run_ ? run_loop_batched<true>() : run_loop_batched<false>();
  } else {
    streaming_run_ ? run_loop_scalar<true>() : run_loop_scalar<false>();
  }

  // Install every still-outstanding fill so final cache state and pollution
  // accounting reflect all issued traffic.
  drain_l2(std::numeric_limits<Cycle>::max());

  SimResult result;
  result.per_core.reserve(active_);
  for (std::size_t i = 0; i < active_; ++i) {
    CoreState& core = cores_[i];
    core.metrics.finish_time = core.clock;
    result.per_core.push_back(core.metrics);
    result.makespan = std::max(result.makespan, core.clock);
  }
  result.pollution = pollution_->stats();
  result.l2 = l2_->stats();
  result.mshr = mshr_->stats();
  result.memory = memory_->stats();
  result.hw_prefetches_issued = hw_prefetches_issued_;
  // Copy, not move: a warm continuation must keep appending to the series.
  result.occupancy = occupancy_;
  result.polluted_set_count = pollution_->polluted_set_count();
  result.top_polluted_sets = pollution_->top_polluted_sets(16);
  if (provenance_) {
    // Snapshot, not drain: a warm continuation keeps accumulating, so the
    // still-live fills are classified provisionally each time.
    result.provenance = provenance_->snapshot(pollution_->per_set());
  }
  return result;
}

SimResult CmpSimulator::run(const SimConfig& config,
                            const std::vector<CoreStream>& streams) {
  config_ = config;
  return run(streams);
}

template <bool Streaming>
void CmpSimulator::run_loop_scalar() {
  for (;;) {
    CoreId pick = std::numeric_limits<CoreId>::max();
    Cycle best = std::numeric_limits<Cycle>::max();
    bool any_remaining = false;
    for (CoreId i = 0; i < active_; ++i) {
      CoreState& core = cores_[i];
      if (feed_done<Streaming>(core)) continue;
      any_remaining = true;
      if (gated<Streaming>(core)) {
        core.was_gated = true;
        continue;
      }
      if (core.was_gated) {
        // The helper was spinning at the round barrier; it resumes at the
        // moment the leader crossed into the round.
        core.clock = std::max(core.clock, cores_[core.sync->leader].clock);
        core.was_gated = false;
        core.next_time = core.clock + feed_pending<Streaming>(core).compute_gap;
      }
      // Order cores by when their next access actually happens (current
      // clock plus the pending record's compute gap, cached as next_time),
      // so shared-structure mutations occur in global time order.
      if (core.next_time < best) {
        best = core.next_time;
        pick = i;
      }
    }
    if (!any_remaining) break;
    SPF_ASSERT(pick != std::numeric_limits<CoreId>::max(),
               "all remaining cores gated: sync cycle");
    step<Streaming>(pick);
  }
}

template <bool Streaming>
void CmpSimulator::run_loop_batched() {
  for (;;) {
    CoreId pick = std::numeric_limits<CoreId>::max();
    Cycle best = std::numeric_limits<Cycle>::max();
    bool any_remaining = false;
    std::uint64_t gated_leaders = 0;  // leaders some gated core waits on
    for (CoreId i = 0; i < active_; ++i) {
      CoreState& core = cores_[i];
      if (feed_done<Streaming>(core)) continue;
      any_remaining = true;
      if (gated<Streaming>(core)) {
        core.was_gated = true;
        gated_leaders |= std::uint64_t{1} << core.sync->leader;
        continue;
      }
      if (core.was_gated) {
        core.clock = std::max(core.clock, cores_[core.sync->leader].clock);
        core.was_gated = false;
        core.next_time = core.clock + feed_pending<Streaming>(core).compute_gap;
      }
      if (core.next_time < best) {
        best = core.next_time;
        pick = i;
      }
    }
    if (!any_remaining) break;
    SPF_ASSERT(pick != std::numeric_limits<CoreId>::max(),
               "all remaining cores gated: sync cycle");

    // Freeze the rivals' next-access times: the picked core keeps winning the
    // round exactly while its own next_time stays strictly below every
    // lower-id rival (they are visited first, ties go to them) and at or
    // below every higher-id rival. Gated cores don't compete — and cannot
    // silently enter the race mid-batch, because the batch breaks at every
    // progress point of a leader a gated core waits on.
    Cycle limit_lo = std::numeric_limits<Cycle>::max();
    Cycle limit_hi = std::numeric_limits<Cycle>::max();
    for (CoreId i = 0; i < active_; ++i) {
      if (i == pick) continue;
      const CoreState& core = cores_[i];
      if (feed_done<Streaming>(core) || core.was_gated) continue;
      if (i < pick) {
        limit_lo = std::min(limit_lo, core.next_time);
      } else {
        limit_hi = std::min(limit_hi, core.next_time);
      }
    }
    const bool leader_sensitive = ((gated_leaders >> pick) & 1) != 0;
    step_batch<Streaming>(pick, limit_lo, limit_hi, leader_sensitive);
  }
}

template <bool Streaming>
void CmpSimulator::step(CoreId id) {
  CoreState& core = cores_[id];
  if (config_.occupancy_sample_interval != 0 &&
      core.clock >= next_occupancy_sample_) {
    occupancy_.samples.push_back(snapshot_occupancy(*l2_, core.clock));
    // Skip ahead past idle gaps rather than emitting a backlog of samples.
    while (next_occupancy_sample_ <= core.clock) {
      next_occupancy_sample_ += config_.occupancy_sample_interval;
    }
  }
  const TraceRecord rec = feed_consume<Streaming>(core);
  core.outer_iter = rec.outer_iter;
  core.started = true;
  refresh_gate_round<Streaming>(core);

  const Cycle start = core.clock + rec.compute_gap;
  if (rec.kind() == AccessKind::kPrefetch) {
    core.clock = software_prefetch(core, id, rec, start);
  } else {
    core.clock = demand_access(core, id, rec, start);
  }
  if (!feed_done<Streaming>(core)) {
    core.next_time = core.clock + feed_pending<Streaming>(core).compute_gap;
  }
}

template <bool Streaming>
void CmpSimulator::step_batch(CoreId id, Cycle limit_lo, Cycle limit_hi,
                              bool leader_sensitive) {
  CoreState& core = cores_[id];
  const bool self_sync = core.sync.has_value();
  const bool sampling = config_.occupancy_sample_interval != 0;
  // Invariant at the top of each iteration: a full scheduler round run now
  // would pick this core again (the caller's round did for the first record;
  // the break conditions below re-establish it for every later one).
  for (;;) {
    if (sampling && core.clock >= next_occupancy_sample_) {
      occupancy_.samples.push_back(snapshot_occupancy(*l2_, core.clock));
      while (next_occupancy_sample_ <= core.clock) {
        next_occupancy_sample_ += config_.occupancy_sample_interval;
      }
    }
    const TraceRecord rec = feed_consume<Streaming>(core);
    // A gated follower re-examines this core's progress whenever its outer
    // iteration advances or it takes its very first record; the batch must
    // pause at those points so the follower resumes at the same instant the
    // record-at-a-time engine would release it.
    const bool gate_event =
        leader_sensitive &&
        (!core.started || rec.outer_iter != core.outer_iter);
    core.outer_iter = rec.outer_iter;
    core.started = true;
    if (self_sync) refresh_gate_round<Streaming>(core);

    const Cycle start = core.clock + rec.compute_gap;
    if (rec.kind() == AccessKind::kPrefetch) {
      core.clock = software_prefetch(core, id, rec, start);
    } else {
      core.clock = demand_access(core, id, rec, start);
    }
    if (feed_done<Streaming>(core)) return;
    core.next_time = core.clock + feed_pending<Streaming>(core).compute_gap;
    if (gate_event) return;
    if (self_sync &&
        feed_pending<Streaming>(core).outer_iter != core.outer_iter) {
      // The pending record may open a new round of this core's own sync:
      // the scheduler must re-evaluate gated() before it issues.
      return;
    }
    if (core.next_time >= limit_lo || core.next_time > limit_hi) return;
  }
}

void CmpSimulator::drain_l2(Cycle now) {
  if (mshr_->next_completion() > now) return;
  mshr_->drain_completed_into(now, drain_scratch_);
  for (const MshrEntry& fill : drain_scratch_) {
    // A fill a demand request merged into is, by the time it lands, wanted
    // data: tag it demand so its eviction is not miscounted as pollution
    // cases 2/3.
    const FillOrigin origin =
        fill.demand_merged ? FillOrigin::kDemand : fill.origin;
    std::uint32_t slot = Cache::kNoSlot;
    if (auto evicted = l2_->fill(fill.line, origin, fill.core, fill.fill_time,
                                 provenance_ ? &slot : nullptr)) {
      if (evicted->victim.dirty) memory_->writeback(fill.fill_time);
      if (provenance_) {
        // The displacement metadata rides the pollution shadow's own insert
        // as a ShadowAux — provenance does no hash work of its own. Victim
        // record retires before the incoming fill's record reuses the slot.
        pollution_->on_eviction(*evicted,
                                provenance_->eviction_aux(evicted->slot));
        provenance_->on_evicted_record(evicted->slot);
      } else {
        pollution_->on_eviction(*evicted);
      }
    }
    if (provenance_ && fill.origin != FillOrigin::kDemand) {
      // Raw (pre-merge-upgrade) origin: a merged prefetch fill is the
      // used_late fate at install time, never a live record.
      provenance_->on_fill(slot, fill.origin, fill.demand_merged);
    }
    if (fill.write) l2_->mark_dirty(fill.line);  // write-allocate installs dirty
  }
}

Cycle CmpSimulator::demand_access(CoreState& core, CoreId id,
                                  const TraceRecord& rec, Cycle start) {
  ++core.metrics.demand_accesses;
  if (core.l1->access(config_.l1.line_of(rec.addr), rec.kind(), start)) {
    ++core.metrics.l1_hits;
    return start + config_.l1_latency;
  }

  const LineAddr line = config_.l2.line_of(rec.addr);
  const Cycle t = start + config_.l1_latency;
  drain_l2(t);
  ++core.metrics.l2_lookups;
  // Provenance clocks reuse in *demand* L2 lookups; helper lookups are not
  // processor reuse (the same convention as the l2_kind downgrade below).
  const bool track_provenance =
      provenance_.has_value() && core.origin == FillOrigin::kDemand;
  if (track_provenance) provenance_->on_demand_lookup();

  // Only the main computation thread's touches count as "used by the
  // processor": a helper hit on its own earlier fill must not clear the
  // unused-prefetch status that pollution cases 2/3 are defined over.
  const AccessKind l2_kind = core.origin == FillOrigin::kDemand
                                 ? rec.kind()
                                 : AccessKind::kPrefetch;
  Cycle done;
  bool was_l2_miss;
  // Demand hits are the hottest event in a run, so the tracker is consulted
  // only on the *first* demand use of a prefetch-origin line — reported by
  // access() from the line's own metadata in the same tag scan that serves
  // the hit. Every other hit skips the tracker entirely.
  std::uint32_t first_use_slot = Cache::kNoSlot;
  if (l2_->access(line, l2_kind, t, first_use_slot)) {
    // Totally hit: data resident in the shared L2.
    ++core.metrics.totally_hits;
    was_l2_miss = false;
    done = t + config_.l2_latency;
    if (track_provenance && first_use_slot != Cache::kNoSlot) {
      provenance_->on_demand_hit(first_use_slot);
    }
  } else if (const MshrEntry* inflight = mshr_->find(line)) {
    // Partially hit: request already issued, not yet serviced. Wait out the
    // residual latency only.
    ++core.metrics.partially_hits;
    was_l2_miss = true;
    const Cycle fill_time = inflight->fill_time;
    mshr_->merge(line, core.origin == FillOrigin::kDemand);
    if (rec.kind() == AccessKind::kWrite) mshr_->mark_write(line);
    done = std::max(t, fill_time) + config_.l2_latency;
    core.metrics.stall_cycles += done - t;
  } else {
    // Totally miss: full memory round trip.
    ++core.metrics.totally_misses;
    was_l2_miss = true;
    if (core.origin == FillOrigin::kDemand) {
      // Case-1 pollution is defined over processor reuse only. On a
      // confirmed displacement reuse the pollution shadow hands back the
      // ShadowAux the eviction attached, closing the loop to the fill.
      if (provenance_) {
        ShadowAux aux;
        if (pollution_->on_demand_miss(line, &aux)) {
          provenance_->on_confirmed_reuse(aux);
        }
      } else {
        pollution_->on_demand_miss(line);
      }
    }
    Cycle issue = t;
    while (mshr_->full()) {
      // Structural stall: wait for the earliest outstanding fill, install it,
      // retry.
      const Cycle next = mshr_->next_completion();
      SPF_ASSERT(next != std::numeric_limits<Cycle>::max(),
                 "MSHR full yet empty");
      issue = std::max(issue, next);
      drain_l2(issue);
    }
    const Cycle fill_time = memory_->issue(issue, core.origin);
    // Note: a helper core's blocking load allocates with origin kHelper; the
    // helper stalls on it, but the fill counts as wanted data only once the
    // main thread touches it (used_since_fill stays false until then).
    const MshrEntry* entry =
        mshr_->allocate(line, issue, fill_time, core.origin, id);
    SPF_ASSERT(entry != nullptr, "allocation after full-wait must succeed");
    if (rec.kind() == AccessKind::kWrite) mshr_->mark_write(line);
    done = fill_time + config_.l2_latency;
    core.metrics.stall_cycles += done - t;
  }

  // L1 fill happens when the data returns; origin tag is per-core. The line
  // provably missed L1 above and nothing else fills this private L1, so the
  // already-present probe is skipped.
  if (auto l1_evicted = core.l1->fill_absent(config_.l1.line_of(rec.addr),
                                             FillOrigin::kDemand, id, done)) {
    // Private-L1 evictions are not shared-cache pollution; drop them.
    (void)l1_evicted;
  }

  issue_hw_prefetches(core, id, rec, was_l2_miss, t);
  return done;
}

Cycle CmpSimulator::software_prefetch(CoreState& core, CoreId id,
                                      const TraceRecord& rec, Cycle start) {
  // Non-binding prefetch: occupies the core for one issue slot only.
  const Cycle t = start + 1;
  const LineAddr line = config_.l2.line_of(rec.addr);
  drain_l2(t);

  if (l2_->probe(line) != nullptr || mshr_->find(line) != nullptr) {
    ++core.metrics.prefetches_elided;
    return t;
  }
  if (mshr_->full()) {
    // Real prefetch instructions are dropped under MSHR pressure.
    ++core.metrics.prefetches_dropped;
    return t;
  }
  const FillOrigin origin = core.origin == FillOrigin::kDemand
                                ? FillOrigin::kHelper
                                : core.origin;
  const Cycle fill_time = memory_->issue(t, origin);
  mshr_->allocate(line, t, fill_time, origin, id);
  ++core.metrics.prefetches_issued;
  return t;
}

void CmpSimulator::issue_hw_prefetches(CoreState& core, CoreId id,
                                       const TraceRecord& rec, bool was_l2_miss,
                                       Cycle now) {
  if (!config_.hw_prefetch) return;
  pf_scratch_.clear();
  core.prefetcher->observe(
      PrefetchObservation{.addr = rec.addr, .site = rec.site,
                          .was_miss = was_l2_miss},
      pf_scratch_);
  for (LineAddr line : pf_scratch_) {
    if (l2_->probe(line) != nullptr || mshr_->find(line) != nullptr) continue;
    if (mshr_->full()) break;  // hw prefetches never stall: drop the rest
    const Cycle fill_time = memory_->issue(now, FillOrigin::kHardware);
    mshr_->allocate(line, now, fill_time, FillOrigin::kHardware, id);
    ++hw_prefetches_issued_;
  }
}

}  // namespace spf
