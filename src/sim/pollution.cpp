#include "spf/sim/pollution.hpp"

#include <algorithm>
#include <sstream>

namespace spf {

std::string PollutionStats::to_string() const {
  std::ostringstream out;
  out << "pollution{case1=" << case1_reuse_displaced
      << " case2=" << case2_helper_displaced
      << " case3=" << case3_hw_displaced
      << " prefetch_evictions=" << prefetch_caused_evictions
      << " total_evictions=" << total_evictions << "}";
  return out.str();
}

namespace {

std::size_t shadow_slot_count(std::uint32_t capacity) {
  // The ring bounds live entries to `capacity`; keep the table at most
  // half-full so linear probe chains stay short.
  std::size_t n = 16;
  while (n < 2 * static_cast<std::size_t>(capacity)) n *= 2;
  return n;
}

}  // namespace

ShadowTable::ShadowTable(std::uint32_t capacity)
    : slots_(shadow_slot_count(capacity)),
      mask_(slots_.size() - 1) {}

void ShadowTable::reset(std::uint32_t capacity) {
  slots_.assign(shadow_slot_count(capacity), Slot{});
  mask_ = slots_.size() - 1;
  size_ = 0;
  // Disabled until enable_aux() runs again; capacity is kept so a pooled
  // provenance-on context re-enables without reallocating.
  aux_.clear();
}

void ShadowTable::enable_aux() {
  aux_.assign(slots_.size(), ShadowAux{});
}

void ShadowTable::insert_or_assign(LineAddr line, FillOrigin origin,
                                   const ShadowAux* aux) {
  std::size_t i = home_of(line);
  while (slots_[i].occupied) {
    if (slots_[i].line == line) {
      slots_[i].origin = origin;
      if (aux != nullptr && !aux_.empty()) aux_[i] = *aux;
      return;
    }
    i = (i + 1) & mask_;
  }
  slots_[i] = Slot{.line = line, .origin = origin, .occupied = true};
  if (aux != nullptr && !aux_.empty()) aux_[i] = *aux;
  ++size_;
}

bool ShadowTable::erase(LineAddr line, ShadowAux* aux_out) {
  std::size_t i = home_of(line);
  while (slots_[i].occupied) {
    if (slots_[i].line == line) {
      if (aux_out != nullptr && !aux_.empty()) *aux_out = aux_[i];
      erase_at(i);
      --size_;
      return true;
    }
    i = (i + 1) & mask_;
  }
  return false;
}

void ShadowTable::erase_at(std::size_t hole) {
  // Backward-shift deletion: pull each displaced successor in the probe
  // chain into the hole instead of leaving a tombstone.
  slots_[hole].occupied = false;
  std::size_t j = hole;
  for (;;) {
    j = (j + 1) & mask_;
    if (!slots_[j].occupied) return;
    const std::size_t home = home_of(slots_[j].line);
    // The element at j may move into the hole only if its home position is
    // not cyclically inside (hole, j] — otherwise probing would lose it.
    const bool stays = hole <= j ? (hole < home && home <= j)
                                 : (home <= j || home > hole);
    if (stays) continue;
    slots_[hole] = slots_[j];
    if (!aux_.empty()) aux_[hole] = aux_[j];
    slots_[j].occupied = false;
    hole = j;
  }
}

PollutionTracker::PollutionTracker(std::uint32_t shadow_capacity,
                                   const CacheGeometry& geometry)
    : geometry_(geometry), shadow_order_(shadow_capacity),
      shadow_(shadow_capacity), per_set_(geometry.num_sets(), 0) {}

void PollutionTracker::reset(std::uint32_t shadow_capacity,
                             const CacheGeometry& geometry) {
  geometry_ = geometry;
  stats_ = PollutionStats{};
  shadow_order_.reset(shadow_capacity);
  shadow_.reset(shadow_capacity);
  per_set_.assign(geometry.num_sets(), 0);
}

void PollutionTracker::attribute(LineAddr line) {
  ++per_set_[geometry_.set_of_line(line)];
}

std::uint64_t PollutionTracker::set_pollution(std::uint64_t set) const {
  return set < per_set_.size() ? per_set_[set] : 0;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
PollutionTracker::top_polluted_sets(std::size_t n) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sets;
  for (std::uint64_t s = 0; s < per_set_.size(); ++s) {
    if (per_set_[s] > 0) sets.emplace_back(s, per_set_[s]);
  }
  std::sort(sets.begin(), sets.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (sets.size() > n) sets.resize(n);
  return sets;
}

std::uint64_t PollutionTracker::polluted_set_count() const {
  std::uint64_t n = 0;
  for (std::uint64_t c : per_set_) n += c > 0;
  return n;
}

void PollutionTracker::enable_shadow_aux() { shadow_.enable_aux(); }

void PollutionTracker::on_eviction_impl(const Eviction& ev,
                                        const ShadowAux* aux) {
  ++stats_.total_evictions;
  const bool evictor_is_prefetch =
      ev.replaced_by_origin == FillOrigin::kHelper ||
      ev.replaced_by_origin == FillOrigin::kHardware;
  if (!evictor_is_prefetch) {
    // Demand fills can also displace useful data; that is ordinary capacity/
    // conflict behaviour, not prefetch pollution. Drop any stale shadow for
    // the victim so a later re-miss is not misattributed.
    shadow_.erase(ev.victim.line);
    return;
  }
  ++stats_.prefetch_caused_evictions;

  const bool victim_unused_prefetch = !ev.victim.used_since_fill &&
                                      ev.victim.origin != FillOrigin::kDemand;
  if (victim_unused_prefetch) {
    if (ev.victim.origin == FillOrigin::kHelper) {
      ++stats_.case2_helper_displaced;
    } else {
      ++stats_.case3_hw_displaced;
    }
    attribute(ev.victim.line);
    return;
  }

  // Victim was useful data (demand-filled, or a prefetch the processor had
  // already consumed). Whether it "will be reused" is only known when a later
  // demand miss returns for it — shadow it.
  LineAddr dropped = 0;
  if (shadow_order_.push(ev.victim.line, &dropped)) {
    shadow_.erase(dropped);
  }
  shadow_.insert_or_assign(ev.victim.line, ev.replaced_by_origin, aux);
}

bool PollutionTracker::on_demand_miss(LineAddr line, ShadowAux* aux_out) {
  if (!shadow_.erase(line, aux_out)) return false;
  ++stats_.case1_reuse_displaced;
  attribute(line);
  return true;
}

}  // namespace spf
