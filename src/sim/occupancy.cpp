#include "spf/sim/occupancy.hpp"

#include <algorithm>
#include <sstream>

namespace spf {

OccupancySample snapshot_occupancy(const Cache& cache, Cycle when) {
  OccupancySample s;
  s.when = when;
  cache.for_each_line([&s](const CacheLine& line) {
    switch (line.origin) {
      case FillOrigin::kDemand:
        ++s.demand_lines;
        break;
      case FillOrigin::kHelper:
        ++(line.used_since_fill ? s.helper_used : s.helper_unused);
        break;
      case FillOrigin::kHardware:
        ++(line.used_since_fill ? s.hw_used : s.hw_unused);
        break;
    }
  });
  return s;
}

double OccupancySeries::mean_unused_prefetch_fraction() const {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  for (const OccupancySample& s : samples) {
    if (s.total() == 0) continue;
    sum += static_cast<double>(s.unused_prefetch()) /
           static_cast<double>(s.total());
    ++counted;
  }
  return counted ? sum / static_cast<double>(counted) : 0.0;
}

std::uint64_t OccupancySeries::peak_unused_prefetch() const {
  std::uint64_t peak = 0;
  for (const OccupancySample& s : samples) {
    peak = std::max(peak, s.unused_prefetch());
  }
  return peak;
}

std::string OccupancySeries::to_string() const {
  std::ostringstream out;
  out << "occupancy{samples=" << samples.size()
      << " mean_unused_pf_frac=" << mean_unused_prefetch_fraction()
      << " peak_unused_pf=" << peak_unused_prefetch() << "}";
  return out.str();
}

}  // namespace spf
