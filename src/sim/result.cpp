#include "spf/sim/result.hpp"

#include <sstream>

namespace spf {

std::string ThreadMetrics::to_string() const {
  std::ostringstream out;
  out << "demand=" << demand_accesses << " l1_hits=" << l1_hits
      << " l2_lookups=" << l2_lookups << " Thit=" << totally_hits
      << " Phit=" << partially_hits << " Tmiss=" << totally_misses
      << " mem_acc=" << memory_accesses() << " pf(issued=" << prefetches_issued
      << ",elided=" << prefetches_elided << ",dropped=" << prefetches_dropped
      << ") stall=" << stall_cycles << " finish=" << finish_time;
  return out.str();
}

std::string SimResult::to_string() const {
  std::ostringstream out;
  out << "makespan=" << makespan << "\n";
  for (std::size_t c = 0; c < per_core.size(); ++c) {
    out << "  core" << c << ": " << per_core[c].to_string() << "\n";
  }
  out << "  " << pollution.to_string() << "\n";
  out << "  l2: hits=" << l2.hits << " misses=" << l2.misses
      << " evictions=" << l2.evictions << "\n";
  out << "  mem: requests=" << memory.requests
      << " mean_queue_delay=" << memory.mean_queue_delay()
      << " hw_prefetches=" << hw_prefetches_issued << "\n";
  return out.str();
}

}  // namespace spf
