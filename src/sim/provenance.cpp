#include "spf/sim/provenance.hpp"

namespace spf {

void ProvenanceSummary::add(const ProvenanceSummary& other) noexcept {
  if (!other.enabled) return;
  enabled = true;
  tracked_fills += other.tracked_fills;
  helper_fills += other.helper_fills;
  hardware_fills += other.hardware_fills;
  used_timely += other.used_timely;
  used_late += other.used_late;
  evicted_unused += other.evicted_unused;
  polluting += other.polluting;
  resident_unused += other.resident_unused;
  reuse_confirms += other.reuse_confirms;
  late_pollution_confirms += other.late_pollution_confirms;
  fill_to_use_total += other.fill_to_use_total;
  polluted_sets += other.polluted_sets;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    fill_to_use[b] += other.fill_to_use[b];
    victim_reuse[b] += other.victim_reuse[b];
    set_heatmap[b] += other.set_heatmap[b];
  }
}

ProvenanceTracker::ProvenanceTracker(std::size_t live_capacity)
    : flags_(live_capacity, 0), words_(live_capacity, 0) {
  resolved_.enabled = true;
}

void ProvenanceTracker::reset(std::size_t live_capacity) {
  demand_lookups_ = 0;
  next_gen_ = 0;
  resolved_ = ProvenanceSummary{};
  resolved_.enabled = true;
  flags_.assign(live_capacity, 0);
  // words_ entries are only read for slots whose kActive bit is set, and a
  // fill writes them before setting the bit — stale words are unreachable,
  // so resize without the clearing pass.
  words_.resize(live_capacity);
}

void ProvenanceTracker::resolve(std::uint32_t slot, bool evicted) {
  const std::uint8_t f = flags_[slot];
  if (f & kPolluting) {
    ++resolved_.polluting;
  } else if (f & kUsed) {
    ++resolved_.used_timely;
    resolved_.fill_to_use_total += clock_of(slot);
    ++resolved_.fill_to_use[ProvenanceSummary::bucket_of(clock_of(slot))];
  } else if (evicted) {
    ++resolved_.evicted_unused;
  } else {
    ++resolved_.resident_unused;
  }
}

void ProvenanceTracker::on_fill(std::uint32_t slot, FillOrigin raw_origin,
                                bool demand_merged) {
  if (raw_origin == FillOrigin::kDemand) return;
  ++resolved_.tracked_fills;
  if (raw_origin == FillOrigin::kHelper) {
    ++resolved_.helper_fills;
  } else {
    ++resolved_.hardware_fills;
  }
  if (demand_merged) {
    // The demand miss was already in flight when this prefetch completed:
    // the prefetch was too late to hide any latency. The line installs with
    // demand origin, so it is not tracked further.
    ++resolved_.used_late;
    return;
  }
  if (flags_[slot] & kActive) {
    // Defensive: the eviction that vacated this slot resolves its record
    // first (drain order), and the MSHR admits one in-flight fill per line —
    // so a live record should never be overwritten. Retire the stale record
    // as displaced rather than losing it.
    resolve(slot, /*evicted=*/true);
  }
  flags_[slot] = static_cast<std::uint8_t>(
      kActive | (raw_origin == FillOrigin::kHardware ? kHardware : 0));
  words_[slot] = pack(static_cast<std::uint32_t>(demand_lookups_),
                      static_cast<std::uint32_t>(next_gen_++));
}

void ProvenanceTracker::on_demand_hit(std::uint32_t slot) {
  const std::uint8_t f = flags_[slot];
  if (!(f & kActive) || (f & kUsed)) return;
  flags_[slot] = f | kUsed;
  // The clock field flips from fill-lookup to first-use distance; the
  // generation rides along untouched (a used fill can still turn polluting).
  words_[slot] = pack(static_cast<std::uint32_t>(demand_lookups_) - clock_of(slot),
                      gen_of(slot));
}

void ProvenanceTracker::on_confirmed_reuse(const ShadowAux& aux) {
  ++resolved_.reuse_confirms;
  ++resolved_.victim_reuse[ProvenanceSummary::bucket_of(
      static_cast<std::uint32_t>(demand_lookups_) - aux.evict_lookup)];
  const std::uint8_t f = flags_[aux.evictor_slot];
  if ((f & kActive) && gen_of(aux.evictor_slot) == aux.evictor_gen) {
    flags_[aux.evictor_slot] = f | kPolluting;
  } else {
    ++resolved_.late_pollution_confirms;
  }
}

ProvenanceSummary ProvenanceTracker::snapshot(
    const std::vector<std::uint64_t>& per_set_pollution) const {
  ProvenanceSummary out = resolved_;
  // Provisionally classify still-live fills so the fate counts partition the
  // tracked fills even mid-run (warm adaptive snapshots). A resident fill may
  // migrate between categories across snapshots; the partition holds at each.
  for (std::size_t slot = 0; slot < flags_.size(); ++slot) {
    const std::uint8_t f = flags_[slot];
    if (!(f & kActive)) continue;
    if (f & kPolluting) {
      ++out.polluting;
    } else if (f & kUsed) {
      ++out.used_timely;
      const std::uint64_t d = clock_of(static_cast<std::uint32_t>(slot));
      out.fill_to_use_total += d;
      ++out.fill_to_use[ProvenanceSummary::bucket_of(d)];
    } else {
      ++out.resident_unused;
    }
  }
  for (std::uint64_t count : per_set_pollution) {
    if (count == 0) continue;
    ++out.polluted_sets;
    ++out.set_heatmap[ProvenanceSummary::bucket_of(count)];
  }
  return out;
}

}  // namespace spf
