// Shared-cache occupancy composition over time.
//
// The paper's §III.A argument is about *occupancy*: "the bigger the prefetch
// distance A_SKI, the larger the active data set since the prefetched data
// must be kept longer time in shared cache". This sampler periodically
// snapshots the shared L2 and splits its valid lines by provenance —
// demand-owned, helper-prefetched (used / still unused), hardware-prefetched
// (used / still unused) — turning that argument into a measurable series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spf/cache/cache.hpp"
#include "spf/mem/types.hpp"

namespace spf {

struct OccupancySample {
  Cycle when = 0;
  std::uint64_t demand_lines = 0;
  std::uint64_t helper_used = 0;
  std::uint64_t helper_unused = 0;
  std::uint64_t hw_used = 0;
  std::uint64_t hw_unused = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return demand_lines + helper_used + helper_unused + hw_used + hw_unused;
  }
  /// Lines brought in by a prefetcher that the processor has not consumed —
  /// the "active data set" inflation prefetching causes.
  [[nodiscard]] std::uint64_t unused_prefetch() const noexcept {
    return helper_unused + hw_unused;
  }
};

/// Scans every valid line of `cache` into one sample stamped `when`.
[[nodiscard]] OccupancySample snapshot_occupancy(const Cache& cache, Cycle when);

struct OccupancySeries {
  std::vector<OccupancySample> samples;

  [[nodiscard]] bool empty() const noexcept { return samples.empty(); }
  /// Mean fraction of valid lines that are unused prefetches across samples.
  [[nodiscard]] double mean_unused_prefetch_fraction() const;
  /// Largest unused-prefetch line count seen.
  [[nodiscard]] std::uint64_t peak_unused_prefetch() const;
  [[nodiscard]] std::string to_string() const;
};

}  // namespace spf
