// Prefetch-lifecycle provenance: follows every helper/hardware prefetch fill
// from the cycle it installs into L2 to its fate. The pollution tracker
// answers "how much useful data did prefetching displace?" in aggregate; this
// tracker answers the causal question behind the paper's distance argument —
// *why* a given distance pollutes — by classifying each prefetched line:
//
//   used_timely     a demand access hit the line after its fill (the fill
//                   arrived early enough, and not so early it was displaced).
//   used_late       the demand miss was already in flight when the prefetch
//                   fill completed (MSHR-merged): the prefetch was issued too
//                   late to hide the full miss latency (paper §II.B).
//   evicted_unused  the line was displaced before any demand use — the fill
//                   arrived prematurely relative to cache pressure.
//   polluting       the fill displaced a victim whose reuse was later
//                   confirmed by a demand miss (the §II.C case-1 signature,
//                   attributed back to the displacing fill).
//   resident_unused the line was still cached but never demand-used when the
//                   run ended (end-of-run remainder, kept so the fate counts
//                   partition the tracked fills exactly).
//
// Alongside the fate partition it records two log2-bucketed histograms in
// units of *demand L2 lookups* (the simulator's natural reuse clock):
// fill→first-use distance for used_timely fills, and displacement→re-miss
// reuse distance for shadow-confirmed victims. Bucket b >= 1 holds distances
// in [2^(b-1), 2^b); bucket counts are fixed so artifacts stay deterministic.
//
// The victim shadow IS PollutionTracker's shadow: displacement metadata rides
// the pollution table as a ShadowAux sidecar (attached at insert, handed back
// on the erase that confirms the reuse), so the reuse-distance histogram mass
// equals the pollution tracker's case-1 count by construction — a cross-check
// the property tests pin — and the tracker pays zero hash probes of its own.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "spf/cache/cache.hpp"
#include "spf/mem/types.hpp"
#include "spf/sim/pollution.hpp"

namespace spf {

/// Per-run provenance results. Plain additive counters plus fixed-size
/// histograms, so summaries can be merged across adaptive intervals.
struct ProvenanceSummary {
  static constexpr std::size_t kHistogramBuckets = 32;

  /// False when the run did not track provenance (SimConfig::provenance off);
  /// consumers must treat every other field as absent.
  bool enabled = false;

  /// Helper/hardware prefetch fills that installed into L2 (demand-merged
  /// fills included — they classify as used_late at install time).
  std::uint64_t tracked_fills = 0;
  std::uint64_t helper_fills = 0;
  std::uint64_t hardware_fills = 0;

  // The five fates. Invariant: they sum to tracked_fills.
  std::uint64_t used_timely = 0;
  std::uint64_t used_late = 0;
  std::uint64_t evicted_unused = 0;
  std::uint64_t polluting = 0;
  std::uint64_t resident_unused = 0;

  /// Shadow-confirmed victim re-misses (== victim_reuse histogram mass).
  std::uint64_t reuse_confirms = 0;
  /// Confirmations that arrived after the displacing fill's own record had
  /// already resolved (its line was evicted first); counted but no longer
  /// re-attributable to a live fate.
  std::uint64_t late_pollution_confirms = 0;
  /// Sum of fill→first-use distances over used_timely fills (mean = this /
  /// used_timely).
  std::uint64_t fill_to_use_total = 0;
  /// Sets with at least one pollution event (== set_heatmap mass).
  std::uint64_t polluted_sets = 0;

  /// log2 histogram of fill→first-use distance, demand L2 lookups.
  std::array<std::uint64_t, kHistogramBuckets> fill_to_use{};
  /// log2 histogram of displacement→re-miss distance, demand L2 lookups.
  std::array<std::uint64_t, kHistogramBuckets> victim_reuse{};
  /// log2 histogram of per-set pollution event counts (one entry per
  /// polluted set), snapshotted from PollutionTracker's per-set table.
  std::array<std::uint64_t, kHistogramBuckets> set_heatmap{};

  /// Sum of the five fate counters; equals tracked_fills by construction.
  [[nodiscard]] std::uint64_t fate_total() const noexcept {
    return used_timely + used_late + evicted_unused + polluting +
           resident_unused;
  }
  [[nodiscard]] double timely_rate() const noexcept {
    return tracked_fills == 0
               ? 0.0
               : static_cast<double>(used_timely) /
                     static_cast<double>(tracked_fills);
  }
  [[nodiscard]] double fill_to_use_mean() const noexcept {
    return used_timely == 0 ? 0.0
                            : static_cast<double>(fill_to_use_total) /
                                  static_cast<double>(used_timely);
  }

  /// Merge `other` into this summary (adaptive cold intervals accumulate
  /// per-interval summaries). No-op when `other` is disabled.
  void add(const ProvenanceSummary& other) noexcept;

  /// Bucket index for a demand-lookup distance: 0 for 0, else
  /// min(bit_width(d), kHistogramBuckets - 1).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t distance) noexcept {
    if (distance == 0) return 0;
    const auto width = static_cast<std::size_t>(std::bit_width(distance));
    return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
  }
};

class ProvenanceTracker {
 public:
  /// `live_capacity` sizes the slot-indexed record arrays; pass the L2 line
  /// count (records are keyed by the cache's row-major (set, way) slot, so
  /// this is exact, not a hint). The default suits unit tests.
  explicit ProvenanceTracker(std::size_t live_capacity = 1024);

  /// As-if-freshly-constructed (ExperimentContext reuse seam).
  void reset(std::size_t live_capacity = 1024);

  /// Advance the reuse clock: call once per *demand-core* L2 lookup.
  void on_demand_lookup() noexcept { ++demand_lookups_; }

  /// A prefetch fill (raw MSHR origin kHelper/kHardware, before any
  /// demand-merge upgrade) installs into cache slot `slot` (from
  /// Cache::fill's slot_out). When the install displaced a victim, call
  /// on_evicted_record FIRST — the victim's record lives at the same slot
  /// and must resolve before the displacing fill's record overwrites it.
  void on_fill(std::uint32_t slot, FillOrigin raw_origin, bool demand_merged);

  /// First demand use of a prefetch-origin line in cache slot `slot` (from
  /// Cache::access's first_use_slot report). Later hits on the same fill
  /// are ignored.
  void on_demand_hit(std::uint32_t slot);

  /// Payload to attach to the pollution shadow for an eviction out of cache
  /// slot `evictor_slot` (feed it to PollutionTracker's aux-carrying
  /// on_eviction overload). Links forward to the generation the displacing
  /// fill's record is about to be assigned: the pollution shadow only keeps
  /// it when the evictor is a non-merged prefetch fill, and exactly those
  /// fills reach on_fill next at the same slot, so the link cannot dangle.
  [[nodiscard]] ShadowAux eviction_aux(std::uint32_t evictor_slot) const
      noexcept {
    return ShadowAux{.evict_lookup = static_cast<std::uint32_t>(demand_lookups_),
                     .evictor_gen = static_cast<std::uint32_t>(next_gen_),
                     .evictor_slot = evictor_slot};
  }

  /// Every L2 eviction (same feed point as PollutionTracker::on_eviction):
  /// classify and retire the victim's live record at `slot`, if any. Inline
  /// because the common case — no record at the slot — is one byte test.
  void on_evicted_record(std::uint32_t slot) {
    if (flags_[slot] & kActive) {
      resolve(slot, /*evicted=*/true);
      flags_[slot] = 0;
    }
  }

  /// A demand miss PollutionTracker confirmed as case-1 pollution, with the
  /// ShadowAux its shadow handed back: bucket the victim's reuse distance
  /// and attribute the pollution to the displacing fill's record.
  void on_confirmed_reuse(const ShadowAux& aux);

  /// Snapshot the summary: resolved fates plus a provisional classification
  /// of still-live fills (resident_unused / used_timely), and the per-set
  /// pollution heatmap. Const — warm adaptive intervals snapshot repeatedly
  /// while the run continues.
  [[nodiscard]] ProvenanceSummary snapshot(
      const std::vector<std::uint64_t>& per_set_pollution) const;

  [[nodiscard]] std::uint64_t demand_lookups() const noexcept {
    return demand_lookups_;
  }

 private:
  // Live records are stored structure-of-arrays, indexed by cache slot: a
  // one-byte state array probed on every eviction and first use (small
  // enough to stay resident in the host's near caches), with the wider
  // per-record words touched only on the rarer state transitions. The
  // line->record hashing this replaces was the tracker's dominant cost —
  // one random probe into a multi-megabyte table per fill/eviction.
  static constexpr std::uint8_t kActive = 1;     // slot holds a live record
  static constexpr std::uint8_t kUsed = 2;       // first demand use seen
  static constexpr std::uint8_t kPolluting = 4;  // victim reuse confirmed
  static constexpr std::uint8_t kHardware = 8;   // origin (helper otherwise)

  /// Classify and retire the live record at `slot`. `evicted` distinguishes
  /// the evicted_unused fate from the end-of-run resident remainder.
  void resolve(std::uint32_t slot, bool evicted);

  /// The packed per-slot record word: low half is the clock field (fill
  /// lookup until first use, then the fill->first-use distance — the state
  /// machine never needs both at once), high half the record generation
  /// (assigned from next_gen_ at fill; the generation check in
  /// on_confirmed_reuse keeps a recycled slot from absorbing another fill's
  /// blame). Clocks and generations are truncated to 32 bits, so distances
  /// are computed modulo 2^32: exact below ~4.3 billion demand lookups,
  /// which a resident line would have to survive untouched to mis-bucket.
  /// Packing makes a fill's record update a single u64 store and halves the
  /// array the per-event touches land in.
  [[nodiscard]] static std::uint64_t pack(std::uint32_t clock,
                                          std::uint32_t gen) noexcept {
    return (static_cast<std::uint64_t>(gen) << 32) | clock;
  }
  [[nodiscard]] std::uint32_t clock_of(std::uint32_t slot) const noexcept {
    return static_cast<std::uint32_t>(words_[slot]);
  }
  [[nodiscard]] std::uint32_t gen_of(std::uint32_t slot) const noexcept {
    return static_cast<std::uint32_t>(words_[slot] >> 32);
  }

  std::uint64_t demand_lookups_ = 0;
  std::uint64_t next_gen_ = 0;
  ProvenanceSummary resolved_;
  /// Per-slot record state (kActive/kUsed/kPolluting/kHardware bits).
  std::vector<std::uint8_t> flags_;
  /// Packed clock/generation word per slot (see pack()).
  std::vector<std::uint64_t> words_;
};

}  // namespace spf
