// Simulation results: per-core access classification in the paper's taxonomy
// plus shared-structure statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spf/cache/cache.hpp"
#include "spf/mem/types.hpp"
#include "spf/memsys/memory.hpp"
#include "spf/mshr/mshr.hpp"
#include "spf/sim/occupancy.hpp"
#include "spf/sim/pollution.hpp"
#include "spf/sim/provenance.hpp"

namespace spf {

/// Per-core classification of demand traffic (paper §V.B):
/// memory accesses = totally_misses + partially_hits.
struct ThreadMetrics {
  /// Demand (non-prefetch-kind) accesses the core performed.
  std::uint64_t demand_accesses = 0;
  std::uint64_t l1_hits = 0;
  /// Demand L2 lookups (L1 misses).
  std::uint64_t l2_lookups = 0;
  /// Line valid in L2 at access time.
  std::uint64_t totally_hits = 0;
  /// Merged into an outstanding fill (issued, not yet serviced).
  std::uint64_t partially_hits = 0;
  /// Full memory round trip.
  std::uint64_t totally_misses = 0;
  /// Software prefetch-kind records issued / dropped (MSHR full or already
  /// cached).
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetches_elided = 0;
  std::uint64_t prefetches_dropped = 0;
  /// Cycles this core spent waiting on fills.
  Cycle stall_cycles = 0;
  /// Core-local time when its stream ended.
  Cycle finish_time = 0;

  /// The paper's "memory access" metric: demanded data missing in L2.
  [[nodiscard]] std::uint64_t memory_accesses() const noexcept {
    return totally_misses + partially_hits;
  }
  [[nodiscard]] std::string to_string() const;
};

struct SimResult {
  std::vector<ThreadMetrics> per_core;
  PollutionStats pollution;
  CacheStats l2;
  MshrStats mshr;
  MemoryStats memory;
  /// Hardware-prefetch lines actually issued to memory.
  std::uint64_t hw_prefetches_issued = 0;
  /// Periodic L2 composition snapshots (empty unless
  /// SimConfig::occupancy_sample_interval is set).
  OccupancySeries occupancy;
  /// Sets with at least one pollution event, and the 16 worst offenders
  /// (set index, event count) in descending order.
  std::uint64_t polluted_set_count = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> top_polluted_sets;
  /// Prefetch-lifecycle fate attribution (enabled == false unless
  /// SimConfig::provenance was set for the run).
  ProvenanceSummary provenance;
  /// Time at which the last core finished.
  Cycle makespan = 0;

  /// Core 0 is the main computation thread by convention.
  [[nodiscard]] const ThreadMetrics& main() const { return per_core.at(0); }
  [[nodiscard]] std::string to_string() const;
};

}  // namespace spf
