// Trace-driven CMP simulator.
//
// Topology (one Core 2 die, paper Table I): N cores, each with a private L1D
// and a per-core hardware prefetcher pair (DPL stride + streamer), sharing
// one inclusive L2 with a finite MSHR file in front of a bandwidth-limited
// memory channel.
//
// Execution model: each core consumes its TraceRecord stream; the engine
// always advances the core with the smallest local clock (deterministic
// tie-break by core id), so interleaving at the shared L2 is reproducible.
// Timing is approximate at instruction granularity but exact in the ordering
// relationships that matter for the paper's metrics: a fill is usable only
// after its memory round trip; a second request to an in-flight line merges
// and waits only the residual latency (partially hit).
//
// Two replay engines share every access-processing function and produce
// bit-identical results:
//   - record-at-a-time: one scheduler round (pick + gate checks) per record;
//   - batched (default): one scheduler round per *run* of records that the
//     round provably keeps on the same core — the batch ends on core switch
//     (next-access time reaches a rival's), round boundary, helper-sync
//     progress point, or trace end (see docs/simulator.md).
//
// Orthogonally, each engine runs over one of two record feeds (again
// bit-identical, SimConfig::streaming_cores): indexing a materialized
// TraceBuffer, or pulling windows from a RecordSource — the seam that lets a
// core consume a lazily synthesized stream (the fused SP helper) that is
// never materialized. See docs/simulator.md "Cursor-fed cores & the peek
// window".
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "spf/cache/cache.hpp"
#include "spf/common/arena.hpp"
#include "spf/memsys/memory.hpp"
#include "spf/mshr/mshr.hpp"
#include "spf/prefetch/core_prefetchers.hpp"
#include "spf/sim/config.hpp"
#include "spf/sim/pollution.hpp"
#include "spf/sim/provenance.hpp"
#include "spf/sim/result.hpp"
#include "spf/trace/trace.hpp"
#include "spf/trace/trace_cursor.hpp"

namespace spf {

/// One core's workload description. Exactly one of `trace` / `source` feeds
/// the core: `trace` points at a materialized buffer (the classic path, also
/// the only one the buffer-indexed reference engine accepts); `source` is a
/// RecordSource pulled window-by-window, which is how lazily synthesized
/// streams (the fused SP helper) reach the simulator without a scratch
/// buffer. A `source` stream always runs on the streaming engine regardless
/// of SimConfig::streaming_cores; the source must outlive the run and is
/// reset() at run start.
struct CoreStream {
  const TraceBuffer* trace = nullptr;
  RecordSource* source = nullptr;
  /// Provenance tag for L2 fills caused by this core's accesses. Main
  /// computation threads use kDemand; the SP helper uses kHelper so its fills
  /// participate in pollution case 2.
  FillOrigin origin = FillOrigin::kDemand;
  /// Round-gated staggering against a leader core (SP helper threads).
  std::optional<RoundSync> sync;
};

class CmpSimulator {
 public:
  /// `arena`, when non-null, backs the cache arrays of every run; it must
  /// outlive the simulator. ExperimentContext passes its per-context arena
  /// here so cell construction under sweep fan-out stays off the global heap.
  explicit CmpSimulator(const SimConfig& config, Arena* arena = nullptr);

  /// Runs all streams to completion and returns the metrics. Core i of the
  /// result corresponds to streams[i]. The simulator is reusable: each run
  /// starts from cold caches, and repeat runs reuse the previous run's
  /// storage (no per-run allocation once shapes have been seen).
  SimResult run(const std::vector<CoreStream>& streams);

  /// Reconfigure-and-run, the reuse seam ExperimentContext drives: same
  /// result as constructing a fresh CmpSimulator(config) and running it.
  SimResult run(const SimConfig& config, const std::vector<CoreStream>& streams);

  /// Continues a prior run() with *warm* hardware state: rebinds the streams
  /// (fresh feeds, sync, origins) but keeps the shared L2/MSHR/memory
  /// channel/pollution tracker, each core's private L1 + hw prefetchers, and
  /// every core's local clock, so the new streams observe the machine exactly
  /// as the previous streams left it. This is the adaptive interval-replay
  /// seam (spf/core/adaptive.hpp, AdaptiveConfig::warm_intervals): each
  /// interval re-enters the simulator without the cold-start transient.
  ///
  /// Requires a completed run() before the first call and the same stream
  /// count as that run (core i keeps being core i). The returned metrics are
  /// CUMULATIVE since the last cold run() — per-core counters, pollution
  /// cases, stats, and finish times all keep accumulating; callers wanting
  /// per-interval deltas difference successive results. The simulator's
  /// config is not re-read: the run continues under the config of the last
  /// cold run(). No telemetry counters are surfaced (the cold run already
  /// surfaced the totals' base; re-adding cumulative values would
  /// double-count).
  SimResult run_warm(const std::vector<CoreStream>& streams);

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  struct CoreState {
    const TraceBuffer* trace = nullptr;
    std::size_t cursor = 0;
    // Streaming-engine feed state (engine choice is per run, see run()):
    // `window`/`win_pos` hold the current RecordSource window and the
    // consumer position inside it — the position *is* the peek lookahead the
    // scheduler uses (pending record = window[win_pos]). The refill-on-consume
    // invariant in feed_consume keeps "win_pos == window.size()" equivalent
    // to "stream exhausted". Trace-backed streams run under the streaming
    // engine through `buffer_source` (whole buffer as one window).
    RecordSource* source = nullptr;
    std::span<const TraceRecord> window{};
    std::size_t win_pos = 0;
    BufferCursor buffer_source;
    Cycle clock = 0;
    std::uint32_t outer_iter = 0;  // current outer iteration (last seen)
    bool started = false;
    FillOrigin origin = FillOrigin::kDemand;
    std::optional<RoundSync> sync;
    bool was_gated = false;
    /// Private L1, by value (optional only because CoreState must be
    /// default-constructible before reset() configures it). Kept alive across
    /// runs so reset_to() can reuse its storage.
    std::optional<Cache> l1;
    /// Per-core hw prefetcher pair, held by value (same optional rationale).
    std::optional<CorePrefetchers> prefetcher;
    ThreadMetrics metrics;
    // Scheduler/gating memoization (pure caches of values derivable from the
    // state above; recomputed when their inputs change, so behaviour is
    // identical to recomputing every call).
    /// clock + pending record's compute_gap; maintained on every step.
    Cycle next_time = 0;
    std::uint32_t gate_next_round = 0;   // trace[cursor].outer_iter / round_iters
    std::uint32_t gate_next_outer_seen = ~std::uint32_t{0};
    std::uint32_t gate_leader_round = 0;
    std::uint32_t gate_leader_outer_seen = 0;
    bool gate_leader_started_seen = false;
  };

  void reset(const std::vector<CoreStream>& streams);
  /// Per-core stream (re)binding shared by reset() and run_warm(): feeds,
  /// origin/sync, gating memos. `warm` keeps each core's clock, L1,
  /// prefetchers, and cumulative metrics instead of zeroing them.
  void bind_streams(const std::vector<CoreStream>& streams, bool warm);
  /// Engine dispatch + final drain + metrics collection over already-bound
  /// streams (the shared tail of run() and run_warm()).
  SimResult run_bound();

  // Record-feed policy, selected per run: Streaming pulls through the
  // RecordSource window, !Streaming indexes the materialized buffer. Both
  // expose the same three operations — done / pending (peek, no consume) /
  // consume — so the scalar and batched engines are written once and
  // instantiated for each feed. The simulator only ever peeks the *pending*
  // record (compute_gap for next_time, outer_iter for round gating), so a
  // one-record-deep peek inside the window reproduces the buffer engine's
  // scheduling decisions exactly.
  template <bool Streaming>
  [[nodiscard]] static bool feed_done(const CoreState& core) noexcept {
    if constexpr (Streaming) return core.win_pos >= core.window.size();
    else return core.cursor >= core.trace->size();
  }
  template <bool Streaming>
  [[nodiscard]] static const TraceRecord& feed_pending(
      const CoreState& core) noexcept {
    if constexpr (Streaming) return core.window[core.win_pos];
    else return (*core.trace)[core.cursor];
  }
  /// Returns the consumed record *by value*: in streaming mode the refill
  /// that re-establishes the window invariant may overwrite the ring slot a
  /// reference would point into.
  template <bool Streaming>
  [[nodiscard]] static TraceRecord feed_consume(CoreState& core) {
    if constexpr (Streaming) {
      const TraceRecord rec = core.window[core.win_pos++];
      if (core.win_pos >= core.window.size()) {
        core.window = core.source->next_window();
        core.win_pos = 0;
      }
      return rec;
    } else {
      return (*core.trace)[core.cursor++];
    }
  }

  template <bool Streaming>
  [[nodiscard]] bool gated(CoreState& core) const;
  /// Refresh `core.gate_next_round` from the pending record (call after the
  /// feed position moves).
  template <bool Streaming>
  void refresh_gate_round(CoreState& core) const;
  /// One scheduler round per record (reference engine).
  template <bool Streaming>
  void run_loop_scalar();
  /// One scheduler round per same-core batch; requires <= 64 cores.
  template <bool Streaming>
  void run_loop_batched();
  template <bool Streaming>
  void step(CoreId id);
  /// Process records of core `id` until the scheduler could pick a different
  /// core: its next-access time reaches limit_lo (rival with a lower id) or
  /// exceeds limit_hi (rival with a higher id), a gate-relevant progress
  /// point passes (`leader_sensitive`: some currently-gated core waits on
  /// this one), the pending record enters a new round of this core's own
  /// sync, or the trace ends.
  template <bool Streaming>
  void step_batch(CoreId id, Cycle limit_lo, Cycle limit_hi,
                  bool leader_sensitive);
  /// Demand path for one record; returns the completion time of the access.
  Cycle demand_access(CoreState& core, CoreId id, const TraceRecord& rec,
                      Cycle start);
  /// Software-prefetch path (non-binding, never stalls the core).
  Cycle software_prefetch(CoreState& core, CoreId id, const TraceRecord& rec,
                          Cycle start);
  /// Install every completed fill with fill_time <= now into the L2.
  void drain_l2(Cycle now);
  /// Issue hardware-prefetch candidates produced by `core`'s prefetcher.
  void issue_hw_prefetches(CoreState& core, CoreId id, const TraceRecord& rec,
                           bool was_l2_miss, Cycle now);

  SimConfig config_;
  Arena* arena_ = nullptr;
  /// Grows to the widest stream set ever run, never shrinks: cores_[i].l1
  /// keeps its storage across runs. Only the first `active_` entries
  /// participate in the current run.
  std::vector<CoreState> cores_;
  std::size_t active_ = 0;
  /// Feed selected by the last reset(): SimConfig::streaming_cores, forced
  /// on when any stream carries a RecordSource instead of a trace.
  bool streaming_run_ = false;
  std::optional<Cache> l2_;
  std::optional<MshrFile> mshr_;
  std::optional<MemoryController> memory_;
  std::optional<PollutionTracker> pollution_;
  /// Engaged only when config_.provenance is set; disengaged (one branch on
  /// the hot paths) otherwise. Purely observational — never feeds back into
  /// timing or replacement, so results are bit-identical either way.
  std::optional<ProvenanceTracker> provenance_;
  std::uint64_t hw_prefetches_issued_ = 0;
  std::vector<LineAddr> pf_scratch_;
  std::vector<MshrEntry> drain_scratch_;
  OccupancySeries occupancy_;
  Cycle next_occupancy_sample_ = 0;
};

}  // namespace spf
