// Trace-driven CMP simulator.
//
// Topology (one Core 2 die, paper Table I): N cores, each with a private L1D
// and a per-core hardware prefetcher pair (DPL stride + streamer), sharing
// one inclusive L2 with a finite MSHR file in front of a bandwidth-limited
// memory channel.
//
// Execution model: each core consumes its TraceRecord stream; the engine
// always advances the core with the smallest local clock (deterministic
// tie-break by core id), so interleaving at the shared L2 is reproducible.
// Timing is approximate at instruction granularity but exact in the ordering
// relationships that matter for the paper's metrics: a fill is usable only
// after its memory round trip; a second request to an in-flight line merges
// and waits only the residual latency (partially hit).
//
// Two replay engines share every access-processing function and produce
// bit-identical results:
//   - record-at-a-time: one scheduler round (pick + gate checks) per record;
//   - batched (default): one scheduler round per *run* of records that the
//     round provably keeps on the same core — the batch ends on core switch
//     (next-access time reaches a rival's), round boundary, helper-sync
//     progress point, or trace end (see docs/simulator.md).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "spf/cache/cache.hpp"
#include "spf/common/arena.hpp"
#include "spf/memsys/memory.hpp"
#include "spf/mshr/mshr.hpp"
#include "spf/prefetch/core_prefetchers.hpp"
#include "spf/sim/config.hpp"
#include "spf/sim/pollution.hpp"
#include "spf/sim/result.hpp"
#include "spf/trace/trace.hpp"

namespace spf {

/// One core's workload description.
struct CoreStream {
  const TraceBuffer* trace = nullptr;
  /// Provenance tag for L2 fills caused by this core's accesses. Main
  /// computation threads use kDemand; the SP helper uses kHelper so its fills
  /// participate in pollution case 2.
  FillOrigin origin = FillOrigin::kDemand;
  /// Round-gated staggering against a leader core (SP helper threads).
  std::optional<RoundSync> sync;
};

class CmpSimulator {
 public:
  /// `arena`, when non-null, backs the cache arrays of every run; it must
  /// outlive the simulator. ExperimentContext passes its per-context arena
  /// here so cell construction under sweep fan-out stays off the global heap.
  explicit CmpSimulator(const SimConfig& config, Arena* arena = nullptr);

  /// Runs all streams to completion and returns the metrics. Core i of the
  /// result corresponds to streams[i]. The simulator is reusable: each run
  /// starts from cold caches, and repeat runs reuse the previous run's
  /// storage (no per-run allocation once shapes have been seen).
  SimResult run(const std::vector<CoreStream>& streams);

  /// Reconfigure-and-run, the reuse seam ExperimentContext drives: same
  /// result as constructing a fresh CmpSimulator(config) and running it.
  SimResult run(const SimConfig& config, const std::vector<CoreStream>& streams);

  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

 private:
  struct CoreState {
    const TraceBuffer* trace = nullptr;
    std::size_t cursor = 0;
    Cycle clock = 0;
    std::uint32_t outer_iter = 0;  // current outer iteration (last seen)
    bool started = false;
    FillOrigin origin = FillOrigin::kDemand;
    std::optional<RoundSync> sync;
    bool was_gated = false;
    /// Private L1, by value (optional only because CoreState must be
    /// default-constructible before reset() configures it). Kept alive across
    /// runs so reset_to() can reuse its storage.
    std::optional<Cache> l1;
    /// Per-core hw prefetcher pair, held by value (same optional rationale).
    std::optional<CorePrefetchers> prefetcher;
    ThreadMetrics metrics;
    // Scheduler/gating memoization (pure caches of values derivable from the
    // state above; recomputed when their inputs change, so behaviour is
    // identical to recomputing every call).
    /// clock + pending record's compute_gap; maintained on every step.
    Cycle next_time = 0;
    std::uint32_t gate_next_round = 0;   // trace[cursor].outer_iter / round_iters
    std::uint32_t gate_next_outer_seen = ~std::uint32_t{0};
    std::uint32_t gate_leader_round = 0;
    std::uint32_t gate_leader_outer_seen = 0;
    bool gate_leader_started_seen = false;
  };

  void reset(const std::vector<CoreStream>& streams);
  [[nodiscard]] bool gated(CoreState& core) const;
  /// Refresh `core.gate_next_round` from the pending record (call after the
  /// cursor moves).
  void refresh_gate_round(CoreState& core) const;
  /// One scheduler round per record (reference engine).
  void run_loop_scalar();
  /// One scheduler round per same-core batch; requires <= 64 cores.
  void run_loop_batched();
  void step(CoreId id);
  /// Process records of core `id` until the scheduler could pick a different
  /// core: its next-access time reaches limit_lo (rival with a lower id) or
  /// exceeds limit_hi (rival with a higher id), a gate-relevant progress
  /// point passes (`leader_sensitive`: some currently-gated core waits on
  /// this one), the pending record enters a new round of this core's own
  /// sync, or the trace ends.
  void step_batch(CoreId id, Cycle limit_lo, Cycle limit_hi,
                  bool leader_sensitive);
  /// Demand path for one record; returns the completion time of the access.
  Cycle demand_access(CoreState& core, CoreId id, const TraceRecord& rec,
                      Cycle start);
  /// Software-prefetch path (non-binding, never stalls the core).
  Cycle software_prefetch(CoreState& core, CoreId id, const TraceRecord& rec,
                          Cycle start);
  /// Install every completed fill with fill_time <= now into the L2.
  void drain_l2(Cycle now);
  /// Issue hardware-prefetch candidates produced by `core`'s prefetcher.
  void issue_hw_prefetches(CoreState& core, CoreId id, const TraceRecord& rec,
                           bool was_l2_miss, Cycle now);

  SimConfig config_;
  Arena* arena_ = nullptr;
  /// Grows to the widest stream set ever run, never shrinks: cores_[i].l1
  /// keeps its storage across runs. Only the first `active_` entries
  /// participate in the current run.
  std::vector<CoreState> cores_;
  std::size_t active_ = 0;
  std::optional<Cache> l2_;
  std::optional<MshrFile> mshr_;
  std::optional<MemoryController> memory_;
  std::optional<PollutionTracker> pollution_;
  std::uint64_t hw_prefetches_issued_ = 0;
  std::vector<LineAddr> pf_scratch_;
  std::vector<MshrEntry> drain_scratch_;
  OccupancySeries occupancy_;
  Cycle next_occupancy_sample_ = 0;
};

}  // namespace spf
