// Cache pollution accounting, implementing the paper's three cases (§II.C):
//
//   "Cache pollution due to threaded prefetching can happen in several cases:
//    1. A prematurely prefetched block displaces data in the cache that will
//       be reused by the processor.
//    2. A prematurely prefetched block displaces data in the cache that is
//       just fetched by helper thread but still not be used by the processor.
//    3. A prematurely prefetched block displaces data in the cache that is
//       just prefetched by hardware prefetchers but still not be used by the
//       processor."
//
// Cases 2 and 3 are decidable at eviction time from the victim's metadata
// (an unused helper/hardware fill displaced by a prefetch fill). Case 1
// needs future knowledge — "will be reused" — so evictions of *useful* data
// by prefetch fills are remembered in a bounded shadow table; a later demand
// miss on a shadowed line confirms the reuse and counts the event.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "spf/cache/cache.hpp"
#include "spf/common/ring_buffer.hpp"
#include "spf/mem/geometry.hpp"
#include "spf/mem/types.hpp"

namespace spf {

struct PollutionStats {
  /// Prefetch fill displaced useful data that was later demand-missed.
  std::uint64_t case1_reuse_displaced = 0;
  /// Prefetch fill displaced an unused helper-thread fill.
  std::uint64_t case2_helper_displaced = 0;
  /// Prefetch fill displaced an unused hardware-prefetch fill.
  std::uint64_t case3_hw_displaced = 0;
  /// All evictions whose *evictor* was a prefetch fill (denominator).
  std::uint64_t prefetch_caused_evictions = 0;
  /// All evictions (any cause).
  std::uint64_t total_evictions = 0;

  [[nodiscard]] std::uint64_t total_pollution() const noexcept {
    return case1_reuse_displaced + case2_helper_displaced + case3_hw_displaced;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Auxiliary payload a companion observer can attach to a shadow entry. The
/// table moves it with the entry and hands it back on erase, but never reads
/// it — the fields mean whatever the attaching tracker says they mean (today:
/// ProvenanceTracker's displacement metadata; see docs/provenance.md). Riding
/// on the pollution shadow's hash work keeps the companion's per-eviction
/// cost at zero extra probes.
struct ShadowAux {
  std::uint32_t evict_lookup = 0;
  std::uint32_t evictor_gen = 0;
  std::uint32_t evictor_slot = 0;
};

/// Bounded open-addressing map from shadowed line to the origin of the fill
/// that evicted it. Linear probing with backward-shift deletion (no
/// tombstones), sized to at most half-full for the tracker's fixed capacity,
/// so lookups on the per-miss hot path touch one or two contiguous slots
/// instead of chasing unordered_map buckets. Never iterated — membership and
/// size are the only observable behaviour, so the probe order cannot leak
/// into artifacts.
class ShadowTable {
 public:
  explicit ShadowTable(std::uint32_t capacity);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// As-if-freshly-constructed with `capacity`, reusing slot storage. Aux
  /// storage is dropped; re-enable after reset if needed.
  void reset(std::uint32_t capacity);

  /// Allocate the per-slot aux array. Until enabled (the default), aux
  /// pointers passed to insert/erase are ignored and the table does no extra
  /// work beyond one predictable branch per operation.
  void enable_aux();

  /// Insert `line`, overwriting the stored origin if already present. With
  /// aux enabled and `aux` non-null, the payload is stored alongside.
  void insert_or_assign(LineAddr line, FillOrigin origin,
                        const ShadowAux* aux = nullptr);
  /// Remove `line` if present; returns true when it was. With aux enabled
  /// and `aux_out` non-null, the entry's payload is copied out first.
  bool erase(LineAddr line, ShadowAux* aux_out = nullptr);

 private:
  struct Slot {
    LineAddr line = 0;
    FillOrigin origin = FillOrigin::kDemand;
    bool occupied = false;
  };

  [[nodiscard]] std::size_t home_of(LineAddr line) const noexcept {
    // Fibonacci multiply-shift onto the power-of-two table.
    return (line * 0x9E3779B97F4A7C15ull) & mask_;
  }
  void erase_at(std::size_t hole);

  std::vector<Slot> slots_;
  std::size_t mask_;
  std::size_t size_ = 0;
  /// Slot-parallel payloads; empty (and cost-free) unless enable_aux() ran.
  std::vector<ShadowAux> aux_;
};

class PollutionTracker {
 public:
  /// `geometry` attributes every pollution event to its cache set, making
  /// the per-set damage distribution (the spatial counterpart of per-set
  /// Set Affinity) queryable afterwards.
  PollutionTracker(std::uint32_t shadow_capacity, const CacheGeometry& geometry);

  /// As-if-freshly-constructed, reusing shadow/per-set storage
  /// (ExperimentContext reuse seam).
  void reset(std::uint32_t shadow_capacity, const CacheGeometry& geometry);

  /// Let a companion tracker ride the shadow: entries inserted via the
  /// aux-carrying on_eviction overload keep their payload until the erase
  /// that removes them hands it back through on_demand_miss.
  void enable_shadow_aux();

  /// Feed every L2 eviction here. The two-argument overload attaches `aux`
  /// to the shadow entry when the eviction shadows its victim (requires
  /// enable_shadow_aux()); classification is identical in both.
  void on_eviction(const Eviction& ev) { on_eviction_impl(ev, nullptr); }
  void on_eviction(const Eviction& ev, const ShadowAux& aux) {
    on_eviction_impl(ev, &aux);
  }

  /// Feed every *demand* L2 totally-miss here. Returns true when the miss is
  /// attributed to case-1 pollution (the line was recently displaced by a
  /// prefetch fill); `aux_out` then receives the confirmed entry's payload.
  bool on_demand_miss(LineAddr line, ShadowAux* aux_out = nullptr);

  [[nodiscard]] const PollutionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t shadow_size() const noexcept { return shadow_.size(); }

  /// Pollution events attributed to `set`.
  [[nodiscard]] std::uint64_t set_pollution(std::uint64_t set) const;
  /// set -> pollution events, indexed by set number (the provenance
  /// heatmap snapshots this directly).
  [[nodiscard]] const std::vector<std::uint64_t>& per_set() const noexcept {
    return per_set_;
  }
  /// The n worst-hit sets, ordered by descending event count; equal counts
  /// break ties by ascending set index, so heatmap artifacts are stable
  /// across platforms and standard-library sort implementations.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  top_polluted_sets(std::size_t n) const;
  /// Number of sets with at least one pollution event.
  [[nodiscard]] std::uint64_t polluted_set_count() const;

 private:
  void attribute(LineAddr line);
  void on_eviction_impl(const Eviction& ev, const ShadowAux* aux);

  CacheGeometry geometry_;
  PollutionStats stats_;
  /// FIFO of shadowed lines bounding the shadow table.
  RingBuffer<LineAddr> shadow_order_;
  /// line -> origin of the fill that evicted it.
  ShadowTable shadow_;
  /// set -> pollution events (all three cases).
  std::vector<std::uint64_t> per_set_;
};

}  // namespace spf
