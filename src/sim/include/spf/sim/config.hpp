// Configuration of the CMP simulator: cache hierarchy geometry, latencies,
// MSHR capacity, memory channel, and per-run knobs. Defaults mirror the
// paper's Table I machine (one Core 2 die: two cores sharing a 4 MB 16-way
// L2 with 64 B lines).
#pragma once

#include <cstdint>
#include <optional>

#include "spf/cache/replacement.hpp"
#include "spf/mem/geometry.hpp"
#include "spf/memsys/memory.hpp"

namespace spf {

struct SimConfig {
  CacheGeometry l1 = CacheGeometry::core2_l1d();
  CacheGeometry l2 = CacheGeometry::core2_l2();
  /// L1 hit latency (cycles).
  Cycle l1_latency = 3;
  /// L2 hit latency beyond L1 (cycles); Core 2's L2 is ~14 cycles.
  Cycle l2_latency = 14;
  MemoryConfig memory{};
  /// Outstanding L2 misses (Core 2 supported ~16 per die).
  std::uint32_t l2_mshrs = 16;
  ReplacementKind replacement = ReplacementKind::kLru;
  /// Enable the per-core DPL + streamer hardware prefetchers.
  bool hw_prefetch = true;
  /// Capacity of the pollution tracker's eviction shadow table.
  std::uint32_t shadow_capacity = 8192;
  /// Track per-line prefetch-fill provenance (fate attribution, timeliness
  /// and victim reuse-distance histograms — see spf/sim/provenance.hpp).
  /// Observation-only: on or off, simulation outcomes are bit-identical; off
  /// (the default) skips the tracker entirely so hot paths pay one branch.
  bool provenance = false;
  /// Seed for the Random replacement policy (unused by deterministic ones).
  std::uint64_t seed = 0x5eed;
  /// When nonzero, snapshot the shared L2's occupancy composition roughly
  /// every this many cycles (see spf/sim/occupancy.hpp). 0 disables.
  Cycle occupancy_sample_interval = 0;
  /// Replay runs of consecutive same-core records as one scheduler batch
  /// (see docs/simulator.md). Produces bit-identical results to the
  /// record-at-a-time engine — the flag exists so the differential test can
  /// pin one engine against the other, not as a behaviour knob.
  bool batched_replay = true;
  /// Feed cores through the pull-based RecordSource seam (window-fed engine;
  /// see spf/trace/trace_cursor.hpp). Materialized traces become a
  /// single-window BufferCursor, cursor-backed streams (the fused helper) are
  /// synthesized window-by-window. Off selects the buffer-indexed reference
  /// engine, bit-identical to the streaming one — a differential-test pin
  /// like batched_replay, not a behaviour knob. Streams that carry only a
  /// `source` (no materialized trace) always take the streaming engine.
  bool streaming_cores = true;
};

/// Round-based staggering of a helper core against a leader (main) core:
/// a record in round k (outer_iter / round_iters == k) may not issue until
/// the leader's outer iteration has entered round k. This models SP's
/// per-round synchronization between main and helper threads.
struct RoundSync {
  CoreId leader = 0;
  std::uint32_t round_iters = 1;
};

}  // namespace spf
