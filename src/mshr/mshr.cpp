#include "spf/mshr/mshr.hpp"

#include <algorithm>
#include <limits>

#include "spf/common/assert.hpp"

namespace spf {

MshrFile::MshrFile(std::size_t capacity) : capacity_(capacity) {
  SPF_ASSERT(capacity > 0, "MSHR file needs positive capacity");
  entries_.reserve(capacity);
  lines_.reserve(capacity);
}

const MshrEntry* MshrFile::allocate(LineAddr line, Cycle issue, Cycle fill,
                                    FillOrigin origin, CoreId core) {
  SPF_DEBUG_ASSERT(find(line) == nullptr, "duplicate MSHR allocation");
  SPF_DEBUG_ASSERT(fill >= issue, "fill before issue");
  if (full()) {
    ++stats_.full_rejections;
    return nullptr;
  }
  entries_.push_back(MshrEntry{.line = line,
                               .issue_time = issue,
                               .fill_time = fill,
                               .origin = origin,
                               .core = core});
  lines_.push_back(line);
  next_completion_ = std::min(next_completion_, fill);
  ++stats_.allocations;
  stats_.peak_occupancy = std::max<std::uint64_t>(stats_.peak_occupancy,
                                                  entries_.size());
  return &entries_.back();
}

const MshrEntry& MshrFile::merge(LineAddr line, bool demand_requester) {
  MshrEntry* e = find_mut(line);
  SPF_ASSERT(e != nullptr, "merge into missing MSHR entry");
  ++e->merged;
  ++stats_.merges;
  if (demand_requester && e->origin != FillOrigin::kDemand &&
      !e->demand_merged) {
    e->demand_merged = true;
    ++stats_.demand_merges_into_prefetch;
  }
  return *e;
}

void MshrFile::mark_write(LineAddr line) {
  if (MshrEntry* e = find_mut(line)) e->write = true;
}

std::vector<MshrEntry> MshrFile::drain_completed(Cycle now) {
  std::vector<MshrEntry> done;
  drain_completed_into(now, done);
  return done;
}

void MshrFile::drain_completed_into(Cycle now, std::vector<MshrEntry>& out) {
  out.clear();
  // Stable in-place split (same result as stable_partition, but no temporary
  // buffer allocation): completed entries move to `out` in arrival order,
  // survivors keep their relative order.
  std::size_t keep = 0;
  Cycle next = std::numeric_limits<Cycle>::max();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].fill_time > now) {
      next = std::min(next, entries_[i].fill_time);
      if (keep != i) {
        entries_[keep] = entries_[i];
        lines_[keep] = lines_[i];
      }
      ++keep;
    } else {
      out.push_back(entries_[i]);
    }
  }
  entries_.resize(keep);
  lines_.resize(keep);
  next_completion_ = next;
  std::sort(out.begin(), out.end(),
            [](const MshrEntry& a, const MshrEntry& b) {
              return a.fill_time < b.fill_time;
            });
}

}  // namespace spf
