#include "spf/mshr/mshr.hpp"

#include <algorithm>
#include <limits>

#include "spf/common/assert.hpp"

namespace spf {

MshrFile::MshrFile(std::size_t capacity) : capacity_(capacity) {
  SPF_ASSERT(capacity > 0, "MSHR file needs positive capacity");
  entries_.reserve(capacity);
}

MshrEntry* MshrFile::find_mut(LineAddr line) noexcept {
  for (MshrEntry& e : entries_) {
    if (e.line == line) return &e;
  }
  return nullptr;
}

const MshrEntry* MshrFile::find(LineAddr line) const noexcept {
  return const_cast<MshrFile*>(this)->find_mut(line);
}

const MshrEntry* MshrFile::allocate(LineAddr line, Cycle issue, Cycle fill,
                                    FillOrigin origin, CoreId core) {
  SPF_DEBUG_ASSERT(find(line) == nullptr, "duplicate MSHR allocation");
  SPF_DEBUG_ASSERT(fill >= issue, "fill before issue");
  if (full()) {
    ++stats_.full_rejections;
    return nullptr;
  }
  entries_.push_back(MshrEntry{.line = line,
                               .issue_time = issue,
                               .fill_time = fill,
                               .origin = origin,
                               .core = core});
  ++stats_.allocations;
  stats_.peak_occupancy = std::max<std::uint64_t>(stats_.peak_occupancy,
                                                  entries_.size());
  return &entries_.back();
}

const MshrEntry& MshrFile::merge(LineAddr line, bool demand_requester) {
  MshrEntry* e = find_mut(line);
  SPF_ASSERT(e != nullptr, "merge into missing MSHR entry");
  ++e->merged;
  ++stats_.merges;
  if (demand_requester && e->origin != FillOrigin::kDemand &&
      !e->demand_merged) {
    e->demand_merged = true;
    ++stats_.demand_merges_into_prefetch;
  }
  return *e;
}

void MshrFile::mark_write(LineAddr line) {
  if (MshrEntry* e = find_mut(line)) e->write = true;
}

Cycle MshrFile::next_completion() const noexcept {
  Cycle best = std::numeric_limits<Cycle>::max();
  for (const MshrEntry& e : entries_) best = std::min(best, e.fill_time);
  return best;
}

std::vector<MshrEntry> MshrFile::drain_completed(Cycle now) {
  std::vector<MshrEntry> done;
  drain_completed_into(now, done);
  return done;
}

void MshrFile::drain_completed_into(Cycle now, std::vector<MshrEntry>& out) {
  out.clear();
  auto split = std::stable_partition(
      entries_.begin(), entries_.end(),
      [now](const MshrEntry& e) { return e.fill_time > now; });
  out.assign(split, entries_.end());
  entries_.erase(split, entries_.end());
  std::sort(out.begin(), out.end(),
            [](const MshrEntry& a, const MshrEntry& b) {
              return a.fill_time < b.fill_time;
            });
}

}  // namespace spf
