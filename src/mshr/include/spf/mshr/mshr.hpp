// Miss Status Holding Register file.
//
// Tracks cache fills that have been *issued* but not yet *serviced*. This is
// the structure that realizes the paper's access taxonomy (§V.B):
//
//   totally hit   — line valid in the cache at access time;
//   partially hit — "the demanded data arrive in cache after its memory
//                    request is issued but before its memory request is
//                    serviced": the access merges into an outstanding MSHR
//                    and waits only the residual latency;
//   totally miss  — no line, no outstanding request: full memory round trip.
//
// Capacity is finite (real L2s have 10-32 MSHRs). When full, demand misses
// stall until an entry frees; prefetches are simply dropped, which is also
// what real prefetchers do under MSHR pressure.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "spf/common/simd_match.hpp"
#include "spf/mem/types.hpp"

namespace spf {

struct MshrEntry {
  LineAddr line = 0;
  /// When the original miss was issued to memory.
  Cycle issue_time = 0;
  /// When the fill completes (data usable).
  Cycle fill_time = 0;
  /// Origin of the *first* requester (determines the fill's provenance tag).
  FillOrigin origin = FillOrigin::kDemand;
  CoreId core = 0;
  /// Number of later requests that merged into this entry.
  std::uint32_t merged = 0;
  /// True once a demand request merged into a prefetch-initiated entry; the
  /// fill is then accounted as wanted-by-processor.
  bool demand_merged = false;
  /// True when any requester was a store: the line installs dirty
  /// (write-allocate) and will be written back on eviction.
  bool write = false;
};

struct MshrStats {
  std::uint64_t allocations = 0;
  std::uint64_t merges = 0;
  std::uint64_t demand_merges_into_prefetch = 0;
  std::uint64_t full_rejections = 0;
  std::uint64_t peak_occupancy = 0;
};

class MshrFile {
 public:
  explicit MshrFile(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool full() const noexcept { return entries_.size() >= capacity_; }
  [[nodiscard]] const MshrStats& stats() const noexcept { return stats_; }

  /// Outstanding entry for `line`, or nullptr. Inline: the file is tiny
  /// (<=32 entries) and this runs once per L2-visible access. The scan runs
  /// over `lines_`, a packed mirror of entries_[i].line, vector-compared
  /// where the ISA allows (lines are unique, so any match order agrees).
  [[nodiscard]] const MshrEntry* find(LineAddr line) const noexcept {
    const std::size_t i = index_of(line);
    return i == kNotFound ? nullptr : &entries_[i];
  }

  /// Allocate a new entry. Returns nullptr when the file is full (counted as
  /// a rejection; the caller decides whether to stall or drop).
  const MshrEntry* allocate(LineAddr line, Cycle issue, Cycle fill,
                            FillOrigin origin, CoreId core);

  /// Merge a secondary request into the outstanding entry for `line`.
  /// `demand_requester` must be true only for accesses by a main computation
  /// thread that are not prefetch instructions — only those upgrade a
  /// prefetch-initiated fill to wanted-by-processor. Pre: find(line) !=
  /// nullptr. Returns the (updated) entry.
  const MshrEntry& merge(LineAddr line, bool demand_requester);

  /// Record that a store targets the outstanding line (write-allocate).
  /// No-op if the line has no entry.
  void mark_write(LineAddr line);

  /// Earliest outstanding completion time; Cycle max when empty. O(1): the
  /// minimum is maintained on allocate and recomputed when a drain removes
  /// entries (the simulator polls this once per access, drains far less).
  [[nodiscard]] Cycle next_completion() const noexcept {
    return next_completion_;
  }

  /// Remove and return every entry with fill_time <= now, in completion
  /// order (callers install the fills into the cache).
  std::vector<MshrEntry> drain_completed(Cycle now);

  /// Allocation-free variant for the simulator hot path: clears `out` and
  /// fills it with the completed entries in completion order.
  void drain_completed_into(Cycle now, std::vector<MshrEntry>& out);

  void clear() noexcept {
    entries_.clear();
    lines_.clear();
    next_completion_ = std::numeric_limits<Cycle>::max();
  }

  /// As-if-freshly-constructed with `capacity`, reusing the entry vector's
  /// storage (ExperimentContext reuse seam).
  void reset(std::size_t capacity) noexcept {
    capacity_ = capacity;
    clear();
    stats_ = MshrStats{};
  }

 private:
  static constexpr std::size_t kNotFound = ~std::size_t{0};

  [[nodiscard]] std::size_t index_of(LineAddr line) const noexcept {
    const std::size_t n = lines_.size();
#ifdef SPF_SIMD_MATCH
    if (!simd::force_scalar && n <= 64) {  // mask is 64-bit; big files scan
      const std::uint64_t m =
          simd::match_mask_u64(lines_.data(), static_cast<std::uint32_t>(n),
                               line);
      return m != 0 ? static_cast<std::size_t>(std::countr_zero(m))
                    : kNotFound;
    }
#endif
    for (std::size_t i = 0; i < n; ++i) {
      if (lines_[i] == line) return i;
    }
    return kNotFound;
  }

  [[nodiscard]] MshrEntry* find_mut(LineAddr line) noexcept {
    const std::size_t i = index_of(line);
    return i == kNotFound ? nullptr : &entries_[i];
  }

  std::size_t capacity_;
  std::vector<MshrEntry> entries_;  // small (<=32): linear scan wins
  std::vector<LineAddr> lines_;     // packed mirror of entries_[i].line
  Cycle next_completion_ = std::numeric_limits<Cycle>::max();
  MshrStats stats_;
};

}  // namespace spf
