// Declarative sweep orchestration over the SP experiment space.
//
// A SweepSpec describes a grid: workloads × L2 geometries × helper kinds ×
// prefetch ratios × prefetch distances × distance controllers. run_sweep()
// expands the grid into cells in a fixed nested order (workload ▸ geometry ▸
// helper ▸ RP ▸ distance ▸ controller), fans the per-cell simulations out
// over a thread pool, and
// collects results into slots indexed by cell id — so the aggregated table /
// CSV / JSONL artifacts are byte-identical regardless of thread count or
// completion order (the simulator itself is deterministic; see
// docs/simulator.md).
//
// Work sharing mirrors the benches' hand-rolled loops: the trace is emitted
// once per workload, and the baseline (original, no helper) run plus the
// Set-Affinity distance bound are computed once per workload × geometry and
// shared by every cell in that plane.
//
// Failure semantics: an exception inside any job (trace emission, baseline,
// or cell simulation) marks only the dependent cells failed — the sweep
// always completes and reports per-cell errors. See docs/orchestrator.md.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "spf/common/csv.hpp"
#include "spf/core/adaptive.hpp"
#include "spf/core/distance_bound.hpp"
#include "spf/core/experiment.hpp"
#include "spf/mem/geometry.hpp"
#include "spf/orchestrate/pool.hpp"
#include "spf/trace/trace.hpp"
#include "spf/trace/trace_source.hpp"

namespace spf {
class ExperimentContextPool;
}  // namespace spf

namespace spf::orchestrate {

enum class HelperKind : std::uint8_t {
  kBlockingLoad,        // the paper's helper: ordinary loads, self-throttling
  kPrefetchInstruction  // leaf dereferences as non-binding prefetches
};

[[nodiscard]] const char* to_string(HelperKind kind) noexcept;

/// How a cell picks its prefetch distance over the run.
enum class ControllerKind : std::uint8_t {
  kStatic,        // fixed A_SKI for the whole run (the paper's SP cells)
  kAdaptiveAimd,  // AIMD feedback walk from the cell's distance, free range
  kAdaptiveCapped,  // AIMD walk with max_distance clamped to the cell's
                    // Set-Affinity bound (the paper's thesis as a controller)
  kAdaptivePhaseCapped  // AIMD walk re-clamped at interval boundaries to the
                        // active phase's bound (phase-incremental analyzer;
                        // see docs/method.md "Per-phase Set Affinity")
};

[[nodiscard]] const char* to_string(ControllerKind kind) noexcept;

/// A workload's emitted trace plus the invocation boundaries the Set-Affinity
/// analysis needs — now defined at the trace layer (spf/trace/trace_source.hpp)
/// so the ExperimentContextPool trace memo can share the type.
using spf::TraceSource;

struct WorkloadSpec {
  std::string name;
  /// Trace-memoization key. When non-empty, run_sweep fetches the source
  /// through the experiment-context pool's trace memo
  /// (ExperimentContextPool::trace_for): the trace is emitted once per key
  /// and every plane/cell lookup — and every later sweep sharing the pool via
  /// SweepOptions::pool — reuses it. The key must encode every config field
  /// that affects the emitted trace (the ready-made specs in
  /// workload_specs.hpp do); empty disables memoization for this workload.
  std::string memo_key;
  /// Emits the trace; runs as one job, concurrently with other workloads.
  /// Must be deterministic and must not share mutable state with other specs.
  /// The sweep materializes the result once and shares the immutable source
  /// across every grid cell — returning shared_ptr keeps multi-million-record
  /// traces from being deep-copied per call. Returning nullptr is an error
  /// (treated like a thrown emission failure).
  std::function<std::shared_ptr<const TraceSource>()> make;
};

/// Wraps an already-emitted trace (no re-emission inside the sweep; the spec
/// holds one shared immutable copy handed out by every make() call).
[[nodiscard]] WorkloadSpec from_source(std::string name, TraceSource source);

struct SweepSpec {
  std::vector<WorkloadSpec> workloads;
  /// Explicit A_SKI values. Empty -> auto: spf::bench-style ladder around the
  /// Set-Affinity bound of each workload × geometry plane.
  std::vector<std::uint32_t> distances;
  std::vector<double> rps = {0.5};
  std::vector<CacheGeometry> geometries = {CacheGeometry(1 << 20, 16, 64)};
  std::vector<HelperKind> helpers = {HelperKind::kBlockingLoad};
  /// Hardware prefetchers in the baseline run (the paper's normalization).
  bool baseline_hw_prefetch = true;
  /// Compute cycles the helper spends per kept record.
  std::uint16_t helper_compute_gap = 0;
  /// Distance-controller axis, innermost in the grid order. Adaptive cells
  /// replay the trace in intervals through ExperimentContext::run_adaptive
  /// and record the controller's distance trajectory in
  /// CellResult::adaptive; static cells are the classic fixed-distance SP
  /// runs.
  std::vector<ControllerKind> controllers = {ControllerKind::kStatic};
  /// Shared controller policy for adaptive cells. initial_distance and rp
  /// are overwritten per cell (from the cell's distance / RP axes);
  /// kAdaptiveCapped additionally clamps max_distance to the cell's
  /// Set-Affinity bound.
  AdaptiveConfig adaptive{};
  /// Track prefetch-lifecycle provenance (SimConfig::provenance) in every
  /// baseline and cell run. Each ok cell's summaries then carry a
  /// ProvenanceSummary and the JSONL rows grow `prov_*` fate counts and
  /// histograms (appended after all other fields; rows are byte-identical to
  /// a provenance-off sweep up to that suffix). Observation-only: tables,
  /// CSV, and every simulation metric are byte-identical on or off.
  bool provenance = false;
  /// Windowing/hysteresis knobs for the per-plane phase analysis. Every
  /// plane runs the phase-incremental analyzer (its whole-run result is the
  /// plane bound, bit-identical to the legacy analysis; the phase partition
  /// additionally lands in SweepCell::phase_count), and
  /// kAdaptivePhaseCapped cells feed the per-phase bounds to the controller
  /// as AdaptiveConfig::phase_caps.
  PhaseAffinityConfig phase{};

  /// Structural check of the grid description. Returns the empty string when
  /// the spec can run, otherwise a one-line description of the first problem
  /// found (empty workloads / rps / geometries / helpers / controllers, an RP
  /// outside (0, 1], a zero-way or zero-line geometry, a duplicate or zero
  /// explicit distance, a duplicate controller, an invalid adaptive policy
  /// when an adaptive controller is present). run_sweep() calls this and
  /// throws std::invalid_argument on a non-empty result; CLI drivers call it
  /// directly to turn flag mistakes into usage errors (exit 2) instead of a
  /// mid-sweep crash.
  [[nodiscard]] std::string validate() const;
};

struct SweepCell {
  std::size_t id = 0;
  std::string workload;
  CacheGeometry l2 = CacheGeometry(1 << 20, 16, 64);
  HelperKind helper = HelperKind::kBlockingLoad;
  double rp = 0.5;
  std::uint32_t distance = 0;  // A_SKI (adaptive cells: the starting distance)
  /// Set-Affinity upper limit of this cell's workload × geometry plane.
  std::uint32_t bound_upper = 0;
  /// Phases the plane's phase-incremental analysis detected (>= 1 on a
  /// healthy plane; 0 when the plane failed).
  std::uint32_t phase_count = 0;
  ControllerKind controller = ControllerKind::kStatic;
};

/// Distance-walk evidence an adaptive cell carries alongside its metrics.
struct AdaptiveCellStats {
  std::vector<std::uint32_t> trajectory;  // distance per interval, in order
  std::uint32_t final_distance = 0;
  double mean_distance = 0.0;
  std::uint64_t intervals = 0;
  std::uint64_t increases = 0;
  std::uint64_t decreases = 0;
  /// Effective max_distance the controller ran with (for kAdaptiveCapped,
  /// the Set-Affinity clamp; otherwise the spec's policy ceiling —
  /// kAdaptivePhaseCapped keeps the policy ceiling here and carries its
  /// per-phase ceilings in phase_caps).
  std::uint32_t distance_cap = 0;
  /// kAdaptivePhaseCapped only: the per-phase ceilings handed to the
  /// controller, and the re-clamps it applied at interval boundaries.
  std::vector<PhaseDistanceCap> phase_caps;
  std::vector<PhaseReclampEvent> reclamps;
};

struct CellResult {
  SweepCell cell;
  bool ok = false;
  std::string error;  // failure reason when !ok
  /// Engaged exactly when ok — a failed cell has no numbers to misread.
  std::optional<SpComparison> cmp;
  /// Engaged exactly when ok and the cell's controller is adaptive.
  std::optional<AdaptiveCellStats> adaptive;
};

struct SweepResult {
  /// One slot per cell, in grid order (ids are dense and ascending).
  std::vector<CellResult> cells;

  [[nodiscard]] std::size_t failed_count() const;
  /// Aggregated artifact: one row per cell, grid order, failed cells
  /// rendered with "-" metrics and the error in the status column.
  [[nodiscard]] Table to_table() const;
  [[nodiscard]] std::string to_csv() const;
  /// One JSON object per cell, grid order.
  void write_jsonl(std::ostream& out) const;
  [[nodiscard]] std::string to_jsonl() const;
};

struct SweepOptions {
  /// 0 = hardware concurrency; 1 = legacy serial path on the caller thread.
  unsigned threads = 0;
  ProgressFn progress;
  /// Runs on the worker thread immediately before each cell's simulation; a
  /// throw marks that cell failed. Seam for fault-injection tests and
  /// cooperative cancellation.
  std::function<void(const SweepCell&)> cell_hook;
  /// Shared experiment-context pool. When set, run_sweep leases worker
  /// contexts from it (instead of a private per-sweep pool) and keyed
  /// workloads resolve through its trace memo — so consecutive sweeps over
  /// the same workloads stop re-emitting their traces. The pool outlives the
  /// sweep; results are byte-identical either way.
  std::shared_ptr<ExperimentContextPool> pool;
  /// Forwarded to SimConfig::streaming_cores for every plane/cell run: on
  /// (default), helper streams are synthesized inside replay through the
  /// cursor window; off selects the materialized reference path. Artifacts
  /// are byte-identical either way (golden sweep test pins both).
  bool streaming_cores = true;
};

/// Throws std::invalid_argument when spec.validate() reports a problem.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec,
                                    const SweepOptions& opts = {});

}  // namespace spf::orchestrate
