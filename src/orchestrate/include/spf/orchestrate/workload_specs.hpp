// Ready-made WorkloadSpecs for the paper's benchmarks. Each spec captures a
// config by value and emits its trace inside the sweep's workload job, so
// trace construction parallelizes across workloads.
#pragma once

#include <string>

#include "spf/orchestrate/sweep.hpp"
#include "spf/workloads/em3d.hpp"
#include "spf/workloads/mcf.hpp"
#include "spf/workloads/mst.hpp"

namespace spf::orchestrate {

[[nodiscard]] WorkloadSpec em3d_spec(const Em3dConfig& config,
                                     std::string name = "em3d");
[[nodiscard]] WorkloadSpec mcf_spec(const McfConfig& config,
                                    std::string name = "mcf");
[[nodiscard]] WorkloadSpec mst_spec(const MstConfig& config,
                                    std::string name = "mst");

}  // namespace spf::orchestrate
