// Deterministic fan-out of independent jobs over a fixed-size thread pool.
//
// Jobs are identified by their index; each job writes only into its own
// pre-allocated slot, so the aggregated output depends on the job *indices*
// alone — never on completion order or thread count. `threads <= 1` runs the
// legacy serial path on the caller's thread (no pool, no locks), which the
// determinism tests compare byte-for-byte against parallel runs.
//
// Failure semantics: an exception thrown by one job is captured into that
// job's JobOutcome; the remaining jobs still run. The sweep layer maps a
// failed job to a failed cell instead of sinking the whole sweep.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace spf::orchestrate {

/// Called after each job completes, serialized under a mutex:
/// (jobs completed so far, total jobs).
using ProgressFn = std::function<void(std::size_t done, std::size_t total)>;

struct JobOutcome {
  bool ok = true;
  /// exception message when !ok (exception type name for non-std throws).
  std::string error;
};

/// 0 -> std::thread::hardware_concurrency() (at least 1); otherwise passthrough.
[[nodiscard]] unsigned resolve_threads(unsigned requested) noexcept;

/// Runs body(0) .. body(count-1) on up to `threads` workers and returns one
/// outcome per job, indexed by job id. Jobs are dispatched by an atomic
/// cursor; `body` must be safe to call concurrently for distinct indices.
std::vector<JobOutcome> run_indexed(std::size_t count, unsigned threads,
                                    const std::function<void(std::size_t)>& body,
                                    const ProgressFn& progress = {});

/// Progress reporter writing "\r<label> <done>/<total>" to stderr, with a
/// trailing newline once done == total.
[[nodiscard]] ProgressFn stderr_progress(std::string label);

/// First error among outcomes ("" when all ok) — convenience for harnesses
/// that want fail-fast semantics on top of the isolating runner.
[[nodiscard]] std::string first_error(const std::vector<JobOutcome>& outcomes);

}  // namespace spf::orchestrate
