#include "spf/orchestrate/pool.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "spf/telemetry/telemetry.hpp"

namespace spf::orchestrate {
namespace {

JobOutcome run_one(const std::function<void(std::size_t)>& body,
                   std::size_t index) {
  JobOutcome outcome;
  try {
    body(index);
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
    if (outcome.error.empty()) outcome.error = "unknown std::exception";
  } catch (...) {
    outcome.ok = false;
    outcome.error = "non-standard exception";
  }
  return outcome;
}

}  // namespace

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

std::vector<JobOutcome> run_indexed(std::size_t count, unsigned threads,
                                    const std::function<void(std::size_t)>& body,
                                    const ProgressFn& progress) {
  std::vector<JobOutcome> outcomes(count);
  threads = resolve_threads(threads);

  if (threads <= 1 || count <= 1) {
    // Legacy serial path: caller's thread, no synchronization.
    for (std::size_t i = 0; i < count; ++i) {
      outcomes[i] = run_one(body, i);
      if (progress) progress(i + 1, count);
    }
    return outcomes;
  }

  std::atomic<std::size_t> cursor{0};
  std::mutex progress_mutex;
  std::size_t done = 0;  // guarded by progress_mutex; keeps reports monotone

  auto worker = [&](std::size_t lane_id) {
    // Worker w records into telemetry lane w + 1 for the whole drain (lane 0
    // belongs to the thread that installed the session) — so the exported
    // timeline shows one lane per run_indexed worker, stable across the
    // sweep's phases. A no-op when no session is installed.
    const telemetry::LaneScope lane(lane_id);
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      outcomes[i] = run_one(body, i);
      if (progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        progress(++done, count);
      }
    }
  };

  const std::size_t n_workers =
      std::min<std::size_t>(threads, count);
  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  try {
    for (std::size_t w = 0; w < n_workers; ++w) pool.emplace_back(worker, w + 1);
  } catch (...) {
    // Thread creation failed mid-spawn (resource exhaustion): park the
    // cursor past the end so started workers drain and exit, join them,
    // then surface the original error.
    cursor.store(count, std::memory_order_relaxed);
    for (auto& t : pool) t.join();
    throw;
  }
  for (auto& t : pool) t.join();
  return outcomes;
}

ProgressFn stderr_progress(std::string label) {
  // Throughput is measured from when the reporter was created (= just before
  // the sweep starts in every driver). With telemetry compiled in, the rate
  // reads the telemetry steady clock (same time base as the exported
  // timelines); with SPF_TELEMETRY=0 it must not lean on telemetry subsystem
  // semantics, so it falls back to std::chrono::steady_clock directly. The
  // reporter is serialized under the progress mutex, so the shared clock
  // read needs no extra synchronization.
#if SPF_TELEMETRY
  auto start = std::make_shared<telemetry::Clock>(telemetry::Clock::Mode::kSteady);
  auto elapsed_sec = [start = std::move(start)]() { return start->seconds(); };
#else
  auto elapsed_sec = [origin = std::chrono::steady_clock::now()]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         origin)
        .count();
  };
#endif
  return [label = std::move(label),
          elapsed_sec = std::move(elapsed_sec)](std::size_t done,
                                                std::size_t total) {
    const double sec = elapsed_sec();
    if (sec > 0.0) {
      std::fprintf(stderr, "\r%s %zu/%zu (%.2f/s)", label.c_str(), done, total,
                   static_cast<double>(done) / sec);
    } else {
      std::fprintf(stderr, "\r%s %zu/%zu", label.c_str(), done, total);
    }
    if (done == total) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  };
}

std::string first_error(const std::vector<JobOutcome>& outcomes) {
  for (const auto& o : outcomes) {
    if (!o.ok) return o.error;
  }
  return "";
}

}  // namespace spf::orchestrate
