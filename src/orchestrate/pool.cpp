#include "spf/orchestrate/pool.hpp"

#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace spf::orchestrate {
namespace {

JobOutcome run_one(const std::function<void(std::size_t)>& body,
                   std::size_t index) {
  JobOutcome outcome;
  try {
    body(index);
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = e.what();
    if (outcome.error.empty()) outcome.error = "unknown std::exception";
  } catch (...) {
    outcome.ok = false;
    outcome.error = "non-standard exception";
  }
  return outcome;
}

}  // namespace

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

std::vector<JobOutcome> run_indexed(std::size_t count, unsigned threads,
                                    const std::function<void(std::size_t)>& body,
                                    const ProgressFn& progress) {
  std::vector<JobOutcome> outcomes(count);
  threads = resolve_threads(threads);

  if (threads <= 1 || count <= 1) {
    // Legacy serial path: caller's thread, no synchronization.
    for (std::size_t i = 0; i < count; ++i) {
      outcomes[i] = run_one(body, i);
      if (progress) progress(i + 1, count);
    }
    return outcomes;
  }

  std::atomic<std::size_t> cursor{0};
  std::mutex progress_mutex;
  std::size_t done = 0;  // guarded by progress_mutex; keeps reports monotone

  auto worker = [&] {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      outcomes[i] = run_one(body, i);
      if (progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        progress(++done, count);
      }
    }
  };

  const std::size_t n_workers =
      std::min<std::size_t>(threads, count);
  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  try {
    for (std::size_t w = 0; w < n_workers; ++w) pool.emplace_back(worker);
  } catch (...) {
    // Thread creation failed mid-spawn (resource exhaustion): park the
    // cursor past the end so started workers drain and exit, join them,
    // then surface the original error.
    cursor.store(count, std::memory_order_relaxed);
    for (auto& t : pool) t.join();
    throw;
  }
  for (auto& t : pool) t.join();
  return outcomes;
}

ProgressFn stderr_progress(std::string label) {
  return [label = std::move(label)](std::size_t done, std::size_t total) {
    std::fprintf(stderr, "\r%s %zu/%zu", label.c_str(), done, total);
    if (done == total) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  };
}

std::string first_error(const std::vector<JobOutcome>& outcomes) {
  for (const auto& o : outcomes) {
    if (!o.ok) return o.error;
  }
  return "";
}

}  // namespace spf::orchestrate
