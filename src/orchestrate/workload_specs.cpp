#include "spf/orchestrate/workload_specs.hpp"

#include <memory>
#include <sstream>
#include <utility>

namespace spf::orchestrate {
namespace {

template <typename Workload, typename Config>
WorkloadSpec spec_for(Config config, std::string name, std::string memo_key) {
  WorkloadSpec spec;
  spec.name = std::move(name);
  spec.memo_key = std::move(memo_key);
  spec.make = [config]() {
    const Workload workload(config);
    return std::make_shared<const TraceSource>(
        TraceSource{workload.emit_trace(), workload.invocation_starts()});
  };
  return spec;
}

// Memo keys must cover every config field that affects the emitted trace —
// and nothing else (notably not the display name): two specs with identical
// configs share one emission regardless of what they are called. Adding a
// field to a config struct requires extending its key here (see
// docs/simulator.md "Streaming traces & trace memoization").

std::string em3d_key(const Em3dConfig& c) {
  std::ostringstream key;
  key << "em3d/nodes=" << c.nodes << "/arity=" << c.arity
      << "/passes=" << c.passes << "/compute=" << c.compute_cycles_per_dep
      << "/seed=" << c.seed << "/shuffle=" << c.shuffle_placement
      << "/prelude=" << c.prelude_arity;
  return key.str();
}

std::string mcf_key(const McfConfig& c) {
  std::ostringstream key;
  key << "mcf/nodes=" << c.nodes << "/arcs=" << c.arcs
      << "/passes=" << c.passes << "/update=" << c.update_interval
      << "/pivots=" << c.pivots_per_pass
      << "/compute=" << c.compute_cycles_per_arc << "/seed=" << c.seed;
  return key.str();
}

std::string mst_key(const MstConfig& c) {
  std::ostringstream key;
  key << "mst/vertices=" << c.vertices << "/degree=" << c.degree
      << "/buckets=" << c.buckets << "/steps=" << c.max_steps
      << "/compute=" << c.compute_cycles_per_lookup << "/seed=" << c.seed;
  return key.str();
}

}  // namespace

WorkloadSpec em3d_spec(const Em3dConfig& config, std::string name) {
  return spec_for<Em3dWorkload>(config, std::move(name), em3d_key(config));
}

WorkloadSpec mcf_spec(const McfConfig& config, std::string name) {
  return spec_for<McfWorkload>(config, std::move(name), mcf_key(config));
}

WorkloadSpec mst_spec(const MstConfig& config, std::string name) {
  return spec_for<MstWorkload>(config, std::move(name), mst_key(config));
}

}  // namespace spf::orchestrate
