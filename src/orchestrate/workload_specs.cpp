#include "spf/orchestrate/workload_specs.hpp"

#include <memory>
#include <utility>

namespace spf::orchestrate {
namespace {

template <typename Workload, typename Config>
WorkloadSpec spec_for(Config config, std::string name) {
  WorkloadSpec spec;
  spec.name = std::move(name);
  spec.make = [config]() {
    const Workload workload(config);
    return std::make_shared<const TraceSource>(
        TraceSource{workload.emit_trace(), workload.invocation_starts()});
  };
  return spec;
}

}  // namespace

WorkloadSpec em3d_spec(const Em3dConfig& config, std::string name) {
  return spec_for<Em3dWorkload>(config, std::move(name));
}

WorkloadSpec mcf_spec(const McfConfig& config, std::string name) {
  return spec_for<McfWorkload>(config, std::move(name));
}

WorkloadSpec mst_spec(const MstConfig& config, std::string name) {
  return spec_for<MstWorkload>(config, std::move(name));
}

}  // namespace spf::orchestrate
