#include "spf/orchestrate/sweep.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "spf/common/jsonl.hpp"
#include "spf/core/experiment_context.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/telemetry/telemetry.hpp"

namespace spf::orchestrate {
namespace {

/// Distance ladder spanning both sides of the pollution bound (the benches'
/// paper-figure ladder): fractions/multiples of the upper limit, deduplicated.
std::vector<std::uint32_t> auto_distances(std::uint32_t bound) {
  std::vector<std::uint32_t> d;
  for (const double f : {0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 8.0}) {
    const auto v = static_cast<std::uint32_t>(f * bound);
    if (v >= 1 && (d.empty() || v != d.back())) d.push_back(v);
  }
  if (d.empty()) d.push_back(1);
  return d;
}

/// Baseline + distance bound shared by every cell of one workload × geometry
/// plane. The bound analysis is the phased one: bound.whole is bit-identical
/// to the legacy estimate_distance_bound, and the phase partition feeds
/// kAdaptivePhaseCapped cells (and the phase_count artifact field).
struct Plane {
  PhasedDistanceBound bound;
  SpRunSummary baseline;
};

}  // namespace

const char* to_string(HelperKind kind) noexcept {
  switch (kind) {
    case HelperKind::kBlockingLoad: return "blocking-load";
    case HelperKind::kPrefetchInstruction: return "prefetch-instruction";
  }
  return "?";
}

const char* to_string(ControllerKind kind) noexcept {
  switch (kind) {
    case ControllerKind::kStatic: return "static";
    case ControllerKind::kAdaptiveAimd: return "adaptive-aimd";
    case ControllerKind::kAdaptiveCapped: return "adaptive-capped";
    case ControllerKind::kAdaptivePhaseCapped: return "adaptive-phase-capped";
  }
  return "?";
}

std::string SweepSpec::validate() const {
  if (workloads.empty()) return "sweep spec has no workloads";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    if (!workloads[i].make) {
      return "workload '" + workloads[i].name + "' has no make() function";
    }
  }
  if (rps.empty()) return "sweep spec has no prefetch ratios (rps)";
  for (const double rp : rps) {
    if (!(rp > 0.0) || rp > 1.0) {
      std::ostringstream out;
      out << "prefetch ratio " << rp << " is outside (0, 1]";
      return out.str();
    }
  }
  if (geometries.empty()) return "sweep spec has no L2 geometries";
  for (const CacheGeometry& g : geometries) {
    if (g.ways() == 0 || g.line_bytes() == 0 || g.num_sets() == 0) {
      return "geometry " + g.to_string() + " has a zero dimension";
    }
  }
  if (helpers.empty()) return "sweep spec has no helper kinds";
  std::unordered_set<std::uint32_t> seen;
  for (const std::uint32_t d : distances) {
    if (d == 0) return "explicit distance 0 is invalid (A_SKI must be >= 1)";
    if (!seen.insert(d).second) {
      return "duplicate explicit distance " + std::to_string(d);
    }
  }
  if (controllers.empty()) return "sweep spec has no controllers";
  std::unordered_set<std::uint8_t> seen_controllers;
  bool any_adaptive = false;
  for (const ControllerKind c : controllers) {
    if (!seen_controllers.insert(static_cast<std::uint8_t>(c)).second) {
      return std::string("duplicate controller ") + to_string(c);
    }
    if (c != ControllerKind::kStatic) any_adaptive = true;
  }
  if (any_adaptive) {
    // initial_distance / rp are per-cell overrides, so only the policy
    // fields of spec.adaptive need to hold; validate() covers them all, and
    // a per-cell clamp keeps the overrides legal.
    if (const std::string problem = adaptive.validate(); !problem.empty()) {
      return "adaptive controller policy: " + problem;
    }
  }
  if (const std::string problem = phase.validate(); !problem.empty()) {
    return "phase affinity: " + problem;
  }
  return "";
}

WorkloadSpec from_source(std::string name, TraceSource source) {
  WorkloadSpec spec;
  spec.name = std::move(name);
  spec.make = [src = std::make_shared<const TraceSource>(std::move(source))]() {
    return src;
  };
  return spec;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& opts) {
  if (const std::string problem = spec.validate(); !problem.empty()) {
    throw std::invalid_argument("invalid sweep spec: " + problem);
  }
  const std::size_t n_workloads = spec.workloads.size();
  const std::size_t n_geoms = spec.geometries.size();
  const unsigned threads = resolve_threads(opts.threads);
  // One reusable simulation context per worker: leased per job, so caches,
  // MSHR file, arena chunks and the helper-trace scratch survive from cell
  // to cell instead of being rebuilt thousands of times. A caller-provided
  // shared pool additionally carries its trace memo (and warm contexts)
  // across sweeps.
  std::shared_ptr<ExperimentContextPool> pool = opts.pool;
  if (!pool) pool = std::make_shared<ExperimentContextPool>(threads);
  ExperimentContextPool& contexts = *pool;

  // Phase 1: resolve each workload's trace (one job per workload). Keyed
  // workloads go through the pool's memo — emitted at most once per key for
  // the pool's lifetime; unkeyed ones emit here. Either way the shared_ptr
  // is the single copy every plane and cell reads from.
  std::vector<std::shared_ptr<const TraceSource>> sources(n_workloads);
  const auto trace_outcomes =
      run_indexed(n_workloads, threads, [&](std::size_t w) {
        SPF_SPAN("trace-materialize", "workload", w);
        sources[w] =
            contexts.trace_for(spec.workloads[w].memo_key, spec.workloads[w].make);
      });

  // Planes and cells of a keyed workload re-fetch the source through the
  // memo — a map lookup against the already-emitted entry — so the memo's
  // hit statistics count every consumer that skipped a re-emission. Callers
  // must have verified the workload's phase-1 outcome first (a failed keyed
  // emission is erased from the memo, and re-fetching it would re-emit).
  auto source_for = [&](std::size_t w) -> std::shared_ptr<const TraceSource> {
    const WorkloadSpec& workload = spec.workloads[w];
    return workload.memo_key.empty()
               ? sources[w]
               : contexts.trace_for(workload.memo_key, workload.make);
  };

  // Phase 2: per-plane baseline run + Set-Affinity bound.
  const std::size_t n_planes = n_workloads * n_geoms;
  std::vector<Plane> planes(n_planes);
  const auto plane_outcomes = run_indexed(
      n_planes, threads, [&](std::size_t p) {
        SPF_SPAN("plane", "plane", p);
        const std::size_t w = p / n_geoms;
        const std::size_t g = p % n_geoms;
        if (!trace_outcomes[w].ok) {
          throw std::runtime_error("workload '" + spec.workloads[w].name +
                                   "' failed: " + trace_outcomes[w].error);
        }
        const std::shared_ptr<const TraceSource> src_ptr = source_for(w);
        const TraceSource& src = *src_ptr;
        Plane& plane = planes[p];
        plane.bound = estimate_phase_bounds(src.trace, src.invocation_starts,
                                            spec.geometries[g], spec.phase);
        SpExperimentConfig cfg;
        cfg.sim.l2 = spec.geometries[g];
        cfg.sim.streaming_cores = opts.streaming_cores;
        cfg.sim.provenance = spec.provenance;
        cfg.baseline_hw_prefetch = spec.baseline_hw_prefetch;
        plane.baseline = contexts.acquire()->run_original(src.trace, cfg);
      });

  // Phase 3: expand the grid in fixed nested order. Cells of a failed plane
  // are materialized anyway (auto mode gets a single placeholder distance)
  // so the artifact shape — and the cell ids — stay deterministic.
  std::vector<SweepCell> cells;
  std::vector<std::size_t> cell_plane;
  std::vector<std::string> cell_inherited;
  for (std::size_t w = 0; w < n_workloads; ++w) {
    for (std::size_t g = 0; g < n_geoms; ++g) {
      const std::size_t p = w * n_geoms + g;
      const bool plane_ok = plane_outcomes[p].ok;
      std::vector<std::uint32_t> distances = spec.distances;
      if (distances.empty()) {
        distances =
            plane_ok ? auto_distances(planes[p].bound.whole.upper_limit)
                     : std::vector<std::uint32_t>{0};
      }
      for (const HelperKind helper : spec.helpers) {
        for (const double rp : spec.rps) {
          for (const std::uint32_t distance : distances) {
            for (const ControllerKind controller : spec.controllers) {
              SweepCell cell;
              cell.id = cells.size();
              cell.workload = spec.workloads[w].name;
              cell.l2 = spec.geometries[g];
              cell.helper = helper;
              cell.rp = rp;
              cell.distance = distance;
              cell.bound_upper =
                  plane_ok ? planes[p].bound.whole.upper_limit : 0;
              cell.phase_count = plane_ok ? planes[p].bound.phase_count() : 0;
              cell.controller = controller;
              cells.push_back(cell);
              cell_plane.push_back(p);
              cell_inherited.push_back(plane_ok ? "" : plane_outcomes[p].error);
            }
          }
        }
      }
    }
  }

  // Phase 4: one SP simulation per cell, results into id-indexed slots.
  SweepResult result;
  result.cells.resize(cells.size());
  const auto cell_outcomes = run_indexed(
      cells.size(), threads,
      [&](std::size_t i) {
        const SweepCell& cell = cells[i];
        SPF_SPAN("cell", "id", cell.id);
        if (!cell_inherited[i].empty()) {
          throw std::runtime_error(cell_inherited[i]);
        }
        if (opts.cell_hook) opts.cell_hook(cell);
        const std::size_t p = cell_plane[i];
        const std::shared_ptr<const TraceSource> src_ptr =
            source_for(p / n_geoms);
        const TraceSource& src = *src_ptr;
        SpExperimentConfig cfg;
        cfg.sim.l2 = cell.l2;
        cfg.sim.streaming_cores = opts.streaming_cores;
        cfg.sim.provenance = spec.provenance;
        cfg.helper.use_prefetch_instructions =
            cell.helper == HelperKind::kPrefetchInstruction;
        cfg.helper.helper_compute_gap = spec.helper_compute_gap;
        cfg.baseline_hw_prefetch = spec.baseline_hw_prefetch;
        SpComparison cmp;
        cmp.original = planes[p].baseline;
        if (cell.controller == ControllerKind::kStatic) {
          cfg.params = SpParams::from_distance_rp(cell.distance, cell.rp);
          cmp.sp = contexts.acquire()->run_sp_once(src.trace, cfg);
        } else {
          // Adaptive cells leave cfg.params default — run_adaptive derives
          // SpParams per interval from the controller's distance walk.
          AdaptiveConfig acfg = spec.adaptive;
          acfg.initial_distance = cell.distance;
          acfg.rp = cell.rp;
          if (cell.controller == ControllerKind::kAdaptiveCapped &&
              cell.bound_upper > 0) {
            acfg.max_distance = std::max(
                acfg.min_distance,
                std::min(acfg.max_distance, cell.bound_upper));
          }
          if (cell.controller == ControllerKind::kAdaptivePhaseCapped) {
            // The policy ceiling stays; each phase's bound re-clamps the walk
            // at interval boundaries (run_adaptive intersects the caps with
            // the policy range).
            acfg.phase_caps.reserve(planes[p].bound.phases.size());
            for (const PhaseDistanceBound& ph : planes[p].bound.phases) {
              acfg.phase_caps.push_back(
                  PhaseDistanceCap{ph.begin_iter, ph.upper_limit});
            }
          }
          const AdaptiveRunResult run =
              contexts.acquire()->run_adaptive(src.trace, cfg, acfg);
          cmp.sp = run.aggregate;
          AdaptiveCellStats stats;
          stats.trajectory = run.distance_trajectory;
          stats.final_distance = run.final_distance();
          stats.mean_distance = run.mean_distance();
          stats.intervals = run.intervals;
          stats.increases = run.increases;
          stats.decreases = run.decreases;
          stats.distance_cap = acfg.max_distance;
          stats.phase_caps = std::move(acfg.phase_caps);
          stats.reclamps = run.reclamps;
          result.cells[i].adaptive = std::move(stats);
        }
        result.cells[i].cmp = cmp;  // engaged only when the run succeeded
      },
      opts.progress);

  std::size_t failed = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    result.cells[i].cell = cells[i];
    result.cells[i].ok = cell_outcomes[i].ok;
    result.cells[i].error = cell_outcomes[i].error;
    if (!cell_outcomes[i].ok) ++failed;
  }
  // Counted once on the caller's lane after the joins — deterministic totals
  // regardless of which worker ran which cell.
  telemetry::count(telemetry::Counter::kSweepCells, cells.size() - failed);
  telemetry::count(telemetry::Counter::kSweepCellsFailed, failed);
  return result;
}

std::size_t SweepResult::failed_count() const {
  std::size_t n = 0;
  for (const auto& c : cells) {
    if (!c.ok) ++n;
  }
  return n;
}

Table SweepResult::to_table() const {
  SPF_SPAN("aggregate");
  Table t({"workload", "L2", "helper", "controller", "RP", "A_SKI", "phases",
           "vs bound", "status", "Normalized_Runtime",
           "Normalized_MemoryAccesses", "Normalized_HotMisses",
           "dTotally_hit(%)", "dTotally_miss(%)", "dPartially_hit(%)",
           "pollution"});
  for (const auto& c : cells) {
    t.row()
        .add(c.cell.workload)
        .add(c.cell.l2.to_string())
        .add(to_string(c.cell.helper))
        .add(to_string(c.cell.controller))
        .add(c.cell.rp, 2)
        .add(static_cast<std::uint64_t>(c.cell.distance))
        .add(static_cast<std::uint64_t>(c.cell.phase_count));
    if (!c.ok) {
      t.add("-").add("failed: " + c.error);
      for (int i = 0; i < 7; ++i) t.add("-");
      continue;
    }
    t.add(c.cell.distance < c.cell.bound_upper ? "within" : "beyond")
        .add("ok")
        .add(c.cmp->norm_runtime(), 3)
        .add(c.cmp->norm_memory_accesses(), 3)
        .add(c.cmp->norm_hot_misses(), 3)
        .add(100.0 * c.cmp->delta_totally_hit(), 2)
        .add(100.0 * c.cmp->delta_totally_miss(), 2)
        .add(100.0 * c.cmp->delta_partially_hit(), 2)
        .add(c.cmp->sp.pollution.total_pollution());
  }
  return t;
}

std::string SweepResult::to_csv() const { return to_table().to_csv(); }

void SweepResult::write_jsonl(std::ostream& out) const {
  SPF_SPAN("aggregate");
  for (const auto& c : cells) {
    JsonObject obj;
    obj.add("id", static_cast<std::uint64_t>(c.cell.id))
        .add("workload", c.cell.workload)
        .add("l2", c.cell.l2.to_string())
        .add("l2_bytes", c.cell.l2.size_bytes())
        .add("assoc", c.cell.l2.ways())
        .add("line", c.cell.l2.line_bytes())
        .add("helper", to_string(c.cell.helper))
        .add("controller", to_string(c.cell.controller))
        .add("rp", c.cell.rp)
        .add("distance", c.cell.distance)
        .add("bound_upper", c.cell.bound_upper)
        .add("phase_count", c.cell.phase_count)
        .add("within_bound", c.cell.distance < c.cell.bound_upper)
        .add("ok", c.ok);
    if (!c.ok) {
      obj.add("error", c.error);
      out << obj;
      continue;
    }
    obj.add("norm_runtime", c.cmp->norm_runtime())
        .add("norm_memory_accesses", c.cmp->norm_memory_accesses())
        .add("norm_hot_misses", c.cmp->norm_hot_misses())
        .add("delta_totally_hit", c.cmp->delta_totally_hit())
        .add("delta_totally_miss", c.cmp->delta_totally_miss())
        .add("delta_partially_hit", c.cmp->delta_partially_hit())
        .add("original_runtime", c.cmp->original.runtime)
        .add("sp_runtime", c.cmp->sp.runtime)
        .add("helper_finish", c.cmp->sp.helper_finish)
        .add("pollution_total", c.cmp->sp.pollution.total_pollution())
        .add("pollution_rate",
             c.cmp->sp.l2_lookups == 0
                 ? 0.0
                 : static_cast<double>(c.cmp->sp.pollution.total_pollution()) /
                       static_cast<double>(c.cmp->sp.l2_lookups));
    if (c.adaptive) {
      std::string trajectory = "[";
      for (std::size_t i = 0; i < c.adaptive->trajectory.size(); ++i) {
        if (i != 0) trajectory += ",";
        trajectory += std::to_string(c.adaptive->trajectory[i]);
      }
      trajectory += "]";
      obj.add("final_distance", c.adaptive->final_distance)
          .add("mean_distance", c.adaptive->mean_distance)
          .add("intervals", c.adaptive->intervals)
          .add("adaptive_increases", c.adaptive->increases)
          .add("adaptive_decreases", c.adaptive->decreases)
          .add("distance_cap", c.adaptive->distance_cap)
          .add_raw("trajectory", trajectory);
      if (!c.adaptive->phase_caps.empty()) {
        std::string caps = "[";
        for (std::size_t i = 0; i < c.adaptive->phase_caps.size(); ++i) {
          const PhaseDistanceCap& cap = c.adaptive->phase_caps[i];
          if (i != 0) caps += ",";
          caps += "{\"begin\":" + std::to_string(cap.begin_iter) +
                  ",\"upper\":" + std::to_string(cap.upper_limit) + "}";
        }
        caps += "]";
        std::string reclamps = "[";
        for (std::size_t i = 0; i < c.adaptive->reclamps.size(); ++i) {
          const PhaseReclampEvent& ev = c.adaptive->reclamps[i];
          if (i != 0) reclamps += ",";
          // phase 0xffffffff marks the implicit pre-first-cap region.
          const std::string phase =
              ev.phase == 0xffffffffu ? "-1" : std::to_string(ev.phase);
          reclamps += "{\"interval\":" + std::to_string(ev.interval) +
                      ",\"phase\":" + phase +
                      ",\"cap\":" + std::to_string(ev.cap) +
                      ",\"distance\":" + std::to_string(ev.distance_after) +
                      "}";
        }
        reclamps += "]";
        obj.add("reclamp_count",
                static_cast<std::uint64_t>(c.adaptive->reclamps.size()))
            .add_raw("phase_bounds", caps)
            .add_raw("reclamps", reclamps);
      }
    }
    if (c.cmp->sp.provenance.enabled) {
      // Appended after every other field: a provenance-on row is the
      // provenance-off row plus this suffix, which is what the off/on
      // differential test pins.
      const ProvenanceSummary& p = c.cmp->sp.provenance;
      const auto hist = [](const auto& buckets) {
        std::string arr = "[";
        for (std::size_t i = 0; i < buckets.size(); ++i) {
          if (i != 0) arr += ",";
          arr += std::to_string(buckets[i]);
        }
        arr += "]";
        return arr;
      };
      obj.add("prov_tracked_fills", p.tracked_fills)
          .add("prov_helper_fills", p.helper_fills)
          .add("prov_hardware_fills", p.hardware_fills)
          .add("prov_used_timely", p.used_timely)
          .add("prov_used_late", p.used_late)
          .add("prov_evicted_unused", p.evicted_unused)
          .add("prov_polluting", p.polluting)
          .add("prov_resident_unused", p.resident_unused)
          .add("prov_reuse_confirms", p.reuse_confirms)
          .add("prov_late_confirms", p.late_pollution_confirms)
          .add("prov_polluted_sets", p.polluted_sets)
          .add("prov_timely_rate", p.timely_rate())
          .add("prov_fill_to_use_mean", p.fill_to_use_mean())
          .add_raw("prov_fill_to_use_hist", hist(p.fill_to_use))
          .add_raw("prov_victim_reuse_hist", hist(p.victim_reuse))
          .add_raw("prov_set_heatmap", hist(p.set_heatmap));
    }
    out << obj;
  }
}

std::string SweepResult::to_jsonl() const {
  std::ostringstream out;
  write_jsonl(out);
  return out.str();
}

}  // namespace spf::orchestrate
