#include "spf/ir/slice.hpp"

#include <limits>

#include "spf/common/assert.hpp"

namespace spf::ir {
namespace {

/// Enclosing kLoopBegin per instruction (SIZE_MAX at top level).
std::vector<std::size_t> enclosing_loop(const Program& program) {
  std::vector<std::size_t> enclosing(program.code.size(),
                                     std::numeric_limits<std::size_t>::max());
  std::size_t open = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    switch (program.code[i].op) {
      case OpCode::kLoopBegin:
        enclosing[i] = std::numeric_limits<std::size_t>::max();
        open = i;
        break;
      case OpCode::kLoopEnd:
        enclosing[i] = open;
        open = std::numeric_limits<std::size_t>::max();
        break;
      default:
        enclosing[i] = open;
        break;
    }
  }
  return enclosing;
}

/// Matching kLoopEnd per kLoopBegin.
std::vector<std::size_t> loop_ends(const Program& program) {
  std::vector<std::size_t> match(program.code.size(),
                                 std::numeric_limits<std::size_t>::max());
  std::size_t open = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    if (program.code[i].op == OpCode::kLoopBegin) open = i;
    if (program.code[i].op == OpCode::kLoopEnd) {
      match[open] = i;
      open = std::numeric_limits<std::size_t>::max();
    }
  }
  return match;
}

/// Fixpoint backward closure over: value operands, register def-use (a kept
/// kRegRead pulls in every kRegWrite of that register), and loop structure
/// (a kept in-loop instruction pulls in its kLoopBegin -- whose trip operand
/// then closes too -- and kLoopEnd).
void close(const Program& program, std::vector<bool>& keep) {
  const auto enclosing = enclosing_loop(program);
  const auto ends = loop_ends(program);
  bool changed = true;
  while (changed) {
    changed = false;
    auto mark = [&](std::size_t i) {
      if (!keep[i]) {
        keep[i] = true;
        changed = true;
      }
    };
    for (std::size_t i = 0; i < program.code.size(); ++i) {
      if (!keep[i]) continue;
      const Instr& ins = program.code[i];
      if (ins.a >= 0) mark(static_cast<std::size_t>(ins.a));
      if (ins.b >= 0) mark(static_cast<std::size_t>(ins.b));
      if (ins.op == OpCode::kRegRead) {
        for (std::size_t j = 0; j < program.code.size(); ++j) {
          if (program.code[j].op == OpCode::kRegWrite &&
              program.code[j].imm == ins.imm) {
            mark(j);
          }
        }
      }
      if (enclosing[i] != std::numeric_limits<std::size_t>::max()) {
        mark(enclosing[i]);
        mark(ends[enclosing[i]]);
      }
      if (ins.op == OpCode::kLoopBegin) {
        mark(ends[i]);
      }
    }
  }
}

}  // namespace

SliceMasks build_helper_slice(const Program& program) {
  SPF_ASSERT(verify(program).empty(), "invalid program");
  SliceMasks masks;
  masks.helper_mask.assign(program.code.size(), false);
  masks.spine_mask.assign(program.code.size(), false);

  // Seeds: the delinquent loads the helper exists to prefetch.
  bool any_seed = false;
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const Instr& ins = program.code[i];
    if (ins.op == OpCode::kLoad && (ins.flags & kFlagDelinquent) != 0) {
      masks.helper_mask[i] = true;
      any_seed = true;
    }
  }
  SPF_ASSERT(any_seed, "program has no delinquent loads to slice for");
  close(program, masks.helper_mask);

  // Spine: maintenance of *loop-carried* registers within the helper slice.
  // A register is loop-carried iff its first access in the body (program
  // order) is a read — its value flows in from the previous outer iteration
  // (EM3D's node pointer). Registers written before being read are
  // iteration-local scratch (MST's chain cursor, EM3D's accumulator) and
  // need no maintenance in skipped iterations.
  std::vector<bool> seen_write(program.num_regs, false);
  std::vector<bool> loop_carried(program.num_regs, false);
  for (const Instr& ins : program.code) {
    if (ins.op == OpCode::kRegRead && !seen_write[ins.imm]) {
      loop_carried[ins.imm] = true;
    }
    if (ins.op == OpCode::kRegWrite) seen_write[ins.imm] = true;
  }
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    if (masks.helper_mask[i] && program.code[i].op == OpCode::kRegWrite &&
        loop_carried[program.code[i].imm]) {
      masks.spine_mask[i] = true;
    }
  }
  close(program, masks.spine_mask);

  // The spine is a subset of the helper slice by construction (its seeds and
  // every closure rule stay inside the helper closure).
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    SPF_DEBUG_ASSERT(!masks.spine_mask[i] || masks.helper_mask[i],
                     "spine escaped the helper slice");
  }
  return masks;
}

Program strip(const Program& program, const std::vector<bool>& mask) {
  SPF_ASSERT(mask.size() == program.code.size(), "mask must cover the program");
  Program out;
  out.outer_trip = program.outer_trip;
  out.num_regs = program.num_regs;
  out.reg_init = program.reg_init;

  std::vector<std::int32_t> remap(program.code.size(), -1);
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    if (!mask[i]) continue;
    Instr ins = program.code[i];
    auto remap_operand = [&](std::int32_t v) {
      if (v < 0) return v;
      const std::int32_t m = remap[static_cast<std::size_t>(v)];
      SPF_ASSERT(m >= 0, "mask is not closed: kept instruction references a "
                         "dropped value");
      return m;
    };
    ins.a = remap_operand(ins.a);
    ins.b = remap_operand(ins.b);
    remap[i] = static_cast<std::int32_t>(out.code.size());
    out.code.push_back(ins);
  }
  SPF_ASSERT(verify(out).empty(), "stripped program failed verification");
  return out;
}

SliceStats slice_stats(const Program& program, const SliceMasks& masks) {
  SliceStats stats;
  stats.program_instrs = program.code.size();
  stats.helper_instrs = masks.helper_count();
  stats.spine_instrs = masks.spine_count();
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    if (masks.helper_mask[i]) continue;
    if (program.code[i].op == OpCode::kStore) {
      ++stats.dropped_stores;
    } else {
      ++stats.dropped_compute;
    }
  }
  return stats;
}

}  // namespace spf::ir
