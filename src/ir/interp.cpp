#include "spf/ir/interp.hpp"

#include <limits>

#include "spf/common/assert.hpp"

namespace spf::ir {
namespace {

/// Matching kLoopEnd index per kLoopBegin (and SIZE_MAX elsewhere).
std::vector<std::size_t> match_loop_ends(const Program& program) {
  std::vector<std::size_t> match(program.code.size(),
                                 std::numeric_limits<std::size_t>::max());
  std::size_t open_begin = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    if (program.code[i].op == OpCode::kLoopBegin) {
      open_begin = i;
    } else if (program.code[i].op == OpCode::kLoopEnd) {
      SPF_ASSERT(open_begin != std::numeric_limits<std::size_t>::max(),
                 "loop end without begin (verify() should have caught this)");
      match[open_begin] = i;
      open_begin = std::numeric_limits<std::size_t>::max();
    }
  }
  return match;
}

struct ExecContext {
  const Program& program;
  const std::vector<std::size_t>& loop_end;
  VirtualMemory* vm_mut;        // stores allowed iff non-null
  const VirtualMemory* vm_ro;   // read source (== vm_mut when mutable)
  const std::vector<bool>* mask;  // nullptr = execute everything
  InterpResult* out;
};

void execute_iteration(const ExecContext& ctx, std::uint32_t outer_iter,
                       std::vector<std::uint64_t>& values,
                       std::vector<std::uint64_t>& regs) {
  const auto& code = ctx.program.code;
  std::size_t ip = 0;
  // One nesting level: remembered loop state.
  std::size_t loop_begin_ip = std::numeric_limits<std::size_t>::max();
  std::uint64_t inner_trip = 0;
  std::uint64_t inner_iter = 0;

  auto enabled = [&](std::size_t i) {
    return ctx.mask == nullptr || (*ctx.mask)[i];
  };

  while (ip < code.size()) {
    const Instr& ins = code[ip];
    if (!enabled(ip)) {
      // A disabled kLoopBegin skips its whole body (the slicer keeps the
      // begin/end whenever it keeps anything inside).
      ip = ins.op == OpCode::kLoopBegin ? ctx.loop_end[ip] + 1 : ip + 1;
      continue;
    }
    switch (ins.op) {
      case OpCode::kConst:
        values[ip] = ins.imm;
        break;
      case OpCode::kIterIndex:
        values[ip] = outer_iter;
        break;
      case OpCode::kInnerIndex:
        values[ip] = inner_iter;
        break;
      case OpCode::kAdd:
        values[ip] = values[static_cast<std::size_t>(ins.a)] +
                     values[static_cast<std::size_t>(ins.b)];
        break;
      case OpCode::kSub:
        values[ip] = values[static_cast<std::size_t>(ins.a)] -
                     values[static_cast<std::size_t>(ins.b)];
        break;
      case OpCode::kMul:
        values[ip] = values[static_cast<std::size_t>(ins.a)] *
                     values[static_cast<std::size_t>(ins.b)];
        break;
      case OpCode::kShl:
        values[ip] = values[static_cast<std::size_t>(ins.a)] << ins.imm;
        break;
      case OpCode::kAnd:
        values[ip] = values[static_cast<std::size_t>(ins.a)] &
                     values[static_cast<std::size_t>(ins.b)];
        break;
      case OpCode::kMod: {
        const std::uint64_t d = values[static_cast<std::size_t>(ins.b)];
        SPF_ASSERT(d != 0, "modulo by zero in IR program");
        values[ip] = values[static_cast<std::size_t>(ins.a)] % d;
        break;
      }
      case OpCode::kRegRead:
        values[ip] = regs[ins.imm];
        break;
      case OpCode::kRegWrite:
        regs[ins.imm] = values[static_cast<std::size_t>(ins.a)];
        break;
      case OpCode::kLoad: {
        const Addr addr = values[static_cast<std::size_t>(ins.a)];
        values[ip] = ctx.vm_ro->read(addr);
        ctx.out->trace.emit(addr, outer_iter, AccessKind::kRead, ins.site,
                            ins.flags, ins.gap);
        ++ctx.out->loads;
        break;
      }
      case OpCode::kStore: {
        SPF_ASSERT(ctx.vm_mut != nullptr,
                   "store executed in a read-only (helper) context");
        const Addr addr = values[static_cast<std::size_t>(ins.a)];
        const std::uint64_t value = values[static_cast<std::size_t>(ins.b)];
        ctx.vm_mut->write(addr, value);
        ctx.out->trace.emit(addr, outer_iter, AccessKind::kWrite, ins.site,
                            ins.flags, ins.gap);
        ctx.out->store_checksum ^=
            (addr << 13 | addr >> 51) ^ (value * 0x9e3779b97f4a7c15ULL);
        ++ctx.out->stores;
        break;
      }
      case OpCode::kLoopBegin: {
        inner_trip = values[static_cast<std::size_t>(ins.a)];
        inner_iter = 0;
        if (inner_trip == 0) {
          ip = ctx.loop_end[ip] + 1;
          continue;
        }
        loop_begin_ip = ip;
        break;
      }
      case OpCode::kLoopEnd: {
        ++inner_iter;
        if (inner_iter < inner_trip) {
          ip = loop_begin_ip + 1;
          continue;
        }
        inner_iter = 0;
        break;
      }
    }
    ++ip;
  }
}

}  // namespace

InterpResult interpret(const Program& program, VirtualMemory& vm) {
  SPF_ASSERT(verify(program).empty(), "invalid program");
  InterpResult out;
  const auto loop_end = match_loop_ends(program);
  std::vector<std::uint64_t> values(program.code.size(), 0);
  std::vector<std::uint64_t> regs(program.num_regs, 0);
  for (std::size_t r = 0; r < program.reg_init.size() && r < regs.size(); ++r) {
    regs[r] = program.reg_init[r];
  }
  const ExecContext ctx{.program = program,
                        .loop_end = loop_end,
                        .vm_mut = &vm,
                        .vm_ro = &vm,
                        .mask = nullptr,
                        .out = &out};
  for (std::uint32_t i = 0; i < program.outer_trip; ++i) {
    execute_iteration(ctx, i, values, regs);
  }
  return out;
}

InterpResult interpret_helper(const Program& program, const SliceMasks& slice,
                              const SpParams& params, const VirtualMemory& vm) {
  SPF_ASSERT(verify(program).empty(), "invalid program");
  SPF_ASSERT(slice.helper_mask.size() == program.code.size() &&
                 slice.spine_mask.size() == program.code.size(),
             "slice masks must cover the program");
  SPF_ASSERT(params.a_pre > 0, "helper must pre-execute at least one iteration");

  InterpResult out;
  const auto loop_end = match_loop_ends(program);
  std::vector<std::uint64_t> values(program.code.size(), 0);
  std::vector<std::uint64_t> regs(program.num_regs, 0);
  for (std::size_t r = 0; r < program.reg_init.size() && r < regs.size(); ++r) {
    regs[r] = program.reg_init[r];
  }
  const std::uint32_t round = params.round();

  ExecContext ctx{.program = program,
                  .loop_end = loop_end,
                  .vm_mut = nullptr,  // the helper must never store
                  .vm_ro = &vm,
                  .mask = nullptr,
                  .out = &out};
  for (std::uint32_t i = 0; i < program.outer_trip; ++i) {
    const bool pre_execute = (i % round) >= params.a_ski;
    ctx.mask = pre_execute ? &slice.helper_mask : &slice.spine_mask;
    execute_iteration(ctx, i, values, regs);
  }
  return out;
}

}  // namespace spf::ir
