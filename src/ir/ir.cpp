#include "spf/ir/ir.hpp"

#include <sstream>

#include "spf/common/assert.hpp"

namespace spf::ir {

const char* to_string(OpCode op) noexcept {
  switch (op) {
    case OpCode::kConst: return "const";
    case OpCode::kIterIndex: return "iter";
    case OpCode::kInnerIndex: return "inner";
    case OpCode::kAdd: return "add";
    case OpCode::kSub: return "sub";
    case OpCode::kMul: return "mul";
    case OpCode::kShl: return "shl";
    case OpCode::kAnd: return "and";
    case OpCode::kMod: return "mod";
    case OpCode::kRegRead: return "rreg";
    case OpCode::kRegWrite: return "wreg";
    case OpCode::kLoad: return "load";
    case OpCode::kStore: return "store";
    case OpCode::kLoopBegin: return "loop";
    case OpCode::kLoopEnd: return "end";
  }
  return "?";
}

namespace {

bool needs_a(OpCode op) {
  switch (op) {
    case OpCode::kConst:
    case OpCode::kIterIndex:
    case OpCode::kInnerIndex:
    case OpCode::kRegRead:
    case OpCode::kLoopEnd:
      return false;
    default:
      return true;
  }
}

bool needs_b(OpCode op) {
  switch (op) {
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kAnd:
    case OpCode::kMod:
    case OpCode::kStore:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string verify(const Program& program) {
  std::ostringstream err;
  int loop_depth = 0;
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const Instr& ins = program.code[i];
    auto check_operand = [&](std::int32_t v, const char* name) {
      if (v < 0 || static_cast<std::size_t>(v) >= i) {
        err << "instr " << i << " (" << to_string(ins.op) << "): operand "
            << name << "=" << v << " must reference an earlier instruction; ";
      }
    };
    if (needs_a(ins.op)) check_operand(ins.a, "a");
    if (needs_b(ins.op)) check_operand(ins.b, "b");
    switch (ins.op) {
      case OpCode::kRegRead:
      case OpCode::kRegWrite:
        if (ins.imm >= program.num_regs) {
          err << "instr " << i << ": register " << ins.imm << " out of range; ";
        }
        break;
      case OpCode::kLoopBegin:
        ++loop_depth;
        if (loop_depth > 1) {
          err << "instr " << i << ": nested inner loops are not supported; ";
        }
        break;
      case OpCode::kLoopEnd:
        --loop_depth;
        if (loop_depth < 0) {
          err << "instr " << i << ": loop end without begin; ";
          loop_depth = 0;
        }
        break;
      default:
        break;
    }
  }
  if (loop_depth != 0) err << "unterminated inner loop; ";
  if (program.outer_trip == 0) err << "outer trip count is zero; ";
  return err.str();
}

std::int32_t ProgramBuilder::push(Instr instr) {
  program_.code.push_back(instr);
  return static_cast<std::int32_t>(program_.code.size() - 1);
}

std::int32_t ProgramBuilder::constant(std::uint64_t v) {
  return push(Instr{.op = OpCode::kConst, .imm = v});
}
std::int32_t ProgramBuilder::iter_index() {
  return push(Instr{.op = OpCode::kIterIndex});
}
std::int32_t ProgramBuilder::inner_index() {
  return push(Instr{.op = OpCode::kInnerIndex});
}
std::int32_t ProgramBuilder::add(std::int32_t a, std::int32_t b) {
  return push(Instr{.op = OpCode::kAdd, .a = a, .b = b});
}
std::int32_t ProgramBuilder::sub(std::int32_t a, std::int32_t b) {
  return push(Instr{.op = OpCode::kSub, .a = a, .b = b});
}
std::int32_t ProgramBuilder::mul(std::int32_t a, std::int32_t b) {
  return push(Instr{.op = OpCode::kMul, .a = a, .b = b});
}
std::int32_t ProgramBuilder::shl(std::int32_t a, std::uint64_t amount) {
  return push(Instr{.op = OpCode::kShl, .a = a, .imm = amount});
}
std::int32_t ProgramBuilder::band(std::int32_t a, std::int32_t b) {
  return push(Instr{.op = OpCode::kAnd, .a = a, .b = b});
}
std::int32_t ProgramBuilder::mod(std::int32_t a, std::int32_t b) {
  return push(Instr{.op = OpCode::kMod, .a = a, .b = b});
}
std::int32_t ProgramBuilder::reg_read(std::uint64_t reg) {
  return push(Instr{.op = OpCode::kRegRead, .imm = reg});
}
void ProgramBuilder::reg_write(std::uint64_t reg, std::int32_t value) {
  push(Instr{.op = OpCode::kRegWrite, .a = value, .imm = reg});
}
std::int32_t ProgramBuilder::load(std::int32_t addr, std::uint8_t site,
                                  TraceFlags flags, std::uint16_t gap) {
  return push(Instr{.op = OpCode::kLoad, .a = addr, .site = site,
                    .flags = flags, .gap = gap});
}
void ProgramBuilder::store(std::int32_t addr, std::int32_t value,
                           std::uint8_t site, std::uint16_t gap) {
  push(Instr{.op = OpCode::kStore, .a = addr, .b = value, .site = site,
             .gap = gap});
}
void ProgramBuilder::loop_begin(std::int32_t trip) {
  push(Instr{.op = OpCode::kLoopBegin, .a = trip});
}
void ProgramBuilder::loop_end() { push(Instr{.op = OpCode::kLoopEnd}); }

Program ProgramBuilder::take() {
  const std::string problems = verify(program_);
  SPF_ASSERT(problems.empty(), problems);
  return std::move(program_);
}

}  // namespace spf::ir
