#include "spf/ir/vm.hpp"

namespace spf::ir {

std::uint64_t VirtualMemory::read(Addr addr) const {
  const auto it = words_.find(align(addr));
  return it == words_.end() ? 0 : it->second;
}

void VirtualMemory::write(Addr addr, std::uint64_t value) {
  words_[align(addr)] = value;
}

}  // namespace spf::ir
