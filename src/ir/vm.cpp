#include "spf/ir/vm.hpp"

namespace spf::ir {

VirtualMemory::VirtualMemory(const VirtualMemory& other)
    : pages_(), resident_(other.resident_), sparse_(other.sparse_) {
  pages_.reserve(other.pages_.size());
  for (const auto& page : other.pages_) {
    pages_.push_back(page == nullptr ? nullptr
                                     : std::make_unique<Page>(*page));
  }
}

VirtualMemory& VirtualMemory::operator=(const VirtualMemory& other) {
  if (this != &other) {
    VirtualMemory copy(other);
    *this = std::move(copy);
  }
  return *this;
}

std::uint64_t VirtualMemory::read_sparse(Addr aligned) const {
  const auto it = sparse_.find(aligned);
  return it == sparse_.end() ? 0 : it->second;
}

void VirtualMemory::write_slow(Addr aligned, std::uint64_t value) {
  const std::uint64_t word = aligned >> 3;
  const std::uint64_t page = word >> kPageWordShift;
  if (page >= kMaxDirectPages) {
    sparse_[aligned] = value;
    return;
  }
  if (page >= pages_.size()) {
    pages_.resize(page + 1);
  }
  if (pages_[page] == nullptr) {
    pages_[page] = std::make_unique<Page>();
  }
  write_in_page(*pages_[page], word, value);
}

}  // namespace spf::ir
