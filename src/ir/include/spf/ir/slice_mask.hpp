// Instruction masks produced by helper-thread slicing (spf/ir/slice.hpp) and
// consumed by the helper interpreter (spf/ir/interp.hpp).
#pragma once

#include <cstdint>
#include <vector>

namespace spf::ir {

struct SliceMasks {
  /// Instructions the helper executes in pre-execute iterations: the
  /// backward closure of the delinquent loads (their address computation,
  /// the loads themselves, and the loop-carried register updates feeding
  /// them). Indexed by instruction id.
  std::vector<bool> helper_mask;
  /// The subset that must also run in *skip* iterations: everything needed
  /// to keep loop-carried registers (the spine) advancing.
  std::vector<bool> spine_mask;

  [[nodiscard]] std::size_t helper_count() const {
    std::size_t n = 0;
    for (bool b : helper_mask) n += b;
    return n;
  }
  [[nodiscard]] std::size_t spine_count() const {
    std::size_t n = 0;
    for (bool b : spine_mask) n += b;
    return n;
  }
};

}  // namespace spf::ir
