// IR interpreter: executes a Program against a VirtualMemory, emitting the
// memory-access trace its loads/stores produce. Also provides the SP-helper
// execution mode, which runs a sliced program in the paper's round structure
// (skip phase: loop-carried register maintenance only; pre-execute phase:
// the whole slice).
#pragma once

#include <cstdint>
#include <vector>

#include "spf/core/sp_params.hpp"
#include "spf/ir/ir.hpp"
#include "spf/ir/slice_mask.hpp"
#include "spf/ir/vm.hpp"
#include "spf/trace/trace.hpp"

namespace spf::ir {

struct InterpResult {
  TraceBuffer trace;
  /// XOR-fold of every stored (addr, value) pair: a cheap execution
  /// fingerprint for determinism and slicing tests.
  std::uint64_t store_checksum = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
};

/// Runs `program` to completion. `vm` is mutated by stores.
[[nodiscard]] InterpResult interpret(const Program& program, VirtualMemory& vm);

/// Runs the helper built by slicing (see spf/ir/slice.hpp) in SP's round
/// structure: per round of params.round() outer iterations, the first
/// params.a_ski iterations execute only the instructions in
/// `slice.spine_mask` (loop-carried state maintenance), the remaining
/// params.a_pre iterations execute everything in `slice.helper_mask`.
/// The helper never stores, so `vm` is logically const (taken by value
/// internally would be costly; it is asserted unmodified in debug builds).
[[nodiscard]] InterpResult interpret_helper(const Program& program,
                                            const SliceMasks& slice,
                                            const SpParams& params,
                                            const VirtualMemory& vm);

}  // namespace spf::ir
