// A miniature loop IR for hot functions.
//
// The paper constructs its helper threads from the hotspot's source code
// (Fig. 1(b)); the compiler-based helper-threading line of work it cites
// (Song et al. PACT'05, Kim & Yeung ASPLOS'02, Liao et al. PLDI'02) does it
// by *program slicing*: the helper is the backward slice of the delinquent
// loads' addresses. This IR is just big enough to express the paper's
// two-level hot loops — an outer loop with loop-carried registers (the
// pointer-chasing spine), one level of inner loops, loads/stores and address
// arithmetic — so that slicing-based helper construction (spf/ir/slice.hpp)
// can be implemented and tested against the trace-flag-based construction.
//
// Shape of a program: a straight-line body executed once per outer
// iteration. Values are SSA-ish: instruction index == value id, operands
// reference earlier instructions of the same iteration. State that crosses
// iterations lives in registers (kRegRead/kRegWrite). Inner loops are
// delimited by kLoopBegin/kLoopEnd (one nesting level); their bodies
// re-execute per inner iteration, with kInnerIndex exposing the inner
// induction variable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spf/trace/trace.hpp"

namespace spf::ir {

enum class OpCode : std::uint8_t {
  kConst,      // value = imm
  kIterIndex,  // value = outer iteration index
  kInnerIndex, // value = inner loop index (0 outside loops)
  kAdd,        // value = v[a] + v[b]
  kSub,        // value = v[a] - v[b]
  kMul,        // value = v[a] * v[b]
  kShl,        // value = v[a] << imm
  kAnd,        // value = v[a] & v[b]
  kMod,        // value = v[a] % v[b]  (v[b] != 0)
  kRegRead,    // value = reg[imm]
  kRegWrite,   // reg[imm] = v[a]
  kLoad,       // value = mem[v[a]]; emits a trace record (site/flags/gap)
  kStore,      // mem[v[a]] = v[b]; emits a trace record
  kLoopBegin,  // inner loop with trip count v[a]; body until matching kLoopEnd
  kLoopEnd,
};

[[nodiscard]] const char* to_string(OpCode op) noexcept;

struct Instr {
  OpCode op = OpCode::kConst;
  /// Operand value ids (indices of earlier instructions); -1 = unused.
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::uint64_t imm = 0;
  /// Trace annotations for kLoad/kStore.
  std::uint8_t site = 0;
  TraceFlags flags = 0;
  std::uint16_t gap = 0;
};

struct Program {
  std::vector<Instr> code;
  /// Outer loop trip count.
  std::uint32_t outer_trip = 0;
  std::uint32_t num_regs = 8;
  /// Initial register values (missing entries default to 0). This is how a
  /// loop preamble (e.g. `node = list_head`) is expressed.
  std::vector<std::uint64_t> reg_init;

  [[nodiscard]] std::size_t size() const noexcept { return code.size(); }
};

/// Structural validation: operand ids reference earlier instructions, loops
/// are properly nested one level deep, register indices are in range, trip
/// counts and operands are present where required. Returns an empty string
/// when valid, else a diagnostic.
[[nodiscard]] std::string verify(const Program& program);

/// Small convenience builder so tests and workload encodings stay readable.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::uint32_t outer_trip) {
    program_.outer_trip = outer_trip;
  }

  std::int32_t constant(std::uint64_t v);
  std::int32_t iter_index();
  std::int32_t inner_index();
  std::int32_t add(std::int32_t a, std::int32_t b);
  std::int32_t sub(std::int32_t a, std::int32_t b);
  std::int32_t mul(std::int32_t a, std::int32_t b);
  std::int32_t shl(std::int32_t a, std::uint64_t amount);
  std::int32_t band(std::int32_t a, std::int32_t b);
  std::int32_t mod(std::int32_t a, std::int32_t b);
  std::int32_t reg_read(std::uint64_t reg);
  void reg_write(std::uint64_t reg, std::int32_t value);
  std::int32_t load(std::int32_t addr, std::uint8_t site, TraceFlags flags = 0,
                    std::uint16_t gap = 0);
  void store(std::int32_t addr, std::int32_t value, std::uint8_t site,
             std::uint16_t gap = 0);
  void loop_begin(std::int32_t trip);
  void loop_end();

  [[nodiscard]] Program take();

 private:
  std::int32_t push(Instr instr);
  Program program_;
};

}  // namespace spf::ir
