// Helper-thread construction by backward program slicing.
//
// "The helper thread executes only the load's computation" (paper §II.A).
// Given a hot-loop Program, the helper slice is the backward closure of the
// delinquent loads: their address computation, the loads themselves, the
// loop-carried register updates feeding any of it (the pointer-chasing
// spine), and the inner-loop structure around any kept instruction. Stores
// and value-only computation (e.g. the FLOP chain consuming the loaded
// values) fall away — that is exactly the asymmetry that lets the helper run
// ahead of the main thread.
//
// The spine mask — what must still execute in *skip* iterations — is the
// same closure restricted to loop-carried register maintenance.
#pragma once

#include "spf/ir/ir.hpp"
#include "spf/ir/slice_mask.hpp"

namespace spf::ir {

/// Builds both masks. Programs whose delinquent loads have no spine
/// dependence (array scans) get an empty spine mask: skipping is free.
[[nodiscard]] SliceMasks build_helper_slice(const Program& program);

/// Diagnostics: which fraction of the program the helper retains.
struct SliceStats {
  std::size_t program_instrs = 0;
  std::size_t helper_instrs = 0;
  std::size_t spine_instrs = 0;
  std::size_t dropped_stores = 0;
  std::size_t dropped_compute = 0;
};

[[nodiscard]] SliceStats slice_stats(const Program& program,
                                     const SliceMasks& masks);

/// Materializes the masked instructions as a standalone program (operand ids
/// renumbered, dropped instructions gone) — the helper thread as code you
/// could hand to a compiler backend. Pre: `mask` is closed (every kept
/// instruction's operands are kept; build_helper_slice guarantees this).
[[nodiscard]] Program strip(const Program& program,
                            const std::vector<bool>& mask);

}  // namespace spf::ir
