// Sparse virtual memory for IR programs: 64-bit words addressed by byte
// address (8-byte aligned). Workload encoders populate it with the data
// structures (next pointers, dependency arrays); the interpreter's loads
// read real values out of it, so pointer chases follow real chains.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "spf/mem/types.hpp"

namespace spf::ir {

class VirtualMemory {
 public:
  /// Word at byte address `addr` (rounded down to 8-byte alignment);
  /// untouched memory reads as zero.
  [[nodiscard]] std::uint64_t read(Addr addr) const;
  void write(Addr addr, std::uint64_t value);

  [[nodiscard]] std::size_t resident_words() const noexcept {
    return words_.size();
  }

 private:
  static Addr align(Addr addr) noexcept { return addr & ~Addr{7}; }
  std::unordered_map<Addr, std::uint64_t> words_;
};

}  // namespace spf::ir
