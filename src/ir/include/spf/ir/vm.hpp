// Virtual memory for IR programs: 64-bit words addressed by byte address
// (8-byte aligned). Workload encoders populate it with the data structures
// (next pointers, dependency arrays); the interpreter's loads read real
// values out of it, so pointer chases follow real chains.
//
// Storage is *paged*, not hashed: the low 8 GiB of the address space (which
// is where VirtualHeap places every workload) is backed by lazily allocated
// fixed-size pages reached through a page-table vector — a read is two
// indexed loads, no hashing, no probing. Addresses beyond the paged span
// (reachable only through wild pointer arithmetic in fuzzed programs) fall
// back to a sparse map. Untouched memory reads as zero either way, and
// `resident_words()` counts exactly the words ever written (even with value
// zero), matching the previous hash-map semantics bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "spf/mem/types.hpp"

namespace spf::ir {

class VirtualMemory {
 public:
  VirtualMemory() = default;
  VirtualMemory(VirtualMemory&&) noexcept = default;
  VirtualMemory& operator=(VirtualMemory&&) noexcept = default;
  VirtualMemory(const VirtualMemory& other);
  VirtualMemory& operator=(const VirtualMemory& other);
  ~VirtualMemory() = default;

  /// Word at byte address `addr` (rounded down to 8-byte alignment);
  /// untouched memory reads as zero.
  [[nodiscard]] std::uint64_t read(Addr addr) const {
    const std::uint64_t word = align(addr) >> 3;
    const std::uint64_t page = word >> kPageWordShift;
    if (page < pages_.size()) [[likely]] {
      const Page* p = pages_[page].get();
      return p != nullptr ? p->words[word & kPageWordMask] : 0;
    }
    return read_sparse(align(addr));
  }

  void write(Addr addr, std::uint64_t value) {
    const Addr a = align(addr);
    const std::uint64_t word = a >> 3;
    const std::uint64_t page = word >> kPageWordShift;
    if (page < pages_.size() && pages_[page] != nullptr) [[likely]] {
      write_in_page(*pages_[page], word, value);
      return;
    }
    write_slow(a, value);
  }

  /// Number of distinct words ever written.
  [[nodiscard]] std::size_t resident_words() const noexcept {
    return resident_ + sparse_.size();
  }

 private:
  // 4096 words = 32 KiB of data per page; the paged span covers word
  // indices below kMaxDirectPages * kPageWords (byte addresses < 8 GiB).
  static constexpr std::uint64_t kPageWordShift = 12;
  static constexpr std::uint64_t kPageWords = 1ull << kPageWordShift;
  static constexpr std::uint64_t kPageWordMask = kPageWords - 1;
  static constexpr std::uint64_t kMaxDirectPages = 1ull << 18;

  struct Page {
    std::array<std::uint64_t, kPageWords> words{};
    /// One bit per word: has it ever been written? (Backs resident_words();
    /// a written zero is resident, an untouched word is not.)
    std::array<std::uint64_t, kPageWords / 64> written{};
  };

  static Addr align(Addr addr) noexcept { return addr & ~Addr{7}; }

  void write_in_page(Page& p, std::uint64_t word, std::uint64_t value) {
    const std::uint64_t slot = word & kPageWordMask;
    p.words[slot] = value;
    std::uint64_t& bits = p.written[slot >> 6];
    const std::uint64_t bit = 1ull << (slot & 63);
    resident_ += (bits & bit) == 0;
    bits |= bit;
  }

  [[nodiscard]] std::uint64_t read_sparse(Addr aligned) const;
  void write_slow(Addr aligned, std::uint64_t value);

  std::vector<std::unique_ptr<Page>> pages_;
  std::size_t resident_ = 0;
  /// Fallback for addresses beyond the paged span.
  std::unordered_map<Addr, std::uint64_t> sparse_;
};

}  // namespace spf::ir
