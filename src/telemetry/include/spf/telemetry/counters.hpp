// Typed counter / gauge registry.
//
// Counters and gauges are closed enums rather than string-keyed maps: the
// per-thread accumulation slot is an array index (one add, no hashing, no
// allocation on the hot path) and the merge order is the enum declaration
// order — the same on every run, which keeps the metrics dump deterministic.
//
// Counter merge: sum across lanes (order-independent). Gauge merge: max
// across lanes (also order-independent; a "last writer wins" gauge would let
// thread scheduling leak into the artifact).
#pragma once

#include <cstddef>
#include <cstdint>

namespace spf::telemetry {

enum class Counter : std::uint16_t {
  // orchestrate
  kSweepCells,        // cells completed (ok) by run_sweep
  kSweepCellsFailed,  // cells that finished with a captured error
  // trace pipeline
  kTraceEmissions,   // workload traces actually emitted (memo misses + unkeyed)
  kTraceMemoHits,    // trace_for lookups answered from the memo
  kTraceMemoMisses,  // trace_for lookups that had to emit
  // core replay
  kBaselineRuns,   // ExperimentContext::run_original calls
  kReplayRuns,     // ExperimentContext::run_sp_once calls
  kReplayRecords,  // main-trace records fed to the simulator (both kinds)
  kHelperRecords,  // helper-trace records synthesized for SP runs
  // Fused helper synthesis (streaming_cores on): records pulled through the
  // in-replay HelperViewCursor window, and the helper-scratch bytes that were
  // therefore never written. Both stay 0 on the materialized reference path.
  kHelperRecordsSynthesized,
  kHelperScratchBytesSaved,
  // distance-bound analysis
  kDistanceBounds,  // estimate_distance_bound calls
  kRefineRuns,      // refine_with_helper calls
  // phase-incremental Set-Affinity analysis
  // (spf/profile/incremental_affinity.hpp)
  kPhaseAnalyses,   // phased analyses completed (estimate or refine)
  kAffinityPhases,  // phases those analyses detected (>= 1 each)
  // adaptive-distance interval replay (spf/core/adaptive.hpp)
  kAdaptiveRuns,       // run_adaptive calls
  kAdaptiveIntervals,  // observation intervals replayed
  kAdaptiveIncreases,  // controller actions by kind
  kAdaptiveDecreases,
  kAdaptiveHolds,
  kAdaptiveReclamps,  // per-phase ceiling re-clamps applied at interval
                      // boundaries (phase_caps engaged)
  // simulator (bulk-added once per run from the SimResult; never on the
  // per-access hot path)
  kL2Lookups,
  kL2TotallyHits,
  kL2PartiallyHits,
  kL2TotallyMisses,
  kPollutionCase1,
  kPollutionCase2,
  kPollutionCase3,
  // prefetch-lifecycle provenance (spf/sim/provenance.hpp; zero unless
  // SimConfig::provenance was set for the surfaced run)
  kPrefetchFillsTracked,      // helper/hw fills installed into L2
  kPrefetchFateUsedTimely,    // the five fates partition the tracked fills
  kPrefetchFateUsedLate,
  kPrefetchFateEvictedUnused,
  kPrefetchFatePolluting,
  kPrefetchFateResidentUnused,
  kCount
};

enum class Gauge : std::uint16_t {
  kTraceRecordsMax,     // largest workload trace observed (records)
  kArenaBytesMax,       // largest per-context arena footprint observed
  kAdaptiveDistanceMax, // largest distance the adaptive controller reached
  kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kGaugeCount = static_cast<std::size_t>(Gauge::kCount);

/// Stable dotted names ("sweep.cells", "sim.l2_totally_hits", ...) used as
/// the JSONL metric keys; exporters iterate the enums in declaration order.
[[nodiscard]] const char* to_string(Counter c) noexcept;
[[nodiscard]] const char* to_string(Gauge g) noexcept;

}  // namespace spf::telemetry
