// Monotonic time source for the telemetry subsystem.
//
// Two modes share one type so the recording layer never branches on time
// semantics:
//
//   kSteady  — std::chrono::steady_clock, reported as nanoseconds since the
//              clock was constructed. This is what sweep timelines use: it is
//              monotone per thread *and* across threads, so per-lane slices
//              line up in Perfetto.
//   kVirtual — a process-wide atomic tick counter incremented on every now()
//              call. Strictly monotone and fully deterministic, which is what
//              the unit tests pin span ordering and metrics-dump bytes
//              against (wall time never enters the artifact).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace spf::telemetry {

class Clock {
 public:
  enum class Mode : std::uint8_t { kSteady, kVirtual };
  using Ticks = std::uint64_t;

  explicit Clock(Mode mode = Mode::kSteady) noexcept
      : mode_(mode), origin_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// kSteady: nanoseconds since construction. kVirtual: 1, 2, 3, ... —
  /// every call returns a strictly larger tick, even across threads.
  [[nodiscard]] Ticks now() const noexcept {
    if (mode_ == Mode::kVirtual) {
      return virtual_ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    return static_cast<Ticks>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() - origin_)
                                  .count());
  }

  /// Elapsed time as seconds (kSteady; for kVirtual this is ticks * 1e-9 and
  /// only useful as a monotone ordinal).
  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(now()) * 1e-9;
  }

  [[nodiscard]] const char* mode_name() const noexcept {
    return mode_ == Mode::kVirtual ? "virtual" : "steady";
  }

 private:
  Mode mode_;
  std::chrono::steady_clock::time_point origin_;
  mutable std::atomic<Ticks> virtual_ticks_{0};
};

}  // namespace spf::telemetry
