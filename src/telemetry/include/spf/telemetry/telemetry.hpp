// spf::telemetry — low-overhead tracing & metrics for sweep-scale profiling.
//
// Model:
//
//   Session — owns the clock and a fixed set of Lanes (lane 0 = the thread
//     that installed the session, lanes 1..N = run_indexed workers). Created
//     by a driver when --metrics-out= / --trace-out= asks for artifacts,
//     installed process-globally, exported after the work completes.
//
//   Lane — one timeline + one counter/gauge array. A lane is written only by
//     the single thread currently bound to it (thread-local pointer), so
//     recording takes no locks; merging happens after the workers have been
//     joined, which is what makes the whole scheme race-free under TSan.
//
//   SPF_SPAN("name") — scoped phase span: records a begin timestamp at
//     construction and fills in the end at destruction. Spans nest; the
//     per-lane event list is naturally sorted by begin time.
//
// Cost model (the subsystem must never tax a run that didn't ask for it):
//
//   compile-time off  — -DSPF_TELEMETRY=0 (CMake option SPF_TELEMETRY=OFF)
//     turns SPF_SPAN into nothing and count()/gauge_max() into empty inlines;
//     Session and the exporters stay compiled so drivers keep working (they
//     export empty artifacts).
//   runtime off       — no session installed: the fast path is one
//     thread-local pointer load and a predictable branch. No atomics, no
//     clock reads.
//   runtime on        — counter add = array index increment; span = two
//     clock reads + one vector push_back into lane-private storage.
//
// Determinism contract: telemetry only *observes*. Sweep artifacts (table /
// CSV / JSONL) are byte-identical with a session installed or absent, at any
// thread count — tests/telemetry_test.cpp pins this against the golden grid.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "spf/telemetry/clock.hpp"
#include "spf/telemetry/counters.hpp"

#ifndef SPF_TELEMETRY
#define SPF_TELEMETRY 1
#endif

namespace spf::telemetry {

/// One recorded phase span. `name` / `arg_name` must be string literals (the
/// exporter reads them after the instrumented scope has unwound). `end == 0`
/// marks a span that was still open at export time.
struct SpanEvent {
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr = no argument
  std::uint64_t arg = 0;
  Clock::Ticks begin = 0;
  Clock::Ticks end = 0;
  std::uint32_t depth = 0;  // nesting depth at begin (0 = top level)
};

/// One timeline counter sample — a named value at an instant, exported as a
/// Chrome trace-event "C" (counter) track so Perfetto renders it as a graph
/// over the lane's timeline (the adaptive controller's per-interval distance
/// is the first user). `name` must be a string literal. Unlike the Counter
/// enum these are *samples*, not merged totals: they appear only in the
/// timeline export, never in the metrics JSONL.
struct CounterSample {
  const char* name = nullptr;
  Clock::Ticks ts = 0;
  std::uint64_t value = 0;
};

class Session;

/// Per-thread recording target. Written only by the bound thread; the
/// session reads it after that thread's work has been joined.
class Lane {
 public:
  void add(Counter c, std::uint64_t delta) noexcept {
    counters_[static_cast<std::size_t>(c)] += delta;
  }
  void gauge_max(Gauge g, std::uint64_t value) noexcept {
    std::uint64_t& slot = gauges_[static_cast<std::size_t>(g)];
    if (value > slot) slot = value;
  }
  std::size_t open_span(const char* name, const char* arg_name,
                        std::uint64_t arg) {
    SpanEvent ev;
    ev.name = name;
    ev.arg_name = arg_name;
    ev.arg = arg;
    ev.begin = clock_->now();
    ev.depth = depth_++;
    spans_.push_back(ev);
    return spans_.size() - 1;
  }
  void close_span(std::size_t index) noexcept {
    spans_[index].end = clock_->now();
    --depth_;
  }
  void add_sample(const char* name, std::uint64_t value) {
    samples_.push_back(CounterSample{name, clock_->now(), value});
  }

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] const std::vector<SpanEvent>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<CounterSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const noexcept {
    return gauges_[static_cast<std::size_t>(g)];
  }

 private:
  friend class Session;
  Lane(const Clock* clock, std::uint32_t id, std::string label)
      : clock_(clock), id_(id), label_(std::move(label)) {}

  const Clock* clock_;
  std::uint32_t id_;
  std::string label_;
  std::array<std::uint64_t, kCounterCount> counters_{};
  std::array<std::uint64_t, kGaugeCount> gauges_{};
  std::vector<SpanEvent> spans_;
  std::vector<CounterSample> samples_;
  std::uint32_t depth_ = 0;
};

/// Deterministically merged view of a session: counters summed and gauges
/// maxed across lanes in lane-id order.
struct MetricsSnapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kGaugeCount> gauges{};
  std::uint64_t span_events = 0;

  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const noexcept {
    return gauges[static_cast<std::size_t>(g)];
  }
};

class Session {
 public:
  struct Options {
    Clock::Mode clock_mode = Clock::Mode::kSteady;
  };

  /// `lanes` >= 1. Lane 0 is labeled "main"; lane i > 0 is "worker-i" (the
  /// run_indexed worker lanes — worker w binds lane w + 1).
  Session(std::size_t lanes, Options options);
  explicit Session(std::size_t lanes) : Session(lanes, Options()) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] std::size_t lane_count() const noexcept { return lanes_.size(); }
  /// nullptr when `id` is out of range (an oversubscribed worker simply
  /// records nothing rather than racing another lane).
  [[nodiscard]] Lane* lane(std::size_t id) noexcept {
    return id < lanes_.size() ? lanes_[id].get() : nullptr;
  }
  [[nodiscard]] const Lane* lane(std::size_t id) const noexcept {
    return id < lanes_.size() ? lanes_[id].get() : nullptr;
  }
  [[nodiscard]] const Clock& clock() const noexcept { return clock_; }

  /// Merge all lanes (only call after the recording threads have joined).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Deterministic JSONL metrics dump (see docs/telemetry.md for the record
  /// schema): meta, counters in enum order, gauges in enum order, per-name
  /// span aggregates sorted by name, lanes by id.
  void write_metrics_jsonl(std::ostream& out) const;

  /// Chrome trace-event / Perfetto-loadable timeline: one JSON object with a
  /// "traceEvents" array of complete ("X") slices, one tid per lane, ts/dur
  /// in microseconds. Load via chrome://tracing or https://ui.perfetto.dev.
  void write_chrome_trace(std::ostream& out,
                          const std::string& process_name = "spf") const;

 private:
  Clock clock_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

namespace detail {
extern std::atomic<Session*> g_session;
extern thread_local Lane* tl_lane;
}  // namespace detail

/// Installs `session` as the process-global recording target and binds the
/// calling thread to its lane 0 (nullptr uninstalls / unbinds). Returns the
/// previously installed session so callers can restore it — perf_smoke uses
/// this to A/B the telemetry-off and telemetry-on cost of the same sweep.
Session* install(Session* session) noexcept;

[[nodiscard]] inline Session* current() noexcept {
#if SPF_TELEMETRY
  return detail::g_session.load(std::memory_order_acquire);
#else
  return nullptr;
#endif
}

/// True when the *calling thread* is recording (session installed and this
/// thread bound to one of its lanes). This is the hot-path gate.
[[nodiscard]] inline bool enabled() noexcept {
#if SPF_TELEMETRY
  return detail::tl_lane != nullptr;
#else
  return false;
#endif
}

inline void count(Counter c, std::uint64_t delta = 1) noexcept {
#if SPF_TELEMETRY
  if (Lane* lane = detail::tl_lane) lane->add(c, delta);
#else
  (void)c;
  (void)delta;
#endif
}

inline void gauge_max(Gauge g, std::uint64_t value) noexcept {
#if SPF_TELEMETRY
  if (Lane* lane = detail::tl_lane) lane->gauge_max(g, value);
#else
  (void)g;
  (void)value;
#endif
}

/// Records a timeline counter sample (a "C" track point in the Chrome trace
/// export — see CounterSample) on the calling thread's lane; no-op when the
/// thread is not recording. `name` must be a string literal.
inline void sample(const char* name, std::uint64_t value) {
#if SPF_TELEMETRY
  if (Lane* lane = detail::tl_lane) lane->add_sample(name, value);
#else
  (void)name;
  (void)value;
#endif
}

/// Binds the calling thread to lane `lane_id` of the current session for the
/// scope's lifetime (restores the previous binding on exit). run_indexed
/// workers hold one of these; out-of-range ids bind nothing.
class LaneScope {
 public:
  explicit LaneScope(std::size_t lane_id) noexcept {
#if SPF_TELEMETRY
    prev_ = detail::tl_lane;
    Session* session = detail::g_session.load(std::memory_order_acquire);
    detail::tl_lane = session != nullptr ? session->lane(lane_id) : nullptr;
#else
    (void)lane_id;
#endif
  }
  ~LaneScope() {
#if SPF_TELEMETRY
    detail::tl_lane = prev_;
#endif
  }
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
#if SPF_TELEMETRY
  Lane* prev_ = nullptr;
#endif
};

/// RAII phase span; prefer the SPF_SPAN macro. `name` / `arg_name` must be
/// string literals.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept
      : ScopedSpan(name, nullptr, 0) {}
  ScopedSpan(const char* name, const char* arg_name, std::uint64_t arg) noexcept {
#if SPF_TELEMETRY
    lane_ = detail::tl_lane;
    if (lane_ != nullptr) index_ = lane_->open_span(name, arg_name, arg);
#else
    (void)name;
    (void)arg_name;
    (void)arg;
#endif
  }
  ~ScopedSpan() {
#if SPF_TELEMETRY
    if (lane_ != nullptr) lane_->close_span(index_);
#endif
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
#if SPF_TELEMETRY
  Lane* lane_ = nullptr;
  std::size_t index_ = 0;
#endif
};

}  // namespace spf::telemetry

#define SPF_TELEMETRY_CAT2(a, b) a##b
#define SPF_TELEMETRY_CAT(a, b) SPF_TELEMETRY_CAT2(a, b)

#if SPF_TELEMETRY
/// SPF_SPAN("replay") or SPF_SPAN("cell", "id", cell.id): scoped phase span
/// on the calling thread's lane; no-op when telemetry is off.
#define SPF_SPAN(...)                                      \
  ::spf::telemetry::ScopedSpan SPF_TELEMETRY_CAT(          \
      spf_telemetry_span_, __LINE__)(__VA_ARGS__)
#else
#define SPF_SPAN(...) ((void)0)
#endif
