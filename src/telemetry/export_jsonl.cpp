// Metrics exporter: deterministic JSONL dump of a session's merged state.
//
// Record schema (one JSON object per line, see docs/telemetry.md):
//   {"record":"meta", ...}                          exactly once, first
//   {"record":"counter","name":...,"total":N}       Counter enum order
//   {"record":"gauge","name":...,"max":N}           Gauge enum order
//   {"record":"span","name":...,"count":N,"total_ticks":T}   sorted by name
//   {"record":"lane","id":I,"label":...,"spans":N}  lane-id order
//
// Under the virtual clock every field is a pure function of the recorded
// work, so two identical runs dump identical bytes — the property the merge
// determinism test pins. Under the steady clock only "total_ticks" varies.
#include <map>
#include <ostream>
#include <string>
#include <utility>

#include "spf/common/jsonl.hpp"
#include "spf/telemetry/telemetry.hpp"

namespace spf::telemetry {

void Session::write_metrics_jsonl(std::ostream& out) const {
  const MetricsSnapshot snap = snapshot();

  JsonObject meta;
  meta.add("record", "meta")
      .add("schema", "spf-telemetry-v1")
      .add("clock", clock_.mode_name())
      .add("lanes", static_cast<std::uint64_t>(lanes_.size()))
      .add("span_events", snap.span_events);
  out << meta;

  for (std::size_t c = 0; c < kCounterCount; ++c) {
    JsonObject obj;
    obj.add("record", "counter")
        .add("name", to_string(static_cast<Counter>(c)))
        .add("total", snap.counters[c]);
    out << obj;
  }
  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    JsonObject obj;
    obj.add("record", "gauge")
        .add("name", to_string(static_cast<Gauge>(g)))
        .add("max", snap.gauges[g]);
    out << obj;
  }

  // Per-name span aggregates. std::map keeps the emission order sorted by
  // name — stable regardless of which lane saw which span first.
  struct SpanAgg {
    std::uint64_t count = 0;
    std::uint64_t total_ticks = 0;
  };
  std::map<std::string, SpanAgg> by_name;
  for (const auto& lane : lanes_) {
    for (const SpanEvent& ev : lane->spans()) {
      SpanAgg& agg = by_name[ev.name];
      ++agg.count;
      if (ev.end >= ev.begin) agg.total_ticks += ev.end - ev.begin;
    }
  }
  for (const auto& [name, agg] : by_name) {
    JsonObject obj;
    obj.add("record", "span")
        .add("name", name)
        .add("count", agg.count)
        .add("total_ticks", agg.total_ticks);
    out << obj;
  }

  for (const auto& lane : lanes_) {
    JsonObject obj;
    obj.add("record", "lane")
        .add("id", static_cast<std::uint64_t>(lane->id()))
        .add("label", lane->label())
        .add("spans", static_cast<std::uint64_t>(lane->spans().size()));
    out << obj;
  }
}

}  // namespace spf::telemetry
