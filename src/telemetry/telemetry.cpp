#include "spf/telemetry/telemetry.hpp"

namespace spf::telemetry {

const char* to_string(Counter c) noexcept {
  switch (c) {
    case Counter::kSweepCells: return "sweep.cells";
    case Counter::kSweepCellsFailed: return "sweep.cells_failed";
    case Counter::kTraceEmissions: return "trace.emissions";
    case Counter::kTraceMemoHits: return "trace.memo_hits";
    case Counter::kTraceMemoMisses: return "trace.memo_misses";
    case Counter::kBaselineRuns: return "replay.baseline_runs";
    case Counter::kReplayRuns: return "replay.sp_runs";
    case Counter::kReplayRecords: return "replay.records";
    case Counter::kHelperRecords: return "replay.helper_records";
    case Counter::kHelperRecordsSynthesized:
      return "replay.helper_records_synthesized";
    case Counter::kHelperScratchBytesSaved:
      return "replay.helper_scratch_bytes_saved";
    case Counter::kDistanceBounds: return "refine.distance_bounds";
    case Counter::kRefineRuns: return "refine.runs";
    case Counter::kPhaseAnalyses: return "affinity.phase_runs";
    case Counter::kAffinityPhases: return "affinity.phases";
    case Counter::kAdaptiveRuns: return "adaptive.runs";
    case Counter::kAdaptiveIntervals: return "adaptive.intervals";
    case Counter::kAdaptiveIncreases: return "adaptive.increases";
    case Counter::kAdaptiveDecreases: return "adaptive.decreases";
    case Counter::kAdaptiveHolds: return "adaptive.holds";
    case Counter::kAdaptiveReclamps: return "adaptive.reclamps";
    case Counter::kL2Lookups: return "sim.l2_lookups";
    case Counter::kL2TotallyHits: return "sim.l2_totally_hits";
    case Counter::kL2PartiallyHits: return "sim.l2_partially_hits";
    case Counter::kL2TotallyMisses: return "sim.l2_totally_misses";
    case Counter::kPollutionCase1: return "sim.pollution_case1";
    case Counter::kPollutionCase2: return "sim.pollution_case2";
    case Counter::kPollutionCase3: return "sim.pollution_case3";
    case Counter::kPrefetchFillsTracked: return "prefetch.fills_tracked";
    case Counter::kPrefetchFateUsedTimely: return "prefetch.fate.used_timely";
    case Counter::kPrefetchFateUsedLate: return "prefetch.fate.used_late";
    case Counter::kPrefetchFateEvictedUnused:
      return "prefetch.fate.evicted_unused";
    case Counter::kPrefetchFatePolluting: return "prefetch.fate.polluting";
    case Counter::kPrefetchFateResidentUnused:
      return "prefetch.fate.resident_unused";
    case Counter::kCount: break;
  }
  return "?";
}

const char* to_string(Gauge g) noexcept {
  switch (g) {
    case Gauge::kTraceRecordsMax: return "trace.records_max";
    case Gauge::kArenaBytesMax: return "replay.arena_bytes_max";
    case Gauge::kAdaptiveDistanceMax: return "adaptive.distance_max";
    case Gauge::kCount: break;
  }
  return "?";
}

namespace detail {
std::atomic<Session*> g_session{nullptr};
thread_local Lane* tl_lane = nullptr;
}  // namespace detail

Session::Session(std::size_t lanes, Options options)
    : clock_(options.clock_mode) {
  if (lanes == 0) lanes = 1;
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    const std::string label =
        i == 0 ? std::string("main") : "worker-" + std::to_string(i);
    lanes_.emplace_back(new Lane(&clock_, static_cast<std::uint32_t>(i), label));
  }
}

Session* install(Session* session) noexcept {
#if SPF_TELEMETRY
  Session* previous =
      detail::g_session.exchange(session, std::memory_order_acq_rel);
  detail::tl_lane = session != nullptr ? session->lane(0) : nullptr;
  return previous;
#else
  (void)session;
  return nullptr;
#endif
}

MetricsSnapshot Session::snapshot() const {
  MetricsSnapshot snap;
  // Lane-id order; sums and maxes are order-independent anyway, so two runs
  // whose threads interleaved differently still merge to identical numbers.
  for (const auto& lane : lanes_) {
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      snap.counters[c] += lane->counter(static_cast<Counter>(c));
    }
    for (std::size_t g = 0; g < kGaugeCount; ++g) {
      const std::uint64_t v = lane->gauge(static_cast<Gauge>(g));
      if (v > snap.gauges[g]) snap.gauges[g] = v;
    }
    snap.span_events += lane->spans().size();
  }
  return snap;
}

}  // namespace spf::telemetry
