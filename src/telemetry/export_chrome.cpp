// Timeline exporter: Chrome trace-event JSON (the "JSON Object Format" with a
// traceEvents array), loadable in chrome://tracing and https://ui.perfetto.dev.
//
// Layout: one process (pid 1) named after the driver, one thread per lane
// (tid = lane id) named "main" / "worker-N", and one complete ("X") slice per
// recorded span with ts/dur in microseconds. Spans were pushed at *begin*
// time into lane-private vectors, so each lane's slices are already sorted by
// ts and properly nested — the invariants scripts/check_trace_json.py
// validates. A span still open at export time (it should not happen in the
// drivers, which export after the sweep returns) is clamped to a zero-length
// slice rather than inventing an end time.
#include <ostream>
#include <string>

#include "spf/common/jsonl.hpp"
#include "spf/telemetry/telemetry.hpp"

namespace spf::telemetry {
namespace {

/// Clock ticks (ns for the steady clock) -> trace-event microseconds.
double to_us(Clock::Ticks ticks) { return static_cast<double>(ticks) / 1000.0; }

}  // namespace

void Session::write_chrome_trace(std::ostream& out,
                                 const std::string& process_name) const {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const JsonObject& obj) {
    if (!first) out << ",\n";
    first = false;
    out << obj.line();
  };

  JsonObject process;
  process.add("ph", "M")
      .add("pid", std::uint64_t{1})
      .add("tid", std::uint64_t{0})
      .add("name", "process_name")
      .add_raw("args", "{\"name\":\"" + json_escape(process_name) + "\"}");
  emit(process);

  for (const auto& lane : lanes_) {
    JsonObject thread;
    thread.add("ph", "M")
        .add("pid", std::uint64_t{1})
        .add("tid", static_cast<std::uint64_t>(lane->id()))
        .add("name", "thread_name")
        .add_raw("args", "{\"name\":\"" + json_escape(lane->label()) + "\"}");
    emit(thread);
    JsonObject sort;
    sort.add("ph", "M")
        .add("pid", std::uint64_t{1})
        .add("tid", static_cast<std::uint64_t>(lane->id()))
        .add("name", "thread_sort_index")
        .add_raw("args",
                 "{\"sort_index\":" + std::to_string(lane->id()) + "}");
    emit(sort);
  }

  for (const auto& lane : lanes_) {
    for (const SpanEvent& ev : lane->spans()) {
      const Clock::Ticks end = ev.end >= ev.begin ? ev.end : ev.begin;
      JsonObject slice;
      slice.add("ph", "X")
          .add("pid", std::uint64_t{1})
          .add("tid", static_cast<std::uint64_t>(lane->id()))
          .add("name", ev.name)
          .add("cat", "spf")
          .add("ts", to_us(ev.begin))
          .add("dur", to_us(end - ev.begin));
      if (ev.arg_name != nullptr) {
        slice.add_raw("args", "{\"" + json_escape(ev.arg_name) +
                                  "\":" + std::to_string(ev.arg) + "}");
      }
      emit(slice);
    }
  }

  // Counter ("C") tracks after the slices: Perfetto renders each distinct
  // name as a value-over-time graph on its lane. Sample order within a lane
  // is already chronological (lane-private push at record time); the trace
  // format does not require cross-phase ordering.
  for (const auto& lane : lanes_) {
    for (const CounterSample& s : lane->samples()) {
      JsonObject counter;
      counter.add("ph", "C")
          .add("pid", std::uint64_t{1})
          .add("tid", static_cast<std::uint64_t>(lane->id()))
          .add("name", s.name)
          .add("ts", to_us(s.ts))
          .add_raw("args", "{\"value\":" + std::to_string(s.value) + "}");
      emit(counter);
    }
  }

  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace spf::telemetry
