#include "spf/profile/phase.hpp"

#include <cmath>
#include <cstdlib>

#include "spf/common/assert.hpp"
#include "spf/common/rng.hpp"

namespace spf {
namespace {

using Signature = std::vector<double>;

/// Normalized so that signatures sum to 1; Manhattan distance then lies in
/// [0, 2].
Signature window_signature(std::span<const TraceRecord> window,
                           const CacheGeometry& geometry,
                           std::uint32_t buckets) {
  Signature sig(buckets, 0.0);
  for (const TraceRecord& r : window) {
    const LineAddr line = geometry.line_of(r.addr);
    // SplitMix64 as a line hash decorrelates bucket collisions from the
    // address layout (plain modulo would alias strided footprints).
    const std::uint64_t h = SplitMix64(line).next();
    sig[h % buckets] += 1.0;
  }
  const auto total = static_cast<double>(window.size());
  if (total > 0) {
    for (double& v : sig) v /= total;
  }
  return sig;
}

double manhattan(const Signature& a, const Signature& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

}  // namespace

PhaseReport detect_phases(const TraceBuffer& trace, const CacheGeometry& geometry,
                          const PhaseConfig& config) {
  SPF_ASSERT(config.window_records > 0, "window must be positive");
  SPF_ASSERT(config.signature_buckets > 0, "signature needs buckets");

  PhaseReport report;
  if (trace.empty()) return report;

  const std::span<const TraceRecord> records = trace.records();
  std::vector<Signature> phase_signatures;  // representative per phase id

  std::size_t phase_begin = 0;
  std::uint32_t current_phase = 0;
  bool have_current = false;

  for (std::size_t begin = 0; begin < records.size();
       begin += config.window_records) {
    const std::size_t end = std::min(begin + config.window_records, records.size());
    const Signature sig = window_signature(records.subspan(begin, end - begin),
                                           geometry, config.signature_buckets);

    // Match against known phases; nearest signature under threshold wins.
    std::uint32_t best_id = 0;
    double best_dist = 2.0;
    for (std::uint32_t id = 0; id < phase_signatures.size(); ++id) {
      const double d = manhattan(sig, phase_signatures[id]);
      if (d < best_dist) {
        best_dist = d;
        best_id = id;
      }
    }
    std::uint32_t window_phase;
    if (!phase_signatures.empty() && best_dist <= config.boundary_threshold) {
      window_phase = best_id;
    } else {
      window_phase = static_cast<std::uint32_t>(phase_signatures.size());
      phase_signatures.push_back(sig);
    }

    if (!have_current) {
      have_current = true;
      current_phase = window_phase;
      phase_begin = begin;
    } else if (window_phase != current_phase) {
      report.phases.push_back(
          Phase{.begin_record = phase_begin, .end_record = begin,
                .phase_id = current_phase});
      current_phase = window_phase;
      phase_begin = begin;
    }
  }
  report.phases.push_back(Phase{.begin_record = phase_begin,
                                .end_record = records.size(),
                                .phase_id = current_phase});
  report.distinct_phases = static_cast<std::uint32_t>(phase_signatures.size());
  return report;
}

}  // namespace spf
