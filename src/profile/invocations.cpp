#include "spf/profile/invocations.hpp"

#include <algorithm>
#include <memory>

#include "spf/common/assert.hpp"
namespace spf {

WorkloadSaResult analyze_workload_sa(
    const TraceBuffer& trace, const std::vector<std::uint32_t>& invocation_starts,
    const CacheGeometry& geometry) {
  SPF_ASSERT(!invocation_starts.empty() && invocation_starts.front() == 0,
             "invocation starts must begin at iteration 0");
  WorkloadSaResult out;

  // Per-invocation pass: a fresh analyzer per invocation, iteration numbers
  // re-based so SA is "iterations since this call of the hot function".
  std::size_t inv = 0;
  auto analyzer = std::make_unique<SetAffinityAnalyzer>(geometry);
  std::uint32_t base = 0;
  std::vector<SetAffinityResult> per_invocation;
  auto close_invocation = [&]() {
    per_invocation.push_back(analyzer->finish());
    analyzer = std::make_unique<SetAffinityAnalyzer>(geometry);
  };
  for (const TraceRecord& r : trace) {
    while (inv + 1 < invocation_starts.size() &&
           r.outer_iter >= invocation_starts[inv + 1]) {
      close_invocation();
      ++inv;
      base = invocation_starts[inv];
    }
    analyzer->observe(r.addr, r.outer_iter - base);
  }
  close_invocation();

  for (const SetAffinityResult& r : per_invocation) {
    out.merged.samples.insert(out.merged.samples.end(), r.samples.begin(),
                              r.samples.end());
    out.merged.accesses += r.accesses;
    out.merged.touched_sets = std::max(out.merged.touched_sets, r.touched_sets);
    out.merged.outer_iterations += r.outer_iterations;
    for (const auto& [set, sa] : r.per_set) {
      auto [it, inserted] = out.merged.per_set.emplace(set, sa);
      if (!inserted) it->second = std::min(it->second, sa);
    }
  }
  out.invocations_analyzed = static_cast<std::uint32_t>(per_invocation.size());

  if (out.merged.samples.empty()) {
    // No single invocation was long enough to saturate any set: measure over
    // the cumulative stream instead (documented deviation for short-call hot
    // functions like MST's BlueRule scan).
    out.merged = SetAffinityAnalyzer::analyze(trace, geometry);
    out.cumulative_fallback = true;
  }
  return out;
}

}  // namespace spf
