#include "spf/profile/invocations.hpp"

namespace spf {

WorkloadSaResult analyze_workload_sa(
    const TraceBuffer& trace, const std::vector<std::uint32_t>& invocation_starts,
    const CacheGeometry& geometry) {
  TraceViewCursor cursor(trace);
  return analyze_workload_sa(cursor, invocation_starts, geometry);
}

}  // namespace spf
