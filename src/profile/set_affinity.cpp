#include "spf/profile/set_affinity.hpp"

#include <algorithm>
#include <sstream>

#include "spf/common/assert.hpp"

namespace spf {

std::uint32_t SetAffinityResult::min_sa() const {
  SPF_ASSERT(!samples.empty(), "no set saturated");
  return *std::min_element(samples.begin(), samples.end());
}

std::uint32_t SetAffinityResult::max_sa() const {
  SPF_ASSERT(!samples.empty(), "no set saturated");
  return *std::max_element(samples.begin(), samples.end());
}

double SetAffinityResult::quantile(double q) const {
  SPF_ASSERT(!samples.empty(), "no set saturated");
  std::vector<std::uint32_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[rank];
}

std::string SetAffinityResult::to_string() const {
  std::ostringstream out;
  out << "SA{touched_sets=" << touched_sets << " saturated=" << per_set.size()
      << " accesses=" << accesses << " outer_iters=" << outer_iterations;
  if (!samples.empty()) {
    out << " range=[" << min_sa() << ", " << max_sa() << "]"
        << " median=" << quantile(0.5);
  }
  out << "}";
  return out.str();
}

SetAffinityAnalyzer::SetAffinityAnalyzer(const CacheGeometry& geometry,
                                         SetAffinityMode mode)
    : geometry_(geometry), mode_(mode) {}

std::uint32_t SetAffinityAnalyzer::observe(Addr addr,
                                           std::uint32_t outer_iter) {
  ++result_.accesses;
  result_.outer_iterations = std::max(result_.outer_iterations, outer_iter + 1);

  const LineAddr line = geometry_.line_of(addr);
  const std::uint64_t set = geometry_.set_of_line(line);
  SetState& state = sets_[set];

  if (state.saturated && mode_ == SetAffinityMode::kFirstSaturation) return 0;

  // Figure 3: only *new* distinct blocks advance the set's count.
  if (!state.blocks.insert(line).second) return 0;

  if (state.blocks.size() >= geometry_.ways()) {
    // Iteration count is 1-based and measured from the current window's
    // start: the loop start for the first saturation (exactly Figure 3),
    // or the previous saturation point in kRecurrent mode.
    const std::uint32_t sa = outer_iter + 1 - state.window_start;
    result_.samples.push_back(sa);
    if (!state.saturated) {
      state.saturated = true;
      result_.per_set.emplace(set, sa);
    }
    if (mode_ == SetAffinityMode::kRecurrent) {
      state.blocks.clear();
      state.window_start = outer_iter + 1;
    }
    return sa;
  }
  return 0;
}

SetAffinityResult SetAffinityAnalyzer::finish() {
  result_.touched_sets = sets_.size();
  SetAffinityResult out = std::move(result_);
  result_ = SetAffinityResult{};
  sets_.clear();
  return out;
}

SetAffinityResult SetAffinityAnalyzer::analyze(const TraceBuffer& trace,
                                               const CacheGeometry& geometry,
                                               SetAffinityMode mode) {
  SetAffinityAnalyzer analyzer(geometry, mode);
  for (const TraceRecord& r : trace) analyzer.observe(r.addr, r.outer_iter);
  return analyzer.finish();
}

}  // namespace spf
