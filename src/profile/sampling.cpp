#include "spf/profile/sampling.hpp"

#include "spf/common/assert.hpp"

namespace spf {

std::vector<Burst> burst_sample(const TraceBuffer& trace,
                                const BurstConfig& config) {
  SPF_ASSERT(config.burst_iters > 0, "burst length must be positive");
  std::vector<Burst> bursts;
  if (trace.empty()) return bursts;

  const std::uint32_t period = config.burst_iters + config.interval_iters;
  Burst* current = nullptr;
  [[maybe_unused]] std::uint32_t last_iter = 0;
  for (const TraceRecord& r : trace) {
    SPF_DEBUG_ASSERT(r.outer_iter >= last_iter, "outer_iter must be monotone");
    last_iter = r.outer_iter;
    const std::uint32_t phase_pos = r.outer_iter % period;
    if (phase_pos >= config.burst_iters) {
      current = nullptr;  // inside a skip interval
      continue;
    }
    const std::uint32_t burst_start = r.outer_iter - phase_pos;
    if (current == nullptr || current->first_outer_iter != burst_start) {
      bursts.push_back(Burst{.first_outer_iter = burst_start, .records = {}});
      current = &bursts.back();
    }
    TraceRecord rebased = r;
    rebased.outer_iter = r.outer_iter - burst_start;
    current->records.mutable_records().push_back(rebased);
  }
  return bursts;
}

double sampled_fraction(const TraceBuffer& trace,
                        const std::vector<Burst>& bursts) {
  if (trace.empty()) return 0.0;
  std::uint64_t kept = 0;
  for (const Burst& b : bursts) kept += b.records.size();
  return static_cast<double>(kept) / static_cast<double>(trace.size());
}

}  // namespace spf
