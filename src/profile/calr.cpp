#include "spf/profile/calr.hpp"

#include <sstream>

#include "spf/cache/cache.hpp"

namespace spf {

std::string CalrEstimate::to_string() const {
  std::ostringstream out;
  out << "CALR=" << calr << " (compute=" << compute_cycles
      << " access=" << access_cycles << " l1_hits=" << l1_hits
      << " l2_hits=" << l2_hits << " l2_misses=" << l2_misses << ")";
  return out.str();
}

CalrEstimate estimate_calr(const TraceBuffer& trace, const CalrConfig& config) {
  CalrEstimate est;
  Cache l1(config.l1, ReplacementKind::kLru);
  Cache l2(config.l2, ReplacementKind::kLru);

  for (const TraceRecord& r : trace) {
    est.compute_cycles += r.compute_gap;
    if (r.kind() == AccessKind::kPrefetch) continue;  // helper-only traffic

    const LineAddr l1_line = config.l1.line_of(r.addr);
    const LineAddr l2_line = config.l2.line_of(r.addr);
    if (l1.access(l1_line, r.kind(), 0)) {
      ++est.l1_hits;
      est.access_cycles += config.l1_latency;
      continue;
    }
    if (l2.access(l2_line, r.kind(), 0)) {
      ++est.l2_hits;
      est.access_cycles += config.l2_latency;
    } else {
      ++est.l2_misses;
      est.access_cycles += config.memory_latency;
      l2.fill(l2_line, FillOrigin::kDemand, 0, 0);
    }
    l1.fill(l1_line, FillOrigin::kDemand, 0, 0);
  }

  est.calr = est.access_cycles
                 ? static_cast<double>(est.compute_cycles) /
                       static_cast<double>(est.access_cycles)
                 : 0.0;
  return est;
}

}  // namespace spf
