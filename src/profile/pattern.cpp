#include "spf/profile/pattern.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "spf/common/assert.hpp"

namespace spf {
namespace {

struct SiteState {
  bool has_last = false;
  Addr last_addr = 0;
  std::uint64_t deltas = 0;
  /// delta -> count, capped at max_tracked_deltas distinct keys.
  std::unordered_map<std::int64_t, std::uint64_t> histogram;
  std::uint64_t untracked = 0;
  std::uint64_t accesses = 0;
};

}  // namespace

const char* to_string(AccessPattern p) noexcept {
  switch (p) {
    case AccessPattern::kSequential: return "sequential";
    case AccessPattern::kStrided: return "strided";
    case AccessPattern::kIrregular: return "irregular";
  }
  return "?";
}

std::string PatternReport::to_string() const {
  std::ostringstream out;
  out << "patterns{seq=" << sequential_fraction
      << " strided=" << strided_fraction << " irregular=" << irregular_fraction
      << " sites=" << per_site.size() << "}";
  return out.str();
}

PatternReport classify_patterns(const TraceBuffer& trace,
                                const PatternConfig& config) {
  SPF_ASSERT(config.line_bytes > 0, "line size must be positive");
  std::unordered_map<std::uint8_t, SiteState> sites;

  for (const TraceRecord& r : trace) {
    SiteState& s = sites[r.site];
    ++s.accesses;
    if (s.has_last) {
      const auto delta = static_cast<std::int64_t>(r.addr) -
                         static_cast<std::int64_t>(s.last_addr);
      ++s.deltas;
      auto it = s.histogram.find(delta);
      if (it != s.histogram.end()) {
        ++it->second;
      } else if (s.histogram.size() < config.max_tracked_deltas) {
        s.histogram.emplace(delta, 1);
      } else {
        ++s.untracked;
      }
    }
    s.has_last = true;
    s.last_addr = r.addr;
  }

  PatternReport report;
  std::uint64_t total = 0;
  std::uint64_t by_class[3] = {0, 0, 0};
  for (const auto& [site, s] : sites) {
    SitePattern verdict;
    verdict.accesses = s.accesses;
    if (s.deltas > 0 && !s.histogram.empty()) {
      auto best = std::max_element(
          s.histogram.begin(), s.histogram.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      verdict.dominant_delta = best->first;
      verdict.regularity =
          static_cast<double>(best->second) / static_cast<double>(s.deltas);
    }
    if (verdict.regularity >= config.regularity_threshold) {
      const auto mag = verdict.dominant_delta < 0 ? -verdict.dominant_delta
                                                  : verdict.dominant_delta;
      verdict.pattern = mag <= config.line_bytes ? AccessPattern::kSequential
                                                 : AccessPattern::kStrided;
    } else {
      verdict.pattern = AccessPattern::kIrregular;
    }
    by_class[static_cast<int>(verdict.pattern)] += s.accesses;
    total += s.accesses;
    report.per_site.emplace(site, verdict);
  }
  if (total > 0) {
    report.sequential_fraction =
        static_cast<double>(by_class[0]) / static_cast<double>(total);
    report.strided_fraction =
        static_cast<double>(by_class[1]) / static_cast<double>(total);
    report.irregular_fraction =
        static_cast<double>(by_class[2]) / static_cast<double>(total);
  }
  return report;
}

}  // namespace spf
