#include "spf/profile/incremental_affinity.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace spf {

std::string PhaseAffinityConfig::validate() const {
  if (window_iters == 0) return "phase window must be >= 1 outer iteration";
  if (!std::isfinite(hysteresis) || hysteresis < 0.0) {
    return "phase hysteresis must be finite and >= 0";
  }
  if (!std::isfinite(ema_alpha) || ema_alpha <= 0.0 || ema_alpha > 1.0) {
    return "phase ema_alpha must be in (0, 1]";
  }
  return {};
}

std::uint32_t PhasedSaResult::min_sa_over_phases() const {
  std::uint32_t best = 0;
  for (const AffinityPhase& p : phases) {
    if (p.samples == 0) continue;
    if (best == 0 || p.min_sa < best) best = p.min_sa;
  }
  SPF_ASSERT(best != 0, "no phase recorded a sample");
  return best;
}

std::string PhasedSaResult::to_string() const {
  std::ostringstream out;
  out << "PhasedSA{" << whole.merged.to_string() << " phases=[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const AffinityPhase& p = phases[i];
    if (i != 0) out << " ";
    out << "[" << p.begin_iter << "," << p.end_iter << ")min=" << p.min_sa
        << "x" << p.samples;
  }
  out << "]}";
  return out.str();
}

IncrementalAffinityAnalyzer::IncrementalAffinityAnalyzer(
    const CacheGeometry& geometry, std::vector<std::uint32_t> invocation_starts,
    const PhaseAffinityConfig& config)
    : geometry_(geometry),
      invocation_starts_(std::move(invocation_starts)),
      config_(config),
      analyzer_(geometry) {
  SPF_ASSERT(!invocation_starts_.empty() && invocation_starts_.front() == 0,
             "invocation starts must begin at iteration 0");
}

void IncrementalAffinityAnalyzer::observe(const TraceRecord& r) {
  while (inv_ + 1 < invocation_starts_.size() &&
         r.outer_iter >= invocation_starts_[inv_ + 1]) {
    per_invocation_.push_back(analyzer_.finish());
    ++inv_;
    base_ = invocation_starts_[inv_];
  }
  const std::uint32_t sa = analyzer_.observe(r.addr, r.outer_iter - base_);
  iter_end_ = std::max(iter_end_, r.outer_iter + 1);
  if (sa != 0) on_sample(r.outer_iter, sa);
}

bool IncrementalAffinityAnalyzer::needs_cumulative_pass() {
  SPF_ASSERT(!merged_, "per-invocation pass already closed");
  per_invocation_.push_back(analyzer_.finish());
  for (const SetAffinityResult& r : per_invocation_) {
    whole_.merged.samples.insert(whole_.merged.samples.end(),
                                 r.samples.begin(), r.samples.end());
    whole_.merged.accesses += r.accesses;
    whole_.merged.touched_sets =
        std::max(whole_.merged.touched_sets, r.touched_sets);
    whole_.merged.outer_iterations += r.outer_iterations;
    for (const auto& [set, sa] : r.per_set) {
      auto [it, inserted] = whole_.merged.per_set.emplace(set, sa);
      if (!inserted) it->second = std::min(it->second, sa);
    }
  }
  whole_.invocations_analyzed =
      static_cast<std::uint32_t>(per_invocation_.size());
  per_invocation_.clear();
  merged_ = true;
  if (!whole_.merged.samples.empty()) return false;

  // Restart the phase tracker too: the phases must describe the analysis
  // actually reported (the cumulative stream), not the abandoned one.
  fallback_ = true;
  window_open_ = false;
  ema_set_ = false;
  iter_end_ = 0;
  current_ = AffinityPhase{};
  phases_.clear();
  return true;
}

void IncrementalAffinityAnalyzer::observe_cumulative(const TraceRecord& r) {
  SPF_ASSERT(fallback_, "cumulative pass not requested");
  const std::uint32_t sa = analyzer_.observe(r.addr, r.outer_iter);
  iter_end_ = std::max(iter_end_, r.outer_iter + 1);
  if (sa != 0) on_sample(r.outer_iter, sa);
}

PhasedSaResult IncrementalAffinityAnalyzer::finish() {
  SPF_ASSERT(merged_, "call needs_cumulative_pass() before finish()");
  if (fallback_) {
    whole_.merged = analyzer_.finish();
    whole_.cumulative_fallback = true;
  }
  close_window();
  current_.end_iter = std::max(iter_end_, current_.begin_iter);
  if (current_.samples == 0) current_.min_sa = 0;
  phases_.push_back(current_);

  PhasedSaResult out;
  out.whole = std::move(whole_);
  out.phases = std::move(phases_);
  return out;
}

void IncrementalAffinityAnalyzer::on_sample(std::uint32_t cumulative_iter,
                                            std::uint32_t sa) {
  const std::uint64_t w = cumulative_iter / config_.window_iters;
  if (window_open_ && w <= window_idx_) {
    // Same window — or an out-of-order record (fuzzed inputs): fold it into
    // the open window so phase spans stay monotone.
    window_min_ = std::min(window_min_, sa);
    ++window_count_;
    return;
  }
  close_window();
  window_open_ = true;
  window_idx_ = w;
  window_min_ = sa;
  window_count_ = 1;
}

void IncrementalAffinityAnalyzer::close_window() {
  if (!window_open_) return;
  window_open_ = false;
  const double estimate = window_min_;
  if (!ema_set_) {
    ema_ = estimate;
    ema_set_ = true;
    absorb_window();
    return;
  }
  const double deviation =
      estimate > ema_ ? estimate - ema_ : ema_ - estimate;
  if (config_.detect_phases && deviation > config_.hysteresis * ema_) {
    // The shifted window opens a new phase at its own start; the EMA re-seeds
    // so a sustained shift settles instead of re-triggering every window.
    const auto boundary =
        static_cast<std::uint32_t>(window_idx_ * config_.window_iters);
    current_.end_iter = boundary;
    if (current_.samples == 0) current_.min_sa = 0;
    phases_.push_back(current_);
    current_ = AffinityPhase{};
    current_.index = phases_.back().index + 1;
    current_.begin_iter = boundary;
    current_.min_sa = window_min_;
    current_.samples = window_count_;
    ema_ = estimate;
    return;
  }
  absorb_window();
  ema_ += config_.ema_alpha * (estimate - ema_);
}

void IncrementalAffinityAnalyzer::absorb_window() {
  current_.min_sa = current_.samples == 0
                        ? window_min_
                        : std::min(current_.min_sa, window_min_);
  current_.samples += window_count_;
}

PhasedSaResult analyze_workload_sa_phased(
    const TraceBuffer& trace, const std::vector<std::uint32_t>& invocation_starts,
    const CacheGeometry& geometry, const PhaseAffinityConfig& config) {
  TraceViewCursor cursor(trace);
  return analyze_workload_sa_phased(cursor, invocation_starts, geometry,
                                    config);
}

}  // namespace spf
