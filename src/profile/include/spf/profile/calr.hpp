// CALR estimation.
//
// CALR (paper §II.A): "the ratio of cycles for computation over cycles for
// data accesses in hot loop." SP's prefetch-ratio rule keys off it:
// CALR ≈ 0 → RP = 0.5 (helper takes half the problem loads);
// CALR ≥ 1 → RP = 1   (conventional helper threading).
//
// Computation cycles are read directly from the trace's compute_gap
// annotations. Data-access cycles are estimated by replaying the trace
// through stand-alone L1/L2 state models with fixed per-level latencies —
// a single-threaded approximation of what the loop pays for its loads.
#pragma once

#include <cstdint>
#include <string>

#include "spf/mem/geometry.hpp"
#include "spf/trace/trace.hpp"

namespace spf {

struct CalrConfig {
  CacheGeometry l1 = CacheGeometry::core2_l1d();
  CacheGeometry l2 = CacheGeometry::core2_l2();
  std::uint64_t l1_latency = 3;
  std::uint64_t l2_latency = 14;
  std::uint64_t memory_latency = 300;
};

struct CalrEstimate {
  double calr = 0.0;
  std::uint64_t compute_cycles = 0;
  std::uint64_t access_cycles = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] CalrEstimate estimate_calr(const TraceBuffer& trace,
                                         const CalrConfig& config = {});

}  // namespace spf
