// Set Affinity analysis — the paper's central profiling quantity.
//
// Definition 1 (paper §III.B): "Given a cache set address of an accessed
// block, its Set Affinity is the iteration count of outer hot loop where the
// sequential accessed blocks mapped in the specific cache set exceed its
// capacity."
//
// The analyzer implements the paper's Figure 3 pseudo-code: stream the data
// accesses of a hot loop; per cache set, count *distinct* blocks; when the
// count reaches the set's associativity, record the current outer-loop
// iteration count as that set's Set Affinity.
//
// Two modes:
//  * kFirstSaturation — exactly Figure 3: one SA value per set, recorded the
//    first time the set saturates (Table II's SA(L, Sx) ranges).
//  * kRecurrent — after recording, the set's distinct-block window restarts,
//    yielding the ongoing saturation *rate*; useful for long streams whose
//    behaviour drifts across phases.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "spf/common/stats.hpp"
#include "spf/mem/geometry.hpp"
#include "spf/trace/trace.hpp"

namespace spf {

enum class SetAffinityMode : std::uint8_t { kFirstSaturation, kRecurrent };

struct SetAffinityResult {
  /// Sets that saturated, with their (first) Set Affinity in outer-loop
  /// iterations.
  std::unordered_map<std::uint64_t, std::uint32_t> per_set;
  /// All SA samples (== per_set values in kFirstSaturation mode; possibly
  /// many per set in kRecurrent mode).
  std::vector<std::uint32_t> samples;
  /// Distinct sets touched by the stream (saturated or not).
  std::uint64_t touched_sets = 0;
  std::uint64_t accesses = 0;
  std::uint32_t outer_iterations = 0;

  [[nodiscard]] bool any_saturated() const noexcept { return !samples.empty(); }
  /// Range endpoints as Table II reports them.
  [[nodiscard]] std::uint32_t min_sa() const;
  [[nodiscard]] std::uint32_t max_sa() const;
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::string to_string() const;
};

class SetAffinityAnalyzer {
 public:
  SetAffinityAnalyzer(const CacheGeometry& geometry,
                      SetAffinityMode mode = SetAffinityMode::kFirstSaturation);

  /// Stream one access belonging to outer-loop iteration `outer_iter`.
  /// Iterations are 0-based; the recorded SA is `outer_iter + 1` ("iteration
  /// count", per the paper). Returns the SA sample this access recorded, or 0
  /// when it recorded none (SA is always >= 1) — the phase-incremental
  /// analyzer uses the return to attribute samples to iteration windows;
  /// whole-run callers ignore it.
  std::uint32_t observe(Addr addr, std::uint32_t outer_iter);

  /// Finalize and return the result. The analyzer may be reused afterwards
  /// (state is reset).
  SetAffinityResult finish();

  /// Convenience: analyze a whole trace (demand records only — prefetch-kind
  /// records are the helper's own traffic and are included, since the paper's
  /// "Set Affinity with Helper Thread" counts every data access entity).
  static SetAffinityResult analyze(
      const TraceBuffer& trace, const CacheGeometry& geometry,
      SetAffinityMode mode = SetAffinityMode::kFirstSaturation);

 private:
  struct SetState {
    std::unordered_set<std::uint64_t> blocks;
    bool saturated = false;
    /// Outer iteration the current counting window started at.
    std::uint32_t window_start = 0;
  };

  CacheGeometry geometry_;
  SetAffinityMode mode_;
  std::unordered_map<std::uint64_t, SetState> sets_;
  SetAffinityResult result_;
};

}  // namespace spf
