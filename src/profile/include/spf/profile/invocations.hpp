// Set Affinity across hot-function invocations.
//
// The paper measures SA per hot-function call ("For each representative data
// access stream sample in every application, we analyze Set Affinity of the
// outer hot loop"): iteration counting restarts each invocation. This helper
// analyzes each invocation independently and merges the samples; when no
// single invocation is long enough to saturate any set (short-call hot
// functions like MST's shrinking BlueRule scans), it falls back to the
// cumulative stream and flags that it did.
//
// The analysis only needs one ordered pass over the records (two when the
// cumulative fallback triggers), so it accepts any TraceCursor — the
// distance-bound refinement streams the merged main+helper view through it
// without materializing the combined trace (spf/core/distance_bound.hpp).
// The TraceBuffer overload is the same algorithm over a TraceViewCursor.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "spf/common/assert.hpp"
#include "spf/mem/geometry.hpp"
#include "spf/profile/set_affinity.hpp"
#include "spf/trace/trace.hpp"
#include "spf/trace/trace_cursor.hpp"

namespace spf {

struct WorkloadSaResult {
  SetAffinityResult merged;
  /// True when the fallback cumulative analysis was used.
  bool cumulative_fallback = false;
  std::uint32_t invocations_analyzed = 0;
};

/// `invocation_starts` lists the cumulative outer-iteration index at which
/// each hot-function invocation begins; the first element must be 0.
[[nodiscard]] WorkloadSaResult analyze_workload_sa(
    const TraceBuffer& trace,
    const std::vector<std::uint32_t>& invocation_starts,
    const CacheGeometry& geometry);

/// Streaming variant over any TraceCursor. Consumes the cursor; resets and
/// re-streams it when the cumulative fallback triggers. Identical output to
/// the TraceBuffer overload fed the same record sequence
/// (tests/trace_stream_differential_test.cpp pins this).
template <TraceCursor Cursor>
[[nodiscard]] WorkloadSaResult analyze_workload_sa(
    Cursor& cursor, const std::vector<std::uint32_t>& invocation_starts,
    const CacheGeometry& geometry) {
  SPF_ASSERT(!invocation_starts.empty() && invocation_starts.front() == 0,
             "invocation starts must begin at iteration 0");
  WorkloadSaResult out;

  // Per-invocation pass: a fresh analyzer per invocation, iteration numbers
  // re-based so SA is "iterations since this call of the hot function".
  std::size_t inv = 0;
  SetAffinityAnalyzer analyzer(geometry);
  std::uint32_t base = 0;
  std::vector<SetAffinityResult> per_invocation;
  for (; !cursor.done(); cursor.advance()) {
    const TraceRecord& r = cursor.current();
    while (inv + 1 < invocation_starts.size() &&
           r.outer_iter >= invocation_starts[inv + 1]) {
      per_invocation.push_back(analyzer.finish());
      ++inv;
      base = invocation_starts[inv];
    }
    analyzer.observe(r.addr, r.outer_iter - base);
  }
  per_invocation.push_back(analyzer.finish());

  for (const SetAffinityResult& r : per_invocation) {
    out.merged.samples.insert(out.merged.samples.end(), r.samples.begin(),
                              r.samples.end());
    out.merged.accesses += r.accesses;
    out.merged.touched_sets = std::max(out.merged.touched_sets, r.touched_sets);
    out.merged.outer_iterations += r.outer_iterations;
    for (const auto& [set, sa] : r.per_set) {
      auto [it, inserted] = out.merged.per_set.emplace(set, sa);
      if (!inserted) it->second = std::min(it->second, sa);
    }
  }
  out.invocations_analyzed = static_cast<std::uint32_t>(per_invocation.size());

  if (out.merged.samples.empty()) {
    // No single invocation was long enough to saturate any set: measure over
    // the cumulative stream instead (documented deviation for short-call hot
    // functions like MST's BlueRule scan).
    cursor.reset();
    for (; !cursor.done(); cursor.advance()) {
      const TraceRecord& r = cursor.current();
      analyzer.observe(r.addr, r.outer_iter);
    }
    out.merged = analyzer.finish();
    out.cumulative_fallback = true;
  }
  return out;
}

}  // namespace spf
