// Set Affinity across hot-function invocations.
//
// The paper measures SA per hot-function call ("For each representative data
// access stream sample in every application, we analyze Set Affinity of the
// outer hot loop"): iteration counting restarts each invocation. This helper
// analyzes each invocation independently and merges the samples; when no
// single invocation is long enough to saturate any set (short-call hot
// functions like MST's shrinking BlueRule scans), it falls back to the
// cumulative stream and flags that it did.
#pragma once

#include <cstdint>
#include <vector>

#include "spf/mem/geometry.hpp"
#include "spf/profile/set_affinity.hpp"
#include "spf/trace/trace.hpp"

namespace spf {

struct WorkloadSaResult {
  SetAffinityResult merged;
  /// True when the fallback cumulative analysis was used.
  bool cumulative_fallback = false;
  std::uint32_t invocations_analyzed = 0;
};

/// `invocation_starts` lists the cumulative outer-iteration index at which
/// each hot-function invocation begins; the first element must be 0.
[[nodiscard]] WorkloadSaResult analyze_workload_sa(
    const TraceBuffer& trace,
    const std::vector<std::uint32_t>& invocation_starts,
    const CacheGeometry& geometry);

}  // namespace spf
