// Phase-incremental Set Affinity.
//
// The whole-run analyzer (spf/profile/invocations.hpp) folds every SA sample
// into one bound, so a workload whose set pressure shifts across phases is
// capped by its *worst* phase for the entire run. This analyzer streams the
// same records once — through any TraceCursor, zero trace-record allocations
// — and additionally attributes each SA sample to a sliding outer-iteration
// window, emitting one bound per detected phase:
//
//   * Windows of `window_iters` cumulative outer iterations aggregate the SA
//     samples recorded inside them (a window's estimate is its minimum SA,
//     matching the paper's min-driven bound).
//   * An exponential moving average tracks the window estimates; a window
//     whose estimate deviates from the EMA by more than
//     `hysteresis * EMA` opens a new phase at that window's start and
//     re-seeds the EMA. Windows without samples extend the current phase.
//
// The whole-run result is assembled by the *same* per-invocation merge (and
// cumulative fallback) as analyze_workload_sa, so the degenerate single-phase
// case is bit-identical to the legacy analyzer — that equivalence is the
// reference semantics, pinned by tests/phase_affinity_differential_test.cpp.
// Because phases partition the samples, min over per-phase minima equals the
// whole-run minimum (tests/phase_affinity_property_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spf/common/assert.hpp"
#include "spf/mem/geometry.hpp"
#include "spf/profile/invocations.hpp"
#include "spf/profile/set_affinity.hpp"
#include "spf/trace/trace.hpp"
#include "spf/trace/trace_cursor.hpp"

namespace spf {

struct PhaseAffinityConfig {
  /// Sliding-window length in cumulative outer iterations; SA samples inside
  /// one window fold into one bound estimate (the window minimum).
  std::uint32_t window_iters = 64;
  /// Relative deviation of a window estimate from the EMA that opens a new
  /// phase: |estimate - ema| > hysteresis * ema.
  double hysteresis = 0.5;
  /// EMA weight of the newest window estimate, in (0, 1].
  double ema_alpha = 0.25;
  /// When false, detection is off and the analysis reports exactly one phase
  /// spanning the run — the legacy whole-run semantics.
  bool detect_phases = true;

  /// Empty string if runnable; otherwise a one-line reason (surfaced by
  /// SweepSpec::validate and the bench drivers instead of crashing).
  [[nodiscard]] std::string validate() const;
};

struct AffinityPhase {
  std::uint32_t index = 0;
  /// Cumulative outer-iteration span [begin_iter, end_iter); phases are
  /// contiguous and cover [0, last record's iteration + 1).
  std::uint32_t begin_iter = 0;
  std::uint32_t end_iter = 0;
  /// Minimum SA recorded inside the phase; 0 when it recorded no sample.
  std::uint32_t min_sa = 0;
  std::uint64_t samples = 0;
};

struct PhasedSaResult {
  /// Bit-identical to analyze_workload_sa on the same record sequence.
  WorkloadSaResult whole;
  /// At least one phase; a contiguous partition of the iteration span.
  std::vector<AffinityPhase> phases;

  /// Minimum SA over phases that recorded samples — always equal to
  /// whole.merged.min_sa() (phases partition the samples).
  [[nodiscard]] std::uint32_t min_sa_over_phases() const;
  [[nodiscard]] std::string to_string() const;
};

/// Streaming analyzer: feed records in trace order via observe(); when
/// needs_cumulative_pass() reports true, re-feed the same records through
/// observe_cumulative() (the short-invocation fallback, as in
/// analyze_workload_sa); then call finish(). analyze_workload_sa_phased
/// wraps the protocol for any TraceCursor.
class IncrementalAffinityAnalyzer {
 public:
  IncrementalAffinityAnalyzer(const CacheGeometry& geometry,
                              std::vector<std::uint32_t> invocation_starts,
                              const PhaseAffinityConfig& config = {});

  /// Per-invocation pass: re-bases iterations at each invocation start
  /// (exactly analyze_workload_sa's loop) and attributes any recorded SA
  /// sample to the record's cumulative-iteration window.
  void observe(const TraceRecord& r);

  /// Closes the per-invocation pass and merges its results. True when no
  /// invocation saturated any set: the caller must then re-stream the same
  /// records through observe_cumulative() (phase state restarts too, so the
  /// phases describe the analysis actually used).
  [[nodiscard]] bool needs_cumulative_pass();

  /// Fallback pass: cumulative iteration numbering, no invocation splits.
  void observe_cumulative(const TraceRecord& r);

  [[nodiscard]] PhasedSaResult finish();

 private:
  void on_sample(std::uint32_t cumulative_iter, std::uint32_t sa);
  void close_window();
  void absorb_window();

  CacheGeometry geometry_;
  std::vector<std::uint32_t> invocation_starts_;
  PhaseAffinityConfig config_;

  // Per-invocation pass state (mirrors analyze_workload_sa).
  SetAffinityAnalyzer analyzer_;
  std::size_t inv_ = 0;
  std::uint32_t base_ = 0;
  std::vector<SetAffinityResult> per_invocation_;
  WorkloadSaResult whole_;
  bool merged_ = false;
  bool fallback_ = false;

  // Phase tracker state (cumulative iteration space).
  std::uint32_t iter_end_ = 0;  // max cumulative iteration seen + 1
  bool window_open_ = false;
  std::uint64_t window_idx_ = 0;
  std::uint32_t window_min_ = 0;
  std::uint64_t window_count_ = 0;
  double ema_ = 0.0;
  bool ema_set_ = false;
  AffinityPhase current_;
  std::vector<AffinityPhase> phases_;
};

/// One ordered pass over the cursor (two when the cumulative fallback
/// triggers, via cursor.reset()) — the phased analogue of the streaming
/// analyze_workload_sa, and like it performs no trace-record allocations.
template <TraceCursor Cursor>
[[nodiscard]] PhasedSaResult analyze_workload_sa_phased(
    Cursor& cursor, const std::vector<std::uint32_t>& invocation_starts,
    const CacheGeometry& geometry, const PhaseAffinityConfig& config = {}) {
  SPF_ASSERT(config.validate().empty(), "invalid PhaseAffinityConfig");
  IncrementalAffinityAnalyzer analyzer(geometry, invocation_starts, config);
  for (; !cursor.done(); cursor.advance()) analyzer.observe(cursor.current());
  if (analyzer.needs_cumulative_pass()) {
    cursor.reset();
    for (; !cursor.done(); cursor.advance()) {
      analyzer.observe_cumulative(cursor.current());
    }
  }
  return analyzer.finish();
}

/// TraceBuffer convenience: the same algorithm over a TraceViewCursor.
[[nodiscard]] PhasedSaResult analyze_workload_sa_phased(
    const TraceBuffer& trace,
    const std::vector<std::uint32_t>& invocation_starts,
    const CacheGeometry& geometry, const PhaseAffinityConfig& config = {});

}  // namespace spf
