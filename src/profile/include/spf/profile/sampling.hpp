// Interval-based burst sampling (paper §III.C, after [36]).
//
// "The profiling mechanism in this paper is implemented using an
//  interval-based burst sampling technique."
//
// A burst of consecutive records is kept, then an interval is skipped,
// repeatedly. Bursts are aligned to outer-iteration boundaries so that Set
// Affinity analysis inside a burst sees complete iterations — a burst that
// cut an iteration in half would undercount that iteration's footprint.
#pragma once

#include <cstdint>
#include <vector>

#include "spf/trace/trace.hpp"

namespace spf {

struct BurstConfig {
  /// Outer iterations captured per burst.
  std::uint32_t burst_iters = 512;
  /// Outer iterations skipped between bursts.
  std::uint32_t interval_iters = 4096;
};

/// One captured burst: records re-based so outer_iter starts at 0 within the
/// burst (Set Affinity windows restart per burst, as the paper analyzes
/// "each representative data access stream sample").
struct Burst {
  std::uint32_t first_outer_iter = 0;
  TraceBuffer records;
};

/// Splits `trace` into bursts. Assumes outer_iter is non-decreasing (true of
/// traces from the workload emitters).
[[nodiscard]] std::vector<Burst> burst_sample(const TraceBuffer& trace,
                                              const BurstConfig& config);

/// Fraction of the input records retained across all bursts.
[[nodiscard]] double sampled_fraction(const TraceBuffer& trace,
                                      const std::vector<Burst>& bursts);

}  // namespace spf
