// Access-pattern classification — the paper's stated future work ("we would
// try to analyze the effect of memory access pattern on prefetching
// performance").
//
// Classifies each static load site by the distribution of its successive
// address deltas:
//
//   kSequential — dominant delta within one cache line forward/backward
//                 (streamer territory: hardware already covers it);
//   kStrided    — one dominant constant delta beyond a line (DPL territory);
//   kIrregular  — no dominant delta (pointer-chasing / hashed: the loads SP
//                 helper threading exists for).
//
// The per-site verdicts roll up into a stream-level mix that predicts how
// much headroom SP has: helper prefetching pays off in proportion to the
// irregular fraction, because the hardware prefetchers already serve the
// rest.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "spf/trace/trace.hpp"

namespace spf {

enum class AccessPattern : std::uint8_t {
  kSequential,
  kStrided,
  kIrregular,
};

[[nodiscard]] const char* to_string(AccessPattern p) noexcept;

struct SitePattern {
  AccessPattern pattern = AccessPattern::kIrregular;
  /// Most frequent successive delta (bytes, signed).
  std::int64_t dominant_delta = 0;
  /// Fraction of deltas equal to the dominant one, in [0, 1].
  double regularity = 0.0;
  std::uint64_t accesses = 0;
};

struct PatternReport {
  std::map<std::uint8_t, SitePattern> per_site;
  /// Fractions of all accesses by their site's pattern class.
  double sequential_fraction = 0.0;
  double strided_fraction = 0.0;
  double irregular_fraction = 0.0;

  [[nodiscard]] std::string to_string() const;
};

struct PatternConfig {
  /// Deltas with |delta| < line_bytes classify as sequential.
  std::uint32_t line_bytes = 64;
  /// Minimum dominant-delta share for a site to count as regular.
  double regularity_threshold = 0.5;
  /// Distinct deltas tracked per site (top-K sketch; the rest lump together).
  std::uint32_t max_tracked_deltas = 16;
};

[[nodiscard]] PatternReport classify_patterns(const TraceBuffer& trace,
                                              const PatternConfig& config = {});

}  // namespace spf
