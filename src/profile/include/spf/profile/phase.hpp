// Data-access phase detection (paper §III.C; technique from the authors'
// earlier work [36]: "data access in our selected hot functions shows phase
// behavior ... The data access phases of each hot function are detected
// firstly").
//
// Classic signature-based detection: the stream is cut into fixed windows;
// each window is summarized by a hashed set-touch signature vector; a phase
// boundary is declared when the Manhattan distance between consecutive
// window signatures exceeds a threshold. Windows are then greedily clustered
// onto previously seen phase signatures so a program that alternates A-B-A-B
// yields two phase ids, not four.
#pragma once

#include <cstdint>
#include <vector>

#include "spf/mem/geometry.hpp"
#include "spf/trace/trace.hpp"

namespace spf {

struct PhaseConfig {
  /// Records per detection window.
  std::uint32_t window_records = 8192;
  /// Signature vector length (hash buckets over touched lines).
  std::uint32_t signature_buckets = 256;
  /// Normalized Manhattan distance in [0,2] above which two windows belong
  /// to different phases.
  double boundary_threshold = 0.5;
};

struct Phase {
  /// Record range [begin, end) in the input trace.
  std::size_t begin_record = 0;
  std::size_t end_record = 0;
  /// Stable id: windows matching an earlier phase reuse its id.
  std::uint32_t phase_id = 0;
};

struct PhaseReport {
  std::vector<Phase> phases;
  /// Number of distinct phase ids.
  std::uint32_t distinct_phases = 0;

  [[nodiscard]] bool is_stable() const noexcept { return distinct_phases <= 1; }
};

[[nodiscard]] PhaseReport detect_phases(const TraceBuffer& trace,
                                        const CacheGeometry& geometry,
                                        const PhaseConfig& config = {});

}  // namespace spf
