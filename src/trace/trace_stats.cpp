#include "spf/trace/trace_stats.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace spf {

TraceSummary summarize_trace(const TraceBuffer& trace,
                             const CacheGeometry& geometry) {
  TraceSummary s;
  std::unordered_set<LineAddr> lines;
  std::unordered_set<std::uint64_t> sets;
  std::uint32_t max_iter = 0;
  for (const TraceRecord& r : trace) {
    ++s.accesses;
    switch (r.kind()) {
      case AccessKind::kRead: ++s.reads; break;
      case AccessKind::kWrite: ++s.writes; break;
      case AccessKind::kPrefetch: ++s.prefetches; break;
    }
    if (r.is_spine()) ++s.spine_accesses;
    if (r.is_delinquent()) ++s.delinquent_accesses;
    s.compute_cycles += r.compute_gap;
    ++s.per_site[r.site];
    const LineAddr line = geometry.line_of(r.addr);
    lines.insert(line);
    sets.insert(geometry.set_of_line(line));
    max_iter = std::max(max_iter, r.outer_iter);
  }
  s.outer_iterations = s.accesses ? max_iter + 1 : 0;
  s.distinct_lines = lines.size();
  s.distinct_sets = sets.size();
  return s;
}

std::string TraceSummary::to_string() const {
  std::ostringstream out;
  out << "accesses=" << accesses << " (r=" << reads << " w=" << writes
      << " pf=" << prefetches << ")"
      << " outer_iters=" << outer_iterations
      << " lines=" << distinct_lines << " sets=" << distinct_sets
      << " spine=" << spine_accesses << " delinquent=" << delinquent_accesses
      << " compute_cycles=" << compute_cycles << " sites=" << per_site.size();
  return out.str();
}

}  // namespace spf
