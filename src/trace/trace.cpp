#include "spf/trace/trace.hpp"

#include <algorithm>
#include <atomic>

#include "spf/common/assert.hpp"

namespace spf {

namespace trace_hooks {
namespace {
std::atomic<std::uint64_t> g_record_allocations{0};
}  // namespace

std::uint64_t record_allocations() noexcept {
  return g_record_allocations.load(std::memory_order_relaxed);
}

namespace detail {
void note_record_allocation() noexcept {
  g_record_allocations.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail
}  // namespace trace_hooks

TraceRecord TraceRecord::make(Addr addr, std::uint32_t outer_iter,
                              AccessKind kind, std::uint8_t site,
                              TraceFlags flags, std::uint32_t compute_gap) noexcept {
  TraceRecord r;
  r.addr = addr;
  r.outer_iter = outer_iter;
  r.compute_gap = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(compute_gap, 0xffffu));
  r.site = site;
  r.packed = static_cast<std::uint8_t>((static_cast<std::uint8_t>(kind) & 0x3) |
                                       (flags << 2));
  return r;
}

std::uint32_t TraceBuffer::outer_iterations() const noexcept {
  std::uint32_t max_iter = 0;
  bool any = false;
  for (const TraceRecord& r : records_) {
    max_iter = std::max(max_iter, r.outer_iter);
    any = true;
  }
  return any ? max_iter + 1 : 0;
}

}  // namespace spf
