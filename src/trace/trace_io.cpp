#include "spf/trace/trace_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace spf {
namespace {

constexpr char kMagic[4] = {'S', 'P', 'F', 'T'};
constexpr std::uint32_t kVersion = 1;

static_assert(std::endian::native == std::endian::little,
              "trace files are little-endian; port the I/O layer first");

}  // namespace

void write_trace(const std::filesystem::path& path, const TraceBuffer& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file for write: " + path.string());
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t count = trace.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  const auto records = trace.records();
  out.write(reinterpret_cast<const char*>(records.data()),
            static_cast<std::streamsize>(records.size_bytes()));
  if (!out) throw std::runtime_error("trace write failed: " + path.string());
}

TraceBuffer read_trace(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path.string());
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("bad trace magic: " + path.string());
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion) {
    throw std::runtime_error("unsupported trace version in " + path.string());
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw std::runtime_error("truncated trace header: " + path.string());
  std::vector<TraceRecord> records(count);
  in.read(reinterpret_cast<char*>(records.data()),
          static_cast<std::streamsize>(count * sizeof(TraceRecord)));
  if (!in) throw std::runtime_error("truncated trace body: " + path.string());
  return TraceBuffer(std::move(records));
}

}  // namespace spf
