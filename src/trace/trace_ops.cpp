#include "spf/trace/trace_ops.hpp"

#include <algorithm>

namespace spf {

TraceBuffer filter_trace(const TraceBuffer& trace,
                         const std::function<bool(const TraceRecord&)>& keep) {
  TraceBuffer out;
  for (const TraceRecord& r : trace) {
    if (keep(r)) out.mutable_records().push_back(r);
  }
  return out;
}

TraceBuffer filter_by_site(const TraceBuffer& trace, std::uint8_t site) {
  return filter_trace(trace,
                      [site](const TraceRecord& r) { return r.site == site; });
}

TraceBuffer slice_iters(const TraceBuffer& trace, std::uint32_t begin_iter,
                        std::uint32_t end_iter, bool rebase) {
  TraceBuffer out;
  for (const TraceRecord& r : trace) {
    if (r.outer_iter < begin_iter || r.outer_iter >= end_iter) continue;
    TraceRecord copy = r;
    if (rebase) copy.outer_iter -= begin_iter;
    out.mutable_records().push_back(copy);
  }
  return out;
}

TraceBuffer demand_only(const TraceBuffer& trace) {
  return filter_trace(trace, [](const TraceRecord& r) {
    return r.kind() != AccessKind::kPrefetch;
  });
}

TraceBuffer shift_iters(const TraceBuffer& trace, std::int64_t delta) {
  TraceBuffer out;
  out.reserve(trace.size());
  for (const TraceRecord& r : trace) {
    TraceRecord copy = r;
    const std::int64_t shifted = static_cast<std::int64_t>(r.outer_iter) + delta;
    copy.outer_iter =
        shifted < 0 ? 0u : static_cast<std::uint32_t>(shifted);
    out.mutable_records().push_back(copy);
  }
  return out;
}

}  // namespace spf
