// Binary trace persistence. Format:
//
//   offset 0 : magic  "SPFT"            (4 bytes)
//   offset 4 : version u32 (currently 1)
//   offset 8 : record count u64
//   offset 16: raw TraceRecord array (16 bytes each, little-endian)
//
// Traces are host-endian on disk; the loader validates the magic and refuses
// big-endian hosts rather than silently mis-parsing.
#pragma once

#include <filesystem>
#include <string>

#include "spf/trace/trace.hpp"

namespace spf {

/// Writes `trace` to `path`, overwriting. Throws std::runtime_error on I/O
/// failure.
void write_trace(const std::filesystem::path& path, const TraceBuffer& trace);

/// Loads a trace written by write_trace. Throws std::runtime_error on I/O
/// failure or format mismatch.
[[nodiscard]] TraceBuffer read_trace(const std::filesystem::path& path);

}  // namespace spf
