// Streaming trace views — cursors over TraceRecord streams.
//
// The Set-Affinity machinery only ever needs an *ordered pass* over trace
// records; materializing derived streams (the helper view, the merged
// main+helper stream) just to iterate them once is pure copy overhead. A
// TraceCursor is a forward, resettable, read-only position in a record
// stream:
//
//   done()     — true when the stream is exhausted;
//   current()  — the record at the cursor (valid only while !done(), and only
//                until the next advance()/reset(); adaptors may return a
//                reference to an internal transformed record);
//   advance()  — step to the next record (precondition: !done());
//   reset()    — rewind to the first record. Required because the profile
//                layer's cumulative fallback re-streams the same input
//                (see analyze_workload_sa).
//
// Cursors are cheap value types: copying one copies a position, never
// records. Adaptors that transform or merge streams (HelperViewCursor in
// spf/core/helper_gen.hpp, MergeByIterCursor below) compose over cursors so
// derived streams are computed on the fly with zero trace-record storage —
// the differential harness (tests/trace_stream_differential_test.cpp) pins
// every streaming path bit-identical to its materializing reference.
#pragma once

#include <concepts>
#include <cstddef>
#include <span>
#include <tuple>
#include <utility>

#include "spf/trace/trace.hpp"

namespace spf {

template <typename C>
concept TraceCursor = requires(C c, const C cc) {
  { cc.done() } -> std::convertible_to<bool>;
  { cc.current() } -> std::same_as<const TraceRecord&>;
  c.advance();
  c.reset();
};

/// Cursor over an in-memory record sequence (a TraceBuffer or any span of
/// records). Does not own the storage; the underlying buffer must outlive it.
class TraceViewCursor {
 public:
  TraceViewCursor() = default;
  explicit TraceViewCursor(std::span<const TraceRecord> records) noexcept
      : records_(records) {}
  explicit TraceViewCursor(const TraceBuffer& trace) noexcept
      : records_(trace.records()) {}

  [[nodiscard]] bool done() const noexcept { return pos_ >= records_.size(); }
  [[nodiscard]] const TraceRecord& current() const noexcept {
    return records_[pos_];
  }
  void advance() noexcept { ++pos_; }
  void reset() noexcept { pos_ = 0; }

 private:
  std::span<const TraceRecord> records_{};
  std::size_t pos_ = 0;
};

static_assert(TraceCursor<TraceViewCursor>);

/// Lazy k-way merge of record streams ordered by outer_iter, the streaming
/// equivalent of folding merge_traces_by_iter over the inputs: among the
/// input cursors whose current record has the minimal outer_iter, the
/// lowest-indexed input wins. For two inputs this is exactly
/// merge_traces_by_iter's documented a-before-b tie order (see
/// spf/core/helper_gen.hpp); for k sorted inputs it equals the left fold of
/// the two-way merge. No records are copied or stored: current() forwards to
/// the selected input's current().
template <TraceCursor... Cursors>
class MergeByIterCursor {
  static_assert(sizeof...(Cursors) >= 1, "merge needs at least one input");

 public:
  explicit MergeByIterCursor(Cursors... cursors)
      : cursors_(std::move(cursors)...) {
    select();
  }

  [[nodiscard]] bool done() const noexcept { return current_ == nullptr; }
  [[nodiscard]] const TraceRecord& current() const noexcept {
    return *current_;
  }
  void advance() {
    advance_input(active_);
    select();
  }
  void reset() {
    std::apply([](auto&... c) { (c.reset(), ...); }, cursors_);
    select();
  }

 private:
  template <typename Fn>
  void for_each_input(Fn&& fn) {
    std::size_t index = 0;
    std::apply([&](auto&... cursor) { (fn(index++, cursor), ...); }, cursors_);
  }

  /// Picks the live input with minimal current().outer_iter; the strict `<`
  /// keeps the earliest index on ties.
  void select() {
    current_ = nullptr;
    for_each_input([&](std::size_t index, auto& cursor) {
      if (!cursor.done() && (current_ == nullptr ||
                             cursor.current().outer_iter < current_->outer_iter)) {
        current_ = &cursor.current();
        active_ = index;
      }
    });
  }

  void advance_input(std::size_t which) {
    for_each_input([&](std::size_t index, auto& cursor) {
      if (index == which) cursor.advance();
    });
  }

  std::tuple<Cursors...> cursors_;
  const TraceRecord* current_ = nullptr;
  std::size_t active_ = 0;
};

}  // namespace spf
