// Streaming trace views — cursors over TraceRecord streams.
//
// The Set-Affinity machinery only ever needs an *ordered pass* over trace
// records; materializing derived streams (the helper view, the merged
// main+helper stream) just to iterate them once is pure copy overhead. A
// TraceCursor is a forward, resettable, read-only position in a record
// stream:
//
//   done()     — true when the stream is exhausted;
//   current()  — the record at the cursor (valid only while !done(), and only
//                until the next advance()/reset(); adaptors may return a
//                reference to an internal transformed record);
//   advance()  — step to the next record (precondition: !done());
//   reset()    — rewind to the first record. Required because the profile
//                layer's cumulative fallback re-streams the same input
//                (see analyze_workload_sa).
//
// Cursors are cheap value types: copying one copies a position, never
// records. Adaptors that transform or merge streams (HelperViewCursor in
// spf/core/helper_gen.hpp, MergeByIterCursor below) compose over cursors so
// derived streams are computed on the fly with zero trace-record storage —
// the differential harness (tests/trace_stream_differential_test.cpp) pins
// every streaming path bit-identical to its materializing reference.
//
// RecordSource (below) is the type-erased pull seam the CMP simulator
// consumes: a windowed view over any cursor (CursorWindowSource) or over a
// materialized buffer (BufferCursor), giving the scheduler its bounded peek
// lookahead without dictating where the records come from. See
// docs/simulator.md "Cursor-fed cores & the peek window".
#pragma once

#include <array>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <tuple>
#include <utility>

#include "spf/trace/trace.hpp"

namespace spf {

template <typename C>
concept TraceCursor = requires(C c, const C cc) {
  { cc.done() } -> std::convertible_to<bool>;
  { cc.current() } -> std::same_as<const TraceRecord&>;
  c.advance();
  c.reset();
};

/// Optional bulk refinement of TraceCursor: fill(dst, cap) writes up to `cap`
/// records into `dst` and advances past them, returning the count written —
/// observationally equivalent to `cap` repetitions of {current(), advance()},
/// just without the per-record call structure. Window adaptors
/// (CursorWindowSource below) prefer it when present, so transforming cursors
/// can run their scan as one tight loop straight into the window storage.
template <typename C>
concept BulkTraceCursor =
    TraceCursor<C> && requires(C c, TraceRecord* dst, std::size_t cap) {
      { c.fill(dst, cap) } -> std::convertible_to<std::size_t>;
    };

/// Cursor over an in-memory record sequence (a TraceBuffer or any span of
/// records). Does not own the storage; the underlying buffer must outlive it.
class TraceViewCursor {
 public:
  TraceViewCursor() = default;
  explicit TraceViewCursor(std::span<const TraceRecord> records) noexcept
      : records_(records) {}
  explicit TraceViewCursor(const TraceBuffer& trace) noexcept
      : records_(trace.records()) {}

  [[nodiscard]] bool done() const noexcept { return pos_ >= records_.size(); }
  [[nodiscard]] const TraceRecord& current() const noexcept {
    return records_[pos_];
  }
  void advance() noexcept { ++pos_; }
  void reset() noexcept { pos_ = 0; }

 private:
  std::span<const TraceRecord> records_{};
  std::size_t pos_ = 0;
};

static_assert(TraceCursor<TraceViewCursor>);

/// TraceViewCursor variant that re-bases outer_iter: serves records_[i] with
/// outer_iter - iter_base, storing nothing beyond the one transformed record.
/// The adaptive interval replay (spf/core/adaptive.hpp) slices one trace into
/// outer-iteration segments and replays each as if it started at iteration 0
/// — exactly what the materializing reference's per-chunk rebase produced —
/// without copying the segment. Does not own the storage; the underlying
/// buffer must outlive the cursor. Records with outer_iter < iter_base are a
/// caller error (the subtraction would wrap).
class RebaseViewCursor {
 public:
  RebaseViewCursor() = default;
  RebaseViewCursor(std::span<const TraceRecord> records,
                   std::uint32_t iter_base) noexcept
      : records_(records), iter_base_(iter_base) {
    settle();
  }

  [[nodiscard]] bool done() const noexcept { return pos_ >= records_.size(); }
  [[nodiscard]] const TraceRecord& current() const noexcept { return current_; }
  void advance() noexcept {
    ++pos_;
    settle();
  }
  void reset() noexcept {
    pos_ = 0;
    settle();
  }

  /// Bulk form (see BulkTraceCursor): one flat copy-and-rebase loop.
  std::size_t fill(TraceRecord* dst, std::size_t cap) noexcept {
    std::size_t n = 0;
    for (; n < cap && pos_ < records_.size(); ++pos_, ++n) {
      dst[n] = records_[pos_];
      dst[n].outer_iter -= iter_base_;
    }
    settle();
    return n;
  }

 private:
  void settle() noexcept {
    if (pos_ >= records_.size()) return;
    current_ = records_[pos_];
    current_.outer_iter -= iter_base_;
  }

  std::span<const TraceRecord> records_{};
  std::uint32_t iter_base_ = 0;
  std::size_t pos_ = 0;
  TraceRecord current_{};
};

static_assert(TraceCursor<RebaseViewCursor>);
static_assert(BulkTraceCursor<RebaseViewCursor>);

/// Lazy k-way merge of record streams ordered by outer_iter, the streaming
/// equivalent of folding merge_traces_by_iter over the inputs: among the
/// input cursors whose current record has the minimal outer_iter, the
/// lowest-indexed input wins. For two inputs this is exactly
/// merge_traces_by_iter's documented a-before-b tie order (see
/// spf/core/helper_gen.hpp); for k sorted inputs it equals the left fold of
/// the two-way merge. No records are copied or stored: current() forwards to
/// the selected input's current().
template <TraceCursor... Cursors>
class MergeByIterCursor {
  static_assert(sizeof...(Cursors) >= 1, "merge needs at least one input");

 public:
  explicit MergeByIterCursor(Cursors... cursors)
      : cursors_(std::move(cursors)...) {
    select();
  }

  [[nodiscard]] bool done() const noexcept { return current_ == nullptr; }
  [[nodiscard]] const TraceRecord& current() const noexcept {
    return *current_;
  }
  void advance() {
    advance_input(active_);
    select();
  }
  void reset() {
    std::apply([](auto&... c) { (c.reset(), ...); }, cursors_);
    select();
  }

 private:
  template <typename Fn>
  void for_each_input(Fn&& fn) {
    std::size_t index = 0;
    std::apply([&](auto&... cursor) { (fn(index++, cursor), ...); }, cursors_);
  }

  /// Picks the live input with minimal current().outer_iter; the strict `<`
  /// keeps the earliest index on ties.
  void select() {
    current_ = nullptr;
    for_each_input([&](std::size_t index, auto& cursor) {
      if (!cursor.done() && (current_ == nullptr ||
                             cursor.current().outer_iter < current_->outer_iter)) {
        current_ = &cursor.current();
        active_ = index;
      }
    });
  }

  void advance_input(std::size_t which) {
    for_each_input([&](std::size_t index, auto& cursor) {
      if (index == which) cursor.advance();
    });
  }

  std::tuple<Cursors...> cursors_;
  const TraceRecord* current_ = nullptr;
  std::size_t active_ = 0;
};

/// Type-erased pull seam between record producers and the CMP simulator.
///
/// A RecordSource hands out its stream as a sequence of contiguous *windows*:
/// each next_window() call invalidates the previous window and returns the
/// records immediately following those already served (empty span = stream
/// exhausted). The consumer keeps a position inside the current window — that
/// position *is* the scheduler's bounded lookahead: the pending record (and
/// anything else still inside the window) is peekable without consuming, and
/// peek distance is bounded by the window size. Lookahead never spans a
/// window boundary, so sources only ever hold one window's worth of storage.
///
/// reset() rewinds to the start of the stream; the previously served window
/// is invalidated. Sources are single-consumer and not thread-safe.
class RecordSource {
 public:
  RecordSource() = default;
  virtual ~RecordSource() = default;
  RecordSource(const RecordSource&) = delete;
  RecordSource& operator=(const RecordSource&) = delete;
  // Movable so concrete sources can live by value inside growable containers
  // (the simulator's per-core feed slots); a moved-from source is only good
  // for destruction or reassignment.
  RecordSource(RecordSource&&) = default;
  RecordSource& operator=(RecordSource&&) = default;

  [[nodiscard]] virtual std::span<const TraceRecord> next_window() = 0;
  virtual void reset() = 0;
};

/// The materialized path as a special case of the pull seam: serves the whole
/// in-memory record sequence as a single window. Feeding a simulator core
/// from a BufferCursor therefore costs one virtual call per run and zero
/// copies — reading through the window is reading the buffer. Does not own
/// the storage; the underlying buffer must outlive the cursor.
class BufferCursor final : public RecordSource {
 public:
  BufferCursor() = default;
  explicit BufferCursor(std::span<const TraceRecord> records) noexcept
      : records_(records) {}
  explicit BufferCursor(const TraceBuffer& trace) noexcept
      : records_(trace.records()) {}

  /// Repoint at a different record sequence (and rewind). The simulator's
  /// per-core feed slots reuse one BufferCursor across runs this way.
  void rebind(std::span<const TraceRecord> records) noexcept {
    records_ = records;
    served_ = false;
  }

  [[nodiscard]] std::span<const TraceRecord> next_window() override {
    if (served_) return {};
    served_ = true;
    return records_;
  }
  void reset() override { served_ = false; }

 private:
  std::span<const TraceRecord> records_{};
  bool served_ = false;
};

/// Ring-buffer-backed window over any TraceCursor: each refill synthesizes up
/// to WindowN records from the cursor into fixed storage and serves them as
/// the next window. This is how lazily computed streams (HelperViewCursor)
/// feed the simulator without ever materializing a trace — the ring is the
/// only record storage, it is reused for every window, and it is plain
/// member storage, so the trace_hooks::record_allocations() counter stays
/// flat no matter how long the stream is.
///
/// WindowN bounds the consumer's peek distance (see RecordSource) and sets
/// the refill cadence: larger windows mean fewer, longer synthesis bursts
/// interrupting the consumer, which amortizes the burst's cache disturbance
/// better at the price of ring residency (the 256-record default is one 4 KiB
/// L1 page; the SP helper feed measures fastest at 4096 — see
/// ExperimentContext::kHelperFeedWindow).
template <TraceCursor C, std::size_t WindowN = 256>
class CursorWindowSource final : public RecordSource {
  static_assert(WindowN >= 1, "window must hold at least the pending record");

 public:
  explicit CursorWindowSource(C cursor) : cursor_(std::move(cursor)) {}

  [[nodiscard]] std::span<const TraceRecord> next_window() override {
    std::size_t n = 0;
    if constexpr (BulkTraceCursor<C>) {
      n = cursor_.fill(ring_.data(), WindowN);
    } else {
      while (n < WindowN && !cursor_.done()) {
        ring_[n++] = cursor_.current();
        cursor_.advance();
      }
    }
    served_ += n;
    return {ring_.data(), n};
  }
  void reset() override {
    cursor_.reset();
    served_ = 0;
  }

  /// Records handed out since construction/reset() — how large the stream a
  /// consumer pulled would have been, had it been materialized.
  [[nodiscard]] std::uint64_t records_served() const noexcept { return served_; }

 private:
  C cursor_;
  std::uint64_t served_ = 0;
  std::array<TraceRecord, WindowN> ring_{};
};

}  // namespace spf
