// Descriptive statistics over a trace: footprint, per-site breakdown, and the
// compute/access split that defines CALR.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "spf/mem/geometry.hpp"
#include "spf/trace/trace.hpp"

namespace spf {

struct TraceSummary {
  std::uint64_t accesses = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t prefetches = 0;
  std::uint64_t spine_accesses = 0;
  std::uint64_t delinquent_accesses = 0;
  std::uint32_t outer_iterations = 0;
  /// Distinct cache lines touched (at the geometry's line size).
  std::uint64_t distinct_lines = 0;
  /// Distinct cache sets touched.
  std::uint64_t distinct_sets = 0;
  /// Total compute cycles encoded in the trace (sum of compute_gap).
  std::uint64_t compute_cycles = 0;
  /// Accesses per static site.
  std::map<std::uint8_t, std::uint64_t> per_site;

  [[nodiscard]] std::string to_string() const;
};

/// One pass over `trace` computing the summary with line/set granularity
/// taken from `geometry`.
[[nodiscard]] TraceSummary summarize_trace(const TraceBuffer& trace,
                                           const CacheGeometry& geometry);

}  // namespace spf
