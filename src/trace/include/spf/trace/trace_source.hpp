// A workload's emitted trace plus the hot-function invocation boundaries the
// Set-Affinity analysis needs (see spf/profile/invocations.hpp). Lives at the
// trace layer so both the sweep engine (spf::orchestrate) and the
// ExperimentContextPool trace memo can share one immutable emission.
#pragma once

#include <cstdint>
#include <vector>

#include "spf/trace/trace.hpp"

namespace spf {

struct TraceSource {
  TraceBuffer trace;
  /// Cumulative outer-iteration index at which each hot-function invocation
  /// begins; the first element must be 0.
  std::vector<std::uint32_t> invocation_starts;
};

}  // namespace spf
