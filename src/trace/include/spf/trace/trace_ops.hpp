// Trace transformations: filtering, slicing and rebasing. These are the
// building blocks the profiling tools and tests compose — e.g. "the accesses
// of hot-loop iterations [a, b)" or "only the delinquent loads of site 2".
#pragma once

#include <cstdint>
#include <functional>

#include "spf/trace/trace.hpp"

namespace spf {

/// Records satisfying `keep` (in order).
[[nodiscard]] TraceBuffer filter_trace(
    const TraceBuffer& trace,
    const std::function<bool(const TraceRecord&)>& keep);

/// Records of one static load site.
[[nodiscard]] TraceBuffer filter_by_site(const TraceBuffer& trace,
                                         std::uint8_t site);

/// Records with outer_iter in [begin_iter, end_iter); when `rebase` is set,
/// outer_iter is shifted so the slice starts at 0 (what per-invocation
/// analyses need).
[[nodiscard]] TraceBuffer slice_iters(const TraceBuffer& trace,
                                      std::uint32_t begin_iter,
                                      std::uint32_t end_iter,
                                      bool rebase = true);

/// Only demand traffic (drops prefetch-kind records).
[[nodiscard]] TraceBuffer demand_only(const TraceBuffer& trace);

/// Shifts every record's outer_iter by `delta` (saturating at 0 for negative
/// results). Used to model run-ahead when merging streams.
[[nodiscard]] TraceBuffer shift_iters(const TraceBuffer& trace,
                                      std::int64_t delta);

}  // namespace spf
