// Memory access traces.
//
// A trace is the ordered stream of memory references a thread's hot loop
// performs, annotated with the structural information the SP machinery needs:
//
//  * outer_iter  — which outer-hot-loop iteration the access belongs to.
//                  This is the unit Set Affinity and prefetch distance are
//                  measured in (paper Definitions 1-3).
//  * site        — static load-site id (stands in for the load PC); feeds the
//                  IP-stride prefetcher and the delinquent-load selection.
//  * compute_gap — cycles of pure computation the thread performs *before*
//                  this access; encodes CALR into the trace.
//  * flags       — kSpine marks pointer-chasing spine loads the helper thread
//                  must execute even in skipped iterations; kDelinquent marks
//                  the problem loads SP prefetches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "spf/mem/types.hpp"

namespace spf {

using TraceFlags = std::uint8_t;
inline constexpr TraceFlags kFlagSpine = 0x1;
inline constexpr TraceFlags kFlagDelinquent = 0x2;

struct TraceRecord {
  Addr addr = 0;
  std::uint32_t outer_iter = 0;
  /// Compute cycles spent immediately before this access.
  std::uint16_t compute_gap = 0;
  /// Static load-site id (unique per static load in the hot function).
  std::uint8_t site = 0;
  /// Low 2 bits: AccessKind; remaining bits: TraceFlags shifted left by 2.
  std::uint8_t packed = 0;

  [[nodiscard]] AccessKind kind() const noexcept {
    return static_cast<AccessKind>(packed & 0x3);
  }
  [[nodiscard]] TraceFlags flags() const noexcept {
    return static_cast<TraceFlags>(packed >> 2);
  }
  [[nodiscard]] bool is_spine() const noexcept { return (flags() & kFlagSpine) != 0; }
  [[nodiscard]] bool is_delinquent() const noexcept {
    return (flags() & kFlagDelinquent) != 0;
  }

  static TraceRecord make(Addr addr, std::uint32_t outer_iter, AccessKind kind,
                          std::uint8_t site, TraceFlags flags,
                          std::uint32_t compute_gap) noexcept;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

static_assert(sizeof(TraceRecord) == 16, "trace records are stored raw on disk");

namespace trace_hooks {
/// Cumulative count of TraceRecord storage growth events (reserve calls that
/// enlarge a buffer, emits that trigger a reallocation). Test hook: the
/// streaming refinement paths claim *zero* trace-record allocations, and
/// tests/trace_stream_differential_test.cpp holds them to it by diffing this
/// counter around the call. Thread-safe (relaxed atomic).
[[nodiscard]] std::uint64_t record_allocations() noexcept;

namespace detail {
void note_record_allocation() noexcept;
}  // namespace detail
}  // namespace trace_hooks

/// Growable in-memory trace with an emit API for workload instrumentation.
class TraceBuffer {
 public:
  TraceBuffer() = default;
  explicit TraceBuffer(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}

  void reserve(std::size_t n) {
    if (n > records_.capacity()) trace_hooks::detail::note_record_allocation();
    records_.reserve(n);
  }
  void clear() noexcept { records_.clear(); }

  /// Append one access in outer-loop iteration `outer_iter`.
  void emit(Addr addr, std::uint32_t outer_iter, AccessKind kind,
            std::uint8_t site, TraceFlags flags = 0, std::uint32_t compute_gap = 0) {
    if (records_.size() == records_.capacity()) {
      trace_hooks::detail::note_record_allocation();
    }
    records_.push_back(
        TraceRecord::make(addr, outer_iter, kind, site, flags, compute_gap));
  }

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const TraceRecord& operator[](std::size_t i) const {
    return records_[i];
  }
  [[nodiscard]] std::span<const TraceRecord> records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::vector<TraceRecord>& mutable_records() noexcept {
    return records_;
  }

  /// Highest outer_iter present plus one; 0 for an empty trace.
  [[nodiscard]] std::uint32_t outer_iterations() const noexcept;

  auto begin() const noexcept { return records_.begin(); }
  auto end() const noexcept { return records_.end(); }

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace spf
