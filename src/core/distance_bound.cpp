#include "spf/core/distance_bound.hpp"

#include <algorithm>
#include <sstream>

#include "spf/common/assert.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/profile/invocations.hpp"
#include "spf/telemetry/telemetry.hpp"

namespace spf {

std::string DistanceBound::to_string() const {
  std::ostringstream out;
  out << "DistanceBound{original_min_sa=" << original_min_sa;
  if (with_helper_min_sa) out << " with_helper_min_sa=" << *with_helper_min_sa;
  out << " upper_limit=" << upper_limit << "}";
  return out.str();
}

DistanceBound estimate_distance_bound(
    const TraceBuffer& main_trace,
    const std::vector<std::uint32_t>& invocation_starts,
    const CacheGeometry& l2) {
  SPF_SPAN("distance-bound");
  telemetry::count(telemetry::Counter::kDistanceBounds);
  const WorkloadSaResult sa =
      analyze_workload_sa(main_trace, invocation_starts, l2);
  SPF_ASSERT(sa.merged.any_saturated(),
             "no cache set saturates: the working set fits in the cache and "
             "prefetch distance is unconstrained by pollution");
  DistanceBound bound;
  bound.original_min_sa = sa.merged.min_sa();
  bound.upper_limit = std::max<std::uint32_t>(1, bound.original_min_sa / 2);
  return bound;
}

DistanceBound refine_with_helper(
    const DistanceBound& bound, const TraceBuffer& main_trace,
    const std::vector<std::uint32_t>& invocation_starts, const SpParams& params,
    const CacheGeometry& l2, const DistanceBoundOptions& options) {
  SPF_SPAN("refine");
  telemetry::count(telemetry::Counter::kRefineRuns);
  // The paper's "Set Affinity with Helper Thread" is measured over the
  // combined reference stream of main thread and helper, with the helper's
  // records re-anchored to the main-thread iteration at which they actually
  // hit the shared cache: the helper touches a pre-executed iteration's data
  // while the main thread is still ~A_SKI iterations behind, so the combined
  // stream reflects the doubled per-set pressure the
  // "Set Affinity with Helper Thread <= Original/2" formula captures.
  WorkloadSaResult sa;
  if (options.streaming_refine) {
    // Zero-copy path: the helper view and the merge are lazy cursor
    // adaptors; no trace record is ever stored.
    MergeByIterCursor combined(
        TraceViewCursor(main_trace),
        HelperViewCursor(main_trace, params, {}, /*re_anchor=*/true));
    sa = analyze_workload_sa(combined, invocation_starts, l2);
  } else {
    // Reference path: materialize helper and merged streams.
    TraceBuffer helper = make_helper_trace(main_trace, params);
    for (TraceRecord& r : helper.mutable_records()) {
      r.outer_iter =
          r.outer_iter >= params.a_ski ? r.outer_iter - params.a_ski : 0;
    }
    const TraceBuffer combined = merge_traces_by_iter(main_trace, helper);
    sa = analyze_workload_sa(combined, invocation_starts, l2);
  }
  DistanceBound refined = bound;
  if (sa.merged.any_saturated()) {
    refined.with_helper_min_sa = sa.merged.min_sa();
    refined.upper_limit =
        std::max<std::uint32_t>(1, std::min(*refined.with_helper_min_sa,
                                            bound.original_min_sa / 2));
  }
  return refined;
}

std::uint32_t PhasedDistanceBound::bound_at(std::uint32_t outer_iter) const {
  std::uint32_t cap = whole.upper_limit;
  for (const PhaseDistanceBound& p : phases) {
    if (outer_iter < p.begin_iter) break;
    cap = p.upper_limit;
  }
  return cap;
}

std::uint32_t PhasedDistanceBound::min_phase_bound() const {
  std::uint32_t best = whole.upper_limit;
  for (const PhaseDistanceBound& p : phases) {
    best = std::min(best, p.upper_limit);
  }
  return best;
}

std::string PhasedDistanceBound::to_string() const {
  std::ostringstream out;
  out << "PhasedDistanceBound{" << whole.to_string() << " phases=[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseDistanceBound& p = phases[i];
    if (i != 0) out << " ";
    out << "[" << p.begin_iter << "," << p.end_iter << ")<=" << p.upper_limit;
  }
  out << "]}";
  return out.str();
}

namespace {

// Phases with samples get the paper's per-phase cap via `cap_of`; sampled-
// less phases inherit the whole-run limit (no evidence to relax them).
template <typename CapFn>
std::vector<PhaseDistanceBound> phase_bounds_from(
    const std::vector<AffinityPhase>& phases, std::uint32_t whole_limit,
    CapFn cap_of) {
  std::vector<PhaseDistanceBound> out;
  out.reserve(phases.size());
  for (const AffinityPhase& p : phases) {
    PhaseDistanceBound b;
    b.begin_iter = p.begin_iter;
    b.end_iter = p.end_iter;
    b.min_sa = p.min_sa;
    b.upper_limit = p.samples != 0 ? cap_of(p.min_sa) : whole_limit;
    out.push_back(b);
  }
  return out;
}

}  // namespace

PhasedDistanceBound estimate_phase_bounds(
    const TraceBuffer& main_trace,
    const std::vector<std::uint32_t>& invocation_starts, const CacheGeometry& l2,
    const PhaseAffinityConfig& config) {
  SPF_SPAN("phase-bound");
  telemetry::count(telemetry::Counter::kDistanceBounds);
  telemetry::count(telemetry::Counter::kPhaseAnalyses);
  const PhasedSaResult sa =
      analyze_workload_sa_phased(main_trace, invocation_starts, l2, config);
  SPF_ASSERT(sa.whole.merged.any_saturated(),
             "no cache set saturates: the working set fits in the cache and "
             "prefetch distance is unconstrained by pollution");
  telemetry::count(telemetry::Counter::kAffinityPhases, sa.phases.size());
  PhasedDistanceBound out;
  out.whole.original_min_sa = sa.whole.merged.min_sa();
  out.whole.upper_limit =
      std::max<std::uint32_t>(1, out.whole.original_min_sa / 2);
  out.phases = phase_bounds_from(
      sa.phases, out.whole.upper_limit, [](std::uint32_t min_sa) {
        return std::max<std::uint32_t>(1, min_sa / 2);
      });
  return out;
}

PhasedDistanceBound refine_phase_bounds(
    const PhasedDistanceBound& bound, const TraceBuffer& main_trace,
    const std::vector<std::uint32_t>& invocation_starts, const SpParams& params,
    const CacheGeometry& l2, const DistanceBoundOptions& options) {
  SPF_SPAN("phase-refine");
  telemetry::count(telemetry::Counter::kRefineRuns);
  telemetry::count(telemetry::Counter::kPhaseAnalyses);
  // Same combined main+helper reference stream as refine_with_helper (see
  // the re-anchoring rationale there); the phases are detected on that
  // merged stream, so a phase's cap reflects the helper pressure *inside* it.
  PhasedSaResult sa;
  if (options.streaming_refine) {
    MergeByIterCursor combined(
        TraceViewCursor(main_trace),
        HelperViewCursor(main_trace, params, {}, /*re_anchor=*/true));
    sa = analyze_workload_sa_phased(combined, invocation_starts, l2,
                                    options.phase);
  } else {
    TraceBuffer helper = make_helper_trace(main_trace, params);
    for (TraceRecord& r : helper.mutable_records()) {
      r.outer_iter =
          r.outer_iter >= params.a_ski ? r.outer_iter - params.a_ski : 0;
    }
    const TraceBuffer combined = merge_traces_by_iter(main_trace, helper);
    sa = analyze_workload_sa_phased(combined, invocation_starts, l2,
                                    options.phase);
  }
  telemetry::count(telemetry::Counter::kAffinityPhases, sa.phases.size());
  PhasedDistanceBound refined;
  refined.whole = bound.whole;
  if (sa.whole.merged.any_saturated()) {
    refined.whole.with_helper_min_sa = sa.whole.merged.min_sa();
    refined.whole.upper_limit = std::max<std::uint32_t>(
        1, std::min(*refined.whole.with_helper_min_sa,
                    bound.whole.original_min_sa / 2));
  }
  const std::uint32_t original_half =
      std::max<std::uint32_t>(1, bound.whole.original_min_sa / 2);
  refined.phases = phase_bounds_from(
      sa.phases, refined.whole.upper_limit,
      [original_half](std::uint32_t min_sa) {
        return std::max<std::uint32_t>(1, std::min(min_sa, original_half));
      });
  return refined;
}

}  // namespace spf
