#include "spf/core/distance_bound.hpp"

#include <algorithm>
#include <sstream>

#include "spf/common/assert.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/profile/invocations.hpp"
#include "spf/telemetry/telemetry.hpp"

namespace spf {

std::string DistanceBound::to_string() const {
  std::ostringstream out;
  out << "DistanceBound{original_min_sa=" << original_min_sa;
  if (with_helper_min_sa) out << " with_helper_min_sa=" << *with_helper_min_sa;
  out << " upper_limit=" << upper_limit << "}";
  return out.str();
}

DistanceBound estimate_distance_bound(
    const TraceBuffer& main_trace,
    const std::vector<std::uint32_t>& invocation_starts,
    const CacheGeometry& l2) {
  SPF_SPAN("distance-bound");
  telemetry::count(telemetry::Counter::kDistanceBounds);
  const WorkloadSaResult sa =
      analyze_workload_sa(main_trace, invocation_starts, l2);
  SPF_ASSERT(sa.merged.any_saturated(),
             "no cache set saturates: the working set fits in the cache and "
             "prefetch distance is unconstrained by pollution");
  DistanceBound bound;
  bound.original_min_sa = sa.merged.min_sa();
  bound.upper_limit = std::max<std::uint32_t>(1, bound.original_min_sa / 2);
  return bound;
}

DistanceBound refine_with_helper(
    const DistanceBound& bound, const TraceBuffer& main_trace,
    const std::vector<std::uint32_t>& invocation_starts, const SpParams& params,
    const CacheGeometry& l2, const DistanceBoundOptions& options) {
  SPF_SPAN("refine");
  telemetry::count(telemetry::Counter::kRefineRuns);
  // The paper's "Set Affinity with Helper Thread" is measured over the
  // combined reference stream of main thread and helper, with the helper's
  // records re-anchored to the main-thread iteration at which they actually
  // hit the shared cache: the helper touches a pre-executed iteration's data
  // while the main thread is still ~A_SKI iterations behind, so the combined
  // stream reflects the doubled per-set pressure the
  // "Set Affinity with Helper Thread <= Original/2" formula captures.
  WorkloadSaResult sa;
  if (options.streaming_refine) {
    // Zero-copy path: the helper view and the merge are lazy cursor
    // adaptors; no trace record is ever stored.
    MergeByIterCursor combined(
        TraceViewCursor(main_trace),
        HelperViewCursor(main_trace, params, {}, /*re_anchor=*/true));
    sa = analyze_workload_sa(combined, invocation_starts, l2);
  } else {
    // Reference path: materialize helper and merged streams.
    TraceBuffer helper = make_helper_trace(main_trace, params);
    for (TraceRecord& r : helper.mutable_records()) {
      r.outer_iter =
          r.outer_iter >= params.a_ski ? r.outer_iter - params.a_ski : 0;
    }
    const TraceBuffer combined = merge_traces_by_iter(main_trace, helper);
    sa = analyze_workload_sa(combined, invocation_starts, l2);
  }
  DistanceBound refined = bound;
  if (sa.merged.any_saturated()) {
    refined.with_helper_min_sa = sa.merged.min_sa();
    refined.upper_limit =
        std::max<std::uint32_t>(1, std::min(*refined.with_helper_min_sa,
                                            bound.original_min_sa / 2));
  }
  return refined;
}

}  // namespace spf
