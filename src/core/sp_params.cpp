#include "spf/core/sp_params.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "spf/common/assert.hpp"

namespace spf {

std::string SpParams::to_string() const {
  std::ostringstream out;
  out << "SP{A_SKI=" << a_ski << " A_PRE=" << a_pre << " RP=" << rp() << "}";
  return out.str();
}

SpParams SpParams::from_distance_rp(std::uint32_t distance, double rp) {
  SPF_ASSERT(rp > 0.0, "prefetch ratio must be positive");
  if (rp >= 1.0) {
    return SpParams{.a_ski = 0, .a_pre = std::max<std::uint32_t>(distance, 1)};
  }
  if (distance == 0) {
    // Degenerate: no skipping requested; smallest useful round.
    return SpParams{.a_ski = 0, .a_pre = 1};
  }
  const double p = static_cast<double>(distance) * rp / (1.0 - rp);
  const auto a_pre = static_cast<std::uint32_t>(std::lround(std::max(1.0, p)));
  return SpParams{.a_ski = distance, .a_pre = a_pre};
}

double SpParams::rp_from_calr(double calr) noexcept {
  return std::clamp(0.5 + 0.5 * calr, 0.5, 1.0);
}

}  // namespace spf
