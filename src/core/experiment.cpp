#include "spf/core/experiment.hpp"

#include <sstream>

#include "spf/common/assert.hpp"
#include "spf/core/experiment_context.hpp"
#include "spf/sim/simulator.hpp"

namespace spf {
namespace {

double ratio(double num, double den) { return den != 0.0 ? num / den : 0.0; }

}  // namespace

SpRunSummary SpRunSummary::from(const SimResult& result) {
  const ThreadMetrics& main = result.main();
  SpRunSummary s;
  s.runtime = main.finish_time;
  s.l2_lookups = main.l2_lookups;
  s.totally_hits = main.totally_hits;
  s.partially_hits = main.partially_hits;
  s.totally_misses = main.totally_misses;
  s.pollution = result.pollution;
  s.memory_requests = result.memory.requests;
  s.helper_finish =
      result.per_core.size() > 1 ? result.per_core[1].finish_time : 0;
  s.provenance = result.provenance;
  return s;
}

double SpComparison::norm_runtime() const {
  return ratio(static_cast<double>(sp.runtime),
               static_cast<double>(original.runtime));
}

double SpComparison::norm_memory_accesses() const {
  return ratio(static_cast<double>(sp.memory_accesses()),
               static_cast<double>(original.memory_accesses()));
}

double SpComparison::norm_hot_misses() const {
  return ratio(static_cast<double>(sp.totally_misses),
               static_cast<double>(original.totally_misses));
}

double SpComparison::delta_totally_hit() const {
  return ratio(static_cast<double>(sp.totally_hits) -
                   static_cast<double>(original.totally_hits),
               static_cast<double>(original.memory_accesses()));
}

double SpComparison::delta_totally_miss() const {
  return ratio(static_cast<double>(sp.totally_misses) -
                   static_cast<double>(original.totally_misses),
               static_cast<double>(original.memory_accesses()));
}

double SpComparison::delta_partially_hit() const {
  return ratio(static_cast<double>(sp.partially_hits) -
                   static_cast<double>(original.partially_hits),
               static_cast<double>(original.memory_accesses()));
}

std::string SpComparison::to_string() const {
  std::ostringstream out;
  out << "norm_runtime=" << norm_runtime()
      << " norm_mem_acc=" << norm_memory_accesses()
      << " norm_hot_misses=" << norm_hot_misses()
      << " dThit=" << delta_totally_hit() << " dTmiss=" << delta_totally_miss()
      << " dPhit=" << delta_partially_hit() << " " << sp.pollution.to_string();
  return out.str();
}

// The free functions are thin wrappers: a throwaway ExperimentContext per
// call preserves the pure-function contract while keeping exactly one
// implementation of each run recipe (in experiment_context.cpp).

SpRunSummary run_original(const TraceBuffer& main_trace,
                          const SpExperimentConfig& config) {
  ExperimentContext ctx;
  return ctx.run_original(main_trace, config);
}

SpRunSummary run_sp_once(const TraceBuffer& main_trace,
                         const SpExperimentConfig& config) {
  ExperimentContext ctx;
  return ctx.run_sp_once(main_trace, config);
}

SpComparison run_sp_experiment(const TraceBuffer& main_trace,
                               const SpExperimentConfig& config) {
  ExperimentContext ctx;
  return ctx.run_comparison(main_trace, config);
}

}  // namespace spf
