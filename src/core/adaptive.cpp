#include "spf/core/adaptive.hpp"

#include <algorithm>

#include "spf/common/assert.hpp"

namespace spf {

const char* to_string(AdaptiveAction a) noexcept {
  switch (a) {
    case AdaptiveAction::kHold: return "hold";
    case AdaptiveAction::kIncrease: return "increase";
    case AdaptiveAction::kDecrease: return "decrease";
  }
  return "?";
}

FeedbackDistanceController::FeedbackDistanceController(
    const AdaptiveConfig& config)
    : config_(config),
      distance_(std::clamp(config.initial_distance, config.min_distance,
                           config.max_distance)) {
  SPF_ASSERT(config.min_distance >= 1, "distance must stay positive");
  SPF_ASSERT(config.min_distance <= config.max_distance, "empty distance range");
  SPF_ASSERT(config.increase_step >= 1, "increase step must be positive");
}

AdaptiveAction FeedbackDistanceController::observe(
    const IntervalFeedback& interval) {
  if (interval.l2_lookups == 0) return AdaptiveAction::kHold;
  const double pollution_pm =
      1000.0 * static_cast<double>(interval.pollution_events) /
      static_cast<double>(interval.l2_lookups);
  const std::uint64_t mem_acc =
      interval.partially_hits + interval.totally_misses;
  const double late = mem_acc ? static_cast<double>(interval.partially_hits) /
                                    static_cast<double>(mem_acc)
                              : 0.0;

  if (pollution_pm > config_.pollution_high_per_mille &&
      distance_ > config_.min_distance) {
    distance_ = std::max(config_.min_distance, distance_ / 2);
    ++decreases_;
    return AdaptiveAction::kDecrease;
  }
  if (pollution_pm < config_.pollution_low_per_mille &&
      late > config_.late_share && distance_ < config_.max_distance) {
    distance_ = std::min(config_.max_distance, distance_ + config_.increase_step);
    ++increases_;
    return AdaptiveAction::kIncrease;
  }
  return AdaptiveAction::kHold;
}

std::string FeedbackDistanceController::to_string() const {
  return "adaptive{distance=" + std::to_string(distance_) +
         " +" + std::to_string(increases_) + "/-" + std::to_string(decreases_) +
         "}";
}

namespace {

/// Splits `trace` into contiguous chunks of `interval_iters` outer
/// iterations, re-basing outer_iter inside each chunk.
std::vector<TraceBuffer> split_by_iters(const TraceBuffer& trace,
                                        std::uint32_t interval_iters) {
  std::vector<TraceBuffer> chunks;
  std::int64_t current_index = -1;
  std::uint32_t chunk_base = 0;
  for (const TraceRecord& r : trace) {
    const std::uint32_t chunk_index = r.outer_iter / interval_iters;
    if (static_cast<std::int64_t>(chunk_index) != current_index) {
      chunks.emplace_back();
      current_index = chunk_index;
      chunk_base = chunk_index * interval_iters;
    }
    TraceRecord rebased = r;
    rebased.outer_iter = r.outer_iter - chunk_base;
    chunks.back().mutable_records().push_back(rebased);
  }
  return chunks;
}

}  // namespace

AdaptiveRunResult run_adaptive_experiment(const TraceBuffer& trace,
                                          const SpExperimentConfig& base,
                                          const AdaptiveConfig& adaptive,
                                          std::uint32_t interval_iters,
                                          double rp) {
  SPF_ASSERT(interval_iters > 0, "interval must be positive");
  AdaptiveRunResult result;
  FeedbackDistanceController controller(adaptive);

  for (const TraceBuffer& chunk : split_by_iters(trace, interval_iters)) {
    SpExperimentConfig cfg = base;
    cfg.params = SpParams::from_distance_rp(controller.distance(), rp);
    const SpRunSummary run = run_sp_once(chunk, cfg);
    result.distance_trajectory.push_back(controller.distance());
    ++result.intervals;

    result.aggregate.runtime += run.runtime;
    result.aggregate.l2_lookups += run.l2_lookups;
    result.aggregate.totally_hits += run.totally_hits;
    result.aggregate.partially_hits += run.partially_hits;
    result.aggregate.totally_misses += run.totally_misses;
    result.aggregate.memory_requests += run.memory_requests;
    result.aggregate.pollution.case1_reuse_displaced +=
        run.pollution.case1_reuse_displaced;
    result.aggregate.pollution.case2_helper_displaced +=
        run.pollution.case2_helper_displaced;
    result.aggregate.pollution.case3_hw_displaced +=
        run.pollution.case3_hw_displaced;
    result.aggregate.pollution.prefetch_caused_evictions +=
        run.pollution.prefetch_caused_evictions;
    result.aggregate.pollution.total_evictions += run.pollution.total_evictions;

    controller.observe(IntervalFeedback{
        .l2_lookups = run.l2_lookups,
        .partially_hits = run.partially_hits,
        .totally_misses = run.totally_misses,
        .pollution_events = run.pollution.total_pollution(),
    });
  }
  return result;
}

}  // namespace spf
