#include "spf/core/adaptive.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "spf/common/assert.hpp"
#include "spf/core/experiment_context.hpp"
#include "spf/telemetry/telemetry.hpp"

namespace spf {

const char* to_string(AdaptiveAction a) noexcept {
  switch (a) {
    case AdaptiveAction::kHold: return "hold";
    case AdaptiveAction::kIncrease: return "increase";
    case AdaptiveAction::kDecrease: return "decrease";
  }
  return "?";
}

std::string AdaptiveConfig::validate() const {
  if (min_distance < 1) return "min_distance must be >= 1";
  if (min_distance > max_distance) {
    return "empty distance range (min_distance > max_distance)";
  }
  if (increase_step < 1) return "increase_step must be >= 1";
  if (interval_iters < 1) return "interval_iters must be >= 1";
  if (!(rp > 0.0) || rp > 1.0) return "rp must be in (0, 1]";
  for (std::size_t i = 0; i < phase_caps.size(); ++i) {
    if (phase_caps[i].upper_limit < 1) {
      return "phase cap upper_limit must be >= 1";
    }
    if (i > 0 && phase_caps[i].begin_iter <= phase_caps[i - 1].begin_iter) {
      return "phase caps must have strictly increasing begin_iter";
    }
  }
  return "";
}

FeedbackDistanceController::FeedbackDistanceController(
    const AdaptiveConfig& config)
    : config_(config),
      distance_(std::clamp(config.initial_distance, config.min_distance,
                           config.max_distance)),
      effective_max_(config.max_distance) {
  SPF_ASSERT(config.min_distance >= 1, "distance must stay positive");
  SPF_ASSERT(config.min_distance <= config.max_distance, "empty distance range");
  SPF_ASSERT(config.increase_step >= 1, "increase step must be positive");
}

AdaptiveAction FeedbackDistanceController::observe(
    const IntervalFeedback& interval) {
  if (interval.l2_lookups == 0) return AdaptiveAction::kHold;
  const double pollution_pm =
      1000.0 * static_cast<double>(interval.pollution_events) /
      static_cast<double>(interval.l2_lookups);
  const std::uint64_t mem_acc =
      interval.partially_hits + interval.totally_misses;
  const double late = mem_acc ? static_cast<double>(interval.partially_hits) /
                                    static_cast<double>(mem_acc)
                              : 0.0;

  if (pollution_pm > config_.pollution_high_per_mille &&
      distance_ > config_.min_distance) {
    distance_ = std::max(config_.min_distance, distance_ / 2);
    ++decreases_;
    return AdaptiveAction::kDecrease;
  }
  if (pollution_pm < config_.pollution_low_per_mille &&
      late > config_.late_share && distance_ < effective_max_) {
    distance_ = std::min(effective_max_, distance_ + config_.increase_step);
    ++increases_;
    return AdaptiveAction::kIncrease;
  }
  return AdaptiveAction::kHold;
}

std::uint32_t FeedbackDistanceController::reclamp_max(std::uint32_t cap) {
  effective_max_ =
      std::clamp(cap, config_.min_distance, config_.max_distance);
  distance_ = std::clamp(distance_, config_.min_distance, effective_max_);
  return distance_;
}

std::string FeedbackDistanceController::to_string() const {
  return "adaptive{distance=" + std::to_string(distance_) +
         " +" + std::to_string(increases_) + "/-" + std::to_string(decreases_) +
         "}";
}

namespace {

/// One observation interval's slice of the trace: records [begin, end) all
/// fall into the same interval_iters-sized outer-iteration chunk, replayed
/// with outer_iter re-based by `iter_base`. Boundaries replicate the
/// pre-redesign split_by_iters exactly — a new segment starts whenever
/// outer_iter / interval_iters changes between consecutive records — so the
/// cold path stays bit-identical to the materializing reference.
struct Segment {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint32_t iter_base = 0;
};

std::vector<Segment> segment_by_iters(std::span<const TraceRecord> records,
                                      std::uint32_t interval_iters) {
  std::vector<Segment> segments;
  std::int64_t current_index = -1;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const std::uint32_t chunk_index = records[i].outer_iter / interval_iters;
    if (static_cast<std::int64_t>(chunk_index) != current_index) {
      if (!segments.empty()) segments.back().end = i;
      segments.push_back(
          Segment{i, records.size(), chunk_index * interval_iters});
      current_index = chunk_index;
    }
  }
  return segments;
}

/// The pre-redesign per-interval aggregation (helper_finish intentionally
/// not summed — per-interval helper finish times are not additive).
void accumulate(SpRunSummary& agg, const SpRunSummary& run) {
  agg.runtime += run.runtime;
  agg.l2_lookups += run.l2_lookups;
  agg.totally_hits += run.totally_hits;
  agg.partially_hits += run.partially_hits;
  agg.totally_misses += run.totally_misses;
  agg.memory_requests += run.memory_requests;
  agg.pollution.case1_reuse_displaced += run.pollution.case1_reuse_displaced;
  agg.pollution.case2_helper_displaced += run.pollution.case2_helper_displaced;
  agg.pollution.case3_hw_displaced += run.pollution.case3_hw_displaced;
  agg.pollution.prefetch_caused_evictions +=
      run.pollution.prefetch_caused_evictions;
  agg.pollution.total_evictions += run.pollution.total_evictions;
  agg.provenance.add(run.provenance);
}

}  // namespace

AdaptiveRunResult ExperimentContext::run_adaptive(
    const TraceBuffer& main_trace, const SpExperimentConfig& base,
    const AdaptiveConfig& adaptive) {
  if (const std::string problem = adaptive.validate(); !problem.empty()) {
    throw std::invalid_argument("invalid AdaptiveConfig: " + problem);
  }
  const SpParams default_params{};
  if (base.params.a_ski != default_params.a_ski ||
      base.params.a_pre != default_params.a_pre) {
    throw std::invalid_argument(
        "run_adaptive derives SpParams per interval from the controller's "
        "distance and AdaptiveConfig::rp; base.params must stay default "
        "(set AdaptiveConfig::rp / initial_distance instead)");
  }
  SPF_SPAN("adaptive");
  telemetry::count(telemetry::Counter::kAdaptiveRuns);

  AdaptiveRunResult result;
  FeedbackDistanceController controller(adaptive);
  result.initial_distance = controller.distance();

  const std::span<const TraceRecord> records = main_trace.records();
  SpRunSummary prev_cumulative;  // warm path: previous intervals' totals
  bool first_interval = true;
  // Per-phase ceilings: the active cap is re-evaluated at every interval
  // boundary; the ceiling is re-clamped (and an event recorded) only when
  // the active phase changes. kNoCap covers iterations before the first
  // cap's begin_iter; kUnresolved forces the first interval to resolve —
  // and record — its phase, pinning the initial ceiling in the artifact.
  constexpr std::ptrdiff_t kUnresolved = -2;
  constexpr std::ptrdiff_t kNoCap = -1;
  std::ptrdiff_t active_cap = kUnresolved;
  std::unique_ptr<telemetry::ScopedSpan> phase_span;
  for (const Segment& seg :
       segment_by_iters(records, adaptive.interval_iters)) {
    if (!adaptive.phase_caps.empty()) {
      std::ptrdiff_t cap_idx = kNoCap;
      for (std::size_t c = 0; c < adaptive.phase_caps.size() &&
                              adaptive.phase_caps[c].begin_iter <= seg.iter_base;
           ++c) {
        cap_idx = static_cast<std::ptrdiff_t>(c);
      }
      if (cap_idx != active_cap) {
        active_cap = cap_idx;
        const std::uint32_t ceiling =
            cap_idx == kNoCap
                ? adaptive.max_distance
                : adaptive.phase_caps[static_cast<std::size_t>(cap_idx)]
                      .upper_limit;
        const std::uint32_t after = controller.reclamp_max(ceiling);
        telemetry::count(telemetry::Counter::kAdaptiveReclamps);
        telemetry::sample("affinity.bound", controller.max_distance());
        phase_span.reset();
        phase_span = std::make_unique<telemetry::ScopedSpan>(
            "affinity.phase", "bound",
            static_cast<std::uint64_t>(controller.max_distance()));
        result.reclamps.push_back(PhaseReclampEvent{
            .interval = result.intervals,
            .phase = cap_idx == kNoCap
                         ? std::uint32_t{0xffffffffu}
                         : static_cast<std::uint32_t>(cap_idx),
            .cap = controller.max_distance(),
            .distance_after = after});
      }
    }
    const std::uint32_t distance = controller.distance();
    SPF_SPAN("adaptive.interval", "distance", distance);
    telemetry::count(telemetry::Counter::kAdaptiveIntervals);
    telemetry::sample("adaptive.distance", distance);
    telemetry::gauge_max(telemetry::Gauge::kAdaptiveDistanceMax, distance);

    SpExperimentConfig cfg = base;
    cfg.params = SpParams::from_distance_rp(distance, adaptive.rp);
    const std::span<const TraceRecord> segment =
        records.subspan(seg.begin, seg.end - seg.begin);
    telemetry::count(telemetry::Counter::kReplayRuns);
    telemetry::count(telemetry::Counter::kReplayRecords, segment.size());

    // Both cores replay through cursor windows over the shared trace — the
    // demand core re-bases outer_iter on the fly, the helper synthesizes its
    // stream inside replay — so no per-segment trace is ever materialized
    // and the run allocates no trace-record storage.
    main_feed_.emplace(RebaseViewCursor(segment, seg.iter_base));
    helper_feed_.emplace(HelperViewCursor(segment, cfg.params, cfg.helper,
                                          /*re_anchor=*/false, seg.iter_base));
    const RoundSync sync{.leader = 0, .round_iters = cfg.params.round()};
    const std::vector<CoreStream> streams = {
        CoreStream{.source = &*main_feed_, .origin = FillOrigin::kDemand,
                   .sync = std::nullopt},
        CoreStream{.source = &*helper_feed_, .origin = FillOrigin::kHelper,
                   .sync = sync},
    };
    const bool warm = adaptive.warm_intervals && !first_interval;
    const SimResult sim =
        warm ? simulator_.run_warm(streams) : simulator_.run(cfg.sim, streams);

    const std::uint64_t synthesized = helper_feed_->records_served();
    telemetry::count(telemetry::Counter::kHelperRecords, synthesized);
    telemetry::count(telemetry::Counter::kHelperRecordsSynthesized,
                     synthesized);
    telemetry::count(telemetry::Counter::kHelperScratchBytesSaved,
                     synthesized * sizeof(TraceRecord));

    const SpRunSummary summary = SpRunSummary::from(sim);
    if (summary.provenance.enabled && telemetry::enabled()) {
      // Per-interval mean fill->first-use distance (demand L2 lookups), the
      // timeliness companion of the adaptive.distance track. Warm runs report
      // cumulative totals, so difference against the previous interval; a
      // resident fill can migrate fate categories between warm snapshots, so
      // guard against non-monotone deltas instead of asserting them.
      const ProvenanceSummary& cur = summary.provenance;
      const ProvenanceSummary& prev = prev_cumulative.provenance;
      const bool cumulative = adaptive.warm_intervals;
      const std::uint64_t timely_delta =
          cumulative ? (cur.used_timely > prev.used_timely
                            ? cur.used_timely - prev.used_timely
                            : 0)
                     : cur.used_timely;
      const std::uint64_t total_delta =
          cumulative ? (cur.fill_to_use_total > prev.fill_to_use_total
                            ? cur.fill_to_use_total - prev.fill_to_use_total
                            : 0)
                     : cur.fill_to_use_total;
      if (timely_delta > 0) {
        telemetry::sample("prefetch.fill_to_use", total_delta / timely_delta);
      }
    }
    IntervalFeedback feedback;
    if (adaptive.warm_intervals) {
      // Warm runs report cumulative totals; the controller wants this
      // interval's deltas, and the final cumulative summary IS the aggregate.
      feedback.l2_lookups = summary.l2_lookups - prev_cumulative.l2_lookups;
      feedback.partially_hits =
          summary.partially_hits - prev_cumulative.partially_hits;
      feedback.totally_misses =
          summary.totally_misses - prev_cumulative.totally_misses;
      feedback.pollution_events = summary.pollution.total_pollution() -
                                  prev_cumulative.pollution.total_pollution();
      result.aggregate = summary;
      prev_cumulative = summary;
    } else {
      feedback.l2_lookups = summary.l2_lookups;
      feedback.partially_hits = summary.partially_hits;
      feedback.totally_misses = summary.totally_misses;
      feedback.pollution_events = summary.pollution.total_pollution();
      accumulate(result.aggregate, summary);
    }

    result.distance_trajectory.push_back(distance);
    ++result.intervals;
    switch (controller.observe(feedback)) {
      case AdaptiveAction::kIncrease:
        telemetry::count(telemetry::Counter::kAdaptiveIncreases);
        break;
      case AdaptiveAction::kDecrease:
        telemetry::count(telemetry::Counter::kAdaptiveDecreases);
        break;
      case AdaptiveAction::kHold:
        telemetry::count(telemetry::Counter::kAdaptiveHolds);
        break;
    }
    first_interval = false;
  }
  result.increases = controller.increases();
  result.decreases = controller.decreases();
  telemetry::gauge_max(telemetry::Gauge::kArenaBytesMax, arena_.bytes_served());
  return result;
}

AdaptiveRunResult run_adaptive_experiment(const TraceBuffer& trace,
                                          const SpExperimentConfig& base,
                                          const AdaptiveConfig& adaptive) {
  ExperimentContext ctx;
  return ctx.run_adaptive(trace, base, adaptive);
}

}  // namespace spf
