// Feedback-directed prefetch distance.
//
// The paper derives a *static* upper bound from profiling; its related-work
// section points at feedback-directed prefetching (Srinath et al., HPCA'07
// [6]/[34]) as the dynamic alternative. This controller closes that loop: it
// watches per-interval pollution and timeliness counters and walks the
// distance up or down inside [min_distance, max_distance], so a workload
// whose behaviour drifts across phases stays near its best distance without
// a re-profile.
//
// Policy (additive-increase / multiplicative-decrease, like the classic FDP
// table):
//   pollution high                         -> distance /= 2  (too early)
//   pollution low and partial-hit share
//     high (fills arriving late)           -> distance += step (too late)
//   otherwise                              -> hold
//
// docs/adaptive.md covers the policy table, the interval-replay semantics
// (cold vs. warm), and how the static Set-Affinity bound caps the walk.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "spf/core/experiment.hpp"

namespace spf {

/// One phase's distance ceiling, in cumulative outer-iteration space (the
/// orchestrator derives these from PhasedDistanceBound::phases; see
/// spf/core/distance_bound.hpp).
struct PhaseDistanceCap {
  /// First outer iteration the cap applies to; a cap stays active until the
  /// next one's begin_iter.
  std::uint32_t begin_iter = 0;
  std::uint32_t upper_limit = 1;
};

struct AdaptiveConfig {
  std::uint32_t min_distance = 1;
  /// Typically the Set-Affinity bound: the static analysis still caps the
  /// dynamic walk.
  std::uint32_t max_distance = 64;
  std::uint32_t initial_distance = 8;
  /// Additive step when increasing.
  std::uint32_t increase_step = 4;
  /// Pollution events per 1000 demand L2 lookups above which prefetches are
  /// deemed too early.
  double pollution_high_per_mille = 40.0;
  double pollution_low_per_mille = 10.0;
  /// Partially-hit share of memory accesses above which prefetches are
  /// deemed too late (data still in flight when the core arrives).
  double late_share = 0.10;
  /// Observation interval length in outer iterations of the hot loop.
  std::uint32_t interval_iters = 1000;
  /// RP = A_PRE / (A_SKI + A_PRE) used to derive SpParams from the
  /// controller's distance each interval (SpParams::from_distance_rp).
  double rp = 0.5;
  /// Carry simulator state (caches, MSHR, memory channels, core clocks)
  /// across interval boundaries instead of restarting each interval cold.
  /// The cold default is the documented approximation — and the
  /// bit-identical reference the differential tests pin — while the warm
  /// path removes the per-interval warmup transient. Warm aggregates are
  /// one continuous run's totals, not a sum of independent interval runs.
  bool warm_intervals = false;
  /// Per-phase ceilings, sorted by strictly increasing begin_iter. When
  /// non-empty, run_adaptive re-clamps the controller's ceiling at each
  /// interval boundary to the cap of the phase covering the interval's first
  /// iteration (intersected with [min_distance, max_distance]); intervals
  /// before the first cap use max_distance. Empty keeps the single whole-run
  /// ceiling — bit-identical to the pre-phase behaviour.
  std::vector<PhaseDistanceCap> phase_caps;

  /// Empty string if the config is runnable; otherwise a one-line reason
  /// (the same conditions FeedbackDistanceController asserts, plus the
  /// interval/RP fields folded in here). run_adaptive_experiment and
  /// SweepSpec::validate surface this instead of crashing.
  [[nodiscard]] std::string validate() const;
};

/// One observation interval's counters (deltas, not cumulative).
struct IntervalFeedback {
  std::uint64_t l2_lookups = 0;
  std::uint64_t partially_hits = 0;
  std::uint64_t totally_misses = 0;
  std::uint64_t pollution_events = 0;
};

enum class AdaptiveAction : std::uint8_t { kHold, kIncrease, kDecrease };

[[nodiscard]] const char* to_string(AdaptiveAction a) noexcept;

class FeedbackDistanceController {
 public:
  explicit FeedbackDistanceController(const AdaptiveConfig& config);

  [[nodiscard]] std::uint32_t distance() const noexcept { return distance_; }
  /// Ceiling currently in effect (config max until re-clamped).
  [[nodiscard]] std::uint32_t max_distance() const noexcept {
    return effective_max_;
  }

  /// Digest one interval; returns the action taken. distance() afterwards
  /// reflects the new setting for the next interval.
  AdaptiveAction observe(const IntervalFeedback& interval);

  /// Re-clamps the walk's ceiling to `cap` (intersected with the config's
  /// [min_distance, max_distance]) and pulls the current distance under it.
  /// Returns the distance after clamping. A later call with a higher cap
  /// raises the ceiling again — the walk then probes upward on its own.
  std::uint32_t reclamp_max(std::uint32_t cap);

  [[nodiscard]] std::uint64_t increases() const noexcept { return increases_; }
  [[nodiscard]] std::uint64_t decreases() const noexcept { return decreases_; }
  [[nodiscard]] std::string to_string() const;

 private:
  AdaptiveConfig config_;
  std::uint32_t distance_;
  std::uint32_t effective_max_;
  std::uint64_t increases_ = 0;
  std::uint64_t decreases_ = 0;
};

/// Emulated adaptive run: cuts the trace into interval_iters-sized segments,
/// simulates each under SP at the controller's current distance, feeds the
/// counters back, and aggregates. Cold intervals restart the simulator per
/// segment; warm_intervals carries cache/MSHR state across boundaries (the
/// aggregate is then the continuous run's cumulative summary).
/// One ceiling re-clamp applied at an interval boundary (phase_caps only).
struct PhaseReclampEvent {
  /// Interval index (into distance_trajectory) the new ceiling first applied
  /// to.
  std::uint64_t interval = 0;
  /// Index into AdaptiveConfig::phase_caps; UINT32_MAX for the implicit
  /// "before the first cap" region (ceiling = max_distance).
  std::uint32_t phase = 0;
  /// Ceiling after intersection with [min_distance, max_distance].
  std::uint32_t cap = 0;
  /// Controller distance right after the clamp (<= cap by construction).
  std::uint32_t distance_after = 0;
};

struct AdaptiveRunResult {
  SpRunSummary aggregate;
  /// Distance in effect during each interval (so trajectory.front() is the
  /// clamped initial distance whenever at least one interval ran).
  std::vector<std::uint32_t> distance_trajectory;
  std::uint64_t intervals = 0;
  /// The controller's starting distance (initial_distance clamped into
  /// [min_distance, max_distance]) — recorded even when the trace was empty
  /// so final_distance() never degenerates to a fake "0".
  std::uint32_t initial_distance = 0;
  /// Controller action tallies over the whole run.
  std::uint64_t increases = 0;
  std::uint64_t decreases = 0;
  /// Ceiling re-clamps, in interval order (empty unless phase_caps engaged —
  /// the first interval always records one then, pinning the initial phase).
  std::vector<PhaseReclampEvent> reclamps;

  [[nodiscard]] std::uint32_t final_distance() const {
    return distance_trajectory.empty() ? initial_distance
                                       : distance_trajectory.back();
  }

  [[nodiscard]] double mean_distance() const {
    if (distance_trajectory.empty()) return initial_distance;
    const std::uint64_t sum =
        std::accumulate(distance_trajectory.begin(),
                        distance_trajectory.end(), std::uint64_t{0});
    return static_cast<double>(sum) /
           static_cast<double>(distance_trajectory.size());
  }
};

/// Thin wrapper over a short-lived ExperimentContext (the one implementation
/// lives in ExperimentContext::run_adaptive — hot callers that run many
/// adaptive experiments should lease a context from ExperimentContextPool
/// instead). The controller derives SpParams from its distance and
/// adaptive.rp each interval, so `base.params` must be left default;
/// a non-default value throws std::invalid_argument rather than being
/// silently ignored. Throws std::invalid_argument on an invalid
/// AdaptiveConfig (see AdaptiveConfig::validate).
[[nodiscard]] AdaptiveRunResult run_adaptive_experiment(
    const TraceBuffer& trace, const SpExperimentConfig& base,
    const AdaptiveConfig& adaptive);

}  // namespace spf
