// Feedback-directed prefetch distance.
//
// The paper derives a *static* upper bound from profiling; its related-work
// section points at feedback-directed prefetching (Srinath et al., HPCA'07
// [6]/[34]) as the dynamic alternative. This controller closes that loop: it
// watches per-interval pollution and timeliness counters and walks the
// distance up or down inside [min_distance, max_distance], so a workload
// whose behaviour drifts across phases stays near its best distance without
// a re-profile.
//
// Policy (additive-increase / multiplicative-decrease, like the classic FDP
// table):
//   pollution high                         -> distance /= 2  (too early)
//   pollution low and partial-hit share
//     high (fills arriving late)           -> distance += step (too late)
//   otherwise                              -> hold
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spf/core/experiment.hpp"

namespace spf {

struct AdaptiveConfig {
  std::uint32_t min_distance = 1;
  /// Typically the Set-Affinity bound: the static analysis still caps the
  /// dynamic walk.
  std::uint32_t max_distance = 64;
  std::uint32_t initial_distance = 8;
  /// Additive step when increasing.
  std::uint32_t increase_step = 4;
  /// Pollution events per 1000 demand L2 lookups above which prefetches are
  /// deemed too early.
  double pollution_high_per_mille = 40.0;
  double pollution_low_per_mille = 10.0;
  /// Partially-hit share of memory accesses above which prefetches are
  /// deemed too late (data still in flight when the core arrives).
  double late_share = 0.10;
};

/// One observation interval's counters (deltas, not cumulative).
struct IntervalFeedback {
  std::uint64_t l2_lookups = 0;
  std::uint64_t partially_hits = 0;
  std::uint64_t totally_misses = 0;
  std::uint64_t pollution_events = 0;
};

enum class AdaptiveAction : std::uint8_t { kHold, kIncrease, kDecrease };

[[nodiscard]] const char* to_string(AdaptiveAction a) noexcept;

class FeedbackDistanceController {
 public:
  explicit FeedbackDistanceController(const AdaptiveConfig& config);

  [[nodiscard]] std::uint32_t distance() const noexcept { return distance_; }

  /// Digest one interval; returns the action taken. distance() afterwards
  /// reflects the new setting for the next interval.
  AdaptiveAction observe(const IntervalFeedback& interval);

  [[nodiscard]] std::uint64_t increases() const noexcept { return increases_; }
  [[nodiscard]] std::uint64_t decreases() const noexcept { return decreases_; }
  [[nodiscard]] std::string to_string() const;

 private:
  AdaptiveConfig config_;
  std::uint32_t distance_;
  std::uint64_t increases_ = 0;
  std::uint64_t decreases_ = 0;
};

/// Emulated adaptive run: cuts `trace` into `interval_iters`-sized segments,
/// simulates each under SP at the controller's current distance, feeds the
/// counters back, and aggregates. Segment caches start cold (documented
/// approximation; intervals should be long enough that warmup is amortized).
struct AdaptiveRunResult {
  SpRunSummary aggregate;
  std::vector<std::uint32_t> distance_trajectory;
  std::uint64_t intervals = 0;

  [[nodiscard]] std::uint32_t final_distance() const {
    return distance_trajectory.empty() ? 0 : distance_trajectory.back();
  }
};

/// `base.params` is ignored; the controller supplies the distance (RP is
/// taken from `rp`). Intervals are `interval_iters` outer iterations long.
[[nodiscard]] AdaptiveRunResult run_adaptive_experiment(
    const TraceBuffer& trace, const SpExperimentConfig& base,
    const AdaptiveConfig& adaptive, std::uint32_t interval_iters,
    double rp = 0.5);

}  // namespace spf
