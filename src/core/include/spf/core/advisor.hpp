// SpAdvisor: the paper's whole method as one call.
//
// Given a hot loop's annotated trace, produce everything a user needs to
// deploy SP on it:
//   * access-pattern mix        -> is helper threading even warranted?
//   * phase stability           -> does one profile suffice?
//   * CALR                      -> prefetch ratio RP
//   * Set Affinity distribution -> prefetch distance upper bound (SA/2 rule,
//                                  refined against the synthesized helper)
//   * recommended SpParams, optionally validated by simulating original vs
//     SP at the recommendation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "spf/core/distance_bound.hpp"
#include "spf/core/experiment.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/profile/calr.hpp"
#include "spf/profile/invocations.hpp"
#include "spf/profile/pattern.hpp"
#include "spf/profile/phase.hpp"

namespace spf {

struct AdvisorConfig {
  /// Shared L2 the bound is computed against.
  CacheGeometry l2 = CacheGeometry::core2_l2();
  CalrConfig calr{};
  /// Fraction of the bound to recommend (the bound is a *limit*, not a
  /// target; staying below it tolerates profile drift).
  double distance_margin = 0.5;
  /// Run original-vs-SP simulations at the recommendation to predict the
  /// speedup (costs two simulator passes over the trace).
  bool validate = true;
  /// Below this irregular-access share, the advisor flags that hardware
  /// prefetchers likely already cover the loop.
  double min_irregular_fraction = 0.2;
};

struct AdvisorReport {
  PatternReport patterns;
  PhaseReport phases;
  CalrEstimate calr;
  double rp = 0.5;
  WorkloadSaResult sa;
  DistanceBound bound;
  SpParams recommended;
  /// Filled when AdvisorConfig::validate is set.
  std::optional<SpComparison> validation;
  /// Human-readable caveats (e.g. "mostly regular accesses", "working set
  /// fits in cache: no pollution constraint").
  std::vector<std::string> caveats;
  /// Overall verdict: SP is expected to pay off on this loop.
  bool sp_recommended = true;

  [[nodiscard]] std::string to_string() const;
};

/// Runs the full advisory pipeline. `calr.l1/l2` inherit `config.l2` and its
/// companion L1 unless explicitly set apart.
[[nodiscard]] AdvisorReport advise_sp(
    const TraceBuffer& trace, const std::vector<std::uint32_t>& invocation_starts,
    const AdvisorConfig& config = {});

}  // namespace spf
