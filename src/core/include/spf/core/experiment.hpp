// SP experiment orchestration: run a workload's hot-loop trace through the
// CMP simulator twice — original (main thread alone) and with the SP helper —
// and report the paper's evaluation quantities:
//
//   Figure 2:    runtime, memory accesses, hot-loop L2 misses, each
//                normalized to the original run;
//   Figures 4-6: change of totally hits / totally misses / partially hits as
//                a percentage of the original run's memory accesses, plus
//                normalized runtime.
//
// One documented surface, one implementation: every run recipe — original,
// SP, comparison, and the adaptive interval replay
// (spf/core/adaptive.hpp) — lives on spf::ExperimentContext
// (spf/core/experiment_context.hpp). The free functions below (and
// run_adaptive_experiment) are thin wrappers that construct a short-lived
// private context per call, so there is no second code path to drift from
// the context members.
//
// Re-entrancy: the free functions are pure functions of their arguments —
// the throwaway context touches no global mutable state — so concurrent
// calls from different threads are safe; a shared TraceBuffer is only ever
// read. The spf::orchestrate sweep engine relies on this;
// tests/orchestrate_test.cpp runs under -DSPF_SANITIZE=thread to keep it
// true.
//
// Hot callers that run many experiments should lease a reusable context
// instead — ExperimentContextPool under sweep fan-out, or one
// ExperimentContext for a single-threaded loop: identical results, no
// per-call construction.
#pragma once

#include <cstdint>
#include <string>

#include "spf/core/helper_gen.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/sim/config.hpp"
#include "spf/sim/result.hpp"
#include "spf/trace/trace.hpp"

namespace spf {

struct SpExperimentConfig {
  SimConfig sim{};
  SpParams params{};
  HelperGenOptions helper{};
  /// Hardware prefetchers in the *original* (baseline) run. The paper's
  /// normalization baseline is the unmodified program on the real machine,
  /// prefetchers on.
  bool baseline_hw_prefetch = true;
};

/// One run's headline numbers (main thread's view).
struct SpRunSummary {
  Cycle runtime = 0;
  std::uint64_t l2_lookups = 0;
  std::uint64_t totally_hits = 0;
  std::uint64_t partially_hits = 0;
  std::uint64_t totally_misses = 0;
  PollutionStats pollution;
  std::uint64_t memory_requests = 0;
  std::uint64_t helper_finish = 0;
  /// Prefetch-lifecycle fate attribution; enabled only when the run's
  /// SimConfig::provenance was set (spf/sim/provenance.hpp).
  ProvenanceSummary provenance;

  [[nodiscard]] std::uint64_t memory_accesses() const noexcept {
    return totally_misses + partially_hits;
  }
  static SpRunSummary from(const SimResult& result);
};

struct SpComparison {
  SpRunSummary original;
  SpRunSummary sp;

  // Figure 2 series.
  [[nodiscard]] double norm_runtime() const;
  [[nodiscard]] double norm_memory_accesses() const;
  [[nodiscard]] double norm_hot_misses() const;  // totally misses ratio

  // Figure 4/5/6(a) series: deltas as fractions of the original run's memory
  // accesses (positive = increase under SP).
  [[nodiscard]] double delta_totally_hit() const;
  [[nodiscard]] double delta_totally_miss() const;
  [[nodiscard]] double delta_partially_hit() const;

  [[nodiscard]] std::string to_string() const;
};

// Convenience wrappers (one throwaway ExperimentContext per call — see the
// header note; hot callers lease from ExperimentContextPool instead).

/// Runs original and SP configurations of `main_trace` and returns both
/// summaries. The helper stream is synthesized from the trace with
/// config.params and staggered by round-level synchronization. Identical to
/// ExperimentContext::run_comparison.
[[nodiscard]] SpComparison run_sp_experiment(const TraceBuffer& main_trace,
                                             const SpExperimentConfig& config);

/// Just the SP run (no baseline) — for sweeps that share one baseline.
/// Identical to ExperimentContext::run_sp_once.
[[nodiscard]] SpRunSummary run_sp_once(const TraceBuffer& main_trace,
                                       const SpExperimentConfig& config);

/// Just the original run. Identical to ExperimentContext::run_original.
[[nodiscard]] SpRunSummary run_original(const TraceBuffer& main_trace,
                                        const SpExperimentConfig& config);

}  // namespace spf
