// SP (Skip helper-threaded Prefetching) parameters — paper §II.A:
//
//   A_SKI — prefetch distance: outer-loop iterations the helper skips per
//           round (spine-only traversal), which is how far its prefetches
//           land ahead of the main thread.
//   A_PRE — prefetch degree: iterations the helper pre-executes per round.
//   RP    — prefetch ratio A_PRE / (A_SKI + A_PRE).
//
// Selection rule (paper §II.B): applications with CALR close to 0 get
// RP = 0.5 (A_SKI = A_PRE, helper takes over half the problem loads);
// applications with CALR >= 1 get RP = 1 (A_SKI = 0, conventional helper
// threading that prefetches everything).
#pragma once

#include <cstdint>
#include <string>

namespace spf {

struct SpParams {
  /// Prefetch distance (iterations skipped per round).
  std::uint32_t a_ski = 0;
  /// Prefetch degree (iterations pre-executed per round).
  std::uint32_t a_pre = 1;

  [[nodiscard]] std::uint32_t round() const noexcept { return a_ski + a_pre; }
  [[nodiscard]] double rp() const noexcept {
    return static_cast<double>(a_pre) / static_cast<double>(round());
  }
  [[nodiscard]] std::string to_string() const;

  /// Builds parameters from a prefetch distance and a target prefetch ratio.
  /// distance maps to A_SKI; A_PRE is solved from RP = P/(S+P). RP >= 1
  /// yields conventional helper threading (A_SKI = 0, A_PRE = max(distance,
  /// 1)).
  static SpParams from_distance_rp(std::uint32_t distance, double rp);

  /// The paper's RP-from-CALR rule, linearly interpolated between its two
  /// anchor points: RP(0) = 0.5 and RP(1) = 1.
  static double rp_from_calr(double calr) noexcept;
};

}  // namespace spf
