// Helper-thread construction as a trace transform (paper Figure 1(b)).
//
// The SP helper executes only the loads' computation, in rounds of
// A_SKI + A_PRE outer iterations:
//
//   skip phase (first A_SKI iterations of the round): follow the spine only —
//     records flagged kFlagSpine are kept (the node->next chase the helper
//     cannot avoid); everything else is dropped. Array-scan workloads have no
//     spine records, so skipping is free for them.
//
//   pre-execute phase (last A_PRE iterations): every read is kept — spine,
//     address-generation and delinquent loads alike ("the helper thread
//     conducts A_PRE iterations of both two level traversal"). Writes are
//     always dropped: the helper must not mutate program state.
//
// By default kept reads stay blocking loads (the paper's helper is ordinary
// code whose loads stall it — that is exactly why low-CALR loops need the
// skip). Optionally delinquent loads become non-binding prefetch
// instructions instead (ablation: prefetch-instruction helper).
#pragma once

#include <cstdint>

#include "spf/core/sp_params.hpp"
#include "spf/trace/trace.hpp"

namespace spf {

struct HelperGenOptions {
  /// Emit delinquent loads as AccessKind::kPrefetch (non-binding) instead of
  /// blocking reads.
  bool use_prefetch_instructions = false;
  /// Compute cycles the helper spends per kept record (address arithmetic).
  /// The paper's helper does almost none.
  std::uint16_t helper_compute_gap = 0;
};

/// Synthesizes the helper thread's access stream from the main thread's hot
/// loop trace. outer_iter values are preserved (the simulator's RoundSync
/// staggers the two streams per round).
[[nodiscard]] TraceBuffer make_helper_trace(const TraceBuffer& main_trace,
                                            const SpParams& params,
                                            const HelperGenOptions& options = {});

/// Allocation-reusing variant: clears `out` and synthesizes the helper
/// stream into it (ExperimentContext's scratch path). Same output as
/// make_helper_trace.
void make_helper_trace_into(const TraceBuffer& main_trace,
                            const SpParams& params,
                            const HelperGenOptions& options, TraceBuffer& out);

/// Merges two traces into one stream ordered by outer_iter (stable within an
/// iteration: records of `a` first). Used to measure "Set Affinity with
/// Helper Thread" over the combined reference stream of both data access
/// entities.
[[nodiscard]] TraceBuffer merge_traces_by_iter(const TraceBuffer& a,
                                               const TraceBuffer& b);

}  // namespace spf
