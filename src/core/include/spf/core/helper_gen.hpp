// Helper-thread construction as a trace transform (paper Figure 1(b)).
//
// The SP helper executes only the loads' computation, in rounds of
// A_SKI + A_PRE outer iterations:
//
//   skip phase (first A_SKI iterations of the round): follow the spine only —
//     records flagged kFlagSpine are kept (the node->next chase the helper
//     cannot avoid); everything else is dropped. Array-scan workloads have no
//     spine records, so skipping is free for them.
//
//   pre-execute phase (last A_PRE iterations): every read is kept — spine,
//     address-generation and delinquent loads alike ("the helper thread
//     conducts A_PRE iterations of both two level traversal"). Writes are
//     always dropped: the helper must not mutate program state.
//
// By default kept reads stay blocking loads (the paper's helper is ordinary
// code whose loads stall it — that is exactly why low-CALR loops need the
// skip). Optionally delinquent loads become non-binding prefetch
// instructions instead (ablation: prefetch-instruction helper).
//
// Two implementations of the transform exist and are pinned equivalent by
// tests/trace_cursor_property_test.cpp:
//
//   * make_helper_trace / make_helper_trace_into — materialize the helper
//     stream into a TraceBuffer (the reference implementation);
//   * HelperViewCursor — a lazy TraceCursor view that applies the same
//     per-record transform while streaming over the main trace, allocating
//     no record storage. It also satisfies BulkTraceCursor (fill() writes a
//     whole window in one flat loop), so it feeds both the distance-bound
//     refinement (spf/core/distance_bound.hpp) and the simulator's helper
//     core via CursorWindowSource (docs/simulator.md "Cursor-fed cores &
//     the peek window"); the materialized path survives as the reference.
#pragma once

#include <cstdint>
#include <span>

#include "spf/common/assert.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/trace/trace.hpp"
#include "spf/trace/trace_cursor.hpp"

namespace spf {

struct HelperGenOptions {
  /// Emit delinquent loads as AccessKind::kPrefetch (non-binding) instead of
  /// blocking reads.
  bool use_prefetch_instructions = false;
  /// Compute cycles the helper spends per kept record (address arithmetic).
  /// The paper's helper does almost none.
  std::uint16_t helper_compute_gap = 0;
};

/// Synthesizes the helper thread's access stream from the main thread's hot
/// loop trace. outer_iter values are preserved (the simulator's RoundSync
/// staggers the two streams per round).
[[nodiscard]] TraceBuffer make_helper_trace(const TraceBuffer& main_trace,
                                            const SpParams& params,
                                            const HelperGenOptions& options = {});

/// Allocation-reusing variant: clears `out` and synthesizes the helper
/// stream into it (ExperimentContext's scratch path). Same output as
/// make_helper_trace.
void make_helper_trace_into(const TraceBuffer& main_trace,
                            const SpParams& params,
                            const HelperGenOptions& options, TraceBuffer& out);

/// Merges two traces into one stream ordered by outer_iter. Used to measure
/// "Set Affinity with Helper Thread" over the combined reference stream of
/// both data access entities.
///
/// Tie-break contract (relied on by MergeByIterCursor, which must reproduce
/// this stream record-for-record without materializing it): at every step the
/// head of `a` is taken iff `b` is exhausted or `a.outer_iter <= b.outer_iter`
/// — i.e. on equal outer_iter the `a`-side record is emitted first, and
/// records of the same input always keep their relative order. For inputs
/// sorted by outer_iter this is the stable two-way merge of the combined
/// stream keyed on (outer_iter, input index).
[[nodiscard]] TraceBuffer merge_traces_by_iter(const TraceBuffer& a,
                                               const TraceBuffer& b);

/// Lazy TraceCursor over the helper thread's access stream: streams the main
/// trace and applies make_helper_trace's skip/pre-execute transform per
/// record, storing nothing. Optionally re-anchors kept records to the main-
/// thread iteration at which they hit the shared cache
/// (outer_iter -> max(outer_iter - A_SKI, 0)), the transform
/// refine_with_helper otherwise applies with a mutation pass over a
/// materialized helper buffer.
///
/// The view borrows the main trace's storage; the buffer must outlive the
/// cursor.
class HelperViewCursor {
 public:
  HelperViewCursor(const TraceBuffer& main_trace, const SpParams& params,
                   const HelperGenOptions& options = {}, bool re_anchor = false)
      : HelperViewCursor(main_trace.records(), params, options, re_anchor, 0) {}

  /// Segment form: views `records` with every outer_iter re-based by
  /// `iter_base` before the transform — both the skip/pre-execute round
  /// position and the emitted record's outer_iter use the re-based value, so
  /// this is exactly the whole-trace view over a copy of the segment with
  /// outer_iter -= iter_base applied (iter_base = 0 degenerates to it). The
  /// adaptive interval replay (spf/core/adaptive.hpp) feeds each trace
  /// segment through this alongside a RebaseViewCursor for the demand core.
  HelperViewCursor(std::span<const TraceRecord> records, const SpParams& params,
                   const HelperGenOptions& options = {}, bool re_anchor = false,
                   std::uint32_t iter_base = 0)
      : records_(records),
        params_(params),
        options_(options),
        re_anchor_(re_anchor),
        iter_base_(iter_base) {
    SPF_ASSERT(params.a_pre > 0,
               "helper must pre-execute at least one iteration");
    settle();
  }

  [[nodiscard]] bool done() const noexcept { return pos_ >= records_.size(); }
  [[nodiscard]] const TraceRecord& current() const noexcept { return current_; }
  void advance() {
    ++pos_;
    settle();
  }
  void reset() {
    pos_ = 0;
    last_outer_ = ~std::uint32_t{0};
    last_pos_ = 0;
    settle();
  }

  /// Bulk form of the advance loop (see BulkTraceCursor): writes up to `cap`
  /// transformed records into `dst` and advances past them, returning the
  /// count written. Observationally equivalent to repeated
  /// {current(), advance()} — the scan runs as one flat loop straight into
  /// the destination, which is how the simulator's window source pulls the
  /// helper stream at the materialized generator's cost without the scratch.
  std::size_t fill(TraceRecord* dst, std::size_t cap) {
    if (cap == 0 || done()) return 0;
    std::size_t n = 0;
    dst[n++] = current_;  // the already-settled pending record
    ++pos_;
    for (; n < cap && pos_ < records_.size(); ++pos_) {
      const TraceRecord& r = records_[pos_];
      if (!keeps(r)) continue;
      dst[n++] = transformed(r);
    }
    settle();  // re-establish the pending record for current()/done()
    return n;
  }

 private:
  /// The skip/pre-execute predicate of make_helper_trace_into, including its
  /// per-iteration round-position memoization (last_outer_/last_pos_).
  [[nodiscard]] bool keeps(const TraceRecord& r) {
    if (r.kind() == AccessKind::kWrite) return false;  // helper never stores
    if (r.outer_iter != last_outer_) {
      last_outer_ = r.outer_iter;
      last_pos_ = (r.outer_iter - iter_base_) % params_.round();
    }
    return last_pos_ >= params_.a_ski || r.is_spine();
  }

  /// The kept record's helper image (valid right after keeps(r) returned
  /// true, which leaves last_pos_ describing r's round position).
  [[nodiscard]] TraceRecord transformed(const TraceRecord& r) const {
    const bool pre_execute = last_pos_ >= params_.a_ski;
    AccessKind kind = AccessKind::kRead;
    if (pre_execute && r.is_delinquent() && options_.use_prefetch_instructions) {
      kind = AccessKind::kPrefetch;
    }
    std::uint32_t outer = r.outer_iter - iter_base_;
    if (re_anchor_) {
      outer = outer >= params_.a_ski ? outer - params_.a_ski : 0;
    }
    return TraceRecord::make(r.addr, outer, kind, r.site, r.flags(),
                             options_.helper_compute_gap);
  }

  /// Advances pos_ to the next main-trace record the helper keeps and caches
  /// its transformed image in current_. Mirrors make_helper_trace_into
  /// exactly.
  void settle() {
    for (; pos_ < records_.size(); ++pos_) {
      const TraceRecord& r = records_[pos_];
      if (!keeps(r)) continue;
      current_ = transformed(r);
      return;
    }
  }

  std::span<const TraceRecord> records_;
  SpParams params_;
  HelperGenOptions options_;
  bool re_anchor_ = false;
  std::uint32_t iter_base_ = 0;
  std::size_t pos_ = 0;
  std::uint32_t last_outer_ = ~std::uint32_t{0};
  std::uint32_t last_pos_ = 0;
  TraceRecord current_{};
};

static_assert(TraceCursor<HelperViewCursor>);
static_assert(BulkTraceCursor<HelperViewCursor>);

}  // namespace spf
