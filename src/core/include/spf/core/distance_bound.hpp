// The paper's contribution: an upper limit on prefetch distance derived from
// Set Affinity (§III.B).
//
//   Set Affinity with Helper Thread * 2 <= Original Set Affinity
//   =>  Prefetch Distance < Set Affinity with Helper Thread
//   =>  Prefetch Distance < Original Set Affinity / 2
//
// "to avoid introducing cache pollution, the upper limit of prefetch
//  distance should be the minimum Set Affinity with Helper Thread."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "spf/core/sp_params.hpp"
#include "spf/mem/geometry.hpp"
#include "spf/profile/set_affinity.hpp"
#include "spf/trace/trace.hpp"

namespace spf {

struct DistanceBound {
  /// Minimum Original Set Affinity (application alone, hardware prefetchers
  /// and helper threading off — paper Definition 2).
  std::uint32_t original_min_sa = 0;
  /// Minimum Set Affinity measured on the combined main+helper reference
  /// stream, when a helper trace was supplied (paper Definition 3).
  std::optional<std::uint32_t> with_helper_min_sa;
  /// The bound actually recommended: with_helper_min_sa when measured,
  /// otherwise original_min_sa / 2.
  std::uint32_t upper_limit = 0;

  [[nodiscard]] bool allows(std::uint32_t distance) const noexcept {
    return distance < upper_limit;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Estimates the bound from the main thread's hot-loop trace, honoring
/// hot-function invocation boundaries (see analyze_workload_sa).
[[nodiscard]] DistanceBound estimate_distance_bound(
    const TraceBuffer& main_trace,
    const std::vector<std::uint32_t>& invocation_starts,
    const CacheGeometry& l2);

struct DistanceBoundOptions {
  /// Stream the helper view and the merged main+helper stream through
  /// TraceCursor adaptors (HelperViewCursor + MergeByIterCursor): the
  /// refinement then performs no trace-record allocations. The materializing
  /// path (make_helper_trace + an explicit re-anchor pass +
  /// merge_traces_by_iter) remains as the reference implementation — the flag
  /// exists so the differential harness can pin one path against the other
  /// (mirroring SimConfig::batched_replay), not as a behaviour knob.
  bool streaming_refine = true;
};

/// Refines the bound by measuring Set Affinity with Helper Thread directly:
/// synthesizes the helper stream for `params` (lazily by default, see
/// DistanceBoundOptions), merges it with the main stream, and re-analyzes.
[[nodiscard]] DistanceBound refine_with_helper(
    const DistanceBound& bound, const TraceBuffer& main_trace,
    const std::vector<std::uint32_t>& invocation_starts, const SpParams& params,
    const CacheGeometry& l2, const DistanceBoundOptions& options = {});

}  // namespace spf
