// The paper's contribution: an upper limit on prefetch distance derived from
// Set Affinity (§III.B).
//
//   Set Affinity with Helper Thread * 2 <= Original Set Affinity
//   =>  Prefetch Distance < Set Affinity with Helper Thread
//   =>  Prefetch Distance < Original Set Affinity / 2
//
// "to avoid introducing cache pollution, the upper limit of prefetch
//  distance should be the minimum Set Affinity with Helper Thread."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "spf/core/sp_params.hpp"
#include "spf/mem/geometry.hpp"
#include "spf/profile/incremental_affinity.hpp"
#include "spf/profile/set_affinity.hpp"
#include "spf/trace/trace.hpp"

namespace spf {

struct DistanceBound {
  /// Minimum Original Set Affinity (application alone, hardware prefetchers
  /// and helper threading off — paper Definition 2).
  std::uint32_t original_min_sa = 0;
  /// Minimum Set Affinity measured on the combined main+helper reference
  /// stream, when a helper trace was supplied (paper Definition 3).
  std::optional<std::uint32_t> with_helper_min_sa;
  /// The bound actually recommended: with_helper_min_sa when measured,
  /// otherwise original_min_sa / 2.
  std::uint32_t upper_limit = 0;

  [[nodiscard]] bool allows(std::uint32_t distance) const noexcept {
    return distance < upper_limit;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Estimates the bound from the main thread's hot-loop trace, honoring
/// hot-function invocation boundaries (see analyze_workload_sa).
[[nodiscard]] DistanceBound estimate_distance_bound(
    const TraceBuffer& main_trace,
    const std::vector<std::uint32_t>& invocation_starts,
    const CacheGeometry& l2);

struct DistanceBoundOptions {
  /// Stream the helper view and the merged main+helper stream through
  /// TraceCursor adaptors (HelperViewCursor + MergeByIterCursor): the
  /// refinement then performs no trace-record allocations. The materializing
  /// path (make_helper_trace + an explicit re-anchor pass +
  /// merge_traces_by_iter) remains as the reference implementation — the flag
  /// exists so the differential harness can pin one path against the other
  /// (mirroring SimConfig::batched_replay), not as a behaviour knob.
  bool streaming_refine = true;
  /// Windowing/hysteresis knobs for the phased analyses
  /// (estimate_phase_bounds / refine_phase_bounds) — the whole-run functions
  /// above ignore it.
  PhaseAffinityConfig phase{};
};

/// Refines the bound by measuring Set Affinity with Helper Thread directly:
/// synthesizes the helper stream for `params` (lazily by default, see
/// DistanceBoundOptions), merges it with the main stream, and re-analyzes.
[[nodiscard]] DistanceBound refine_with_helper(
    const DistanceBound& bound, const TraceBuffer& main_trace,
    const std::vector<std::uint32_t>& invocation_starts, const SpParams& params,
    const CacheGeometry& l2, const DistanceBoundOptions& options = {});

// ---- per-phase bounds (phase-incremental analyzer) -----------------------
//
// The whole-run bound caps the entire run at the worst phase's limit. The
// phased analyses keep the whole-run result — bit-identical to the functions
// above — and additionally carry one bound per detected phase, so the
// adaptive controller can re-clamp its ceiling as the workload's set
// pressure shifts (AdaptiveConfig::phase_caps). min over the per-phase
// bounds always equals the whole-run bound (phases partition the samples),
// so per-phase capping only ever *relaxes* quiet phases, never loosens the
// paper's inequality inside a pressured one.

struct PhaseDistanceBound {
  /// Cumulative outer-iteration span [begin_iter, end_iter) this bound
  /// applies to; spans are contiguous and start at 0.
  std::uint32_t begin_iter = 0;
  std::uint32_t end_iter = 0;
  /// Minimum SA measured inside the phase on the analyzed stream (original
  /// for estimate_phase_bounds, main+helper for refine_phase_bounds); 0 when
  /// the phase recorded no sample.
  std::uint32_t min_sa = 0;
  /// The cap recommended while this phase is active. Phases without samples
  /// inherit the whole-run limit (conservative: no evidence to relax).
  std::uint32_t upper_limit = 0;
};

struct PhasedDistanceBound {
  /// Identical to what estimate_distance_bound / refine_with_helper return
  /// on the same inputs (the degenerate single-phase reference semantics).
  DistanceBound whole;
  std::vector<PhaseDistanceBound> phases;  // >= 1 once analyzed

  [[nodiscard]] std::uint32_t phase_count() const noexcept {
    return static_cast<std::uint32_t>(phases.size());
  }
  /// Cap of the phase covering `outer_iter` (the last phase covers the tail;
  /// whole.upper_limit when no phases were analyzed).
  [[nodiscard]] std::uint32_t bound_at(std::uint32_t outer_iter) const;
  /// min over per-phase caps — always equals whole.upper_limit.
  [[nodiscard]] std::uint32_t min_phase_bound() const;
  [[nodiscard]] std::string to_string() const;
};

/// Phased analogue of estimate_distance_bound: same whole-run bound, plus a
/// per-phase cap max(1, phase_min_sa / 2).
[[nodiscard]] PhasedDistanceBound estimate_phase_bounds(
    const TraceBuffer& main_trace,
    const std::vector<std::uint32_t>& invocation_starts, const CacheGeometry& l2,
    const PhaseAffinityConfig& config = {});

/// Phased analogue of refine_with_helper: phases are detected on the merged
/// main+helper stream (streamed through the cursor adaptors by default, zero
/// trace-record allocations); each phase's cap is
/// max(1, min(phase_with_helper_min_sa, original_min_sa / 2)).
[[nodiscard]] PhasedDistanceBound refine_phase_bounds(
    const PhasedDistanceBound& bound, const TraceBuffer& main_trace,
    const std::vector<std::uint32_t>& invocation_starts, const SpParams& params,
    const CacheGeometry& l2, const DistanceBoundOptions& options = {});

}  // namespace spf
