// Reusable experiment execution state.
//
// The free functions in spf/core/experiment.hpp are pure: each call builds a
// private CmpSimulator, synthesizes a fresh helper trace, and tears both down.
// That is the right *semantic* contract, but under sweep fan-out — thousands
// of cells per worker — construction cost (cache arrays, helper trace,
// replacement state) dominates everything except replay itself.
//
// ExperimentContext keeps that state alive between runs:
//
//   - one CmpSimulator, reconfigured per run via CmpSimulator::run(config,
//     streams) — cache/MSHR/memory storage is reused, not reallocated;
//   - one bump Arena backing the simulator's cache arrays (released wholesale
//     when the context dies, never per cell);
//   - a fixed-ring helper feed (CursorWindowSource<HelperViewCursor>) that
//     synthesizes the helper stream *inside* replay on the default
//     streaming_cores path — plus one helper-trace TraceBuffer scratch,
//     refilled by make_helper_trace_into only on the materialized reference
//     path (SimConfig::streaming_cores off).
//
// Results are bit-identical to the free functions — every reset seam is
// specified "as-if freshly constructed", and the golden-sweep and replay
// differential tests pin that equivalence.
//
// Re-entrancy: a context is single-threaded (no internal locking). For
// concurrent sweeps, give each worker its own context — ExperimentContextPool
// hands out exclusive leases and reuses contexts across cells.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "spf/common/arena.hpp"
#include "spf/core/adaptive.hpp"
#include "spf/core/experiment.hpp"
#include "spf/core/helper_gen.hpp"
#include "spf/sim/simulator.hpp"
#include "spf/trace/trace.hpp"
#include "spf/trace/trace_cursor.hpp"
#include "spf/trace/trace_source.hpp"

namespace spf {

class ExperimentContext {
 public:
  ExperimentContext();

  // The simulator holds a pointer to arena_, so the context is pinned.
  ExperimentContext(const ExperimentContext&) = delete;
  ExperimentContext& operator=(const ExperimentContext&) = delete;

  /// Just the original (baseline) run. Identical to spf::run_original.
  SpRunSummary run_original(const TraceBuffer& main_trace,
                            const SpExperimentConfig& config);

  /// Just the SP run (no baseline). Identical to spf::run_sp_once.
  SpRunSummary run_sp_once(const TraceBuffer& main_trace,
                           const SpExperimentConfig& config);

  /// Original + SP runs. Identical to spf::run_sp_experiment.
  SpComparison run_comparison(const TraceBuffer& main_trace,
                              const SpExperimentConfig& config);

  /// Feedback-directed adaptive-distance run: slices `main_trace` into
  /// AdaptiveConfig::interval_iters-sized outer-iteration segments and
  /// replays each at the controller's current distance, entirely through
  /// cursor windows (RebaseViewCursor for the demand core, HelperViewCursor
  /// for the helper) — no per-segment trace materialization, zero
  /// trace-record allocations. Identical to spf::run_adaptive_experiment;
  /// cold intervals (the default) are bit-identical to the materializing
  /// pre-redesign implementation, pinned by
  /// tests/adaptive_property_test.cpp. See docs/adaptive.md.
  AdaptiveRunResult run_adaptive(const TraceBuffer& main_trace,
                                 const SpExperimentConfig& base,
                                 const AdaptiveConfig& adaptive);

  /// Bytes the simulator's cache arrays have drawn from the context arena
  /// (monotone; storage is reused, so repeat runs stop growing it).
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_.bytes_served();
  }

 private:
  /// Ring size of the fused helper feed, in records (64 KiB of ring). Larger
  /// windows mean fewer, longer synthesis bursts interrupting replay; the
  /// burst's cache disturbance amortizes better with size until the ring
  /// outgrows L2 (4096 measured fastest on the SP cell — 256 and 16384 are
  /// both several percent slower; see bench/perf_smoke).
  static constexpr std::size_t kHelperFeedWindow = 4096;

  Arena arena_;
  CmpSimulator simulator_;
  /// Materialized helper trace — written only on the reference path
  /// (SimConfig::streaming_cores off). The default fused path never touches
  /// it: the helper core pulls records through helper_feed_ instead.
  TraceBuffer helper_scratch_;
  /// Fused helper synthesis: a HelperViewCursor over the (memo-shared) main
  /// trace, windowed for the simulator's pull seam. Rebuilt per SP run
  /// (cheap: fixed ring storage, no allocation); optional because the cursor
  /// binds to a specific trace + params.
  std::optional<CursorWindowSource<HelperViewCursor, kHelperFeedWindow>>
      helper_feed_;
  /// Adaptive interval replay's demand-core feed: a RebaseViewCursor over the
  /// current trace segment, windowed like the helper feed. Only run_adaptive
  /// touches it (the plain SP paths index the materialized trace directly).
  std::optional<CursorWindowSource<RebaseViewCursor, kHelperFeedWindow>>
      main_feed_;
};

/// Fixed-size pool of contexts for concurrent sweep workers. Lease a context,
/// run any number of cells with it, return it on destruction:
///
///   ExperimentContextPool pool(num_threads);
///   ...in each worker:  auto lease = pool.acquire();
///                       lease->run_comparison(trace, cfg);
///
/// acquire() never blocks: the pool pre-creates `capacity` contexts and, if
/// oversubscribed (more simultaneous leases than capacity), mints a fresh
/// temporary context that dies with its lease.
///
/// The pool also owns a *trace memo*: per-workload base traces keyed by an
/// opaque workload-spec string (see trace_for). Sweep cells — and repeated
/// sweeps sharing one pool — that use the same workload then fetch the one
/// immutable emission instead of re-emitting it. The key must encode every
/// config field that affects the emitted trace; two callers presenting the
/// same key are promised the same source (docs/simulator.md "Streaming
/// traces & trace memoization" discusses key collisions).
class ExperimentContextPool {
 public:
  class Lease {
   public:
    Lease(ExperimentContextPool* pool, std::unique_ptr<ExperimentContext> ctx)
        : pool_(pool), ctx_(std::move(ctx)) {}
    ~Lease() {
      if (pool_ && ctx_) pool_->release(std::move(ctx_));
    }
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          ctx_(std::move(other.ctx_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ExperimentContext& operator*() const noexcept { return *ctx_; }
    ExperimentContext* operator->() const noexcept { return ctx_.get(); }

   private:
    ExperimentContextPool* pool_;
    std::unique_ptr<ExperimentContext> ctx_;
  };

  explicit ExperimentContextPool(std::size_t capacity);

  [[nodiscard]] Lease acquire();

  /// Contexts currently parked in the pool (capacity minus live leases;
  /// test/introspection hook).
  [[nodiscard]] std::size_t idle() const;

  using TraceEmitFn = std::function<std::shared_ptr<const TraceSource>()>;

  struct TraceMemoStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total != 0 ? static_cast<double>(hits) / static_cast<double>(total)
                        : 0.0;
    }
  };

  /// Returns the memoized trace source for `key`, calling `emit` (outside the
  /// pool lock) exactly once per key across all threads; concurrent callers
  /// of the same key wait for the first emission. An empty key bypasses the
  /// memo (emit runs every call, nothing is counted or stored). A throwing
  /// emission propagates to every waiter and is erased, so a later call may
  /// retry. Throws std::runtime_error if `emit` returns nullptr.
  [[nodiscard]] std::shared_ptr<const TraceSource> trace_for(
      const std::string& key, const TraceEmitFn& emit);

  [[nodiscard]] TraceMemoStats trace_memo_stats() const;

  /// Drops every memoized trace (and resets the stats) — for long-lived pools
  /// whose workload set changes, or tests.
  void clear_trace_memo();

 private:
  friend class Lease;
  void release(std::unique_ptr<ExperimentContext> ctx);

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ExperimentContext>> idle_;

  using TraceFuture = std::shared_future<std::shared_ptr<const TraceSource>>;
  mutable std::mutex memo_mu_;
  std::unordered_map<std::string, TraceFuture> memo_;
  TraceMemoStats memo_stats_;
};

}  // namespace spf
