#include "spf/core/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "spf/common/assert.hpp"

namespace spf {
namespace {

/// Recommendation when nothing constrains the distance (working set fits).
constexpr std::uint32_t kUnboundedDefaultDistance = 32;

}  // namespace

std::string AdvisorReport::to_string() const {
  std::ostringstream out;
  out << "SP advisory\n"
      << "  patterns:    " << patterns.to_string() << "\n"
      << "  phases:      " << phases.distinct_phases
      << (phases.is_stable() ? " (stable)" : " (phase-varying)") << "\n"
      << "  CALR:        " << calr.calr << " -> RP " << rp << "\n"
      << "  set affinity: ";
  if (sa.merged.any_saturated()) {
    out << "[" << sa.merged.min_sa() << ", " << sa.merged.max_sa() << "]"
        << (sa.cumulative_fallback ? " (cumulative)" : "");
  } else {
    out << "no set saturates";
  }
  out << "\n  bound:       " << bound.to_string() << "\n"
      << "  recommended: " << recommended.to_string() << "\n";
  if (validation) {
    out << "  predicted:   norm_runtime=" << validation->norm_runtime()
        << " dTmiss=" << validation->delta_totally_miss()
        << " pollution=" << validation->sp.pollution.total_pollution() << "\n";
  }
  for (const std::string& c : caveats) out << "  caveat:      " << c << "\n";
  out << "  verdict:     "
      << (sp_recommended ? "SP recommended" : "SP NOT recommended") << "\n";
  return out.str();
}

AdvisorReport advise_sp(const TraceBuffer& trace,
                        const std::vector<std::uint32_t>& invocation_starts,
                        const AdvisorConfig& config) {
  SPF_ASSERT(!trace.empty(), "cannot advise on an empty trace");
  AdvisorReport report;

  report.patterns = classify_patterns(
      trace, PatternConfig{.line_bytes = config.l2.line_bytes()});
  if (report.patterns.irregular_fraction < config.min_irregular_fraction) {
    report.caveats.push_back(
        "access stream is mostly regular; hardware prefetchers likely cover "
        "it and SP's headroom is small");
    report.sp_recommended = false;
  }

  report.phases = detect_phases(trace, config.l2);
  if (!report.phases.is_stable()) {
    report.caveats.push_back(
        "multiple access phases detected; consider per-phase profiles or the "
        "feedback controller (spf/core/adaptive.hpp)");
  }

  CalrConfig calr_config = config.calr;
  calr_config.l2 = config.l2;
  report.calr = estimate_calr(trace, calr_config);
  report.rp = SpParams::rp_from_calr(report.calr.calr);

  report.sa = analyze_workload_sa(trace, invocation_starts, config.l2);
  std::uint32_t distance;
  if (report.sa.merged.any_saturated()) {
    report.bound.original_min_sa = report.sa.merged.min_sa();
    report.bound.upper_limit =
        std::max<std::uint32_t>(1, report.bound.original_min_sa / 2);
    distance = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::floor(
               config.distance_margin *
               static_cast<double>(report.bound.upper_limit))));
    // Refine Definition-3 style against the synthesized helper stream, and
    // re-apply the margin if the refined bound came in tighter.
    report.bound = refine_with_helper(
        report.bound, trace, invocation_starts,
        SpParams::from_distance_rp(distance, report.rp), config.l2);
    const auto refined_margin = static_cast<std::uint32_t>(std::floor(
        config.distance_margin * static_cast<double>(report.bound.upper_limit)));
    distance = std::max<std::uint32_t>(1, std::min(distance, refined_margin));
  } else {
    report.bound.original_min_sa = 0;
    report.bound.upper_limit = std::numeric_limits<std::uint32_t>::max();
    report.caveats.push_back(
        "working set fits in the shared cache: pollution does not constrain "
        "the distance; using a conservative default");
    distance = kUnboundedDefaultDistance;
  }
  report.recommended = SpParams::from_distance_rp(distance, report.rp);

  if (config.validate) {
    SpExperimentConfig exp;
    exp.sim.l2 = config.l2;
    exp.params = report.recommended;
    report.validation = run_sp_experiment(trace, exp);
    // Measurement beats heuristics in both directions: a simulated run at
    // the recommendation is ground truth for this trace.
    if (report.validation->norm_runtime() > 0.98) {
      report.caveats.push_back(
          "validation shows <2% predicted gain; SP's thread cost may not be "
          "worth it on this loop");
      report.sp_recommended = false;
    } else if (!report.sp_recommended &&
               report.validation->norm_runtime() < 0.9) {
      report.caveats.push_back(
          "pattern heuristic was pessimistic but validation predicts >10% "
          "gain; recommending SP on the measured evidence");
      report.sp_recommended = true;
    }
  }
  return report;
}

}  // namespace spf
